//! Mini strategy shoot-out: a pocket Table 3.
//!
//! Runs every clustering strategy over one shared pipeline with a small
//! budget and prints clusters / tested / bugs-found per strategy — the
//! qualitative Table 3 result in under a minute.
//!
//! Run with: `cargo run -p sb-examples --bin strategy_shootout`

use snowboard::cluster::{ALL_STRATEGIES};
use snowboard::select::ClusterOrder;
use snowboard::{CampaignCfg, Pipeline, PipelineCfg};

use sb_kernel::KernelConfig;

fn main() {
    println!("== strategy shoot-out (pocket Table 3) ==\n");
    let pipeline = Pipeline::prepare(
        KernelConfig::v5_12_rc3(),
        PipelineCfg {
            seed: 5,
            corpus_target: 80,
            fuzz_budget: 1_000,
            workers: 4,
            ..PipelineCfg::default()
        },
    );
    println!(
        "corpus {} tests, {} PMCs identified\n",
        pipeline.corpus.len(),
        pipeline.pmcs.len()
    );
    println!(
        "{:<16} {:>9} {:>8}  bugs found",
        "strategy", "clusters", "tested"
    );
    for strategy in ALL_STRATEGIES {
        let clusters = pipeline.cluster_count(strategy);
        let exemplars = pipeline.exemplars(strategy, ClusterOrder::UncommonFirst);
        let report = pipeline.campaign(
            &exemplars,
            &CampaignCfg {
                seed: 5,
                trials_per_pmc: 16,
                max_tested_pmcs: 150,
                workers: 4,
                stop_on_finding: true,
                incidental: true,
                ..CampaignCfg::default()
            },
        )
        .expect("campaign");
        println!(
            "{:<16} {:>9} {:>8}  {:?}",
            strategy.to_string(),
            clusters,
            report.tested(),
            report.bug_ids()
        );
    }
    println!(
        "\nReading guide: instruction-keyed strategies cover distinct code behaviors with few \
         tests and find the most bugs — the paper's headline Table 3 conclusion."
    );
}
