//! Quickstart: the whole Snowboard pipeline in one binary.
//!
//! Boots the simulated 5.12-rc3 kernel, fuzzes a sequential corpus,
//! profiles it, identifies PMCs, clusters them with S-INS-PAIR, and runs a
//! short campaign — printing each stage's numbers and the bugs found.
//!
//! Run with: `cargo run -p sb-examples --bin quickstart`

use snowboard::cluster::Strategy;
use snowboard::select::ClusterOrder;
use snowboard::{CampaignCfg, Pipeline, PipelineCfg};

use sb_kernel::{bugs, KernelConfig};

fn main() {
    println!("== Snowboard quickstart ==\n");
    println!("[1/4] boot + sequential test generation + profiling (§4.1)");
    let pipeline = Pipeline::prepare(
        KernelConfig::v5_12_rc3(),
        PipelineCfg {
            seed: 42,
            corpus_target: 80,
            fuzz_budget: 1_000,
            workers: 4,
            ..PipelineCfg::default()
        },
    );
    println!(
        "      corpus: {} tests ({} fuzz executions, {} edges)",
        pipeline.corpus.len(),
        pipeline.stats.fuzz_executed,
        pipeline.stats.edges
    );
    println!(
        "      profiled {} shared accesses in {:.2?}",
        pipeline.stats.shared_accesses, pipeline.stats.profile_time
    );

    println!("\n[2/4] PMC identification (§4.2, Algorithm 1)");
    println!(
        "      {} PMCs identified in {:.2?}",
        pipeline.pmcs.len(),
        pipeline.stats.identify_time
    );

    println!("\n[3/4] PMC selection (§4.3): clustering with S-INS-PAIR, uncommon first");
    let exemplars = pipeline.exemplars(Strategy::SInsPair, ClusterOrder::UncommonFirst);
    println!(
        "      {} clusters -> {} exemplar PMCs",
        pipeline.cluster_count(Strategy::SInsPair),
        exemplars.len()
    );

    println!("\n[4/4] concurrent test execution (§4.4, Algorithm 2)");
    let report = pipeline.campaign(
        &exemplars,
        &CampaignCfg {
            seed: 42,
            trials_per_pmc: 24,
            max_tested_pmcs: 300,
            workers: 4,
            stop_on_finding: true,
            incidental: true,
            ..CampaignCfg::default()
        },
    )
    .expect("campaign");
    println!(
        "      tested {} PMCs in {} executions; {:.0}% exercised their predicted channel",
        report.tested(),
        report.executions,
        100.0 * report.accuracy()
    );

    println!("\n== issues found ==");
    for issue in &report.issues {
        match issue.bug_id {
            Some(id) => {
                let b = bugs::by_id(id).expect("registry");
                println!(
                    "  #{id} [{}] {} (after {} tests)",
                    if b.harmful { "HARMFUL" } else { "benign" },
                    b.title,
                    issue.found_after_tests
                );
            }
            None => println!("  (untriaged) {}", issue.key),
        }
    }
    let ids = report.bug_ids();
    println!("\n{} distinct registry issues: {ids:?}", ids.len());
}
