//! Figure 4 live: the rhashtable double-fetch bug (Table 2 #1).
//!
//! `rht_ptr()`'s omitted-operand conditional compiles, under `-O2`, into
//! two loads of the bucket word. `msgget()` in one process races
//! `msgctl(IPC_RMID)` in another: when the removal zeroes the bucket between
//! the two fetches, the lookup dereferences a null object pointer at the key
//! offset — "BUG: unable to handle page fault for address". The window is a
//! single access wide, which is why unguided search struggles.
//!
//! Run with: `cargo run -p sb-examples --bin double_fetch_rhashtable`

use sb_kernel::prog::{MsgCmd, Res};
use sb_kernel::{boot, KernelConfig, Program, Syscall};
use sb_vmm::sched::SnowboardSched;
use sb_vmm::Executor;
use snowboard::metrics::{hits_bug, interleavings_to_expose, SchedKind};
use snowboard::pmc::identify;
use snowboard::profile::profile_corpus;

fn main() {
    println!("== Figure 4: rhashtable double fetch (bug #1) ==\n");
    let writer = Program::new(vec![
        Syscall::Msgget { key: 3 },
        Syscall::Msgctl { id: Res(0), cmd: MsgCmd::Rmid },
    ]);
    let reader = Program::new(vec![Syscall::Msgget { key: 3 }]);
    println!("Test 1 (writer):\n{writer}");
    println!("Test 2 (reader):\n{reader}");

    // "Compiler option 2" (gcc -O2): the 5.3.10 build double-fetches.
    let booted = boot(KernelConfig::v5_3_10());
    let mut exec = Executor::new(2);
    let profiles = profile_corpus(&booted, &[writer.clone(), reader.clone()], 2);
    let set = identify(&profiles);
    let (_, pmc) = snowboard::metrics::find_pmc_by_sites(&set, "rht_assign_unlock", "rht_ptr")
        .expect("the bucket PMC must be predicted");
    println!(
        "predicted PMC: write {} -> read {}",
        pmc.key.w.ins.display_name(),
        pmc.key.r.ins.display_name()
    );

    for kind in [SchedKind::Snowboard, SchedKind::Ski, SchedKind::Random] {
        match interleavings_to_expose(
            &mut exec, &booted, &writer, &reader, pmc, kind, 3, 8192, hits_bug(1),
        ) {
            Some(r) => println!("{kind:<10} exposed the page fault after {} interleavings", r.interleavings),
            None => println!("{kind:<10} did not expose it within 8192 interleavings"),
        }
    }

    // Show one panicking console, for flavor.
    let mut sched = SnowboardSched::new(11, pmc.hints());
    for trial in 0..256 {
        sched.begin_trial(11 + trial);
        let r = exec.run(
            booted.snapshot.clone(),
            vec![
                booted.kernel.process_job(writer.clone()),
                booted.kernel.process_job(reader.clone()),
            ],
            &mut sched,
        );
        if r.report.outcome.is_panic() {
            println!("\nconsole of the panicking trial #{trial}:");
            for line in &r.report.console {
                println!("  {line}");
            }
            break;
        }
    }

    // 5.12-rc3 carries Herbert Xu's fix (single fetch): no panic.
    let fixed = boot(KernelConfig::v5_12_rc3());
    let exposed = interleavings_to_expose(
        &mut exec, &fixed, &writer, &reader, pmc, SchedKind::Snowboard, 3, 1024, hits_bug(1),
    );
    println!(
        "\n5.12-rc3 (fix 1748f6a2, single fetch): {}",
        if exposed.is_none() { "no panic in 1024 interleavings" } else { "STILL PANICS?!" }
    );
}
