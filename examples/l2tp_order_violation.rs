//! Figure 1 live: the l2tp order violation (Table 2 #12), end to end.
//!
//! Two user processes run the paper's concurrent test: both `connect()` a
//! PPPoL2TP socket to the same tunnel id, one also `sendmsg()`s. The writer
//! publishes the tunnel to the RCU list *before* initializing
//! `tunnel->sock`; under the right interleaving the reader fetches the
//! half-initialized tunnel and dereferences the null socket — a kernel
//! panic, with every access properly synchronized (no data race).
//!
//! The example derives the PMC from sequential profiles exactly like the
//! pipeline, then shows (a) the panic appearing under the Snowboard
//! scheduler within a few trials, (b) how many trials SKI-style and random
//! exploration need, and (c) the fixed kernel surviving the same schedules.
//!
//! Run with: `cargo run -p sb-examples --bin l2tp_order_violation`

use sb_kernel::prog::{Domain, Res};
use sb_kernel::{boot, KernelConfig, Program, Syscall};
use sb_vmm::Executor;
use snowboard::metrics::{hits_bug, interleavings_to_expose, SchedKind};
use snowboard::pmc::identify;
use snowboard::profile::profile_corpus;

fn programs() -> (Program, Program) {
    let writer = Program::new(vec![
        Syscall::Socket { domain: Domain::L2tp },
        Syscall::Connect { sock: Res(0), tunnel_id: 2 },
    ]);
    let reader = Program::new(vec![
        Syscall::Socket { domain: Domain::L2tp },
        Syscall::Connect { sock: Res(0), tunnel_id: 2 },
        Syscall::Sendmsg { sock: Res(0), len: 1 },
    ]);
    (writer, reader)
}

fn main() {
    println!("== Figure 1: l2tp tunnel order violation (bug #12) ==\n");
    let (writer, reader) = programs();
    println!("Test 1 (writer):\n{writer}");
    println!("Test 2 (reader):\n{reader}");

    let booted = boot(KernelConfig::v5_12_rc3());
    let mut exec = Executor::new(2);

    // Profile both tests sequentially and identify the PMC between the
    // RCU-list publication and the tunnel lookup.
    let profiles = profile_corpus(&booted, &[writer.clone(), reader.clone()], 2);
    let set = identify(&profiles);
    let (_, pmc) = snowboard::metrics::find_pmc_by_sites(&set, "list_add_rcu", "l2tp_tunnel_get")
        .expect("the publication PMC must be predicted");
    println!(
        "predicted PMC: write {} = {:#x} -> read {} (value {:#x} sequentially)",
        pmc.key.w.ins.display_name(),
        pmc.key.w.value,
        pmc.key.r.ins.display_name(),
        pmc.key.r.value,
    );

    for kind in [SchedKind::Snowboard, SchedKind::Ski, SchedKind::Random] {
        match interleavings_to_expose(
            &mut exec, &booted, &writer, &reader, pmc, kind, 7, 4096, hits_bug(12),
        ) {
            Some(r) => println!("{kind:<10} exposed the panic after {} interleavings", r.interleavings),
            None => println!("{kind:<10} did not expose it within 4096 interleavings"),
        }
    }

    // The patched kernel (socket initialized before publication) survives.
    let fixed = boot(KernelConfig::v5_12_rc3().patched());
    let profiles = profile_corpus(&fixed, &[writer.clone(), reader.clone()], 2);
    let fixed_set = identify(&profiles);
    let survived = match snowboard::metrics::find_pmc_by_sites(
        &fixed_set,
        "list_add_rcu",
        "l2tp_tunnel_get",
    ) {
        Some((_, fixed_pmc)) => interleavings_to_expose(
            &mut exec, &fixed, &writer, &reader, fixed_pmc, SchedKind::Snowboard, 7, 512,
            hits_bug(12),
        )
        .is_none(),
        None => true,
    };
    println!(
        "\npatched kernel (init before publish): {}",
        if survived { "no panic in 512 interleavings — fix verified" } else { "STILL PANICS?!" }
    );
}
