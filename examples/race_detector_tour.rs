//! A tour of the bug detectors over hand-picked concurrent tests.
//!
//! Shows what the oracles actually report for four characteristic issues:
//! the harmful torn-MAC race (#9, Figure 3), the benign allocator-stats
//! race (#13), an atomicity violation caught only by the console checker
//! (#2), and a clean patched run.
//!
//! Run with: `cargo run -p sb-examples --bin race_detector_tour`

use sb_detect::Finding;
use sb_kernel::prog::{Domain, IoctlCmd, Path, Res};
use sb_kernel::{boot, bugs, BootedKernel, KernelConfig, Program, Syscall};
use sb_vmm::sched::RandomSched;
use sb_vmm::Executor;

fn show(booted: &BootedKernel, title: &str, a: &Program, b: &Program, attempts: u64) {
    println!("--- {title} ---");
    let mut exec = Executor::new(2);
    let mut seen = std::collections::HashSet::new();
    let mut findings: Vec<Finding> = Vec::new();
    for seed in 0..attempts {
        let mut sched = RandomSched::new(seed, 0.3);
        let r = exec.run(
            booted.snapshot.clone(),
            vec![
                booted.kernel.process_job(a.clone()),
                booted.kernel.process_job(b.clone()),
            ],
            &mut sched,
        );
        for f in sb_detect::analyze(&r.report) {
            if seen.insert(f.dedup_key()) {
                findings.push(f);
            }
        }
    }
    if findings.is_empty() {
        println!("  no findings in {attempts} executions");
    }
    for f in findings {
        let triaged = snowboard::triage::triage(&f);
        let tag = match triaged.and_then(bugs::by_id) {
            Some(b) if b.harmful => format!("-> Table 2 #{} (HARMFUL)", b.id),
            Some(b) => format!("-> Table 2 #{} (benign)", b.id),
            None => "-> untriaged".to_owned(),
        };
        match f {
            Finding::DataRace { write_site, other_site, addr } => {
                println!("  data race {write_site} / {other_site} @ {addr:#x} {tag}")
            }
            Finding::KernelPanic { msg } => println!("  panic: {msg} {tag}"),
            Finding::ConsoleError { line } => println!("  console: {line} {tag}"),
            other => println!("  {other:?} {tag}"),
        }
    }
    println!();
}

fn main() {
    println!("== detector tour ==\n");
    let old = boot(KernelConfig::v5_3_10());
    let rc = boot(KernelConfig::v5_12_rc3());

    // #9 / Figure 3: torn MAC read — writer under RTNL, reader under RCU.
    let mac_writer = Program::new(vec![
        Syscall::Socket { domain: Domain::Packet },
        Syscall::Ioctl { fd: Res(0), cmd: IoctlCmd::SiocSifHwAddr, arg: 9 },
    ]);
    let mac_reader = Program::new(vec![
        Syscall::Socket { domain: Domain::Packet },
        Syscall::Ioctl { fd: Res(0), cmd: IoctlCmd::SiocGifHwAddr, arg: 0 },
    ]);
    show(&old, "Figure 3: dev_ifsioc_locked vs eth_commit_mac_addr_change (5.3.10)",
         &mac_writer, &mac_reader, 200);

    // #13: the benign race every concurrent test can trip.
    let alloc = Program::new(vec![Syscall::Msgget { key: 1 }]);
    show(&rc, "allocator statistics (any two allocating tests, 5.12-rc3)", &alloc, &alloc, 200);

    // #2: atomicity violation — marked accesses, console-only detection.
    let swap = Program::new(vec![
        Syscall::Open { path: Path::Ext4File(1) },
        Syscall::Write { fd: Res(0), off: 1, val: 7 },
        Syscall::Ioctl { fd: Res(0), cmd: IoctlCmd::Ext4SwapBoot, arg: 0 },
    ]);
    show(&rc, "EXT4_IOC_SWAP_BOOT vs itself (duplicate input, 5.12-rc3)", &swap, &swap, 200);

    // The patched kernel under the same workloads.
    let patched = boot(KernelConfig::v5_3_10().patched());
    show(&patched, "same MAC workload on the fully patched kernel", &mac_writer, &mac_reader, 200);
}
