//! Bug forensics: find, diagnose, and deterministically replay a bug.
//!
//! Demonstrates the §6 "Bug Diagnosis and Deterministic Reproduction"
//! workflow: a campaign finds issues, each carrying a recorded schedule;
//! the diagnosis module links each finding back to the PMC channel that
//! explains it; and replaying the schedule re-triggers the bug on demand.
//!
//! Run with: `cargo run -p sb-examples --bin bug_forensics`

use snowboard::cluster::Strategy;
use snowboard::select::ClusterOrder;
use snowboard::{CampaignCfg, Pipeline, PipelineCfg};

use sb_kernel::KernelConfig;
use sb_vmm::replay::ReplaySched;
use sb_vmm::Executor;

fn main() {
    println!("== bug forensics ==\n");
    let p = Pipeline::prepare(
        KernelConfig::v5_12_rc3(),
        PipelineCfg {
            seed: 31,
            corpus_target: 80,
            fuzz_budget: 1_000,
            workers: 4,
            ..PipelineCfg::default()
        },
    );
    let exemplars = p.exemplars(Strategy::SInsPair, ClusterOrder::UncommonFirst);
    let report = p.campaign(
        &exemplars,
        &CampaignCfg {
            seed: 31,
            trials_per_pmc: 24,
            max_tested_pmcs: 250,
            workers: 4,
            stop_on_finding: true,
            incidental: true,
            ..CampaignCfg::default()
        },
    )
    .expect("campaign");
    println!(
        "campaign: {} PMCs tested, {} issues found\n",
        report.tested(),
        report.issues.len()
    );

    let mut exec = Executor::new(2);
    let mut shown = 0;
    for o in report.outcomes.iter().filter(|o| !o.findings.is_empty()) {
        let Some(schedule) = o.repro_schedule.clone() else {
            continue;
        };
        println!("--- concurrent test (corpus #{} vs #{}) ---", o.pair.0, o.pair.1);
        println!("test 1:\n{}", p.corpus[o.pair.0 as usize]);
        println!("test 2:\n{}", p.corpus[o.pair.1 as usize]);
        println!(
            "finding on trial {} ({} recorded scheduling decisions)",
            o.first_finding_trial.unwrap_or(0),
            schedule.len()
        );
        // Replay the recorded interleaving and diagnose the execution.
        let mut replay = ReplaySched::new(schedule);
        let r = exec.run(
            p.booted.snapshot.clone(),
            vec![
                p.booted.kernel.process_job(p.corpus[o.pair.0 as usize].clone()),
                p.booted.kernel.process_job(p.corpus[o.pair.1 as usize].clone()),
            ],
            &mut replay,
        );
        assert!(!replay.diverged(), "replay must be exact");
        for d in snowboard::diagnose::diagnose(&r.report, &p.pmcs) {
            print!("{}", d.rendered);
        }
        println!();
        shown += 1;
        if shown >= 4 {
            break;
        }
    }
    println!("({shown} findings replayed and diagnosed)");
}
