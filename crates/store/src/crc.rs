//! Software CRC32C (Castagnoli), table-driven, no external deps.
//!
//! Segment records checksum `key‖len‖payload` with this polynomial — the
//! same one iSCSI/ext4/LevelDB use — because its error-detection profile is
//! well studied for exactly this "short record in a log file" shape. The
//! byte-at-a-time table walk is plenty for store traffic: records are read
//! once per campaign and written once per corpus chunk.

/// Reflected CRC-32C polynomial.
const POLY: u32 = 0x82F6_3B78;

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// Incremental CRC32C state.
#[derive(Clone, Copy, Debug)]
pub struct Crc32c(u32);

impl Default for Crc32c {
    fn default() -> Self {
        Crc32c::new()
    }
}

impl Crc32c {
    /// Fresh state.
    pub fn new() -> Crc32c {
        Crc32c(!0)
    }

    /// Folds `bytes` into the state.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut crc = self.0;
        for &b in bytes {
            crc = (crc >> 8) ^ TABLE[((crc ^ u32::from(b)) & 0xFF) as usize];
        }
        self.0 = crc;
    }

    /// The final checksum.
    pub fn finish(self) -> u32 {
        !self.0
    }
}

/// One-shot CRC32C of `bytes`.
pub fn crc32c(bytes: &[u8]) -> u32 {
    let mut c = Crc32c::new();
    c.update(bytes);
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The canonical CRC-32C check value.
        assert_eq!(crc32c(b"123456789"), 0xE306_9283);
        assert_eq!(crc32c(b""), 0);
        // RFC 3720 appendix B.4: 32 bytes of zeros.
        assert_eq!(crc32c(&[0u8; 32]), 0x8A91_36AA);
        // 32 bytes of 0xFF.
        assert_eq!(crc32c(&[0xFFu8; 32]), 0x62A8_AB43);
    }

    #[test]
    fn incremental_equals_one_shot() {
        let data: Vec<u8> = (0u16..512).map(|i| (i % 251) as u8).collect();
        for split in [0, 1, 7, 255, 511, 512] {
            let mut c = Crc32c::new();
            c.update(&data[..split]);
            c.update(&data[split..]);
            assert_eq!(c.finish(), crc32c(&data), "split at {split}");
        }
    }

    #[test]
    fn single_byte_flips_change_the_checksum() {
        let base = crc32c(b"snowboard record payload");
        let mut data = *b"snowboard record payload";
        for i in 0..data.len() {
            for bit in 0..8 {
                data[i] ^= 1 << bit;
                assert_ne!(crc32c(&data), base, "flip byte {i} bit {bit}");
                data[i] ^= 1 << bit;
            }
        }
    }
}
