//! The store: a directory of segment files plus a manifest.
//!
//! Content addressing: a profile's key is the FNV-1a hash of the boot
//! config, fuzz seed, and program text. `Site` ids are themselves FNV
//! hashes of instruction names, so profiles and PMC sets persisted by one
//! process match those of any other — nothing in a record depends on
//! process-local interning state.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use sb_kernel::{KernelConfig, Program};
use snowboard::pmc::PmcSet;
use snowboard::profile::SeqProfile;

use crate::codec;
use crate::manifest::{Manifest, PmcEntry, ProfileStatus};
use crate::segment::{self, SegmentWriter, PMC_MAGIC, PROFILE_MAGIC};
use crate::Error;

/// FNV-1a over a byte string.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Content key of one sequential test: hash of (boot config, fuzz seed,
/// program). Debug renderings are derived and contain no addresses or other
/// process-local state, so keys are stable across processes and runs.
pub fn profile_key(config: &KernelConfig, seed: u64, prog: &Program) -> u64 {
    fnv1a(format!("{config:?}|{seed}|{prog:?}").as_bytes())
}

/// Content key of a whole corpus: hash chain over its profile keys, used as
/// the embedded record key of persisted PMC sets.
pub fn corpus_key(keys: &[u64]) -> u64 {
    let mut bytes = Vec::with_capacity(keys.len() * 8);
    for k in keys {
        bytes.extend_from_slice(&k.to_le_bytes());
    }
    fnv1a(&bytes)
}

/// Result of a profile lookup.
#[derive(Clone, Debug, PartialEq)]
pub enum ProfileLookup {
    /// Served from the store, test id remapped to the current corpus index.
    Hit(SeqProfile),
    /// The store remembers this test failing sequentially — skip it.
    FailedCached,
    /// Not in the store (or reads disabled); profile it.
    Miss,
}

/// Result of a PMC-set lookup against a corpus key list.
#[derive(Clone, Debug, PartialEq)]
pub enum PmcLookup {
    /// A stored set identified from exactly this corpus; bit-identical to
    /// what identification would rebuild.
    Exact(PmcSet),
    /// A stored set identified from a strict prefix of this corpus
    /// (`prefix_len` corpus entries) — resume it and join only the rest.
    Prefix(PmcSet, usize),
    /// Nothing reusable stored.
    Miss,
}

/// Size statistics of the on-disk store.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SegmentStats {
    /// Number of segment files (profile + PMC).
    pub segments: u64,
    /// Total bytes across segment files.
    pub bytes: u64,
}

/// A persistent profile/PMC store rooted at one directory.
pub struct Store {
    root: PathBuf,
    manifest: Manifest,
    read_cache: bool,
    /// Profile lookups served from the store this run.
    pub profile_hits: u64,
    /// Profile lookups that missed this run.
    pub profile_misses: u64,
    /// Of the hits, cached sequential failures.
    pub failed_cached: u64,
}

impl Store {
    /// Opens (or initializes) the store in `root`, creating the directory
    /// if needed.
    pub fn open(root: &Path) -> Result<Store, Error> {
        std::fs::create_dir_all(root).map_err(|source| Error::Io {
            op: "create-dir",
            path: root.to_path_buf(),
            source,
        })?;
        let manifest = Manifest::load(&root.join("manifest.json"))?;
        Ok(Store {
            root: root.to_path_buf(),
            manifest,
            read_cache: true,
            profile_hits: 0,
            profile_misses: 0,
            failed_cached: 0,
        })
    }

    /// Disables cache *reads* (`--no-cache`): every lookup misses, but fresh
    /// results are still written back.
    pub fn set_read_cache(&mut self, enabled: bool) {
        self.read_cache = enabled;
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Profile cache hit rate persisted by the most recent completed run.
    pub fn last_hit_rate(&self) -> Option<f64> {
        let total = self.manifest.last_hits + self.manifest.last_misses;
        (total > 0).then(|| self.manifest.last_hits as f64 / total as f64)
    }

    /// (hits, misses) persisted by the most recent completed run.
    pub fn last_counters(&self) -> (u64, u64) {
        (self.manifest.last_hits, self.manifest.last_misses)
    }

    fn segment_path(&self, n: u64) -> PathBuf {
        self.root.join(format!("seg-{n:04}.bin"))
    }

    fn pmc_path(&self, n: u64) -> PathBuf {
        self.root.join(format!("pmc-{n:04}.bin"))
    }

    /// Looks up the profile stored under `key`, remapping its test id to
    /// `test` (the corpus index of the *current* run).
    pub fn lookup_profile(&mut self, key: u64, test: u32) -> Result<ProfileLookup, Error> {
        if !self.read_cache {
            self.profile_misses += 1;
            return Ok(ProfileLookup::Miss);
        }
        match self.manifest.profiles.get(&key) {
            Some(ProfileStatus::Ok { segment, offset, len }) => {
                let path = self.segment_path(*segment);
                let payload = segment::read_record(&path, *offset, *len, key)?;
                let mut profile = codec::decode_profile(&payload).map_err(|e| match e {
                    Error::Truncated | Error::Corrupt(_) => Error::Format {
                        path,
                        detail: format!("profile record {key:#x}: {e}"),
                    },
                    other => other,
                })?;
                profile.test = test;
                self.profile_hits += 1;
                Ok(ProfileLookup::Hit(profile))
            }
            Some(ProfileStatus::Failed) => {
                self.profile_hits += 1;
                self.failed_cached += 1;
                Ok(ProfileLookup::FailedCached)
            }
            None => {
                self.profile_misses += 1;
                Ok(ProfileLookup::Miss)
            }
        }
    }

    /// Persists one corpus chunk of freshly profiled tests (failures
    /// included — they are cached as negative entries) into a new segment
    /// file. No-op when `batch` is empty.
    pub fn insert_profiles(&mut self, batch: &[(u64, Option<SeqProfile>)]) -> Result<(), Error> {
        if batch.is_empty() {
            return Ok(());
        }
        let seg_no = self.manifest.next_segment;
        let mut writer = SegmentWriter::create(&self.segment_path(seg_no), PROFILE_MAGIC)?;
        let mut buf = Vec::new();
        let mut new_entries = BTreeMap::new();
        for (key, profile) in batch {
            match profile {
                Some(p) => {
                    buf.clear();
                    codec::encode_profile(p, &mut buf);
                    let (offset, len) = writer.append(*key, &buf)?;
                    new_entries.insert(*key, ProfileStatus::Ok { segment: seg_no, offset, len });
                }
                None => {
                    new_entries.insert(*key, ProfileStatus::Failed);
                }
            }
        }
        writer.finish()?;
        self.manifest.next_segment += 1;
        self.manifest.profiles.extend(new_entries);
        Ok(())
    }

    /// Finds the most recent stored PMC set reusable for `corpus_keys`:
    /// exact corpus match first, else the longest strict-prefix match.
    pub fn lookup_pmcs(&self, corpus_keys: &[u64]) -> Result<PmcLookup, Error> {
        if !self.read_cache {
            return Ok(PmcLookup::Miss);
        }
        let mut best: Option<&PmcEntry> = None;
        for entry in self.manifest.pmcs.iter().rev() {
            if entry.corpus == corpus_keys {
                best = Some(entry);
                break;
            }
            let better = best.map_or(0, |b| b.corpus.len());
            if entry.corpus.len() > better
                && entry.corpus.len() < corpus_keys.len()
                && corpus_keys.starts_with(&entry.corpus)
            {
                best = Some(entry);
            }
        }
        let Some(entry) = best else {
            return Ok(PmcLookup::Miss);
        };
        let path = self.pmc_path(entry.segment);
        let payload = segment::read_record(&path, entry.offset, entry.len, corpus_key(&entry.corpus))?;
        let set = codec::decode_pmc_set(&payload).map_err(|e| match e {
            Error::Truncated | Error::Corrupt(_) => Error::Format {
                path,
                detail: format!("PMC record: {e}"),
            },
            other => other,
        })?;
        if entry.corpus == corpus_keys {
            Ok(PmcLookup::Exact(set))
        } else {
            Ok(PmcLookup::Prefix(set, entry.corpus.len()))
        }
    }

    /// Persists `set` as the PMC universe of `corpus_keys`, replacing any
    /// entry stored for the same corpus.
    pub fn save_pmcs(&mut self, corpus_keys: &[u64], set: &PmcSet) -> Result<(), Error> {
        let seg_no = self.manifest.next_segment;
        let mut writer = SegmentWriter::create(&self.pmc_path(seg_no), PMC_MAGIC)?;
        let mut buf = Vec::new();
        codec::encode_pmc_set(set, &mut buf);
        let (offset, len) = writer.append(corpus_key(corpus_keys), &buf)?;
        writer.finish()?;
        self.manifest.next_segment += 1;
        self.manifest.pmcs.retain(|e| e.corpus != corpus_keys);
        self.manifest.pmcs.push(PmcEntry {
            corpus: corpus_keys.to_vec(),
            segment: seg_no,
            offset,
            len,
        });
        Ok(())
    }

    /// Writes the manifest (with this run's hit/miss counters) atomically.
    pub fn flush(&mut self) -> Result<(), Error> {
        self.manifest.last_hits = self.profile_hits;
        self.manifest.last_misses = self.profile_misses;
        self.manifest.save(&self.root.join("manifest.json"))
    }

    /// Sizes of all segment files currently on disk, smallest number first.
    /// Returns `(name, bytes)` pairs plus the aggregate.
    pub fn segment_sizes(&self) -> Result<(Vec<(String, u64)>, SegmentStats), Error> {
        let mut sizes = Vec::new();
        let mut stats = SegmentStats::default();
        for n in 0..self.manifest.next_segment {
            for path in [self.segment_path(n), self.pmc_path(n)] {
                match std::fs::metadata(&path) {
                    Ok(meta) => {
                        let name = path
                            .file_name()
                            .map(|n| n.to_string_lossy().into_owned())
                            .unwrap_or_default();
                        sizes.push((name, meta.len()));
                        stats.segments += 1;
                        stats.bytes += meta.len();
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                    Err(source) => {
                        return Err(Error::Io {
                            op: "stat",
                            path,
                            source,
                        })
                    }
                }
            }
        }
        Ok((sizes, stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sb_kernel::prog::Syscall;
    use sb_vmm::access::{Access, AccessKind};
    use sb_vmm::site::Site;

    fn tmp_store(tag: &str) -> (PathBuf, Store) {
        let dir = std::env::temp_dir().join(format!("sb-store-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let store = Store::open(&dir).expect("open");
        (dir, store)
    }

    fn profile(test: u32, addr: u64) -> SeqProfile {
        SeqProfile {
            test,
            steps: 10,
            accesses: vec![Access {
                seq: 0,
                thread: 0,
                site: Site::intern("store:test"),
                kind: AccessKind::Write,
                addr,
                len: 8,
                value: 1,
                atomic: false,
                locks: vec![],
                rcu_depth: 0,
            }],
        }
    }

    #[test]
    fn profile_keys_depend_on_all_inputs() {
        let config = KernelConfig::v5_12_rc3();
        let p1 = Program::new(vec![Syscall::Msgget { key: 1 }]);
        let p2 = Program::new(vec![Syscall::Msgget { key: 2 }]);
        let k = profile_key(&config, 1, &p1);
        assert_eq!(k, profile_key(&config, 1, &p1.clone()));
        assert_ne!(k, profile_key(&config, 2, &p1));
        assert_ne!(k, profile_key(&config, 1, &p2));
        assert_ne!(k, profile_key(&KernelConfig::v5_3_10(), 1, &p1));
    }

    #[test]
    fn profiles_round_trip_with_test_remap_and_counters() {
        let (dir, mut store) = tmp_store("prof");
        let p = profile(3, 0x2000);
        store
            .insert_profiles(&[(111, Some(p.clone())), (222, None)])
            .expect("insert");
        store.flush().expect("flush");

        let mut store = Store::open(&dir).expect("reopen");
        match store.lookup_profile(111, 9).expect("lookup") {
            ProfileLookup::Hit(got) => {
                assert_eq!(got.test, 9, "test id remapped to current corpus index");
                assert_eq!(got.accesses, p.accesses);
                assert_eq!(got.steps, p.steps);
            }
            other => panic!("expected hit, got {other:?}"),
        }
        assert_eq!(
            store.lookup_profile(222, 1).expect("lookup"),
            ProfileLookup::FailedCached
        );
        assert_eq!(store.lookup_profile(333, 2).expect("lookup"), ProfileLookup::Miss);
        assert_eq!((store.profile_hits, store.profile_misses), (2, 1));
        assert_eq!(store.failed_cached, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn no_cache_forces_misses_but_still_writes() {
        let (dir, mut store) = tmp_store("nocache");
        store.insert_profiles(&[(5, Some(profile(0, 0x3000)))]).expect("insert");
        store.set_read_cache(false);
        assert_eq!(store.lookup_profile(5, 0).expect("lookup"), ProfileLookup::Miss);
        assert_eq!(store.lookup_pmcs(&[5]).expect("lookup"), PmcLookup::Miss);
        assert_eq!(store.profile_misses, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn pmc_lookup_prefers_exact_over_prefix() {
        let (dir, mut store) = tmp_store("pmc");
        let small = PmcSet::default();
        let mut large = PmcSet::default();
        large.pmcs.push(sample_pmc());
        store.save_pmcs(&[1, 2], &small).expect("save small");
        store.save_pmcs(&[1, 2, 3], &large).expect("save large");
        assert_eq!(store.lookup_pmcs(&[1, 2, 3]).expect("exact"), PmcLookup::Exact(large.clone()));
        assert_eq!(
            store.lookup_pmcs(&[1, 2, 3, 4]).expect("prefix"),
            PmcLookup::Prefix(large.clone(), 3)
        );
        assert_eq!(store.lookup_pmcs(&[1, 2]).expect("exact small"), PmcLookup::Exact(small));
        assert_eq!(store.lookup_pmcs(&[9, 9]).expect("miss"), PmcLookup::Miss);
        // Replacing the same corpus keeps one entry.
        store.save_pmcs(&[1, 2, 3], &large).expect("replace");
        assert_eq!(store.lookup_pmcs(&[1, 2, 3]).expect("exact"), PmcLookup::Exact(large));
        std::fs::remove_dir_all(&dir).ok();
    }

    fn sample_pmc() -> snowboard::pmc::Pmc {
        use snowboard::pmc::{PmcKey, SideKey};
        let side = |name: &str| SideKey {
            ins: Site::intern(name),
            addr: 0x1000,
            len: 8,
            value: 7,
        };
        snowboard::pmc::Pmc {
            key: PmcKey { w: side("w"), r: side("r") },
            df_leader: false,
            pairs: vec![(0, 1)],
        }
    }

    #[test]
    fn segment_sizes_and_persisted_counters() {
        let (dir, mut store) = tmp_store("sizes");
        store.insert_profiles(&[(1, Some(profile(0, 0x2000)))]).expect("insert");
        store.save_pmcs(&[1], &PmcSet::default()).expect("save");
        let _ = store.lookup_profile(1, 0).expect("hit");
        let _ = store.lookup_profile(2, 1).expect("miss");
        store.flush().expect("flush");
        let (sizes, stats) = store.segment_sizes().expect("sizes");
        assert_eq!(stats.segments, 2);
        assert_eq!(sizes.len(), 2);
        assert!(stats.bytes > 16, "magic plus records");
        let reopened = Store::open(&dir).expect("reopen");
        assert_eq!(reopened.last_counters(), (1, 1));
        assert_eq!(reopened.last_hit_rate(), Some(0.5));
        std::fs::remove_dir_all(&dir).ok();
    }
}
