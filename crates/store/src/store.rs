//! The store: a directory of segment files plus a manifest.
//!
//! Content addressing: a profile's key is the FNV-1a hash of the boot
//! config, fuzz seed, and program text. `Site` ids are themselves FNV
//! hashes of instruction names, so profiles and PMC sets persisted by one
//! process match those of any other — nothing in a record depends on
//! process-local interning state.
//!
//! Cached state is *advisory*: damage (bit flips, torn tails, missing
//! segments) surfaces as [`ProfileLookup::Damaged`]/[`PmcLookup::Damaged`],
//! never as an error, and the pipeline recomputes and heals it. Opening a
//! store truncates torn segment tails left by a crash and adopts intact
//! orphan records the manifest missed, so a kill mid-`insert_profiles`
//! costs at most the interrupted batch.

use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};

use sb_kernel::{KernelConfig, Program};
use snowboard::pmc::PmcSet;
use snowboard::profile::SeqProfile;

use crate::codec;
use crate::fault::DiskFaultPlan;
use crate::manifest::{Manifest, PmcEntry, ProfileStatus};
use crate::segment::{self, SegmentKind, SegmentWriter, PMC_MAGIC, PROFILE_MAGIC};
use crate::Error;

/// FNV-1a over a byte string.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Content key of one sequential test: hash of (boot config, fuzz seed,
/// program). Debug renderings are derived and contain no addresses or other
/// process-local state, so keys are stable across processes and runs.
pub fn profile_key(config: &KernelConfig, seed: u64, prog: &Program) -> u64 {
    fnv1a(format!("{config:?}|{seed}|{prog:?}").as_bytes())
}

/// Content key of a whole corpus: hash chain over its profile keys, used as
/// the embedded record key of persisted PMC sets.
pub fn corpus_key(keys: &[u64]) -> u64 {
    let mut bytes = Vec::with_capacity(keys.len() * 8);
    for k in keys {
        bytes.extend_from_slice(&k.to_le_bytes());
    }
    fnv1a(&bytes)
}

/// Result of a profile lookup.
#[derive(Clone, Debug, PartialEq)]
pub enum ProfileLookup {
    /// Served from the store, test id remapped to the current corpus index.
    Hit(SeqProfile),
    /// The store remembers this test failing sequentially — skip it.
    FailedCached,
    /// Not in the store (or reads disabled); profile it.
    Miss,
    /// The manifest points at a record that is corrupt, truncated, or
    /// missing. Quarantined: treat as a miss, recompute, and the rewrite
    /// heals the entry.
    Damaged,
}

/// Result of a PMC-set lookup against a corpus key list.
#[derive(Clone, Debug, PartialEq)]
pub enum PmcLookup {
    /// A stored set identified from exactly this corpus; bit-identical to
    /// what identification would rebuild.
    Exact(PmcSet),
    /// A stored set identified from a strict prefix of this corpus
    /// (`prefix_len` corpus entries) — resume it and join only the rest.
    Prefix(PmcSet, usize),
    /// Nothing reusable stored.
    Miss,
    /// Every reusable candidate was corrupt, truncated, or missing.
    /// Quarantined: rebuild from scratch; the save heals the entry.
    Damaged,
}

/// Size statistics of the on-disk store.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SegmentStats {
    /// Number of segment files (profile + PMC).
    pub segments: u64,
    /// Total bytes across segment files.
    pub bytes: u64,
}

/// What `Store::open` learned about one segment file.
#[derive(Clone, Copy, Debug)]
struct SegMeta {
    /// Format version (0 = unrecognized magic: fully damaged).
    version: u8,
    /// Valid record prefix length; addresses past this are damaged.
    valid_len: u64,
}

/// A persistent profile/PMC store rooted at one directory.
pub struct Store {
    root: PathBuf,
    manifest: Manifest,
    read_cache: bool,
    /// Per-segment scan results from open (and this run's writes).
    seg_meta: BTreeMap<u64, SegMeta>,
    pmc_meta: BTreeMap<u64, SegMeta>,
    /// Injected disk faults (empty by default).
    fault: DiskFaultPlan,
    /// Profile keys whose records were found damaged this run.
    damaged_keys: BTreeSet<u64>,
    /// Corpus keys of PMC entries found damaged this run.
    damaged_pmc_corpora: BTreeSet<u64>,
    /// Profile lookups served from the store this run.
    pub profile_hits: u64,
    /// Profile lookups that missed this run.
    pub profile_misses: u64,
    /// Of the hits, cached sequential failures.
    pub failed_cached: u64,
    /// Records found corrupt, truncated, or missing this run.
    pub records_damaged: u64,
    /// Damaged records recomputed and rewritten this run.
    pub records_healed: u64,
}

impl Store {
    /// Opens (or initializes) the store in `root`, creating the directory
    /// if needed. Scans every segment file, truncates torn tails left by a
    /// crash, and reconciles the manifest with surviving records (intact
    /// records the manifest missed are adopted).
    pub fn open(root: &Path) -> Result<Store, Error> {
        std::fs::create_dir_all(root).map_err(|source| Error::Io {
            op: "create-dir",
            path: root.to_path_buf(),
            source,
        })?;
        let mut manifest = Manifest::load(&root.join("manifest.json"))?;
        let mut seg_meta = BTreeMap::new();
        let mut pmc_meta = BTreeMap::new();
        let mut max_seen: Option<u64> = None;
        for (name, kind, n) in list_segment_files(root)? {
            let path = root.join(&name);
            let scan = segment::scan(&path, kind)?;
            if scan.torn_bytes() > 0 {
                segment::truncate_torn_tail(&path, &scan);
            }
            if kind == SegmentKind::Profile {
                // Adopt intact records the manifest missed (a crash after
                // the segment fsync but before the manifest write).
                for rec in &scan.records {
                    if rec.crc_ok && !manifest.profiles.contains_key(&rec.key) {
                        manifest.profiles.insert(
                            rec.key,
                            ProfileStatus::Ok { segment: n, offset: rec.offset, len: rec.len },
                        );
                    }
                }
            }
            let meta = SegMeta { version: scan.version, valid_len: scan.valid_len };
            match kind {
                SegmentKind::Profile => seg_meta.insert(n, meta),
                SegmentKind::Pmc => pmc_meta.insert(n, meta),
            };
            max_seen = Some(max_seen.map_or(n, |m| m.max(n)));
        }
        // Never reuse a segment number an on-disk file already claims, even
        // if the manifest never learned about it.
        if let Some(m) = max_seen {
            manifest.next_segment = manifest.next_segment.max(m + 1);
        }
        Ok(Store {
            root: root.to_path_buf(),
            manifest,
            read_cache: true,
            seg_meta,
            pmc_meta,
            fault: DiskFaultPlan::default(),
            damaged_keys: BTreeSet::new(),
            damaged_pmc_corpora: BTreeSet::new(),
            profile_hits: 0,
            profile_misses: 0,
            failed_cached: 0,
            records_damaged: 0,
            records_healed: 0,
        })
    }

    /// Disables cache *reads* (`--no-cache`): every lookup misses, but fresh
    /// results are still written back.
    pub fn set_read_cache(&mut self, enabled: bool) {
        self.read_cache = enabled;
    }

    /// Arms a deterministic disk-fault plan (tests only; empty by default).
    pub fn set_fault_plan(&mut self, plan: DiskFaultPlan) {
        self.fault = plan;
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Profile cache hit rate persisted by the most recent completed run.
    pub fn last_hit_rate(&self) -> Option<f64> {
        let total = self.manifest.last_hits + self.manifest.last_misses;
        (total > 0).then(|| self.manifest.last_hits as f64 / total as f64)
    }

    /// (hits, misses) persisted by the most recent completed run.
    pub fn last_counters(&self) -> (u64, u64) {
        (self.manifest.last_hits, self.manifest.last_misses)
    }

    fn segment_path(&self, n: u64) -> PathBuf {
        self.root.join(format!("seg-{n:04}.bin"))
    }

    fn pmc_path(&self, n: u64) -> PathBuf {
        self.root.join(format!("pmc-{n:04}.bin"))
    }

    /// Reads and verifies one record, honoring scan results and injected
    /// short reads. Any failure means the record is damaged.
    fn read_verified(
        &self,
        kind: SegmentKind,
        seg_no: u64,
        offset: u64,
        len: u64,
        key: u64,
    ) -> Result<Vec<u8>, Error> {
        let (meta, path) = match kind {
            SegmentKind::Profile => (self.seg_meta.get(&seg_no), self.segment_path(seg_no)),
            SegmentKind::Pmc => (self.pmc_meta.get(&seg_no), self.pmc_path(seg_no)),
        };
        // No meta: the segment file was missing at open.
        let meta = meta.ok_or(Error::Truncated)?;
        if meta.version == 0 {
            return Err(Error::Corrupt("unrecognized segment magic"));
        }
        let end = offset + segment::header_len(meta.version) + len;
        if end > meta.valid_len {
            return Err(Error::Truncated);
        }
        let eof_at = self.fault.short_read(key).then(|| end - 1);
        segment::read_record(&path, offset, len, key, meta.version, eof_at)
    }

    /// Looks up the profile stored under `key`, remapping its test id to
    /// `test` (the corpus index of the *current* run). Damage is reported
    /// as [`ProfileLookup::Damaged`] (and counted), never as `Err`.
    pub fn lookup_profile(&mut self, key: u64, test: u32) -> Result<ProfileLookup, Error> {
        if !self.read_cache {
            self.profile_misses += 1;
            return Ok(ProfileLookup::Miss);
        }
        match self.manifest.profiles.get(&key) {
            Some(ProfileStatus::Ok { segment, offset, len }) => {
                let decoded = self
                    .read_verified(SegmentKind::Profile, *segment, *offset, *len, key)
                    .and_then(|payload| codec::decode_profile(&payload));
                match decoded {
                    Ok(mut profile) => {
                        profile.test = test;
                        self.profile_hits += 1;
                        Ok(ProfileLookup::Hit(profile))
                    }
                    Err(_) => {
                        self.records_damaged += 1;
                        self.damaged_keys.insert(key);
                        self.profile_misses += 1;
                        Ok(ProfileLookup::Damaged)
                    }
                }
            }
            Some(ProfileStatus::Failed) => {
                self.profile_hits += 1;
                self.failed_cached += 1;
                Ok(ProfileLookup::FailedCached)
            }
            None => {
                self.profile_misses += 1;
                Ok(ProfileLookup::Miss)
            }
        }
    }

    /// Persists one corpus chunk of freshly profiled tests (failures
    /// included — they are cached as negative entries) into a new segment
    /// file. No-op when `batch` is empty. Rewriting a key whose record was
    /// found damaged this run counts as a heal.
    pub fn insert_profiles(&mut self, batch: &[(u64, Option<SeqProfile>)]) -> Result<(), Error> {
        if batch.is_empty() {
            return Ok(());
        }
        let seg_no = self.manifest.next_segment;
        let path = self.segment_path(seg_no);
        let mut writer = SegmentWriter::create(&path, PROFILE_MAGIC)?;
        if let Some(cut) = self.fault.take_torn_write() {
            writer.set_torn_after(cut);
        }
        let mut buf = Vec::new();
        let mut new_entries = BTreeMap::new();
        for (key, profile) in batch {
            match profile {
                Some(p) => {
                    buf.clear();
                    codec::encode_profile(p, &mut buf);
                    let (offset, len) = writer.append(*key, &buf)?;
                    new_entries.insert(*key, ProfileStatus::Ok { segment: seg_no, offset, len });
                }
                None => {
                    new_entries.insert(*key, ProfileStatus::Failed);
                }
            }
        }
        let total = writer.finish()?;
        self.apply_flip_fault(&path);
        segment::sync_dir(&self.root);
        self.seg_meta.insert(seg_no, SegMeta { version: 2, valid_len: total });
        self.manifest.next_segment = seg_no + 1;
        for key in new_entries.keys() {
            if self.damaged_keys.remove(key) {
                self.records_healed += 1;
            }
        }
        self.manifest.profiles.extend(new_entries);
        Ok(())
    }

    /// Finds the most recent stored PMC set reusable for `corpus_keys`:
    /// exact corpus match first, else the longest strict-prefix match.
    /// Damaged candidates are skipped (and counted); if only damage
    /// remains, returns [`PmcLookup::Damaged`].
    pub fn lookup_pmcs(&mut self, corpus_keys: &[u64]) -> Result<PmcLookup, Error> {
        if !self.read_cache {
            return Ok(PmcLookup::Miss);
        }
        let mut excluded: BTreeSet<usize> = BTreeSet::new();
        let mut damage_seen = false;
        loop {
            let mut best: Option<usize> = None;
            for (idx, entry) in self.manifest.pmcs.iter().enumerate().rev() {
                if excluded.contains(&idx) {
                    continue;
                }
                if entry.corpus == corpus_keys {
                    best = Some(idx);
                    break;
                }
                let better = best.map_or(0, |b| self.manifest.pmcs[b].corpus.len());
                if entry.corpus.len() > better
                    && entry.corpus.len() < corpus_keys.len()
                    && corpus_keys.starts_with(&entry.corpus)
                {
                    best = Some(idx);
                }
            }
            let Some(idx) = best else {
                return Ok(if damage_seen { PmcLookup::Damaged } else { PmcLookup::Miss });
            };
            let entry = self.manifest.pmcs[idx].clone();
            let key = corpus_key(&entry.corpus);
            let decoded = self
                .read_verified(SegmentKind::Pmc, entry.segment, entry.offset, entry.len, key)
                .and_then(|payload| codec::decode_pmc_set(&payload));
            match decoded {
                Ok(set) => {
                    return Ok(if entry.corpus == corpus_keys {
                        PmcLookup::Exact(set)
                    } else {
                        PmcLookup::Prefix(set, entry.corpus.len())
                    });
                }
                Err(_) => {
                    self.records_damaged += 1;
                    self.damaged_pmc_corpora.insert(key);
                    damage_seen = true;
                    excluded.insert(idx);
                }
            }
        }
    }

    /// Persists `set` as the PMC universe of `corpus_keys`, replacing any
    /// entry stored for the same corpus. Replacing a corpus whose record
    /// was found damaged this run counts as a heal.
    pub fn save_pmcs(&mut self, corpus_keys: &[u64], set: &PmcSet) -> Result<(), Error> {
        let seg_no = self.manifest.next_segment;
        let path = self.pmc_path(seg_no);
        let mut writer = SegmentWriter::create(&path, PMC_MAGIC)?;
        if let Some(cut) = self.fault.take_torn_write() {
            writer.set_torn_after(cut);
        }
        let mut buf = Vec::new();
        codec::encode_pmc_set(set, &mut buf);
        let record_key = corpus_key(corpus_keys);
        let (offset, len) = writer.append(record_key, &buf)?;
        let total = writer.finish()?;
        self.apply_flip_fault(&path);
        segment::sync_dir(&self.root);
        self.pmc_meta.insert(seg_no, SegMeta { version: 2, valid_len: total });
        self.manifest.next_segment = seg_no + 1;
        self.manifest.pmcs.retain(|e| e.corpus != corpus_keys);
        self.manifest.pmcs.push(PmcEntry {
            corpus: corpus_keys.to_vec(),
            segment: seg_no,
            offset,
            len,
        });
        if self.damaged_pmc_corpora.remove(&record_key) {
            self.records_healed += 1;
        }
        Ok(())
    }

    /// Applies an armed post-write bit flip to the finished segment at
    /// `path` (injection only; no-op for an empty plan).
    fn apply_flip_fault(&mut self, path: &Path) {
        use std::io::{Read, Seek, SeekFrom, Write};
        let Some((offset, mask)) = self.fault.take_flip() else {
            return;
        };
        let Ok(mut file) = std::fs::OpenOptions::new().read(true).write(true).open(path) else {
            return;
        };
        let mut byte = [0u8; 1];
        if file.seek(SeekFrom::Start(offset)).is_ok() && file.read_exact(&mut byte).is_ok() {
            byte[0] ^= mask;
            let _ = file
                .seek(SeekFrom::Start(offset))
                .and_then(|_| file.write_all(&byte))
                .and_then(|()| file.sync_all());
        }
    }

    /// Writes the manifest (with this run's hit/miss counters) atomically.
    pub fn flush(&mut self) -> Result<(), Error> {
        self.manifest.last_hits = self.profile_hits;
        self.manifest.last_misses = self.profile_misses;
        self.manifest.save(&self.root.join("manifest.json"))
    }

    /// Sizes of all segment files currently on disk, smallest number first.
    /// Returns `(name, bytes)` pairs plus the aggregate.
    pub fn segment_sizes(&self) -> Result<(Vec<(String, u64)>, SegmentStats), Error> {
        let mut sizes = Vec::new();
        let mut stats = SegmentStats::default();
        for n in 0..self.manifest.next_segment {
            for path in [self.segment_path(n), self.pmc_path(n)] {
                match std::fs::metadata(&path) {
                    Ok(meta) => {
                        let name = path
                            .file_name()
                            .map(|n| n.to_string_lossy().into_owned())
                            .unwrap_or_default();
                        sizes.push((name, meta.len()));
                        stats.segments += 1;
                        stats.bytes += meta.len();
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                    Err(source) => {
                        return Err(Error::Io {
                            op: "stat",
                            path,
                            source,
                        })
                    }
                }
            }
        }
        Ok((sizes, stats))
    }
}

/// Lists `(file name, kind, segment number)` for every segment file in
/// `root`, in name order.
pub(crate) fn list_segment_files(root: &Path) -> Result<Vec<(String, SegmentKind, u64)>, Error> {
    let entries = std::fs::read_dir(root).map_err(|source| Error::Io {
        op: "read-dir",
        path: root.to_path_buf(),
        source,
    })?;
    let mut files = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|source| Error::Io {
            op: "read-dir",
            path: root.to_path_buf(),
            source,
        })?;
        let name = entry.file_name().to_string_lossy().into_owned();
        let kind = if name.starts_with("seg-") {
            SegmentKind::Profile
        } else if name.starts_with("pmc-") {
            SegmentKind::Pmc
        } else {
            continue;
        };
        let Some(num) = name
            .strip_suffix(".bin")
            .and_then(|s| s.get(4..))
            .and_then(|s| s.parse::<u64>().ok())
        else {
            continue;
        };
        files.push((name, kind, num));
    }
    files.sort();
    Ok(files)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sb_kernel::prog::Syscall;
    use sb_vmm::access::{Access, AccessKind};
    use sb_vmm::site::Site;

    fn tmp_store(tag: &str) -> (PathBuf, Store) {
        let dir = std::env::temp_dir().join(format!("sb-store-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let store = Store::open(&dir).expect("open");
        (dir, store)
    }

    fn profile(test: u32, addr: u64) -> SeqProfile {
        SeqProfile {
            test,
            steps: 10,
            accesses: vec![Access {
                seq: 0,
                thread: 0,
                site: Site::intern("store:test"),
                kind: AccessKind::Write,
                addr,
                len: 8,
                value: 1,
                atomic: false,
                locks: vec![],
                rcu_depth: 0,
            }],
        }
    }

    #[test]
    fn profile_keys_depend_on_all_inputs() {
        let config = KernelConfig::v5_12_rc3();
        let p1 = Program::new(vec![Syscall::Msgget { key: 1 }]);
        let p2 = Program::new(vec![Syscall::Msgget { key: 2 }]);
        let k = profile_key(&config, 1, &p1);
        assert_eq!(k, profile_key(&config, 1, &p1.clone()));
        assert_ne!(k, profile_key(&config, 2, &p1));
        assert_ne!(k, profile_key(&config, 1, &p2));
        assert_ne!(k, profile_key(&KernelConfig::v5_3_10(), 1, &p1));
    }

    #[test]
    fn profiles_round_trip_with_test_remap_and_counters() {
        let (dir, mut store) = tmp_store("prof");
        let p = profile(3, 0x2000);
        store
            .insert_profiles(&[(111, Some(p.clone())), (222, None)])
            .expect("insert");
        store.flush().expect("flush");

        let mut store = Store::open(&dir).expect("reopen");
        match store.lookup_profile(111, 9).expect("lookup") {
            ProfileLookup::Hit(got) => {
                assert_eq!(got.test, 9, "test id remapped to current corpus index");
                assert_eq!(got.accesses, p.accesses);
                assert_eq!(got.steps, p.steps);
            }
            other => panic!("expected hit, got {other:?}"),
        }
        assert_eq!(
            store.lookup_profile(222, 1).expect("lookup"),
            ProfileLookup::FailedCached
        );
        assert_eq!(store.lookup_profile(333, 2).expect("lookup"), ProfileLookup::Miss);
        assert_eq!((store.profile_hits, store.profile_misses), (2, 1));
        assert_eq!(store.failed_cached, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn no_cache_forces_misses_but_still_writes() {
        let (dir, mut store) = tmp_store("nocache");
        store.insert_profiles(&[(5, Some(profile(0, 0x3000)))]).expect("insert");
        store.set_read_cache(false);
        assert_eq!(store.lookup_profile(5, 0).expect("lookup"), ProfileLookup::Miss);
        assert_eq!(store.lookup_pmcs(&[5]).expect("lookup"), PmcLookup::Miss);
        assert_eq!(store.profile_misses, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn pmc_lookup_prefers_exact_over_prefix() {
        let (dir, mut store) = tmp_store("pmc");
        let small = PmcSet::default();
        let mut large = PmcSet::default();
        large.pmcs.push(sample_pmc());
        store.save_pmcs(&[1, 2], &small).expect("save small");
        store.save_pmcs(&[1, 2, 3], &large).expect("save large");
        assert_eq!(store.lookup_pmcs(&[1, 2, 3]).expect("exact"), PmcLookup::Exact(large.clone()));
        assert_eq!(
            store.lookup_pmcs(&[1, 2, 3, 4]).expect("prefix"),
            PmcLookup::Prefix(large.clone(), 3)
        );
        assert_eq!(store.lookup_pmcs(&[1, 2]).expect("exact small"), PmcLookup::Exact(small));
        assert_eq!(store.lookup_pmcs(&[9, 9]).expect("miss"), PmcLookup::Miss);
        // Replacing the same corpus keeps one entry.
        store.save_pmcs(&[1, 2, 3], &large).expect("replace");
        assert_eq!(store.lookup_pmcs(&[1, 2, 3]).expect("exact"), PmcLookup::Exact(large));
        std::fs::remove_dir_all(&dir).ok();
    }

    fn sample_pmc() -> snowboard::pmc::Pmc {
        use snowboard::pmc::{PmcKey, SideKey};
        let side = |name: &str| SideKey {
            ins: Site::intern(name),
            addr: 0x1000,
            len: 8,
            value: 7,
        };
        snowboard::pmc::Pmc {
            key: PmcKey { w: side("w"), r: side("r") },
            df_leader: false,
            pairs: vec![(0, 1)],
        }
    }

    #[test]
    fn segment_sizes_and_persisted_counters() {
        let (dir, mut store) = tmp_store("sizes");
        store.insert_profiles(&[(1, Some(profile(0, 0x2000)))]).expect("insert");
        store.save_pmcs(&[1], &PmcSet::default()).expect("save");
        let _ = store.lookup_profile(1, 0).expect("hit");
        let _ = store.lookup_profile(2, 1).expect("miss");
        store.flush().expect("flush");
        let (sizes, stats) = store.segment_sizes().expect("sizes");
        assert_eq!(stats.segments, 2);
        assert_eq!(sizes.len(), 2);
        assert!(stats.bytes > 16, "magic plus records");
        let reopened = Store::open(&dir).expect("reopen");
        assert_eq!(reopened.last_counters(), (1, 1));
        assert_eq!(reopened.last_hit_rate(), Some(0.5));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn flipped_profile_record_degrades_to_damaged_and_heals() {
        let (dir, mut store) = tmp_store("flip");
        let p = profile(0, 0x4000);
        store.insert_profiles(&[(77, Some(p.clone()))]).expect("insert");
        store.flush().expect("flush");

        // Flip one payload byte of the only record.
        let seg = dir.join("seg-0000.bin");
        let mut bytes = std::fs::read(&seg).expect("read");
        let last = bytes.len() - 1;
        bytes[last] ^= 0x10;
        std::fs::write(&seg, &bytes).expect("flip");

        let mut store = Store::open(&dir).expect("reopen");
        assert_eq!(store.lookup_profile(77, 0).expect("lookup"), ProfileLookup::Damaged);
        assert_eq!((store.records_damaged, store.records_healed), (1, 0));
        assert_eq!(store.profile_misses, 1, "damage counts as a miss for hit-rate purposes");

        // Recompute-and-rewrite heals.
        store.insert_profiles(&[(77, Some(p.clone()))]).expect("heal");
        assert_eq!(store.records_healed, 1);
        store.flush().expect("flush");
        let mut store = Store::open(&dir).expect("reopen again");
        assert!(matches!(store.lookup_profile(77, 0).expect("lookup"), ProfileLookup::Hit(_)));
        assert_eq!(store.records_damaged, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_segment_file_degrades_to_damaged() {
        let (dir, mut store) = tmp_store("missing");
        store.insert_profiles(&[(8, Some(profile(0, 0x5000)))]).expect("insert");
        store.flush().expect("flush");
        std::fs::remove_file(dir.join("seg-0000.bin")).expect("remove");
        let mut store = Store::open(&dir).expect("reopen");
        assert_eq!(store.lookup_profile(8, 0).expect("lookup"), ProfileLookup::Damaged);
        assert_eq!(store.records_damaged, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn damaged_pmc_record_skips_to_prefix_or_reports_damage() {
        let (dir, mut store) = tmp_store("pmcdmg");
        let mut set = PmcSet::default();
        set.pmcs.push(sample_pmc());
        store.save_pmcs(&[1, 2], &set).expect("save prefix");
        store.save_pmcs(&[1, 2, 3], &set).expect("save exact");
        store.flush().expect("flush");

        // Damage the exact entry (pmc-0001); the [1,2] prefix still serves.
        let exact_path = dir.join("pmc-0001.bin");
        let mut bytes = std::fs::read(&exact_path).expect("read");
        let last = bytes.len() - 1;
        bytes[last] ^= 0x08;
        std::fs::write(&exact_path, &bytes).expect("flip");
        let mut store = Store::open(&dir).expect("reopen");
        assert_eq!(
            store.lookup_pmcs(&[1, 2, 3]).expect("lookup"),
            PmcLookup::Prefix(set.clone(), 2),
            "damaged exact falls back to the intact prefix"
        );
        assert_eq!(store.records_damaged, 1);

        // Saving the exact corpus again heals it.
        store.save_pmcs(&[1, 2, 3], &set).expect("heal");
        assert_eq!(store.records_healed, 1);

        // Damage everything: lookup reports Damaged, not Miss.
        for name in ["pmc-0000.bin", "pmc-0002.bin"] {
            let path = dir.join(name);
            let mut bytes = std::fs::read(&path).expect("read");
            let last = bytes.len() - 1;
            bytes[last] ^= 0x08;
            std::fs::write(&path, &bytes).expect("flip");
        }
        store.flush().expect("flush");
        let mut store = Store::open(&dir).expect("reopen");
        assert_eq!(store.lookup_pmcs(&[1, 2, 3]).expect("lookup"), PmcLookup::Damaged);
        assert_eq!(store.records_damaged, 2, "both candidates damaged");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_insert_preserves_prefix_and_orphans_are_adopted() {
        let (dir, mut store) = tmp_store("torn");
        let p0 = profile(0, 0x6000);
        store.insert_profiles(&[(10, Some(p0.clone()))]).expect("first batch");
        store.flush().expect("flush");

        // Second batch: two records, killed mid-second (after the first
        // record of the batch is fully on disk).
        let p1 = profile(1, 0x6100);
        let p2 = profile(2, 0x6200);
        let mut probe = Vec::new();
        codec::encode_profile(&p1, &mut probe);
        let first_record_bytes = 16 + probe.len() as u64;
        store.set_fault_plan(DiskFaultPlan {
            torn_write_after: Some(first_record_bytes + 5),
            ..Default::default()
        });
        let err = store
            .insert_profiles(&[(11, Some(p1.clone())), (12, Some(p2))])
            .expect_err("torn write kills the insert");
        assert!(matches!(err, Error::Injected(_)));
        drop(store); // crash: no flush, manifest never saw the batch

        let mut store = Store::open(&dir).expect("reopen");
        // The completed first batch still serves.
        assert!(matches!(store.lookup_profile(10, 0).expect("lookup"), ProfileLookup::Hit(_)));
        // The batch's first record survived the tear and was adopted.
        assert!(matches!(store.lookup_profile(11, 1).expect("lookup"), ProfileLookup::Hit(_)));
        // The torn second record is simply gone — a miss, not damage.
        assert_eq!(store.lookup_profile(12, 2).expect("lookup"), ProfileLookup::Miss);
        // The torn tail was truncated on open.
        let torn_seg = dir.join("seg-0001.bin");
        assert_eq!(
            std::fs::metadata(&torn_seg).expect("meta").len(),
            8 + first_record_bytes
        );
        // New inserts never clobber the adopted segment.
        store.insert_profiles(&[(13, Some(profile(3, 0x6300)))]).expect("insert");
        assert!(matches!(store.lookup_profile(11, 1).expect("lookup"), ProfileLookup::Hit(_)));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn short_read_injection_degrades_to_damaged() {
        let (dir, mut store) = tmp_store("shortread");
        store.insert_profiles(&[(21, Some(profile(0, 0x7000)))]).expect("insert");
        let mut plan = DiskFaultPlan::default();
        plan.short_read_keys.insert(21);
        store.set_fault_plan(plan);
        assert_eq!(store.lookup_profile(21, 0).expect("lookup"), ProfileLookup::Damaged);
        assert_eq!(store.records_damaged, 1);
        store.set_fault_plan(DiskFaultPlan::default());
        assert!(matches!(store.lookup_profile(21, 0).expect("lookup"), ProfileLookup::Hit(_)));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn flip_after_write_fault_corrupts_the_new_segment() {
        let (dir, mut store) = tmp_store("flipfault");
        store.set_fault_plan(DiskFaultPlan {
            // Offset 20 is the CRC word of the first record.
            flip_after_write: Some((20, 0xFF)),
            ..Default::default()
        });
        store.insert_profiles(&[(31, Some(profile(0, 0x8000)))]).expect("insert");
        store.flush().expect("flush");
        // Same process still trusts its in-memory meta; a reopen rescans
        // and the CRC catches the flip.
        let mut store = Store::open(&dir).expect("reopen");
        assert_eq!(store.lookup_profile(31, 0).expect("lookup"), ProfileLookup::Damaged);
        std::fs::remove_dir_all(&dir).ok();
    }
}
