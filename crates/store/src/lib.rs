//! Persistent profile/PMC store for the Snowboard pipeline.
//!
//! The paper's front end profiles ~300k sequential tests and §5.4 reports
//! that PMC identification dominates pipeline time; nothing of that work
//! survives a process exit in the in-memory pipeline. This crate adds the
//! persistence layer every scaling experiment builds on:
//!
//! * **Compact on-disk profiles** ([`codec`], [`segment`]) — access streams
//!   as varint + zigzag wrapping-delta records in append-only segment
//!   files, content-keyed by (boot config, fuzz seed, program) so unchanged
//!   tests are never re-profiled ([`manifest`], [`store`]).
//! * **Sharded parallel identification** — re-exported from
//!   `snowboard::pmc`: the write index partitioned by address range, each
//!   shard joined on its own worker, merged bit-identically to the
//!   sequential build.
//! * **Incremental re-indexing** ([`pipeline`]) — a grown corpus resumes
//!   the stored PMC set (`JoinState::resume`) and joins only the new
//!   profiles; an unchanged corpus loads the stored set outright.
//! * **Self-healing durability** ([`crc`], [`fsck`], [`fault`]) — every v2
//!   record carries a CRC32C, writers fsync before the manifest can
//!   reference them, opening truncates torn tails, and damaged records
//!   degrade to recompute-and-heal instead of failing the campaign.
//!
//! See DESIGN.md §9 for the format and the merge-determinism argument, and
//! §11 for the durability and degradation model.

pub mod codec;
pub mod crc;
pub mod fault;
pub mod fsck;
pub mod manifest;
pub mod pipeline;
pub mod segment;
pub mod store;
pub mod varint;

pub use fault::DiskFaultPlan;
pub use fsck::{fsck, repair, FsckReport, RepairReport};
pub use pipeline::prepare;
pub use store::{corpus_key, profile_key, PmcLookup, ProfileLookup, SegmentStats, Store};

/// Store error: I/O, or a structurally invalid file.
#[derive(Debug)]
pub enum Error {
    /// A decoder ran off the end of its input.
    Truncated,
    /// A decoder read structurally invalid data.
    Corrupt(&'static str),
    /// An operating-system error against a store file.
    Io {
        /// Operation that failed ("read", "write", "create-dir", …).
        op: &'static str,
        /// File or directory the operation touched.
        path: std::path::PathBuf,
        /// Underlying error.
        source: std::io::Error,
    },
    /// A store file exists but its contents are invalid.
    Format {
        /// The invalid file.
        path: std::path::PathBuf,
        /// What was wrong.
        detail: String,
    },
    /// A deterministic fault injected by a [`DiskFaultPlan`] (tests only).
    Injected(&'static str),
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::Truncated => write!(f, "record truncated"),
            Error::Corrupt(detail) => write!(f, "record corrupt: {detail}"),
            Error::Io { op, path, .. } => {
                write!(f, "store {op} failed for {}", path.display())
            }
            Error::Format { path, detail } => {
                write!(f, "invalid store file {}: {detail}", path.display())
            }
            Error::Injected(what) => write!(f, "injected disk fault: {what}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}
