//! Store-backed pipeline preparation.
//!
//! [`prepare`] is `snowboard::Pipeline::prepare` with persistence spliced
//! into stages 1–2: profiles are served from the store when their content
//! key matches (unchanged tests are never re-profiled), only misses are
//! executed, and PMC identification reuses a stored set — whole on an exact
//! corpus match, incrementally grown on a prefix match, rebuilt with the
//! sharded parallel path otherwise.
//!
//! Store damage never aborts preparation: `Damaged` lookups are treated as
//! misses, recomputed, and rewritten — so a run against a corrupted store
//! produces results bit-identical to a cold run, plus healed records.

use std::time::Instant;

use sb_kernel::{boot, KernelConfig};
use snowboard::metrics::StoreStats;
use snowboard::pmc::{IdentifyOpts, JoinState};
use snowboard::profile::{self, SeqProfile};
use snowboard::{trace_keys, Pipeline, PipelineCfg, PrepStats};

use crate::store::{profile_key, PmcLookup, ProfileLookup, Store};
use crate::Error;

/// Prepares pipeline stages 1–2 against `store`. Returns the prepared
/// pipeline plus this run's store effectiveness counters.
pub fn prepare(
    config: KernelConfig,
    cfg: &PipelineCfg,
    identify: &IdentifyOpts,
    store: &mut Store,
) -> Result<(Pipeline, StoreStats), Error> {
    let tracer = cfg.tracer.clone();
    let prep = tracer.span("prepare");
    let booted = boot(config);
    let t0 = Instant::now();
    let (corpus, fuzz_stats) = {
        let _s = prep.child("fuzz");
        sb_fuzz::build_corpus(&booted, cfg.seed, cfg.corpus_target, cfg.fuzz_budget)
    };
    let fuzz_time = t0.elapsed();

    // Stage 1: profile, serving unchanged tests from the store.
    let t1 = Instant::now();
    let profile_span = prep.child("profile");
    let keys: Vec<u64> = corpus
        .iter()
        .map(|p| profile_key(&config, cfg.seed, p))
        .collect();
    let mut slots: Vec<Option<Option<SeqProfile>>> = vec![None; corpus.len()];
    let mut jobs = Vec::new();
    for (i, prog) in corpus.iter().enumerate() {
        match store.lookup_profile(keys[i], i as u32)? {
            ProfileLookup::Hit(p) => slots[i] = Some(Some(p)),
            ProfileLookup::FailedCached => slots[i] = Some(None),
            // Damaged records are quarantined misses: the recompute below
            // rewrites them, healing the store as a side effect.
            ProfileLookup::Miss | ProfileLookup::Damaged => jobs.push((i as u32, prog.clone())),
        }
    }
    let fresh = profile::profile_jobs_traced(&booted, jobs, cfg.workers, &tracer);
    let batch: Vec<(u64, Option<SeqProfile>)> = fresh
        .iter()
        .map(|(i, p)| (keys[*i as usize], p.clone()))
        .collect();
    store.insert_profiles(&batch)?;
    for (i, p) in fresh {
        slots[i as usize] = Some(p);
    }
    let profiles: Vec<SeqProfile> = slots
        .into_iter()
        .filter_map(|s| s.expect("every corpus entry resolved"))
        .collect();
    drop(profile_span);
    let profile_time = t1.elapsed();

    // Stage 2: identify, reusing a stored set when possible.
    let t2 = Instant::now();
    let identify_span = prep.child("identify");
    let mut pmc_cache_hit = false;
    let mut pmc_incremental = false;
    let mut shard_report = None;
    let pmcs = match store.lookup_pmcs(&keys)? {
        PmcLookup::Exact(set) => {
            pmc_cache_hit = true;
            set
        }
        PmcLookup::Prefix(set, prefix_len) => {
            pmc_incremental = true;
            let (old, new): (Vec<SeqProfile>, Vec<SeqProfile>) = profiles
                .iter()
                .cloned()
                .partition(|p| (p.test as usize) < prefix_len);
            let mut st = JoinState::resume(&old, set);
            shard_report = Some(st.add_profiles(&new, identify));
            st.into_set()
        }
        // A damaged PMC record rebuilds like a miss; the save below heals
        // the entry.
        PmcLookup::Miss | PmcLookup::Damaged => {
            let mut st = JoinState::new();
            shard_report = Some(st.add_profiles(&profiles, identify));
            st.into_set()
        }
    };
    if !pmc_cache_hit {
        store.save_pmcs(&keys, &pmcs)?;
    }
    store.flush()?;
    drop(identify_span);
    let identify_time = t2.elapsed();

    tracer.count(trace_keys::STORE_PROFILE_HITS, store.profile_hits);
    tracer.count(trace_keys::STORE_PROFILE_MISSES, store.profile_misses);
    tracer.count(trace_keys::STORE_RECORDS_DAMAGED, store.records_damaged);
    tracer.count(trace_keys::STORE_RECORDS_HEALED, store.records_healed);
    tracer.count(trace_keys::PIPELINE_PROFILES, profiles.len() as u64);
    tracer.count(
        trace_keys::PIPELINE_SHARED_ACCESSES,
        profiles.iter().map(|p| p.accesses.len() as u64).sum(),
    );
    tracer.count(trace_keys::PIPELINE_PMCS, pmcs.len() as u64);

    let (_, seg_stats) = store.segment_sizes()?;
    let store_stats = StoreStats {
        profile_hits: store.profile_hits,
        profile_misses: store.profile_misses,
        failed_cached: store.failed_cached,
        pmc_cache_hit,
        pmc_incremental,
        segments: seg_stats.segments,
        stored_bytes: seg_stats.bytes,
        shards: identify.shards as u64,
        shard_skew: shard_report.as_ref().map_or(0.0, |r| r.skew()),
        records_damaged: store.records_damaged,
        records_healed: store.records_healed,
    };
    let stats = PrepStats {
        fuzz_executed: fuzz_stats.executed,
        corpus_kept: fuzz_stats.kept,
        edges: fuzz_stats.edges,
        shared_accesses: profiles.iter().map(|p| p.accesses.len()).sum(),
        pmcs_identified: pmcs.len(),
        fuzz_time,
        profile_time,
        identify_time,
    };
    Ok((
        Pipeline {
            booted,
            corpus,
            profiles,
            pmcs,
            stats,
        },
        store_stats,
    ))
}
