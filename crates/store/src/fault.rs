//! Deterministic disk-fault injection for the store.
//!
//! Mirrors `snowboard::FaultPlan`: plain data, always compiled in, empty by
//! default (and checked with one cheap branch per site). Tests aim faults
//! at exact byte positions, so crash-consistency claims are exercised at
//! every boundary instead of whenever the OS feels like tearing a write.

use std::collections::BTreeSet;

/// A deterministic plan of disk faults to inject into one [`crate::Store`].
///
/// * `torn_write_after` — the next segment write stops after this many
///   record-area bytes (the magic always lands) and fails as if the process
///   had been killed mid-`insert_profiles`: the partial file is synced to
///   disk and the manifest is never updated.
/// * `flip_after_write` — after the next segment write completes, XOR the
///   mask into the byte at the absolute file offset: silent media
///   corruption that only checksum verification can catch.
/// * `short_read_keys` — record reads for these content keys behave as if
///   the file ended one byte early (a short read), so the lookup must
///   degrade to `Damaged` rather than serve a partial payload.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DiskFaultPlan {
    /// One-shot: cut the next segment write after N record-area bytes.
    pub torn_write_after: Option<u64>,
    /// One-shot: XOR `(offset, mask)` into the next finished segment file.
    pub flip_after_write: Option<(u64, u8)>,
    /// Persistent: keys whose record reads come up short.
    pub short_read_keys: BTreeSet<u64>,
}

impl DiskFaultPlan {
    /// True when no fault is armed (the default; the hot path checks this).
    pub fn is_empty(&self) -> bool {
        self.torn_write_after.is_none()
            && self.flip_after_write.is_none()
            && self.short_read_keys.is_empty()
    }

    /// Consumes the one-shot torn-write cutoff, if armed.
    pub(crate) fn take_torn_write(&mut self) -> Option<u64> {
        self.torn_write_after.take()
    }

    /// Consumes the one-shot post-write bit flip, if armed.
    pub(crate) fn take_flip(&mut self) -> Option<(u64, u8)> {
        self.flip_after_write.take()
    }

    /// Whether reads of `key` should come up short.
    pub(crate) fn short_read(&self, key: u64) -> bool {
        !self.short_read_keys.is_empty() && self.short_read_keys.contains(&key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_empty_and_one_shots_disarm() {
        let mut plan = DiskFaultPlan::default();
        assert!(plan.is_empty());
        assert_eq!(plan.take_torn_write(), None);

        plan.torn_write_after = Some(5);
        plan.flip_after_write = Some((8, 0x01));
        plan.short_read_keys.insert(42);
        assert!(!plan.is_empty());
        assert_eq!(plan.take_torn_write(), Some(5));
        assert_eq!(plan.take_torn_write(), None, "one-shot");
        assert_eq!(plan.take_flip(), Some((8, 0x01)));
        assert_eq!(plan.take_flip(), None, "one-shot");
        assert!(plan.short_read(42));
        assert!(!plan.short_read(41));
        assert!(plan.short_read(42), "short reads persist");
    }
}
