//! The store manifest: content key → segment address, plus PMC indexes.
//!
//! The manifest is the only mutable file in a store. It is JSON (human
//! inspectable mid-campaign, like the campaign checkpoint) rendered through
//! `snowboard::json`, whose numbers are unsigned integers only — content
//! keys are 64-bit hashes and must survive u64-exactly. Writes go through
//! `snowboard::json::atomic_write`, so a killed process never leaves a torn
//! manifest; at worst the last run's additions are lost and re-profiled.

use std::collections::BTreeMap;
use std::path::Path;

use snowboard::json::{self, Json};

use crate::Error;

/// Current manifest format version.
pub const VERSION: u64 = 1;

/// Where one profile lives, or the memo that its test failed sequentially.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProfileStatus {
    /// Stored at this segment address.
    Ok {
        /// Segment file number (`seg-<n>.bin`).
        segment: u64,
        /// Record offset within the segment.
        offset: u64,
        /// Payload length in bytes.
        len: u64,
    },
    /// The test did not complete sequentially; there is nothing to store,
    /// but the *failure* is cached so warm runs skip re-executing it.
    Failed,
}

/// One persisted PMC set and the exact corpus (as profile keys, in order)
/// it was identified from.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PmcEntry {
    /// Profile keys of the corpus, in corpus order.
    pub corpus: Vec<u64>,
    /// PMC segment file number (`pmc-<n>.bin`).
    pub segment: u64,
    /// Record offset within the segment.
    pub offset: u64,
    /// Payload length in bytes.
    pub len: u64,
}

/// The manifest document.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Manifest {
    /// Next segment file number to allocate (shared by profile and PMC
    /// segments).
    pub next_segment: u64,
    /// Profile content key → status.
    pub profiles: BTreeMap<u64, ProfileStatus>,
    /// Persisted PMC sets, oldest first.
    pub pmcs: Vec<PmcEntry>,
    /// Profile cache hits of the most recent completed run.
    pub last_hits: u64,
    /// Profile cache misses of the most recent completed run.
    pub last_misses: u64,
}

impl Manifest {
    /// Loads the manifest at `path`; a missing file is an empty store.
    pub fn load(path: &Path) -> Result<Manifest, Error> {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Ok(Manifest::default())
            }
            Err(source) => {
                return Err(Error::Io {
                    op: "read",
                    path: path.to_path_buf(),
                    source,
                })
            }
        };
        let doc = json::parse(&text).map_err(|detail| Error::Format {
            path: path.to_path_buf(),
            detail,
        })?;
        Manifest::from_json(&doc).map_err(|detail| Error::Format {
            path: path.to_path_buf(),
            detail,
        })
    }

    /// Atomically writes the manifest to `path`.
    pub fn save(&self, path: &Path) -> Result<(), Error> {
        let text = self.to_json().render();
        json::atomic_write(path, &text).map_err(|(op, path, source)| Error::Io { op, path, source })
    }

    fn to_json(&self) -> Json {
        let profiles = self
            .profiles
            .iter()
            .map(|(key, status)| {
                let value = match status {
                    ProfileStatus::Ok { segment, offset, len } => Json::Obj(vec![
                        ("status".into(), Json::Str("ok".into())),
                        ("segment".into(), Json::U64(*segment)),
                        ("offset".into(), Json::U64(*offset)),
                        ("len".into(), Json::U64(*len)),
                    ]),
                    ProfileStatus::Failed => {
                        Json::Obj(vec![("status".into(), Json::Str("failed".into()))])
                    }
                };
                (key.to_string(), value)
            })
            .collect();
        let pmcs = self
            .pmcs
            .iter()
            .map(|e| {
                Json::Obj(vec![
                    (
                        "corpus".into(),
                        Json::Arr(e.corpus.iter().map(|k| Json::U64(*k)).collect()),
                    ),
                    ("segment".into(), Json::U64(e.segment)),
                    ("offset".into(), Json::U64(e.offset)),
                    ("len".into(), Json::U64(e.len)),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("version".into(), Json::U64(VERSION)),
            ("next_segment".into(), Json::U64(self.next_segment)),
            ("last_hits".into(), Json::U64(self.last_hits)),
            ("last_misses".into(), Json::U64(self.last_misses)),
            ("profiles".into(), Json::Obj(profiles)),
            ("pmcs".into(), Json::Arr(pmcs)),
        ])
    }

    fn from_json(doc: &Json) -> Result<Manifest, String> {
        let version = doc
            .get("version")
            .and_then(Json::as_u64)
            .ok_or("missing version")?;
        if version != VERSION {
            return Err(format!("unsupported manifest version {version}"));
        }
        let u64_field = |obj: &Json, key: &str| -> Result<u64, String> {
            obj.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("missing {key}"))
        };
        let mut profiles = BTreeMap::new();
        let Some(Json::Obj(fields)) = doc.get("profiles") else {
            return Err("missing profiles object".into());
        };
        for (key, value) in fields {
            let key: u64 = key.parse().map_err(|_| format!("bad profile key {key:?}"))?;
            let status = match value.get("status").and_then(Json::as_str) {
                Some("ok") => ProfileStatus::Ok {
                    segment: u64_field(value, "segment")?,
                    offset: u64_field(value, "offset")?,
                    len: u64_field(value, "len")?,
                },
                Some("failed") => ProfileStatus::Failed,
                other => return Err(format!("bad profile status {other:?}")),
            };
            profiles.insert(key, status);
        }
        let mut pmcs = Vec::new();
        let Some(Json::Arr(entries)) = doc.get("pmcs") else {
            return Err("missing pmcs array".into());
        };
        for e in entries {
            let Some(Json::Arr(corpus)) = e.get("corpus") else {
                return Err("missing pmc corpus array".into());
            };
            let corpus = corpus
                .iter()
                .map(|k| k.as_u64().ok_or("non-integer corpus key"))
                .collect::<Result<Vec<u64>, _>>()?;
            pmcs.push(PmcEntry {
                corpus,
                segment: u64_field(e, "segment")?,
                offset: u64_field(e, "offset")?,
                len: u64_field(e, "len")?,
            });
        }
        Ok(Manifest {
            next_segment: u64_field(doc, "next_segment")?,
            profiles,
            pmcs,
            last_hits: u64_field(doc, "last_hits")?,
            last_misses: u64_field(doc, "last_misses")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Manifest {
        let mut profiles = BTreeMap::new();
        profiles.insert(
            u64::MAX,
            ProfileStatus::Ok { segment: 0, offset: 8, len: 123 },
        );
        profiles.insert(7, ProfileStatus::Failed);
        Manifest {
            next_segment: 2,
            profiles,
            pmcs: vec![PmcEntry {
                corpus: vec![u64::MAX, 7, 0],
                segment: 1,
                offset: 8,
                len: 456,
            }],
            last_hits: 10,
            last_misses: 2,
        }
    }

    #[test]
    fn manifest_round_trips_through_json() {
        let m = sample();
        let doc = json::parse(&m.to_json().render()).expect("parse");
        assert_eq!(Manifest::from_json(&doc).expect("from_json"), m);
    }

    #[test]
    fn manifest_round_trips_through_disk_and_missing_file_is_empty() {
        let dir = std::env::temp_dir().join(format!("sb-store-man-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("manifest.json");
        assert_eq!(Manifest::load(&path).expect("fresh"), Manifest::default());
        let m = sample();
        m.save(&path).expect("save");
        assert_eq!(Manifest::load(&path).expect("load"), m);
        std::fs::write(&path, "{not json").expect("corrupt");
        assert!(matches!(Manifest::load(&path), Err(Error::Format { .. })));
        std::fs::remove_dir_all(&dir).ok();
    }
}
