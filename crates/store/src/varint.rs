//! LEB128 varints and zigzag wrapping-delta coding.
//!
//! Everything the store persists is a `u64`; access streams are highly
//! local (consecutive sequence numbers, repeated sites, nearby addresses),
//! so fields are stored as the zigzag of the *wrapping* difference from the
//! previous value. Wrapping arithmetic makes the transform a bijection on
//! `u64` — every pair of values round-trips exactly, including `0` and
//! `u64::MAX`.

use crate::Error;

/// Appends `v` to `out` as an LEB128 varint (1–10 bytes).
pub fn put_u64(mut v: u64, out: &mut Vec<u8>) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Reads an LEB128 varint from `buf` at `*pos`, advancing `*pos`.
pub fn get_u64(buf: &[u8], pos: &mut usize) -> Result<u64, Error> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let b = *buf.get(*pos).ok_or(Error::Truncated)?;
        *pos += 1;
        let payload = u64::from(b & 0x7F);
        // The 10th byte carries bits 63.. — only 0 or 1 fit.
        if shift == 63 && payload > 1 {
            return Err(Error::Corrupt("varint overflows u64"));
        }
        v |= payload << shift;
        if b & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
        if shift > 63 {
            return Err(Error::Corrupt("varint longer than 10 bytes"));
        }
    }
}

/// Maps a signed delta to an unsigned varint-friendly value
/// (0, -1, 1, -2, … → 0, 1, 2, 3, …).
fn zigzag(d: i64) -> u64 {
    ((d as u64) << 1) ^ ((d >> 63) as u64)
}

/// Inverse of [`zigzag`].
fn unzigzag(z: u64) -> i64 {
    ((z >> 1) as i64) ^ -((z & 1) as i64)
}

/// Appends `cur` encoded as the zigzag wrapping delta from `prev`.
pub fn put_delta(prev: u64, cur: u64, out: &mut Vec<u8>) {
    put_u64(zigzag(cur.wrapping_sub(prev) as i64), out);
}

/// Reads a value encoded by [`put_delta`] against the same `prev`.
pub fn get_delta(prev: u64, buf: &[u8], pos: &mut usize) -> Result<u64, Error> {
    Ok(prev.wrapping_add(unzigzag(get_u64(buf, pos)?) as u64))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_round_trips_edge_values() {
        for v in [
            0u64,
            1,
            0x7F,
            0x80,
            0x3FFF,
            0x4000,
            u64::from(u32::MAX),
            u64::MAX - 1,
            u64::MAX,
        ] {
            let mut buf = vec![];
            put_u64(v, &mut buf);
            let mut pos = 0;
            assert_eq!(get_u64(&buf, &mut pos).unwrap(), v);
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn varint_rejects_truncation_and_overflow() {
        let mut buf = vec![];
        put_u64(u64::MAX, &mut buf);
        for cut in 0..buf.len() {
            let mut pos = 0;
            assert!(matches!(get_u64(&buf[..cut], &mut pos), Err(Error::Truncated)));
        }
        // 10 continuation bytes then a terminator: too long.
        let long = [0x80u8, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x00];
        let mut pos = 0;
        assert!(get_u64(&long, &mut pos).is_err());
        // 10th byte with payload > 1 overflows bit 63.
        let wide = [0xFFu8, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x02];
        let mut pos = 0;
        assert!(get_u64(&wide, &mut pos).is_err());
    }

    #[test]
    fn delta_round_trips_any_pair() {
        let pairs = [
            (0u64, 0u64),
            (0, u64::MAX),
            (u64::MAX, 0),
            (5, 3),
            (3, 5),
            (u64::MAX, u64::MAX),
            (1 << 63, (1 << 63) - 1),
        ];
        for (prev, cur) in pairs {
            let mut buf = vec![];
            put_delta(prev, cur, &mut buf);
            let mut pos = 0;
            assert_eq!(get_delta(prev, &buf, &mut pos).unwrap(), cur, "{prev} -> {cur}");
        }
    }

    #[test]
    fn small_deltas_stay_small() {
        let mut buf = vec![];
        put_delta(1000, 1001, &mut buf);
        assert_eq!(buf.len(), 1);
        buf.clear();
        put_delta(1001, 1000, &mut buf);
        assert_eq!(buf.len(), 1);
    }

    #[test]
    fn zigzag_is_a_bijection_on_edges() {
        for d in [0i64, -1, 1, i64::MIN, i64::MAX] {
            assert_eq!(unzigzag(zigzag(d)), d);
        }
    }
}
