//! Offline store checking and repair (`store fsck` / `store repair`).
//!
//! Both operate directly on the files — they never go through
//! [`crate::Store::open`], which would itself truncate torn tails and adopt
//! orphans. `fsck` is strictly read-only: it walks every manifest entry,
//! verifies magic/key/len/CRC against a full segment scan, and reports
//! per-segment damage. `repair` applies the destructive subset a campaign
//! would heal anyway: truncate torn tails, drop manifest entries whose
//! records are damaged, and rewrite the manifest atomically.

use std::collections::BTreeMap;
use std::path::Path;

use crate::manifest::{Manifest, ProfileStatus};
use crate::segment::{self, header_len, ScannedRecord, SegmentKind, SegmentScan};
use crate::store::{corpus_key, list_segment_files};
use crate::Error;

/// One damage observation, tied to the file it was seen in.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Problem {
    /// Segment file name (or `manifest.json`).
    pub file: String,
    /// What is wrong.
    pub detail: String,
}

impl std::fmt::Display for Problem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.file, self.detail)
    }
}

/// Result of walking every manifest entry against the segment files.
#[derive(Clone, Debug, Default)]
pub struct FsckReport {
    /// Segment files scanned.
    pub segments: u64,
    /// Manifest entries whose records verified clean.
    pub records_ok: u64,
    /// Manifest entries whose records are damaged (missing file, bad magic,
    /// torn region, key/len/CRC mismatch).
    pub records_damaged: u64,
    /// Bytes of torn tail across all segments.
    pub torn_bytes: u64,
    /// Every damage observation, in walk order.
    pub problems: Vec<Problem>,
}

impl FsckReport {
    /// True when the store verified clean.
    pub fn clean(&self) -> bool {
        self.records_damaged == 0 && self.torn_bytes == 0 && self.problems.is_empty()
    }
}

/// What [`repair`] changed.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RepairReport {
    /// Profile entries dropped from the manifest.
    pub dropped_profiles: u64,
    /// PMC entries dropped from the manifest.
    pub dropped_pmcs: u64,
    /// Segment files whose torn tails were truncated.
    pub truncated_segments: u64,
    /// Segment files with unrecognizable magic that were removed (every
    /// manifest entry pointing into one is necessarily damaged and dropped,
    /// so nothing references the file afterwards).
    pub removed_segments: u64,
}

impl RepairReport {
    /// True when the store needed no changes.
    pub fn untouched(&self) -> bool {
        *self == RepairReport::default()
    }
}

struct Scans {
    profile: BTreeMap<u64, SegmentScan>,
    pmc: BTreeMap<u64, SegmentScan>,
}

fn scan_all(root: &Path, report: &mut FsckReport) -> Result<Scans, Error> {
    let mut scans = Scans {
        profile: BTreeMap::new(),
        pmc: BTreeMap::new(),
    };
    for (name, kind, n) in list_segment_files(root)? {
        let scan = segment::scan(&root.join(&name), kind)?;
        report.segments += 1;
        if scan.version == 0 {
            report.problems.push(Problem {
                file: name.clone(),
                detail: "unrecognized magic".into(),
            });
        } else if scan.torn_bytes() > 0 {
            report.torn_bytes += scan.torn_bytes();
            report.problems.push(Problem {
                file: name.clone(),
                detail: format!(
                    "torn tail: {} trailing byte(s) past the valid prefix at {}",
                    scan.torn_bytes(),
                    scan.valid_len
                ),
            });
        }
        match kind {
            SegmentKind::Profile => scans.profile.insert(n, scan),
            SegmentKind::Pmc => scans.pmc.insert(n, scan),
        };
    }
    Ok(scans)
}

/// Verdict for one manifest entry against the scans. `None` means clean.
fn entry_damage(
    scans: &BTreeMap<u64, SegmentScan>,
    seg_no: u64,
    offset: u64,
    len: u64,
    key: u64,
) -> Option<String> {
    let Some(scan) = scans.get(&seg_no) else {
        return Some(format!("segment file missing for record {key:#x}"));
    };
    if scan.version == 0 {
        return Some(format!("record {key:#x} in a segment with unrecognized magic"));
    }
    if offset + header_len(scan.version) + len > scan.valid_len {
        return Some(format!("record {key:#x} at offset {offset} is past the valid prefix"));
    }
    let Some(rec) = scan
        .records
        .iter()
        .find(|r: &&ScannedRecord| r.offset == offset)
    else {
        return Some(format!("no record boundary at offset {offset} for {key:#x}"));
    };
    if rec.key != key {
        return Some(format!(
            "key mismatch at offset {offset}: manifest says {key:#x}, record says {:#x}",
            rec.key
        ));
    }
    if rec.len != len {
        return Some(format!(
            "length mismatch at offset {offset}: manifest says {len}, record says {}",
            rec.len
        ));
    }
    if !rec.crc_ok {
        return Some(format!("checksum mismatch for record {key:#x} at offset {offset}"));
    }
    None
}

/// Everything one pass over the store yields: the manifest, per-segment
/// scans, the fsck verdict, and which entries the verdict condemned.
struct Walk {
    manifest: Manifest,
    scans: Scans,
    report: FsckReport,
    bad_profiles: Vec<u64>,
    bad_pmcs: Vec<usize>,
}

fn walk(root: &Path) -> Result<Walk, Error> {
    let mut report = FsckReport::default();
    let manifest = Manifest::load(&root.join("manifest.json"))?;
    let scans = scan_all(root, &mut report)?;
    let mut bad_profiles = Vec::new();
    let mut bad_pmcs = Vec::new();
    for (key, status) in &manifest.profiles {
        let ProfileStatus::Ok { segment, offset, len } = status else {
            continue; // negative entries have no record to verify
        };
        match entry_damage(&scans.profile, *segment, *offset, *len, *key) {
            Some(detail) => {
                report.records_damaged += 1;
                report.problems.push(Problem {
                    file: format!("seg-{segment:04}.bin"),
                    detail,
                });
                bad_profiles.push(*key);
            }
            None => report.records_ok += 1,
        }
    }
    for (idx, entry) in manifest.pmcs.iter().enumerate() {
        let key = corpus_key(&entry.corpus);
        match entry_damage(&scans.pmc, entry.segment, entry.offset, entry.len, key) {
            Some(detail) => {
                report.records_damaged += 1;
                report.problems.push(Problem {
                    file: format!("pmc-{:04}.bin", entry.segment),
                    detail,
                });
                bad_pmcs.push(idx);
            }
            None => report.records_ok += 1,
        }
    }
    Ok(Walk { manifest, scans, report, bad_profiles, bad_pmcs })
}

/// Walks every manifest entry of the store at `root`, verifying magic, key,
/// length, and CRC of each record, plus torn tails. Read-only. `Err` means
/// the walk itself could not run (missing directory, unreadable manifest) —
/// damage is reported in the `Ok` report, not as an error.
pub fn fsck(root: &Path) -> Result<FsckReport, Error> {
    Ok(walk(root)?.report)
}

/// Repairs the store at `root`: truncates torn segment tails, drops
/// manifest entries whose records are damaged, and rewrites the manifest
/// atomically. Dropped entries cost a recompute on the next run — never
/// correctness.
pub fn repair(root: &Path) -> Result<RepairReport, Error> {
    let Walk { mut manifest, scans, bad_profiles, bad_pmcs, .. } = walk(root)?;
    let mut report = RepairReport::default();
    let files = scans
        .profile
        .iter()
        .map(|(n, s)| (format!("seg-{n:04}.bin"), s))
        .chain(scans.pmc.iter().map(|(n, s)| (format!("pmc-{n:04}.bin"), s)));
    for (name, scan) in files {
        let path = root.join(&name);
        if scan.version == 0 {
            if std::fs::remove_file(&path).is_ok() {
                report.removed_segments += 1;
            }
        } else if scan.torn_bytes() > 0 && segment::truncate_torn_tail(&path, scan) {
            report.truncated_segments += 1;
        }
    }
    for key in &bad_profiles {
        manifest.profiles.remove(key);
        report.dropped_profiles += 1;
    }
    let mut idx = 0usize;
    manifest.pmcs.retain(|_| {
        let drop = bad_pmcs.contains(&idx);
        idx += 1;
        !drop
    });
    report.dropped_pmcs += bad_pmcs.len() as u64;
    // Never let a rewound manifest reuse an on-disk segment number.
    let max_seen = scans
        .profile
        .keys()
        .chain(scans.pmc.keys())
        .max()
        .copied();
    if let Some(m) = max_seen {
        manifest.next_segment = manifest.next_segment.max(m + 1);
    }
    manifest.save(&root.join("manifest.json"))?;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::Store;
    use crate::DiskFaultPlan;
    use snowboard::pmc::PmcSet;
    use snowboard::profile::SeqProfile;
    use std::path::PathBuf;

    fn tmp(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("sb-fsck-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    fn profile(test: u32) -> SeqProfile {
        SeqProfile {
            test,
            steps: 5,
            accesses: vec![],
        }
    }

    fn populate(dir: &Path) {
        let mut store = Store::open(dir).expect("open");
        store
            .insert_profiles(&[(1, Some(profile(0))), (2, Some(profile(1))), (3, None)])
            .expect("insert");
        store.save_pmcs(&[1, 2, 3], &PmcSet::default()).expect("save");
        store.flush().expect("flush");
    }

    #[test]
    fn clean_store_passes_fsck() {
        let dir = tmp("clean");
        populate(&dir);
        let report = fsck(&dir).expect("fsck");
        assert!(report.clean(), "problems: {:?}", report.problems);
        assert_eq!(report.records_ok, 3, "two profile records plus one PMC record");
        assert_eq!(report.segments, 2);
        assert!(repair(&dir).expect("repair").untouched());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fsck_finds_flip_and_repair_drops_it() {
        let dir = tmp("flip");
        populate(&dir);
        let seg = dir.join("seg-0000.bin");
        let mut bytes = std::fs::read(&seg).expect("read");
        bytes[20] ^= 0xFF; // CRC word of the first record
        std::fs::write(&seg, &bytes).expect("flip");

        let report = fsck(&dir).expect("fsck");
        assert!(!report.clean());
        assert_eq!(report.records_damaged, 1);
        assert!(report.problems[0].detail.contains("checksum"));

        let rep = repair(&dir).expect("repair");
        assert_eq!(rep.dropped_profiles, 1);
        assert!(fsck(&dir).expect("re-fsck").clean(), "repair makes fsck clean");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fsck_finds_torn_tail_and_missing_segment() {
        let dir = tmp("torn");
        populate(&dir);
        {
            // Crash mid-insert: a torn segment the manifest never saw.
            let mut store = Store::open(&dir).expect("open");
            store.set_fault_plan(DiskFaultPlan {
                torn_write_after: Some(7),
                ..Default::default()
            });
            store
                .insert_profiles(&[(9, Some(profile(9)))])
                .expect_err("torn");
        }
        let report = fsck(&dir).expect("fsck");
        assert!(!report.clean());
        assert!(report.torn_bytes > 0);

        std::fs::remove_file(dir.join("pmc-0001.bin")).expect("remove");
        let report = fsck(&dir).expect("fsck");
        assert!(report.problems.iter().any(|p| p.detail.contains("missing")));

        let rep = repair(&dir).expect("repair");
        assert!(rep.truncated_segments >= 1);
        assert_eq!(rep.dropped_pmcs, 1);
        assert!(fsck(&dir).expect("re-fsck").clean());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn repair_removes_a_segment_with_destroyed_magic() {
        let dir = tmp("magic");
        populate(&dir);
        let seg = dir.join("seg-0000.bin");
        let mut bytes = std::fs::read(&seg).expect("read");
        bytes[0] ^= 0xFF;
        std::fs::write(&seg, &bytes).expect("write");

        let report = fsck(&dir).expect("fsck");
        assert!(report.problems.iter().any(|p| p.detail.contains("magic")));
        assert_eq!(report.records_damaged, 2, "both profile records unreadable");

        let rep = repair(&dir).expect("repair");
        assert_eq!(rep.removed_segments, 1);
        assert_eq!(rep.dropped_profiles, 2);
        assert!(!seg.exists(), "unrecognizable segment removed");
        assert!(fsck(&dir).expect("re-fsck").clean());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fsck_errors_only_when_the_walk_cannot_run() {
        let dir = tmp("nodir");
        assert!(matches!(fsck(&dir), Err(Error::Io { .. })), "missing directory");
        std::fs::create_dir_all(&dir).expect("mkdir");
        std::fs::write(dir.join("manifest.json"), "{broken").expect("write");
        assert!(matches!(fsck(&dir), Err(Error::Format { .. })), "unreadable manifest");
        std::fs::remove_dir_all(&dir).ok();
    }
}
