//! Binary codecs for profiles and PMC sets.
//!
//! A profile's access stream is stored field-major-less: one flags byte per
//! access, then each `u64` field as a zigzag wrapping delta against the same
//! field of the previous access ([`crate::varint`]). Sequential traces are
//! extremely local — consecutive `seq`, repeated sites in loops, clustered
//! addresses — so typical accesses cost a few bytes instead of the ~50 of
//! the in-memory form. All transforms are bijections on `u64`, so decoding
//! reproduces the input exactly (property-tested in `tests/codec_props.rs`).

use sb_vmm::access::{Access, AccessKind};
use sb_vmm::site::Site;
use snowboard::pmc::{Pmc, PmcKey, PmcSet, SideKey};
use snowboard::profile::SeqProfile;

use crate::varint::{get_delta, get_u64, put_delta, put_u64};
use crate::Error;

/// Per-access flags byte layout.
const FLAG_WRITE: u8 = 1 << 0;
const FLAG_ATOMIC: u8 = 1 << 1;
const LEN_SHIFT: u32 = 2;

/// Field-delta state threaded through an access stream.
#[derive(Default)]
struct AccessPrev {
    seq: u64,
    site: u64,
    addr: u64,
    value: u64,
}

/// Encodes one profile into `out`.
pub fn encode_profile(p: &SeqProfile, out: &mut Vec<u8>) {
    put_u64(u64::from(p.test), out);
    put_u64(p.steps, out);
    put_u64(p.accesses.len() as u64, out);
    let mut prev = AccessPrev::default();
    for a in &p.accesses {
        assert!(a.len <= 15, "access length {} exceeds the 4-bit field", a.len);
        let mut flags = a.len << LEN_SHIFT;
        if a.kind.is_write() {
            flags |= FLAG_WRITE;
        }
        if a.atomic {
            flags |= FLAG_ATOMIC;
        }
        out.push(flags);
        put_delta(prev.seq, a.seq, out);
        put_u64(a.thread as u64, out);
        put_delta(prev.site, a.site.0, out);
        put_delta(prev.addr, a.addr, out);
        put_delta(prev.value, a.value, out);
        put_u64(u64::from(a.rcu_depth), out);
        put_u64(a.locks.len() as u64, out);
        let mut prev_lock = 0u64;
        for &l in &a.locks {
            put_delta(prev_lock, l, out);
            prev_lock = l;
        }
        prev = AccessPrev {
            seq: a.seq,
            site: a.site.0,
            addr: a.addr,
            value: a.value,
        };
    }
}

/// Decodes a profile encoded by [`encode_profile`]. The whole buffer must be
/// consumed.
pub fn decode_profile(buf: &[u8]) -> Result<SeqProfile, Error> {
    let mut pos = 0;
    let test = u32::try_from(get_u64(buf, &mut pos)?)
        .map_err(|_| Error::Corrupt("test id exceeds u32"))?;
    let steps = get_u64(buf, &mut pos)?;
    let count = get_u64(buf, &mut pos)?;
    // Each access takes at least 8 bytes; reject absurd counts before
    // reserving memory for them.
    if count > buf.len() as u64 {
        return Err(Error::Corrupt("access count exceeds payload size"));
    }
    let mut accesses = Vec::with_capacity(count as usize);
    let mut prev = AccessPrev::default();
    for _ in 0..count {
        let flags = *buf.get(pos).ok_or(Error::Truncated)?;
        pos += 1;
        let kind = if flags & FLAG_WRITE != 0 {
            AccessKind::Write
        } else {
            AccessKind::Read
        };
        let atomic = flags & FLAG_ATOMIC != 0;
        let len = flags >> LEN_SHIFT;
        let seq = get_delta(prev.seq, buf, &mut pos)?;
        let thread = get_u64(buf, &mut pos)? as usize;
        let site = get_delta(prev.site, buf, &mut pos)?;
        let addr = get_delta(prev.addr, buf, &mut pos)?;
        let value = get_delta(prev.value, buf, &mut pos)?;
        let rcu_depth = u8::try_from(get_u64(buf, &mut pos)?)
            .map_err(|_| Error::Corrupt("rcu depth exceeds u8"))?;
        let n_locks = get_u64(buf, &mut pos)?;
        if n_locks > buf.len() as u64 {
            return Err(Error::Corrupt("lock count exceeds payload size"));
        }
        let mut locks = Vec::with_capacity(n_locks as usize);
        let mut prev_lock = 0u64;
        for _ in 0..n_locks {
            let l = get_delta(prev_lock, buf, &mut pos)?;
            locks.push(l);
            prev_lock = l;
        }
        accesses.push(Access {
            seq,
            thread,
            site: Site(site),
            kind,
            addr,
            len,
            value,
            atomic,
            locks,
            rcu_depth,
        });
        prev = AccessPrev { seq, site, addr, value };
    }
    if pos != buf.len() {
        return Err(Error::Corrupt("trailing bytes after profile"));
    }
    Ok(SeqProfile { test, accesses, steps })
}

fn put_side(prev: &mut AccessPrev, s: &SideKey, out: &mut Vec<u8>) {
    put_delta(prev.site, s.ins.0, out);
    put_delta(prev.addr, s.addr, out);
    out.push(s.len);
    put_delta(prev.value, s.value, out);
    prev.site = s.ins.0;
    prev.addr = s.addr;
    prev.value = s.value;
}

fn get_side(prev: &mut AccessPrev, buf: &[u8], pos: &mut usize) -> Result<SideKey, Error> {
    let ins = get_delta(prev.site, buf, pos)?;
    let addr = get_delta(prev.addr, buf, pos)?;
    let len = *buf.get(*pos).ok_or(Error::Truncated)?;
    *pos += 1;
    let value = get_delta(prev.value, buf, pos)?;
    prev.site = ins;
    prev.addr = addr;
    prev.value = value;
    Ok(SideKey { ins: Site(ins), addr, len, value })
}

/// Encodes a PMC set into `out`. Ids are positional, so the encoding
/// preserves them exactly.
pub fn encode_pmc_set(set: &PmcSet, out: &mut Vec<u8>) {
    put_u64(set.pmcs.len() as u64, out);
    let mut prev_w = AccessPrev::default();
    let mut prev_r = AccessPrev::default();
    for p in &set.pmcs {
        put_side(&mut prev_w, &p.key.w, out);
        put_side(&mut prev_r, &p.key.r, out);
        out.push(u8::from(p.df_leader));
        put_u64(p.pairs.len() as u64, out);
        for &(w, r) in &p.pairs {
            put_u64(u64::from(w), out);
            put_u64(u64::from(r), out);
        }
    }
}

/// Decodes a PMC set encoded by [`encode_pmc_set`]. The whole buffer must
/// be consumed.
pub fn decode_pmc_set(buf: &[u8]) -> Result<PmcSet, Error> {
    let mut pos = 0;
    let count = get_u64(buf, &mut pos)?;
    if count > buf.len() as u64 {
        return Err(Error::Corrupt("PMC count exceeds payload size"));
    }
    let mut pmcs = Vec::with_capacity(count as usize);
    let mut prev_w = AccessPrev::default();
    let mut prev_r = AccessPrev::default();
    for _ in 0..count {
        let w = get_side(&mut prev_w, buf, &mut pos)?;
        let r = get_side(&mut prev_r, buf, &mut pos)?;
        let df = *buf.get(pos).ok_or(Error::Truncated)?;
        pos += 1;
        if df > 1 {
            return Err(Error::Corrupt("df flag out of range"));
        }
        let n_pairs = get_u64(buf, &mut pos)?;
        if n_pairs > buf.len() as u64 {
            return Err(Error::Corrupt("pair count exceeds payload size"));
        }
        let mut pairs = Vec::with_capacity(n_pairs as usize);
        for _ in 0..n_pairs {
            let w_test = u32::try_from(get_u64(buf, &mut pos)?)
                .map_err(|_| Error::Corrupt("pair test id exceeds u32"))?;
            let r_test = u32::try_from(get_u64(buf, &mut pos)?)
                .map_err(|_| Error::Corrupt("pair test id exceeds u32"))?;
            pairs.push((w_test, r_test));
        }
        pmcs.push(Pmc {
            key: PmcKey { w, r },
            df_leader: df == 1,
            pairs,
        });
    }
    if pos != buf.len() {
        return Err(Error::Corrupt("trailing bytes after PMC set"));
    }
    Ok(PmcSet { pmcs })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn access(seq: u64, site: &str, kind: AccessKind, addr: u64, value: u64) -> Access {
        Access {
            seq,
            thread: (seq % 3) as usize,
            site: Site::intern(site),
            kind,
            addr,
            len: 8,
            value,
            atomic: seq.is_multiple_of(2),
            locks: if seq.is_multiple_of(2) { vec![0x9000, 0x9010] } else { vec![] },
            rcu_depth: (seq % 4) as u8,
        }
    }

    #[test]
    fn profile_round_trips_exactly() {
        let p = SeqProfile {
            test: 42,
            steps: u64::MAX,
            accesses: vec![
                access(0, "a:x", AccessKind::Write, 0x2000, 7),
                access(1, "a:x", AccessKind::Read, 0x2000, 7),
                access(2, "b:y", AccessKind::Write, u64::MAX, 0),
                access(3, "c:z", AccessKind::Read, 0, u64::MAX),
            ],
        };
        let mut buf = vec![];
        encode_profile(&p, &mut buf);
        assert_eq!(decode_profile(&buf).unwrap(), p);
    }

    #[test]
    fn empty_profile_round_trips() {
        let p = SeqProfile { test: 0, steps: 0, accesses: vec![] };
        let mut buf = vec![];
        encode_profile(&p, &mut buf);
        assert_eq!(decode_profile(&buf).unwrap(), p);
    }

    #[test]
    fn profile_decode_rejects_truncation_and_trailing_bytes() {
        let p = SeqProfile {
            test: 3,
            steps: 100,
            accesses: vec![access(0, "t:1", AccessKind::Read, 0x4000, 9)],
        };
        let mut buf = vec![];
        encode_profile(&p, &mut buf);
        for cut in 0..buf.len() {
            assert!(decode_profile(&buf[..cut]).is_err(), "cut at {cut}");
        }
        buf.push(0);
        assert!(decode_profile(&buf).is_err());
    }

    #[test]
    fn delta_coding_beats_fixed_width_on_a_local_stream() {
        let accesses: Vec<Access> = (0..200)
            .map(|i| {
                let mut a = access(i, "loop:body", AccessKind::Write, 0x8000 + 8 * i, i);
                a.locks = vec![];
                a.atomic = false;
                a
            })
            .collect();
        let p = SeqProfile { test: 0, steps: 200, accesses };
        let mut buf = vec![];
        encode_profile(&p, &mut buf);
        // Fixed-width lower bound: 4 u64 fields alone would be 32 B/access.
        assert!(
            buf.len() < p.accesses.len() * 16,
            "{} bytes for {} accesses",
            buf.len(),
            p.accesses.len()
        );
    }

    #[test]
    fn pmc_set_round_trips_exactly() {
        let side = |s: &str, addr, len, value| SideKey {
            ins: Site::intern(s),
            addr,
            len,
            value,
        };
        let set = PmcSet {
            pmcs: vec![
                Pmc {
                    key: PmcKey {
                        w: side("w:1", 0x1000, 8, u64::MAX),
                        r: side("r:1", 0x1004, 4, 0),
                    },
                    df_leader: true,
                    pairs: vec![(0, 1), (2, 3)],
                },
                Pmc {
                    key: PmcKey {
                        w: side("w:2", u64::MAX - 8, 8, 1),
                        r: side("r:2", 0, 1, 2),
                    },
                    df_leader: false,
                    pairs: vec![(u32::MAX, u32::MAX)],
                },
            ],
        };
        let mut buf = vec![];
        encode_pmc_set(&set, &mut buf);
        assert_eq!(decode_pmc_set(&buf).unwrap(), set);
    }

    #[test]
    fn pmc_set_decode_rejects_corruption() {
        let set = PmcSet { pmcs: vec![] };
        let mut buf = vec![];
        encode_pmc_set(&set, &mut buf);
        assert_eq!(decode_pmc_set(&buf).unwrap(), set);
        buf.push(7);
        assert!(decode_pmc_set(&buf).is_err());
        assert!(decode_pmc_set(&[]).is_err());
    }
}
