//! Append-only segment files.
//!
//! One segment file is written per corpus chunk (one `insert_profiles`
//! call). Records are offset-addressable — the manifest remembers
//! `(segment, offset, len)` per content key, and reads seek straight to the
//! record. Each record embeds its content key so a stale or rewritten
//! manifest cannot silently serve the wrong payload.
//!
//! Format v2 (`SBSEG002`/`SBPMC002`): 8-byte magic, then records of
//! `[key: u64 LE][len: u32 LE][crc: u32 LE][payload]` where `crc` is
//! CRC32C over `key‖len‖payload`. Format v1 (`SBSEG001`/`SBPMC001`) lacks
//! the crc word and is still readable — checksum-less — for stores written
//! before the upgrade.
//!
//! Writers fsync on [`SegmentWriter::finish`], so a completed segment is
//! durable before the manifest can reference it; [`scan`] classifies a
//! file's valid record prefix so the store can truncate torn tails left by
//! a crash mid-write.

use std::fs::File;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use crate::crc::Crc32c;
use crate::Error;

/// Magic prefix of v2 (checksummed) profile segment files.
pub const PROFILE_MAGIC: &[u8; 8] = b"SBSEG002";
/// Magic prefix of v2 (checksummed) PMC-set segment files.
pub const PMC_MAGIC: &[u8; 8] = b"SBPMC002";
/// Magic prefix of v1 (checksum-less) profile segment files.
pub const PROFILE_MAGIC_V1: &[u8; 8] = b"SBSEG001";
/// Magic prefix of v1 (checksum-less) PMC-set segment files.
pub const PMC_MAGIC_V1: &[u8; 8] = b"SBPMC001";

/// What a segment file stores; selects which magics are acceptable.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum SegmentKind {
    /// Sequential-test profiles (`seg-<n>.bin`).
    Profile,
    /// PMC sets (`pmc-<n>.bin`).
    Pmc,
}

/// Record header size of the given format version.
pub fn header_len(version: u8) -> u64 {
    match version {
        1 => 12, // key + len
        _ => 16, // key + len + crc
    }
}

/// CRC32C over `key‖len‖payload` — the integrity scope of one v2 record.
pub fn record_crc(key: u64, payload: &[u8]) -> u32 {
    let mut c = Crc32c::new();
    c.update(&key.to_le_bytes());
    c.update(&(payload.len() as u32).to_le_bytes());
    c.update(payload);
    c.finish()
}

fn io_err<'a>(op: &'static str, path: &'a Path) -> impl FnOnce(std::io::Error) -> Error + 'a {
    move |source| Error::Io {
        op,
        path: path.to_path_buf(),
        source,
    }
}

/// Writes one (always v2) segment file record by record.
pub struct SegmentWriter {
    file: File,
    path: PathBuf,
    offset: u64,
    /// Record-area bytes still writable before an injected torn write.
    torn_budget: Option<u64>,
}

impl SegmentWriter {
    /// Creates the file at `path` and writes `magic`.
    pub fn create(path: &Path, magic: &[u8; 8]) -> Result<SegmentWriter, Error> {
        let mut file = File::create(path).map_err(io_err("create", path))?;
        file.write_all(magic).map_err(io_err("write", path))?;
        Ok(SegmentWriter {
            file,
            path: path.to_path_buf(),
            offset: magic.len() as u64,
            torn_budget: None,
        })
    }

    /// Arms an injected torn write: appends stop after `record_bytes` bytes
    /// past the magic, as if the process were killed mid-write.
    pub fn set_torn_after(&mut self, record_bytes: u64) {
        self.torn_budget = Some(record_bytes);
    }

    /// Appends one record; returns its `(offset, payload_len)` address.
    pub fn append(&mut self, key: u64, payload: &[u8]) -> Result<(u64, u64), Error> {
        let offset = self.offset;
        let len = u32::try_from(payload.len())
            .map_err(|_| Error::Corrupt("record payload exceeds u32 bytes"))?;
        let mut record = Vec::with_capacity(16 + payload.len());
        record.extend_from_slice(&key.to_le_bytes());
        record.extend_from_slice(&len.to_le_bytes());
        record.extend_from_slice(&record_crc(key, payload).to_le_bytes());
        record.extend_from_slice(payload);
        if let Some(budget) = self.torn_budget {
            let remaining = budget.saturating_sub(offset - 8);
            if remaining < record.len() as u64 {
                // Persist exactly the torn prefix, like a crash would.
                self.file
                    .write_all(&record[..remaining as usize])
                    .and_then(|()| self.file.sync_all())
                    .map_err(io_err("write", &self.path))?;
                return Err(Error::Injected("torn write"));
            }
        }
        self.file
            .write_all(&record)
            .map_err(io_err("write", &self.path))?;
        self.offset += record.len() as u64;
        Ok((offset, u64::from(len)))
    }

    /// Flushes, fsyncs, and returns the total file size in bytes. A
    /// finished segment is durable before the caller references it from
    /// the manifest.
    pub fn finish(mut self) -> Result<u64, Error> {
        self.file.flush().map_err(io_err("flush", &self.path))?;
        self.file.sync_all().map_err(io_err("fsync", &self.path))?;
        Ok(self.offset)
    }
}

/// Fsyncs a directory so created/renamed entries within it are durable.
/// Best-effort: filesystems that reject directory fsync are tolerated.
pub fn sync_dir(dir: &Path) {
    if let Ok(f) = File::open(dir) {
        let _ = f.sync_all();
    }
}

/// Verifies the magic prefix of the segment file at `path`.
pub fn check_magic(path: &Path, magic: &[u8; 8]) -> Result<(), Error> {
    let mut file = File::open(path).map_err(io_err("open", path))?;
    let mut have = [0u8; 8];
    file.read_exact(&mut have).map_err(io_err("read", path))?;
    if have != *magic {
        return Err(Error::Format {
            path: path.to_path_buf(),
            detail: format!("bad magic {have:02x?}"),
        });
    }
    Ok(())
}

/// Reads the record at `(offset, len)` in `path`, verifying its embedded
/// content key matches `expected_key` and — for v2 segments — its CRC32C.
///
/// `version` selects the header layout (1 = checksum-less). `eof_at`
/// simulates a short read: bytes at or past that file offset are treated
/// as missing.
pub fn read_record(
    path: &Path,
    offset: u64,
    len: u64,
    expected_key: u64,
    version: u8,
    eof_at: Option<u64>,
) -> Result<Vec<u8>, Error> {
    let header = header_len(version);
    if let Some(eof) = eof_at {
        if offset + header + len > eof {
            return Err(Error::Truncated);
        }
    }
    let mut file = File::open(path).map_err(io_err("open", path))?;
    file.seek(SeekFrom::Start(offset)).map_err(io_err("seek", path))?;
    let mut head = [0u8; 16];
    file.read_exact(&mut head[..header as usize])
        .map_err(io_err("read", path))?;
    let key = u64::from_le_bytes(head[..8].try_into().expect("8-byte slice"));
    let stored_len = u32::from_le_bytes(head[8..12].try_into().expect("4-byte slice"));
    if key != expected_key {
        return Err(Error::Format {
            path: path.to_path_buf(),
            detail: format!("key mismatch at offset {offset}: expected {expected_key:#x}, found {key:#x}"),
        });
    }
    if u64::from(stored_len) != len {
        return Err(Error::Format {
            path: path.to_path_buf(),
            detail: format!("length mismatch at offset {offset}: manifest says {len}, record says {stored_len}"),
        });
    }
    let mut payload = vec![0u8; stored_len as usize];
    file.read_exact(&mut payload).map_err(io_err("read", path))?;
    if version >= 2 {
        let stored_crc = u32::from_le_bytes(head[12..16].try_into().expect("4-byte slice"));
        if stored_crc != record_crc(key, &payload) {
            return Err(Error::Format {
                path: path.to_path_buf(),
                detail: format!("checksum mismatch for record {key:#x} at offset {offset}"),
            });
        }
    }
    Ok(payload)
}

/// One structurally valid record found by [`scan`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScannedRecord {
    /// Embedded content key.
    pub key: u64,
    /// Record offset within the file.
    pub offset: u64,
    /// Payload length.
    pub len: u64,
    /// CRC32C verdict (always true for v1 records — nothing to check).
    pub crc_ok: bool,
}

/// Structural classification of one segment file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SegmentScan {
    /// Format version: 1, 2, or 0 when the magic is unrecognized.
    pub version: u8,
    /// Total file length in bytes.
    pub file_len: u64,
    /// Length of the valid record prefix (including the magic). Records
    /// past this point are torn: a partial header, a payload running past
    /// EOF, or a final record whose CRC fails at EOF.
    pub valid_len: u64,
    /// Records within the valid prefix, in file order.
    pub records: Vec<ScannedRecord>,
}

impl SegmentScan {
    /// Bytes of torn tail past the valid prefix.
    pub fn torn_bytes(&self) -> u64 {
        self.file_len - self.valid_len
    }
}

/// Walks every record of the segment at `path`, classifying the valid
/// prefix and any torn tail. `Err` only for real I/O failures — damage is
/// data, not an error.
pub fn scan(path: &Path, kind: SegmentKind) -> Result<SegmentScan, Error> {
    let bytes = std::fs::read(path).map_err(io_err("read", path))?;
    let file_len = bytes.len() as u64;
    let version = if bytes.len() < 8 {
        0
    } else {
        let magic: &[u8] = &bytes[..8];
        match kind {
            SegmentKind::Profile if magic == PROFILE_MAGIC => 2,
            SegmentKind::Profile if magic == PROFILE_MAGIC_V1 => 1,
            SegmentKind::Pmc if magic == PMC_MAGIC => 2,
            SegmentKind::Pmc if magic == PMC_MAGIC_V1 => 1,
            _ => 0,
        }
    };
    if version == 0 {
        // Unrecognized or truncated magic: no valid prefix at all.
        return Ok(SegmentScan {
            version,
            file_len,
            valid_len: 0,
            records: Vec::new(),
        });
    }
    let header = header_len(version) as usize;
    let mut records = Vec::new();
    let mut pos = 8usize;
    while bytes.len() - pos >= header {
        let key = u64::from_le_bytes(bytes[pos..pos + 8].try_into().expect("8-byte slice"));
        let len = u32::from_le_bytes(bytes[pos + 8..pos + 12].try_into().expect("4-byte slice"));
        let Some(end) = (pos + header).checked_add(len as usize) else {
            break; // length overflows: treat as torn
        };
        if end > bytes.len() {
            break; // payload runs past EOF: torn
        }
        let crc_ok = version == 1 || {
            let stored = u32::from_le_bytes(bytes[pos + 12..pos + 16].try_into().expect("4-byte slice"));
            let mut c = Crc32c::new();
            c.update(&bytes[pos..pos + 12]);
            c.update(&bytes[pos + header..end]);
            stored == c.finish()
        };
        records.push(ScannedRecord {
            key,
            offset: pos as u64,
            len: u64::from(len),
            crc_ok,
        });
        pos = end;
    }
    // A final record with a bad CRC that runs to EOF is a torn write whose
    // length field survived: drop it from the valid prefix too.
    if pos == bytes.len() {
        if let Some(last) = records.last() {
            if !last.crc_ok {
                pos = last.offset as usize;
                records.pop();
            }
        }
    }
    Ok(SegmentScan {
        version,
        file_len,
        valid_len: pos as u64,
        records,
    })
}

/// Physically truncates the segment at `path` to its valid prefix.
/// Best-effort (a read-only store still opens); returns whether bytes were
/// actually removed.
pub fn truncate_torn_tail(path: &Path, scan: &SegmentScan) -> bool {
    if scan.version == 0 || scan.torn_bytes() == 0 {
        return false;
    }
    match std::fs::OpenOptions::new().write(true).open(path) {
        Ok(file) => {
            let ok = file.set_len(scan.valid_len).is_ok();
            if ok {
                let _ = file.sync_all();
            }
            ok
        }
        Err(_) => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("sb-store-seg-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        dir
    }

    #[test]
    fn records_round_trip_by_address() {
        let dir = tmpdir("rt");
        let path = dir.join("seg-0.bin");
        let mut w = SegmentWriter::create(&path, PROFILE_MAGIC).expect("create");
        let (o1, l1) = w.append(0xAAAA, b"first payload").expect("append");
        let (o2, l2) = w.append(0xBBBB, b"second").expect("append");
        let total = w.finish().expect("finish");
        assert_eq!(total, std::fs::metadata(&path).expect("meta").len());
        check_magic(&path, PROFILE_MAGIC).expect("magic");
        assert_eq!(read_record(&path, o1, l1, 0xAAAA, 2, None).expect("r1"), b"first payload");
        assert_eq!(read_record(&path, o2, l2, 0xBBBB, 2, None).expect("r2"), b"second");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn wrong_key_or_magic_is_rejected() {
        let dir = tmpdir("bad");
        let path = dir.join("seg-0.bin");
        let mut w = SegmentWriter::create(&path, PROFILE_MAGIC).expect("create");
        let (o, l) = w.append(7, b"payload").expect("append");
        w.finish().expect("finish");
        assert!(matches!(read_record(&path, o, l, 8, 2, None), Err(Error::Format { .. })));
        assert!(matches!(read_record(&path, o, l + 1, 7, 2, None), Err(Error::Format { .. })));
        assert!(check_magic(&path, PMC_MAGIC).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn crc_catches_payload_corruption() {
        let dir = tmpdir("crc");
        let path = dir.join("seg-0.bin");
        let mut w = SegmentWriter::create(&path, PROFILE_MAGIC).expect("create");
        let (o, l) = w.append(9, b"checksummed payload").expect("append");
        w.finish().expect("finish");
        let mut bytes = std::fs::read(&path).expect("read");
        let payload_start = (o + 16) as usize;
        bytes[payload_start] ^= 0x40;
        std::fs::write(&path, &bytes).expect("rewrite");
        match read_record(&path, o, l, 9, 2, None) {
            Err(Error::Format { detail, .. }) => assert!(detail.contains("checksum")),
            other => panic!("expected checksum failure, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn short_read_injection_reports_truncation() {
        let dir = tmpdir("short");
        let path = dir.join("seg-0.bin");
        let mut w = SegmentWriter::create(&path, PROFILE_MAGIC).expect("create");
        let (o, l) = w.append(5, b"payload").expect("append");
        let total = w.finish().expect("finish");
        assert!(matches!(
            read_record(&path, o, l, 5, 2, Some(total - 1)),
            Err(Error::Truncated)
        ));
        assert!(read_record(&path, o, l, 5, 2, Some(total)).is_ok());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn v1_records_read_checksum_less() {
        let dir = tmpdir("v1");
        let path = dir.join("seg-0.bin");
        // Hand-write a v1 segment: magic + [key][len][payload].
        let mut bytes = Vec::new();
        bytes.extend_from_slice(PROFILE_MAGIC_V1);
        bytes.extend_from_slice(&0xCAFEu64.to_le_bytes());
        bytes.extend_from_slice(&7u32.to_le_bytes());
        bytes.extend_from_slice(b"oldbits");
        std::fs::write(&path, &bytes).expect("write");
        assert_eq!(read_record(&path, 8, 7, 0xCAFE, 1, None).expect("v1 read"), b"oldbits");
        let scan = scan(&path, SegmentKind::Profile).expect("scan");
        assert_eq!(scan.version, 1);
        assert_eq!(scan.torn_bytes(), 0);
        assert_eq!(scan.records.len(), 1);
        assert!(scan.records[0].crc_ok, "v1 records have nothing to check");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn scan_classifies_torn_tails_and_bad_magic() {
        let dir = tmpdir("scan");
        let path = dir.join("seg-0.bin");
        let mut w = SegmentWriter::create(&path, PROFILE_MAGIC).expect("create");
        w.append(1, b"first").expect("append");
        let (o2, _) = w.append(2, b"second record").expect("append");
        let total = w.finish().expect("finish");

        let full = scan(&path, SegmentKind::Profile).expect("scan");
        assert_eq!(full.version, 2);
        assert_eq!(full.valid_len, total);
        assert_eq!(full.records.len(), 2);
        assert!(full.records.iter().all(|r| r.crc_ok));

        // Cut mid-payload of the second record: torn tail back to o2.
        let bytes = std::fs::read(&path).expect("read");
        for cut in (o2 + 1)..total {
            std::fs::write(&path, &bytes[..cut as usize]).expect("cut");
            let s = scan(&path, SegmentKind::Profile).expect("scan");
            assert_eq!(s.valid_len, o2, "cut at {cut}");
            assert_eq!(s.records.len(), 1);
            assert!(s.torn_bytes() > 0);
            assert!(truncate_torn_tail(&path, &s));
            let healed = scan(&path, SegmentKind::Profile).expect("rescan");
            assert_eq!(healed.torn_bytes(), 0);
            std::fs::write(&path, &bytes).expect("restore");
        }

        // Bad CRC on the final record at EOF is torn too.
        let mut flipped = bytes.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x01;
        std::fs::write(&path, &flipped).expect("flip");
        let s = scan(&path, SegmentKind::Profile).expect("scan");
        assert_eq!(s.valid_len, o2, "bad CRC at EOF drops the final record");

        // Unrecognized magic: nothing valid.
        std::fs::write(&path, b"NOTMAGICxxxx").expect("garbage");
        let s = scan(&path, SegmentKind::Profile).expect("scan");
        assert_eq!((s.version, s.valid_len), (0, 0));
        assert!(!truncate_torn_tail(&path, &s), "never truncate unrecognized files");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_write_injection_persists_exact_prefix() {
        let dir = tmpdir("torn");
        let bytes_of = |path: &Path| std::fs::read(path).expect("read").len() as u64;
        for cut in 0..30u64 {
            let path = dir.join(format!("seg-{cut}.bin"));
            let mut w = SegmentWriter::create(&path, PROFILE_MAGIC).expect("create");
            w.set_torn_after(cut);
            let err = w.append(3, b"torn-payload..").expect_err("torn");
            assert!(matches!(err, Error::Injected(_)));
            assert_eq!(bytes_of(&path), 8 + cut, "magic plus exactly {cut} bytes");
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
