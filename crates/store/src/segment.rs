//! Append-only segment files.
//!
//! One segment file is written per corpus chunk (one `insert_profiles`
//! call). Records are offset-addressable — the manifest remembers
//! `(segment, offset, len)` per content key, and reads seek straight to the
//! record. Each record embeds its content key so a stale or rewritten
//! manifest cannot silently serve the wrong payload.
//!
//! Layout: 8-byte magic, then records of `[key: u64 LE][len: u32 LE][payload]`.

use std::fs::File;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use crate::Error;

/// Magic prefix of profile segment files.
pub const PROFILE_MAGIC: &[u8; 8] = b"SBSEG001";
/// Magic prefix of PMC-set segment files.
pub const PMC_MAGIC: &[u8; 8] = b"SBPMC001";

fn io_err<'a>(op: &'static str, path: &'a Path) -> impl FnOnce(std::io::Error) -> Error + 'a {
    move |source| Error::Io {
        op,
        path: path.to_path_buf(),
        source,
    }
}

/// Writes one segment file record by record.
pub struct SegmentWriter {
    file: File,
    path: PathBuf,
    offset: u64,
}

impl SegmentWriter {
    /// Creates the file at `path` and writes `magic`.
    pub fn create(path: &Path, magic: &[u8; 8]) -> Result<SegmentWriter, Error> {
        let mut file = File::create(path).map_err(io_err("create", path))?;
        file.write_all(magic).map_err(io_err("write", path))?;
        Ok(SegmentWriter {
            file,
            path: path.to_path_buf(),
            offset: magic.len() as u64,
        })
    }

    /// Appends one record; returns its `(offset, payload_len)` address.
    pub fn append(&mut self, key: u64, payload: &[u8]) -> Result<(u64, u64), Error> {
        let offset = self.offset;
        let len = u32::try_from(payload.len())
            .map_err(|_| Error::Corrupt("record payload exceeds u32 bytes"))?;
        self.file
            .write_all(&key.to_le_bytes())
            .and_then(|()| self.file.write_all(&len.to_le_bytes()))
            .and_then(|()| self.file.write_all(payload))
            .map_err(io_err("write", &self.path))?;
        self.offset += 8 + 4 + u64::from(len);
        Ok((offset, u64::from(len)))
    }

    /// Flushes and returns the total file size in bytes.
    pub fn finish(mut self) -> Result<u64, Error> {
        self.file.flush().map_err(io_err("flush", &self.path))?;
        Ok(self.offset)
    }
}

/// Verifies the magic prefix of the segment file at `path`.
pub fn check_magic(path: &Path, magic: &[u8; 8]) -> Result<(), Error> {
    let mut file = File::open(path).map_err(io_err("open", path))?;
    let mut have = [0u8; 8];
    file.read_exact(&mut have).map_err(io_err("read", path))?;
    if have != *magic {
        return Err(Error::Format {
            path: path.to_path_buf(),
            detail: format!("bad magic {have:02x?}"),
        });
    }
    Ok(())
}

/// Reads the record at `(offset, len)` in `path`, verifying its embedded
/// content key matches `expected_key`.
pub fn read_record(path: &Path, offset: u64, len: u64, expected_key: u64) -> Result<Vec<u8>, Error> {
    let mut file = File::open(path).map_err(io_err("open", path))?;
    file.seek(SeekFrom::Start(offset)).map_err(io_err("seek", path))?;
    let mut header = [0u8; 12];
    file.read_exact(&mut header).map_err(io_err("read", path))?;
    let key = u64::from_le_bytes(header[..8].try_into().expect("8-byte slice"));
    let stored_len = u32::from_le_bytes(header[8..].try_into().expect("4-byte slice"));
    if key != expected_key {
        return Err(Error::Format {
            path: path.to_path_buf(),
            detail: format!("key mismatch at offset {offset}: expected {expected_key:#x}, found {key:#x}"),
        });
    }
    if u64::from(stored_len) != len {
        return Err(Error::Format {
            path: path.to_path_buf(),
            detail: format!("length mismatch at offset {offset}: manifest says {len}, record says {stored_len}"),
        });
    }
    let mut payload = vec![0u8; stored_len as usize];
    file.read_exact(&mut payload).map_err(io_err("read", path))?;
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("sb-store-seg-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        dir
    }

    #[test]
    fn records_round_trip_by_address() {
        let dir = tmpdir("rt");
        let path = dir.join("seg-0.bin");
        let mut w = SegmentWriter::create(&path, PROFILE_MAGIC).expect("create");
        let (o1, l1) = w.append(0xAAAA, b"first payload").expect("append");
        let (o2, l2) = w.append(0xBBBB, b"second").expect("append");
        let total = w.finish().expect("finish");
        assert_eq!(total, std::fs::metadata(&path).expect("meta").len());
        check_magic(&path, PROFILE_MAGIC).expect("magic");
        assert_eq!(read_record(&path, o1, l1, 0xAAAA).expect("r1"), b"first payload");
        assert_eq!(read_record(&path, o2, l2, 0xBBBB).expect("r2"), b"second");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn wrong_key_or_magic_is_rejected() {
        let dir = tmpdir("bad");
        let path = dir.join("seg-0.bin");
        let mut w = SegmentWriter::create(&path, PROFILE_MAGIC).expect("create");
        let (o, l) = w.append(7, b"payload").expect("append");
        w.finish().expect("finish");
        assert!(matches!(read_record(&path, o, l, 8), Err(Error::Format { .. })));
        assert!(matches!(read_record(&path, o, l + 1, 7), Err(Error::Format { .. })));
        assert!(check_magic(&path, PMC_MAGIC).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
