//! Property tests: arbitrary single-byte flips or truncations of a segment
//! file never panic the store — every lookup either serves data identical
//! to the pristine store or reports `Damaged`.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use proptest::prelude::*;

use sb_store::{PmcLookup, ProfileLookup, Store};
use sb_vmm::access::{Access, AccessKind};
use sb_vmm::site::Site;
use snowboard::pmc::{Pmc, PmcKey, PmcSet, SideKey};
use snowboard::profile::SeqProfile;

const KEYS: [u64; 3] = [10, 11, 12];

fn profile(test: u32, addr: u64) -> SeqProfile {
    SeqProfile {
        test,
        steps: 10,
        accesses: vec![Access {
            seq: 0,
            thread: 0,
            site: Site::intern("segprops:w"),
            kind: AccessKind::Write,
            addr,
            len: 8,
            value: 1,
            atomic: false,
            locks: vec![],
            rcu_depth: 0,
        }],
    }
}

fn pmc_set() -> PmcSet {
    let side = |name: &str| SideKey {
        ins: Site::intern(name),
        addr: 0x1000,
        len: 8,
        value: 7,
    };
    PmcSet {
        pmcs: vec![Pmc {
            key: PmcKey { w: side("segprops:pmc:w"), r: side("segprops:pmc:r") },
            df_leader: false,
            pairs: vec![(0, 1)],
        }],
    }
}

/// Builds the pristine store once and caches each file's bytes.
fn pristine() -> &'static Vec<(String, Vec<u8>)> {
    static FILES: std::sync::OnceLock<Vec<(String, Vec<u8>)>> = std::sync::OnceLock::new();
    FILES.get_or_init(|| {
        let dir = std::env::temp_dir().join(format!("sb-segprops-master-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let mut st = Store::open(&dir).expect("open");
        st.insert_profiles(&[
            (KEYS[0], Some(profile(0, 0x2000))),
            (KEYS[1], Some(profile(1, 0x3000))),
            (KEYS[2], None),
        ])
        .expect("insert");
        st.save_pmcs(&KEYS, &pmc_set()).expect("save");
        st.flush().expect("flush");
        let mut files = Vec::new();
        for entry in std::fs::read_dir(&dir).expect("read dir") {
            let e = entry.expect("dir entry");
            let name = e.file_name().into_string().expect("utf-8 name");
            files.push((name, std::fs::read(e.path()).expect("read file")));
        }
        files.sort();
        std::fs::remove_dir_all(&dir).ok();
        files
    })
}

/// Writes a full copy of the pristine store into a fresh scratch directory.
fn materialize(files: &[(String, Vec<u8>)]) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "sb-segprops-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    for (name, bytes) in files {
        std::fs::write(dir.join(name), bytes).expect("write file");
    }
    dir
}

/// The safety property: after arbitrary damage to one segment file, every
/// lookup serves exactly the pristine data or reports `Damaged` — never
/// wrong data, never a panic, never an error.
fn check_lookups(dir: &Path) {
    let mut st = Store::open(dir).expect("damaged store must still open");
    for (i, (key, addr)) in [(KEYS[0], 0x2000u64), (KEYS[1], 0x3000u64)].iter().enumerate() {
        match st.lookup_profile(*key, 7).expect("lookup must not error") {
            ProfileLookup::Hit(p) => {
                assert_eq!(p.test, 7, "test id remapped");
                assert_eq!(p.accesses, profile(i as u32, *addr).accesses);
                assert_eq!(p.steps, 10);
            }
            ProfileLookup::Damaged => {}
            other => panic!("key {key}: expected Hit or Damaged, got {other:?}"),
        }
    }
    // The failed entry lives only in the manifest, which is never damaged
    // here, so it must always be served.
    match st.lookup_profile(KEYS[2], 2).expect("lookup must not error") {
        ProfileLookup::FailedCached => {}
        other => panic!("expected FailedCached, got {other:?}"),
    }
    match st.lookup_pmcs(&KEYS).expect("lookup must not error") {
        PmcLookup::Exact(set) => assert_eq!(set, pmc_set()),
        PmcLookup::Damaged => {}
        other => panic!("expected Exact or Damaged, got {other:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn single_byte_flips_never_serve_wrong_data(
        file_sel in 0usize..2,
        frac in 0.0f64..1.0,
        mask in 1u8..=255u8,
    ) {
        let files = pristine();
        let segs: Vec<&(String, Vec<u8>)> =
            files.iter().filter(|(n, _)| n.ends_with(".bin")).collect();
        let (name, bytes) = segs[file_sel % segs.len()];
        let off = (((bytes.len() as f64) * frac) as usize).min(bytes.len() - 1);
        let dir = materialize(files);
        let mut mutated = bytes.clone();
        mutated[off] ^= mask;
        std::fs::write(dir.join(name), &mutated).expect("write damage");
        check_lookups(&dir);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncations_never_serve_wrong_data(
        file_sel in 0usize..2,
        frac in 0.0f64..1.0,
    ) {
        let files = pristine();
        let segs: Vec<&(String, Vec<u8>)> =
            files.iter().filter(|(n, _)| n.ends_with(".bin")).collect();
        let (name, bytes) = segs[file_sel % segs.len()];
        let keep = ((bytes.len() as f64) * frac) as usize;
        let dir = materialize(files);
        std::fs::write(dir.join(name), &bytes[..keep.min(bytes.len())]).expect("write damage");
        check_lookups(&dir);
        std::fs::remove_dir_all(&dir).ok();
    }
}
