//! Property tests: the varint/delta codec round-trips arbitrary access
//! streams and PMC sets exactly, and decoders never panic on garbage.

use proptest::prelude::*;

use sb_store::codec::{decode_pmc_set, decode_profile, encode_pmc_set, encode_profile};
use sb_store::varint::{get_delta, get_u64, put_delta, put_u64};
use sb_vmm::access::{Access, AccessKind};
use sb_vmm::site::Site;
use snowboard::pmc::{Pmc, PmcKey, PmcSet, SideKey};
use snowboard::profile::SeqProfile;

fn arb_access() -> impl Strategy<Value = Access> {
    (
        (any::<u64>(), 0usize..4, any::<u64>(), any::<bool>(), any::<u64>()),
        (1u8..=8, any::<u64>(), any::<bool>(), prop::collection::vec(any::<u64>(), 0..4), any::<u8>()),
    )
        .prop_map(
            |((seq, thread, site, write, addr), (len, value, atomic, locks, rcu_depth))| Access {
                seq,
                thread,
                site: Site(site),
                kind: if write { AccessKind::Write } else { AccessKind::Read },
                addr,
                len,
                value,
                atomic,
                locks,
                rcu_depth,
            },
        )
}

fn arb_profile() -> impl Strategy<Value = SeqProfile> {
    (any::<u32>(), any::<u64>(), prop::collection::vec(arb_access(), 0..48))
        .prop_map(|(test, steps, accesses)| SeqProfile { test, accesses, steps })
}

fn arb_side() -> impl Strategy<Value = SideKey> {
    (any::<u64>(), any::<u64>(), any::<u8>(), any::<u64>()).prop_map(|(ins, addr, len, value)| {
        SideKey {
            ins: Site(ins),
            addr,
            len,
            value,
        }
    })
}

fn arb_pmc_set() -> impl Strategy<Value = PmcSet> {
    prop::collection::vec(
        (
            arb_side(),
            arb_side(),
            any::<bool>(),
            prop::collection::vec(any::<(u32, u32)>(), 0..36),
        ),
        0..24,
    )
    .prop_map(|entries| PmcSet {
        pmcs: entries
            .into_iter()
            .map(|(w, r, df_leader, pairs)| Pmc {
                key: PmcKey { w, r },
                df_leader,
                pairs,
            })
            .collect(),
    })
}

proptest! {
    #[test]
    fn varint_round_trips(v in any::<u64>()) {
        let mut buf = vec![];
        put_u64(v, &mut buf);
        let mut pos = 0;
        prop_assert_eq!(get_u64(&buf, &mut pos).unwrap(), v);
        prop_assert_eq!(pos, buf.len());
    }

    #[test]
    fn delta_round_trips_any_pair(prev in any::<u64>(), cur in any::<u64>()) {
        let mut buf = vec![];
        put_delta(prev, cur, &mut buf);
        let mut pos = 0;
        prop_assert_eq!(get_delta(prev, &buf, &mut pos).unwrap(), cur);
    }

    #[test]
    fn profile_round_trips_arbitrary_access_streams(p in arb_profile()) {
        let mut buf = vec![];
        encode_profile(&p, &mut buf);
        prop_assert_eq!(decode_profile(&buf).unwrap(), p);
    }

    #[test]
    fn truncated_profiles_error_instead_of_panicking(
        p in arb_profile(),
        frac in 0.0f64..1.0,
    ) {
        let mut buf = vec![];
        encode_profile(&p, &mut buf);
        let cut = ((buf.len() as f64) * frac) as usize;
        if cut < buf.len() {
            prop_assert!(decode_profile(&buf[..cut]).is_err());
        }
    }

    #[test]
    fn garbage_never_panics_the_decoders(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = decode_profile(&bytes);
        let _ = decode_pmc_set(&bytes);
    }

    #[test]
    fn pmc_sets_round_trip(set in arb_pmc_set()) {
        let mut buf = vec![];
        encode_pmc_set(&set, &mut buf);
        prop_assert_eq!(decode_pmc_set(&buf).unwrap(), set);
    }
}
