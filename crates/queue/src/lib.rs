//! Lightweight in-process work queue — the stand-in for the paper's Redis
//! distributed queue (§4.4.1: "We integrate the execution platform with a
//! lightweight distributed queue so that concurrent tests can be distributed
//! in a cloud platform").
//!
//! Locality is irrelevant to any result the paper reports; what matters is
//! the shape: a producer enqueues concurrent-test jobs, a pool of workers
//! (each owning its own executor/VM state) drains them, and results flow
//! back tagged with their job index so aggregation is order-independent.
//!
//! Fault tolerance is part of that shape. A campaign meant to run for days
//! (§4.4) cannot die because one job panicked or one queue handle was
//! dropped, so every failure mode at this layer is typed rather than
//! propagated as a crash:
//!
//! * [`WorkQueue::push`] returns [`ClosedQueue`] instead of panicking, and
//!   recovers from mutex poisoning (a panicking producer must not wedge the
//!   other producers).
//! * [`run_jobs_fallible`] catches panics at the worker boundary
//!   ([`JobError::Panic`]) so one poisoned job neither kills the pool nor
//!   deadlocks `pop` for the remaining workers, and reports jobs that could
//!   not be enqueued as [`JobError::Rejected`].

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Mutex, PoisonError};

use crossbeam::channel;

/// Error returned by [`WorkQueue::push`] when the queue was already closed.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct ClosedQueue;

impl std::fmt::Display for ClosedQueue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "work queue is closed")
    }
}

impl std::error::Error for ClosedQueue {}

/// Why a job produced no result.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JobError {
    /// The worker executing the job panicked; the payload message is
    /// captured and the worker itself survives to take the next job.
    Panic {
        /// The panic payload, when it was a string.
        message: String,
    },
    /// The job could not be enqueued because the queue closed first.
    Rejected,
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobError::Panic { message } => write!(f, "worker panicked: {message}"),
            JobError::Rejected => write!(f, "job rejected: queue closed before enqueue"),
        }
    }
}

impl std::error::Error for JobError {}

/// A multi-producer multi-consumer job queue with a typed result channel.
///
/// # Examples
///
/// ```
/// use sb_queue::WorkQueue;
///
/// let q = WorkQueue::new();
/// q.push(21u64).expect("queue open");
/// q.push(2u64).expect("queue open");
/// q.close();
/// assert!(q.push(3u64).is_err(), "push after close is a typed error");
/// let doubled: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|j| j * 2).collect();
/// assert_eq!(doubled, vec![42, 4]);
/// ```
pub struct WorkQueue<T> {
    tx: Mutex<Option<channel::Sender<T>>>,
    rx: channel::Receiver<T>,
}

impl<T> Default for WorkQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> WorkQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        let (tx, rx) = channel::unbounded();
        WorkQueue {
            tx: Mutex::new(Some(tx)),
            rx,
        }
    }

    /// Enqueues a job, or reports that the queue is closed.
    ///
    /// A poisoned producer mutex (a producer thread panicked mid-push) is
    /// recovered rather than propagated: the sender state itself is always
    /// valid, the poison flag only records that *some* thread died near it.
    pub fn push(&self, job: T) -> Result<(), ClosedQueue> {
        let guard = self.tx.lock().unwrap_or_else(PoisonError::into_inner);
        match guard.as_ref() {
            Some(tx) => tx.send(job).map_err(|_| ClosedQueue),
            None => Err(ClosedQueue),
        }
    }

    /// Closes the queue: `pop` returns `None` once drained, `push` fails.
    pub fn close(&self) {
        self.tx
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take();
    }

    /// True if [`WorkQueue::close`] has been called.
    pub fn is_closed(&self) -> bool {
        self.tx
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .is_none()
    }

    /// Dequeues the next job, blocking; `None` once closed and drained.
    pub fn pop(&self) -> Option<T> {
        self.rx.recv().ok()
    }

    /// Number of queued jobs right now.
    pub fn len(&self) -> usize {
        self.rx.len()
    }

    /// True if no jobs are queued.
    pub fn is_empty(&self) -> bool {
        self.rx.is_empty()
    }
}

/// A streaming result callback: `(job index, result)`, called on the
/// producer thread as each result lands.
pub type ResultHook<'a, R> = Box<dyn FnMut(usize, &Result<R, JobError>) + 'a>;

/// Options for [`run_jobs_fallible`].
///
/// The defaults reproduce plain pool behavior; the hooks exist so campaign
/// drivers can stream results (periodic checkpointing) and tests can inject
/// queue-closure faults deterministically.
pub struct PoolOpts<'a, R> {
    /// Invoked on the producer thread as each result lands, with the job
    /// index and its result. Rejected jobs are reported first (at dispatch
    /// time), then completions in completion order.
    pub on_result: Option<ResultHook<'a, R>>,
    /// Close the queue right before enqueuing this job index; that job and
    /// every later one complete as [`JobError::Rejected`]. Fault-injection
    /// hook: models the distributed queue disappearing mid-campaign.
    pub close_before: Option<usize>,
}

impl<R> Default for PoolOpts<'_, R> {
    fn default() -> Self {
        PoolOpts {
            on_result: None,
            close_before: None,
        }
    }
}

/// Extracts a human-readable message from a caught panic payload.
pub fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// Runs `jobs` across `workers` threads, each with its own worker-local
/// state built by `init`, preserving job order in the returned results and
/// converting every per-job failure into a typed [`JobError`].
///
/// Panics are caught at the worker boundary: the panicking job yields
/// `Err(JobError::Panic)`, the worker's state is discarded (it may be
/// corrupt) and rebuilt with `init` for the next job, and the pool keeps
/// draining — one poisoned job can no longer stall its siblings waiting on
/// `pop`, which is exactly the liveness property §4.4 builds campaigns on.
pub fn run_jobs_fallible<J, R, S>(
    jobs: Vec<J>,
    workers: usize,
    init: impl Fn() -> S + Sync,
    work: impl Fn(&mut S, J) -> R + Sync,
    mut opts: PoolOpts<'_, R>,
) -> Vec<Result<R, JobError>>
where
    J: Send,
    R: Send,
{
    let workers = workers.max(1);
    let n = jobs.len();
    let queue: WorkQueue<(usize, J)> = WorkQueue::new();
    let mut slots: Vec<Option<Result<R, JobError>>> = (0..n).map(|_| None).collect();
    let (res_tx, res_rx) = channel::unbounded::<(usize, Result<R, JobError>)>();
    crossbeam::scope(|scope| {
        let mut pending = 0usize;
        for (i, j) in jobs.into_iter().enumerate() {
            if opts.close_before == Some(i) {
                queue.close();
            }
            match queue.push((i, j)) {
                Ok(()) => pending += 1,
                Err(ClosedQueue) => {
                    let r = Err(JobError::Rejected);
                    if let Some(cb) = opts.on_result.as_mut() {
                        cb(i, &r);
                    }
                    slots[i] = Some(r);
                }
            }
        }
        queue.close();
        for _ in 0..workers {
            let queue = &queue;
            let res_tx = res_tx.clone();
            let init = &init;
            let work = &work;
            scope.spawn(move |_| {
                let mut state: Option<S> = None;
                while let Some((i, job)) = queue.pop() {
                    let outcome = catch_unwind(AssertUnwindSafe(|| {
                        let s = state.get_or_insert_with(init);
                        work(s, job)
                    }));
                    let r = match outcome {
                        Ok(r) => Ok(r),
                        Err(payload) => {
                            // The worker-local state saw a panic mid-job;
                            // rebuild it before the next job rather than
                            // trusting a half-updated executor.
                            state = None;
                            Err(JobError::Panic {
                                message: panic_message(payload),
                            })
                        }
                    };
                    if res_tx.send((i, r)).is_err() {
                        break;
                    }
                }
            });
        }
        drop(res_tx);
        for _ in 0..pending {
            let Ok((i, r)) = res_rx.recv() else { break };
            if let Some(cb) = opts.on_result.as_mut() {
                cb(i, &r);
            }
            slots[i] = Some(r);
        }
    })
    .expect("pool scope");
    slots
        .into_iter()
        .map(|s| {
            s.unwrap_or(Err(JobError::Panic {
                message: "worker exited without reporting a result".to_owned(),
            }))
        })
        .collect()
}

/// Runs `jobs` across `workers` threads, each with its own worker-local
/// state built by `init`, preserving job order in the returned results.
///
/// This is the campaign driver's fan-out primitive: each worker owns one
/// executor (its "machine B"), jobs are PMC test units, and results are
/// re-assembled in submission order so campaigns are reproducible regardless
/// of worker scheduling.
///
/// A worker panic is re-raised on the caller thread (after the pool drains,
/// so sibling jobs still complete); callers that need to survive panics use
/// [`run_jobs_fallible`] instead.
///
/// # Examples
///
/// ```
/// let results = sb_queue::run_jobs(vec![1u64, 2, 3, 4], 2, || 10u64, |state, j| *state + j);
/// assert_eq!(results, vec![11, 12, 13, 14]);
/// ```
pub fn run_jobs<J, R, S>(
    jobs: Vec<J>,
    workers: usize,
    init: impl Fn() -> S + Sync,
    work: impl Fn(&mut S, J) -> R + Sync,
) -> Vec<R>
where
    J: Send,
    R: Send,
{
    run_jobs_fallible(jobs, workers, init, work, PoolOpts::default())
        .into_iter()
        .enumerate()
        .map(|(i, r)| match r {
            Ok(r) => r,
            Err(e) => panic!("worker thread panicked on job {i}: {e}"),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn queue_delivers_in_order_single_consumer() {
        let q = WorkQueue::new();
        for i in 0..100 {
            q.push(i).expect("open queue");
        }
        q.close();
        let drained: Vec<i32> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(drained, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn pop_returns_none_after_close() {
        let q: WorkQueue<u8> = WorkQueue::new();
        q.close();
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn push_after_close_is_a_typed_error() {
        let q = WorkQueue::new();
        q.push(1u8).expect("open queue");
        assert!(!q.is_closed());
        q.close();
        assert!(q.is_closed());
        assert_eq!(q.push(2u8), Err(ClosedQueue));
        // Already-queued jobs still drain.
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn poisoned_queue_mutex_recovers() {
        let q = WorkQueue::new();
        q.push(7u32).expect("open queue");
        // Poison the producer mutex: panic while holding its guard.
        let poison = catch_unwind(AssertUnwindSafe(|| {
            let _guard = q.tx.lock().unwrap();
            panic!("producer died mid-push");
        }));
        assert!(poison.is_err());
        assert!(q.tx.is_poisoned());
        // Every operation still works: poisoning is recovered, not fatal.
        q.push(8u32).expect("push after poison");
        q.close();
        assert_eq!(q.push(9u32), Err(ClosedQueue));
        let drained: Vec<u32> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(drained, vec![7, 8]);
    }

    #[test]
    fn run_jobs_preserves_order_across_workers() {
        let jobs: Vec<u64> = (0..500).collect();
        let results = run_jobs(jobs, 8, || (), |(), j| j * j);
        assert_eq!(results, (0..500).map(|j| j * j).collect::<Vec<u64>>());
    }

    #[test]
    fn run_jobs_initializes_state_per_worker() {
        let inits = AtomicUsize::new(0);
        let results = run_jobs(
            vec![(); 64],
            4,
            || {
                inits.fetch_add(1, Ordering::SeqCst);
                0u32
            },
            |state, ()| {
                *state += 1;
                *state
            },
        );
        // Worker state is built lazily, so at most one init per worker.
        assert!(inits.load(Ordering::SeqCst) <= 4);
        // Every job ran on some worker whose local counter advanced.
        assert_eq!(results.len(), 64);
        assert!(results.iter().all(|r| *r >= 1));
    }

    #[test]
    fn run_jobs_handles_empty_input() {
        let results: Vec<u8> = run_jobs(Vec::<u8>::new(), 3, || (), |(), j| j);
        assert!(results.is_empty());
    }

    #[test]
    fn run_jobs_with_single_worker_is_sequential() {
        let results = run_jobs(vec![1, 2, 3], 1, || 0u64, |acc, j| {
            *acc += j;
            *acc
        });
        assert_eq!(results, vec![1, 3, 6]);
    }

    #[test]
    fn fallible_pool_captures_panics_without_stalling_siblings() {
        let jobs: Vec<u32> = (0..16).collect();
        let results = run_jobs_fallible(
            jobs,
            4,
            || (),
            |(), j| {
                if j == 3 {
                    panic!("injected failure on job {j}");
                }
                j * 10
            },
            PoolOpts::default(),
        );
        assert_eq!(results.len(), 16);
        for (i, r) in results.iter().enumerate() {
            if i == 3 {
                match r {
                    Err(JobError::Panic { message }) => {
                        assert!(message.contains("injected failure"), "got: {message}");
                    }
                    other => panic!("job 3 should have panicked, got {other:?}"),
                }
            } else {
                assert_eq!(*r, Ok(i as u32 * 10), "sibling job {i} must complete");
            }
        }
    }

    #[test]
    fn fallible_pool_rebuilds_state_after_panic() {
        let inits = AtomicUsize::new(0);
        let results = run_jobs_fallible(
            (0..8u32).collect(),
            1,
            || {
                inits.fetch_add(1, Ordering::SeqCst);
                0u32
            },
            |state, j| {
                *state += 1;
                if j == 2 {
                    panic!("state now suspect");
                }
                *state
            },
            PoolOpts::default(),
        );
        // One rebuild after the panic: the post-panic job sees a fresh state.
        assert_eq!(inits.load(Ordering::SeqCst), 2);
        assert_eq!(results[3], Ok(1), "fresh state after the panic");
        assert!(matches!(results[2], Err(JobError::Panic { .. })));
    }

    #[test]
    fn fallible_pool_rejects_jobs_after_queue_closure() {
        let mut seen: Vec<(usize, bool)> = Vec::new();
        let results = run_jobs_fallible(
            (0..6u32).collect(),
            2,
            || (),
            |(), j| j + 100,
            PoolOpts {
                on_result: Some(Box::new(|i, r: &Result<u32, JobError>| {
                    seen.push((i, r.is_ok()));
                })),
                close_before: Some(3),
            },
        );
        for (i, r) in results.iter().enumerate() {
            if i < 3 {
                assert_eq!(*r, Ok(i as u32 + 100));
            } else {
                assert_eq!(*r, Err(JobError::Rejected));
            }
        }
        // Streaming callback saw every job exactly once.
        let mut indices: Vec<usize> = seen.iter().map(|(i, _)| *i).collect();
        indices.sort_unstable();
        assert_eq!(indices, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn run_jobs_propagates_worker_panics_after_draining() {
        let done = AtomicUsize::new(0);
        let r = catch_unwind(AssertUnwindSafe(|| {
            run_jobs(
                (0..8u32).collect(),
                2,
                || (),
                |(), j| {
                    if j == 1 {
                        panic!("boom");
                    }
                    done.fetch_add(1, Ordering::SeqCst);
                    j
                },
            )
        }));
        assert!(r.is_err(), "panic must surface to the caller");
        // The pool drained the remaining jobs before re-raising.
        assert_eq!(done.load(Ordering::SeqCst), 7);
    }
}
