//! Lightweight in-process work queue — the stand-in for the paper's Redis
//! distributed queue (§4.4.1: "We integrate the execution platform with a
//! lightweight distributed queue so that concurrent tests can be distributed
//! in a cloud platform").
//!
//! Locality is irrelevant to any result the paper reports; what matters is
//! the shape: a producer enqueues concurrent-test jobs, a pool of workers
//! (each owning its own executor/VM state) drains them, and results flow
//! back tagged with their job index so aggregation is order-independent.

use std::sync::Mutex;

use crossbeam::channel;

/// A multi-producer multi-consumer job queue with a typed result channel.
///
/// # Examples
///
/// ```
/// use sb_queue::WorkQueue;
///
/// let q = WorkQueue::new();
/// q.push(21u64);
/// q.push(2u64);
/// q.close();
/// let doubled: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|j| j * 2).collect();
/// assert_eq!(doubled, vec![42, 4]);
/// ```
pub struct WorkQueue<T> {
    tx: Mutex<Option<channel::Sender<T>>>,
    rx: channel::Receiver<T>,
}

impl<T> Default for WorkQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> WorkQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        let (tx, rx) = channel::unbounded();
        WorkQueue {
            tx: Mutex::new(Some(tx)),
            rx,
        }
    }

    /// Enqueues a job.
    ///
    /// # Panics
    ///
    /// Panics if the queue was already closed.
    pub fn push(&self, job: T) {
        self.tx
            .lock()
            .expect("queue poisoned")
            .as_ref()
            .expect("queue already closed")
            .send(job)
            .expect("queue receiver dropped");
    }

    /// Closes the queue: `pop` returns `None` once drained.
    pub fn close(&self) {
        self.tx.lock().expect("queue poisoned").take();
    }

    /// Dequeues the next job, blocking; `None` once closed and drained.
    pub fn pop(&self) -> Option<T> {
        self.rx.recv().ok()
    }

    /// Number of queued jobs right now.
    pub fn len(&self) -> usize {
        self.rx.len()
    }

    /// True if no jobs are queued.
    pub fn is_empty(&self) -> bool {
        self.rx.is_empty()
    }
}

/// Runs `jobs` across `workers` threads, each with its own worker-local
/// state built by `init`, preserving job order in the returned results.
///
/// This is the campaign driver's fan-out primitive: each worker owns one
/// executor (its "machine B"), jobs are PMC test units, and results are
/// re-assembled in submission order so campaigns are reproducible regardless
/// of worker scheduling.
///
/// # Examples
///
/// ```
/// let results = sb_queue::run_jobs(vec![1u64, 2, 3, 4], 2, || 10u64, |state, j| *state + j);
/// assert_eq!(results, vec![11, 12, 13, 14]);
/// ```
pub fn run_jobs<J, R, S>(
    jobs: Vec<J>,
    workers: usize,
    init: impl Fn() -> S + Sync,
    work: impl Fn(&mut S, J) -> R + Sync,
) -> Vec<R>
where
    J: Send,
    R: Send,
{
    assert!(workers >= 1, "need at least one worker");
    let n = jobs.len();
    let queue: WorkQueue<(usize, J)> = WorkQueue::new();
    for (i, j) in jobs.into_iter().enumerate() {
        queue.push((i, j));
    }
    queue.close();
    let (res_tx, res_rx) = channel::unbounded::<(usize, R)>();
    crossbeam::scope(|scope| {
        for _ in 0..workers {
            let queue = &queue;
            let res_tx = res_tx.clone();
            let init = &init;
            let work = &work;
            scope.spawn(move |_| {
                let mut state = init();
                while let Some((i, job)) = queue.pop() {
                    let r = work(&mut state, job);
                    if res_tx.send((i, r)).is_err() {
                        break;
                    }
                }
            });
        }
        drop(res_tx);
    })
    .expect("worker thread panicked");
    let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
    while let Ok((i, r)) = res_rx.try_recv() {
        slots[i] = Some(r);
    }
    slots
        .into_iter()
        .map(|s| s.expect("worker dropped a job"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn queue_delivers_in_order_single_consumer() {
        let q = WorkQueue::new();
        for i in 0..100 {
            q.push(i);
        }
        q.close();
        let drained: Vec<i32> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(drained, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn pop_returns_none_after_close() {
        let q: WorkQueue<u8> = WorkQueue::new();
        q.close();
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn run_jobs_preserves_order_across_workers() {
        let jobs: Vec<u64> = (0..500).collect();
        let results = run_jobs(jobs, 8, || (), |(), j| j * j);
        assert_eq!(results, (0..500).map(|j| j * j).collect::<Vec<u64>>());
    }

    #[test]
    fn run_jobs_initializes_state_per_worker() {
        let inits = AtomicUsize::new(0);
        let results = run_jobs(
            vec![(); 64],
            4,
            || {
                inits.fetch_add(1, Ordering::SeqCst);
                0u32
            },
            |state, ()| {
                *state += 1;
                *state
            },
        );
        assert_eq!(inits.load(Ordering::SeqCst), 4);
        // Every job ran on some worker whose local counter advanced.
        assert_eq!(results.len(), 64);
        assert!(results.iter().all(|r| *r >= 1));
    }

    #[test]
    fn run_jobs_handles_empty_input() {
        let results: Vec<u8> = run_jobs(Vec::<u8>::new(), 3, || (), |(), j| j);
        assert!(results.is_empty());
    }

    #[test]
    fn run_jobs_with_single_worker_is_sequential() {
        let results = run_jobs(vec![1, 2, 3], 1, || 0u64, |acc, j| {
            *acc += j;
            *acc
        });
        assert_eq!(results, vec![1, 3, 6]);
    }
}
