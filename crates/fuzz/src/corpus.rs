//! Corpus construction: fuzz, execute sequentially, distill by coverage.
//!
//! Reproduces the §4.1 pipeline stage: run candidate sequential tests from
//! the fixed boot snapshot, measure their edge coverage, and keep a subset
//! with "high coverage but low overlap of exercised behaviors".

use rand::seq::SliceRandom;
use rand::Rng;

use sb_kernel::prog::{Domain, IoctlCmd, MsgCmd, Path, Program, Res, Syscall};
use sb_kernel::BootedKernel;
use sb_vmm::sched::FreeRun;
use sb_vmm::Executor;

use crate::coverage::{edges_of_trace, CoverageMap};
use crate::gen::ProgGen;
use crate::mutate::mutate;

/// Statistics from a corpus build.
#[derive(Clone, Debug, Default)]
pub struct CorpusStats {
    /// Candidate programs executed.
    pub executed: u64,
    /// Programs kept (novel coverage).
    pub kept: u64,
    /// Total distinct edges covered.
    pub edges: usize,
}

/// Hand-written seed programs, one per subsystem entry point — the role
/// Syzkaller's syscall descriptions play in making every subsystem
/// reachable. The fuzzer mutates outward from these.
pub fn seed_programs() -> Vec<Program> {
    vec![
        // l2tp: create + connect (+ transmit).
        Program::new(vec![
            Syscall::Socket { domain: Domain::L2tp },
            Syscall::Connect { sock: Res(0), tunnel_id: 1 },
            Syscall::Sendmsg { sock: Res(0), len: 2 },
        ]),
        // ipc/rhashtable.
        Program::new(vec![
            Syscall::Msgget { key: 3 },
            Syscall::Msgsnd { id: Res(0), mtype: 1, val: 42 },
            Syscall::Msgrcv { id: Res(0), mtype: 1 },
            Syscall::Msgctl { id: Res(0), cmd: MsgCmd::Stat },
            Syscall::Msgctl { id: Res(0), cmd: MsgCmd::Rmid },
        ]),
        // netdev MAC paths.
        Program::new(vec![
            Syscall::Socket { domain: Domain::Packet },
            Syscall::Ioctl { fd: Res(0), cmd: IoctlCmd::SiocSifHwAddr, arg: 5 },
            Syscall::Ioctl { fd: Res(0), cmd: IoctlCmd::SiocGifHwAddr, arg: 0 },
            Syscall::Getsockname { sock: Res(0) },
        ]),
        // MTU / raw v6.
        Program::new(vec![
            Syscall::Socket { domain: Domain::RawV6 },
            Syscall::Ioctl { fd: Res(0), cmd: IoctlCmd::SiocSifMtu, arg: 3 },
            Syscall::Sendmsg { sock: Res(0), len: 9 },
        ]),
        // Packet fanout.
        Program::new(vec![
            Syscall::Socket { domain: Domain::Packet },
            Syscall::Setsockopt { sock: Res(0), opt: sb_kernel::prog::SockOpt::PacketFanout, val: 0 },
            Syscall::Sendmsg { sock: Res(0), len: 1 },
            Syscall::Close { fd: Res(0) },
        ]),
        // TCP congestion control + fib6.
        Program::new(vec![
            Syscall::Socket { domain: Domain::Inet },
            Syscall::Setsockopt { sock: Res(0), opt: sb_kernel::prog::SockOpt::TcpCongestion, val: 1 },
            Syscall::Connect { sock: Res(0), tunnel_id: 0 },
            Syscall::Ioctl { fd: Res(0), cmd: IoctlCmd::SiocAddRt, arg: 0 },
        ]),
        // ext4 file IO + swap boot.
        Program::new(vec![
            Syscall::Open { path: Path::Ext4File(1) },
            Syscall::Write { fd: Res(0), off: 1, val: 7 },
            Syscall::Read { fd: Res(0), off: 1 },
            Syscall::Ioctl { fd: Res(0), cmd: IoctlCmd::Ext4SwapBoot, arg: 0 },
        ]),
        // Block device controls.
        Program::new(vec![
            Syscall::Open { path: Path::BlockDev },
            Syscall::Ioctl { fd: Res(0), cmd: IoctlCmd::BlkBszSet, arg: 1 },
            Syscall::Ioctl { fd: Res(0), cmd: IoctlCmd::BlkRaSet, arg: 4 },
            Syscall::Ioctl { fd: Res(0), cmd: IoctlCmd::BlkSetSize, arg: 2 },
            Syscall::Read { fd: Res(0), off: 2 },
            Syscall::Fadvise { fd: Res(0) },
        ]),
        // configfs.
        Program::new(vec![
            Syscall::Mkdir { item: 1 },
            Syscall::Open { path: Path::Configfs(1) },
            Syscall::Rmdir { item: 1 },
        ]),
        // tty.
        Program::new(vec![
            Syscall::Open { path: Path::Tty },
            Syscall::Ioctl { fd: Res(0), cmd: IoctlCmd::TiocSerConfig, arg: 0 },
            Syscall::Close { fd: Res(0) },
        ]),
        // sound.
        Program::new(vec![
            Syscall::Open { path: Path::SndCtl },
            Syscall::Ioctl { fd: Res(0), cmd: IoctlCmd::SndCtlElemAdd, arg: 1 },
        ]),
        // mount (heavy).
        Program::new(vec![Syscall::Mount]),
    ]
}

/// Builds a coverage-distilled corpus of sequential tests.
///
/// Runs seeds first, then generator/mutator candidates, executing each from
/// the boot snapshot and keeping those that add edge coverage, until
/// `target_kept` tests are kept or `budget` candidates have executed.
pub fn build_corpus(
    booted: &BootedKernel,
    seed: u64,
    target_kept: usize,
    budget: u64,
) -> (Vec<Program>, CorpusStats) {
    let mut exec = Executor::new(1);
    let mut g = ProgGen::new(seed);
    let mut coverage = CoverageMap::new();
    let mut corpus: Vec<Program> = Vec::new();
    let mut stats = CorpusStats::default();

    let try_program = |prog: Program,
                           exec: &mut Executor,
                           coverage: &mut CoverageMap,
                           corpus: &mut Vec<Program>,
                           stats: &mut CorpusStats| {
        if prog.is_empty() {
            return;
        }
        let r = exec.run(
            booted.snapshot.clone(),
            vec![booted.kernel.process_job(prog.clone())],
            &mut FreeRun,
        );
        stats.executed += 1;
        // Panicking sequential tests would poison profiling; the simulated
        // kernel has no sequential panics, but guard anyway.
        if !r.report.outcome.is_completed() {
            return;
        }
        let edges = edges_of_trace(&r.report.trace, 0);
        if coverage.merge(&edges) > 0 {
            corpus.push(prog);
            stats.kept += 1;
        }
    };

    for s in seed_programs() {
        try_program(s, &mut exec, &mut coverage, &mut corpus, &mut stats);
    }
    while stats.executed < budget && corpus.len() < target_kept {
        let prog = if corpus.is_empty() || g.rng().gen_bool(0.4) {
            g.gen_program(6)
        } else {
            let base = corpus.choose(g.rng()).cloned().expect("non-empty corpus");
            let other = corpus.choose(g.rng()).cloned();
            mutate(&mut g, &base, other.as_ref(), 8)
        };
        try_program(prog, &mut exec, &mut coverage, &mut corpus, &mut stats);
    }
    stats.edges = coverage.len();
    (corpus, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sb_kernel::{boot, KernelConfig};

    #[test]
    fn seeds_are_well_formed() {
        for (i, s) in seed_programs().iter().enumerate() {
            assert!(s.is_well_formed(), "seed {i} malformed: {s}");
        }
    }

    #[test]
    fn corpus_build_distills_by_coverage() {
        let booted = boot(KernelConfig::v5_12_rc3());
        let (corpus, stats) = build_corpus(&booted, 42, 40, 300);
        assert!(corpus.len() >= seed_programs().len() / 2, "seeds should mostly be kept");
        assert!(stats.kept <= stats.executed);
        assert!(stats.edges > 50, "expected meaningful edge diversity, got {}", stats.edges);
        // Distillation: strictly fewer kept than executed.
        assert!(stats.kept < stats.executed);
    }

    #[test]
    fn corpus_build_is_deterministic() {
        let booted = boot(KernelConfig::v5_12_rc3());
        let (c1, _) = build_corpus(&booted, 7, 25, 150);
        let (c2, _) = build_corpus(&booted, 7, 25, 150);
        assert_eq!(c1, c2);
    }
}
