//! Control-flow edge coverage extracted from execution traces.
//!
//! Syzkaller exports KCOV edge coverage; our engine's equivalent is the
//! sequence of access sites a thread executes — consecutive (site, site)
//! pairs are the control-flow edges. The corpus builder keeps tests that
//! contribute previously unseen edges ("high coverage but low overlap of
//! exercised behaviors", §4.1).

use std::collections::HashSet;

use sb_vmm::access::Access;

/// Hashes an ordered site pair into an edge id.
fn edge_id(prev: u64, cur: u64) -> u64 {
    // Simple mix; the operands are already FNV hashes.
    prev.rotate_left(17) ^ cur.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Extracts the edge set of one thread's accesses in `trace`.
pub fn edges_of_trace(trace: &[Access], thread: usize) -> HashSet<u64> {
    let mut edges = HashSet::new();
    let mut prev: Option<u64> = None;
    for a in trace.iter().filter(|a| a.thread == thread) {
        if let Some(p) = prev {
            edges.insert(edge_id(p, a.site.0));
        }
        prev = Some(a.site.0);
    }
    edges
}

/// Accumulated coverage across a corpus.
#[derive(Default, Clone)]
pub struct CoverageMap {
    edges: HashSet<u64>,
}

impl CoverageMap {
    /// Creates an empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Merges `new_edges`, returning how many were previously unseen.
    pub fn merge(&mut self, new_edges: &HashSet<u64>) -> usize {
        let before = self.edges.len();
        self.edges.extend(new_edges);
        self.edges.len() - before
    }

    /// Returns how many of `edges` are unseen without merging them.
    pub fn novelty(&self, edges: &HashSet<u64>) -> usize {
        edges.iter().filter(|e| !self.edges.contains(e)).count()
    }

    /// Total distinct edges seen.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// True if no edges were recorded.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sb_vmm::access::AccessKind;
    use sb_vmm::site;

    fn acc(thread: usize, name: &str) -> Access {
        Access {
            seq: 0,
            thread,
            site: site!(name),
            kind: AccessKind::Read,
            addr: 0x2000,
            len: 8,
            value: 0,
            atomic: false,
            locks: vec![],
            rcu_depth: 0,
        }
    }

    #[test]
    fn edges_are_per_thread_and_ordered() {
        let trace = vec![acc(0, "a"), acc(1, "x"), acc(0, "b"), acc(0, "a")];
        let e0 = edges_of_trace(&trace, 0);
        // a→b, b→a.
        assert_eq!(e0.len(), 2);
        let e1 = edges_of_trace(&trace, 1);
        assert!(e1.is_empty(), "single access has no edges");
    }

    #[test]
    fn edge_direction_matters() {
        let ab = edges_of_trace(&[acc(0, "a"), acc(0, "b")], 0);
        let ba = edges_of_trace(&[acc(0, "b"), acc(0, "a")], 0);
        assert_ne!(ab, ba);
    }

    #[test]
    fn coverage_map_counts_novelty() {
        let mut m = CoverageMap::new();
        let e1 = edges_of_trace(&[acc(0, "a"), acc(0, "b"), acc(0, "c")], 0);
        assert_eq!(m.novelty(&e1), 2);
        assert_eq!(m.merge(&e1), 2);
        assert_eq!(m.merge(&e1), 0, "re-merging adds nothing");
        assert_eq!(m.len(), 2);
    }
}
