//! Coverage-guided sequential test generation — the Syzkaller stand-in.
//!
//! The paper assumes "an external tool \[that\] produces a corpus of
//! sequential tests" and uses "the edge coverage metric, exported by
//! Syzkaller, to select tests" (§4.1.1). This crate provides exactly that
//! interface: typed random program generation with resource references
//! ([`gen`]), structural mutation ([`mutate`]), control-flow edge coverage
//! extracted from execution traces ([`coverage`]), and greedy corpus
//! distillation that keeps only tests contributing new edges ([`corpus`]).

pub mod corpus;
pub mod coverage;
pub mod gen;
pub mod mutate;

pub use corpus::{build_corpus, seed_programs, CorpusStats};
pub use coverage::{edges_of_trace, CoverageMap};
pub use gen::ProgGen;
