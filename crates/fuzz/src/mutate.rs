//! Structural program mutation, Syzkaller-style.
//!
//! Mutations may temporarily break resource references; every operator runs
//! the [`crate::gen::fix_program`] repair pass before returning, so mutated
//! programs are always well-formed.


use rand::seq::SliceRandom;
use rand::Rng;

use sb_kernel::prog::{Program, Syscall};

use crate::gen::{fix_program, ProgGen};

/// The available mutation operators.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum MutOp {
    /// Insert a freshly generated call at a random position.
    Insert,
    /// Remove a random call.
    Remove,
    /// Regenerate the scalar arguments of a random call.
    MutateArgs,
    /// Cross over with a second program (prefix of one + suffix of other).
    Splice,
}

/// Mutates `p` (optionally crossing over with `other`), returning a
/// well-formed program. Empty results fall back to a fresh program.
pub fn mutate(g: &mut ProgGen, p: &Program, other: Option<&Program>, max_len: usize) -> Program {
    let op = match g.rng().gen_range(0..4) {
        0 => MutOp::Insert,
        1 => MutOp::Remove,
        2 => MutOp::MutateArgs,
        _ => MutOp::Splice,
    };
    let mut out = apply(g, op, p, other, max_len);
    if out.is_empty() {
        out = g.gen_program(max_len);
    }
    out
}

/// Applies one specific operator (exposed for tests and ablation).
pub fn apply(
    g: &mut ProgGen,
    op: MutOp,
    p: &Program,
    other: Option<&Program>,
    max_len: usize,
) -> Program {
    let mut calls = p.calls.clone();
    match op {
        MutOp::Insert => {
            if calls.len() < max_len {
                let fresh = g.gen_program(1);
                let pos = g.rng().gen_range(0..=calls.len());
                for (k, c) in fresh.calls.into_iter().enumerate() {
                    calls.insert(pos + k, c);
                }
            }
        }
        MutOp::Remove => {
            if !calls.is_empty() {
                let pos = g.rng().gen_range(0..calls.len());
                calls.remove(pos);
            }
        }
        MutOp::MutateArgs => {
            if !calls.is_empty() {
                let pos = g.rng().gen_range(0..calls.len());
                calls[pos] = remix_args(g, &calls[pos]);
            }
        }
        MutOp::Splice => {
            if let Some(o) = other {
                let cut_a = g.rng().gen_range(0..=calls.len());
                let cut_b = g.rng().gen_range(0..=o.calls.len());
                calls.truncate(cut_a);
                calls.extend(o.calls[cut_b..].iter().cloned());
                calls.truncate(max_len);
            }
        }
    }
    fix_program(&Program::new(calls), g.rng())
}

/// Regenerates the scalar (non-resource) arguments of a call, keeping its
/// resource references.
fn remix_args(g: &mut ProgGen, c: &Syscall) -> Syscall {
    use sb_kernel::prog::{DOMAINS, IOCTL_CMDS, SOCK_OPTS};
    let mut c = c.clone();
    let rng = g.rng();
    match &mut c {
        Syscall::Socket { domain } => *domain = *DOMAINS.choose(rng).expect("non-empty"),
        Syscall::Connect { tunnel_id, .. } => *tunnel_id = rng.gen_range(0..4),
        Syscall::Sendmsg { len, .. } => *len = rng.gen_range(0..16),
        Syscall::Setsockopt { opt, val, .. } => {
            *opt = *SOCK_OPTS.choose(rng).expect("non-empty");
            *val = rng.gen_range(0..8);
        }
        Syscall::Ioctl { cmd, arg, .. } => {
            *cmd = *IOCTL_CMDS.choose(rng).expect("non-empty");
            *arg = rng.gen_range(0..16);
        }
        Syscall::Read { off, .. } => *off = rng.gen_range(0..16),
        Syscall::Write { off, val, .. } => {
            *off = rng.gen_range(0..16);
            *val = rng.gen_range(0..=255);
        }
        Syscall::Msgget { key } => *key = rng.gen_range(0..8),
        Syscall::Msgsnd { mtype, val, .. } => {
            *mtype = rng.gen_range(0..4);
            *val = rng.gen_range(0..=255);
        }
        Syscall::Msgrcv { mtype, .. } => *mtype = rng.gen_range(0..4),
        Syscall::Mkdir { item } | Syscall::Rmdir { item } => *item = rng.gen_range(0..4),
        _ => {}
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutations_preserve_well_formedness() {
        let mut g = ProgGen::new(11);
        let mut p = g.gen_program(5);
        let other = g.gen_program(5);
        for i in 0..500 {
            p = mutate(&mut g, &p, Some(&other), 8);
            assert!(p.is_well_formed(), "iteration {i}: {p}");
            assert!(!p.is_empty());
            assert!(p.len() <= 10);
        }
    }

    #[test]
    fn every_operator_preserves_well_formedness() {
        let mut g = ProgGen::new(13);
        let base = g.gen_program(6);
        let other = g.gen_program(6);
        for op in [MutOp::Insert, MutOp::Remove, MutOp::MutateArgs, MutOp::Splice] {
            for _ in 0..200 {
                let q = apply(&mut g, op, &base, Some(&other), 8);
                assert!(q.is_well_formed(), "{op:?} broke {q}");
            }
        }
    }

    #[test]
    fn insert_grows_and_remove_shrinks_on_average() {
        let mut g = ProgGen::new(17);
        let base = g.gen_program(4);
        let mut grew = 0;
        let mut shrank = 0;
        for _ in 0..100 {
            if apply(&mut g, MutOp::Insert, &base, None, 16).len() > base.len() {
                grew += 1;
            }
            if apply(&mut g, MutOp::Remove, &base, None, 16).len() < base.len() {
                shrank += 1;
            }
        }
        assert!(grew > 50);
        assert!(shrank > 50);
    }
}
