//! Typed random program generation.
//!
//! Mirrors Syzkaller's resource typing: arguments that name kernel resources
//! are [`Res`] references to earlier calls that produce a compatible
//! resource. The generator keeps programs well-formed by construction; the
//! repair pass ([`fix_program`]) restores well-formedness after structural
//! mutations.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use sb_kernel::prog::{
    MsgCmd, Path, Program, Res, Syscall, DOMAINS, IOCTL_CMDS, SOCK_OPTS,
};

/// The resource classes a call can produce.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum ResKind {
    /// A file descriptor (sockets, files, devices).
    Fd,
    /// A System V message-queue id.
    MsqId,
}

/// The resource class call `c` produces, if any.
pub fn produces(c: &Syscall) -> Option<ResKind> {
    match c {
        Syscall::Socket { .. } | Syscall::Open { .. } => Some(ResKind::Fd),
        Syscall::Msgget { .. } => Some(ResKind::MsqId),
        _ => None,
    }
}

/// The resource class each [`Res`] argument of `c` requires.
pub fn requires(c: &Syscall) -> Option<ResKind> {
    match c {
        Syscall::Connect { .. }
        | Syscall::Sendmsg { .. }
        | Syscall::Setsockopt { .. }
        | Syscall::Getsockname { .. }
        | Syscall::Ioctl { .. }
        | Syscall::Close { .. }
        | Syscall::Read { .. }
        | Syscall::Write { .. }
        | Syscall::Fadvise { .. } => Some(ResKind::Fd),
        Syscall::Msgctl { .. } | Syscall::Msgsnd { .. } | Syscall::Msgrcv { .. } => {
            Some(ResKind::MsqId)
        }
        _ => None,
    }
}

/// Replaces every [`Res`] argument of `c` with `r`.
pub fn with_res(c: &Syscall, r: Res) -> Syscall {
    let mut c = c.clone();
    match &mut c {
        Syscall::Connect { sock, .. }
        | Syscall::Sendmsg { sock, .. }
        | Syscall::Setsockopt { sock, .. }
        | Syscall::Getsockname { sock } => *sock = r,
        Syscall::Ioctl { fd, .. }
        | Syscall::Close { fd }
        | Syscall::Read { fd, .. }
        | Syscall::Write { fd, .. }
        | Syscall::Fadvise { fd } => *fd = r,
        Syscall::Msgctl { id, .. }
        | Syscall::Msgsnd { id, .. }
        | Syscall::Msgrcv { id, .. } => *id = r,
        _ => {}
    }
    c
}

/// Random program generator with typed resources.
pub struct ProgGen {
    rng: StdRng,
}

impl ProgGen {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        ProgGen {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    fn gen_path(&mut self) -> Path {
        match self.rng.gen_range(0..5) {
            0 => Path::Ext4File(self.rng.gen_range(0..4)),
            1 => Path::BlockDev,
            2 => Path::Tty,
            3 => Path::SndCtl,
            _ => Path::Configfs(self.rng.gen_range(0..4)),
        }
    }

    /// Generates a resource-producing call.
    pub fn gen_producer(&mut self, kind: ResKind) -> Syscall {
        match kind {
            ResKind::Fd => {
                if self.rng.gen_bool(0.5) {
                    Syscall::Socket {
                        domain: *DOMAINS.choose(&mut self.rng).expect("non-empty"),
                    }
                } else {
                    Syscall::Open { path: self.gen_path() }
                }
            }
            ResKind::MsqId => Syscall::Msgget {
                key: self.rng.gen_range(0..8),
            },
        }
    }

    /// Generates one call template (with a placeholder `Res(0)` for resource
    /// args, to be fixed up by the caller).
    fn gen_template(&mut self) -> Syscall {
        let r = Res(0);
        match self.rng.gen_range(0..18) {
            0 => Syscall::Socket {
                domain: *DOMAINS.choose(&mut self.rng).expect("non-empty"),
            },
            1 => Syscall::Connect {
                sock: r,
                tunnel_id: self.rng.gen_range(0..4),
            },
            2 => Syscall::Sendmsg {
                sock: r,
                len: self.rng.gen_range(0..16),
            },
            3 => Syscall::Setsockopt {
                sock: r,
                opt: *SOCK_OPTS.choose(&mut self.rng).expect("non-empty"),
                val: self.rng.gen_range(0..8),
            },
            4 => Syscall::Getsockname { sock: r },
            5 => Syscall::Ioctl {
                fd: r,
                cmd: *IOCTL_CMDS.choose(&mut self.rng).expect("non-empty"),
                arg: self.rng.gen_range(0..16),
            },
            6 => Syscall::Open { path: self.gen_path() },
            7 => Syscall::Close { fd: r },
            8 => Syscall::Read {
                fd: r,
                off: self.rng.gen_range(0..16),
            },
            9 => Syscall::Write {
                fd: r,
                off: self.rng.gen_range(0..16),
                val: self.rng.gen_range(0..=255),
            },
            10 => Syscall::Fadvise { fd: r },
            11 => Syscall::Msgget {
                key: self.rng.gen_range(0..8),
            },
            12 => Syscall::Msgctl {
                id: r,
                cmd: if self.rng.gen_bool(0.5) {
                    MsgCmd::Rmid
                } else {
                    MsgCmd::Stat
                },
            },
            13 => Syscall::Mkdir {
                item: self.rng.gen_range(0..4),
            },
            14 => Syscall::Rmdir {
                item: self.rng.gen_range(0..4),
            },
            15 => Syscall::Msgsnd {
                id: r,
                mtype: self.rng.gen_range(0..4),
                val: self.rng.gen_range(0..=255),
            },
            16 => Syscall::Msgrcv {
                id: r,
                mtype: self.rng.gen_range(0..4),
            },
            _ => Syscall::Mount,
        }
    }

    /// Generates a well-formed program of up to `max_len` calls.
    pub fn gen_program(&mut self, max_len: usize) -> Program {
        let target = self.rng.gen_range(1..=max_len.max(1));
        let mut calls: Vec<Syscall> = Vec::with_capacity(target + 2);
        while calls.len() < target {
            let template = self.gen_template();
            match requires(&template) {
                None => calls.push(template),
                Some(kind) => {
                    let producers: Vec<usize> = calls
                        .iter()
                        .enumerate()
                        .filter(|(_, c)| produces(c) == Some(kind))
                        .map(|(i, _)| i)
                        .collect();
                    if let Some(&i) = producers.choose(&mut self.rng) {
                        calls.push(with_res(&template, Res(i as u8)));
                    } else if calls.len() + 1 < target + 2 {
                        // Insert the missing producer first, then the call.
                        calls.push(self.gen_producer(kind));
                        let i = calls.len() - 1;
                        calls.push(with_res(&template, Res(i as u8)));
                    }
                }
            }
        }
        let p = Program::new(calls);
        debug_assert!(p.is_well_formed());
        p
    }

    /// Access to the generator's RNG (used by the mutator).
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }
}

/// Repairs a program after structural edits: every [`Res`] argument must
/// point to an earlier call producing the right resource class; calls whose
/// requirements cannot be satisfied are dropped.
pub fn fix_program(p: &Program, rng: &mut StdRng) -> Program {
    let mut fixed: Vec<Syscall> = Vec::with_capacity(p.calls.len());
    for call in &p.calls {
        match requires(call) {
            None => fixed.push(call.clone()),
            Some(kind) => {
                let valid_as_is = call.res_args().iter().all(|r| {
                    fixed
                        .get(usize::from(r.0))
                        .map(|c| produces(c) == Some(kind))
                        .unwrap_or(false)
                });
                if valid_as_is {
                    fixed.push(call.clone());
                    continue;
                }
                let producers: Vec<usize> = fixed
                    .iter()
                    .enumerate()
                    .filter(|(_, c)| produces(c) == Some(kind))
                    .map(|(i, _)| i)
                    .collect();
                if let Some(&i) = producers.choose(rng) {
                    fixed.push(with_res(call, Res(i as u8)));
                }
                // Otherwise the call is dropped.
            }
        }
    }
    Program::new(fixed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sb_kernel::prog::Domain;

    #[test]
    fn generated_programs_are_well_formed() {
        let mut g = ProgGen::new(1);
        for _ in 0..500 {
            let p = g.gen_program(6);
            assert!(p.is_well_formed(), "{p}");
            assert!(!p.is_empty());
        }
    }

    #[test]
    fn generation_is_seed_deterministic() {
        let progs = |seed| {
            let mut g = ProgGen::new(seed);
            (0..50).map(|_| g.gen_program(5)).collect::<Vec<_>>()
        };
        assert_eq!(progs(7), progs(7));
        assert_ne!(progs(7), progs(8));
    }

    #[test]
    fn generator_covers_every_syscall_kind() {
        let mut g = ProgGen::new(99);
        let mut names = std::collections::HashSet::new();
        for _ in 0..2000 {
            for c in g.gen_program(6).calls {
                names.insert(c.name());
            }
        }
        for expect in [
            "socket", "connect", "sendmsg", "setsockopt", "getsockname", "ioctl", "open",
            "close", "read", "write", "fadvise", "msgget", "msgctl", "msgsnd", "msgrcv", "mkdir", "rmdir", "mount",
        ] {
            assert!(names.contains(expect), "never generated {expect}");
        }
    }

    #[test]
    fn fix_program_repairs_dangling_refs() {
        let mut rng = StdRng::seed_from_u64(3);
        // sendmsg referencing call 5 which does not exist.
        let broken = Program::new(vec![
            Syscall::Socket { domain: Domain::Inet },
            Syscall::Sendmsg { sock: Res(5), len: 1 },
        ]);
        let fixed = fix_program(&broken, &mut rng);
        assert!(fixed.is_well_formed());
        assert_eq!(fixed.len(), 2, "the ref should be re-pointed, not dropped");
    }

    #[test]
    fn fix_program_drops_unsatisfiable_calls() {
        let mut rng = StdRng::seed_from_u64(3);
        let broken = Program::new(vec![Syscall::Msgctl { id: Res(0), cmd: MsgCmd::Rmid }]);
        let fixed = fix_program(&broken, &mut rng);
        assert!(fixed.is_empty());
    }

    #[test]
    fn fix_program_respects_resource_kinds() {
        let mut rng = StdRng::seed_from_u64(4);
        // msgctl pointing at a socket: must be re-pointed at the msgget.
        let broken = Program::new(vec![
            Syscall::Socket { domain: Domain::Inet },
            Syscall::Msgget { key: 1 },
            Syscall::Msgctl { id: Res(0), cmd: MsgCmd::Stat },
        ]);
        let fixed = fix_program(&broken, &mut rng);
        assert!(fixed.is_well_formed());
        if let Syscall::Msgctl { id, .. } = &fixed.calls[2] {
            assert_eq!(id.0, 1);
        } else {
            panic!("expected msgctl");
        }
    }
}
