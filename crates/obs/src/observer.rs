//! Scheduler decision observers.
//!
//! The `sb-vmm` schedulers expose a [`DecisionObserver`] hook reporting
//! every scheduling decision (hint hit, voluntary preempt, forced switch,
//! pick, incidental-PMC pickup). Decisions happen on the per-access hot
//! path, so [`CountingObserver`] aggregates them into atomics and emits a
//! handful of counter events only when [`CountingObserver::publish`] is
//! called at a job boundary — a traced trial never writes one JSONL line
//! per access. [`RecordingObserver`] captures the full decision sequence
//! for determinism tests.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use sb_vmm::sched::{DecisionObserver, SchedDecision};

use crate::trace::{keys, Tracer};

/// Aggregates scheduler decisions into atomic counters.
#[derive(Debug, Default)]
pub struct CountingObserver {
    hint_hits: AtomicU64,
    voluntary: AtomicU64,
    forced: AtomicU64,
    picks: AtomicU64,
    incidental: AtomicU64,
}

impl CountingObserver {
    /// A fresh observer with all counters at zero.
    pub fn new() -> Self {
        CountingObserver::default()
    }

    /// Accesses that matched a scheduling hint.
    pub fn hint_hits(&self) -> u64 {
        self.hint_hits.load(Ordering::Relaxed)
    }

    /// Voluntary preemptions granted.
    pub fn voluntary(&self) -> u64 {
        self.voluntary.load(Ordering::Relaxed)
    }

    /// Liveness-forced switches.
    pub fn forced(&self) -> u64 {
        self.forced.load(Ordering::Relaxed)
    }

    /// Next-thread picks.
    pub fn picks(&self) -> u64 {
        self.picks.load(Ordering::Relaxed)
    }

    /// Incidental PMC hint-pattern additions.
    pub fn incidental(&self) -> u64 {
        self.incidental.load(Ordering::Relaxed)
    }

    /// Emits the aggregate counts to `tracer` and resets them, so one
    /// observer can be published per job without double counting.
    pub fn publish(&self, tracer: &Tracer) {
        tracer.count(keys::SCHED_HINT_HITS, self.hint_hits.swap(0, Ordering::Relaxed));
        tracer.count(keys::SCHED_VOLUNTARY, self.voluntary.swap(0, Ordering::Relaxed));
        tracer.count(keys::SCHED_FORCED, self.forced.swap(0, Ordering::Relaxed));
        tracer.count(keys::SCHED_PICKS, self.picks.swap(0, Ordering::Relaxed));
        tracer.count(keys::INCIDENTAL_PMCS, self.incidental.swap(0, Ordering::Relaxed));
    }
}

impl DecisionObserver for CountingObserver {
    fn on_decision(&self, d: SchedDecision) {
        match d {
            SchedDecision::HintHit { .. } => &self.hint_hits,
            SchedDecision::Preempt { .. } => &self.voluntary,
            SchedDecision::Forced { .. } => &self.forced,
            SchedDecision::Pick { .. } => &self.picks,
            SchedDecision::PmcAdded { count } => {
                self.incidental.fetch_add(count as u64, Ordering::Relaxed);
                return;
            }
        }
        .fetch_add(1, Ordering::Relaxed);
    }
}

/// Records the full decision sequence, in order. For determinism tests:
/// two runs with the same seed and the same hints must produce identical
/// sequences.
#[derive(Debug, Default)]
pub struct RecordingObserver {
    decisions: Mutex<Vec<SchedDecision>>,
}

impl RecordingObserver {
    /// A fresh, empty recorder.
    pub fn new() -> Self {
        RecordingObserver::default()
    }

    /// Returns the recorded sequence, leaving the recorder empty.
    pub fn take(&self) -> Vec<SchedDecision> {
        std::mem::take(&mut *self.decisions.lock().expect("recorder poisoned"))
    }

    /// Decisions recorded so far.
    pub fn len(&self) -> usize {
        self.decisions.lock().expect("recorder poisoned").len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl DecisionObserver for RecordingObserver {
    fn on_decision(&self, d: SchedDecision) {
        self.decisions.lock().expect("recorder poisoned").push(d);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;

    #[test]
    fn counting_observer_aggregates_and_publishes_once() {
        let obs = CountingObserver::new();
        obs.on_decision(SchedDecision::HintHit { thread: 0 });
        obs.on_decision(SchedDecision::HintHit { thread: 1 });
        obs.on_decision(SchedDecision::Preempt { thread: 0, hinted: true });
        obs.on_decision(SchedDecision::Forced { thread: 1 });
        obs.on_decision(SchedDecision::Pick { from: 0, to: 1 });
        obs.on_decision(SchedDecision::PmcAdded { count: 2 });
        assert_eq!(
            (obs.hint_hits(), obs.voluntary(), obs.forced(), obs.picks(), obs.incidental()),
            (2, 1, 1, 1, 2)
        );
        let (tracer, sink) = Tracer::memory();
        obs.publish(&tracer);
        let mut kinds = std::collections::BTreeMap::new();
        for line in sink.lines() {
            if let Event::Count { key, n, .. } = Event::parse_line(&line).unwrap() {
                kinds.insert(key, n);
            }
        }
        assert_eq!(kinds.get(keys::SCHED_HINT_HITS), Some(&2));
        assert_eq!(kinds.get(keys::INCIDENTAL_PMCS), Some(&2));
        // Publishing drained the counters: a second publish emits nothing.
        let before = sink.lines().len();
        obs.publish(&tracer);
        assert_eq!(sink.lines().len(), before);
    }

    #[test]
    fn recording_observer_keeps_order() {
        let obs = RecordingObserver::new();
        obs.on_decision(SchedDecision::Pick { from: 0, to: 1 });
        obs.on_decision(SchedDecision::Forced { thread: 1 });
        assert_eq!(obs.len(), 2);
        let seq = obs.take();
        assert_eq!(
            seq,
            vec![
                SchedDecision::Pick { from: 0, to: 1 },
                SchedDecision::Forced { thread: 1 },
            ]
        );
        assert!(obs.is_empty());
    }
}
