//! `sb-obs` — zero-dependency structured tracing and metrics for the hunt
//! pipeline.
//!
//! The crate provides four pieces, all built on the workspace's hand-rolled
//! u64-exact [`json`] module (which lives here so every consumer shares one
//! serializer):
//!
//! * [`trace`] — the [`Tracer`] handle: hierarchical spans with monotonic
//!   microsecond timings, typed counters and histograms, and pluggable
//!   sinks ([`trace::MemorySink`] for tests, [`trace::JsonlSink`] for
//!   `hunt --trace-dir`). A disabled tracer is a single `Option` check per
//!   call — the bench pipeline runs within noise of an untraced build.
//! * [`event`] — the typed JSONL event schema ([`Event`]), validated in
//!   both directions.
//! * [`observer`] — [`DecisionObserver`](sb_vmm::sched::DecisionObserver)
//!   implementations: [`CountingObserver`] aggregates hot-path scheduler
//!   decisions into atomics and publishes them at job boundaries;
//!   [`RecordingObserver`] captures full decision sequences for
//!   determinism tests.
//! * [`report`] — [`TraceReport`]: reconstructs per-stage wall clock and
//!   funnel attrition from a trace file and cross-checks them against the
//!   run's own summary (`sb trace report`).

pub mod event;
pub mod json;
pub mod observer;
pub mod report;
pub mod trace;

pub use event::Event;
pub use observer::{CountingObserver, RecordingObserver};
pub use report::{Funnel, TraceReport};
pub use trace::{keys, JsonlSink, MemorySink, Sink, Span, Tracer};
