//! A minimal JSON value, writer, and parser.
//!
//! Campaign checkpoints, store manifests, and trace event files must
//! survive a process kill and be readable by humans mid-campaign, which
//! makes JSON the right container — but the workspace deliberately avoids
//! pulling in `serde_json`, so this module implements the small subset
//! those formats need: objects, arrays, strings, booleans, null, and
//! *unsigned integers only*. Every number we persist (seeds, step counts,
//! trial counts, ids, microsecond timestamps) is an unsigned integer, and
//! keeping them out of `f64` preserves full 64-bit precision.

use std::fmt::Write as _;

/// A JSON value restricted to the checkpoint format's needs.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A non-negative integer; covers every numeric field we persist and
    /// round-trips `u64::MAX` exactly (unlike an `f64` payload).
    U64(u64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved for stable output.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The integer payload, if this is a number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::U64(n) => Some(*n),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The bool payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Renders compact single-line JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::U64(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a JSON document. Errors carry the byte offset and a short reason.
pub fn parse(input: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn eat_keyword(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.eat_keyword("null", Json::Null),
            Some(b't') => self.eat_keyword("true", Json::Bool(true)),
            Some(b'f') => self.eat_keyword("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'0'..=b'9') => self.number(),
            Some(c) => Err(format!("unexpected '{}' at byte {}", c as char, self.pos)),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if matches!(self.peek(), Some(b'.' | b'e' | b'E' | b'-' | b'+')) {
            return Err(format!(
                "only unsigned integers are supported (byte {})",
                self.pos
            ));
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<u64>()
            .map(Json::U64)
            .map_err(|_| format!("integer out of range at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or("\\u escape is not a scalar value")?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Advance one full UTF-8 character, not one byte.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid UTF-8 in string".to_string())?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

/// Atomically and *durably* replaces the file at `path` with `text`: write
/// `<path>.tmp`, fsync it, rename over `path`, then fsync the parent
/// directory. Readers never observe a torn file, and a crash immediately
/// after the call returns cannot resurrect the pre-rename content — without
/// the directory fsync the rename itself may still live only in the page
/// cache, so a resumed campaign could trust a checkpoint older than the one
/// it was told was written. Shared by the campaign checkpoint and the
/// profile-store manifest.
///
/// On failure returns `(op, path, source)` where `op` is `"write"`,
/// `"fsync"`, `"rename"`, or `"fsync-dir"` and `path` is the file the
/// failing operation touched, so callers can map into their own error
/// types.
pub fn atomic_write(
    path: &std::path::Path,
    text: &str,
) -> Result<(), (&'static str, std::path::PathBuf, std::io::Error)> {
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, text.as_bytes()).map_err(|source| ("write", tmp.clone(), source))?;
    let f = std::fs::File::open(&tmp).map_err(|source| ("fsync", tmp.clone(), source))?;
    f.sync_all().map_err(|source| ("fsync", tmp.clone(), source))?;
    std::fs::rename(&tmp, path).map_err(|source| ("rename", path.to_path_buf(), source))?;
    // Durability of the rename itself requires syncing the directory entry.
    // A path with no parent (or an empty one, e.g. a bare file name) means
    // the current directory.
    let dir = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
        _ => std::path::PathBuf::from("."),
    };
    let d = std::fs::File::open(&dir).map_err(|source| ("fsync-dir", dir.clone(), source))?;
    d.sync_all().map_err(|source| ("fsync-dir", dir, source))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_nested_document() {
        let doc = Json::Obj(vec![
            ("seed".to_string(), Json::U64(u64::MAX)),
            ("done".to_string(), Json::Bool(false)),
            ("note".to_string(), Json::Str("line\n\"two\" \\ λ".to_string())),
            (
                "items".to_string(),
                Json::Arr(vec![Json::Null, Json::U64(0), Json::Arr(vec![])]),
            ),
            ("empty".to_string(), Json::Obj(vec![])),
        ]);
        let text = doc.render();
        assert_eq!(parse(&text).unwrap(), doc);
    }

    #[test]
    fn u64_max_survives_exactly() {
        let text = Json::U64(u64::MAX).render();
        assert_eq!(parse(&text).unwrap().as_u64(), Some(u64::MAX));
    }

    #[test]
    fn parses_whitespace_and_escapes() {
        let doc = parse(" { \"a\" : [ 1 , true , \"x\\u0041\\n\" ] } ").unwrap();
        let arr = doc.get("a").and_then(Json::as_arr).unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].as_bool(), Some(true));
        assert_eq!(arr[2].as_str(), Some("xA\n"));
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("1.5").is_err());
        assert!(parse("-1").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("{} trailing").is_err());
        assert!(parse("18446744073709551616").is_err(), "u64 overflow");
    }

    #[test]
    fn get_on_non_object_is_none() {
        assert_eq!(Json::U64(1).get("x"), None);
        assert_eq!(Json::Arr(vec![]).as_u64(), None);
    }

    #[test]
    fn atomic_write_replaces_and_leaves_no_tempfile() {
        let dir = std::env::temp_dir().join(format!("sb-obs-aw-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("state.json");
        atomic_write(&path, "{\"v\":1}").unwrap();
        atomic_write(&path, "{\"v\":2}").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "{\"v\":2}");
        assert!(
            !path.with_extension("tmp").exists(),
            "tempfile must not survive a successful write"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn atomic_write_reports_failing_operation() {
        let dir = std::env::temp_dir().join(format!("sb-obs-awf-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        // The target is a directory: the rename must fail and be tagged.
        let target = dir.join("occupied");
        std::fs::create_dir_all(target.join("x")).unwrap();
        let (op, _, _) = atomic_write(&target, "{}").unwrap_err();
        assert_eq!(op, "rename");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
