//! The typed trace-event model and its JSONL schema.
//!
//! Every line of a trace file is one JSON object with a `t` field
//! (microseconds since the tracer's origin) and an `ev` discriminator.
//! [`Event::to_json`] and [`Event::from_json`] define the schema in both
//! directions; `from_json` rejects unknown discriminators and missing or
//! mistyped fields, which is what the CI trace-validation job leans on.
//!
//! Eight event kinds exist:
//!
//! | `ev`         | payload                                                |
//! |--------------|--------------------------------------------------------|
//! | `span_start` | `span`, `parent` (0 = root), `name`                    |
//! | `span_end`   | `span`, `name`, `dur` (µs)                             |
//! | `count`      | `key`, `n` — a monotonic counter increment             |
//! | `hist`       | `key`, `v` — one histogram observation                 |
//! | `job`        | one campaign job's resolution (totals + quarantine bit)|
//! | `worker`     | one supervised-worker lifecycle transition             |
//! | `fleet`      | one fleet-worker lifecycle/lease transition            |
//! | `summary`    | the run's funnel + `CampaignReport` totals             |
//!
//! The `summary` event is emitted last, from the authoritative
//! `CampaignReport`, so a reader can cross-check the funnel it reconstructs
//! from the fine-grained events against what the run itself claimed.

use crate::json::Json;

/// One structured trace event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Event {
    /// A span opened.
    SpanStart {
        /// Microseconds since tracer origin.
        t: u64,
        /// Span id (unique within the trace, starts at 1).
        span: u64,
        /// Parent span id; 0 for a root span.
        parent: u64,
        /// Span name (e.g. `campaign`, `profile`).
        name: String,
    },
    /// A span closed.
    SpanEnd {
        /// Microseconds since tracer origin.
        t: u64,
        /// Span id matching the corresponding [`Event::SpanStart`].
        span: u64,
        /// Span name, repeated for line-local readability.
        name: String,
        /// Span duration in microseconds.
        dur: u64,
    },
    /// A counter increment.
    Count {
        /// Microseconds since tracer origin.
        t: u64,
        /// Counter key (see [`crate::trace::keys`]).
        key: String,
        /// Increment amount.
        n: u64,
    },
    /// One histogram observation.
    Hist {
        /// Microseconds since tracer origin.
        t: u64,
        /// Histogram key.
        key: String,
        /// Observed value.
        v: u64,
    },
    /// One campaign job resolved (completed or quarantined).
    Job {
        /// Microseconds since tracer origin.
        t: u64,
        /// Campaign job index.
        job: u64,
        /// Trials executed.
        trials: u64,
        /// Engine steps consumed.
        steps: u64,
        /// Distinct findings within the job.
        findings: u64,
        /// Attempts consumed (1 = first try; 0 = never dispatched).
        attempts: u64,
        /// True if the job was quarantined instead of completing.
        quarantined: bool,
    },
    /// One supervised-worker lifecycle transition (multi-process campaigns
    /// only). Actions: `spawn`, `restart`, `exit`, `heartbeat-miss`,
    /// `give-up`.
    Worker {
        /// Microseconds since tracer origin.
        t: u64,
        /// Worker shard index.
        worker: u64,
        /// Lifecycle action.
        action: String,
        /// Human-readable context (exit status, pending count, ...).
        detail: String,
    },
    /// One fleet-worker lifecycle or lease transition (TCP-coordinated
    /// campaigns only). Actions: `join`, `reject`, `lease`, `evict`,
    /// `reassign`, `duplicate`, `drain`, `give-up`.
    Fleet {
        /// Microseconds since tracer origin.
        t: u64,
        /// Coordinator-assigned worker id (or connection id before a
        /// worker joined).
        worker: u64,
        /// Lifecycle action.
        action: String,
        /// Human-readable context (reason, lease contents, ...).
        detail: String,
    },
    /// Final run summary: the funnel plus `CampaignReport` totals.
    Summary {
        /// Microseconds since tracer origin.
        t: u64,
        /// Sequential profiles obtained (stage 1 output).
        profiles: u64,
        /// Shared accesses surviving the stack filter.
        shared_accesses: u64,
        /// PMCs identified (stage 2 output).
        pmcs: u64,
        /// Clusters induced by the selected strategy (stage 3).
        clusters: u64,
        /// Concurrent tests executed (`CampaignReport::tested`).
        jobs: u64,
        /// Trials executed (`CampaignReport::executions`).
        trials: u64,
        /// Engine steps (`CampaignReport::total_steps`).
        steps: u64,
        /// Distinct issues discovered.
        findings: u64,
        /// Jobs quarantined.
        quarantined: u64,
    },
}

fn obj(fields: Vec<(&str, Json)>) -> Json {
    Json::Obj(fields.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
}

fn field_u64(doc: &Json, key: &str) -> Result<u64, String> {
    doc.get(key)
        .ok_or_else(|| format!("missing field '{key}'"))?
        .as_u64()
        .ok_or_else(|| format!("field '{key}' is not an unsigned integer"))
}

fn field_str(doc: &Json, key: &str) -> Result<String, String> {
    doc.get(key)
        .ok_or_else(|| format!("missing field '{key}'"))?
        .as_str()
        .map(str::to_owned)
        .ok_or_else(|| format!("field '{key}' is not a string"))
}

fn field_bool(doc: &Json, key: &str) -> Result<bool, String> {
    doc.get(key)
        .ok_or_else(|| format!("missing field '{key}'"))?
        .as_bool()
        .ok_or_else(|| format!("field '{key}' is not a boolean"))
}

impl Event {
    /// The `ev` discriminator.
    pub fn kind(&self) -> &'static str {
        match self {
            Event::SpanStart { .. } => "span_start",
            Event::SpanEnd { .. } => "span_end",
            Event::Count { .. } => "count",
            Event::Hist { .. } => "hist",
            Event::Job { .. } => "job",
            Event::Worker { .. } => "worker",
            Event::Fleet { .. } => "fleet",
            Event::Summary { .. } => "summary",
        }
    }

    /// Renders the event as a JSON object (one trace line, sans newline).
    pub fn to_json(&self) -> Json {
        let ev = Json::Str(self.kind().to_owned());
        match self {
            Event::SpanStart { t, span, parent, name } => obj(vec![
                ("t", Json::U64(*t)),
                ("ev", ev),
                ("span", Json::U64(*span)),
                ("parent", Json::U64(*parent)),
                ("name", Json::Str(name.clone())),
            ]),
            Event::SpanEnd { t, span, name, dur } => obj(vec![
                ("t", Json::U64(*t)),
                ("ev", ev),
                ("span", Json::U64(*span)),
                ("name", Json::Str(name.clone())),
                ("dur", Json::U64(*dur)),
            ]),
            Event::Count { t, key, n } => obj(vec![
                ("t", Json::U64(*t)),
                ("ev", ev),
                ("key", Json::Str(key.clone())),
                ("n", Json::U64(*n)),
            ]),
            Event::Hist { t, key, v } => obj(vec![
                ("t", Json::U64(*t)),
                ("ev", ev),
                ("key", Json::Str(key.clone())),
                ("v", Json::U64(*v)),
            ]),
            Event::Job { t, job, trials, steps, findings, attempts, quarantined } => obj(vec![
                ("t", Json::U64(*t)),
                ("ev", ev),
                ("job", Json::U64(*job)),
                ("trials", Json::U64(*trials)),
                ("steps", Json::U64(*steps)),
                ("findings", Json::U64(*findings)),
                ("attempts", Json::U64(*attempts)),
                ("quarantined", Json::Bool(*quarantined)),
            ]),
            Event::Worker { t, worker, action, detail }
            | Event::Fleet { t, worker, action, detail } => obj(vec![
                ("t", Json::U64(*t)),
                ("ev", ev),
                ("worker", Json::U64(*worker)),
                ("action", Json::Str(action.clone())),
                ("detail", Json::Str(detail.clone())),
            ]),
            Event::Summary {
                t,
                profiles,
                shared_accesses,
                pmcs,
                clusters,
                jobs,
                trials,
                steps,
                findings,
                quarantined,
            } => obj(vec![
                ("t", Json::U64(*t)),
                ("ev", ev),
                ("profiles", Json::U64(*profiles)),
                ("shared_accesses", Json::U64(*shared_accesses)),
                ("pmcs", Json::U64(*pmcs)),
                ("clusters", Json::U64(*clusters)),
                ("jobs", Json::U64(*jobs)),
                ("trials", Json::U64(*trials)),
                ("steps", Json::U64(*steps)),
                ("findings", Json::U64(*findings)),
                ("quarantined", Json::U64(*quarantined)),
            ]),
        }
    }

    /// Parses and schema-validates one trace line's JSON object.
    pub fn from_json(doc: &Json) -> Result<Event, String> {
        let t = field_u64(doc, "t")?;
        let ev = field_str(doc, "ev")?;
        match ev.as_str() {
            "span_start" => Ok(Event::SpanStart {
                t,
                span: field_u64(doc, "span")?,
                parent: field_u64(doc, "parent")?,
                name: field_str(doc, "name")?,
            }),
            "span_end" => Ok(Event::SpanEnd {
                t,
                span: field_u64(doc, "span")?,
                name: field_str(doc, "name")?,
                dur: field_u64(doc, "dur")?,
            }),
            "count" => Ok(Event::Count {
                t,
                key: field_str(doc, "key")?,
                n: field_u64(doc, "n")?,
            }),
            "hist" => Ok(Event::Hist {
                t,
                key: field_str(doc, "key")?,
                v: field_u64(doc, "v")?,
            }),
            "job" => Ok(Event::Job {
                t,
                job: field_u64(doc, "job")?,
                trials: field_u64(doc, "trials")?,
                steps: field_u64(doc, "steps")?,
                findings: field_u64(doc, "findings")?,
                attempts: field_u64(doc, "attempts")?,
                quarantined: field_bool(doc, "quarantined")?,
            }),
            "worker" => Ok(Event::Worker {
                t,
                worker: field_u64(doc, "worker")?,
                action: field_str(doc, "action")?,
                detail: field_str(doc, "detail")?,
            }),
            "fleet" => Ok(Event::Fleet {
                t,
                worker: field_u64(doc, "worker")?,
                action: field_str(doc, "action")?,
                detail: field_str(doc, "detail")?,
            }),
            "summary" => Ok(Event::Summary {
                t,
                profiles: field_u64(doc, "profiles")?,
                shared_accesses: field_u64(doc, "shared_accesses")?,
                pmcs: field_u64(doc, "pmcs")?,
                clusters: field_u64(doc, "clusters")?,
                jobs: field_u64(doc, "jobs")?,
                trials: field_u64(doc, "trials")?,
                steps: field_u64(doc, "steps")?,
                findings: field_u64(doc, "findings")?,
                quarantined: field_u64(doc, "quarantined")?,
            }),
            other => Err(format!("unknown event kind '{other}'")),
        }
    }

    /// Parses and schema-validates one raw trace line.
    pub fn parse_line(line: &str) -> Result<Event, String> {
        let doc = crate::json::parse(line)?;
        Event::from_json(&doc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(ev: Event) {
        let line = ev.to_json().render();
        assert_eq!(Event::parse_line(&line).unwrap(), ev, "line: {line}");
    }

    #[test]
    fn all_kinds_round_trip() {
        roundtrip(Event::SpanStart { t: 1, span: 1, parent: 0, name: "campaign".into() });
        roundtrip(Event::SpanEnd { t: 9, span: 1, name: "campaign".into(), dur: 8 });
        roundtrip(Event::Count { t: 2, key: "profile.ok".into(), n: 3 });
        roundtrip(Event::Hist { t: 2, key: "select.cluster_size".into(), v: u64::MAX });
        roundtrip(Event::Job {
            t: 3,
            job: 7,
            trials: 24,
            steps: 9000,
            findings: 1,
            attempts: 2,
            quarantined: false,
        });
        roundtrip(Event::Worker {
            t: 5,
            worker: 2,
            action: "heartbeat-miss".into(),
            detail: "silent for 10.2s".into(),
        });
        roundtrip(Event::Fleet {
            t: 6,
            worker: 3,
            action: "reassign".into(),
            detail: "job 12: lease 4 expired".into(),
        });
        roundtrip(Event::Summary {
            t: 4,
            profiles: 100,
            shared_accesses: 5000,
            pmcs: 300,
            clusters: 40,
            jobs: 40,
            trials: 960,
            steps: 1_000_000,
            findings: 2,
            quarantined: 1,
        });
    }

    #[test]
    fn rejects_schema_violations() {
        // Unknown kind.
        assert!(Event::parse_line("{\"t\":0,\"ev\":\"nope\"}").is_err());
        // Missing discriminator / timestamp.
        assert!(Event::parse_line("{\"ev\":\"count\",\"key\":\"k\",\"n\":1}").is_err());
        assert!(Event::parse_line("{\"t\":0,\"key\":\"k\",\"n\":1}").is_err());
        // Mistyped field.
        assert!(Event::parse_line("{\"t\":0,\"ev\":\"count\",\"key\":\"k\",\"n\":\"1\"}").is_err());
        // Missing field.
        assert!(Event::parse_line("{\"t\":0,\"ev\":\"span_end\",\"span\":1,\"name\":\"x\"}").is_err());
        assert!(Event::parse_line("{\"t\":0,\"ev\":\"worker\",\"worker\":1,\"action\":\"spawn\"}").is_err());
        assert!(Event::parse_line("{\"t\":0,\"ev\":\"fleet\",\"worker\":1,\"action\":\"join\"}").is_err());
        // Not JSON at all.
        assert!(Event::parse_line("not json").is_err());
    }
}
