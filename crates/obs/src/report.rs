//! Trace-file aggregation: per-stage wall clock and funnel attrition.
//!
//! [`TraceReport::from_lines`] schema-validates every line of a trace and
//! folds it into counters, histogram summaries, per-span wall-clock totals,
//! per-job totals, and the final summary event. [`TraceReport::verify`]
//! cross-checks the reconstruction against that summary — the funnel
//! counters and the job totals must agree *exactly* with what the run's
//! `CampaignReport` claimed, which is what the CI trace-validation job
//! enforces. [`TraceReport::render`] produces the human-readable output of
//! `snowboard-cli trace report`.

use std::collections::BTreeMap;

use crate::event::Event;
use crate::trace::keys;

/// Summary of one histogram key's observations.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistSummary {
    /// Number of observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
    /// Smallest observation.
    pub min: u64,
    /// Largest observation.
    pub max: u64,
}

impl HistSummary {
    fn observe(&mut self, v: u64) {
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum += v;
    }
}

/// Wall-clock totals for one span name.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SpanSummary {
    /// Spans opened under this name.
    pub count: u64,
    /// Spans closed (a live trace may have opens without closes).
    pub closed: u64,
    /// Total duration across closed spans, microseconds.
    pub total_us: u64,
}

/// One job event's totals.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JobSummary {
    /// Campaign job index.
    pub job: u64,
    /// Trials executed.
    pub trials: u64,
    /// Engine steps consumed.
    pub steps: u64,
    /// Distinct findings.
    pub findings: u64,
    /// Attempts consumed.
    pub attempts: u64,
    /// Quarantined instead of completed.
    pub quarantined: bool,
}

/// The funnel the trace reconstructs: counts surviving each pipeline stage.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Funnel {
    /// Sequential profiles (stage 1 output).
    pub profiles: u64,
    /// Shared accesses surviving the stack filter.
    pub shared_accesses: u64,
    /// PMCs identified (stage 2 output).
    pub pmcs: u64,
    /// Clusters induced by the strategy (stage 3).
    pub clusters: u64,
    /// Concurrent tests that completed (stage 4).
    pub jobs: u64,
    /// Trials executed.
    pub trials: u64,
}

/// Everything reconstructed from one trace file.
#[derive(Clone, Debug, Default)]
pub struct TraceReport {
    /// Total events parsed.
    pub events: usize,
    /// Final counter values, by key.
    pub counters: BTreeMap<String, u64>,
    /// Histogram summaries, by key.
    pub hists: BTreeMap<String, HistSummary>,
    /// Per-span-name wall-clock totals.
    pub spans: BTreeMap<String, SpanSummary>,
    /// Per-job totals, in emission order.
    pub jobs: Vec<JobSummary>,
    /// Supervised-worker lifecycle action counts (`spawn`, `restart`,
    /// `exit`, `heartbeat-miss`, `give-up`), by action. Empty for
    /// single-process runs.
    pub worker_actions: BTreeMap<String, u64>,
    /// Fleet-worker lifecycle/lease action counts (`join`, `reject`,
    /// `lease`, `evict`, `reassign`, `duplicate`, `drain`, `give-up`), by
    /// action. Empty for non-fleet runs.
    pub fleet_actions: BTreeMap<String, u64>,
    /// The final summary event, if the run emitted one.
    pub summary: Option<Event>,
}

impl TraceReport {
    /// Parses and aggregates trace lines. Empty lines are skipped; any
    /// malformed or schema-violating line fails the whole report with its
    /// 1-based line number.
    pub fn from_lines<'a>(lines: impl IntoIterator<Item = &'a str>) -> Result<Self, String> {
        let mut r = TraceReport::default();
        for (i, line) in lines.into_iter().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let ev = Event::parse_line(line).map_err(|e| format!("line {}: {e}", i + 1))?;
            r.events += 1;
            match ev {
                Event::SpanStart { ref name, .. } => {
                    r.spans.entry(name.clone()).or_default().count += 1;
                }
                Event::SpanEnd { ref name, dur, .. } => {
                    let s = r.spans.entry(name.clone()).or_default();
                    s.closed += 1;
                    s.total_us += dur;
                }
                Event::Count { ref key, n, .. } => {
                    *r.counters.entry(key.clone()).or_insert(0) += n;
                }
                Event::Hist { ref key, v, .. } => {
                    r.hists.entry(key.clone()).or_default().observe(v);
                }
                Event::Job { job, trials, steps, findings, attempts, quarantined, .. } => {
                    r.jobs.push(JobSummary { job, trials, steps, findings, attempts, quarantined });
                }
                Event::Worker { ref action, .. } => {
                    *r.worker_actions.entry(action.clone()).or_insert(0) += 1;
                }
                Event::Fleet { ref action, .. } => {
                    *r.fleet_actions.entry(action.clone()).or_insert(0) += 1;
                }
                Event::Summary { .. } => {
                    if r.summary.is_some() {
                        return Err(format!("line {}: duplicate summary event", i + 1));
                    }
                    r.summary = Some(ev);
                }
            }
        }
        Ok(r)
    }

    /// Reads and aggregates a trace file.
    pub fn from_file(path: &std::path::Path) -> Result<Self, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("reading {}: {e}", path.display()))?;
        Self::from_lines(text.lines())
    }

    /// Total for one counter key (0 when never incremented).
    pub fn counter(&self, key: &str) -> u64 {
        self.counters.get(key).copied().unwrap_or(0)
    }

    /// The funnel reconstructed from fine-grained events (counters and job
    /// events), independent of the summary event.
    pub fn funnel(&self) -> Funnel {
        Funnel {
            profiles: self.counter(keys::PIPELINE_PROFILES),
            shared_accesses: self.counter(keys::PIPELINE_SHARED_ACCESSES),
            pmcs: self.counter(keys::PIPELINE_PMCS),
            clusters: self.counter(keys::CLUSTERS),
            jobs: self.jobs.iter().filter(|j| !j.quarantined).count() as u64,
            trials: self.jobs.iter().map(|j| j.trials).sum(),
        }
    }

    /// Cross-checks the reconstruction against the summary event. Returns
    /// the list of mismatches (empty = consistent). Missing summary is
    /// itself a mismatch: a complete trace always ends with one.
    pub fn verify(&self) -> Vec<String> {
        let Some(Event::Summary {
            profiles,
            shared_accesses,
            pmcs,
            clusters,
            jobs,
            trials,
            steps,
            quarantined,
            ..
        }) = self.summary
        else {
            return vec!["no summary event found (incomplete trace?)".to_owned()];
        };
        let f = self.funnel();
        let job_steps: u64 = self.jobs.iter().map(|j| j.steps).sum();
        let job_quarantined = self.jobs.iter().filter(|j| j.quarantined).count() as u64;
        let mut mismatches = Vec::new();
        let mut check = |what: &str, reconstructed: u64, summary: u64| {
            if reconstructed != summary {
                mismatches.push(format!(
                    "{what}: events say {reconstructed}, summary says {summary}"
                ));
            }
        };
        check("profiles", f.profiles, profiles);
        check("shared_accesses", f.shared_accesses, shared_accesses);
        check("pmcs", f.pmcs, pmcs);
        check("clusters", f.clusters, clusters);
        check("jobs", f.jobs, jobs);
        check("trials", f.trials, trials);
        check("steps", job_steps, steps);
        check("quarantined", job_quarantined, quarantined);
        self.verify_supervision(&mut mismatches);
        self.verify_fleet(&mut mismatches);
        mismatches
    }

    /// Cross-checks supervisor lifecycle events against the `supervise.*`
    /// counters. Only applies to supervised runs — a trace with neither
    /// worker events nor supervise counters passes vacuously.
    fn verify_supervision(&self, mismatches: &mut Vec<String>) {
        let action = |a: &str| self.worker_actions.get(a).copied().unwrap_or(0);
        let supervised = !self.worker_actions.is_empty()
            || self.counters.keys().any(|k| k.starts_with("supervise."));
        if !supervised {
            return;
        }
        let mut check = |what: &str, events: u64, counter: u64| {
            if events != counter {
                mismatches.push(format!(
                    "{what}: worker events say {events}, counter says {counter}"
                ));
            }
        };
        check("worker spawns", action("spawn"), self.counter(keys::SUPERVISE_SPAWNS));
        check("worker restarts", action("restart"), self.counter(keys::SUPERVISE_RESPAWNS));
        check(
            "worker heartbeat misses",
            action("heartbeat-miss"),
            self.counter(keys::SUPERVISE_HEARTBEAT_MISSES),
        );
        check("abandoned shards", action("give-up"), self.counter(keys::SUPERVISE_GAVE_UP));
        // Every process that started (spawn or restart) must have exited by
        // the time the trace completes — the no-orphans invariant.
        check("worker exits", action("exit"), action("spawn") + action("restart"));
    }

    /// Cross-checks fleet lifecycle events against the `fleet.*` counters.
    /// Only applies to coordinated runs — a trace with neither fleet events
    /// nor fleet counters passes vacuously.
    fn verify_fleet(&self, mismatches: &mut Vec<String>) {
        let action = |a: &str| self.fleet_actions.get(a).copied().unwrap_or(0);
        let fleet = !self.fleet_actions.is_empty()
            || self.counters.keys().any(|k| k.starts_with("fleet."));
        if !fleet {
            return;
        }
        let mut check = |what: &str, events: u64, counter: u64| {
            if events != counter {
                mismatches.push(format!(
                    "{what}: fleet events say {events}, counter says {counter}"
                ));
            }
        };
        check("fleet joins", action("join"), self.counter(keys::FLEET_JOINS));
        check("fleet rejects", action("reject"), self.counter(keys::FLEET_REJECTS));
        check("fleet leases", action("lease"), self.counter(keys::FLEET_LEASES));
        check("fleet evictions", action("evict"), self.counter(keys::FLEET_EVICTIONS));
        // Reassignments are emitted one event per job, so the event count
        // must equal the per-job counter exactly.
        check("fleet reassignments", action("reassign"), self.counter(keys::FLEET_REASSIGNED));
        check("fleet duplicates", action("duplicate"), self.counter(keys::FLEET_DUPLICATES));
    }

    /// Renders the human-readable report: per-stage wall clock, funnel
    /// attrition, scheduler/store counters, and the verification verdict.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "{} event(s)", self.events);
        if !self.spans.is_empty() {
            let _ = writeln!(out, "\nper-stage wall clock:");
            for (name, s) in &self.spans {
                let _ = writeln!(
                    out,
                    "  {name:<12} {:>10.3} ms across {} span(s)",
                    s.total_us as f64 / 1000.0,
                    s.closed
                );
            }
        }
        let f = self.funnel();
        let _ = writeln!(out, "\nfunnel:");
        let _ = writeln!(out, "  profiles        {:>10}", f.profiles);
        let _ = writeln!(out, "  shared accesses {:>10}", f.shared_accesses);
        let _ = writeln!(out, "  pmcs            {:>10}", f.pmcs);
        let _ = writeln!(out, "  clusters        {:>10}", f.clusters);
        let _ = writeln!(out, "  jobs            {:>10}", f.jobs);
        let _ = writeln!(out, "  trials          {:>10}", f.trials);
        let interesting = [
            keys::SCHED_HINT_HITS,
            keys::SCHED_VOLUNTARY,
            keys::SCHED_FORCED,
            keys::INCIDENTAL_PMCS,
            keys::STORE_PROFILE_HITS,
            keys::STORE_PROFILE_MISSES,
            keys::STORE_RECORDS_DAMAGED,
            keys::STORE_RECORDS_HEALED,
            keys::WATCHDOG_FIRES,
            keys::RETRIES,
            keys::SUPERVISE_SPAWNS,
            keys::SUPERVISE_RESPAWNS,
            keys::SUPERVISE_CRASHES,
            keys::SUPERVISE_HEARTBEAT_MISSES,
            keys::SUPERVISE_GAVE_UP,
            keys::FLEET_JOINS,
            keys::FLEET_REJECTS,
            keys::FLEET_LEASES,
            keys::FLEET_EVICTIONS,
            keys::FLEET_REASSIGNED,
            keys::FLEET_DUPLICATES,
            keys::FINDINGS,
        ];
        let shown: Vec<(&str, u64)> = interesting
            .iter()
            .filter_map(|k| self.counters.get(*k).map(|v| (*k, *v)))
            .collect();
        if !shown.is_empty() {
            let _ = writeln!(out, "\ncounters:");
            for (k, v) in shown {
                let _ = writeln!(out, "  {k:<28} {v:>10}");
            }
        }
        if !self.worker_actions.is_empty() {
            let _ = writeln!(out, "\nsupervised workers:");
            for (action, n) in &self.worker_actions {
                let _ = writeln!(out, "  {action:<28} {n:>10}");
            }
        }
        if !self.fleet_actions.is_empty() {
            let _ = writeln!(out, "\nfleet workers:");
            for (action, n) in &self.fleet_actions {
                let _ = writeln!(out, "  {action:<28} {n:>10}");
            }
        }
        for (k, h) in &self.hists {
            let _ = writeln!(
                out,
                "\n{k}: n={} min={} mean={:.1} max={}",
                h.count,
                h.min,
                if h.count == 0 { 0.0 } else { h.sum as f64 / h.count as f64 },
                h.max
            );
        }
        let mismatches = self.verify();
        if mismatches.is_empty() {
            let _ = writeln!(out, "\nverification: OK (events agree with the run summary)");
        } else {
            let _ = writeln!(out, "\nverification: FAILED");
            for m in &mismatches {
                let _ = writeln!(out, "  {m}");
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Tracer;

    fn traced_run() -> Vec<String> {
        let (t, sink) = Tracer::memory();
        {
            let root = t.span("campaign");
            let _job = root.child("job");
            t.count(keys::PIPELINE_PROFILES, 10);
            t.count(keys::PIPELINE_SHARED_ACCESSES, 500);
            t.count(keys::PIPELINE_PMCS, 40);
            t.count(keys::CLUSTERS, 6);
            t.hist(keys::CLUSTER_SIZE, 3);
            t.hist(keys::CLUSTER_SIZE, 9);
            t.emit(&Event::Job {
                t: t.now_us(),
                job: 0,
                trials: 24,
                steps: 1000,
                findings: 1,
                attempts: 1,
                quarantined: false,
            });
            t.emit(&Event::Job {
                t: t.now_us(),
                job: 1,
                trials: 8,
                steps: 400,
                findings: 0,
                attempts: 3,
                quarantined: true,
            });
        }
        t.emit(&Event::Summary {
            t: t.now_us(),
            profiles: 10,
            shared_accesses: 500,
            pmcs: 40,
            clusters: 6,
            jobs: 1,
            trials: 32,
            steps: 1400,
            findings: 1,
            quarantined: 1,
        });
        sink.lines()
    }

    #[test]
    fn reconstructs_funnel_and_verifies_against_summary() {
        let lines = traced_run();
        let r = TraceReport::from_lines(lines.iter().map(String::as_str)).unwrap();
        assert_eq!(
            r.funnel(),
            Funnel {
                profiles: 10,
                shared_accesses: 500,
                pmcs: 40,
                clusters: 6,
                jobs: 1,
                trials: 32,
            }
        );
        assert_eq!(r.hists[keys::CLUSTER_SIZE].max, 9);
        assert_eq!(r.spans["campaign"].closed, 1);
        assert!(r.verify().is_empty(), "{:?}", r.verify());
        let rendered = r.render();
        assert!(rendered.contains("verification: OK"), "{rendered}");
    }

    #[test]
    fn detects_summary_disagreement() {
        let mut lines = traced_run();
        // Tamper with a job event: drop 8 trials.
        let idx = lines.iter().position(|l| l.contains("\"job\":1")).unwrap();
        lines[idx] = lines[idx].replace("\"trials\":8", "\"trials\":0");
        let r = TraceReport::from_lines(lines.iter().map(String::as_str)).unwrap();
        let mismatches = r.verify();
        assert!(mismatches.iter().any(|m| m.starts_with("trials:")), "{mismatches:?}");
        assert!(r.render().contains("verification: FAILED"));
    }

    #[test]
    fn missing_summary_is_a_verification_failure() {
        let mut lines = traced_run();
        lines.retain(|l| !l.contains("\"ev\":\"summary\""));
        let r = TraceReport::from_lines(lines.iter().map(String::as_str)).unwrap();
        assert_eq!(r.verify().len(), 1);
    }

    #[test]
    fn malformed_lines_fail_with_position() {
        let err = TraceReport::from_lines(["{\"t\":0,\"ev\":\"count\",\"key\":\"k\"}"]).unwrap_err();
        assert!(err.starts_with("line 1:"), "{err}");
        let err = TraceReport::from_lines(["", "garbage"]).unwrap_err();
        assert!(err.starts_with("line 2:"), "{err}");
    }

    fn worker_line(action: &str, worker: u64) -> String {
        Event::Worker {
            t: 0,
            worker,
            action: action.into(),
            detail: String::new(),
        }
        .to_json()
        .render()
    }

    #[test]
    fn supervision_events_verify_against_counters() {
        let mut lines = traced_run();
        let count = |key: &str, n: u64| {
            Event::Count { t: 0, key: key.into(), n }.to_json().render()
        };
        lines.insert(0, worker_line("spawn", 0));
        lines.insert(1, worker_line("spawn", 1));
        lines.insert(2, worker_line("restart", 1));
        lines.insert(3, worker_line("heartbeat-miss", 1));
        lines.insert(4, worker_line("exit", 0));
        lines.insert(5, worker_line("exit", 1));
        lines.insert(6, worker_line("exit", 1));
        lines.insert(7, count(keys::SUPERVISE_SPAWNS, 2));
        lines.insert(8, count(keys::SUPERVISE_RESPAWNS, 1));
        lines.insert(9, count(keys::SUPERVISE_HEARTBEAT_MISSES, 1));
        let r = TraceReport::from_lines(lines.iter().map(String::as_str)).unwrap();
        assert_eq!(r.worker_actions["spawn"], 2);
        assert!(r.verify().is_empty(), "{:?}", r.verify());
        assert!(r.render().contains("supervised workers:"));
    }

    #[test]
    fn supervision_mismatches_are_detected() {
        // A spawn event with no matching exit: the no-orphans check trips.
        let mut lines = traced_run();
        lines.insert(0, worker_line("spawn", 0));
        let r = TraceReport::from_lines(lines.iter().map(String::as_str)).unwrap();
        let mismatches = r.verify();
        assert!(
            mismatches.iter().any(|m| m.starts_with("worker exits:")),
            "{mismatches:?}"
        );
        assert!(
            mismatches.iter().any(|m| m.starts_with("worker spawns:")),
            "spawn counter missing: {mismatches:?}"
        );
    }

    fn fleet_line(action: &str, worker: u64) -> String {
        Event::Fleet {
            t: 0,
            worker,
            action: action.into(),
            detail: String::new(),
        }
        .to_json()
        .render()
    }

    #[test]
    fn fleet_events_verify_against_counters() {
        let mut lines = traced_run();
        let count = |key: &str, n: u64| {
            Event::Count { t: 0, key: key.into(), n }.to_json().render()
        };
        lines.insert(0, fleet_line("join", 0));
        lines.insert(1, fleet_line("join", 1));
        lines.insert(2, fleet_line("lease", 0));
        lines.insert(3, fleet_line("evict", 1));
        lines.insert(4, fleet_line("reassign", 1));
        lines.insert(5, fleet_line("reassign", 1));
        lines.insert(6, fleet_line("duplicate", 1));
        lines.insert(7, count(keys::FLEET_JOINS, 2));
        lines.insert(8, count(keys::FLEET_LEASES, 1));
        lines.insert(9, count(keys::FLEET_EVICTIONS, 1));
        lines.insert(10, count(keys::FLEET_REASSIGNED, 2));
        lines.insert(11, count(keys::FLEET_DUPLICATES, 1));
        let r = TraceReport::from_lines(lines.iter().map(String::as_str)).unwrap();
        assert_eq!(r.fleet_actions["reassign"], 2);
        assert!(r.verify().is_empty(), "{:?}", r.verify());
        assert!(r.render().contains("fleet workers:"));
    }

    #[test]
    fn fleet_mismatches_are_detected() {
        // An eviction event with no matching counter: the cross-check trips.
        let mut lines = traced_run();
        lines.insert(0, fleet_line("evict", 0));
        let r = TraceReport::from_lines(lines.iter().map(String::as_str)).unwrap();
        let mismatches = r.verify();
        assert!(
            mismatches.iter().any(|m| m.starts_with("fleet evictions:")),
            "{mismatches:?}"
        );
    }

    #[test]
    fn single_process_traces_skip_supervision_checks() {
        let lines = traced_run();
        let r = TraceReport::from_lines(lines.iter().map(String::as_str)).unwrap();
        assert!(r.worker_actions.is_empty());
        assert!(r.fleet_actions.is_empty());
        assert!(r.verify().is_empty());
        assert!(!r.render().contains("supervised workers:"));
        assert!(!r.render().contains("fleet workers:"));
    }

    #[test]
    fn duplicate_summary_rejected() {
        let mut lines = traced_run();
        let summary = lines.last().unwrap().clone();
        lines.push(summary);
        assert!(TraceReport::from_lines(lines.iter().map(String::as_str)).is_err());
    }
}
