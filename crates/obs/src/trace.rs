//! The tracer: hierarchical spans, counters/histograms, and event sinks.
//!
//! A [`Tracer`] is a cheap cloneable handle threaded through pipeline and
//! campaign configuration. The disabled tracer (the default) holds no
//! allocation at all — every emission method starts with an `is-None` check
//! and returns immediately, so instrumented hot paths cost one predictable
//! branch when tracing is off (the <5% bench-overhead budget).
//!
//! Enabled tracers write [`Event`]s to a [`Sink`]: [`JsonlSink`] appends
//! one JSON object per line to a file (the `hunt --trace-dir` path), and
//! [`MemorySink`] buffers lines for tests. Timestamps are monotonic
//! microseconds from the tracer's creation instant, so events from worker
//! threads interleave on one coherent clock.

use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::event::Event;

/// Well-known counter and histogram keys, grouped by pipeline stage.
///
/// Keys are plain strings in the event schema; these constants keep the
/// emission sites and the report reader agreeing on spelling.
pub mod keys {
    /// Sequential tests profiled successfully this run (store hits excluded).
    pub const PROFILES_OK: &str = "profile.ok";
    /// Sequential tests that failed to profile (panic / non-completion).
    pub const PROFILES_FAILED: &str = "profile.failed";
    /// Accesses kept by the `SharedAccessFilter` (potentially shared).
    pub const ACCESSES_KEPT: &str = "profile.accesses_kept";
    /// Accesses dropped by the stack filter.
    pub const ACCESSES_DROPPED: &str = "profile.accesses_dropped";
    /// Profiles entering stage 2 (cached + fresh) — funnel stage 1 output.
    pub const PIPELINE_PROFILES: &str = "pipeline.profiles";
    /// Shared accesses entering stage 2 — funnel input to identification.
    pub const PIPELINE_SHARED_ACCESSES: &str = "pipeline.shared_accesses";
    /// PMCs identified — funnel stage 2 output.
    pub const PIPELINE_PMCS: &str = "pipeline.pmcs";
    /// Read accesses indexed during identification.
    pub const PMC_READS_INDEXED: &str = "pmc.reads_indexed";
    /// Clusters induced by the selected strategy — funnel stage 3.
    pub const CLUSTERS: &str = "select.clusters";
    /// Exemplar PMCs selected for testing.
    pub const EXEMPLARS: &str = "select.exemplars";
    /// Histogram: members per cluster.
    pub const CLUSTER_SIZE: &str = "select.cluster_size";
    /// Concurrent trials executed.
    pub const TRIALS: &str = "campaign.trials";
    /// Engine steps consumed by campaign trials.
    pub const TRIAL_STEPS: &str = "campaign.steps";
    /// Jobs that completed with an outcome.
    pub const JOBS_COMPLETED: &str = "campaign.jobs_completed";
    /// Jobs quarantined after exhausting their retry budget.
    pub const JOBS_QUARANTINED: &str = "campaign.jobs_quarantined";
    /// Retry attempts beyond each job's first.
    pub const RETRIES: &str = "campaign.retries";
    /// Watchdog overruns observed.
    pub const WATCHDOG_FIRES: &str = "watchdog.fires";
    /// Voluntary preemptions granted by a scheduler.
    pub const SCHED_VOLUNTARY: &str = "sched.voluntary_preempts";
    /// Liveness-forced switches.
    pub const SCHED_FORCED: &str = "sched.forced_switches";
    /// Accesses matching a scheduling hint (flag, PMC range, or SKI site).
    pub const SCHED_HINT_HITS: &str = "sched.hint_hits";
    /// Next-thread picks.
    pub const SCHED_PICKS: &str = "sched.picks";
    /// Incidental PMCs added to the watch set mid-campaign.
    pub const INCIDENTAL_PMCS: &str = "sched.incidental_pmcs";
    /// Profiles served from the persistent store.
    pub const STORE_PROFILE_HITS: &str = "store.profile_hits";
    /// Profile lookups that missed the store.
    pub const STORE_PROFILE_MISSES: &str = "store.profile_misses";
    /// Store records found corrupt, truncated, or missing (quarantined).
    pub const STORE_RECORDS_DAMAGED: &str = "store.records_damaged";
    /// Damaged store records recomputed and rewritten.
    pub const STORE_RECORDS_HEALED: &str = "store.records_healed";
    /// Worker processes spawned by the campaign supervisor (initial spawns).
    pub const SUPERVISE_SPAWNS: &str = "supervise.spawns";
    /// Worker processes respawned after a death.
    pub const SUPERVISE_RESPAWNS: &str = "supervise.respawns";
    /// Worker deaths treated as crashes.
    pub const SUPERVISE_CRASHES: &str = "supervise.crashes";
    /// Workers killed for heartbeat silence.
    pub const SUPERVISE_HEARTBEAT_MISSES: &str = "supervise.heartbeat_misses";
    /// Shards abandoned by the crash-loop circuit breaker.
    pub const SUPERVISE_GAVE_UP: &str = "supervise.gave_up";
    /// Fleet workers admitted after a successful handshake.
    pub const FLEET_JOINS: &str = "fleet.joins";
    /// Fleet handshakes refused (version/config mismatch, draining).
    pub const FLEET_REJECTS: &str = "fleet.rejects";
    /// Non-empty job leases granted by the fleet coordinator.
    pub const FLEET_LEASES: &str = "fleet.leases";
    /// Fleet connections evicted (heartbeat timeout, unclean disconnect,
    /// protocol violation).
    pub const FLEET_EVICTIONS: &str = "fleet.evictions";
    /// Jobs returned to the fleet's pending pool after a lease expired or
    /// its holder was evicted (one increment per job).
    pub const FLEET_REASSIGNED: &str = "fleet.reassigned";
    /// Late results dropped by the first-`done`-wins merge rule.
    pub const FLEET_DUPLICATES: &str = "fleet.duplicates";
    /// Detector findings (pre-dedup), all kinds.
    pub const FINDINGS: &str = "detect.findings";
    /// Three-thread trials executed.
    pub const MULTI_TRIALS: &str = "multi.trials";
}

/// Destination for rendered trace lines. Implementations must tolerate
/// concurrent emission from worker threads.
pub trait Sink: Send + Sync {
    /// Appends one rendered JSON line (without trailing newline).
    fn emit(&self, line: &str);
    /// Flushes buffered lines to their destination.
    fn flush(&self) {}
}

/// A sink buffering lines in memory, for tests and in-process reporting.
#[derive(Default)]
pub struct MemorySink {
    lines: Mutex<Vec<String>>,
}

impl MemorySink {
    /// Returns a copy of everything emitted so far.
    pub fn lines(&self) -> Vec<String> {
        self.lines.lock().expect("memory sink poisoned").clone()
    }
}

impl Sink for MemorySink {
    fn emit(&self, line: &str) {
        self.lines
            .lock()
            .expect("memory sink poisoned")
            .push(line.to_owned());
    }
}

/// An append-only JSONL file sink.
///
/// I/O failures (disk full, revoked permissions) must not abort the traced
/// run: the first failure prints one stderr warning and permanently
/// disables the sink — tracing degrades, the hunt continues.
pub struct JsonlSink {
    writer: Mutex<BufWriter<File>>,
    path: std::path::PathBuf,
    failed: AtomicBool,
}

impl JsonlSink {
    /// Opens `path` for appending, creating it (and missing parent
    /// directories) as needed.
    pub fn append(path: &Path) -> std::io::Result<Self> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(JsonlSink {
            writer: Mutex::new(BufWriter::new(file)),
            path: path.to_path_buf(),
            failed: AtomicBool::new(false),
        })
    }

    /// True once a write failed and the sink disabled itself.
    pub fn failed(&self) -> bool {
        self.failed.load(Ordering::Relaxed)
    }

    fn disable(&self, what: &str, e: &std::io::Error) {
        if !self.failed.swap(true, Ordering::Relaxed) {
            eprintln!(
                "[trace] warning: {what} {} failed ({e}); tracing disabled for the rest of the run",
                self.path.display()
            );
        }
    }
}

impl Sink for JsonlSink {
    fn emit(&self, line: &str) {
        if self.failed() {
            return;
        }
        let mut w = self.writer.lock().expect("jsonl sink poisoned");
        if let Err(e) = w
            .write_all(line.as_bytes())
            .and_then(|()| w.write_all(b"\n"))
        {
            self.disable("writing", &e);
        }
    }

    fn flush(&self) {
        if self.failed() {
            return;
        }
        if let Err(e) = self.writer.lock().expect("jsonl sink poisoned").flush() {
            self.disable("flushing", &e);
        }
    }
}

struct Inner {
    origin: Instant,
    next_span: AtomicU64,
    sink: Arc<dyn Sink>,
}

/// A cloneable tracing handle; see the module docs.
#[derive(Clone, Default)]
pub struct Tracer {
    inner: Option<Arc<Inner>>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(if self.inner.is_some() {
            "Tracer(enabled)"
        } else {
            "Tracer(disabled)"
        })
    }
}

impl Tracer {
    /// The no-op tracer: every emission is a single branch.
    pub fn disabled() -> Self {
        Tracer { inner: None }
    }

    /// A tracer writing to an arbitrary sink.
    pub fn with_sink(sink: Arc<dyn Sink>) -> Self {
        Tracer {
            inner: Some(Arc::new(Inner {
                origin: Instant::now(),
                next_span: AtomicU64::new(1),
                sink,
            })),
        }
    }

    /// A tracer appending JSONL events to `path`.
    pub fn jsonl(path: &Path) -> std::io::Result<Self> {
        Ok(Tracer::with_sink(Arc::new(JsonlSink::append(path)?)))
    }

    /// A tracer buffering into a [`MemorySink`], returned alongside it.
    pub fn memory() -> (Self, Arc<MemorySink>) {
        let sink = Arc::new(MemorySink::default());
        (Tracer::with_sink(sink.clone()), sink)
    }

    /// True when events are actually recorded.
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Microseconds since tracer creation (0 when disabled).
    pub fn now_us(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |i| i.origin.elapsed().as_micros() as u64)
    }

    /// Emits a pre-built event.
    pub fn emit(&self, event: &Event) {
        if let Some(inner) = &self.inner {
            inner.sink.emit(&event.to_json().render());
        }
    }

    /// Increments counter `key` by `n`. No event is emitted for `n == 0`,
    /// so callers can pass computed deltas unconditionally.
    pub fn count(&self, key: &str, n: u64) {
        if let Some(inner) = &self.inner {
            if n > 0 {
                let ev = Event::Count {
                    t: inner.origin.elapsed().as_micros() as u64,
                    key: key.to_owned(),
                    n,
                };
                inner.sink.emit(&ev.to_json().render());
            }
        }
    }

    /// Records one histogram observation for `key`.
    pub fn hist(&self, key: &str, v: u64) {
        if let Some(inner) = &self.inner {
            let ev = Event::Hist {
                t: inner.origin.elapsed().as_micros() as u64,
                key: key.to_owned(),
                v,
            };
            inner.sink.emit(&ev.to_json().render());
        }
    }

    /// Opens a root span. Dropping the returned guard closes it.
    pub fn span(&self, name: &'static str) -> Span {
        self.span_under(name, 0)
    }

    /// Opens a span under an explicit parent id (0 = root). This is how
    /// worker threads attach their spans to a driver-side parent without
    /// sharing the guard itself.
    pub fn span_under(&self, name: &'static str, parent: u64) -> Span {
        let Some(inner) = &self.inner else {
            return Span {
                tracer: Tracer::disabled(),
                id: 0,
                name,
                start_us: 0,
            };
        };
        let id = inner.next_span.fetch_add(1, Ordering::Relaxed);
        let start_us = inner.origin.elapsed().as_micros() as u64;
        let ev = Event::SpanStart {
            t: start_us,
            span: id,
            parent,
            name: name.to_owned(),
        };
        inner.sink.emit(&ev.to_json().render());
        Span {
            tracer: self.clone(),
            id,
            name,
            start_us,
        }
    }

    /// Flushes the sink.
    pub fn flush(&self) {
        if let Some(inner) = &self.inner {
            inner.sink.flush();
        }
    }
}

/// An open span; closes (emits `span_end`) on drop.
pub struct Span {
    tracer: Tracer,
    id: u64,
    name: &'static str,
    start_us: u64,
}

impl Span {
    /// This span's id, for parenting spans across threads.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Opens a child span.
    pub fn child(&self, name: &'static str) -> Span {
        self.tracer.span_under(name, self.id)
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(inner) = &self.tracer.inner {
            let t = inner.origin.elapsed().as_micros() as u64;
            let ev = Event::SpanEnd {
                t,
                span: self.id,
                name: self.name.to_owned(),
                dur: t.saturating_sub(self.start_us),
            };
            inner.sink.emit(&ev.to_json().render());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_emits_nothing_and_allocates_nothing() {
        let t = Tracer::disabled();
        assert!(!t.enabled());
        t.count(keys::TRIALS, 5);
        t.hist(keys::CLUSTER_SIZE, 1);
        let s = t.span("campaign");
        assert_eq!(s.id(), 0);
        drop(s.child("job"));
        t.flush();
    }

    #[test]
    fn memory_sink_captures_parseable_events_in_order() {
        let (t, sink) = Tracer::memory();
        assert!(t.enabled());
        {
            let root = t.span("campaign");
            let child = root.child("job");
            t.count(keys::TRIALS, 3);
            t.count(keys::TRIALS, 0); // zero increments are suppressed
            t.hist(keys::CLUSTER_SIZE, 7);
            drop(child);
        }
        let lines = sink.lines();
        let events: Vec<Event> = lines
            .iter()
            .map(|l| Event::parse_line(l).expect("valid line"))
            .collect();
        assert_eq!(events.len(), 6, "{lines:?}");
        match (&events[0], &events[1]) {
            (
                Event::SpanStart { span: root, parent: 0, name: n0, .. },
                Event::SpanStart { span: child, parent, name: n1, .. },
            ) => {
                assert_eq!(n0, "campaign");
                assert_eq!(n1, "job");
                assert_eq!(parent, root);
                assert_ne!(root, child);
            }
            other => panic!("unexpected head: {other:?}"),
        }
        assert!(matches!(&events[2], Event::Count { key, n: 3, .. } if key == keys::TRIALS));
        assert!(matches!(&events[3], Event::Hist { key, v: 7, .. } if key == keys::CLUSTER_SIZE));
        // Spans close inner-first.
        assert!(matches!(&events[4], Event::SpanEnd { name, .. } if name == "job"));
        assert!(matches!(&events[5], Event::SpanEnd { name, .. } if name == "campaign"));
    }

    #[test]
    fn clones_share_one_clock_and_span_space() {
        let (t, sink) = Tracer::memory();
        let t2 = t.clone();
        let a = t.span("a");
        let b = t2.span("b");
        assert_ne!(a.id(), b.id(), "span ids unique across clones");
        drop((a, b));
        assert_eq!(sink.lines().len(), 4);
    }

    /// A sink whose disk fills up degrades: one warning, then silence —
    /// never a panic or an error surfaced to the traced run.
    #[test]
    fn jsonl_sink_disables_itself_on_write_failure() {
        // /dev/full accepts opens but fails every flush with ENOSPC.
        let full = Path::new("/dev/full");
        if !full.exists() {
            return; // non-Linux fallback: nothing to exercise
        }
        let file = OpenOptions::new().append(true).open(full).expect("open /dev/full");
        let sink = JsonlSink {
            writer: Mutex::new(BufWriter::with_capacity(8, file)),
            path: full.to_path_buf(),
            failed: AtomicBool::new(false),
        };
        assert!(!sink.failed());
        // Small buffer forces the underlying write on the first long line.
        sink.emit("{\"t\":0,\"ev\":\"count\",\"key\":\"k\",\"n\":1}");
        sink.flush();
        assert!(sink.failed(), "ENOSPC must latch the failed flag");
        // Subsequent emits are no-ops, not panics.
        sink.emit("more");
        sink.flush();
    }

    #[test]
    fn jsonl_sink_appends_lines() {
        let dir = std::env::temp_dir().join(format!("sb-obs-jsonl-{}", std::process::id()));
        let path = dir.join("trace.jsonl");
        let t = Tracer::jsonl(&path).expect("open");
        t.count(keys::TRIALS, 1);
        t.count(keys::TRIALS, 2);
        t.flush();
        let text = std::fs::read_to_string(&path).expect("read");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for l in lines {
            Event::parse_line(l).expect("valid");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
