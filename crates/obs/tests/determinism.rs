//! Scheduler determinism through the decision-observer hook (§4.4): the
//! same seed and the same PMC hint must produce bit-identical decision
//! sequences. A scheduler whose decisions drift under a fixed seed breaks
//! both replay (recorded schedules stop reproducing findings) and the
//! trace-report invariant that re-running a campaign re-emits the same
//! scheduler counters.

use std::sync::Arc;

use sb_obs::RecordingObserver;
use sb_vmm::access::{Access, AccessKind};
use sb_vmm::sched::{
    DecisionObserver, HintAccess, RandomSched, SchedDecision, Scheduler, SkiSched, SnowboardSched,
};
use sb_vmm::site;

/// A deterministic synthetic workload: two threads taking turns over a
/// small set of sites and addresses, with periodic forced switches. The
/// stream itself is seed-independent so any divergence between two runs
/// comes from the scheduler's internal RNG alone.
fn drive(sched: &mut dyn Scheduler) {
    let sites = [site!("det:alloc"), site!("det:publish"), site!("det:lookup")];
    let mut cur = 0usize;
    for i in 0..400u64 {
        let a = Access {
            seq: i,
            thread: cur,
            site: sites[(i % 3) as usize],
            kind: if i % 2 == 0 { AccessKind::Write } else { AccessKind::Read },
            addr: 0x4000 + (i % 7) * 8,
            len: 8,
            value: i,
            atomic: false,
            locks: Vec::new(),
            rcu_depth: 0,
        };
        if sched.after_access(cur, &a) {
            cur = sched.pick(cur, &[0, 1]);
        }
        if i % 37 == 36 {
            sched.on_forced_switch(cur);
            cur = sched.pick(cur, &[0, 1]);
        }
    }
}

fn hint() -> HintAccess {
    HintAccess {
        site: site!("det:publish"),
        kind: AccessKind::Write,
        addr: 0x4000,
        len: 8,
    }
}

/// Runs `make()`'s scheduler over the synthetic workload and returns the
/// decision sequence seen by the observer.
fn decisions_of(make: impl Fn() -> Box<dyn Scheduler>) -> Vec<SchedDecision> {
    let rec = Arc::new(RecordingObserver::new());
    let mut sched = make();
    sched.set_observer(Some(rec.clone() as Arc<dyn DecisionObserver>));
    drive(sched.as_mut());
    rec.take()
}

#[test]
fn random_sched_is_deterministic_per_seed() {
    let run = |seed: u64| decisions_of(|| Box::new(RandomSched::new(seed, 0.1)));
    let a = run(7);
    assert!(!a.is_empty(), "workload must provoke decisions");
    assert_eq!(a, run(7), "same seed must replay bit-identically");
    assert_ne!(a, run(8), "distinct seeds should explore differently");
}

#[test]
fn ski_sched_is_deterministic_per_seed_and_hint() {
    let run = |seed: u64| {
        decisions_of(|| {
            let mut s = SkiSched::new(seed, [hint().site]);
            s.begin_trial(seed);
            Box::new(s)
        })
    };
    let a = run(11);
    assert!(!a.is_empty(), "workload must provoke decisions");
    assert_eq!(a, run(11), "same seed + same hint must replay bit-identically");
}

#[test]
fn snowboard_sched_is_deterministic_per_seed_and_hint() {
    let run = |seed: u64| {
        decisions_of(|| {
            let mut s = SnowboardSched::new(seed, [hint()]);
            s.begin_trial(seed);
            Box::new(s)
        })
    };
    let a = run(21);
    assert!(!a.is_empty(), "workload must provoke decisions");
    assert_eq!(a, run(21), "same seed + same hint must replay bit-identically");
    // The PMC hint is on the workload's write path, so the guided scheduler
    // must report hint hits — not only random preemptions.
    assert!(
        a.iter().any(|d| matches!(d, SchedDecision::HintHit { .. })),
        "expected hint hits in {a:?}"
    );
}

#[test]
fn observer_installation_does_not_change_decisions() {
    // Recording must be pure observation: the picks made with an observer
    // installed must match the unobserved run's picks. We re-run without an
    // observer and compare the threads each run lands on.
    let lands = |observe: bool| {
        let mut sched = SnowboardSched::new(5, [hint()]);
        if observe {
            sched.set_observer(Some(Arc::new(RecordingObserver::new()) as Arc<dyn DecisionObserver>));
        }
        sched.begin_trial(5);
        let mut landed = Vec::new();
        let sites = [site!("det:alloc"), site!("det:publish"), site!("det:lookup")];
        let mut cur = 0usize;
        for i in 0..200u64 {
            let a = Access {
                seq: i,
                thread: cur,
                site: sites[(i % 3) as usize],
                kind: if i % 2 == 0 { AccessKind::Write } else { AccessKind::Read },
                addr: 0x4000 + (i % 7) * 8,
                len: 8,
                value: i,
                atomic: false,
                locks: Vec::new(),
                rcu_depth: 0,
            };
            if sched.after_access(cur, &a) {
                cur = sched.pick(cur, &[0, 1]);
                landed.push(cur);
            }
        }
        landed
    };
    assert_eq!(lands(true), lands(false));
}
