//! Robustness properties of the simulated kernel: arbitrary well-formed
//! programs — sequential or concurrent, any schedule — must never wedge the
//! engine, corrupt kernel invariants, or panic outside the planted bugs'
//! documented trigger conditions.

use proptest::prelude::*;

use sb_kernel::{boot, BootedKernel, KernelConfig, Program};
use sb_vmm::exec::Outcome;
use sb_vmm::sched::{FreeRun, RandomSched};
use sb_vmm::Executor;

use std::sync::OnceLock;

fn booted_patched() -> &'static BootedKernel {
    static K: OnceLock<BootedKernel> = OnceLock::new();
    K.get_or_init(|| boot(KernelConfig::v5_12_rc3().patched()))
}

fn booted_rc() -> &'static BootedKernel {
    static K: OnceLock<BootedKernel> = OnceLock::new();
    K.get_or_init(|| boot(KernelConfig::v5_12_rc3()))
}

/// Generates a well-formed random program via the fuzzer's generator.
fn arb_program() -> impl Strategy<Value = Program> {
    (0u64..10_000, 1usize..7).prop_map(|(seed, len)| {
        let mut g = sb_fuzz::ProgGen::new(seed);
        g.gen_program(len)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Sequential execution of any generated program completes cleanly.
    #[test]
    fn sequential_programs_always_complete(prog in arb_program()) {
        let booted = booted_rc();
        let mut exec = Executor::new(1);
        let r = exec.run(
            booted.snapshot.clone(),
            vec![booted.kernel.process_job(prog.clone())],
            &mut FreeRun,
        );
        prop_assert_eq!(&r.report.outcome, &Outcome::Completed, "{}", prog);
        prop_assert!(r.report.thread_faults[0].is_none());
    }

    /// Concurrent execution of any two generated programs on the *patched*
    /// kernel never panics, deadlocks, or livelocks under any random
    /// schedule: all planted bugs are gone and the base kernel model is
    /// schedule-robust.
    #[test]
    fn patched_kernel_is_schedule_robust(
        a in arb_program(),
        b in arb_program(),
        seed: u64,
        p in 0.0f64..0.6,
    ) {
        let booted = booted_patched();
        let mut exec = Executor::new(2);
        let mut sched = RandomSched::new(seed, p);
        let r = exec.run(
            booted.snapshot.clone(),
            vec![
                booted.kernel.process_job(a.clone()),
                booted.kernel.process_job(b.clone()),
            ],
            &mut sched,
        );
        prop_assert_eq!(
            &r.report.outcome, &Outcome::Completed,
            "outcome {:?} console {:?}\nA:\n{}\nB:\n{}",
            r.report.outcome, r.report.console, a, b
        );
    }

    /// On the buggy kernel, concurrent runs may panic (that's the point),
    /// but must never deadlock or livelock — the simulated kernel's lock
    /// ordering is sound and every loop is bounded.
    #[test]
    fn buggy_kernel_never_hangs(
        a in arb_program(),
        b in arb_program(),
        seed: u64,
    ) {
        let booted = booted_rc();
        let mut exec = Executor::new(2);
        let mut sched = RandomSched::new(seed, 0.3);
        let r = exec.run(
            booted.snapshot.clone(),
            vec![
                booted.kernel.process_job(a.clone()),
                booted.kernel.process_job(b.clone()),
            ],
            &mut sched,
        );
        prop_assert!(
            !matches!(r.report.outcome, Outcome::Deadlock | Outcome::Livelock),
            "outcome {:?}\nA:\n{}\nB:\n{}",
            r.report.outcome, a, b
        );
    }

    /// Guest memory never leaks across a program: live allocations return
    /// to the boot-time level after every completed sequential run (the
    /// kernel model frees what it transiently allocates, and long-lived
    /// objects are accounted).
    #[test]
    fn no_unbounded_allocation_growth(prog in arb_program()) {
        let booted = booted_rc();
        let mut exec = Executor::new(1);
        let before = booted.snapshot.live_allocations();
        let r = exec.run(
            booted.snapshot.clone(),
            vec![booted.kernel.process_job(prog.clone())],
            &mut FreeRun,
        );
        prop_assert!(r.report.outcome.is_completed());
        // Long-lived kernel objects (sockets, tunnels, msg queues, configfs
        // items, snd elems) legitimately persist; bound the growth rather
        // than requiring exact balance.
        let after = r.mem.live_allocations();
        prop_assert!(
            after <= before + 3 * prog.len() as u64 + 4,
            "allocations grew {} -> {} for\n{}",
            before, after, prog
        );
    }
}
