//! Exhaustive tests of the syscall dispatch surface: every syscall's happy
//! path, its error paths (bad descriptors, wrong descriptor kinds, invalid
//! arguments), and the kernel ABI conventions (errno encoding, fd
//! numbering, resource lifetimes).

use std::sync::{Arc, Mutex};

use sb_kernel::prog::{Domain, IoctlCmd, MsgCmd, Path, Res, SockOpt, Syscall};
use sb_kernel::{boot, BootedKernel, KernelConfig, Program, EBADF, EINVAL, ENOENT};
use sb_vmm::sched::FreeRun;
use sb_vmm::Executor;

/// Runs a program sequentially, returning each call's result.
fn run(booted: &BootedKernel, prog: Program) -> Vec<u64> {
    let mut exec = Executor::new(1);
    let out = Arc::new(Mutex::new(Vec::new()));
    let r = exec.run(
        booted.snapshot.clone(),
        vec![booted.kernel.process_job_with_results(prog, Arc::clone(&out))],
        &mut FreeRun,
    );
    assert!(
        r.report.outcome.is_completed(),
        "{:?} {:?}",
        r.report.outcome,
        r.report.console
    );
    let v = out.lock().unwrap().clone();
    v
}

fn rc() -> BootedKernel {
    boot(KernelConfig::v5_12_rc3())
}

#[test]
fn socket_returns_sequential_fds() {
    let b = rc();
    let rets = run(
        &b,
        Program::new(vec![
            Syscall::Socket { domain: Domain::Inet },
            Syscall::Socket { domain: Domain::Packet },
            Syscall::Socket { domain: Domain::RawV6 },
            Syscall::Socket { domain: Domain::L2tp },
        ]),
    );
    assert_eq!(rets, vec![0, 1, 2, 3]);
}

#[test]
fn connect_on_wrong_and_dangling_descriptors() {
    let b = rc();
    let rets = run(
        &b,
        Program::new(vec![
            Syscall::Open { path: Path::Tty },
            // Connect on a TTY fd: accepted by dispatch as a non-socket, so
            // EBADF is not raised for Socket-kind mismatch here — the kernel
            // returns EBADF only for non-descriptors.
            Syscall::Msgget { key: 1 },
            // Connect referencing the msgget result (an id, not an fd).
            Syscall::Connect { sock: Res(1), tunnel_id: 0 },
        ]),
    );
    assert_eq!(rets[2], EBADF, "msq ids are not descriptors");
}

#[test]
fn sendmsg_per_domain_behaviors() {
    let b = rc();
    let rets = run(
        &b,
        Program::new(vec![
            Syscall::Socket { domain: Domain::Inet },
            Syscall::Sendmsg { sock: Res(0), len: 3 }, // tx counter 1
            Syscall::Sendmsg { sock: Res(0), len: 3 }, // tx counter 2
            Syscall::Socket { domain: Domain::L2tp },
            Syscall::Sendmsg { sock: Res(3), len: 3 }, // unconnected: EINVAL
        ]),
    );
    assert_eq!(rets[1], 1);
    assert_eq!(rets[2], 2);
    assert_eq!(rets[4], EINVAL);
}

#[test]
fn setsockopt_rejects_mismatched_options() {
    let b = rc();
    let rets = run(
        &b,
        Program::new(vec![
            Syscall::Socket { domain: Domain::Inet },
            // Packet fanout on an inet socket.
            Syscall::Setsockopt { sock: Res(0), opt: SockOpt::PacketFanout, val: 0 },
            Syscall::Socket { domain: Domain::Packet },
            // Congestion control on a packet socket.
            Syscall::Setsockopt { sock: Res(2), opt: SockOpt::TcpCongestion, val: 0 },
            // And the matching combinations succeed.
            Syscall::Setsockopt { sock: Res(0), opt: SockOpt::TcpCongestion, val: 1 },
            Syscall::Setsockopt { sock: Res(2), opt: SockOpt::PacketFanout, val: 0 },
        ]),
    );
    assert_eq!(rets[1], EINVAL);
    assert_eq!(rets[3], EINVAL);
    assert_eq!(rets[4], 0);
    assert_eq!(rets[5], 0);
}

#[test]
fn ioctl_requires_the_right_descriptor_kind() {
    let b = rc();
    let rets = run(
        &b,
        Program::new(vec![
            Syscall::Open { path: Path::Ext4File(0) },  // 0
            Syscall::Open { path: Path::BlockDev },     // 1
            Syscall::Open { path: Path::Tty },          // 2
            Syscall::Open { path: Path::SndCtl },       // 3
            Syscall::Socket { domain: Domain::Packet }, // 4
            // Block ioctls on a file fd.
            Syscall::Ioctl { fd: Res(0), cmd: IoctlCmd::BlkBszSet, arg: 1 },
            // Net ioctls on a file fd.
            Syscall::Ioctl { fd: Res(0), cmd: IoctlCmd::SiocSifHwAddr, arg: 1 },
            // Ext4 swap-boot on the block device.
            Syscall::Ioctl { fd: Res(1), cmd: IoctlCmd::Ext4SwapBoot, arg: 0 },
            // TTY config on the sound device.
            Syscall::Ioctl { fd: Res(3), cmd: IoctlCmd::TiocSerConfig, arg: 0 },
            // The right pairings all succeed.
            Syscall::Ioctl { fd: Res(1), cmd: IoctlCmd::BlkBszSet, arg: 1 },
            Syscall::Ioctl { fd: Res(4), cmd: IoctlCmd::SiocSifHwAddr, arg: 1 },
            Syscall::Ioctl { fd: Res(0), cmd: IoctlCmd::Ext4SwapBoot, arg: 0 },
            Syscall::Ioctl { fd: Res(2), cmd: IoctlCmd::TiocSerConfig, arg: 0 },
            Syscall::Ioctl { fd: Res(3), cmd: IoctlCmd::SndCtlElemAdd, arg: 0 },
        ]),
    );
    assert_eq!(&rets[5..9], &[EBADF, EBADF, EBADF, EBADF]);
    assert_eq!(&rets[9..14], &[0, 0, 0, 0, 0]);
}

#[test]
fn close_invalidates_descriptors() {
    let b = rc();
    let rets = run(
        &b,
        Program::new(vec![
            Syscall::Open { path: Path::Tty },
            Syscall::Close { fd: Res(0) },
            // Second close of the same fd: EBADF.
            Syscall::Close { fd: Res(0) },
            // Use after close: EBADF.
            Syscall::Read { fd: Res(0), off: 0 },
        ]),
    );
    assert_eq!(rets[1], 0);
    assert_eq!(rets[2], EBADF);
    assert_eq!(rets[3], EBADF);
}

#[test]
fn read_write_fadvise_on_files_and_devices() {
    let b = rc();
    let rets = run(
        &b,
        Program::new(vec![
            Syscall::Open { path: Path::Ext4File(2) },
            Syscall::Write { fd: Res(0), off: 5, val: 0xAB },
            Syscall::Read { fd: Res(0), off: 5 },
            Syscall::Open { path: Path::BlockDev },
            Syscall::Write { fd: Res(3), off: 2, val: 0x11 },
            Syscall::Read { fd: Res(3), off: 2 },
            Syscall::Fadvise { fd: Res(0) },
            Syscall::Fadvise { fd: Res(3) },
            // fadvise on a socket: EINVAL.
            Syscall::Socket { domain: Domain::Inet },
            Syscall::Fadvise { fd: Res(8) },
        ]),
    );
    assert_eq!(rets[2], 0xAB, "file read returns the written byte");
    assert_eq!(rets[9], EINVAL);
}

#[test]
fn msg_queue_lifecycle_and_errors() {
    let b = rc();
    let rets = run(
        &b,
        Program::new(vec![
            Syscall::Msgget { key: 5 },
            Syscall::Msgctl { id: Res(0), cmd: MsgCmd::Stat },
            Syscall::Msgctl { id: Res(0), cmd: MsgCmd::Rmid },
            // Stat after removal: ENOENT.
            Syscall::Msgctl { id: Res(0), cmd: MsgCmd::Rmid },
        ]),
    );
    assert!(rets[0] > 0, "msgget returns the queue id");
    assert_eq!(rets[1], 0, "fresh queue has no messages");
    assert_eq!(rets[2], 0);
    assert_eq!(rets[3], ENOENT);
}

#[test]
fn configfs_open_of_absent_item_is_enoent() {
    let b = rc();
    let rets = run(
        &b,
        Program::new(vec![
            Syscall::Open { path: Path::Configfs(2) },
            Syscall::Mkdir { item: 2 },
            Syscall::Open { path: Path::Configfs(2) },
            Syscall::Rmdir { item: 2 },
        ]),
    );
    assert_eq!(rets[0], ENOENT);
    assert_eq!(rets[1], 0);
    // The successful open returns an fd (index 1 after the failed open
    // consumed no slot... the failed open returns ENOENT, not an fd).
    assert!(rets[2] < 64, "successful open returns an fd, got {:#x}", rets[2]);
    assert_eq!(rets[3], 0);
}

#[test]
fn getsockname_and_mac_io_round_trip() {
    let b = boot(KernelConfig::v5_3_10());
    let rets = run(
        &b,
        Program::new(vec![
            Syscall::Socket { domain: Domain::Packet },
            Syscall::Getsockname { sock: Res(0) }, // boot MAC
            Syscall::Ioctl { fd: Res(0), cmd: IoctlCmd::EthtoolSMac, arg: 9 },
            Syscall::Getsockname { sock: Res(0) }, // new MAC
        ]),
    );
    assert_ne!(rets[1], rets[3], "MAC change must be visible to getname");
    // Boot MAC is QEMU's default 52:54:00:12:34:56 little-endian packed.
    assert_eq!(rets[1], 0x5634_1200_5452);
}

#[test]
fn mount_is_idempotent_and_heavy() {
    let b = rc();
    let rets = run(
        &b,
        Program::new(vec![Syscall::Mount, Syscall::Mount]),
    );
    assert_eq!(rets[0], rets[1], "mount result is stable");
    assert_eq!(rets[0], 5, "all five inodes live");
}

#[test]
fn mtu_ioctl_bounds_sendmsg_payload() {
    let b = boot(KernelConfig::v5_3_10());
    let rets = run(
        &b,
        Program::new(vec![
            Syscall::Socket { domain: Domain::RawV6 },
            Syscall::Ioctl { fd: Res(0), cmd: IoctlCmd::SiocSifMtu, arg: 0 }, // mtu 576
            Syscall::Sendmsg { sock: Res(0), len: 15 },
            Syscall::Ioctl { fd: Res(0), cmd: IoctlCmd::SiocSifMtu, arg: 7 }, // mtu 1472
            Syscall::Sendmsg { sock: Res(0), len: 15 },
        ]),
    );
    assert!(rets[2] <= rets[4], "larger MTU permits a larger payload");
}

#[test]
fn every_syscall_has_a_total_dispatch() {
    // Fuzzed sanity at the dispatch level: all 16 call kinds with nonsense
    // resource references return errno rather than faulting.
    let b = rc();
    let all_with_bad_refs = Program::new(vec![
        Syscall::Msgget { key: 0 },
        Syscall::Connect { sock: Res(0), tunnel_id: 0 },
        Syscall::Sendmsg { sock: Res(0), len: 0 },
        Syscall::Setsockopt { sock: Res(0), opt: SockOpt::PacketFanout, val: 0 },
        Syscall::Getsockname { sock: Res(0) },
        Syscall::Ioctl { fd: Res(0), cmd: IoctlCmd::BlkRaSet, arg: 0 },
        Syscall::Close { fd: Res(0) },
        Syscall::Read { fd: Res(0), off: 0 },
        Syscall::Write { fd: Res(0), off: 0, val: 0 },
        Syscall::Fadvise { fd: Res(0) },
        Syscall::Msgctl { id: Res(0), cmd: MsgCmd::Stat },
        Syscall::Mkdir { item: 9 },
        Syscall::Rmdir { item: 9 },
        Syscall::Mount,
    ]);
    let rets = run(&b, all_with_bad_refs);
    assert_eq!(rets.len(), 14, "every call returned");
}

#[test]
fn results_are_identical_across_kernel_versions_for_neutral_programs() {
    // Programs that avoid the version-gated code paths behave identically
    // in both kernels — the gating only changes synchronization, not
    // semantics.
    let prog = Program::new(vec![
        Syscall::Socket { domain: Domain::Inet },
        Syscall::Setsockopt { sock: Res(0), opt: SockOpt::TcpCongestion, val: 2 },
        Syscall::Open { path: Path::Ext4File(1) },
        Syscall::Write { fd: Res(2), off: 3, val: 9 },
        Syscall::Read { fd: Res(2), off: 3 },
        Syscall::Mount,
    ]);
    let old = run(&boot(KernelConfig::v5_3_10()), prog.clone());
    let new = run(&rc(), prog);
    assert_eq!(old, new);
}

#[test]
fn msgsnd_msgrcv_fifo_semantics() {
    let b = rc();
    let rets = run(
        &b,
        Program::new(vec![
            Syscall::Msgget { key: 2 },                              // 0
            Syscall::Msgsnd { id: Res(0), mtype: 1, val: 10 },       // 1
            Syscall::Msgsnd { id: Res(0), mtype: 2, val: 20 },       // 2
            Syscall::Msgsnd { id: Res(0), mtype: 1, val: 30 },       // 3
            Syscall::Msgctl { id: Res(0), cmd: MsgCmd::Stat },       // 4: qnum 3
            Syscall::Msgrcv { id: Res(0), mtype: 2 },                // 5: 20
            Syscall::Msgrcv { id: Res(0), mtype: 0 },                // 6: FIFO: 10
            Syscall::Msgrcv { id: Res(0), mtype: 0 },                // 7: 30
            Syscall::Msgrcv { id: Res(0), mtype: 0 },                // 8: ENOMSG
        ]),
    );
    assert_eq!(rets[4], 3);
    assert_eq!(rets[5], 20);
    assert_eq!(rets[6], 10);
    assert_eq!(rets[7], 30);
    assert_eq!(rets[8], sb_kernel::errno(42));
}

#[test]
fn msgsnd_queue_capacity_is_bounded() {
    let b = rc();
    let mut calls = vec![Syscall::Msgget { key: 1 }];
    for i in 0..10 {
        calls.push(Syscall::Msgsnd { id: Res(0), mtype: 1, val: i });
    }
    let rets = run(&b, Program::new(calls));
    // 8 sends succeed, the 9th and 10th hit EAGAIN.
    assert!(rets[1..9].iter().all(|r| *r == 0), "{rets:?}");
    assert_eq!(rets[9], sb_kernel::errno(11));
    assert_eq!(rets[10], sb_kernel::errno(11));
}

#[test]
fn msg_ops_on_removed_queue_fail_cleanly() {
    let b = rc();
    let rets = run(
        &b,
        Program::new(vec![
            Syscall::Msgget { key: 4 },
            Syscall::Msgctl { id: Res(0), cmd: MsgCmd::Rmid },
            Syscall::Msgsnd { id: Res(0), mtype: 1, val: 1 },
            Syscall::Msgrcv { id: Res(0), mtype: 0 },
        ]),
    );
    assert_eq!(rets[2], ENOENT);
    assert_eq!(rets[3], ENOENT);
}
