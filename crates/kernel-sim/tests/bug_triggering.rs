//! Evidence that the planted bugs are real: each panic/console bug must be
//! triggerable by *some* interleaving of its two test programs, and must
//! never trigger in the patched build under the same schedules.

use std::sync::Arc;

use sb_kernel::prog::{Domain, IoctlCmd, MsgCmd, Path, Res};
use sb_kernel::{boot, BootedKernel, KernelConfig, Program, Syscall};
use sb_vmm::sched::RandomSched;
use sb_vmm::Executor;

/// Runs `a` and `b` concurrently under random schedules with seeds
/// `0..attempts`, returning the consoles of every run plus whether any run
/// panicked.
fn run_many(
    booted: &BootedKernel,
    a: &Program,
    b: &Program,
    attempts: u64,
) -> (bool, Vec<String>) {
    let mut exec = Executor::new(2);
    let mut any_panic = false;
    let mut consoles = Vec::new();
    for seed in 0..attempts {
        let mut sched = RandomSched::new(seed, 0.25);
        let r = exec.run(
            booted.snapshot.clone(),
            vec![
                booted.kernel.process_job(a.clone()),
                booted.kernel.process_job(b.clone()),
            ],
            &mut sched,
        );
        any_panic |= r.report.outcome.is_panic();
        consoles.extend(r.report.console);
    }
    (any_panic, consoles)
}

fn l2tp_writer() -> Program {
    Program::new(vec![
        Syscall::Socket { domain: Domain::L2tp },
        Syscall::Connect { sock: Res(0), tunnel_id: 2 },
    ])
}

fn l2tp_reader() -> Program {
    Program::new(vec![
        Syscall::Socket { domain: Domain::L2tp },
        Syscall::Connect { sock: Res(0), tunnel_id: 2 },
        Syscall::Sendmsg { sock: Res(0), len: 1 },
    ])
}

#[test]
fn bug12_l2tp_order_violation_panics_under_some_interleaving() {
    let booted = boot(KernelConfig::v5_12_rc3());
    let (panicked, consoles) = run_many(&booted, &l2tp_writer(), &l2tp_reader(), 64);
    assert!(panicked, "bug #12 should panic under some schedule");
    assert!(
        consoles.iter().any(|l| l.contains("NULL pointer dereference")),
        "expected a null-deref console line"
    );
    assert!(
        consoles.iter().any(|l| sb_kernel::bugs::match_console(l) == Some(12)),
        "console should match registry entry #12: {consoles:?}"
    );
}

#[test]
fn bug12_gone_in_patched_build() {
    let booted = boot(KernelConfig::v5_12_rc3().patched());
    let (panicked, _) = run_many(&booted, &l2tp_writer(), &l2tp_reader(), 64);
    assert!(!panicked, "patched build must not panic");
}

#[test]
fn bug12_gone_in_5_3_10() {
    // Table 2 places #12 only in 5.12-rc3; the older build publishes after
    // initializing.
    let booted = boot(KernelConfig::v5_3_10());
    let (panicked, _) = run_many(&booted, &l2tp_writer(), &l2tp_reader(), 64);
    assert!(!panicked);
}

fn rhash_writer() -> Program {
    Program::new(vec![
        Syscall::Msgget { key: 3 },
        Syscall::Msgctl { id: Res(0), cmd: MsgCmd::Rmid },
    ])
}

fn rhash_reader() -> Program {
    Program::new(vec![Syscall::Msgget { key: 3 }])
}

#[test]
fn bug1_rhashtable_double_fetch_panics_under_some_interleaving() {
    let booted = boot(KernelConfig::v5_3_10());
    let (panicked, consoles) = run_many(&booted, &rhash_writer(), &rhash_reader(), 200);
    assert!(panicked, "bug #1 should panic under some schedule");
    assert!(
        consoles.iter().any(|l| l.contains("unable to handle page fault")),
        "expected the page-fault console line: {consoles:?}"
    );
    assert!(consoles
        .iter()
        .any(|l| sb_kernel::bugs::match_console(l) == Some(1)));
}

#[test]
fn bug1_gone_in_5_12_rc3_and_patched() {
    for config in [KernelConfig::v5_12_rc3(), KernelConfig::v5_3_10().patched()] {
        let booted = boot(config);
        let (panicked, _) = run_many(&booted, &rhash_writer(), &rhash_reader(), 200);
        assert!(!panicked, "{config:?} must not panic");
    }
}

fn configfs_writer() -> Program {
    Program::new(vec![
        Syscall::Mkdir { item: 1 },
        Syscall::Rmdir { item: 1 },
    ])
}

fn configfs_reader() -> Program {
    Program::new(vec![
        Syscall::Mkdir { item: 1 },
        Syscall::Open { path: Path::Configfs(1) },
    ])
}

#[test]
fn bug11_configfs_lookup_panics_under_some_interleaving() {
    let booted = boot(KernelConfig::v5_12_rc3());
    let (panicked, consoles) = run_many(&booted, &configfs_writer(), &configfs_reader(), 200);
    assert!(panicked, "bug #11 should panic under some schedule");
    assert!(consoles
        .iter()
        .any(|l| sb_kernel::bugs::match_console(l) == Some(11)));
}

#[test]
fn bug11_gone_in_patched_build() {
    let booted = boot(KernelConfig::v5_12_rc3().patched());
    let (panicked, _) = run_many(&booted, &configfs_writer(), &configfs_reader(), 200);
    assert!(!panicked);
}

fn ext4_swap_prog() -> Program {
    Program::new(vec![
        Syscall::Open { path: Path::Ext4File(1) },
        Syscall::Write { fd: Res(0), off: 1, val: 7 },
        Syscall::Ioctl { fd: Res(0), cmd: IoctlCmd::Ext4SwapBoot, arg: 0 },
    ])
}

#[test]
fn bug2_swap_boot_loader_checksum_error_under_some_interleaving() {
    let booted = boot(KernelConfig::v5_12_rc3());
    // Duplicate pairing, as Table 2 records for #2.
    let (_panicked, consoles) = run_many(&booted, &ext4_swap_prog(), &ext4_swap_prog(), 128);
    assert!(
        consoles.iter().any(|l| l.contains("swap_inode_boot_loader")),
        "expected the checksum-invalid console line"
    );
    assert!(consoles
        .iter()
        .any(|l| sb_kernel::bugs::match_console(l) == Some(2)));
}

#[test]
fn bug2_gone_in_patched_build() {
    let booted = boot(KernelConfig::v5_12_rc3().patched());
    let (_p, consoles) = run_many(&booted, &ext4_swap_prog(), &ext4_swap_prog(), 128);
    assert!(!consoles.iter().any(|l| l.contains("checksum invalid")));
}

fn ext4_write_prog() -> Program {
    Program::new(vec![
        Syscall::Open { path: Path::Ext4File(2) },
        Syscall::Write { fd: Res(0), off: 0, val: 1 },
        Syscall::Read { fd: Res(0), off: 0 },
    ])
}

#[test]
fn bug3_extent_magic_error_under_some_interleaving() {
    let booted = boot(KernelConfig::v5_3_10());
    let (_p, consoles) = run_many(&booted, &ext4_write_prog(), &ext4_write_prog(), 128);
    assert!(
        consoles.iter().any(|l| l.contains("ext4_ext_check_inode")),
        "expected the invalid-magic console line"
    );
}

fn blk_shrink_prog() -> Program {
    Program::new(vec![
        Syscall::Open { path: Path::BlockDev },
        Syscall::Ioctl { fd: Res(0), cmd: IoctlCmd::BlkSetSize, arg: 0 },
    ])
}

fn blk_write_prog() -> Program {
    Program::new(vec![
        Syscall::Open { path: Path::Ext4File(0) },
        Syscall::Write { fd: Res(0), off: 9, val: 3 },
    ])
}

#[test]
fn bug4_blk_io_error_under_some_interleaving() {
    let booted = boot(KernelConfig::v5_3_10());
    // 256 attempts, not 128: the window where bug #4's capacity shrink can
    // race the in-flight write is narrow, and which seeds open it depends on
    // the RNG stream. A 256-seed sweep covers every stream observed so far
    // (a vendored rand first hits it at seed 184) and is a strict superset
    // of the original 128, so previously passing builds keep passing.
    let (_p, consoles) = run_many(&booted, &blk_shrink_prog(), &blk_write_prog(), 256);
    assert!(
        consoles
            .iter()
            .any(|l| l.contains("Blk_update_request: IO error")),
        "expected the IO-error console line"
    );
}

#[test]
fn bug4_gone_in_patched_build() {
    let booted = boot(KernelConfig::v5_3_10().patched());
    let (_p, consoles) = run_many(&booted, &blk_shrink_prog(), &blk_write_prog(), 256);
    assert!(!consoles
        .iter()
        .any(|l| l.contains("Blk_update_request: IO error")));
}

#[test]
fn snapshot_state_is_identical_across_trials() {
    // The same seed over the same snapshot must reproduce the exact same
    // console — the determinism §6 relies on for bug reproduction.
    let booted = boot(KernelConfig::v5_12_rc3());
    let mut exec = Executor::new(2);
    let run = |exec: &mut Executor, seed: u64| {
        let mut sched = RandomSched::new(seed, 0.25);
        let r = exec.run(
            booted.snapshot.clone(),
            vec![
                booted.kernel.process_job(l2tp_writer()),
                booted.kernel.process_job(l2tp_reader()),
            ],
            &mut sched,
        );
        (format!("{:?}", r.report.outcome), r.report.console.clone())
    };
    for seed in 0..16 {
        assert_eq!(run(&mut exec, seed), run(&mut exec, seed), "seed {seed}");
    }
}

#[test]
fn kernel_is_shareable_across_threads() {
    // The kernel handle is used from worker pools in the campaign driver.
    fn assert_send_sync<T: Send + Sync>(_: &T) {}
    let booted = boot(KernelConfig::v5_12_rc3());
    let k: &Arc<sb_kernel::Kernel> = &booted.kernel;
    assert_send_sync(k);
}
