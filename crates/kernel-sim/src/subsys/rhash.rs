//! Resizable hash table backing System V message queues (issue #1 —
//! Figure 4's conditional-with-omitted-operands bug).
//!
//! The real bug: `rht_ptr()` is written as `(*bkt & ~BIT(0)) ?: bkt`, a GCC
//! conditional with the second operand omitted. Developers assumed one read
//! of `*bkt`; under `-O2` the compiler emits **two** loads. When a
//! concurrent `rht_assign_unlock()` zeroes the bucket between the loads, the
//! second load returns 0, the lookup proceeds with a null object pointer,
//! and the key comparison (`memcmp(ptr + ht->p.key_offset, ...)`) faults at
//! a small non-null address — "BUG: unable to handle page fault for
//! address". The interleaving window is a single instruction wide.
//!
//! The simulated `msgget()`/`msgctl()` pair drives insertion, lookup, and
//! removal. The "5.3.10" build compiles `rht_ptr` the `-O2` way (double
//! fetch); the "5.12-rc3" and patched builds model Herbert Xu's fix
//! (single fetch, commit 1748f6a2).

use sb_vmm::ctx::KResult;
use sb_vmm::site;

use crate::prog::MsgCmd;
use crate::{Env, ENOENT};

/// Number of buckets in the table.
pub const NUM_BUCKETS: u64 = 4;

/// `struct msg_queue` field offsets. The object is a full slab page with the
/// key deep inside, so a null object pointer faults *beyond* the first page
/// — producing the page-fault (not null-dereference) console of Table 2 #1.
pub mod msq {
    /// Chain next pointer (8 bytes).
    pub const NEXT: u64 = 0;
    /// Queue mode bits (u32).
    pub const MODE: u64 = 8;
    /// Message count (u32).
    pub const QNUM: u64 = 12;
    /// IPC key (u64) — deliberately at a large offset (`ht->p.key_offset`).
    pub const KEY: u64 = 0x1100;
    /// Allocation size.
    pub const SIZE: u64 = 4096;
}

/// Boots the table: `NUM_BUCKETS` bucket words plus the table lock.
pub fn boot(env: &Env<'_>) -> KResult<Vec<(&'static str, u64)>> {
    let tbl = env.kzalloc(8 * NUM_BUCKETS)?;
    let lock = env.kzalloc(8)?;
    Ok(vec![("rht.tbl", tbl), ("rht.lock", lock)])
}

fn bucket_addr(env: &Env<'_>, key: u64) -> u64 {
    env.sym("rht.tbl") + 8 * (key % NUM_BUCKETS)
}

/// Walks the chain starting at the bucket for `key`, returning the matching
/// queue address or 0.
///
/// The head-pointer extraction models `rht_ptr()`'s `(*bkt & ~BIT(0)) ?: bkt`.
/// The *decision* that the bucket is non-empty is made on the first load; in
/// buggy builds the pointer actually dereferenced comes from a **second**
/// load of the same word (gcc -O2's code for the omitted-operand
/// conditional), and the emitted code does not re-test it — so a concurrent
/// zeroing between the two loads sends a null object pointer straight into
/// the key comparison at `ptr + KEY`, faulting in the low guard pages.
fn rht_lookup(env: &Env<'_>, key: u64) -> KResult<u64> {
    let bkt = bucket_addr(env, key);
    let first = env.ctx.read_u64(site!("rht_ptr:first_fetch"), bkt)?;
    if first & !1 == 0 {
        // Empty bucket (or only the lock bit set): `?:` yields `bkt` itself,
        // which the caller recognizes as "no entry".
        return Ok(0);
    }
    let mut p = if env.config.has_bug(1) {
        // Compiler option 2: mov (%eax),%eax — a second, unchecked load.
        env.ctx.read_u64(site!("rht_ptr:second_fetch"), bkt)? & !1
    } else {
        first & !1
    };
    loop {
        // memcmp(ptr + ht->p.key_offset, arg->key, ...) — performed without
        // re-validating `p`, exactly like the compiled lookup.
        let k = env.ctx.read_u64(site!("ipcget:key_cmp"), p + msq::KEY)?;
        if k == key {
            return Ok(p);
        }
        p = env.ctx.read_u64(site!("rht_lookup:next"), p + msq::NEXT)?;
        if p == 0 {
            return Ok(0);
        }
    }
}

/// `msgget(key)`: look the queue up, creating it if absent. Returns the
/// queue id (its kernel address, standing in for the IPC id).
pub fn msgget(env: &Env<'_>, key: u64) -> KResult<u64> {
    let key = key % (NUM_BUCKETS * 2);
    if let found @ 1.. = rht_lookup(env, key)? {
        return Ok(found);
    }
    // Insert a fresh queue at the chain head, under the bucket lock.
    let m = env.kzalloc(msq::SIZE)?;
    env.ctx.write_u64(site!("msg_insert:key"), m + msq::KEY, key)?;
    env.ctx
        .write_u32(site!("msg_insert:mode"), m + msq::MODE, 0o666)?;
    let bkt = bucket_addr(env, key);
    let lock = env.sym("rht.lock");
    env.ctx.with_lock(lock, || {
        let head = env.ctx.read_u64(site!("rht_insert:head"), bkt)?;
        env.ctx
            .write_u64(site!("rht_insert:chain"), m + msq::NEXT, head & !1)?;
        // rht_assign_unlock publishes the new head (lock bit clear).
        env.ctx.write_u64(site!("rht_assign_unlock:insert"), bkt, m)?;
        Ok(())
    })?;
    Ok(m)
}

/// Message-ring layout inside the msq page.
pub mod ring {
    /// First slot (8 slots × 8 bytes: mtype u32 + value u32).
    pub const SLOTS: u64 = 16;
    /// Ring capacity.
    pub const CAP: u64 = 8;
    /// Head counter (u32).
    pub const HEAD: u64 = 0x80;
    /// Tail counter (u32).
    pub const TAIL: u64 = 0x84;
    /// Per-queue lock cell.
    pub const LOCK: u64 = 0x200;
}

/// Scans the table for a queue with address `id`, validating the handle.
fn find_queue(env: &Env<'_>, id: u64) -> KResult<u64> {
    for b in 0..NUM_BUCKETS {
        let bkt = env.sym("rht.tbl") + 8 * b;
        let mut p = env.ctx.read_u64(site!("ipc_obtain_object:bucket"), bkt)? & !1;
        while p != 0 {
            if p == id {
                return Ok(p);
            }
            p = env
                .ctx
                .read_u64(site!("ipc_obtain_object:next"), p + msq::NEXT)?;
        }
    }
    Ok(0)
}

/// `msgsnd(id, mtype, val)`: append a message to the queue's ring.
pub fn msgsnd(env: &Env<'_>, id: u64, mtype: u64, val: u64) -> KResult<u64> {
    let q = find_queue(env, id)?;
    if q == 0 {
        return Ok(ENOENT);
    }
    env.ctx.with_lock(q + ring::LOCK, || {
        let head = env.ctx.read_u32(site!("do_msgsnd:head"), q + ring::HEAD)?;
        let tail = env.ctx.read_u32(site!("do_msgsnd:tail"), q + ring::TAIL)?;
        if tail.wrapping_sub(head) >= ring::CAP {
            return Ok(crate::errno(11)); // EAGAIN: queue full.
        }
        let slot = q + ring::SLOTS + (tail % ring::CAP) * 8;
        env.ctx.write_u32(site!("do_msgsnd:mtype"), slot, mtype.max(1))?;
        env.ctx.write_u32(site!("do_msgsnd:value"), slot + 4, val)?;
        env.ctx
            .write_u32(site!("do_msgsnd:tail_pub"), q + ring::TAIL, tail + 1)?;
        let n = env.ctx.read_u32(site!("do_msgsnd:qnum"), q + msq::QNUM)?;
        env.ctx.write_u32(site!("do_msgsnd:qnum"), q + msq::QNUM, n + 1)?;
        Ok(0)
    })
}

/// `msgrcv(id, mtype)`: pop the first message of type `mtype` (0 = any).
pub fn msgrcv(env: &Env<'_>, id: u64, mtype: u64) -> KResult<u64> {
    let q = find_queue(env, id)?;
    if q == 0 {
        return Ok(ENOENT);
    }
    env.ctx.with_lock(q + ring::LOCK, || {
        let head = env.ctx.read_u32(site!("do_msgrcv:head"), q + ring::HEAD)?;
        let tail = env.ctx.read_u32(site!("do_msgrcv:tail"), q + ring::TAIL)?;
        let mut pos = head;
        while pos < tail {
            let slot = q + ring::SLOTS + (pos % ring::CAP) * 8;
            let t = env.ctx.read_u32(site!("do_msgrcv:mtype"), slot)?;
            if mtype == 0 || t == mtype.max(1) {
                let v = env.ctx.read_u32(site!("do_msgrcv:value"), slot + 4)?;
                // Compact the ring: shift the remaining messages down.
                let mut cur = pos;
                while cur + 1 < tail {
                    let src = q + ring::SLOTS + ((cur + 1) % ring::CAP) * 8;
                    let dst = q + ring::SLOTS + (cur % ring::CAP) * 8;
                    let mt = env.ctx.read_u32(site!("do_msgrcv:shift_t"), src)?;
                    let mv = env.ctx.read_u32(site!("do_msgrcv:shift_v"), src + 4)?;
                    env.ctx.write_u32(site!("do_msgrcv:shift_t"), dst, mt)?;
                    env.ctx.write_u32(site!("do_msgrcv:shift_v"), dst + 4, mv)?;
                    cur += 1;
                }
                env.ctx
                    .write_u32(site!("do_msgrcv:tail_pub"), q + ring::TAIL, tail - 1)?;
                let n = env.ctx.read_u32(site!("do_msgrcv:qnum"), q + msq::QNUM)?;
                env.ctx.write_u32(
                    site!("do_msgrcv:qnum"),
                    q + msq::QNUM,
                    n.saturating_sub(1),
                )?;
                return Ok(v);
            }
            pos += 1;
        }
        Ok(crate::errno(42)) // ENOMSG.
    })
}

/// `msgctl(id, cmd)`: stat or remove a queue by id.
pub fn msgctl(env: &Env<'_>, id: u64, cmd: MsgCmd) -> KResult<u64> {
    match cmd {
        MsgCmd::Stat => {
            // Validate the id by scanning the table; read a couple of fields.
            for b in 0..NUM_BUCKETS {
                let bkt = env.sym("rht.tbl") + 8 * b;
                let mut p = env.ctx.read_u64(site!("msgctl_stat:bucket"), bkt)? & !1;
                while p != 0 {
                    if p == id {
                        let qnum = env.ctx.read_u32(site!("msgctl_stat:qnum"), p + msq::QNUM)?;
                        return Ok(qnum);
                    }
                    p = env.ctx.read_u64(site!("msgctl_stat:next"), p + msq::NEXT)?;
                }
            }
            Ok(ENOENT)
        }
        MsgCmd::Rmid => {
            let lock = env.sym("rht.lock");
            let tbl = env.sym("rht.tbl");
            env.ctx.lock(lock)?;
            for b in 0..NUM_BUCKETS {
                let bkt = tbl + 8 * b;
                let head = env.ctx.read_u64(site!("msgctl_rmid:bucket"), bkt)? & !1;
                let mut prev = 0u64;
                let mut p = head;
                while p != 0 {
                    let next = env.ctx.read_u64(site!("msgctl_rmid:next"), p + msq::NEXT)?;
                    if p == id {
                        if prev == 0 {
                            // Removing the chain head: rht_assign_unlock
                            // stores the successor (possibly 0 — the write
                            // that zeroes the bucket in bug #1's window).
                            env.ctx
                                .write_u64(site!("rht_assign_unlock:remove"), bkt, next)?;
                        } else {
                            env.ctx.write_u64(
                                site!("msgctl_rmid:unlink"),
                                prev + msq::NEXT,
                                next,
                            )?;
                        }
                        env.ctx.unlock(lock)?;
                        env.kfree(p, msq::SIZE)?;
                        return Ok(0);
                    }
                    prev = p;
                    p = next;
                }
            }
            env.ctx.unlock(lock)?;
            Ok(ENOENT)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{boot, KernelConfig};
    use sb_vmm::sched::FreeRun;
    use sb_vmm::{Ctx, Executor, ExecReport};

    fn seq_env_run(
        config: KernelConfig,
        f: impl Fn(&Env<'_>) -> KResult<()> + Send + 'static,
    ) -> ExecReport {
        let booted = boot(config);
        let mut exec = Executor::new(1);
        let kernel = booted.kernel.clone();
        exec.run(
            booted.snapshot.clone(),
            vec![Box::new(move |ctx: &Ctx| {
                let env = Env {
                    ctx,
                    syms: &kernel.syms,
                    config: kernel.config,
                };
                f(&env)
            })],
            &mut FreeRun,
        )
        .report
    }

    #[test]
    fn msgget_creates_then_finds() {
        let r = seq_env_run(KernelConfig::v5_3_10(), |env| {
            let a = msgget(env, 3)?;
            let b = msgget(env, 3)?;
            assert_eq!(a, b, "second msgget must find the first queue");
            let c = msgget(env, 5)?;
            assert_ne!(a, c);
            Ok(())
        });
        assert!(r.outcome.is_completed(), "{:?}", r.console);
    }

    #[test]
    fn colliding_keys_chain_in_one_bucket() {
        let r = seq_env_run(KernelConfig::v5_3_10(), |env| {
            // Keys 1 and 5 collide modulo NUM_BUCKETS=4.
            let a = msgget(env, 1)?;
            let b = msgget(env, 5)?;
            assert_ne!(a, b);
            assert_eq!(msgget(env, 1)?, a);
            assert_eq!(msgget(env, 5)?, b);
            Ok(())
        });
        assert!(r.outcome.is_completed(), "{:?}", r.console);
    }

    #[test]
    fn rmid_unlinks_head_and_interior() {
        let r = seq_env_run(KernelConfig::v5_3_10(), |env| {
            let a = msgget(env, 1)?;
            let b = msgget(env, 5)?; // Chain head is now b.
            assert_eq!(msgctl(env, b, MsgCmd::Rmid)?, 0); // Head removal.
            assert_eq!(msgget(env, 1)?, a, "interior entry survives");
            assert_eq!(msgctl(env, a, MsgCmd::Rmid)?, 0);
            let fresh = msgget(env, 1)?;
            assert_ne!(fresh, 0);
            Ok(())
        });
        assert!(r.outcome.is_completed(), "{:?}", r.console);
    }

    #[test]
    fn stat_reports_enoent_for_unknown_id() {
        let r = seq_env_run(KernelConfig::v5_3_10(), |env| {
            assert_eq!(msgctl(env, 0xdead_beef, MsgCmd::Stat)?, ENOENT);
            Ok(())
        });
        assert!(r.outcome.is_completed());
    }

    #[test]
    fn double_fetch_only_in_5_3_10() {
        // Count rht_ptr fetches in each build via the trace.
        let count_fetches = |config: KernelConfig| {
            let booted = boot(config);
            let mut exec = Executor::new(1);
            let kernel = booted.kernel.clone();
            let r = exec.run(
                booted.snapshot.clone(),
                vec![Box::new(move |ctx: &Ctx| {
                    let env = Env {
                        ctx,
                        syms: &kernel.syms,
                        config: kernel.config,
                    };
                    msgget(&env, 3)?;
                    msgget(&env, 3)?; // Second call performs the lookup hit.
                    Ok(())
                })],
                &mut FreeRun,
            );
            assert!(r.report.outcome.is_completed());
            let second = sb_vmm::Site::intern("rht_ptr:second_fetch");
            r.report
                .trace
                .iter()
                .filter(|a| a.site == second)
                .count()
        };
        assert!(count_fetches(KernelConfig::v5_3_10()) > 0);
        assert_eq!(count_fetches(KernelConfig::v5_12_rc3()), 0);
        assert_eq!(count_fetches(KernelConfig::v5_3_10().patched()), 0);
    }
}
