//! AF_PACKET sockets: fanout groups and getname (issues #8 reader, #17).
//!
//! * **#17** — `fanout_demux_rollover()` walks the fanout array and reads
//!   `num_members` with *no* lock, while `__fanout_link()`/
//!   `__fanout_unlink()` mutate both under the fanout lock. The reader can
//!   observe a stale member count and a cleared slot. The upstream fix
//!   (commit 94f633ea) converted the shared fields to READ_ONCE/WRITE_ONCE;
//!   the patched build models exactly that.
//! * **#8 (reader)** — `packet_getname()` copies `dev->dev_addr` with no
//!   lock at all, racing `e1000_set_mac()` in `netdev.rs`.

use sb_vmm::ctx::KResult;
use sb_vmm::site;

use crate::subsys::netdev::{self, ETH_ALEN};
use crate::{Env, EINVAL};

/// Maximum sockets in the fanout group.
pub const FANOUT_MAX: u64 = 4;

/// Fanout structure field offsets.
pub mod fanout {
    /// Member pointer slots (`FANOUT_MAX` × 8 bytes).
    pub const ARR: u64 = 0;
    /// Member count (u32).
    pub const NUM_MEMBERS: u64 = 32;
    /// Rollover cursor (u32).
    pub const ROLLOVER: u64 = 36;
}

/// Boots the packet subsystem: one global fanout group.
pub fn boot(env: &Env<'_>) -> KResult<Vec<(&'static str, u64)>> {
    let f = env.kzalloc(64)?;
    let lock = env.kzalloc(8)?;
    Ok(vec![("packet.fanout", f), ("packet.fanout_lock", lock)])
}

/// Creates an AF_PACKET socket object.
pub fn packet_socket(env: &Env<'_>) -> KResult<u64> {
    let sk = env.kzalloc(64)?;
    env.ctx.write_u32(site!("packet_create:init"), sk, 17)?; // AF_PACKET
    Ok(sk)
}

/// `PACKET_FANOUT` setsockopt: link the socket into the group (#17 writer).
pub fn fanout_add(env: &Env<'_>, sk: u64) -> KResult<u64> {
    let f = env.sym("packet.fanout");
    let lock = env.sym("packet.fanout_lock");
    env.ctx.with_lock(lock, || {
        let n = env
            .ctx
            .read_u32(site!("__fanout_link:num"), f + fanout::NUM_MEMBERS)?;
        if n >= FANOUT_MAX {
            return Ok(EINVAL);
        }
        if env.config.has_bug(17) {
            env.ctx
                .write_u64(site!("__fanout_link:slot"), f + fanout::ARR + 8 * n, sk)?;
        } else {
            env.ctx
                .write_atomic(site!("__fanout_link:slot"), f + fanout::ARR + 8 * n, 8, sk)?;
        }
        if env.config.has_bug(17) {
            env.ctx.write_u32(
                site!("__fanout_link:num_inc"),
                f + fanout::NUM_MEMBERS,
                n + 1,
            )?;
        } else {
            env.ctx.write_atomic(
                site!("__fanout_link:num_inc"),
                f + fanout::NUM_MEMBERS,
                4,
                n + 1,
            )?;
        }
        Ok(0)
    })
}

/// Socket close path: unlink from the group (#17 writer).
pub fn fanout_unlink(env: &Env<'_>, sk: u64) -> KResult<u64> {
    let f = env.sym("packet.fanout");
    let lock = env.sym("packet.fanout_lock");
    env.ctx.with_lock(lock, || {
        let n = env
            .ctx
            .read_u32(site!("__fanout_unlink:num"), f + fanout::NUM_MEMBERS)?;
        for i in 0..n {
            let slot = f + fanout::ARR + 8 * u64::from(i as u32);
            let p = env.ctx.read_u64(site!("__fanout_unlink:scan"), slot)?;
            if p == sk {
                // Compact: move the last member into the hole, clear the
                // tail, decrement the count.
                let last = f + fanout::ARR + 8 * (n - 1);
                let moved = env.ctx.read_u64(site!("__fanout_unlink:tail"), last)?;
                if env.config.has_bug(17) {
                    env.ctx.write_u64(site!("__fanout_unlink:slot"), slot, moved)?;
                    env.ctx.write_u64(site!("__fanout_unlink:clear"), last, 0)?;
                } else {
                    env.ctx
                        .write_atomic(site!("__fanout_unlink:slot"), slot, 8, moved)?;
                    env.ctx.write_atomic(site!("__fanout_unlink:clear"), last, 8, 0)?;
                }
                if env.config.has_bug(17) {
                    env.ctx.write_u32(
                        site!("__fanout_unlink:num_dec"),
                        f + fanout::NUM_MEMBERS,
                        n - 1,
                    )?;
                } else {
                    env.ctx.write_atomic(
                        site!("__fanout_unlink:num_dec"),
                        f + fanout::NUM_MEMBERS,
                        4,
                        n - 1,
                    )?;
                }
                return Ok(0);
            }
        }
        Ok(0)
    })
}

/// Transmit on a packet socket: `fanout_demux_rollover` picks a member with
/// unsynchronized reads (#17 reader).
pub fn packet_sendmsg(env: &Env<'_>, sk: u64, len: u64) -> KResult<u64> {
    let f = env.sym("packet.fanout");
    let buggy = env.config.has_bug(17);
    let n = if buggy {
        env.ctx
            .read_u32(site!("fanout_demux_rollover:num"), f + fanout::NUM_MEMBERS)?
    } else {
        env.ctx.read_atomic(
            site!("fanout_demux_rollover:num"),
            f + fanout::NUM_MEMBERS,
            4,
        )?
    };
    if n == 0 {
        // No fanout group: plain transmit accounting on the socket itself.
        let tx = env.ctx.read_u64(site!("packet_sendmsg:sk_tx"), sk + 8)?;
        env.ctx.write_u64(site!("packet_sendmsg:sk_tx"), sk + 8, tx + 1)?;
        return Ok(0);
    }
    let idx = len % n;
    let slot = f + fanout::ARR + 8 * idx;
    let member = if buggy {
        env.ctx.read_u64(site!("fanout_demux_rollover:slot"), slot)?
    } else {
        env.ctx
            .read_atomic(site!("fanout_demux_rollover:slot"), slot, 8)?
    };
    if member == 0 {
        // Stale count: the slot was already cleared. Harmful in the real
        // kernel (out-of-range demux); here we just fail the send.
        return Ok(EINVAL);
    }
    // Deliver: bump the chosen member's rx counter.
    let rx = env
        .ctx
        .read_atomic(site!("fanout_demux_rollover:deliver"), member + 16, 8)?;
    env.ctx
        .write_atomic(site!("fanout_demux_rollover:deliver"), member + 16, 8, rx + 1)?;
    Ok(idx)
}

/// `packet_getname`: copy the device MAC with no locking (#8 reader).
pub fn packet_getname(env: &Env<'_>, _sk: u64) -> KResult<u64> {
    let d = env.sym("net.dev0");
    let mut out = 0u64;
    for i in 0..ETH_ALEN {
        let b = if env.config.has_bug(8) {
            env.ctx
                .read_u8(site!("packet_getname:memcpy"), d + netdev::dev::DEV_ADDR + i)?
        } else {
            env.ctx.read_atomic(
                site!("packet_getname:memcpy"),
                d + netdev::dev::DEV_ADDR + i,
                1,
            )?
        };
        out |= b << (8 * i);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{boot, KernelConfig};
    use sb_vmm::sched::FreeRun;
    use sb_vmm::{Ctx, Executor};

    #[test]
    fn fanout_link_send_unlink_cycle() {
        let booted = boot(KernelConfig::v5_12_rc3());
        let mut exec = Executor::new(1);
        let kernel = booted.kernel.clone();
        let r = exec.run(
            booted.snapshot.clone(),
            vec![Box::new(move |ctx: &Ctx| {
                let env = Env {
                    ctx,
                    syms: &kernel.syms,
                    config: kernel.config,
                };
                let a = packet_socket(&env)?;
                let b = packet_socket(&env)?;
                assert_eq!(fanout_add(&env, a)?, 0);
                assert_eq!(fanout_add(&env, b)?, 0);
                // Send to both members.
                assert_eq!(packet_sendmsg(&env, a, 0)?, 0);
                assert_eq!(packet_sendmsg(&env, a, 1)?, 1);
                // Unlink a; b moves into slot 0.
                assert_eq!(fanout_unlink(&env, a)?, 0);
                assert_eq!(packet_sendmsg(&env, a, 0)?, 0);
                Ok(())
            })],
            &mut FreeRun,
        );
        assert!(r.report.outcome.is_completed(), "{:?}", r.report.console);
    }

    #[test]
    fn fanout_group_capacity_is_enforced() {
        let booted = boot(KernelConfig::v5_12_rc3());
        let mut exec = Executor::new(1);
        let kernel = booted.kernel.clone();
        let r = exec.run(
            booted.snapshot.clone(),
            vec![Box::new(move |ctx: &Ctx| {
                let env = Env {
                    ctx,
                    syms: &kernel.syms,
                    config: kernel.config,
                };
                for _ in 0..FANOUT_MAX {
                    let s = packet_socket(&env)?;
                    assert_eq!(fanout_add(&env, s)?, 0);
                }
                let extra = packet_socket(&env)?;
                assert_eq!(fanout_add(&env, extra)?, EINVAL);
                Ok(())
            })],
            &mut FreeRun,
        );
        assert!(r.report.outcome.is_completed());
    }
}
