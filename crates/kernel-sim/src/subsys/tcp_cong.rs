//! TCP congestion control (issue #16, benign data race).
//!
//! `tcp_set_default_congestion_control()` rewrites the global default
//! algorithm name under the CA-list lock, while
//! `tcp_set_congestion_control()` / socket creation read the name
//! locklessly when assigning a CA to a new socket. A torn name read merely
//! selects a fallback algorithm — benign, per Table 2.

use sb_vmm::ctx::KResult;
use sb_vmm::site;

use crate::Env;

/// Length of the congestion-control name buffer.
pub const CA_NAME_MAX: u64 = 8;

/// Boots the subsystem: the default-CA name buffer ("cubic") and the list
/// lock.
pub fn boot(env: &Env<'_>) -> KResult<Vec<(&'static str, u64)>> {
    let name = env.kzalloc(CA_NAME_MAX)?;
    for (i, b) in b"cubic\0\0\0".iter().enumerate() {
        env.ctx
            .write_u8(site!("tcp_cong_boot:name"), name + i as u64, u64::from(*b))?;
    }
    let lock = env.kzalloc(8)?;
    Ok(vec![("tcp.cong_default", name), ("tcp.cong_lock", lock)])
}

/// Known algorithm name table, selected by `val`.
const NAMES: [&[u8; 8]; 4] = [b"cubic\0\0\0", b"reno\0\0\0\0", b"bbr\0\0\0\0\0", b"vegas\0\0\0"];

/// Creates a TCP socket, assigning the default congestion control (#16
/// reader on the fast path).
pub fn inet_socket(env: &Env<'_>) -> KResult<u64> {
    let sk = env.kzalloc(64)?;
    env.ctx.write_u32(site!("inet_create:init"), sk, 2)?; // AF_INET
    let ca = tcp_assign_congestion_control(env)?;
    env.ctx
        .write_u64(site!("inet_create:ca"), sk + 24, ca)?;
    Ok(sk)
}

/// Reads the default CA name word locklessly (#16 reader).
pub fn tcp_assign_congestion_control(env: &Env<'_>) -> KResult<u64> {
    let name = env.sym("tcp.cong_default");
    if env.config.has_bug(16) {
        env.ctx
            .read_u64(site!("tcp_set_congestion_control:read_default"), name)
    } else {
        env.ctx
            .read_atomic(site!("tcp_set_congestion_control:read_default"), name, 8)
    }
}

/// `setsockopt(TCP_CONGESTION)` with admin rights: rewrite the global
/// default name under the list lock, byte by byte (#16 writer).
pub fn set_default_congestion_control(env: &Env<'_>, _sk: u64, val: u64) -> KResult<u64> {
    let name = env.sym("tcp.cong_default");
    let lock = env.sym("tcp.cong_lock");
    let chosen = NAMES[(val % NAMES.len() as u64) as usize];
    env.ctx.with_lock(lock, || {
        for (i, b) in chosen.iter().enumerate() {
            if env.config.has_bug(16) {
                env.ctx.write_u8(
                    site!("tcp_set_default_congestion_control:copy"),
                    name + i as u64,
                    u64::from(*b),
                )?;
            } else {
                env.ctx.write_atomic(
                    site!("tcp_set_default_congestion_control:copy"),
                    name + i as u64,
                    1,
                    u64::from(*b),
                )?;
            }
        }
        Ok(0)
    })
}

/// Transmit accounting for Inet sockets (keeps sendmsg meaningful).
pub fn inet_sendmsg(env: &Env<'_>, sk: u64) -> KResult<u64> {
    let tx = env.ctx.read_u64(site!("tcp_sendmsg:sk_tx"), sk + 8)?;
    env.ctx.write_u64(site!("tcp_sendmsg:sk_tx"), sk + 8, tx + 1)?;
    Ok(tx + 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{boot, KernelConfig};
    use sb_vmm::sched::FreeRun;
    use sb_vmm::{Ctx, Executor};

    #[test]
    fn default_name_updates_are_visible_to_new_sockets() {
        let booted = boot(KernelConfig::v5_12_rc3());
        let mut exec = Executor::new(1);
        let kernel = booted.kernel.clone();
        let r = exec.run(
            booted.snapshot.clone(),
            vec![Box::new(move |ctx: &Ctx| {
                let env = Env {
                    ctx,
                    syms: &kernel.syms,
                    config: kernel.config,
                };
                let s0 = inet_socket(&env)?;
                let cubic = env.ctx.read_u64(site!("test:ca0"), s0 + 24)?;
                assert_eq!(cubic & 0xff, u64::from(b'c'));
                set_default_congestion_control(&env, s0, 1)?; // "reno"
                let s1 = inet_socket(&env)?;
                let reno = env.ctx.read_u64(site!("test:ca1"), s1 + 24)?;
                assert_eq!(reno & 0xff, u64::from(b'r'));
                Ok(())
            })],
            &mut FreeRun,
        );
        assert!(r.report.outcome.is_completed());
    }
}
