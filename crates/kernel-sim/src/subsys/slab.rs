//! Slab-allocator statistics (planted issue #13).
//!
//! The real bug: `cache_alloc_refill()` and `free_block()` update per-cache
//! statistics counters without synchronization — a benign data race in
//! `mm/` that, because *every* test allocates kernel memory, is unmasked by
//! any concurrent test pair. Table 3 shows every strategy (including the
//! baselines) finding it, usually first. The counters here are bumped inside
//! [`crate::Env::kzalloc`]/[`crate::Env::kfree`], giving the same
//! everything-touches-it property.

use sb_vmm::ctx::{Ctx, KResult};

use crate::Symbols;

/// Allocates and registers the statistics cells. Runs before any other
/// subsystem so `Env::kzalloc` works during the rest of boot.
pub fn boot(ctx: &Ctx, syms: &mut Symbols) -> KResult<()> {
    let alloc = ctx.kmalloc(8)?;
    let free = ctx.kmalloc(8)?;
    syms.register("slab.alloc_count", alloc);
    syms.register("slab.free_count", free);
    Ok(())
}
