//! L2TP tunnels (issue #12 — the Figure 1 order violation).
//!
//! The paper's flagship non-data-race bug: `l2tp_tunnel_register()` adds the
//! freshly allocated tunnel to the RCU-protected tunnel list *before*
//! initializing `tunnel->sock`. A concurrent `pppol2tp_connect()` can fetch
//! the published-but-incomplete tunnel, and the subsequent
//! `l2tp_xmit_core()` dereferences the null `sock` — a kernel panic. Every
//! access is properly synchronized (spinlock on the writer, RCU on the
//! reader), so no data race is involved: the bug is purely an ordering
//! violation, which is why data-race tools miss it.
//!
//! The upstream fix (commit 69e16d01) initializes the socket before
//! publishing; the patched build does exactly that.

use sb_vmm::ctx::KResult;
use sb_vmm::site;

use crate::{Env, EINVAL};

/// `struct l2tp_tunnel` field offsets.
pub mod tunnel {
    /// Next pointer in the tunnel list (8 bytes).
    pub const NEXT: u64 = 0;
    /// Tunnel id (u32).
    pub const ID: u64 = 8;
    /// Owning socket pointer (8 bytes) — the field left uninitialized in
    /// the publication window.
    pub const SOCK: u64 = 16;
    /// Reference count (u32).
    pub const REFCOUNT: u64 = 24;
    /// Allocation size.
    pub const SIZE: u64 = 32;
}

/// `struct pppol2tp socket` field offsets.
pub mod sock {
    /// Protocol tag (u32).
    pub const PROTO: u64 = 0;
    /// Connected tunnel pointer (8 bytes).
    pub const TUNNEL: u64 = 8;
    /// Lock word used by `bh_lock_sock` (the dereference that crashes).
    pub const LOCK: u64 = 16;
    /// Transmit counter (u64).
    pub const TX: u64 = 24;
    /// Allocation size.
    pub const SIZE: u64 = 64;
}

/// Boots the subsystem: the tunnel list head and its spinlock.
pub fn boot(env: &Env<'_>) -> KResult<Vec<(&'static str, u64)>> {
    let head = env.kzalloc(8)?;
    let lock = env.kzalloc(8)?;
    Ok(vec![("l2tp.tunnel_list", head), ("l2tp.list_lock", lock)])
}

/// Creates a PPPoL2TP socket object.
pub fn l2tp_socket(env: &Env<'_>) -> KResult<u64> {
    let sk = env.kzalloc(sock::SIZE)?;
    env.ctx
        .write_u32(site!("pppol2tp_create:init"), sk + sock::PROTO, 111)?;
    Ok(sk)
}

/// RCU walk of the tunnel list looking for `tid`. Returns the tunnel
/// address or 0.
fn l2tp_tunnel_get(env: &Env<'_>, tid: u64) -> KResult<u64> {
    let head = env.sym("l2tp.tunnel_list");
    env.ctx.rcu_read_lock()?;
    let mut p = env
        .ctx
        .read_atomic(site!("l2tp_tunnel_get:head"), head, 8)?;
    while p != 0 {
        let id = env
            .ctx
            .read_atomic(site!("l2tp_tunnel_get:id"), p + tunnel::ID, 4)?;
        if id == tid {
            // Grab a reference while still inside the RCU section.
            let rc = env
                .ctx
                .read_atomic(site!("l2tp_tunnel_get:refcount"), p + tunnel::REFCOUNT, 4)?;
            env.ctx.write_atomic(
                site!("l2tp_tunnel_get:refcount"),
                p + tunnel::REFCOUNT,
                4,
                rc + 1,
            )?;
            break;
        }
        p = env
            .ctx
            .read_atomic(site!("l2tp_tunnel_get:next"), p + tunnel::NEXT, 8)?;
    }
    env.ctx.rcu_read_unlock()?;
    Ok(p)
}

/// Registers a new tunnel owned by socket `sk`.
///
/// In buggy builds (#12 present) the tunnel is published to the RCU list
/// *before* `tunnel->sock` is initialized; patched builds initialize first.
fn l2tp_tunnel_register(env: &Env<'_>, sk: u64, tid: u64) -> KResult<u64> {
    let head = env.sym("l2tp.tunnel_list");
    let lock = env.sym("l2tp.list_lock");
    let t = env.kzalloc(tunnel::SIZE)?;
    env.ctx
        .write_atomic(site!("l2tp_tunnel_register:id"), t + tunnel::ID, 4, tid)?;
    env.ctx.write_atomic(
        site!("l2tp_tunnel_register:refcount"),
        t + tunnel::REFCOUNT,
        4,
        1,
    )?;
    let publish = |env: &Env<'_>| -> KResult<()> {
        env.ctx.lock(lock)?;
        let old = env.ctx.read_atomic(site!("list_add_rcu:old_head"), head, 8)?;
        env.ctx
            .write_atomic(site!("list_add_rcu:next"), t + tunnel::NEXT, 8, old)?;
        env.ctx.write_atomic(site!("list_add_rcu:head"), head, 8, t)?;
        env.ctx.unlock(lock)?;
        Ok(())
    };
    if env.config.has_bug(12) {
        // BUG: tunnel becomes reachable before its socket is set.
        publish(env)?;
        env.ctx
            .write_atomic(site!("l2tp_tunnel_register:sock"), t + tunnel::SOCK, 8, sk)?;
    } else {
        env.ctx
            .write_atomic(site!("l2tp_tunnel_register:sock"), t + tunnel::SOCK, 8, sk)?;
        publish(env)?;
    }
    Ok(t)
}

/// `connect()` on a PPPoL2TP socket: look the tunnel up, lazily registering
/// it, and bind it to the socket.
pub fn pppol2tp_connect(env: &Env<'_>, sk: u64, tid: u64) -> KResult<u64> {
    let tid = tid % 4;
    let mut t = l2tp_tunnel_get(env, tid)?;
    if t == 0 {
        t = l2tp_tunnel_register(env, sk, tid)?;
    }
    env.ctx
        .write_u64(site!("pppol2tp_connect:assign"), sk + sock::TUNNEL, t)?;
    Ok(0)
}

/// `sendmsg()` on a connected PPPoL2TP socket: `l2tp_xmit_core()` fetches
/// `tunnel->sock` and takes `bh_lock_sock(sk)` — dereferencing a null
/// `sock` if the tunnel was fetched inside the publication window.
pub fn l2tp_sendmsg(env: &Env<'_>, sk: u64) -> KResult<u64> {
    let t = env
        .ctx
        .read_u64(site!("l2tp_xmit_core:tunnel"), sk + sock::TUNNEL)?;
    if t == 0 {
        return Ok(EINVAL); // Not connected.
    }
    let tsk = env
        .ctx
        .read_atomic(site!("l2tp_xmit_core:sock"), t + tunnel::SOCK, 8)?;
    // bh_lock_sock(sk): touch the socket's lock word. If `tsk` is still 0
    // this faults in the null page — the paper's panic.
    let _ = env
        .ctx
        .read_u32(site!("bh_lock_sock:acquire"), tsk + sock::LOCK)?;
    let tx = env.ctx.read_u64(site!("l2tp_xmit_core:tx"), tsk + sock::TX)?;
    env.ctx
        .write_u64(site!("l2tp_xmit_core:tx"), tsk + sock::TX, tx + 1)?;
    Ok(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{boot, KernelConfig};
    use sb_vmm::sched::FreeRun;
    use sb_vmm::{Ctx, Executor};

    fn seq_env_run(
        config: KernelConfig,
        f: impl Fn(&Env<'_>) -> KResult<()> + Send + 'static,
    ) -> sb_vmm::ExecReport {
        let booted = boot(config);
        let mut exec = Executor::new(1);
        let kernel = booted.kernel.clone();
        exec.run(
            booted.snapshot.clone(),
            vec![Box::new(move |ctx: &Ctx| {
                let env = Env {
                    ctx,
                    syms: &kernel.syms,
                    config: kernel.config,
                };
                f(&env)
            })],
            &mut FreeRun,
        )
        .report
    }

    #[test]
    fn connect_registers_then_reuses_tunnel() {
        let report = seq_env_run(KernelConfig::v5_12_rc3(), |env| {
            let a = l2tp_socket(env)?;
            let b = l2tp_socket(env)?;
            pppol2tp_connect(env, a, 2)?;
            pppol2tp_connect(env, b, 2)?;
            // Both sockets point at the same tunnel.
            let ta = env.ctx.read_u64(site!("test:ta"), a + sock::TUNNEL)?;
            let tb = env.ctx.read_u64(site!("test:tb"), b + sock::TUNNEL)?;
            assert_eq!(ta, tb);
            assert_ne!(ta, 0);
            Ok(())
        });
        assert!(report.outcome.is_completed(), "{:?}", report.console);
    }

    #[test]
    fn sequential_connect_sendmsg_is_safe_even_in_buggy_build() {
        // Sequentially the window cannot be observed: the same thread
        // finishes registration before transmitting.
        let report = seq_env_run(KernelConfig::v5_12_rc3(), |env| {
            let a = l2tp_socket(env)?;
            pppol2tp_connect(env, a, 1)?;
            assert_eq!(l2tp_sendmsg(env, a)?, 0);
            Ok(())
        });
        assert!(report.outcome.is_completed(), "{:?}", report.console);
    }

    #[test]
    fn sendmsg_without_connect_fails_cleanly() {
        let report = seq_env_run(KernelConfig::v5_12_rc3(), |env| {
            let a = l2tp_socket(env)?;
            assert_eq!(l2tp_sendmsg(env, a)?, EINVAL);
            Ok(())
        });
        assert!(report.outcome.is_completed());
    }

    #[test]
    fn distinct_tunnel_ids_get_distinct_tunnels() {
        let report = seq_env_run(KernelConfig::v5_12_rc3(), |env| {
            let a = l2tp_socket(env)?;
            let b = l2tp_socket(env)?;
            pppol2tp_connect(env, a, 0)?;
            pppol2tp_connect(env, b, 1)?;
            let ta = env.ctx.read_u64(site!("test:t0"), a + sock::TUNNEL)?;
            let tb = env.ctx.read_u64(site!("test:t1"), b + sock::TUNNEL)?;
            assert_ne!(ta, tb);
            Ok(())
        });
        assert!(report.outcome.is_completed());
    }
}
