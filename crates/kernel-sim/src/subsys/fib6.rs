//! IPv6 FIB cookie (issue #10, benign data race).
//!
//! `fib6_clean_node()` bumps the table's sernum/cookie under the table lock;
//! `fib6_get_cookie_safe()` reads it locklessly to validate cached dst
//! entries. The race is real but benign — a stale read just forces a cache
//! revalidation. Table 2 classifies it as benign; the registry does too.

use sb_vmm::ctx::KResult;
use sb_vmm::site;

use crate::Env;

/// Boots the fib6 subsystem: the cookie cell and its lock.
pub fn boot(env: &Env<'_>) -> KResult<Vec<(&'static str, u64)>> {
    let cookie = env.kzalloc(8)?;
    env.ctx.write_u64(site!("fib6_boot:cookie"), cookie, 1)?;
    let lock = env.kzalloc(8)?;
    Ok(vec![("fib6.cookie", cookie), ("fib6.lock", lock)])
}

/// Route change: bump the cookie under the table lock (#10 writer).
pub fn fib6_clean_node(env: &Env<'_>) -> KResult<u64> {
    let cookie = env.sym("fib6.cookie");
    let lock = env.sym("fib6.lock");
    let plain = env.config.has_bug(10);
    env.ctx.with_lock(lock, || {
        if plain {
            let v = env.ctx.read_u64(site!("fib6_clean_node:load"), cookie)?;
            env.ctx
                .write_u64(site!("fib6_clean_node:bump"), cookie, v + 1)?;
            Ok(v + 1)
        } else {
            let v = env.ctx.read_atomic(site!("fib6_clean_node:load"), cookie, 8)?;
            env.ctx
                .write_atomic(site!("fib6_clean_node:bump"), cookie, 8, v + 1)?;
            Ok(v + 1)
        }
    })
}

/// Connect path on an Inet socket: validate the cached route cookie with a
/// lockless read (#10 reader).
pub fn inet_connect(env: &Env<'_>, sk: u64) -> KResult<u64> {
    let cookie = env.sym("fib6.cookie");
    let v = if env.config.has_bug(10) {
        env.ctx
            .read_u64(site!("fib6_get_cookie_safe:load"), cookie)?
    } else {
        env.ctx
            .read_atomic(site!("fib6_get_cookie_safe:load"), cookie, 8)?
    };
    // Cache the observed cookie in the socket's dst entry.
    env.ctx
        .write_u64(site!("fib6_get_cookie_safe:cache"), sk + 16, v)?;
    Ok(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::subsys::tcp_cong;
    use crate::{boot, KernelConfig};
    use sb_vmm::sched::FreeRun;
    use sb_vmm::{Ctx, Executor};

    #[test]
    fn cookie_bumps_and_reads() {
        let booted = boot(KernelConfig::v5_3_10());
        let mut exec = Executor::new(1);
        let kernel = booted.kernel.clone();
        let r = exec.run(
            booted.snapshot.clone(),
            vec![Box::new(move |ctx: &Ctx| {
                let env = Env {
                    ctx,
                    syms: &kernel.syms,
                    config: kernel.config,
                };
                assert_eq!(fib6_clean_node(&env)?, 2);
                assert_eq!(fib6_clean_node(&env)?, 3);
                let sk = tcp_cong::inet_socket(&env)?;
                inet_connect(&env, sk)?;
                Ok(())
            })],
            &mut FreeRun,
        );
        assert!(r.report.outcome.is_completed());
    }
}
