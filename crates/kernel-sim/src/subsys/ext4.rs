//! ext4 filesystem (issues #2 and #3 — atomicity violations).
//!
//! * **#2** — `swap_inode_boot_loader()` swaps an inode's blocks with the
//!   boot-loader inode and recomputes the checksum, but in buggy builds the
//!   swap/checksum/verify sequence is not atomic against concurrent inode
//!   writes: an interleaved `write()` changes `i_blocks` between the
//!   checksum computation and the verify, producing
//!   "EXT4-fs error: swap_inode_boot_loader: checksum invalid".
//! * **#3** — the extent-tree insert rewrites the extent header by clearing
//!   and re-writing the magic around the entry update; a concurrent
//!   `ext4_ext_check_inode()` on the (lockless) read path can observe the
//!   cleared magic: "EXT4-fs error: ext4_ext_check_inode: invalid magic".
//!
//! Both bugs use *marked* accesses throughout, so no data race is involved
//! — they are pure atomicity violations, which is why the console checker
//! (not the race detector) catches them.
//!
//! `mount()` (`ext4_fill_super`) is a deliberately heavy operation that also
//! performs genuine double fetches of superblock fields — the seed corpus
//! for the S-CH-DOUBLE clustering strategy.

use sb_vmm::ctx::KResult;
use sb_vmm::site;

use crate::subsys::blkdev;
use crate::{Env, EIO};

/// Number of regular file inodes.
pub const NUM_INODES: u8 = 4;

/// Inode field offsets.
pub mod inode {
    /// Block count (u32).
    pub const I_BLOCKS: u64 = 0;
    /// Inode checksum over `i_blocks` (u32).
    pub const I_CHECKSUM: u64 = 4;
    /// Extent-header magic (u16, 0xF30A when valid).
    pub const EH_MAGIC: u64 = 8;
    /// Extent-header entry count (u16).
    pub const EH_ENTRIES: u64 = 10;
    /// File size (u32).
    pub const I_SIZE: u64 = 12;
    /// Inline data area (16 bytes).
    pub const DATA: u64 = 16;
    /// Per-inode lock word.
    pub const LOCK: u64 = 64;
    /// Allocation size.
    pub const SIZE: u64 = 128;
}

/// The valid extent-header magic.
pub const EXT4_EXT_MAGIC: u64 = 0xF30A;

/// Inode checksum function (crc stand-in).
pub fn csum_of(i_blocks: u64) -> u64 {
    (i_blocks.wrapping_mul(0x9E37) ^ 0xAB) & 0xFFFF_FFFF
}

/// Boots ext4: four file inodes, the boot-loader inode, the superblock lock
/// and a small journal area.
pub fn boot(env: &Env<'_>) -> KResult<Vec<(&'static str, u64)>> {
    let mut out = Vec::new();
    for i in 0..=NUM_INODES {
        let ino = env.kzalloc(inode::SIZE)?;
        env.ctx
            .write(site!("ext4_boot:magic"), ino + inode::EH_MAGIC, 2, EXT4_EXT_MAGIC)?;
        env.ctx
            .write_u32(site!("ext4_boot:csum"), ino + inode::I_CHECKSUM, csum_of(0))?;
        out.push((inode_symbol(i), ino));
    }
    let sb_lock = env.kzalloc(8)?;
    let journal = env.kzalloc(64)?;
    out.push(("ext4.sb_lock", sb_lock));
    out.push(("ext4.journal", journal));
    Ok(out)
}

/// Symbol name for inode `i` (`NUM_INODES` is the boot-loader inode).
pub fn inode_symbol(i: u8) -> &'static str {
    match i {
        0 => "ext4.inode0",
        1 => "ext4.inode1",
        2 => "ext4.inode2",
        3 => "ext4.inode3",
        _ => "ext4.boot_inode",
    }
}

fn inode_addr(env: &Env<'_>, i: u8) -> u64 {
    env.sym(inode_symbol(i % (NUM_INODES + 1)))
}

/// `open()` on an ext4 file: validate the superblock block size.
pub fn ext4_file_open(env: &Env<'_>, ino: u8) -> KResult<u64> {
    let bdev = env.sym("bdev.dev");
    let _bsz = env
        .ctx
        .read_atomic(site!("ext4_iget:sb_read"), bdev + blkdev::bdev::S_BLOCKSIZE, 4)?;
    let i = inode_addr(env, ino);
    let _sz = env.ctx.read_u32(site!("ext4_iget:size"), i + inode::I_SIZE)?;
    Ok(0)
}

/// `write()` on an ext4 file: extent insert + inode dirtying + block IO.
pub fn ext4_file_write(env: &Env<'_>, ino: u8, off: u64, val: u64) -> KResult<u64> {
    let i = inode_addr(env, ino);
    let lock = i + inode::LOCK;
    env.ctx.lock(lock)?;
    // Inline data write.
    env.ctx
        .write_u8(site!("ext4_ext_insert:data"), i + inode::DATA + off % 16, val & 0xff)?;
    // Extent-header update. Buggy builds clear the magic while rewriting
    // the header (a memmove of the header block), restoring it after.
    let e = env
        .ctx
        .read_atomic(site!("ext4_ext_insert:entries_read"), i + inode::EH_ENTRIES, 2)?;
    if env.config.has_bug(3) {
        env.ctx
            .write_atomic(site!("ext4_ext_insert:magic_clear"), i + inode::EH_MAGIC, 2, 0)?;
        env.ctx.write_atomic(
            site!("ext4_ext_insert:entries"),
            i + inode::EH_ENTRIES,
            2,
            (e + 1) & 0xFFFF,
        )?;
        env.ctx.write_atomic(
            site!("ext4_ext_insert:magic_restore"),
            i + inode::EH_MAGIC,
            2,
            EXT4_EXT_MAGIC,
        )?;
    } else {
        env.ctx.write_atomic(
            site!("ext4_ext_insert:entries"),
            i + inode::EH_ENTRIES,
            2,
            (e + 1) & 0xFFFF,
        )?;
    }
    // ext4_mark_inode_dirty: bump i_blocks and recompute the checksum.
    let b = env
        .ctx
        .read_atomic(site!("ext4_mark_inode_dirty:iblocks_read"), i + inode::I_BLOCKS, 4)?;
    env.ctx.write_atomic(
        site!("ext4_mark_inode_dirty:iblocks"),
        i + inode::I_BLOCKS,
        4,
        (b + 1) & 0xFFFF_FFFF,
    )?;
    env.ctx.write_atomic(
        site!("ext4_mark_inode_dirty:csum"),
        i + inode::I_CHECKSUM,
        4,
        csum_of(b + 1),
    )?;
    let sz = env.ctx.read_u32(site!("ext4_file_write:size"), i + inode::I_SIZE)?;
    env.ctx
        .write_u32(site!("ext4_file_write:size"), i + inode::I_SIZE, sz.max(off % 16 + 1))?;
    env.ctx.unlock(lock)?;
    // Submit the backing block IO (issue #4 lives in this path).
    blkdev::submit_bh(env, off % 16)
}

/// `read()` on an ext4 file: extent check (#3 reader) + data read.
pub fn ext4_file_read(env: &Env<'_>, ino: u8, off: u64) -> KResult<u64> {
    let i = inode_addr(env, ino);
    // ext4_ext_check_inode on the lockless read path.
    let m = env
        .ctx
        .read_atomic(site!("ext4_ext_check_inode:magic"), i + inode::EH_MAGIC, 2)?;
    if m != EXT4_EXT_MAGIC {
        env.ctx.printk(format!(
            "EXT4-fs error (device sda): ext4_ext_check_inode: inode #{ino}: bad header/extent: invalid magic - magic {m:x}"
        ))?;
        return Ok(EIO);
    }
    let _e = env
        .ctx
        .read_atomic(site!("ext4_ext_check_inode:entries"), i + inode::EH_ENTRIES, 2)?;
    env.ctx
        .read_u8(site!("ext4_file_read:data"), i + inode::DATA + off % 16)
}

/// `EXT4_IOC_SWAP_BOOT`: swap `ino`'s blocks with the boot-loader inode,
/// recompute the checksum, and verify (#2).
pub fn swap_inode_boot_loader(env: &Env<'_>, ino: u8) -> KResult<u64> {
    let i = inode_addr(env, ino);
    let boot = env.sym("ext4.boot_inode");
    if i == boot {
        return Ok(EIO);
    }
    let buggy = env.config.has_bug(2);
    // The fix holds both inode locks across the entire swap + verify; the
    // buggy build performs the sequence with no lock at all, so concurrent
    // writers interleave between the checksum computation and the verify.
    if !buggy {
        env.ctx.lock(i + inode::LOCK)?;
        env.ctx.lock(boot + inode::LOCK)?;
    }
    let b1 = env
        .ctx
        .read_atomic(site!("swap_inode_boot_loader:blocks1"), i + inode::I_BLOCKS, 4)?;
    let b2 = env
        .ctx
        .read_atomic(site!("swap_inode_boot_loader:blocks2"), boot + inode::I_BLOCKS, 4)?;
    env.ctx.write_atomic(
        site!("swap_inode_boot_loader:store1"),
        i + inode::I_BLOCKS,
        4,
        b2,
    )?;
    env.ctx.write_atomic(
        site!("swap_inode_boot_loader:store2"),
        boot + inode::I_BLOCKS,
        4,
        b1,
    )?;
    env.ctx.write_atomic(
        site!("swap_inode_boot_loader:csum"),
        i + inode::I_CHECKSUM,
        4,
        csum_of(b2),
    )?;
    env.ctx.write_atomic(
        site!("swap_inode_boot_loader:csum_boot"),
        boot + inode::I_CHECKSUM,
        4,
        csum_of(b1),
    )?;
    // Verify pass (the journal commit re-reads the inode).
    let rb = env
        .ctx
        .read_atomic(site!("swap_inode_boot_loader:verify_blocks"), i + inode::I_BLOCKS, 4)?;
    let rc = env
        .ctx
        .read_atomic(site!("swap_inode_boot_loader:verify_csum"), i + inode::I_CHECKSUM, 4)?;
    let ret = if csum_of(rb) != rc {
        env.ctx.printk(format!(
            "EXT4-fs error (device sda): swap_inode_boot_loader: inode #{ino}: checksum invalid (blocks {rb}, csum {rc:#x})"
        ))?;
        EIO
    } else {
        0
    };
    if !buggy {
        env.ctx.unlock(boot + inode::LOCK)?;
        env.ctx.unlock(i + inode::LOCK)?;
    }
    Ok(ret)
}

/// `mount()` / `ext4_fill_super`: a heavy operation — superblock double
/// fetches, a full inode-table scan, and a journal replay loop.
pub fn ext4_fill_super(env: &Env<'_>) -> KResult<u64> {
    let bdev = env.sym("bdev.dev");
    let sb_lock = env.sym("ext4.sb_lock");
    // Genuine double fetch of the block size: read once to validate, read
    // again to use — no intervening write, same value (df_leader source).
    let bsz1 = env
        .ctx
        .read_atomic(site!("ext4_fill_super:bsz_check"), bdev + blkdev::bdev::S_BLOCKSIZE, 4)?;
    if !(512..=4096).contains(&bsz1) {
        return Ok(EIO);
    }
    let bsz2 = env
        .ctx
        .read_atomic(site!("ext4_fill_super:bsz_use"), bdev + blkdev::bdev::S_BLOCKSIZE, 4)?;
    // Same double-fetch shape for the capacity.
    let _cap1 = env
        .ctx
        .read_atomic(site!("ext4_fill_super:cap_check"), bdev + blkdev::bdev::CAPACITY, 4)?;
    let _cap2 = env
        .ctx
        .read_atomic(site!("ext4_fill_super:cap_use"), bdev + blkdev::bdev::CAPACITY, 4)?;
    env.ctx.lock(sb_lock)?;
    // Inode-table scan.
    let mut live = 0u64;
    for i in 0..=NUM_INODES {
        let ino = inode_addr(env, i);
        let m = env
            .ctx
            .read_atomic(site!("ext4_fill_super:scan_magic"), ino + inode::EH_MAGIC, 2)?;
        let b = env
            .ctx
            .read_atomic(site!("ext4_fill_super:scan_blocks"), ino + inode::I_BLOCKS, 4)?;
        let _c = env
            .ctx
            .read_atomic(site!("ext4_fill_super:scan_csum"), ino + inode::I_CHECKSUM, 4)?;
        if m == EXT4_EXT_MAGIC {
            live += 1;
        }
        // Stage per-inode bookkeeping on the kernel stack (ESP-filter food).
        env.ctx
            .write_u64(site!("ext4_fill_super:stage"), env.ctx.stack_slot(u64::from(i)), b)?;
    }
    // Journal replay: stream the journal area through the superblock scan
    // position — bulk, heavy traffic.
    let journal = env.sym("ext4.journal");
    for j in 0..32u64 {
        let v = env
            .ctx
            .read_u8(site!("jbd2_replay:read"), journal + (j % 64))?;
        env.ctx
            .write_u8(site!("jbd2_replay:write"), journal + ((j + 17) % 64), (v + 1) & 0xff)?;
    }
    env.ctx.unlock(sb_lock)?;
    Ok(live * u64::from(bsz2 == bsz1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{boot as kboot, KernelConfig};
    use sb_vmm::sched::FreeRun;
    use sb_vmm::{Ctx, Executor, ExecReport};

    fn seq_env_run(
        config: KernelConfig,
        f: impl Fn(&Env<'_>) -> KResult<()> + Send + 'static,
    ) -> ExecReport {
        let booted = kboot(config);
        let mut exec = Executor::new(1);
        let kernel = booted.kernel.clone();
        exec.run(
            booted.snapshot.clone(),
            vec![Box::new(move |ctx: &Ctx| {
                let env = Env {
                    ctx,
                    syms: &kernel.syms,
                    config: kernel.config,
                };
                f(&env)
            })],
            &mut FreeRun,
        )
        .report
    }

    #[test]
    fn write_then_read_round_trips() {
        let r = seq_env_run(KernelConfig::v5_3_10(), |env| {
            ext4_file_open(env, 0)?;
            assert_eq!(ext4_file_write(env, 0, 3, 0x5A)?, 0);
            assert_eq!(ext4_file_read(env, 0, 3)?, 0x5A);
            Ok(())
        });
        assert!(r.outcome.is_completed(), "{:?}", r.console);
    }

    #[test]
    fn sequential_swap_boot_loader_is_clean() {
        let r = seq_env_run(KernelConfig::v5_3_10(), |env| {
            ext4_file_write(env, 1, 0, 1)?;
            ext4_file_write(env, 1, 1, 2)?;
            assert_eq!(swap_inode_boot_loader(env, 1)?, 0);
            // Blocks moved to the boot inode; swapping back restores.
            assert_eq!(swap_inode_boot_loader(env, 1)?, 0);
            Ok(())
        });
        assert!(r.outcome.is_completed(), "{:?}", r.console);
        assert!(!r.console.iter().any(|l| l.contains("checksum invalid")));
    }

    #[test]
    fn mount_counts_live_inodes() {
        let r = seq_env_run(KernelConfig::v5_3_10(), |env| {
            assert_eq!(ext4_fill_super(env)?, u64::from(NUM_INODES) + 1);
            Ok(())
        });
        assert!(r.outcome.is_completed(), "{:?}", r.console);
    }

    #[test]
    fn mount_produces_double_fetches() {
        let booted = kboot(KernelConfig::v5_3_10());
        let mut exec = Executor::new(1);
        let kernel = booted.kernel.clone();
        let r = exec.run(
            booted.snapshot.clone(),
            vec![Box::new(move |ctx: &Ctx| {
                let env = Env {
                    ctx,
                    syms: &kernel.syms,
                    config: kernel.config,
                };
                ext4_fill_super(&env)?;
                Ok(())
            })],
            &mut FreeRun,
        );
        let check = sb_vmm::Site::intern("ext4_fill_super:bsz_check");
        let usef = sb_vmm::Site::intern("ext4_fill_super:bsz_use");
        let c = r.report.trace.iter().filter(|a| a.site == check).count();
        let u = r.report.trace.iter().filter(|a| a.site == usef).count();
        assert_eq!((c, u), (1, 1));
    }

    #[test]
    fn checksum_function_is_stable() {
        assert_eq!(csum_of(0), csum_of(0));
        assert_ne!(csum_of(1), csum_of(2));
    }
}
