//! configfs dirents (issue #11 — null-pointer dereference via racy lookup).
//!
//! The real bug: `configfs_lookup()` read `sd->s_element` without holding
//! `configfs_dirent_lock` while a concurrent rmdir tore the dirent down.
//! The fix (commit c42dd069) made the lookup take the dirent lock. Here,
//! `configfs_rmdir` zeroes the item's inner object pointer (under the
//! dirent lock) before detaching the entry; the buggy lookup reads the entry
//! and dereferences the inner pointer with no lock, so it can observe the
//! half-torn-down state and fault on null.

use sb_vmm::ctx::KResult;
use sb_vmm::site;

use crate::{Env, EEXIST, ENOENT};

/// Number of configfs item slots.
pub const NUM_ITEMS: u8 = 4;

/// Per-entry layout in the dirent table (16 bytes each).
pub mod dirent {
    /// Pointer to the attached item (8 bytes).
    pub const ITEM: u64 = 0;
    /// Entry state flags (u32).
    pub const STATE: u64 = 8;
    /// Entry stride.
    pub const STRIDE: u64 = 16;
}

/// `struct config_item` field offsets.
pub mod item {
    /// Magic tag (u32).
    pub const MAGIC: u64 = 0;
    /// Pointer to the inner (type-specific) object (8 bytes) — zeroed
    /// during teardown before the entry is detached.
    pub const INNER: u64 = 8;
    /// Allocation size.
    pub const SIZE: u64 = 32;
}

/// Inner-object layout.
pub mod inner {
    /// Operations tag read by lookup (u32).
    pub const OPS: u64 = 0x10;
    /// Allocation size.
    pub const SIZE: u64 = 32;
}

/// Boots configfs: the dirent table and the two locks.
pub fn boot(env: &Env<'_>) -> KResult<Vec<(&'static str, u64)>> {
    let entries = env.kzalloc(u64::from(NUM_ITEMS) * dirent::STRIDE)?;
    let subsys_mutex = env.kzalloc(8)?;
    let dirent_lock = env.kzalloc(8)?;
    Ok(vec![
        ("configfs.entries", entries),
        ("configfs.subsys_mutex", subsys_mutex),
        ("configfs.dirent_lock", dirent_lock),
    ])
}

fn entry_addr(env: &Env<'_>, i: u8) -> u64 {
    env.sym("configfs.entries") + u64::from(i) * dirent::STRIDE
}

/// `mkdir` on a configfs directory: allocate the item and its inner object,
/// then attach it to the dirent slot.
pub fn configfs_mkdir(env: &Env<'_>, i: u8) -> KResult<u64> {
    let mutex = env.sym("configfs.subsys_mutex");
    env.ctx.with_lock(mutex, || {
        let e = entry_addr(env, i);
        let existing = env.ctx.read_u64(site!("configfs_mkdir:check"), e + dirent::ITEM)?;
        if existing != 0 {
            return Ok(EEXIST);
        }
        let it = env.kzalloc(item::SIZE)?;
        let inn = env.kzalloc(inner::SIZE)?;
        env.ctx
            .write_u32(site!("configfs_mkdir:inner_ops"), inn + inner::OPS, 0xC0F5)?;
        env.ctx
            .write_u32(site!("configfs_mkdir:magic"), it + item::MAGIC, 0xC0)?;
        env.ctx
            .write_u64(site!("configfs_mkdir:inner"), it + item::INNER, inn)?;
        let dl = env.sym("configfs.dirent_lock");
        env.ctx.with_lock(dl, || {
            env.ctx
                .write_u64(site!("configfs_mkdir:attach"), e + dirent::ITEM, it)?;
            env.ctx
                .write_u32(site!("configfs_mkdir:state"), e + dirent::STATE, 1)?;
            Ok(0)
        })
    })
}

/// `rmdir`: tear the item down — zero the inner pointer, detach the entry,
/// free both objects.
pub fn configfs_rmdir(env: &Env<'_>, i: u8) -> KResult<u64> {
    let mutex = env.sym("configfs.subsys_mutex");
    env.ctx.with_lock(mutex, || {
        let e = entry_addr(env, i);
        let it = env.ctx.read_u64(site!("configfs_detach:load"), e + dirent::ITEM)?;
        if it == 0 {
            return Ok(ENOENT);
        }
        let dl = env.sym("configfs.dirent_lock");
        let inn = env.ctx.with_lock(dl, || {
            let inn = env
                .ctx
                .read_u64(site!("configfs_detach:inner_load"), it + item::INNER)?;
            // Teardown order: the inner pointer is cleared while the entry
            // is still reachable — the window the buggy lookup falls into.
            env.ctx
                .write_u64(site!("configfs_detach:zero_inner"), it + item::INNER, 0)?;
            env.ctx
                .write_u64(site!("configfs_detach:clear"), e + dirent::ITEM, 0)?;
            env.ctx
                .write_u32(site!("configfs_detach:state"), e + dirent::STATE, 0)?;
            Ok(inn)
        })?;
        if inn != 0 {
            env.kfree(inn, inner::SIZE)?;
        }
        env.kfree(it, item::SIZE)?;
        Ok(0)
    })
}

/// `configfs_lookup()` — the open path. Buggy builds read the entry and
/// chase `item->inner` without the dirent lock; patched builds hold it.
pub fn configfs_lookup(env: &Env<'_>, i: u8) -> KResult<u64> {
    let e = entry_addr(env, i);
    let buggy = env.config.has_bug(11);
    let dl = env.sym("configfs.dirent_lock");
    if !buggy {
        env.ctx.lock(dl)?;
    }
    let it = env
        .ctx
        .read_u64(site!("configfs_lookup:s_element"), e + dirent::ITEM)?;
    let ret = if it == 0 {
        ENOENT
    } else {
        let inn = env
            .ctx
            .read_u64(site!("configfs_lookup:inner"), it + item::INNER)?;
        // Dereference the inner object's ops tag; a torn-down item has
        // inner == 0 and this faults — the paper's null-pointer oops.
        env.ctx
            .read_u32(site!("configfs_lookup:use"), inn + inner::OPS)?
    };
    if !buggy {
        env.ctx.unlock(dl)?;
    }
    Ok(ret)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{boot, KernelConfig};
    use sb_vmm::sched::FreeRun;
    use sb_vmm::{Ctx, Executor, ExecReport};

    fn seq_env_run(
        config: KernelConfig,
        f: impl Fn(&Env<'_>) -> KResult<()> + Send + 'static,
    ) -> ExecReport {
        let booted = boot(config);
        let mut exec = Executor::new(1);
        let kernel = booted.kernel.clone();
        exec.run(
            booted.snapshot.clone(),
            vec![Box::new(move |ctx: &Ctx| {
                let env = Env {
                    ctx,
                    syms: &kernel.syms,
                    config: kernel.config,
                };
                f(&env)
            })],
            &mut FreeRun,
        )
        .report
    }

    #[test]
    fn mkdir_lookup_rmdir_cycle() {
        let r = seq_env_run(KernelConfig::v5_12_rc3(), |env| {
            assert_eq!(configfs_lookup(env, 0)?, ENOENT);
            assert_eq!(configfs_mkdir(env, 0)?, 0);
            assert_eq!(configfs_lookup(env, 0)?, 0xC0F5);
            assert_eq!(configfs_rmdir(env, 0)?, 0);
            assert_eq!(configfs_lookup(env, 0)?, ENOENT);
            Ok(())
        });
        assert!(r.outcome.is_completed(), "{:?}", r.console);
    }

    #[test]
    fn duplicate_mkdir_fails() {
        let r = seq_env_run(KernelConfig::v5_12_rc3(), |env| {
            assert_eq!(configfs_mkdir(env, 1)?, 0);
            assert_eq!(configfs_mkdir(env, 1)?, EEXIST);
            Ok(())
        });
        assert!(r.outcome.is_completed());
    }

    #[test]
    fn rmdir_of_absent_item_is_enoent() {
        let r = seq_env_run(KernelConfig::v5_12_rc3(), |env| {
            assert_eq!(configfs_rmdir(env, 2)?, ENOENT);
            Ok(())
        });
        assert!(r.outcome.is_completed());
    }

    #[test]
    fn patched_lookup_holds_dirent_lock() {
        // Functional smoke for the fixed path.
        let r = seq_env_run(KernelConfig::v5_12_rc3().patched(), |env| {
            configfs_mkdir(env, 3)?;
            assert_eq!(configfs_lookup(env, 3)?, 0xC0F5);
            Ok(())
        });
        assert!(r.outcome.is_completed());
    }
}
