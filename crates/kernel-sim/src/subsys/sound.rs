//! ALSA control core (issue #15).
//!
//! `snd_ctl_elem_add()` manages the per-card user-control memory account
//! (`user_ctl_count`) with a plain read-check-increment sequence that, in
//! buggy builds, runs without the control lock: two concurrent adds can both
//! pass the limit check and both increment from the same stale value. The
//! fix (Takashi Iwai's patch) moves the accounting under `card->controls_rwsem`.

use sb_vmm::ctx::KResult;
use sb_vmm::site;

use crate::{errno, Env};

/// Maximum user controls per card.
pub const MAX_USER_CTLS: u64 = 8;

/// Card field offsets.
pub mod card {
    /// User-control count (u32).
    pub const USER_CTL_COUNT: u64 = 0;
    /// Head of the element list (8 bytes).
    pub const ELEMS: u64 = 8;
}

/// Boots the sound card.
pub fn boot(env: &Env<'_>) -> KResult<Vec<(&'static str, u64)>> {
    let c = env.kzalloc(64)?;
    let lock = env.kzalloc(8)?;
    Ok(vec![("snd.card", c), ("snd.ctl_lock", lock)])
}

/// `SNDRV_CTL_IOCTL_ELEM_ADD` (#15): allocate a user control element and
/// account it.
pub fn snd_ctl_elem_add(env: &Env<'_>, arg: u64) -> KResult<u64> {
    let c = env.sym("snd.card");
    let buggy = env.config.has_bug(15);
    let lock = env.sym("snd.ctl_lock");
    if !buggy {
        env.ctx.lock(lock)?;
    }
    let count = env
        .ctx
        .read_u32(site!("snd_ctl_elem_add:count_read"), c + card::USER_CTL_COUNT)?;
    let ret = if count >= MAX_USER_CTLS {
        errno(12) // ENOMEM
    } else {
        let elem = env.kzalloc(32)?;
        env.ctx
            .write_u32(site!("snd_ctl_elem_add:elem_id"), elem, 0x100 + arg)?;
        // Link at the list head.
        let head = env.ctx.read_u64(site!("snd_ctl_elem_add:head"), c + card::ELEMS)?;
        env.ctx
            .write_u64(site!("snd_ctl_elem_add:elem_next"), elem + 8, head)?;
        env.ctx
            .write_u64(site!("snd_ctl_elem_add:link"), c + card::ELEMS, elem)?;
        // The racy memory-size accounting.
        env.ctx.write_u32(
            site!("snd_ctl_elem_add:count_write"),
            c + card::USER_CTL_COUNT,
            count + 1,
        )?;
        0
    };
    if !buggy {
        env.ctx.unlock(lock)?;
    }
    Ok(ret)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{boot as kboot, KernelConfig};
    use sb_vmm::sched::FreeRun;
    use sb_vmm::{Ctx, Executor};

    #[test]
    fn add_respects_limit_sequentially() {
        let booted = kboot(KernelConfig::v5_12_rc3());
        let mut exec = Executor::new(1);
        let kernel = booted.kernel.clone();
        let r = exec.run(
            booted.snapshot.clone(),
            vec![Box::new(move |ctx: &Ctx| {
                let env = Env {
                    ctx,
                    syms: &kernel.syms,
                    config: kernel.config,
                };
                for i in 0..MAX_USER_CTLS {
                    assert_eq!(snd_ctl_elem_add(&env, i)?, 0);
                }
                assert_eq!(snd_ctl_elem_add(&env, 99)?, errno(12));
                Ok(())
            })],
            &mut FreeRun,
        );
        assert!(r.report.outcome.is_completed(), "{:?}", r.report.console);
    }
}
