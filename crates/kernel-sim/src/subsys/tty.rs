//! TTY / serial port (issue #14).
//!
//! `tty_port_open()` sets `ASYNCB_INITIALIZED` in `port->flags` under the
//! port mutex, while `uart_do_autoconfig()` (TIOCSERCONFIG) rewrites the
//! same flags word under the *uart* port lock — two different locks, so the
//! read-modify-write pairs interleave and flag updates are lost. The patched
//! build routes autoconfig through the port mutex.

use sb_vmm::ctx::KResult;
use sb_vmm::site;

use crate::Env;

/// Port flag bits.
pub mod flags {
    /// Set by `tty_port_open`.
    pub const ASYNCB_INITIALIZED: u64 = 1;
    /// Set by `uart_do_autoconfig`.
    pub const ASYNCB_AUTOCONFIG: u64 = 2;
}

/// Port field offsets.
pub mod port {
    /// Flags word (u32).
    pub const FLAGS: u64 = 0;
    /// Open count (u32).
    pub const COUNT: u64 = 4;
}

/// Boots the TTY: one port and its two locks.
pub fn boot(env: &Env<'_>) -> KResult<Vec<(&'static str, u64)>> {
    let p = env.kzalloc(64)?;
    let port_lock = env.kzalloc(8)?;
    let uart_lock = env.kzalloc(8)?;
    Ok(vec![
        ("tty.port", p),
        ("tty.port_lock", port_lock),
        ("tty.uart_lock", uart_lock),
    ])
}

/// `open()` on the TTY (#14 one side).
pub fn tty_port_open(env: &Env<'_>) -> KResult<u64> {
    let p = env.sym("tty.port");
    let lock = env.sym("tty.port_lock");
    env.ctx.with_lock(lock, || {
        let f = env.ctx.read_u32(site!("tty_port_open:flags_read"), p + port::FLAGS)?;
        env.ctx.write_u32(
            site!("tty_port_open:flags_set"),
            p + port::FLAGS,
            f | flags::ASYNCB_INITIALIZED,
        )?;
        let c = env.ctx.read_u32(site!("tty_port_open:count"), p + port::COUNT)?;
        env.ctx
            .write_u32(site!("tty_port_open:count"), p + port::COUNT, c + 1)?;
        Ok(0)
    })
}

/// `close()` on the TTY.
pub fn tty_port_close(env: &Env<'_>) -> KResult<u64> {
    let p = env.sym("tty.port");
    let lock = env.sym("tty.port_lock");
    env.ctx.with_lock(lock, || {
        let c = env.ctx.read_u32(site!("tty_port_close:count"), p + port::COUNT)?;
        env.ctx.write_u32(
            site!("tty_port_close:count"),
            p + port::COUNT,
            c.saturating_sub(1),
        )?;
        Ok(0)
    })
}

/// `TIOCSERCONFIG` (#14 other side): rewrites the flags under a different
/// lock in buggy builds.
pub fn uart_do_autoconfig(env: &Env<'_>) -> KResult<u64> {
    let p = env.sym("tty.port");
    let lock = if env.config.has_bug(14) {
        env.sym("tty.uart_lock")
    } else {
        env.sym("tty.port_lock")
    };
    env.ctx.with_lock(lock, || {
        let f = env
            .ctx
            .read_u32(site!("uart_do_autoconfig:read"), p + port::FLAGS)?;
        // Probe the hardware (a few harmless reads), then publish.
        for i in 0..3u64 {
            env.ctx
                .read_u32(site!("uart_do_autoconfig:probe"), p + port::COUNT + (i % 2) * 4)?;
        }
        env.ctx.write_u32(
            site!("uart_do_autoconfig:set"),
            p + port::FLAGS,
            f | flags::ASYNCB_AUTOCONFIG,
        )?;
        Ok(0)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{boot as kboot, KernelConfig};
    use sb_vmm::sched::FreeRun;
    use sb_vmm::{Ctx, Executor};

    #[test]
    fn open_and_autoconfig_set_their_bits() {
        let booted = kboot(KernelConfig::v5_12_rc3());
        let mut exec = Executor::new(1);
        let kernel = booted.kernel.clone();
        let r = exec.run(
            booted.snapshot.clone(),
            vec![Box::new(move |ctx: &Ctx| {
                let env = Env {
                    ctx,
                    syms: &kernel.syms,
                    config: kernel.config,
                };
                tty_port_open(&env)?;
                uart_do_autoconfig(&env)?;
                let p = env.sym("tty.port");
                let f = env.ctx.read_u32(site!("test:flags"), p + port::FLAGS)?;
                assert_eq!(f, flags::ASYNCB_INITIALIZED | flags::ASYNCB_AUTOCONFIG);
                tty_port_close(&env)?;
                let c = env.ctx.read_u32(site!("test:count"), p + port::COUNT)?;
                assert_eq!(c, 0);
                Ok(())
            })],
            &mut FreeRun,
        );
        assert!(r.report.outcome.is_completed(), "{:?}", r.report.console);
    }
}
