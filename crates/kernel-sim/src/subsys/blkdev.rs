//! Block device core (issues #4, #5, #6).
//!
//! * **#4** — the IO submission path checks the device capacity, writes the
//!   data, and the completion path (`blk_update_request`) re-checks it.
//!   A concurrent capacity shrink between check and completion yields
//!   "Blk_update_request: IO error" — an atomicity violation across an
//!   entire request lifetime.
//! * **#5** — `blkdev_ioctl(BLKRASET)` stores the readahead page count
//!   under `bd_mutex`; `generic_fadvise()` reads it with no lock.
//! * **#6** — `set_blocksize()` stores the logical block size under
//!   `bd_mutex`; `do_mpage_readpage()` reads it mid-readpage with no lock.

use sb_vmm::ctx::KResult;
use sb_vmm::site;

use crate::{Env, EIO};

/// Block-device field offsets.
pub mod bdev {
    /// Logical block size (u32).
    pub const S_BLOCKSIZE: u64 = 0;
    /// Capacity in sectors (u32).
    pub const CAPACITY: u64 = 4;
    /// Readahead page count (u32).
    pub const RA_PAGES: u64 = 8;
    /// In-flight request counter (u32).
    pub const IN_FLIGHT: u64 = 12;
}

/// Boot-time capacity in sectors.
pub const BOOT_CAPACITY: u64 = 16;

/// Boots the block device: device struct, disk area, and `bd_mutex`.
pub fn boot(env: &Env<'_>) -> KResult<Vec<(&'static str, u64)>> {
    let d = env.kzalloc(64)?;
    env.ctx
        .write_u32(site!("blkdev_boot:bsz"), d + bdev::S_BLOCKSIZE, 512)?;
    env.ctx
        .write_u32(site!("blkdev_boot:cap"), d + bdev::CAPACITY, BOOT_CAPACITY)?;
    env.ctx
        .write_u32(site!("blkdev_boot:ra"), d + bdev::RA_PAGES, 32)?;
    let disk = env.kzalloc(64)?;
    let bd_mutex = env.kzalloc(8)?;
    Ok(vec![
        ("bdev.dev", d),
        ("bdev.disk", disk),
        ("bdev.bd_mutex", bd_mutex),
    ])
}

/// `open()` on the block device.
pub fn blkdev_open(env: &Env<'_>) -> KResult<u64> {
    let d = env.sym("bdev.dev");
    env.ctx
        .read_atomic(site!("blkdev_open:bsz"), d + bdev::S_BLOCKSIZE, 4)?;
    Ok(0)
}

/// `BLKBSZSET`: store the logical block size (#6 writer).
pub fn set_blocksize(env: &Env<'_>, arg: u64) -> KResult<u64> {
    let d = env.sym("bdev.dev");
    let mutex = env.sym("bdev.bd_mutex");
    let bsz = 512u64 << (arg % 4);
    env.ctx.with_lock(mutex, || {
        if env.config.has_bug(6) {
            env.ctx
                .write_u32(site!("set_blocksize:store"), d + bdev::S_BLOCKSIZE, bsz)?;
        } else {
            env.ctx
                .write_atomic(site!("set_blocksize:store"), d + bdev::S_BLOCKSIZE, 4, bsz)?;
        }
        Ok(0)
    })
}

/// `read()` on the block device: `do_mpage_readpage` (#6 reader).
pub fn do_mpage_readpage(env: &Env<'_>, off: u64) -> KResult<u64> {
    let d = env.sym("bdev.dev");
    let bsz = if env.config.has_bug(6) {
        env.ctx
            .read_u32(site!("do_mpage_readpage:blocksize"), d + bdev::S_BLOCKSIZE)?
    } else {
        // The fix serializes readers against set_blocksize via bd_mutex.
        let mutex = env.sym("bdev.bd_mutex");
        env.ctx.with_lock(mutex, || {
            env.ctx
                .read_atomic(site!("do_mpage_readpage:blocksize"), d + bdev::S_BLOCKSIZE, 4)
        })?
    };
    let disk = env.sym("bdev.disk");
    // Map the page's first block and read it from the disk area.
    let block = (off * (bsz / 512)) % 64;
    env.ctx.read_u8(site!("do_mpage_readpage:disk"), disk + block)
}

/// `BLKRASET`: store the readahead count under `bd_mutex` (#5 writer).
pub fn blkdev_ioctl_ra_set(env: &Env<'_>, arg: u64) -> KResult<u64> {
    let d = env.sym("bdev.dev");
    let mutex = env.sym("bdev.bd_mutex");
    env.ctx.with_lock(mutex, || {
        if env.config.has_bug(5) {
            env.ctx
                .write_u32(site!("blkdev_ioctl:ra_set"), d + bdev::RA_PAGES, 1 + arg % 64)?;
        } else {
            env.ctx.write_atomic(
                site!("blkdev_ioctl:ra_set"),
                d + bdev::RA_PAGES,
                4,
                1 + arg % 64,
            )?;
        }
        Ok(0)
    })
}

/// `posix_fadvise()`: `generic_fadvise` reads the readahead count with no
/// lock (#5 reader) and touches that many disk bytes.
pub fn generic_fadvise(env: &Env<'_>) -> KResult<u64> {
    let d = env.sym("bdev.dev");
    let ra = if env.config.has_bug(5) {
        env.ctx
            .read_u32(site!("generic_fadvise:ra_read"), d + bdev::RA_PAGES)?
    } else {
        env.ctx
            .read_atomic(site!("generic_fadvise:ra_read"), d + bdev::RA_PAGES, 4)?
    };
    let disk = env.sym("bdev.disk");
    for i in 0..ra.min(4) {
        env.ctx
            .read_u8(site!("generic_fadvise:readahead"), disk + (i % 64))?;
    }
    Ok(ra)
}

/// `BLKSETSIZE`-style capacity change (#4 writer).
pub fn blkdev_set_capacity(env: &Env<'_>, arg: u64) -> KResult<u64> {
    let d = env.sym("bdev.dev");
    let mutex = env.sym("bdev.bd_mutex");
    env.ctx.with_lock(mutex, || {
        env.ctx.write_atomic(
            site!("blkdev_set_capacity:store"),
            d + bdev::CAPACITY,
            4,
            1 + arg % BOOT_CAPACITY,
        )?;
        Ok(0)
    })
}

/// `write()` directly on the block device.
pub fn blkdev_direct_write(env: &Env<'_>, off: u64, val: u64) -> KResult<u64> {
    let disk = env.sym("bdev.disk");
    env.ctx
        .write_u8(site!("blkdev_direct_write:disk"), disk + off % 64, val & 0xff)?;
    submit_bh(env, off % BOOT_CAPACITY)
}

/// The shared IO submission path (#4): capacity check, data transfer,
/// completion re-check. Patched builds hold `bd_mutex` across the request,
/// making check and completion atomic against capacity changes.
pub fn submit_bh(env: &Env<'_>, sector: u64) -> KResult<u64> {
    let d = env.sym("bdev.dev");
    let buggy = env.config.has_bug(4);
    let mutex = env.sym("bdev.bd_mutex");
    if !buggy {
        env.ctx.lock(mutex)?;
    }
    let cap = env
        .ctx
        .read_atomic(site!("submit_bh:capacity_check"), d + bdev::CAPACITY, 4)?;
    let ret = if sector >= cap {
        // Cleanly rejected before dispatch.
        EIO
    } else {
        // Dispatch: account the in-flight request and move the data.
        let inflight = env
            .ctx
            .read_atomic(site!("submit_bh:inflight"), d + bdev::IN_FLIGHT, 4)?;
        env.ctx
            .write_atomic(site!("submit_bh:inflight"), d + bdev::IN_FLIGHT, 4, inflight + 1)?;
        let disk = env.sym("bdev.disk");
        env.ctx
            .write_u8(site!("submit_bh:transfer"), disk + sector % 64, (sector + 1) & 0xff)?;
        // Completion: blk_update_request re-validates the request against
        // the (possibly changed) capacity.
        let cap2 = env
            .ctx
            .read_atomic(site!("blk_update_request:recheck"), d + bdev::CAPACITY, 4)?;
        let inflight2 = env
            .ctx
            .read_atomic(site!("submit_bh:inflight"), d + bdev::IN_FLIGHT, 4)?;
        env.ctx.write_atomic(
            site!("submit_bh:inflight"),
            d + bdev::IN_FLIGHT,
            4,
            inflight2.saturating_sub(1),
        )?;
        if sector >= cap2 {
            env.ctx.printk(format!(
                "Blk_update_request: IO error, dev sda, sector {sector}"
            ))?;
            EIO
        } else {
            0
        }
    };
    if !buggy {
        env.ctx.unlock(mutex)?;
    }
    Ok(ret)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{boot as kboot, KernelConfig};
    use sb_vmm::sched::FreeRun;
    use sb_vmm::{Ctx, Executor, ExecReport};

    fn seq_env_run(
        config: KernelConfig,
        f: impl Fn(&Env<'_>) -> KResult<()> + Send + 'static,
    ) -> ExecReport {
        let booted = kboot(config);
        let mut exec = Executor::new(1);
        let kernel = booted.kernel.clone();
        exec.run(
            booted.snapshot.clone(),
            vec![Box::new(move |ctx: &Ctx| {
                let env = Env {
                    ctx,
                    syms: &kernel.syms,
                    config: kernel.config,
                };
                f(&env)
            })],
            &mut FreeRun,
        )
        .report
    }

    #[test]
    fn blocksize_updates_are_visible() {
        let r = seq_env_run(KernelConfig::v5_3_10(), |env| {
            set_blocksize(env, 2)?; // 2048
            let v = do_mpage_readpage(env, 1)?;
            let _ = v;
            let d = env.sym("bdev.dev");
            let bsz = env.ctx.read_u32(site!("test:bsz"), d + bdev::S_BLOCKSIZE)?;
            assert_eq!(bsz, 2048);
            Ok(())
        });
        assert!(r.outcome.is_completed(), "{:?}", r.console);
    }

    #[test]
    fn io_past_capacity_is_rejected_cleanly_in_sequence() {
        let r = seq_env_run(KernelConfig::v5_3_10(), |env| {
            blkdev_set_capacity(env, 3)?; // 4 sectors
            assert_eq!(submit_bh(env, 10)?, EIO);
            assert_eq!(submit_bh(env, 2)?, 0);
            Ok(())
        });
        assert!(r.outcome.is_completed());
        // Sequentially the window cannot open; no console IO error.
        assert!(!r.console.iter().any(|l| l.contains("IO error")));
    }

    #[test]
    fn fadvise_reads_configured_readahead() {
        let r = seq_env_run(KernelConfig::v5_3_10(), |env| {
            blkdev_ioctl_ra_set(env, 7)?; // 8 pages
            assert_eq!(generic_fadvise(env)?, 8);
            Ok(())
        });
        assert!(r.outcome.is_completed());
    }
}
