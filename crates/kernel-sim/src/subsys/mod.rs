//! Kernel subsystems.
//!
//! Each module models one Linux subsystem involved in a Table 2 finding:
//! global state lives in guest memory (registered in the symbol table at
//! boot), and handlers perform traced, schedulable accesses. Buggy code
//! paths are gated on [`crate::KernelConfig::has_bug`], so the same source
//! builds the "5.3.10", "5.12-rc3", and fully patched kernels.

pub mod blkdev;
pub mod configfs;
pub mod ext4;
pub mod fib6;
pub mod l2tp;
pub mod netdev;
pub mod packet;
pub mod rhash;
pub mod slab;
pub mod sound;
pub mod tcp_cong;
pub mod tty;

use sb_vmm::ctx::{Ctx, KResult};

use crate::prog::{Domain, IoctlCmd, Path, SockOpt, Syscall};
use crate::{Env, FdKind, FdObj, KernelConfig, ProcState, Symbols, EBADF, EINVAL};

/// Boots every subsystem in a fixed order, so global addresses are
/// deterministic across boots of the same configuration.
pub fn boot_all(ctx: &Ctx, syms: &mut Symbols, config: KernelConfig) -> KResult<()> {
    // The slab-statistics cells must exist before anything calls
    // `Env::kzalloc`, so slab boots first.
    slab::boot(ctx, syms)?;
    let env = Env {
        ctx,
        syms,
        config,
    };
    // `Env` borrows `syms` immutably; subsystems therefore allocate first
    // and register after, via the returned symbol lists.
    let mut pending: Vec<(&'static str, u64)> = Vec::new();
    pending.extend(netdev::boot(&env)?);
    pending.extend(packet::boot(&env)?);
    pending.extend(fib6::boot(&env)?);
    pending.extend(tcp_cong::boot(&env)?);
    pending.extend(l2tp::boot(&env)?);
    pending.extend(rhash::boot(&env)?);
    pending.extend(configfs::boot(&env)?);
    pending.extend(ext4::boot(&env)?);
    pending.extend(blkdev::boot(&env)?);
    pending.extend(tty::boot(&env)?);
    pending.extend(sound::boot(&env)?);
    for (name, addr) in pending {
        syms.register(name, addr);
    }
    Ok(())
}

/// Routes one syscall to its subsystem handler.
pub fn dispatch(env: &Env<'_>, proc: &mut ProcState, call: &Syscall) -> KResult<u64> {
    match call {
        Syscall::Socket { domain } => {
            let sk = match domain {
                Domain::Inet => tcp_cong::inet_socket(env)?,
                Domain::Packet => packet::packet_socket(env)?,
                Domain::RawV6 => netdev::rawv6_socket(env)?,
                Domain::L2tp => l2tp::l2tp_socket(env)?,
            };
            Ok(proc.install_fd(FdObj {
                kind: FdKind::Socket(*domain),
                addr: sk,
            }))
        }
        Syscall::Connect { sock, tunnel_id } => match proc.resolve_fd(*sock) {
            Some(FdObj {
                kind: FdKind::Socket(Domain::L2tp),
                addr,
            }) => l2tp::pppol2tp_connect(env, addr, u64::from(*tunnel_id)),
            Some(FdObj {
                kind: FdKind::Socket(Domain::Inet),
                addr,
            }) => fib6::inet_connect(env, addr),
            Some(FdObj {
                kind: FdKind::Socket(_),
                ..
            }) => Ok(0),
            _ => Ok(EBADF),
        },
        Syscall::Sendmsg { sock, len } => match proc.resolve_fd(*sock) {
            Some(FdObj {
                kind: FdKind::Socket(Domain::L2tp),
                addr,
            }) => l2tp::l2tp_sendmsg(env, addr),
            Some(FdObj {
                kind: FdKind::Socket(Domain::RawV6),
                addr,
            }) => netdev::rawv6_send_hdrinc(env, addr, u64::from(*len)),
            Some(FdObj {
                kind: FdKind::Socket(Domain::Packet),
                addr,
            }) => packet::packet_sendmsg(env, addr, u64::from(*len)),
            Some(FdObj {
                kind: FdKind::Socket(Domain::Inet),
                addr,
            }) => tcp_cong::inet_sendmsg(env, addr),
            _ => Ok(EBADF),
        },
        Syscall::Setsockopt { sock, opt, val } => match (proc.resolve_fd(*sock), opt) {
            (
                Some(FdObj {
                    kind: FdKind::Socket(Domain::Packet),
                    addr,
                }),
                SockOpt::PacketFanout,
            ) => packet::fanout_add(env, addr),
            (
                Some(FdObj {
                    kind: FdKind::Socket(Domain::Inet),
                    addr,
                }),
                SockOpt::TcpCongestion,
            ) => tcp_cong::set_default_congestion_control(env, addr, u64::from(*val)),
            (Some(_), _) => Ok(EINVAL),
            _ => Ok(EBADF),
        },
        Syscall::Getsockname { sock } => match proc.resolve_fd(*sock) {
            Some(FdObj {
                kind: FdKind::Socket(Domain::Packet),
                addr,
            }) => packet::packet_getname(env, addr),
            Some(FdObj {
                kind: FdKind::Socket(_),
                ..
            }) => Ok(0),
            _ => Ok(EBADF),
        },
        Syscall::Ioctl { fd, cmd, arg } => {
            let arg = u64::from(*arg);
            let fdo = proc.resolve_fd(*fd);
            match cmd {
                IoctlCmd::SiocSifHwAddr => match fdo {
                    Some(FdObj {
                        kind: FdKind::Socket(_),
                        ..
                    }) => netdev::eth_commit_mac_addr_change(env, arg),
                    _ => Ok(EBADF),
                },
                IoctlCmd::SiocGifHwAddr => match fdo {
                    Some(FdObj {
                        kind: FdKind::Socket(_),
                        ..
                    }) => netdev::dev_ifsioc_locked(env),
                    _ => Ok(EBADF),
                },
                IoctlCmd::EthtoolSMac => match fdo {
                    Some(FdObj {
                        kind: FdKind::Socket(_),
                        ..
                    }) => netdev::e1000_set_mac(env, arg),
                    _ => Ok(EBADF),
                },
                IoctlCmd::SiocSifMtu => match fdo {
                    Some(FdObj {
                        kind: FdKind::Socket(_),
                        ..
                    }) => netdev::dev_set_mtu(env, arg),
                    _ => Ok(EBADF),
                },
                IoctlCmd::SiocAddRt => match fdo {
                    Some(FdObj {
                        kind: FdKind::Socket(_),
                        ..
                    }) => fib6::fib6_clean_node(env),
                    _ => Ok(EBADF),
                },
                IoctlCmd::BlkBszSet => match fdo {
                    Some(FdObj {
                        kind: FdKind::BlockDev,
                        ..
                    }) => blkdev::set_blocksize(env, arg),
                    _ => Ok(EBADF),
                },
                IoctlCmd::BlkRaSet => match fdo {
                    Some(FdObj {
                        kind: FdKind::BlockDev,
                        ..
                    }) => blkdev::blkdev_ioctl_ra_set(env, arg),
                    _ => Ok(EBADF),
                },
                IoctlCmd::BlkSetSize => match fdo {
                    Some(FdObj {
                        kind: FdKind::BlockDev,
                        ..
                    }) => blkdev::blkdev_set_capacity(env, arg),
                    _ => Ok(EBADF),
                },
                IoctlCmd::Ext4SwapBoot => match fdo {
                    Some(FdObj {
                        kind: FdKind::File(ino),
                        ..
                    }) => ext4::swap_inode_boot_loader(env, ino),
                    _ => Ok(EBADF),
                },
                IoctlCmd::TiocSerConfig => match fdo {
                    Some(FdObj {
                        kind: FdKind::Tty,
                        ..
                    }) => tty::uart_do_autoconfig(env),
                    _ => Ok(EBADF),
                },
                IoctlCmd::SndCtlElemAdd => match fdo {
                    Some(FdObj {
                        kind: FdKind::SndCtl,
                        ..
                    }) => sound::snd_ctl_elem_add(env, arg),
                    _ => Ok(EBADF),
                },
            }
        }
        Syscall::Open { path } => match path {
            Path::Ext4File(n) => {
                let n = n % ext4::NUM_INODES;
                ext4::ext4_file_open(env, n)?;
                Ok(proc.install_fd(FdObj {
                    kind: FdKind::File(n),
                    addr: 0,
                }))
            }
            Path::BlockDev => {
                blkdev::blkdev_open(env)?;
                Ok(proc.install_fd(FdObj {
                    kind: FdKind::BlockDev,
                    addr: 0,
                }))
            }
            Path::Tty => {
                tty::tty_port_open(env)?;
                Ok(proc.install_fd(FdObj {
                    kind: FdKind::Tty,
                    addr: 0,
                }))
            }
            Path::SndCtl => Ok(proc.install_fd(FdObj {
                kind: FdKind::SndCtl,
                addr: 0,
            })),
            Path::Configfs(i) => {
                let i = i % configfs::NUM_ITEMS;
                let r = configfs::configfs_lookup(env, i)?;
                if r == crate::ENOENT {
                    Ok(r)
                } else {
                    Ok(proc.install_fd(FdObj {
                        kind: FdKind::Configfs(i),
                        addr: 0,
                    }))
                }
            }
        },
        Syscall::Close { fd } => {
            let Some(obj) = proc.resolve_fd(*fd) else {
                return Ok(EBADF);
            };
            // Invalidate the descriptor.
            if let Some(v) = proc.resolve_val(*fd) {
                if let Ok(i) = usize::try_from(v) {
                    if i < proc.fds.len() {
                        proc.fds[i] = None;
                    }
                }
            }
            match obj.kind {
                FdKind::Socket(Domain::Packet) => packet::fanout_unlink(env, obj.addr),
                FdKind::Tty => tty::tty_port_close(env),
                _ => Ok(0),
            }
        }
        Syscall::Read { fd, off } => match proc.resolve_fd(*fd) {
            Some(FdObj {
                kind: FdKind::File(ino),
                ..
            }) => ext4::ext4_file_read(env, ino, u64::from(*off)),
            Some(FdObj {
                kind: FdKind::BlockDev,
                ..
            }) => blkdev::do_mpage_readpage(env, u64::from(*off)),
            Some(_) => Ok(0),
            _ => Ok(EBADF),
        },
        Syscall::Write { fd, off, val } => match proc.resolve_fd(*fd) {
            Some(FdObj {
                kind: FdKind::File(ino),
                ..
            }) => ext4::ext4_file_write(env, ino, u64::from(*off), u64::from(*val)),
            Some(FdObj {
                kind: FdKind::BlockDev,
                ..
            }) => blkdev::blkdev_direct_write(env, u64::from(*off), u64::from(*val)),
            Some(_) => Ok(0),
            _ => Ok(EBADF),
        },
        Syscall::Fadvise { fd } => match proc.resolve_fd(*fd) {
            Some(FdObj {
                kind: FdKind::File(_) | FdKind::BlockDev,
                ..
            }) => blkdev::generic_fadvise(env),
            Some(_) => Ok(EINVAL),
            _ => Ok(EBADF),
        },
        Syscall::Msgget { key } => rhash::msgget(env, u64::from(*key)),
        Syscall::Msgctl { id, cmd } => {
            let Some(id) = proc.resolve_val(*id) else {
                return Ok(EINVAL);
            };
            rhash::msgctl(env, id, *cmd)
        }
        Syscall::Msgsnd { id, mtype, val } => {
            let Some(id) = proc.resolve_val(*id) else {
                return Ok(EINVAL);
            };
            rhash::msgsnd(env, id, u64::from(*mtype), u64::from(*val))
        }
        Syscall::Msgrcv { id, mtype } => {
            let Some(id) = proc.resolve_val(*id) else {
                return Ok(EINVAL);
            };
            rhash::msgrcv(env, id, u64::from(*mtype))
        }
        Syscall::Mkdir { item } => configfs::configfs_mkdir(env, item % configfs::NUM_ITEMS),
        Syscall::Rmdir { item } => configfs::configfs_rmdir(env, item % configfs::NUM_ITEMS),
        Syscall::Mount => ext4::ext4_fill_super(env),
    }
}
