//! The network device core: MAC address and MTU state (issues #7, #8, #9).
//!
//! * **#9** — `eth_commit_mac_addr_change()` copies the new MAC into
//!   `dev->dev_addr` byte by byte while holding the RTNL lock;
//!   `dev_ifsioc_locked()` copies it out under only `rcu_read_lock()`. The
//!   two paths use *different* locks, so the reader can observe a torn,
//!   half-updated MAC — exactly the harmful race of Figure 3.
//! * **#8** — `e1000_set_mac()` writes the same bytes under the driver's own
//!   lock while `packet_getname()` (in `packet.rs`) reads with no lock.
//! * **#7** — `__dev_set_mtu()` stores the MTU with a plain unlocked write
//!   while `rawv6_send_hdrinc()` reads it mid-transmission.
//!
//! In patched builds all writers and readers share the RTNL lock.

use sb_vmm::ctx::KResult;
use sb_vmm::site;

use crate::Env;

/// Byte length of a MAC address.
pub const ETH_ALEN: u64 = 6;

/// `struct net_device` field offsets (in the simulated dev0 object).
pub mod dev {
    /// MAC address bytes (6 bytes at offset 0).
    pub const DEV_ADDR: u64 = 0;
    /// MTU (u32).
    pub const MTU: u64 = 8;
    /// Transmit counter (u64), touched by senders.
    pub const TX_PACKETS: u64 = 16;
}

/// Boots the device core: one NIC with a default MAC and MTU.
pub fn boot(env: &Env<'_>) -> KResult<Vec<(&'static str, u64)>> {
    let d = env.kzalloc(64)?;
    // Default MAC 52:54:00:12:34:56 (QEMU's classic default), default MTU
    // 1500.
    let mac = [0x52u64, 0x54, 0x00, 0x12, 0x34, 0x56];
    for (i, b) in mac.iter().enumerate() {
        env.ctx
            .write_u8(site!("netdev_boot:mac"), d + dev::DEV_ADDR + i as u64, *b)?;
    }
    env.ctx
        .write_u32(site!("netdev_boot:mtu"), d + dev::MTU, 1500)?;
    let rtnl = env.kzalloc(8)?;
    let ethtool = env.kzalloc(8)?;
    Ok(vec![
        ("net.dev0", d),
        ("net.rtnl_lock", rtnl),
        ("net.ethtool_lock", ethtool),
    ])
}

/// Creates a raw IPv6 socket object.
pub fn rawv6_socket(env: &Env<'_>) -> KResult<u64> {
    let sk = env.kzalloc(64)?;
    env.ctx.write_u32(site!("rawv6_socket:init"), sk, 10)?; // AF_INET6
    Ok(sk)
}

/// `SIOCSIFHWADDR` path: commit a new MAC under the RTNL lock (#9 writer).
pub fn eth_commit_mac_addr_change(env: &Env<'_>, seed: u64) -> KResult<u64> {
    let d = env.sym("net.dev0");
    let rtnl = env.sym("net.rtnl_lock");
    // In builds where the MAC races (#8/#9) exist, the copy is a plain
    // per-byte memcpy; fixed builds use marked stores so the lockless
    // readers pair safely.
    let plain = env.config.has_bug(8) || env.config.has_bug(9);
    env.ctx.with_lock(rtnl, || {
        // memcpy(dev->dev_addr, addr->sa_data, ETH_ALEN), byte by byte —
        // each byte is a separate schedulable access.
        for i in 0..ETH_ALEN {
            let b = (seed.wrapping_mul(37).wrapping_add(i * 11)) & 0xff;
            if plain {
                env.ctx.write_u8(
                    site!("eth_commit_mac_addr_change:memcpy"),
                    d + dev::DEV_ADDR + i,
                    b,
                )?;
            } else {
                env.ctx.write_atomic(
                    site!("eth_commit_mac_addr_change:memcpy"),
                    d + dev::DEV_ADDR + i,
                    1,
                    b,
                )?;
            }
        }
        Ok(0)
    })
}

/// `SIOCGIFHWADDR` path: read the MAC under `rcu_read_lock()` only
/// (#9 reader). The copy lands in per-thread kernel-stack scratch, so the
/// staging writes exercise the profiler's ESP filter.
pub fn dev_ifsioc_locked(env: &Env<'_>) -> KResult<u64> {
    let d = env.sym("net.dev0");
    // The upstream fix for #9 changed the reader's locking scheme to
    // serialize against the RTNL-held writer; model that in patched builds.
    let rtnl_guard = !env.config.has_bug(9);
    if rtnl_guard {
        env.ctx.lock(env.sym("net.rtnl_lock"))?;
    }
    env.ctx.rcu_read_lock()?;
    let plain = env.config.has_bug(8) || env.config.has_bug(9);
    let mut out: u64 = 0;
    for i in 0..ETH_ALEN {
        let b = if plain {
            env.ctx
                .read_u8(site!("dev_ifsioc_locked:memcpy"), d + dev::DEV_ADDR + i)?
        } else {
            env.ctx
                .read_atomic(site!("dev_ifsioc_locked:memcpy"), d + dev::DEV_ADDR + i, 1)?
        };
        // Stage the byte in ifr->ifr_hwaddr on the kernel stack.
        env.ctx
            .write_u8(site!("dev_ifsioc_locked:stage"), env.ctx.stack_slot(i), b)?;
        out |= b << (8 * i);
    }
    env.ctx.rcu_read_unlock()?;
    if rtnl_guard {
        env.ctx.unlock(env.sym("net.rtnl_lock"))?;
    }
    Ok(out)
}

/// ethtool/e1000 path: set the MAC under the driver lock (#8 writer). The
/// patched build takes the RTNL lock instead, restoring mutual exclusion
/// with the getname reader (which the patch also serializes).
pub fn e1000_set_mac(env: &Env<'_>, seed: u64) -> KResult<u64> {
    let d = env.sym("net.dev0");
    let lock = if env.config.has_bug(8) {
        env.sym("net.ethtool_lock")
    } else {
        env.sym("net.rtnl_lock")
    };
    let plain = env.config.has_bug(8) || env.config.has_bug(9);
    env.ctx.with_lock(lock, || {
        for i in 0..ETH_ALEN {
            let b = (seed.wrapping_mul(53).wrapping_add(i * 7)) & 0xff;
            if plain {
                env.ctx
                    .write_u8(site!("e1000_set_mac:memcpy"), d + dev::DEV_ADDR + i, b)?;
            } else {
                env.ctx
                    .write_atomic(site!("e1000_set_mac:memcpy"), d + dev::DEV_ADDR + i, 1, b)?;
            }
        }
        Ok(0)
    })
}

/// `SIOCSIFMTU` path (#7 writer): in buggy builds a plain unlocked store;
/// patched builds publish under RTNL with a marked write.
pub fn dev_set_mtu(env: &Env<'_>, arg: u64) -> KResult<u64> {
    let d = env.sym("net.dev0");
    let mtu = 576 + (arg % 8) * 128;
    if env.config.has_bug(7) {
        env.ctx
            .write_u32(site!("__dev_set_mtu:store"), d + dev::MTU, mtu)?;
    } else {
        let rtnl = env.sym("net.rtnl_lock");
        env.ctx.with_lock(rtnl, || {
            env.ctx
                .write_atomic(site!("__dev_set_mtu:store"), d + dev::MTU, 4, mtu)
        })?;
    }
    Ok(0)
}

/// `rawv6_send_hdrinc` (#7 reader): size the packet by the device MTU and
/// "transmit" by bumping the device counter.
pub fn rawv6_send_hdrinc(env: &Env<'_>, sk: u64, len: u64) -> KResult<u64> {
    let d = env.sym("net.dev0");
    let mtu = if env.config.has_bug(7) {
        env.ctx
            .read_u32(site!("rawv6_send_hdrinc:mtu"), d + dev::MTU)?
    } else {
        env.ctx
            .read_atomic(site!("rawv6_send_hdrinc:mtu"), d + dev::MTU, 4)?
    };
    let payload = (len % 16).min(mtu / 128);
    // Build the skb in a fresh allocation; each header byte is an access.
    let skb = env.kzalloc(32)?;
    for i in 0..payload.max(1) {
        env.ctx
            .write_u8(site!("rawv6_send_hdrinc:build"), skb + i, 0x60 + i)?;
    }
    // Account the transmission on the socket and device.
    let tx = env.ctx.read_u64(site!("rawv6_send_hdrinc:sk_tx"), sk + 8)?;
    env.ctx
        .write_u64(site!("rawv6_send_hdrinc:sk_tx"), sk + 8, tx + 1)?;
    let dtx = env
        .ctx
        .read_atomic(site!("rawv6_send_hdrinc:dev_tx"), d + dev::TX_PACKETS, 8)?;
    env.ctx.write_atomic(
        site!("rawv6_send_hdrinc:dev_tx"),
        d + dev::TX_PACKETS,
        8,
        dtx + 1,
    )?;
    env.kfree(skb, 32)?;
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{boot, KernelConfig};
    use sb_vmm::sched::FreeRun;
    use sb_vmm::{Ctx, Executor, KResult};

    fn run_seq(config: KernelConfig, f: impl Fn(&Env<'_>) -> KResult<()> + Send + 'static) {
        let booted = boot(config);
        let mut exec = Executor::new(1);
        let kernel = booted.kernel.clone();
        let r = exec.run(
            booted.snapshot.clone(),
            vec![Box::new(move |ctx: &Ctx| {
                let env = Env {
                    ctx,
                    syms: &kernel.syms,
                    config: kernel.config,
                };
                f(&env)
            })],
            &mut FreeRun,
        );
        assert!(
            r.report.outcome.is_completed(),
            "{:?} {:?}",
            r.report.outcome,
            r.report.console
        );
    }

    #[test]
    fn mac_write_then_read_round_trips() {
        run_seq(KernelConfig::v5_3_10(), |env| {
            eth_commit_mac_addr_change(env, 5)?;
            let got = dev_ifsioc_locked(env)?;
            let mut want = 0u64;
            for i in 0..ETH_ALEN {
                want |= ((5u64.wrapping_mul(37).wrapping_add(i * 11)) & 0xff) << (8 * i);
            }
            assert_eq!(got, want);
            Ok(())
        });
    }

    #[test]
    fn mtu_store_affects_send_path() {
        run_seq(KernelConfig::v5_3_10(), |env| {
            dev_set_mtu(env, 0)?; // 576
            let sk = rawv6_socket(env)?;
            let sent = rawv6_send_hdrinc(env, sk, 15)?;
            assert!(sent <= 576 / 128);
            Ok(())
        });
    }

    #[test]
    fn patched_build_uses_rtnl_for_e1000() {
        // Functional smoke: the patched path must still set the MAC.
        run_seq(KernelConfig::v5_3_10().patched(), |env| {
            e1000_set_mac(env, 9)?;
            let got = dev_ifsioc_locked(env)?;
            assert_ne!(got, 0);
            Ok(())
        });
    }
}
