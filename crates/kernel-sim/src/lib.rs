//! A miniature simulated kernel with planted concurrency bugs.
//!
//! This crate stands in for the Linux kernels (5.3.10 and 5.12-rc3) the
//! paper tests. It is a real, stateful kernel model executing on the
//! [`sb_vmm`] engine: every piece of shared state lives in guest memory,
//! every access goes through traced, schedulable operations, and
//! synchronization uses the engine's locks and RCU. Each of the paper's 17
//! Table 2 findings has a structurally faithful counterpart planted in one
//! of the subsystems (see `DESIGN.md` §5 and [`bugs`]).
//!
//! # Examples
//!
//! ```
//! use sb_kernel::{boot, KernelConfig, Program, Syscall, prog::Domain};
//! use sb_vmm::sched::FreeRun;
//!
//! let booted = boot(KernelConfig::v5_12_rc3());
//! let prog = Program::new(vec![Syscall::Socket { domain: Domain::Inet }]);
//! let mut exec = sb_vmm::Executor::new(1);
//! let kernel = booted.kernel.clone();
//! let r = exec.run(
//!     booted.snapshot.clone(),
//!     vec![kernel.process_job(prog)],
//!     &mut FreeRun,
//! );
//! assert!(r.report.outcome.is_completed());
//! ```

pub mod bugs;
pub mod prog;
pub mod subsys;

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use serde::{Deserialize, Serialize};

use sb_vmm::ctx::{Ctx, Fault, KResult};
use sb_vmm::exec::{Executor, Job};
use sb_vmm::mem::GuestMem;
use sb_vmm::sched::FreeRun;
use sb_vmm::site;

pub use prog::{Program, Syscall};

/// The simulated kernel versions, mirroring the paper's targets.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum KernelVersion {
    /// The stable release used for the focused search (bugs #1–#10).
    V5_3_10,
    /// The release candidate used for the wide search (bugs #2, #11–#17).
    V5_12Rc3,
}

impl std::fmt::Display for KernelVersion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KernelVersion::V5_3_10 => write!(f, "5.3.10"),
            KernelVersion::V5_12Rc3 => write!(f, "5.12-rc3"),
        }
    }
}

/// Kernel build configuration: version plus an all-bugs-patched switch used
/// for ablation runs.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct KernelConfig {
    /// Which simulated release to build.
    pub version: KernelVersion,
    /// When true, every planted bug is built in its fixed form.
    pub patched: bool,
}

impl KernelConfig {
    /// The stable kernel used in the paper's focused search.
    pub fn v5_3_10() -> Self {
        KernelConfig {
            version: KernelVersion::V5_3_10,
            patched: false,
        }
    }

    /// The release candidate used in the paper's wide search.
    pub fn v5_12_rc3() -> Self {
        KernelConfig {
            version: KernelVersion::V5_12Rc3,
            patched: false,
        }
    }

    /// A fully patched build of `self` (ablation baseline).
    pub fn patched(mut self) -> Self {
        self.patched = true;
        self
    }

    /// True if planted bug `id` is present in this build (see Table 2's
    /// version column, reproduced in `DESIGN.md` §5).
    pub fn has_bug(&self, id: u8) -> bool {
        if self.patched {
            return false;
        }
        bugs::registry()
            .iter()
            .find(|b| b.id == id)
            .map(|b| b.versions.contains(&self.version))
            .unwrap_or(false)
    }
}

/// The kernel symbol table: global-object name → guest address, produced by
/// boot and immutable afterwards.
#[derive(Clone, Debug, Default)]
pub struct Symbols {
    map: HashMap<&'static str, u64>,
}

impl Symbols {
    /// Registers a symbol. Panics on duplicates — boot code is trusted.
    pub fn register(&mut self, name: &'static str, addr: u64) {
        let prev = self.map.insert(name, addr);
        assert!(prev.is_none(), "duplicate kernel symbol {name}");
    }

    /// Looks a symbol up. Panics if missing — a handler asking for an
    /// unregistered symbol is a kernel-model bug, not a runtime condition.
    pub fn addr(&self, name: &str) -> u64 {
        *self
            .map
            .get(name)
            .unwrap_or_else(|| panic!("unknown kernel symbol {name}"))
    }

    /// Number of registered symbols.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if no symbols are registered.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// Handler-side view of the kernel: execution context plus immutable
/// kernel metadata.
pub struct Env<'a> {
    /// The vCPU the handler runs on.
    pub ctx: &'a Ctx,
    /// The kernel symbol table.
    pub syms: &'a Symbols,
    /// The build configuration.
    pub config: KernelConfig,
}

impl Env<'_> {
    /// Shorthand for symbol lookup.
    pub fn sym(&self, name: &str) -> u64 {
        self.syms.addr(name)
    }

    /// Allocates a zeroed kernel object, bumping the (racy, benign) slab
    /// statistics counters — the mechanism behind planted bug #13: every
    /// test that allocates memory touches these unsynchronized counters.
    /// In builds without #13 the counters use marked (atomic) accesses.
    pub fn kzalloc(&self, len: u64) -> KResult<u64> {
        let addr = self.ctx.kmalloc(len)?;
        let stat = self.sym("slab.alloc_count");
        if self.config.has_bug(13) {
            let v = self.ctx.read_u64(site!("cache_alloc_refill:stat_read"), stat)?;
            self.ctx
                .write_u64(site!("cache_alloc_refill:stat_write"), stat, v + 1)?;
        } else {
            let v = self
                .ctx
                .read_atomic(site!("cache_alloc_refill:stat_read"), stat, 8)?;
            self.ctx
                .write_atomic(site!("cache_alloc_refill:stat_write"), stat, 8, v + 1)?;
        }
        Ok(addr)
    }

    /// Frees a kernel object, bumping the free-side statistics counter.
    pub fn kfree(&self, addr: u64, len: u64) -> KResult<()> {
        let stat = self.sym("slab.free_count");
        if self.config.has_bug(13) {
            let v = self.ctx.read_u64(site!("free_block:stat_read"), stat)?;
            self.ctx
                .write_u64(site!("free_block:stat_write"), stat, v + 1)?;
        } else {
            let v = self.ctx.read_atomic(site!("free_block:stat_read"), stat, 8)?;
            self.ctx
                .write_atomic(site!("free_block:stat_write"), stat, 8, v + 1)?;
        }
        self.ctx.kfree(addr, len)
    }
}

/// Returns `-errno` encoded as the kernel ABI does (two's complement u64).
pub const fn errno(e: u32) -> u64 {
    (-(e as i64)) as u64
}

/// `EBADF` return value.
pub const EBADF: u64 = errno(9);
/// `EINVAL` return value.
pub const EINVAL: u64 = errno(22);
/// `ENOENT` return value.
pub const ENOENT: u64 = errno(2);
/// `ENODEV` return value.
pub const ENODEV: u64 = errno(19);
/// `EEXIST` return value.
pub const EEXIST: u64 = errno(17);
/// `EIO` return value.
pub const EIO: u64 = errno(5);

/// Kinds of objects a file descriptor can refer to.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum FdKind {
    /// A socket of the given domain.
    Socket(prog::Domain),
    /// An ext4 file (inode index).
    File(u8),
    /// The block device.
    BlockDev,
    /// The TTY.
    Tty,
    /// The sound control device.
    SndCtl,
    /// A configfs item (index).
    Configfs(u8),
}

/// One open file-descriptor entry.
#[derive(Copy, Clone, Debug)]
pub struct FdObj {
    /// What the descriptor refers to.
    pub kind: FdKind,
    /// Guest address of the backing kernel object (0 when the object is a
    /// global looked up on demand).
    pub addr: u64,
}

/// Per-process (per-test-thread) state: the fd table and syscall results.
#[derive(Default)]
pub struct ProcState {
    /// Open descriptors; the fd number is the index.
    pub fds: Vec<Option<FdObj>>,
    /// Result of each executed call, in order.
    pub regs: Vec<u64>,
}

impl ProcState {
    /// Installs a descriptor, returning its fd number.
    pub fn install_fd(&mut self, obj: FdObj) -> u64 {
        self.fds.push(Some(obj));
        (self.fds.len() - 1) as u64
    }

    /// Resolves a [`prog::Res`] argument to an open descriptor.
    pub fn resolve_fd(&self, r: prog::Res) -> Option<FdObj> {
        let v = *self.regs.get(usize::from(r.0))?;
        self.fds.get(usize::try_from(v).ok()?).copied().flatten()
    }

    /// Resolves a [`prog::Res`] to the raw result value of the referenced call.
    pub fn resolve_val(&self, r: prog::Res) -> Option<u64> {
        self.regs.get(usize::from(r.0)).copied()
    }
}

/// The booted kernel: immutable dispatch state shared by all test threads.
pub struct Kernel {
    /// Build configuration.
    pub config: KernelConfig,
    /// Symbol table produced by boot.
    pub syms: Symbols,
}

impl Kernel {
    /// Dispatches one syscall on behalf of process `proc`.
    pub fn dispatch(&self, ctx: &Ctx, proc: &mut ProcState, call: &Syscall) -> KResult<u64> {
        let env = Env {
            ctx,
            syms: &self.syms,
            config: self.config,
        };
        subsys::dispatch(&env, proc, call)
    }

    /// Builds an executor [`Job`] that runs `prog` as one user process.
    ///
    /// Non-fatal per-syscall faults become errno results and the program
    /// continues; fatal faults (panic, abort) end the thread.
    pub fn process_job(self: &Arc<Self>, prog: Program) -> Job {
        self.process_job_with_results(prog, Arc::new(Mutex::new(Vec::new())))
    }

    /// Like [`Kernel::process_job`], also publishing each call's result into
    /// `out`.
    pub fn process_job_with_results(
        self: &Arc<Self>,
        prog: Program,
        out: Arc<Mutex<Vec<u64>>>,
    ) -> Job {
        let kernel = Arc::clone(self);
        Box::new(move |ctx: &Ctx| -> KResult<()> {
            let mut proc = ProcState::default();
            for call in &prog.calls {
                match kernel.dispatch(ctx, &mut proc, call) {
                    Ok(v) => proc.regs.push(v),
                    Err(f) if f.is_fatal() => return Err(f),
                    Err(_) => proc.regs.push(EINVAL),
                }
            }
            if let Ok(mut o) = out.lock() {
                *o = proc.regs.clone();
            }
            Ok(())
        })
    }
}

/// A booted kernel plus the memory snapshot taken right after boot — the
/// paper's "VM snapshot taken after the target kernel boots" (§4.1).
pub struct BootedKernel {
    /// Shared dispatch state.
    pub kernel: Arc<Kernel>,
    /// Guest memory right after boot; clone per trial to "resume" it.
    pub snapshot: GuestMem,
}

/// Boots a kernel with `config`, producing the snapshot every sequential
/// profile and concurrent trial starts from.
///
/// # Panics
///
/// Panics if the simulated boot itself fails — that is a model bug.
pub fn boot(config: KernelConfig) -> BootedKernel {
    let mut exec = Executor::new(1);
    let out: Arc<Mutex<Option<Symbols>>> = Arc::new(Mutex::new(None));
    let out2 = Arc::clone(&out);
    let job: Job = Box::new(move |ctx: &Ctx| -> KResult<()> {
        let mut syms = Symbols::default();
        subsys::boot_all(ctx, &mut syms, config)?;
        *out2.lock().expect("boot symbol channel poisoned") = Some(syms);
        Ok(())
    });
    let r = exec.run(GuestMem::new(), vec![job], &mut FreeRun);
    assert!(
        r.report.outcome.is_completed(),
        "kernel boot failed: {:?} {:?}",
        r.report.outcome,
        r.report.console
    );
    let syms = out
        .lock()
        .expect("boot symbol channel poisoned")
        .take()
        .expect("boot did not publish symbols");
    BootedKernel {
        kernel: Arc::new(Kernel { config, syms }),
        snapshot: r.mem,
    }
}

/// Convenience fault constructor used by handlers that detect an impossible
/// internal state.
pub fn internal_bug(ctx: &Ctx, msg: &str) -> Fault {
    ctx.oops(format!("BUG: simulated-kernel internal error: {msg}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errno_encoding_matches_kernel_abi() {
        assert_eq!(EINVAL, (-22i64) as u64);
        assert_eq!(EBADF, (-9i64) as u64);
    }

    #[test]
    fn config_bug_gating_follows_table2_versions() {
        let old = KernelConfig::v5_3_10();
        let rc = KernelConfig::v5_12_rc3();
        // #1 (rhashtable double fetch) is 5.3.10-only.
        assert!(old.has_bug(1));
        assert!(!rc.has_bug(1));
        // #2 (ext4 swap boot loader) exists in both.
        assert!(old.has_bug(2));
        assert!(rc.has_bug(2));
        // #12 (l2tp) is 5.12-rc3-only.
        assert!(!old.has_bug(12));
        assert!(rc.has_bug(12));
        // Patched builds have nothing.
        assert!(!old.patched().has_bug(1));
        assert!(!rc.patched().has_bug(12));
    }

    #[test]
    fn proc_state_fd_resolution() {
        let mut p = ProcState::default();
        let fd = p.install_fd(FdObj {
            kind: FdKind::BlockDev,
            addr: 0x40,
        });
        p.regs.push(fd);
        let got = p.resolve_fd(prog::Res(0)).unwrap();
        assert_eq!(got.kind, FdKind::BlockDev);
        // Out-of-range and errno-valued registers resolve to None.
        p.regs.push(EINVAL);
        assert!(p.resolve_fd(prog::Res(1)).is_none());
        assert!(p.resolve_fd(prog::Res(9)).is_none());
    }

    #[test]
    #[should_panic(expected = "unknown kernel symbol")]
    fn missing_symbol_panics() {
        Symbols::default().addr("no.such.symbol");
    }

    #[test]
    #[should_panic(expected = "duplicate kernel symbol")]
    fn duplicate_symbol_panics() {
        let mut s = Symbols::default();
        s.register("x", 1);
        s.register("x", 2);
    }
}
