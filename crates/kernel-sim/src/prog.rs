//! Sequential test programs: the kernel-input language.
//!
//! A [`Program`] is a short sequence of [`Syscall`]s — the "self-sufficient
//! snippets of code that set up and perform several system operations" the
//! paper assumes as input (§3.1). Arguments that name kernel resources (file
//! descriptors, message-queue ids) are [`Res`] references to the results of
//! earlier calls, mirroring Syzkaller's resource typing.

use serde::{Deserialize, Serialize};

/// A reference to the result of an earlier syscall in the same program.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct Res(pub u8);

/// Socket domains exposed by the simulated kernel.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum Domain {
    /// TCP/IP socket; interacts with the congestion-control subsystem.
    Inet,
    /// AF_PACKET socket; interacts with the fanout subsystem.
    Packet,
    /// Raw IPv6 socket; interacts with the device MTU.
    RawV6,
    /// PPPoL2TP socket; interacts with the tunnel registry.
    L2tp,
}

/// All socket domains, for generators.
pub const DOMAINS: [Domain; 4] = [Domain::Inet, Domain::Packet, Domain::RawV6, Domain::L2tp];

/// Socket options exposed by `setsockopt`.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum SockOpt {
    /// Join the packet fanout group (`PACKET_FANOUT`).
    PacketFanout,
    /// Set the system default congestion-control algorithm
    /// (`TCP_CONGESTION` with CAP_NET_ADMIN semantics).
    TcpCongestion,
}

/// All socket options, for generators.
pub const SOCK_OPTS: [SockOpt; 2] = [SockOpt::PacketFanout, SockOpt::TcpCongestion];

/// Ioctl commands exposed by the simulated kernel.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum IoctlCmd {
    /// Set the NIC MAC address (`SIOCSIFHWADDR`).
    SiocSifHwAddr,
    /// Get the NIC MAC address (`SIOCGIFHWADDR`).
    SiocGifHwAddr,
    /// Set the MAC through the ethtool/e1000 path.
    EthtoolSMac,
    /// Set the device MTU (`SIOCSIFMTU`).
    SiocSifMtu,
    /// Flush/rebuild an IPv6 route, bumping the fib6 cookie.
    SiocAddRt,
    /// Set the block-device logical block size (`BLKBSZSET`).
    BlkBszSet,
    /// Set the block-device readahead (`BLKRASET`).
    BlkRaSet,
    /// Shrink/grow the block-device capacity.
    BlkSetSize,
    /// `EXT4_IOC_SWAP_BOOT`: swap an inode with the boot-loader inode.
    Ext4SwapBoot,
    /// Trigger serial-port autoconfiguration (`TIOCSERCONFIG`).
    TiocSerConfig,
    /// Add a user control element (`SNDRV_CTL_IOCTL_ELEM_ADD`).
    SndCtlElemAdd,
}

/// All ioctl commands, for generators.
pub const IOCTL_CMDS: [IoctlCmd; 11] = [
    IoctlCmd::SiocSifHwAddr,
    IoctlCmd::SiocGifHwAddr,
    IoctlCmd::EthtoolSMac,
    IoctlCmd::SiocSifMtu,
    IoctlCmd::SiocAddRt,
    IoctlCmd::BlkBszSet,
    IoctlCmd::BlkRaSet,
    IoctlCmd::BlkSetSize,
    IoctlCmd::Ext4SwapBoot,
    IoctlCmd::TiocSerConfig,
    IoctlCmd::SndCtlElemAdd,
];

/// Openable paths in the simulated filesystem namespace.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum Path {
    /// One of four ext4 files (by inode index).
    Ext4File(u8),
    /// The block device backing the filesystem.
    BlockDev,
    /// The serial TTY.
    Tty,
    /// The sound-card control device.
    SndCtl,
    /// A configfs item directory (by item index).
    Configfs(u8),
}

/// Message-queue control commands.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum MsgCmd {
    /// Remove the queue (`IPC_RMID`).
    Rmid,
    /// Stat the queue (`IPC_STAT`).
    Stat,
}

/// One system call with typed arguments.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum Syscall {
    /// Create a socket in `domain`.
    Socket {
        /// Socket domain.
        domain: Domain,
    },
    /// Connect a socket; for L2TP sockets, `tunnel_id` selects (and lazily
    /// registers) the tunnel.
    Connect {
        /// Socket fd (result reference).
        sock: Res,
        /// Tunnel id for L2TP; ignored otherwise.
        tunnel_id: u8,
    },
    /// Transmit on a socket.
    Sendmsg {
        /// Socket fd (result reference).
        sock: Res,
        /// Payload length selector.
        len: u8,
    },
    /// Set a socket option.
    Setsockopt {
        /// Socket fd (result reference).
        sock: Res,
        /// Option to set.
        opt: SockOpt,
        /// Option value.
        val: u8,
    },
    /// Query a socket's bound name/address.
    Getsockname {
        /// Socket fd (result reference).
        sock: Res,
    },
    /// Device control.
    Ioctl {
        /// Target fd (result reference).
        fd: Res,
        /// Command.
        cmd: IoctlCmd,
        /// Command argument.
        arg: u8,
    },
    /// Open a path, returning an fd.
    Open {
        /// The path to open.
        path: Path,
    },
    /// Close an fd.
    Close {
        /// Fd to close (result reference).
        fd: Res,
    },
    /// Read from a file/device.
    Read {
        /// Fd (result reference).
        fd: Res,
        /// Offset selector.
        off: u8,
    },
    /// Write to a file/device.
    Write {
        /// Fd (result reference).
        fd: Res,
        /// Offset selector.
        off: u8,
        /// Byte value to write.
        val: u8,
    },
    /// Readahead advice on a file (`posix_fadvise`).
    Fadvise {
        /// Fd (result reference).
        fd: Res,
    },
    /// Get (or create) a System V message queue.
    Msgget {
        /// IPC key.
        key: u8,
    },
    /// Control a System V message queue.
    Msgctl {
        /// Queue id (result reference to a previous `Msgget`).
        id: Res,
        /// Command.
        cmd: MsgCmd,
    },
    /// Send a message to a queue.
    Msgsnd {
        /// Queue id (result reference to a previous `Msgget`).
        id: Res,
        /// Message type tag.
        mtype: u8,
        /// Message payload byte.
        val: u8,
    },
    /// Receive a message from a queue.
    Msgrcv {
        /// Queue id (result reference to a previous `Msgget`).
        id: Res,
        /// Message type to receive (0 = any).
        mtype: u8,
    },
    /// Create a configfs item directory.
    Mkdir {
        /// Item index.
        item: u8,
    },
    /// Remove a configfs item directory.
    Rmdir {
        /// Item index.
        item: u8,
    },
    /// (Re)mount the filesystem — a deliberately heavy operation.
    Mount,
}

impl Syscall {
    /// The syscall's name, for display.
    pub fn name(&self) -> &'static str {
        match self {
            Syscall::Socket { .. } => "socket",
            Syscall::Connect { .. } => "connect",
            Syscall::Sendmsg { .. } => "sendmsg",
            Syscall::Setsockopt { .. } => "setsockopt",
            Syscall::Getsockname { .. } => "getsockname",
            Syscall::Ioctl { .. } => "ioctl",
            Syscall::Open { .. } => "open",
            Syscall::Close { .. } => "close",
            Syscall::Read { .. } => "read",
            Syscall::Write { .. } => "write",
            Syscall::Fadvise { .. } => "fadvise",
            Syscall::Msgget { .. } => "msgget",
            Syscall::Msgctl { .. } => "msgctl",
            Syscall::Msgsnd { .. } => "msgsnd",
            Syscall::Msgrcv { .. } => "msgrcv",
            Syscall::Mkdir { .. } => "mkdir",
            Syscall::Rmdir { .. } => "rmdir",
            Syscall::Mount => "mount",
        }
    }

    /// The result references this call consumes.
    pub fn res_args(&self) -> Vec<Res> {
        match self {
            Syscall::Connect { sock, .. }
            | Syscall::Sendmsg { sock, .. }
            | Syscall::Setsockopt { sock, .. }
            | Syscall::Getsockname { sock } => vec![*sock],
            Syscall::Ioctl { fd, .. }
            | Syscall::Close { fd }
            | Syscall::Read { fd, .. }
            | Syscall::Write { fd, .. }
            | Syscall::Fadvise { fd } => vec![*fd],
            Syscall::Msgctl { id, .. }
            | Syscall::Msgsnd { id, .. }
            | Syscall::Msgrcv { id, .. } => vec![*id],
            _ => vec![],
        }
    }
}

impl std::fmt::Display for Syscall {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Syscall::Socket { domain } => write!(f, "socket({domain:?})"),
            Syscall::Connect { sock, tunnel_id } => {
                write!(f, "connect(r{}, tid={})", sock.0, tunnel_id)
            }
            Syscall::Sendmsg { sock, len } => write!(f, "sendmsg(r{}, len={})", sock.0, len),
            Syscall::Setsockopt { sock, opt, val } => {
                write!(f, "setsockopt(r{}, {opt:?}, {val})", sock.0)
            }
            Syscall::Getsockname { sock } => write!(f, "getsockname(r{})", sock.0),
            Syscall::Ioctl { fd, cmd, arg } => write!(f, "ioctl(r{}, {cmd:?}, {arg})", fd.0),
            Syscall::Open { path } => write!(f, "open({path:?})"),
            Syscall::Close { fd } => write!(f, "close(r{})", fd.0),
            Syscall::Read { fd, off } => write!(f, "read(r{}, off={})", fd.0, off),
            Syscall::Write { fd, off, val } => write!(f, "write(r{}, off={}, val={})", fd.0, off, val),
            Syscall::Fadvise { fd } => write!(f, "fadvise(r{})", fd.0),
            Syscall::Msgget { key } => write!(f, "msgget(key={key})"),
            Syscall::Msgctl { id, cmd } => write!(f, "msgctl(r{}, {cmd:?})", id.0),
            Syscall::Msgsnd { id, mtype, val } => {
                write!(f, "msgsnd(r{}, mtype={mtype}, val={val})", id.0)
            }
            Syscall::Msgrcv { id, mtype } => write!(f, "msgrcv(r{}, mtype={mtype})", id.0),
            Syscall::Mkdir { item } => write!(f, "mkdir(item={item})"),
            Syscall::Rmdir { item } => write!(f, "rmdir(item={item})"),
            Syscall::Mount => write!(f, "mount()"),
        }
    }
}

/// A sequential test: an ordered list of syscalls executed by one user
/// process.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default, Serialize, Deserialize)]
pub struct Program {
    /// The calls, executed in order; call `i`'s result is `r{i}`.
    pub calls: Vec<Syscall>,
}

impl Program {
    /// Creates a program from calls.
    pub fn new(calls: Vec<Syscall>) -> Self {
        Program { calls }
    }

    /// Number of calls.
    pub fn len(&self) -> usize {
        self.calls.len()
    }

    /// True if the program has no calls.
    pub fn is_empty(&self) -> bool {
        self.calls.is_empty()
    }

    /// True if every [`Res`] argument refers to an earlier call.
    pub fn is_well_formed(&self) -> bool {
        self.calls
            .iter()
            .enumerate()
            .all(|(i, c)| c.res_args().iter().all(|r| usize::from(r.0) < i))
    }
}

impl std::fmt::Display for Program {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (i, c) in self.calls.iter().enumerate() {
            writeln!(f, "r{i} = {c}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn well_formedness_checks_res_ordering() {
        let good = Program::new(vec![
            Syscall::Socket { domain: Domain::L2tp },
            Syscall::Connect { sock: Res(0), tunnel_id: 1 },
        ]);
        assert!(good.is_well_formed());
        let bad = Program::new(vec![Syscall::Connect { sock: Res(0), tunnel_id: 1 }]);
        assert!(!bad.is_well_formed());
        let fwd = Program::new(vec![
            Syscall::Sendmsg { sock: Res(1), len: 1 },
            Syscall::Socket { domain: Domain::Inet },
        ]);
        assert!(!fwd.is_well_formed());
    }

    #[test]
    fn display_is_syz_like() {
        let p = Program::new(vec![
            Syscall::Socket { domain: Domain::L2tp },
            Syscall::Connect { sock: Res(0), tunnel_id: 3 },
            Syscall::Sendmsg { sock: Res(0), len: 9 },
        ]);
        let s = p.to_string();
        assert!(s.contains("r0 = socket(L2tp)"));
        assert!(s.contains("r1 = connect(r0, tid=3)"));
        assert!(s.contains("r2 = sendmsg(r0, len=9)"));
    }

    #[test]
    fn res_args_cover_all_consuming_calls() {
        let p = Program::new(vec![
            Syscall::Open { path: Path::Ext4File(2) },
            Syscall::Write { fd: Res(0), off: 3, val: 7 },
            Syscall::Ioctl { fd: Res(0), cmd: IoctlCmd::Ext4SwapBoot, arg: 0 },
        ]);
        assert!(p.calls[0].res_args().is_empty());
        assert_eq!(p.calls[1].res_args(), vec![Res(0)]);
        assert_eq!(p.calls[2].res_args(), vec![Res(0)]);
        assert!(p.is_well_formed());
    }
}
