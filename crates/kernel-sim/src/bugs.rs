//! Ground-truth registry of the planted concurrency issues.
//!
//! Table 2 of the paper lists 17 issues (14 bugs + 3 benign data races).
//! Each has a structurally faithful counterpart planted in this simulated
//! kernel; this module is the oracle the experiment harness uses to map raw
//! detector reports (console lines, data-race site pairs) back to issue ids
//! and to classify them as harmful or benign — the role the authors' 80
//! person-hours of manual inspection play in §5.2.

use crate::KernelVersion;

/// Concurrency-bug classes, following Lu et al.'s taxonomy used in Table 2.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum BugKind {
    /// Data race.
    DataRace,
    /// Atomicity violation.
    AtomicityViolation,
    /// Order violation.
    OrderViolation,
}

impl std::fmt::Display for BugKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BugKind::DataRace => write!(f, "DR"),
            BugKind::AtomicityViolation => write!(f, "AV"),
            BugKind::OrderViolation => write!(f, "OV"),
        }
    }
}

/// How a planted issue manifests to the stock detectors.
#[derive(Clone, Debug)]
pub enum Signature {
    /// A kernel console line containing this substring.
    Console(&'static str),
    /// A data race between two kernel functions (site-name function parts,
    /// unordered; the two names may be equal for self-races).
    RacePair(&'static str, &'static str),
}

/// One entry of the ground-truth registry.
#[derive(Clone, Debug)]
pub struct KnownBug {
    /// Issue number, matching Table 2.
    pub id: u8,
    /// Short description (Table 2's Summary column).
    pub title: &'static str,
    /// Kernel subsystem (Table 2's Subsystem column).
    pub subsystem: &'static str,
    /// Bug class.
    pub kind: BugKind,
    /// True when the issue is harmful (bold in Table 2); false for benign
    /// data races.
    pub harmful: bool,
    /// Kernel versions containing the issue.
    pub versions: &'static [KernelVersion],
    /// Whether the triggering concurrent test pairs two distinct sequential
    /// tests (`true`) or two identical ones (`false`), per Table 2's Input
    /// column.
    pub distinct_input: bool,
    /// Detector signatures that identify this issue.
    pub signatures: &'static [Signature],
}

use KernelVersion::{V5_12Rc3, V5_3_10};

static REGISTRY: &[KnownBug] = &[
    KnownBug {
        id: 1,
        title: "BUG: unable to handle page fault for address (rhashtable double fetch)",
        subsystem: "include/linux/",
        kind: BugKind::DataRace,
        harmful: true,
        versions: &[V5_3_10],
        distinct_input: true,
        signatures: &[Signature::Console("unable to handle page fault")],
    },
    KnownBug {
        id: 2,
        title: "EXT4-fs error: swap_inode_boot_loader: checksum invalid",
        subsystem: "fs/ext4/",
        kind: BugKind::AtomicityViolation,
        harmful: true,
        versions: &[V5_3_10, V5_12Rc3],
        distinct_input: false,
        signatures: &[Signature::Console("swap_inode_boot_loader")],
    },
    KnownBug {
        id: 3,
        title: "EXT4-fs error: ext4_ext_check_inode: invalid magic",
        subsystem: "fs/ext4/",
        kind: BugKind::AtomicityViolation,
        harmful: false,
        versions: &[V5_3_10],
        distinct_input: false,
        signatures: &[Signature::Console("ext4_ext_check_inode")],
    },
    KnownBug {
        id: 4,
        title: "Blk_update_request: IO error",
        subsystem: "fs/",
        kind: BugKind::AtomicityViolation,
        harmful: true,
        versions: &[V5_3_10],
        distinct_input: true,
        signatures: &[Signature::Console("Blk_update_request: IO error")],
    },
    KnownBug {
        id: 5,
        title: "Data race: blkdev_ioctl() / generic_fadvise()",
        subsystem: "block/, mm/",
        kind: BugKind::DataRace,
        harmful: true,
        versions: &[V5_3_10],
        distinct_input: true,
        signatures: &[Signature::RacePair("blkdev_ioctl", "generic_fadvise")],
    },
    KnownBug {
        id: 6,
        title: "Data race: do_mpage_readpage() / set_blocksize()",
        subsystem: "fs/",
        kind: BugKind::DataRace,
        harmful: false,
        versions: &[V5_3_10],
        distinct_input: true,
        signatures: &[Signature::RacePair("do_mpage_readpage", "set_blocksize")],
    },
    KnownBug {
        id: 7,
        title: "Data race: rawv6_send_hdrinc() / __dev_set_mtu()",
        subsystem: "net/",
        kind: BugKind::DataRace,
        harmful: true,
        versions: &[V5_3_10],
        distinct_input: true,
        signatures: &[Signature::RacePair("rawv6_send_hdrinc", "__dev_set_mtu")],
    },
    KnownBug {
        id: 8,
        title: "Data race: packet_getname() / e1000_set_mac()",
        subsystem: "net/",
        kind: BugKind::DataRace,
        harmful: true,
        versions: &[V5_3_10],
        distinct_input: true,
        signatures: &[Signature::RacePair("packet_getname", "e1000_set_mac")],
    },
    KnownBug {
        id: 9,
        title: "Data race: dev_ifsioc_locked() / eth_commit_mac_addr_change()",
        subsystem: "net/",
        kind: BugKind::DataRace,
        harmful: true,
        versions: &[V5_3_10],
        distinct_input: true,
        signatures: &[Signature::RacePair(
            "dev_ifsioc_locked",
            "eth_commit_mac_addr_change",
        )],
    },
    KnownBug {
        id: 10,
        title: "Data race: fib6_get_cookie_safe() / fib6_clean_node()",
        subsystem: "net/",
        kind: BugKind::DataRace,
        harmful: false,
        versions: &[V5_3_10],
        distinct_input: true,
        signatures: &[Signature::RacePair("fib6_get_cookie_safe", "fib6_clean_node")],
    },
    KnownBug {
        id: 11,
        title: "BUG: kernel NULL pointer dereference (configfs_lookup)",
        subsystem: "fs/configfs",
        kind: BugKind::DataRace,
        harmful: true,
        versions: &[V5_12Rc3],
        distinct_input: true,
        signatures: &[
            Signature::Console("configfs_lookup"),
            Signature::RacePair("configfs_lookup", "configfs_detach"),
        ],
    },
    KnownBug {
        id: 12,
        title: "BUG: kernel NULL pointer dereference (l2tp tunnel sock)",
        subsystem: "net/l2tp",
        kind: BugKind::OrderViolation,
        harmful: true,
        versions: &[V5_12Rc3],
        distinct_input: true,
        signatures: &[Signature::Console("bh_lock_sock")],
    },
    KnownBug {
        id: 13,
        title: "Data race: cache_alloc_refill() / free_block()",
        subsystem: "mm/",
        kind: BugKind::DataRace,
        harmful: false,
        versions: &[V5_12Rc3],
        distinct_input: false,
        signatures: &[
            Signature::RacePair("cache_alloc_refill", "free_block"),
            Signature::RacePair("cache_alloc_refill", "cache_alloc_refill"),
            Signature::RacePair("free_block", "free_block"),
        ],
    },
    KnownBug {
        id: 14,
        title: "Data race: tty_port_open() / uart_do_autoconfig()",
        subsystem: "driver/tty/",
        kind: BugKind::DataRace,
        harmful: true,
        versions: &[V5_12Rc3],
        distinct_input: true,
        signatures: &[Signature::RacePair("tty_port_open", "uart_do_autoconfig")],
    },
    KnownBug {
        id: 15,
        title: "Data race: snd_ctl_elem_add()",
        subsystem: "sound/core",
        kind: BugKind::DataRace,
        harmful: true,
        versions: &[V5_12Rc3],
        distinct_input: true,
        signatures: &[Signature::RacePair("snd_ctl_elem_add", "snd_ctl_elem_add")],
    },
    KnownBug {
        id: 16,
        title: "Data race: tcp_set_default_congestion_control() / tcp_set_congestion_control()",
        subsystem: "net/ipv4",
        kind: BugKind::DataRace,
        harmful: false,
        versions: &[V5_12Rc3],
        distinct_input: true,
        signatures: &[Signature::RacePair(
            "tcp_set_default_congestion_control",
            "tcp_set_congestion_control",
        )],
    },
    KnownBug {
        id: 17,
        title: "Data race: fanout_demux_rollover() / __fanout_unlink()",
        subsystem: "net/packet",
        kind: BugKind::DataRace,
        harmful: true,
        versions: &[V5_12Rc3],
        distinct_input: true,
        signatures: &[
            Signature::RacePair("fanout_demux_rollover", "__fanout_unlink"),
            Signature::RacePair("fanout_demux_rollover", "__fanout_link"),
        ],
    },
];

/// The full ground-truth registry, in Table 2 order.
pub fn registry() -> &'static [KnownBug] {
    REGISTRY
}

/// Looks an issue up by id.
pub fn by_id(id: u8) -> Option<&'static KnownBug> {
    REGISTRY.iter().find(|b| b.id == id)
}

/// Extracts the kernel-function part of a site name
/// (`"eth_commit_mac_addr_change:memcpy"` → `"eth_commit_mac_addr_change"`).
pub fn site_function(site_name: &str) -> &str {
    site_name.split(':').next().unwrap_or(site_name)
}

/// Matches a console line against the registry, returning the issue id.
pub fn match_console(line: &str) -> Option<u8> {
    REGISTRY.iter().find_map(|b| {
        b.signatures.iter().find_map(|s| match s {
            Signature::Console(pat) if line.contains(pat) => Some(b.id),
            _ => None,
        })
    })
}

/// Matches an (unordered) data-race site pair against the registry.
pub fn match_race(site_a: &str, site_b: &str) -> Option<u8> {
    let fa = site_function(site_a);
    let fb = site_function(site_b);
    REGISTRY.iter().find_map(|b| {
        b.signatures.iter().find_map(|s| match s {
            Signature::RacePair(x, y)
                if (fa == *x && fb == *y) || (fa == *y && fb == *x) =>
            {
                Some(b.id)
            }
            _ => None,
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_all_seventeen_issues() {
        assert_eq!(registry().len(), 17);
        for (i, b) in registry().iter().enumerate() {
            assert_eq!(usize::from(b.id), i + 1, "ids must be 1..=17 in order");
            assert!(!b.signatures.is_empty());
        }
    }

    #[test]
    fn harmful_benign_split_matches_table2() {
        let benign: Vec<u8> = registry()
            .iter()
            .filter(|b| !b.harmful)
            .map(|b| b.id)
            .collect();
        // #10, #13, #16 are the benign data races; #3 and #6 were reported
        // but not confirmed harmful (plain, non-bold in Table 2).
        assert_eq!(benign, vec![3, 6, 10, 13, 16]);
    }

    #[test]
    fn console_matching() {
        assert_eq!(
            match_console("EXT4-fs error (device sda): swap_inode_boot_loader: checksum invalid"),
            Some(2)
        );
        assert_eq!(
            match_console("BUG: unable to handle page fault for address: 0x1100"),
            Some(1)
        );
        assert_eq!(match_console("harmless line"), None);
    }

    #[test]
    fn race_matching_is_unordered_and_function_scoped() {
        assert_eq!(
            match_race("eth_commit_mac_addr_change:memcpy", "dev_ifsioc_locked:memcpy"),
            Some(9)
        );
        assert_eq!(
            match_race("dev_ifsioc_locked:memcpy", "eth_commit_mac_addr_change:memcpy"),
            Some(9)
        );
        assert_eq!(
            match_race("cache_alloc_refill:stat_write", "cache_alloc_refill:stat_read"),
            Some(13)
        );
        assert_eq!(match_race("foo:a", "bar:b"), None);
    }

    #[test]
    fn version_columns_match_table2() {
        let v5_3: Vec<u8> = registry()
            .iter()
            .filter(|b| b.versions.contains(&KernelVersion::V5_3_10))
            .map(|b| b.id)
            .collect();
        assert_eq!(v5_3, vec![1, 2, 3, 4, 5, 6, 7, 8, 9, 10]);
        let rc: Vec<u8> = registry()
            .iter()
            .filter(|b| b.versions.contains(&KernelVersion::V5_12Rc3))
            .map(|b| b.id)
            .collect();
        assert_eq!(rc, vec![2, 11, 12, 13, 14, 15, 16, 17]);
    }
}
