//! Criterion bench of the execution-engine primitives: raw access
//! round-trip cost, snapshot cloning, kernel boot, and a full concurrent
//! execution — the constants behind every throughput number in
//! `EXPERIMENTS.md`.

use criterion::{criterion_group, criterion_main, Criterion};

use sb_kernel::{boot, KernelConfig};
use sb_vmm::ctx::KResult;
use sb_vmm::mem::GuestMem;
use sb_vmm::sched::FreeRun;
use sb_vmm::{site, Ctx, Executor};

fn bench_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine");
    group.sample_size(30);

    group.bench_function("access_round_trip_x1000", |b| {
        let mut exec = Executor::new(1);
        let mut mem = GuestMem::new();
        let cell = mem.kmalloc(8).unwrap();
        b.iter(|| {
            let r = exec.run(
                mem.clone(),
                vec![Box::new(move |ctx: &Ctx| -> KResult<()> {
                    for i in 0..500u64 {
                        ctx.write_u64(site!("bench:w"), cell, i)?;
                        ctx.read_u64(site!("bench:r"), cell)?;
                    }
                    Ok(())
                })],
                &mut FreeRun,
            );
            r.report.steps
        })
    });

    group.bench_function("snapshot_clone", |b| {
        let booted = boot(KernelConfig::v5_12_rc3());
        b.iter(|| booted.snapshot.clone())
    });

    group.bench_function("kernel_boot", |b| {
        b.iter(|| boot(KernelConfig::v5_12_rc3()).snapshot.brk())
    });

    group.bench_function("concurrent_execution_l2tp", |b| {
        use sb_kernel::prog::{Domain, Res};
        use sb_kernel::{Program, Syscall};
        let booted = boot(KernelConfig::v5_12_rc3());
        let prog = Program::new(vec![
            Syscall::Socket { domain: Domain::L2tp },
            Syscall::Connect { sock: Res(0), tunnel_id: 1 },
            Syscall::Sendmsg { sock: Res(0), len: 2 },
        ]);
        let mut exec = Executor::new(2);
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let mut sched = sb_vmm::sched::RandomSched::new(seed, 0.2);
            let r = exec.run(
                booted.snapshot.clone(),
                vec![
                    booted.kernel.process_job(prog.clone()),
                    booted.kernel.process_job(prog.clone()),
                ],
                &mut sched,
            );
            r.report.steps
        })
    });
    group.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
