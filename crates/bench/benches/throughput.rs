//! Criterion bench for E4: concurrent-test execution throughput under the
//! Snowboard, SKI, and random schedulers (§5.4: 193.8 vs 170.3 exec/min).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use sb_kernel::prog::{Domain, Res};
use sb_kernel::{boot, KernelConfig, Program, Syscall};
use sb_vmm::sched::{RandomSched, Scheduler, SkiSched, SnowboardSched};
use sb_vmm::Executor;
use snowboard::pmc::identify;
use snowboard::profile::profile_corpus;

fn bench_throughput(c: &mut Criterion) {
    let booted = boot(KernelConfig::v5_12_rc3());
    let writer = Program::new(vec![
        Syscall::Socket { domain: Domain::L2tp },
        Syscall::Connect { sock: Res(0), tunnel_id: 2 },
    ]);
    let reader = Program::new(vec![
        Syscall::Socket { domain: Domain::L2tp },
        Syscall::Connect { sock: Res(0), tunnel_id: 2 },
        Syscall::Sendmsg { sock: Res(0), len: 1 },
    ]);
    let profiles = profile_corpus(&booted, &[writer.clone(), reader.clone()], 2);
    let set = identify(&profiles);
    let (_, pmc) = snowboard::metrics::find_pmc_by_sites(&set, "list_add_rcu", "l2tp_tunnel_get")
        .expect("l2tp PMC");
    let hints = pmc.hints();

    let mut exec = Executor::new(2);
    let mut group = c.benchmark_group("execution_throughput");
    group.sample_size(20);

    let mut trial = 0u64;
    group.bench_function(BenchmarkId::new("scheduler", "snowboard"), |b| {
        let mut sched = SnowboardSched::new(1, hints);
        b.iter(|| {
            trial += 1;
            sched.begin_trial(trial);
            run_once(&mut exec, &booted, &writer, &reader, &mut sched)
        })
    });
    group.bench_function(BenchmarkId::new("scheduler", "ski"), |b| {
        let mut sched = SkiSched::new(1, hints.iter().map(|h| h.site));
        b.iter(|| {
            trial += 1;
            sched.begin_trial(trial);
            run_once(&mut exec, &booted, &writer, &reader, &mut sched)
        })
    });
    group.bench_function(BenchmarkId::new("scheduler", "random"), |b| {
        b.iter(|| {
            trial += 1;
            let mut sched = RandomSched::new(trial, 0.25);
            run_once(&mut exec, &booted, &writer, &reader, &mut sched)
        })
    });
    group.finish();
}

fn run_once(
    exec: &mut Executor,
    booted: &sb_kernel::BootedKernel,
    writer: &Program,
    reader: &Program,
    sched: &mut dyn Scheduler,
) -> u64 {
    let r = exec.run(
        booted.snapshot.clone(),
        vec![
            booted.kernel.process_job(writer.clone()),
            booted.kernel.process_job(reader.clone()),
        ],
        sched,
    );
    r.report.steps
}

criterion_group!(benches, bench_throughput);
criterion_main!(benches);
