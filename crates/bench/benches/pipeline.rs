//! Criterion bench for E6: the offline pipeline stages — sequential
//! profiling, PMC identification (Algorithm 1, batch and sharded),
//! clustering per strategy, exemplar selection (concurrent-test
//! generation), and store-backed preparation cold vs warm.

use std::sync::atomic::{AtomicU64, Ordering};

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use sb_kernel::{boot, KernelConfig};
use sb_store::Store;
use sb_vmm::Executor;
use snowboard::cluster::{cluster, ALL_STRATEGIES};
use snowboard::pmc::{identify, identify_sharded, IdentifyOpts};
use snowboard::profile::{profile_corpus, profile_one};
use snowboard::select::{exemplars, ClusterOrder};
use snowboard::PipelineCfg;

fn bench_pipeline(c: &mut Criterion) {
    let booted = boot(KernelConfig::v5_12_rc3());
    let corpus = sb_fuzz::seed_programs();
    let profiles = profile_corpus(&booted, &corpus, 4);
    let set = identify(&profiles);

    let mut group = c.benchmark_group("pipeline");
    group.sample_size(20);

    let mut exec = Executor::new(1);
    group.bench_function("profile_one_test", |b| {
        b.iter(|| profile_one(&mut exec, &booted, 0, &corpus[0]))
    });

    group.bench_function("pmc_identification", |b| b.iter(|| identify(&profiles)));

    for shards in [2usize, 4] {
        group.bench_with_input(
            BenchmarkId::new("pmc_identification_sharded", shards),
            &shards,
            |b, &shards| b.iter(|| identify_sharded(&profiles, shards, shards)),
        );
    }

    for s in ALL_STRATEGIES {
        group.bench_with_input(BenchmarkId::new("clustering", s.to_string()), &s, |b, s| {
            b.iter(|| cluster(&set, *s))
        });
    }

    group.bench_function("test_generation_sinspair", |b| {
        b.iter(|| {
            exemplars(
                &set,
                snowboard::cluster::Strategy::SInsPair,
                ClusterOrder::UncommonFirst,
                1,
                &std::collections::HashSet::new(),
            )
        })
    });
    group.finish();
}

/// Store-backed preparation, cold (empty directory: every profile executed,
/// PMC set built) vs warm (same corpus already stored: profiles and the PMC
/// set served from disk). The gap is what the persistent store saves on an
/// unchanged corpus.
fn bench_store(c: &mut Criterion) {
    static DIR_SEQ: AtomicU64 = AtomicU64::new(0);
    let fresh_dir = || {
        std::env::temp_dir().join(format!(
            "sb-bench-store-{}-{}",
            std::process::id(),
            DIR_SEQ.fetch_add(1, Ordering::Relaxed)
        ))
    };
    let cfg = PipelineCfg {
        seed: 5,
        corpus_target: 12,
        fuzz_budget: 180,
        workers: 2,
        ..PipelineCfg::default()
    };
    let opts = IdentifyOpts::sharded(4, 2);

    let mut group = c.benchmark_group("store");
    group.sample_size(10);

    group.bench_function("prepare_cold", |b| {
        b.iter(|| {
            let dir = fresh_dir();
            let mut store = Store::open(&dir).expect("open store");
            let out = sb_store::prepare(KernelConfig::v5_12_rc3(), &cfg, &opts, &mut store)
                .expect("cold prepare");
            std::fs::remove_dir_all(&dir).ok();
            out.0.pmcs.len()
        })
    });

    let warm_dir = fresh_dir();
    let mut seed_store = Store::open(&warm_dir).expect("open store");
    sb_store::prepare(KernelConfig::v5_12_rc3(), &cfg, &opts, &mut seed_store)
        .expect("seed prepare");
    group.bench_function("prepare_warm", |b| {
        b.iter(|| {
            let mut store = Store::open(&warm_dir).expect("open store");
            let out = sb_store::prepare(KernelConfig::v5_12_rc3(), &cfg, &opts, &mut store)
                .expect("warm prepare");
            assert_eq!(out.1.profile_misses, 0, "warm run must not re-profile");
            out.0.pmcs.len()
        })
    });
    group.finish();
    std::fs::remove_dir_all(&warm_dir).ok();
}

criterion_group!(benches, bench_pipeline, bench_store);
criterion_main!(benches);
