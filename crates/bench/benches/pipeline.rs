//! Criterion bench for E6: the offline pipeline stages — sequential
//! profiling, PMC identification (Algorithm 1), clustering per strategy,
//! and exemplar selection (concurrent-test generation).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use sb_kernel::{boot, KernelConfig};
use sb_vmm::Executor;
use snowboard::cluster::{cluster, ALL_STRATEGIES};
use snowboard::pmc::identify;
use snowboard::profile::{profile_corpus, profile_one};
use snowboard::select::{exemplars, ClusterOrder};

fn bench_pipeline(c: &mut Criterion) {
    let booted = boot(KernelConfig::v5_12_rc3());
    let corpus = sb_fuzz::seed_programs();
    let profiles = profile_corpus(&booted, &corpus, 4);
    let set = identify(&profiles);

    let mut group = c.benchmark_group("pipeline");
    group.sample_size(20);

    let mut exec = Executor::new(1);
    group.bench_function("profile_one_test", |b| {
        b.iter(|| profile_one(&mut exec, &booted, 0, &corpus[0]))
    });

    group.bench_function("pmc_identification", |b| b.iter(|| identify(&profiles)));

    for s in ALL_STRATEGIES {
        group.bench_with_input(BenchmarkId::new("clustering", s.to_string()), &s, |b, s| {
            b.iter(|| cluster(&set, *s))
        });
    }

    group.bench_function("test_generation_sinspair", |b| {
        b.iter(|| {
            exemplars(
                &set,
                snowboard::cluster::Strategy::SInsPair,
                ClusterOrder::UncommonFirst,
                1,
                &std::collections::HashSet::new(),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
