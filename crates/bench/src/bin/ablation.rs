//! Ablation study of Snowboard's design choices (DESIGN.md §4's "expected
//! shape" claims, taken apart one knob at a time):
//!
//! 1. **flags learning** (`pmc_access_coming`): Algorithm 2's cross-trial
//!    memory of the access preceding a PMC access. Off → only post-access
//!    preemption remains.
//! 2. **hint precision**: Snowboard's site+range matching vs SKI's
//!    site-only matching vs PCT vs unguided random.
//! 3. **incidental-PMC pickup** (Algorithm 2 lines 26–27).
//! 4. **cluster ordering**: uncommon-first vs random (also in Table 3).
//! 5. **detector window**: how the DataCollider stall-window size changes
//!    what the campaign reports.

use sb_bench::{prepare, print_table, Scale};
use sb_kernel::prog::{Domain, Res};
use sb_kernel::{boot, KernelConfig, Program, Syscall};
use sb_vmm::sched::{PctSched, RandomSched, Scheduler, SkiSched, SnowboardSched};
use sb_vmm::Executor;
use snowboard::cluster::Strategy;
use snowboard::pmc::identify;
use snowboard::profile::profile_corpus;
use snowboard::select::ClusterOrder;

/// Trials to expose bug #12 with a given scheduler factory, averaged over
/// seeds. Returns (average trials, hits).
fn expose_12(
    booted: &sb_kernel::BootedKernel,
    make: &mut dyn FnMut(u64) -> Box<dyn FnMut(u64) -> Box<dyn Scheduler>>,
    seeds: u64,
    cap: u32,
) -> (f64, u64) {
    let writer = Program::new(vec![
        Syscall::Socket { domain: Domain::L2tp },
        Syscall::Connect { sock: Res(0), tunnel_id: 2 },
    ]);
    let reader = Program::new(vec![
        Syscall::Socket { domain: Domain::L2tp },
        Syscall::Connect { sock: Res(0), tunnel_id: 2 },
        Syscall::Sendmsg { sock: Res(0), len: 1 },
    ]);
    let mut exec = Executor::new(2);
    let mut total = 0u64;
    let mut hits = 0u64;
    for seed in 0..seeds {
        let mut per_trial = make(seed);
        let mut exposed = None;
        for trial in 0..cap {
            let mut sched = per_trial(u64::from(trial));
            let r = exec.run(
                booted.snapshot.clone(),
                vec![
                    booted.kernel.process_job(writer.clone()),
                    booted.kernel.process_job(reader.clone()),
                ],
                sched.as_mut(),
            );
            if sb_detect::analyze(&r.report)
                .iter()
                .any(|f| snowboard::triage::triage(f) == Some(12))
            {
                exposed = Some(trial + 1);
                break;
            }
        }
        match exposed {
            Some(t) => {
                total += u64::from(t);
                hits += 1;
            }
            None => total += u64::from(cap),
        }
    }
    (total as f64 / seeds as f64, hits)
}

fn main() {
    let scale = Scale::from_env();
    let booted = boot(KernelConfig::v5_12_rc3());

    // Derive the l2tp PMC for hint-based schedulers.
    let writer = Program::new(vec![
        Syscall::Socket { domain: Domain::L2tp },
        Syscall::Connect { sock: Res(0), tunnel_id: 2 },
    ]);
    let reader = Program::new(vec![
        Syscall::Socket { domain: Domain::L2tp },
        Syscall::Connect { sock: Res(0), tunnel_id: 2 },
        Syscall::Sendmsg { sock: Res(0), len: 1 },
    ]);
    let profiles = profile_corpus(&booted, &[writer, reader], 2);
    let set = identify(&profiles);
    let (_, pmc) = snowboard::metrics::find_pmc_by_sites(&set, "list_add_rcu", "l2tp_tunnel_get")
        .expect("l2tp PMC");
    let hints = pmc.hints();

    println!("\nAblation 1+2 — scheduler variants vs bug #12 (avg trials over 10 seeds, cap 2048)\n");
    let seeds = 10;
    let cap = 2048;
    let mut rows = Vec::new();
    {
        // Full Algorithm 2.
        let mut make = |seed: u64| -> Box<dyn FnMut(u64) -> Box<dyn Scheduler>> {
            let sched = std::rc::Rc::new(std::cell::RefCell::new(SnowboardSched::new(seed, hints)));
            Box::new(move |trial| {
                sched.borrow_mut().begin_trial(trial);
                Box::new(SharedSched(std::rc::Rc::clone(&sched)))
            })
        };
        let (avg, hits) = expose_12(&booted, &mut make, seeds, cap);
        rows.push(vec!["Snowboard (full)".into(), format!("{avg:.1}"), format!("{hits}/{seeds}")]);
    }
    {
        let mut make = |seed: u64| -> Box<dyn FnMut(u64) -> Box<dyn Scheduler>> {
            let sched = std::rc::Rc::new(std::cell::RefCell::new(
                SnowboardSched::without_flag_learning(seed, hints),
            ));
            Box::new(move |trial| {
                sched.borrow_mut().begin_trial(trial);
                Box::new(SharedSched(std::rc::Rc::clone(&sched)))
            })
        };
        let (avg, hits) = expose_12(&booted, &mut make, seeds, cap);
        rows.push(vec!["Snowboard w/o flags".into(), format!("{avg:.1}"), format!("{hits}/{seeds}")]);
    }
    {
        let sites: Vec<_> = hints.iter().map(|h| h.site).collect();
        let mut make = |seed: u64| -> Box<dyn FnMut(u64) -> Box<dyn Scheduler>> {
            let sites = sites.clone();
            Box::new(move |trial| Box::new(SkiSched::new(seed ^ trial, sites.clone())))
        };
        let (avg, hits) = expose_12(&booted, &mut make, seeds, cap);
        rows.push(vec!["SKI (site-only)".into(), format!("{avg:.1}"), format!("{hits}/{seeds}")]);
    }
    {
        let mut make = |seed: u64| -> Box<dyn FnMut(u64) -> Box<dyn Scheduler>> {
            Box::new(move |trial| Box::new(PctSched::new(seed ^ (trial << 17), 300, 3)))
        };
        let (avg, hits) = expose_12(&booted, &mut make, seeds, cap);
        rows.push(vec!["PCT (d=3)".into(), format!("{avg:.1}"), format!("{hits}/{seeds}")]);
    }
    {
        let mut make = |seed: u64| -> Box<dyn FnMut(u64) -> Box<dyn Scheduler>> {
            Box::new(move |trial| Box::new(RandomSched::new(seed ^ (trial << 13), 0.005)))
        };
        let (avg, hits) = expose_12(&booted, &mut make, seeds, cap);
        rows.push(vec!["Random (unguided)".into(), format!("{avg:.1}"), format!("{hits}/{seeds}")]);
    }
    print_table(&["Scheduler", "Avg trials to #12", "Exposed"], &rows);

    println!("\nAblation 3+4 — campaign knobs (S-INS-PAIR, quick pipeline)\n");
    let p = prepare(KernelConfig::v5_12_rc3(), &scale, 2021);
    let mut rows = Vec::new();
    for (label, order, incidental) in [
        ("uncommon-first + incidental", ClusterOrder::UncommonFirst, true),
        ("uncommon-first, no incidental", ClusterOrder::UncommonFirst, false),
        ("random order + incidental", ClusterOrder::Random, true),
    ] {
        let exemplars = p.exemplars(Strategy::SInsPair, order);
        let mut cfg = scale.campaign_cfg(77);
        cfg.incidental = incidental;
        let report = p.campaign(&exemplars, &cfg).expect("ablation campaign");
        let mean_day = if report.issues.is_empty() || report.total_steps == 0 {
            f64::NAN
        } else {
            report
                .issues
                .iter()
                .filter(|i| i.bug_id.is_some())
                .map(|i| 7.0 * i.found_after_steps as f64 / report.total_steps as f64)
                .sum::<f64>()
                / report.bug_ids().len().max(1) as f64
        };
        rows.push(vec![
            label.to_owned(),
            report.bug_ids().len().to_string(),
            format!("{mean_day:.2}"),
        ]);
    }
    print_table(&["Variant", "Bugs found", "Mean days-to-find"], &rows);
}

/// Adapter so one persistent scheduler (keeping `flags` across trials) can
/// be handed to the executor per trial.
struct SharedSched(std::rc::Rc<std::cell::RefCell<SnowboardSched>>);

impl Scheduler for SharedSched {
    fn after_access(&mut self, t: usize, access: &sb_vmm::Access) -> bool {
        self.0.borrow_mut().after_access(t, access)
    }
    fn pick(&mut self, prev: usize, candidates: &[usize]) -> usize {
        self.0.borrow_mut().pick(prev, candidates)
    }
    fn on_forced_switch(&mut self, t: usize) {
        self.0.borrow_mut().on_forced_switch(t)
    }
}
