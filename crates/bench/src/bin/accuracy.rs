//! Experiment E3 — regenerates the **§5.3.2 PMC-identification numbers**:
//!
//! * *accuracy*: the fraction of all tested concurrent inputs that actually
//!   exercised a predicted PMC (paper: 784.9K / 3743.1K ≈ 22%), and
//! * *precision*: the fraction of PMC-generated inputs whose predicted
//!   channel was exercised in at least one trial (paper: ≈ 36%).

use sb_bench::{prepare, run_strategy, Scale};
use sb_kernel::KernelConfig;
use snowboard::baseline::{run_baseline, Pairing};
use snowboard::cluster::Strategy;
use snowboard::select::ClusterOrder;

fn main() {
    let scale = Scale::from_env();
    let p = prepare(KernelConfig::v5_12_rc3(), &scale, 2021);

    // PMC-guided inputs across a few strategies (as in the real campaign,
    // where all strategies contribute tested inputs).
    let mut pmc_tested = 0usize;
    let mut pmc_exercised = 0usize;
    for strategy in [
        Strategy::SInsPair,
        Strategy::SIns,
        Strategy::SCh,
        Strategy::SMem,
    ] {
        let report = run_strategy(&p, strategy, ClusterOrder::UncommonFirst, &scale, 17);
        eprintln!(
            "[accuracy] {strategy}: tested {}, exercised {} ({:.1}%)",
            report.tested(),
            report.exercised(),
            100.0 * report.accuracy()
        );
        pmc_tested += report.tested();
        pmc_exercised += report.exercised();
    }

    // Baseline inputs involve no prediction; they dilute overall accuracy
    // exactly as in the paper's accounting.
    let baseline_tests = {
        let r1 = run_baseline(&p.booted, &p.corpus, Pairing::Random, scale.max_tested / 2, scale.trials / 4, 23, scale.workers, true);
        let r2 = run_baseline(&p.booted, &p.corpus, Pairing::Duplicate, scale.max_tested / 2, scale.trials / 4, 29, scale.workers, true);
        r1.tested() + r2.tested()
    };

    let total_inputs = pmc_tested + baseline_tests;
    let precision = 100.0 * pmc_exercised as f64 / pmc_tested.max(1) as f64;
    let accuracy = 100.0 * pmc_exercised as f64 / total_inputs.max(1) as f64;
    println!("\n§5.3.2 PMC identification (reproduction)\n");
    println!("PMCs identified:                 {}", p.pmcs.len());
    println!("PMC-guided inputs tested:        {pmc_tested}");
    println!("  of which exercised channel:    {pmc_exercised}");
    println!("baseline inputs tested:          {baseline_tests}");
    println!("PMC prediction precision:        {precision:.1}%   (paper: ~36%)");
    println!("overall exercised/tested inputs: {accuracy:.1}%   (paper: ~22%)");
    println!(
        "\nMisprediction causes mirror §5.3.2: private re-allocation of the profiled buffer \
         and control-flow divergence under concurrency."
    );
}
