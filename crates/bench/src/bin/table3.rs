//! Experiment E2 — regenerates **Table 3**: per-strategy testing results on
//! the 5.12-rc3 kernel.
//!
//! Eleven generation methods run with identical corpora and budgets: the
//! eight Table 1 clustering strategies, Random S-INS-PAIR (randomized
//! cluster order), and the Random/Duplicate pairing baselines. Reported per
//! method: exemplar-PMC count (cluster count), tested PMCs within budget,
//! and the issues found with week-normalized days-to-find.

use sb_bench::{issues_cell, prepare, print_table, run_strategy, Scale};
use sb_kernel::KernelConfig;
use snowboard::baseline::{run_baseline, Pairing};
use snowboard::cluster::{cluster, ALL_STRATEGIES};
use snowboard::select::ClusterOrder;

fn main() {
    let scale = Scale::from_env();
    let p = prepare(KernelConfig::v5_12_rc3(), &scale, 2021);

    let mut rows: Vec<Vec<String>> = Vec::new();
    for strategy in ALL_STRATEGIES {
        let clusters = cluster(&p.pmcs, strategy).len();
        eprintln!("[table3] {strategy}: {clusters} clusters");
        let report = run_strategy(&p, strategy, ClusterOrder::UncommonFirst, &scale, 3);
        rows.push(vec![
            strategy.to_string(),
            clusters.to_string(),
            report.tested().to_string(),
            issues_cell(&report),
        ]);
    }

    // Random S-INS-PAIR: identical clustering, randomized cluster order.
    {
        let strategy = snowboard::cluster::Strategy::SInsPair;
        let clusters = cluster(&p.pmcs, strategy).len();
        let report = run_strategy(&p, strategy, ClusterOrder::Random, &scale, 3);
        rows.push(vec![
            "Random S-INS-PAIR".to_owned(),
            clusters.to_string(),
            report.tested().to_string(),
            issues_cell(&report),
        ]);
    }

    // Baselines: no PMC analysis at all.
    for pairing in [Pairing::Random, Pairing::Duplicate] {
        let report = run_baseline(
            &p.booted,
            &p.corpus,
            pairing,
            scale.max_tested,
            scale.trials / 4,
            11,
            scale.workers,
            true,
        );
        rows.push(vec![
            pairing.to_string(),
            "NA".to_owned(),
            format!("{} (tests)", report.tested()),
            issues_cell(&report),
        ]);
    }

    println!("\nTable 3 — testing results on 5.12-rc3 per generation method (reproduction)\n");
    print_table(
        &["Clustering strategy", "Exemplar PMCs", "Tested PMCs", "Issues found (days)"],
        &rows,
    );
    println!(
        "\nExpected shape vs paper: S-FULL has the most clusters yet finds only the common \
         benign race (#13); instruction-based strategies (S-INS, S-INS-PAIR) find the most \
         bugs; ordered S-INS-PAIR beats Random S-INS-PAIR; baselines find little beyond #13."
    );
}
