//! Experiment E5 — regenerates the **§5.4 interleavings-to-expose**
//! comparison: how many interleavings Snowboard vs SKI needs to expose each
//! panic/console bug (paper: SKI needs ~84× more on average — 826.29 vs
//! 9.76 interleavings per test).
//!
//! For each console-detectable bug, the known triggering test pair runs
//! under (a) the Snowboard scheduler hinted with the bug's PMC and (b) a
//! SKI-style scheduler that yields at the same *instructions* regardless of
//! memory target, counting trials until the bug manifests.

use sb_bench::print_table;
use sb_kernel::prog::{Domain, IoctlCmd, MsgCmd, Path, Res};
use sb_kernel::{boot, KernelConfig, Program, Syscall};
use snowboard::metrics::{hits_bug, interleavings_to_expose, SchedKind};
use snowboard::pmc::identify;
use snowboard::profile::profile_corpus;
use sb_vmm::Executor;

struct Case {
    bug: u8,
    label: &'static str,
    config: KernelConfig,
    writer: Program,
    reader: Program,
    write_fn: &'static str,
    read_fn: &'static str,
}

fn cases() -> Vec<Case> {
    vec![
        Case {
            bug: 12,
            label: "#12 l2tp order violation",
            config: KernelConfig::v5_12_rc3(),
            writer: Program::new(vec![
                Syscall::Socket { domain: Domain::L2tp },
                Syscall::Connect { sock: Res(0), tunnel_id: 2 },
            ]),
            reader: Program::new(vec![
                Syscall::Socket { domain: Domain::L2tp },
                Syscall::Connect { sock: Res(0), tunnel_id: 2 },
                Syscall::Sendmsg { sock: Res(0), len: 1 },
            ]),
            write_fn: "list_add_rcu",
            read_fn: "l2tp_tunnel_get",
        },
        Case {
            bug: 1,
            label: "#1 rhashtable double fetch",
            config: KernelConfig::v5_3_10(),
            writer: Program::new(vec![
                Syscall::Msgget { key: 3 },
                Syscall::Msgctl { id: Res(0), cmd: MsgCmd::Rmid },
            ]),
            reader: Program::new(vec![Syscall::Msgget { key: 3 }]),
            write_fn: "rht_assign_unlock",
            read_fn: "rht_ptr",
        },
        Case {
            bug: 11,
            label: "#11 configfs null deref",
            config: KernelConfig::v5_12_rc3(),
            writer: Program::new(vec![
                Syscall::Mkdir { item: 1 },
                Syscall::Rmdir { item: 1 },
            ]),
            reader: Program::new(vec![
                Syscall::Mkdir { item: 1 },
                Syscall::Open { path: Path::Configfs(1) },
            ]),
            write_fn: "configfs_detach",
            read_fn: "configfs_lookup",
        },
        Case {
            bug: 2,
            label: "#2 ext4 swap boot loader",
            config: KernelConfig::v5_12_rc3(),
            writer: Program::new(vec![
                Syscall::Open { path: Path::Ext4File(1) },
                Syscall::Write { fd: Res(0), off: 1, val: 7 },
                Syscall::Ioctl { fd: Res(0), cmd: IoctlCmd::Ext4SwapBoot, arg: 0 },
            ]),
            reader: Program::new(vec![
                Syscall::Open { path: Path::Ext4File(1) },
                Syscall::Write { fd: Res(0), off: 1, val: 7 },
                Syscall::Ioctl { fd: Res(0), cmd: IoctlCmd::Ext4SwapBoot, arg: 0 },
            ]),
            write_fn: "ext4_mark_inode_dirty",
            read_fn: "swap_inode_boot_loader",
        },
        Case {
            bug: 4,
            label: "#4 blk capacity shrink",
            config: KernelConfig::v5_3_10(),
            writer: Program::new(vec![
                Syscall::Open { path: Path::BlockDev },
                Syscall::Ioctl { fd: Res(0), cmd: IoctlCmd::BlkSetSize, arg: 0 },
            ]),
            reader: Program::new(vec![
                Syscall::Open { path: Path::Ext4File(0) },
                Syscall::Write { fd: Res(0), off: 9, val: 3 },
            ]),
            write_fn: "blkdev_set_capacity",
            read_fn: "blk_update_request",
        },
    ]
}

fn main() {
    const MAX_TRIALS: u32 = 4096;
    const SEEDS: u64 = 5;
    let mut rows = Vec::new();
    let mut totals: std::collections::HashMap<SchedKind, (f64, u32)> =
        std::collections::HashMap::new();
    for case in cases() {
        let booted = boot(case.config);
        let mut exec = Executor::new(2);
        // Derive the PMC exactly as the pipeline would: profile the two
        // tests sequentially and identify.
        let profiles = profile_corpus(&booted, &[case.writer.clone(), case.reader.clone()], 2);
        let set = identify(&profiles);
        let Some((_, pmc)) = snowboard::metrics::find_pmc_by_sites(&set, case.write_fn, case.read_fn)
        else {
            eprintln!("[skip] no PMC for {}", case.label);
            continue;
        };
        let mut row = vec![case.label.to_owned()];
        for kind in [SchedKind::Snowboard, SchedKind::Ski, SchedKind::Random] {
            // Average over seeds; count failures at the cap.
            let mut sum = 0u64;
            let mut hitc = 0u32;
            for seed in 0..SEEDS {
                match interleavings_to_expose(
                    &mut exec,
                    &booted,
                    &case.writer,
                    &case.reader,
                    pmc,
                    kind,
                    1000 + seed,
                    MAX_TRIALS,
                    hits_bug(case.bug),
                ) {
                    Some(r) => {
                        sum += u64::from(r.interleavings);
                        hitc += 1;
                    }
                    None => sum += u64::from(MAX_TRIALS),
                }
            }
            let avg = sum as f64 / SEEDS as f64;
            let cell = if hitc == 0 {
                format!(">{MAX_TRIALS}")
            } else {
                format!("{avg:.1}")
            };
            row.push(cell);
            let e = totals.entry(kind).or_insert((0.0, 0));
            e.0 += avg;
            e.1 += 1;
        }
        rows.push(row);
    }
    println!("\n§5.4 interleavings needed to expose each bug (avg of {SEEDS} seeds, cap {MAX_TRIALS})\n");
    print_table(&["Bug", "Snowboard", "SKI", "Random"], &rows);
    let avg = |k: SchedKind| {
        totals
            .get(&k)
            .map(|(s, n)| s / f64::from(*n))
            .unwrap_or(f64::NAN)
    };
    let sb = avg(SchedKind::Snowboard);
    let ski = avg(SchedKind::Ski);
    println!(
        "\nAverages — Snowboard: {sb:.1}, SKI: {ski:.1} interleavings/test (ratio {:.1}x; \
         paper: 9.76 vs 826.29, 84x).",
        ski / sb
    );
}
