//! Experiment E1 — regenerates **Table 2**: the issues Snowboard finds on
//! the two kernel versions.
//!
//! The 5.3.10 campaign uses all clustering strategies combined (§5.1); the
//! 5.12-rc3 campaign unions the per-strategy runs (here: the strongest
//! strategies plus the baselines, for time). Every row of the ground-truth
//! registry is printed with whether this run rediscovered it.

use std::collections::BTreeMap;

use sb_bench::{prepare, print_table, Scale};
use sb_kernel::{bugs, KernelConfig, KernelVersion};
use snowboard::cluster::{Strategy, ALL_STRATEGIES};
use snowboard::select::{combined_exemplars, ClusterOrder};
use snowboard::PmcId;

fn main() {
    let scale = Scale::from_env();
    let mut found: BTreeMap<u8, String> = BTreeMap::new();

    for config in [KernelConfig::v5_3_10(), KernelConfig::v5_12_rc3()] {
        let p = prepare(config, &scale, 2021);
        // "All clustering strategies combined" (§5.1): iterative selection
        // across every strategy, uncommon-first.
        let picks = combined_exemplars(&p.pmcs, &ALL_STRATEGIES, 2021);
        let ids: Vec<PmcId> = picks.iter().map(|(_, id)| *id).collect();
        eprintln!(
            "[{}] {} exemplar PMCs selected (budget {})",
            config.version,
            ids.len(),
            scale.max_tested
        );
        let report = p
            .campaign(&ids, &scale.campaign_cfg(99))
            .expect("combined campaign");
        eprintln!(
            "[{}] tested {} PMCs, {} executions, accuracy {:.2}",
            config.version,
            report.tested(),
            report.executions,
            report.accuracy()
        );
        for id in report.bug_ids() {
            found
                .entry(id)
                .and_modify(|v| {
                    if !v.contains("combined") {
                        v.push_str("+combined");
                    }
                })
                .or_insert_with(|| format!("combined/{}", config.version));
        }
        // The paper additionally credits baselines with some finds; run a
        // small duplicate-pairing batch to mirror that.
        let base = snowboard::baseline::run_baseline(
            &p.booted,
            &p.corpus,
            snowboard::baseline::Pairing::Duplicate,
            scale.max_tested / 4,
            scale.trials / 4,
            5,
            scale.workers,
            true,
        );
        for id in base.bug_ids() {
            found
                .entry(id)
                .or_insert_with(|| format!("duplicate/{}", config.version));
        }
        // An S-INS-PAIR focused pass (the best strategy per Table 3).
        let focused = sb_bench::run_strategy(&p, Strategy::SInsPair, ClusterOrder::UncommonFirst, &scale, 7);
        for id in focused.bug_ids() {
            found
                .entry(id)
                .or_insert_with(|| format!("S-INS-PAIR/{}", config.version));
        }
    }

    println!("\nTable 2 — issues found by Snowboard (reproduction)\n");
    let rows: Vec<Vec<String>> = bugs::registry()
        .iter()
        .map(|b| {
            let versions = b
                .versions
                .iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join("/");
            vec![
                sb_bench::bug_label(b.id),
                b.title.to_owned(),
                versions,
                b.subsystem.to_owned(),
                b.kind.to_string(),
                if b.harmful { "Harmful" } else { "Benign/Reported" }.to_owned(),
                if b.distinct_input { "Distinct" } else { "Duplicate" }.to_owned(),
                found
                    .get(&b.id)
                    .cloned()
                    .unwrap_or_else(|| "not found in this run".to_owned()),
            ]
        })
        .collect();
    print_table(
        &["ID", "Summary", "Version", "Subsystem", "Type", "Status", "Input", "Found by"],
        &rows,
    );
    let total_found = found.len();
    let v5_3_found = found
        .keys()
        .filter(|id| {
            bugs::by_id(**id)
                .map(|b| b.versions.contains(&KernelVersion::V5_3_10))
                .unwrap_or(false)
        })
        .count();
    println!(
        "\nFound {total_found}/17 registry issues ({v5_3_found} present in 5.3.10). \
         Paper: 17 issues total, 9 bugs in the stable kernel."
    );
}
