//! Experiments E4 + E6 — regenerates the **§5.4 performance numbers**:
//!
//! * pipeline performance: profiling rate, PMC identification time,
//!   clustering time per strategy (S-FULL dominating), and concurrent-test
//!   generation throughput (paper: >1000 tests/s);
//! * execution throughput: Snowboard vs SKI executions/minute (paper:
//!   193.8 vs 170.3) — SKI yields at PMC instructions regardless of memory
//!   target and therefore switches more.

use std::time::Instant;

use sb_bench::{prepare, print_table, Scale};
use sb_kernel::KernelConfig;
use snowboard::cluster::{cluster, ALL_STRATEGIES};
use snowboard::metrics::{measure_throughput, SchedKind};
use snowboard::select::{exemplars, ClusterOrder};
use sb_vmm::Executor;

fn main() {
    let scale = Scale::from_env();
    let t_all = Instant::now();
    let p = prepare(KernelConfig::v5_12_rc3(), &scale, 2021);

    println!("\n§5.4 pipeline performance (reproduction)\n");
    let profile_rate = p.corpus.len() as f64 / p.stats.profile_time.as_secs_f64().max(1e-9);
    println!(
        "profiling:          {} tests in {:.2?} ({:.0} tests/s)",
        p.corpus.len(),
        p.stats.profile_time,
        profile_rate
    );
    println!(
        "PMC identification: {} PMCs in {:.2?}",
        p.pmcs.len(),
        p.stats.identify_time
    );

    // Clustering time per strategy; S-FULL is the costly one.
    let mut rows = Vec::new();
    for s in ALL_STRATEGIES {
        let t = Instant::now();
        let n = cluster(&p.pmcs, s).len();
        rows.push(vec![s.to_string(), n.to_string(), format!("{:.2?}", t.elapsed())]);
    }
    println!();
    print_table(&["Strategy", "Clusters", "Clustering time"], &rows);

    // Concurrent-test *generation* throughput: ordering clusters + drawing
    // exemplars + pairing (no execution).
    let t = Instant::now();
    let ids = exemplars(
        &p.pmcs,
        snowboard::cluster::Strategy::SInsPair,
        ClusterOrder::UncommonFirst,
        1,
        &std::collections::HashSet::new(),
    );
    let gen_rate = ids.len() as f64 / t.elapsed().as_secs_f64().max(1e-9);
    println!(
        "\ntest generation:    {} concurrent tests in {:.2?} ({:.0} tests/s; paper: >1000/s)",
        ids.len(),
        t.elapsed(),
        gen_rate
    );

    // Execution throughput, Snowboard vs SKI, on the PMC whose hint
    // instructions touch the most distinct addresses — the case where SKI's
    // site-only yielding (regardless of memory target) switches most.
    let (_, pmc) = snowboard::metrics::hottest_pmc(&p.pmcs, &p.profiles).expect("non-empty set");
    let (w, r) = pmc.pairs[0];
    let writer = p.corpus[w as usize].clone();
    let reader = p.corpus[r as usize].clone();
    let mut exec = Executor::new(2);
    let n = if matches!(std::env::var("SB_SCALE").as_deref(), Ok("full")) {
        2000
    } else {
        500
    };
    println!(
        "\nexecution throughput over {n} executions of the hottest concurrent test\n\
         (write site {}, read site {}):",
        pmc.key.w.ins.display_name(),
        pmc.key.r.ins.display_name()
    );
    let mut rows = Vec::new();
    for kind in [SchedKind::Snowboard, SchedKind::Ski, SchedKind::Random] {
        let t = measure_throughput(&mut exec, &p.booted, &writer, &reader, pmc, kind, 9, n);
        let per_min = f64::from(t.executions) * 60.0 / t.elapsed.as_secs_f64().max(1e-9);
        rows.push(vec![
            kind.to_string(),
            format!("{per_min:.0} exec/min"),
            format!("{:.0} steps/exec", t.steps as f64 / f64::from(t.executions)),
            format!("{:.1} switches/exec", t.switches as f64 / f64::from(t.executions)),
        ]);
    }
    print_table(&["Scheduler", "Throughput", "Cost", "vCPU switches"], &rows);
    println!(
        "\nPaper: Snowboard 193.8 vs SKI 170.3 executions/minute, attributed to SKI's extra \
         vCPU switches (it yields at PMC instructions regardless of memory target). In this \
         substrate a vCPU switch is nearly free, so the effect shows as the switch-count \
         column: SKI switches substantially more per execution than Snowboard, which \
         reschedules only on precise PMC accesses. Total experiment time: {:.1?}",
        t_all.elapsed()
    );
}
