//! Shared experiment plumbing for the table/figure regeneration binaries.
//!
//! Every binary honors the `SB_SCALE` environment variable:
//!
//! * `SB_SCALE=quick` (default) — minutes-scale runs that reproduce the
//!   *shape* of each result.
//! * `SB_SCALE=full` — larger corpora and budgets for tighter estimates.
//!
//! The experiment↔paper mapping is recorded in `DESIGN.md` §4 and results
//! are archived in `EXPERIMENTS.md`.

use snowboard::cluster::Strategy;
use snowboard::select::ClusterOrder;
use snowboard::{CampaignCfg, CampaignReport, Pipeline, PipelineCfg};

use sb_kernel::bugs;
use sb_kernel::KernelConfig;

/// Scaled experiment parameters.
#[derive(Clone, Debug)]
pub struct Scale {
    /// Distilled corpus size target.
    pub corpus_target: usize,
    /// Fuzzing candidate budget.
    pub fuzz_budget: u64,
    /// Trials per concurrent test.
    pub trials: u32,
    /// Concurrent-test budget per strategy.
    pub max_tested: usize,
    /// Worker threads.
    pub workers: usize,
}

impl Scale {
    /// Reads the scale from `SB_SCALE` (quick/full).
    pub fn from_env() -> Self {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get().clamp(2, 16))
            .unwrap_or(4);
        match std::env::var("SB_SCALE").as_deref() {
            Ok("full") => Scale {
                corpus_target: 250,
                fuzz_budget: 6_000,
                trials: 64,
                max_tested: 4_000,
                workers,
            },
            _ => Scale {
                corpus_target: 100,
                fuzz_budget: 1_500,
                trials: 24,
                max_tested: 800,
                workers,
            },
        }
    }

    /// The pipeline configuration for this scale.
    pub fn pipeline_cfg(&self, seed: u64) -> PipelineCfg {
        PipelineCfg {
            seed,
            corpus_target: self.corpus_target,
            fuzz_budget: self.fuzz_budget,
            workers: self.workers,
            ..PipelineCfg::default()
        }
    }

    /// The campaign configuration for this scale.
    pub fn campaign_cfg(&self, seed: u64) -> CampaignCfg {
        CampaignCfg {
            seed,
            trials_per_pmc: self.trials,
            max_tested_pmcs: self.max_tested,
            workers: self.workers,
            stop_on_finding: true,
            incidental: true,
            ..CampaignCfg::default()
        }
    }
}

/// Prepares a pipeline for one kernel version at the given scale.
pub fn prepare(version: KernelConfig, scale: &Scale, seed: u64) -> Pipeline {
    eprintln!("[prep] booting {:?}, fuzzing corpus (target {})...", version.version, scale.corpus_target);
    let p = Pipeline::prepare(version, scale.pipeline_cfg(seed));
    eprintln!(
        "[prep] corpus {} tests, {} edges; {} shared accesses; {} PMCs ({:.1?} fuzz, {:.1?} profile, {:.1?} identify)",
        p.corpus.len(),
        p.stats.edges,
        p.stats.shared_accesses,
        p.stats.pmcs_identified,
        p.stats.fuzz_time,
        p.stats.profile_time,
        p.stats.identify_time,
    );
    p
}

/// Runs a single-strategy campaign.
pub fn run_strategy(
    p: &Pipeline,
    strategy: Strategy,
    order: ClusterOrder,
    scale: &Scale,
    seed: u64,
) -> CampaignReport {
    let exemplars = p.exemplars(strategy, order);
    let report = p
        .campaign(&exemplars, &scale.campaign_cfg(seed))
        .expect("benchmark campaign");
    if !report.quarantined.is_empty() {
        eprintln!(
            "[warn] {} quarantined job(s) excluded from {} results",
            report.quarantined.len(),
            strategy
        );
    }
    report
}

/// Formats the "issues found (days)" cell of Table 3: triaged bug ids with
/// week-normalized discovery times.
pub fn issues_cell(report: &CampaignReport) -> String {
    if report.total_steps == 0 {
        return "-".to_owned();
    }
    let mut cells: Vec<String> = Vec::new();
    let mut seen = std::collections::HashSet::new();
    for issue in &report.issues {
        if let Some(id) = issue.bug_id {
            if seen.insert(id) {
                let days = 7.0 * issue.found_after_steps as f64 / report.total_steps as f64;
                cells.push(format!("#{id} ({days:.1})"));
            }
        }
    }
    if cells.is_empty() {
        "-".to_owned()
    } else {
        cells.join(", ")
    }
}

/// Renders a ground-truth row label ("#12", bold-equivalent `*` for
/// harmful).
pub fn bug_label(id: u8) -> String {
    let b = bugs::by_id(id).expect("registry id");
    if b.harmful {
        format!("#{id}*")
    } else {
        format!("#{id}")
    }
}

/// Prints a text table with aligned columns.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: Vec<String>| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            s.push_str(&format!("{:width$}  ", c, width = widths[i]));
        }
        println!("{}", s.trim_end());
    };
    line(headers.iter().map(|h| h.to_string()).collect());
    line(widths.iter().map(|w| "-".repeat(*w)).collect());
    for row in rows {
        line(row.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_defaults_to_quick() {
        // Note: assumes SB_SCALE unset in the test environment.
        let s = Scale::from_env();
        assert!(s.trials >= 8);
        assert!(s.workers >= 2);
    }

    #[test]
    fn bug_labels_mark_harmful() {
        assert_eq!(bug_label(13), "#13");
        assert_eq!(bug_label(12), "#12*");
    }

    #[test]
    fn issues_cell_formats_days() {
        use sb_detect::Finding;
        use snowboard::triage::IssueRecord;
        let report = CampaignReport {
            outcomes: vec![],
            issues: vec![IssueRecord {
                bug_id: Some(13),
                key: "k".into(),
                example: Finding::Deadlock,
                found_after_tests: 1,
                found_after_steps: 100,
            }],
            total_steps: 700,
            executions: 1,
            quarantined: vec![],
            store: None,
            supervise: None,
            fleet: None,
        };
        assert_eq!(issues_cell(&report), "#13 (1.0)");
    }
}
