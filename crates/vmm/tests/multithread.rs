//! Executor tests with three and four vCPUs: lock fairness, RCU with
//! multiple readers, and scheduling across more than two threads.

use sb_vmm::ctx::KResult;
use sb_vmm::exec::{Executor, Job, Outcome};
use sb_vmm::mem::GuestMem;
use sb_vmm::sched::{RandomSched, Scheduler};
use sb_vmm::{site, Ctx};

#[test]
fn four_threads_increment_under_one_lock() {
    let mut m = GuestMem::new();
    let lock = m.kmalloc(8).unwrap();
    let counter = m.kmalloc(8).unwrap();
    let mut exec = Executor::new(4);
    let job = move |name: &'static str| -> Job {
        Box::new(move |ctx: &Ctx| -> KResult<()> {
            for _ in 0..50 {
                ctx.with_lock(lock, || {
                    let v = ctx.read_u64(site!(name), counter)?;
                    ctx.write_u64(site!(name), counter, v + 1)?;
                    Ok(())
                })?;
            }
            Ok(())
        })
    };
    let mut sched = RandomSched::new(5, 0.3);
    let r = exec.run(
        m,
        vec![job("m4:a"), job("m4:b"), job("m4:c"), job("m4:d")],
        &mut sched,
    );
    assert_eq!(r.report.outcome, Outcome::Completed);
    assert_eq!(r.mem.read(counter, 8).unwrap(), 200);
}

#[test]
fn lock_waiters_are_served_fifo() {
    // Three threads contend on one lock; the coordinator hands the lock to
    // waiters in arrival order, so with a scheduler that parks each thread
    // at the lock in id order, the critical sections execute in id order.
    let mut m = GuestMem::new();
    let lock = m.kmalloc(8).unwrap();
    let log = m.kmalloc(64).unwrap();
    let cursor = m.kmalloc(8).unwrap();
    let mut exec = Executor::new(3);

    /// Round-robins aggressively so every thread reaches the lock before
    /// the holder finishes.
    struct RoundRobin;
    impl Scheduler for RoundRobin {
        fn after_access(&mut self, _t: usize, _a: &sb_vmm::Access) -> bool {
            true
        }
        fn pick(&mut self, prev: usize, c: &[usize]) -> usize {
            *c.iter().find(|t| **t > prev).unwrap_or(&c[0])
        }
    }

    let job = move |tid: u64| -> Job {
        Box::new(move |ctx: &Ctx| -> KResult<()> {
            // One access so every thread is live before contending.
            ctx.read_u64(site!("fifo:warm"), cursor)?;
            ctx.with_lock(lock, || {
                let c = ctx.read_u64(site!("fifo:cursor"), cursor)?;
                ctx.write_u8(site!("fifo:log"), log + c, tid)?;
                ctx.write_u64(site!("fifo:cursor"), cursor, c + 1)?;
                // Dawdle inside the critical section.
                for _ in 0..5 {
                    ctx.read_u64(site!("fifo:dawdle"), cursor)?;
                }
                Ok(())
            })?;
            Ok(())
        })
    };
    let r = exec.run(m, vec![job(10), job(11), job(12)], &mut RoundRobin);
    assert_eq!(r.report.outcome, Outcome::Completed);
    let order: Vec<u64> = (0..3).map(|i| r.mem.read(log + i, 1).unwrap()).collect();
    // Thread 0 wins the lock first (it runs first); 1 and 2 queue in order.
    assert_eq!(order, vec![10, 11, 12]);
}

#[test]
fn rcu_grace_period_waits_for_all_readers() {
    let mut m = GuestMem::new();
    let data = m.kmalloc(8).unwrap();
    m.write(data, 8, 7).unwrap();
    let flag = m.kmalloc(8).unwrap();
    let mut exec = Executor::new(3);

    struct Handoff;
    impl Scheduler for Handoff {
        fn after_access(&mut self, _t: usize, _a: &sb_vmm::Access) -> bool {
            true
        }
        fn pick(&mut self, prev: usize, c: &[usize]) -> usize {
            *c.iter().find(|t| **t != prev).unwrap_or(&c[0])
        }
    }

    let reader = move |name: &'static str| -> Job {
        Box::new(move |ctx: &Ctx| -> KResult<()> {
            ctx.rcu_read_lock()?;
            let v1 = ctx.read_u64(site!(name), data)?;
            // Several yield points inside the critical section.
            for _ in 0..4 {
                ctx.read_u64(site!(name), flag)?;
            }
            let v2 = ctx.read_u64(site!(name), data)?;
            assert_eq!(v1, v2, "grace period must not complete while we read");
            ctx.rcu_read_unlock()?;
            Ok(())
        })
    };
    let writer: Job = Box::new(move |ctx: &Ctx| -> KResult<()> {
        ctx.read_u64(site!("rcu3:w0"), flag)?;
        ctx.synchronize_rcu()?;
        ctx.write_u64(site!("rcu3:w1"), data, 99)?;
        Ok(())
    });
    let r = exec.run(
        m,
        vec![reader("rcu3:r1"), reader("rcu3:r2"), writer],
        &mut Handoff,
    );
    assert_eq!(r.report.outcome, Outcome::Completed, "{:?}", r.report.console);
    assert_eq!(r.mem.read(data, 8).unwrap(), 99);
}

#[test]
fn three_thread_runs_are_deterministic() {
    let run = |seed: u64| {
        let mut m = GuestMem::new();
        let cells: Vec<u64> = (0..3).map(|_| m.kmalloc(8).unwrap()).collect();
        let mut exec = Executor::new(3);
        let jobs: Vec<Job> = cells
            .iter()
            .enumerate()
            .map(|(i, c)| {
                let mine = *c;
                let other = cells[(i + 1) % 3];
                Box::new(move |ctx: &Ctx| -> KResult<()> {
                    for k in 0..25u64 {
                        ctx.write_u64(site!("det3:w"), mine, k)?;
                        ctx.read_u64(site!("det3:r"), other)?;
                    }
                    Ok(())
                }) as Job
            })
            .collect();
        let mut sched = RandomSched::new(seed, 0.4);
        let r = exec.run(m, jobs, &mut sched);
        r.report
            .trace
            .iter()
            .map(|a| (a.thread, a.addr, a.value))
            .collect::<Vec<_>>()
    };
    assert_eq!(run(3), run(3));
    assert_ne!(run(3), run(4));
}

#[test]
fn panic_in_one_of_four_threads_aborts_the_rest() {
    let mut m = GuestMem::new();
    let cell = m.kmalloc(8).unwrap();
    let mut exec = Executor::new(4);
    let spinner = move |name: &'static str| -> Job {
        Box::new(move |ctx: &Ctx| -> KResult<()> {
            for _ in 0..100_000 {
                ctx.read_u64(site!(name), cell)?;
            }
            Ok(())
        })
    };
    let crasher: Job = Box::new(move |ctx: &Ctx| -> KResult<()> {
        ctx.read_u64(site!("p4:pre"), cell)?;
        ctx.read_u64(site!("p4:null"), 0x8)?; // Null dereference.
        Ok(())
    });
    let mut sched = RandomSched::new(1, 0.5);
    let r = exec.run(
        m,
        vec![spinner("p4:a"), crasher, spinner("p4:c"), spinner("p4:d")],
        &mut sched,
    );
    assert!(r.report.outcome.is_panic());
    // No other thread ran to completion after the panic: each was aborted.
    let aborted = r
        .report
        .thread_faults
        .iter()
        .filter(|f| matches!(f, Some(sb_vmm::Fault::Aborted)))
        .count();
    assert!(aborted >= 1, "{:?}", r.report.thread_faults);
}
