//! End-to-end tests of the execution coordinator: scheduling, locks, RCU,
//! faults, liveness, and determinism.

use sb_vmm::ctx::KResult;
use sb_vmm::exec::{ExecLimits, Executor, Outcome};
use sb_vmm::mem::GuestMem;
use sb_vmm::sched::{FreeRun, RandomSched, Scheduler};
use sb_vmm::{site, AccessKind, Ctx, Fault};

/// A boxed kernel-thread job, as `Executor::run` takes them.
type BoxedJob = Box<dyn FnOnce(&Ctx) -> KResult<()> + Send>;

/// Boots a memory with one 8-byte cell preallocated at a fixed address.
fn mem_with_cell() -> (GuestMem, u64) {
    let mut m = GuestMem::new();
    let a = m.kmalloc(8).unwrap();
    (m, a)
}

#[test]
fn single_thread_runs_to_completion() {
    let (mem, cell) = mem_with_cell();
    let mut exec = Executor::new(1);
    let r = exec.run(
        mem,
        vec![Box::new(move |ctx: &Ctx| -> KResult<()> {
            ctx.write_u64(site!("t:w"), cell, 5)?;
            assert_eq!(ctx.read_u64(site!("t:r"), cell)?, 5);
            Ok(())
        })],
        &mut FreeRun,
    );
    assert_eq!(r.report.outcome, Outcome::Completed);
    assert_eq!(r.report.trace.len(), 2);
    assert_eq!(r.report.thread_faults, vec![None]);
    // Memory survives the run.
    assert_eq!(r.mem.read(cell, 8).unwrap(), 5);
}

#[test]
fn trace_records_access_features() {
    let (mem, cell) = mem_with_cell();
    let mut exec = Executor::new(1);
    let r = exec.run(
        mem,
        vec![Box::new(move |ctx: &Ctx| -> KResult<()> {
            ctx.write(site!("feat:w"), cell, 4, 0xDEAD_BEEF)?;
            ctx.read(site!("feat:r"), cell + 2, 2)?;
            Ok(())
        })],
        &mut FreeRun,
    );
    let w = &r.report.trace[0];
    assert_eq!(w.kind, AccessKind::Write);
    assert_eq!(w.len, 4);
    assert_eq!(w.value, 0xDEAD_BEEF);
    let rd = &r.report.trace[1];
    assert_eq!(rd.kind, AccessKind::Read);
    assert_eq!(rd.addr, cell + 2);
    // Little-endian projection: bytes 2..4 of DEADBEEF are AD DE.
    assert_eq!(rd.value, 0xDEAD);
}

#[test]
fn locks_provide_mutual_exclusion() {
    // Two threads increment a counter 100 times each under a lock; no lost
    // updates even under an aggressive random scheduler.
    let mut m = GuestMem::new();
    let lock = m.kmalloc(8).unwrap();
    let counter = m.kmalloc(8).unwrap();
    let mut exec = Executor::new(2);
    let job = move |name: &'static str| -> BoxedJob {
        Box::new(move |ctx: &Ctx| {
            for _ in 0..100 {
                ctx.lock(lock)?;
                let v = ctx.read_u64(site!(name), counter)?;
                ctx.write_u64(site!(name), counter, v + 1)?;
                ctx.unlock(lock)?;
            }
            Ok(())
        })
    };
    let mut sched = RandomSched::new(42, 0.3);
    let r = exec.run(m, vec![job("lk:a"), job("lk:b")], &mut sched);
    assert_eq!(r.report.outcome, Outcome::Completed);
    assert_eq!(r.mem.read(counter, 8).unwrap(), 200);
    assert!(r.report.switches > 0, "random scheduler should preempt");
}

#[test]
fn unlocked_counter_loses_updates_under_preemption() {
    // The mirror image of the previous test: without the lock, read-modify-
    // write pairs interleave and updates are lost — the fundamental
    // mechanism behind every data-race bug in the corpus.
    let mut m = GuestMem::new();
    let counter = m.kmalloc(8).unwrap();
    let mut exec = Executor::new(2);
    let job = move |name: &'static str| -> BoxedJob {
        Box::new(move |ctx: &Ctx| {
            for _ in 0..100 {
                let v = ctx.read_u64(site!(name), counter)?;
                ctx.write_u64(site!(name), counter, v + 1)?;
            }
            Ok(())
        })
    };
    let mut sched = RandomSched::new(7, 0.5);
    let r = exec.run(m, vec![job("nolk:a"), job("nolk:b")], &mut sched);
    assert_eq!(r.report.outcome, Outcome::Completed);
    let v = r.mem.read(counter, 8).unwrap();
    assert!(v < 200, "expected lost updates, got {v}");
}

#[test]
fn contended_lock_blocks_and_hands_over() {
    let mut m = GuestMem::new();
    let lock = m.kmalloc(8).unwrap();
    let data = m.kmalloc(8).unwrap();
    let mut exec = Executor::new(2);
    // Thread A takes the lock, writes, unlocks. Thread B spins on the same
    // lock. A scheduler that immediately switches to B forces B to block.
    struct SwitchOnce {
        done: bool,
    }
    impl Scheduler for SwitchOnce {
        fn after_access(&mut self, _t: usize, _a: &sb_vmm::Access) -> bool {
            !std::mem::replace(&mut self.done, true)
        }
        fn pick(&mut self, _prev: usize, c: &[usize]) -> usize {
            c[0]
        }
    }
    let r = exec.run(
        m,
        vec![
            Box::new(move |ctx: &Ctx| -> KResult<()> {
                ctx.lock(lock)?;
                ctx.write_u64(site!("ho:a1"), data, 1)?;
                ctx.write_u64(site!("ho:a2"), data, 2)?;
                ctx.unlock(lock)?;
                Ok(())
            }),
            Box::new(move |ctx: &Ctx| -> KResult<()> {
                ctx.lock(lock)?;
                let v = ctx.read_u64(site!("ho:b"), data)?;
                assert_eq!(v, 2, "B must only enter after A's critical section");
                ctx.unlock(lock)?;
                Ok(())
            }),
        ],
        &mut SwitchOnce { done: false },
    );
    assert_eq!(r.report.outcome, Outcome::Completed);
}

#[test]
fn abba_deadlock_is_detected() {
    let mut m = GuestMem::new();
    let la = m.kmalloc(8).unwrap();
    let lb = m.kmalloc(8).unwrap();
    let data = m.kmalloc(8).unwrap();
    let mut exec = Executor::new(2);
    // Force a switch after the first access so both threads grab their first
    // lock before trying the second.
    let mut sched = RandomSched::new(999, 1.0);
    let r = exec.run(
        m,
        vec![
            Box::new(move |ctx: &Ctx| -> KResult<()> {
                ctx.lock(la)?;
                ctx.read_u64(site!("dl:a"), data)?;
                ctx.lock(lb)?;
                ctx.unlock(lb)?;
                ctx.unlock(la)?;
                Ok(())
            }),
            Box::new(move |ctx: &Ctx| -> KResult<()> {
                ctx.lock(lb)?;
                ctx.read_u64(site!("dl:b"), data)?;
                ctx.lock(la)?;
                ctx.unlock(la)?;
                ctx.unlock(lb)?;
                Ok(())
            }),
        ],
        &mut sched,
    );
    assert_eq!(r.report.outcome, Outcome::Deadlock);
    // Both threads unwound with abort faults.
    assert!(r
        .report
        .thread_faults
        .iter()
        .all(|f| matches!(f, Some(Fault::Aborted))));
}

#[test]
fn rcu_synchronize_waits_for_readers() {
    let mut m = GuestMem::new();
    let data = m.kmalloc(8).unwrap();
    m.write(data, 8, 1).unwrap();
    let mut exec = Executor::new(2);
    // Reader enters an RCU section, then the writer calls synchronize_rcu:
    // the writer must block until the reader exits.
    struct Handoff;
    impl Scheduler for Handoff {
        fn after_access(&mut self, _t: usize, _a: &sb_vmm::Access) -> bool {
            true
        }
        fn pick(&mut self, prev: usize, c: &[usize]) -> usize {
            *c.iter().find(|t| **t != prev).unwrap_or(&c[0])
        }
    }
    let r = exec.run(
        m,
        vec![
            Box::new(move |ctx: &Ctx| -> KResult<()> {
                ctx.rcu_read_lock()?;
                let v = ctx.read_u64(site!("rcu:r1"), data)?;
                // Yield point; writer runs and blocks in synchronize_rcu.
                let v2 = ctx.read_u64(site!("rcu:r2"), data)?;
                // Inside one RCU section the writer cannot free/overwrite.
                assert_eq!(v, v2);
                ctx.rcu_read_unlock()?;
                Ok(())
            }),
            Box::new(move |ctx: &Ctx| -> KResult<()> {
                ctx.read_u64(site!("rcu:w0"), data)?;
                ctx.synchronize_rcu()?;
                ctx.write_u64(site!("rcu:w1"), data, 2)?;
                Ok(())
            }),
        ],
        &mut Handoff,
    );
    assert_eq!(r.report.outcome, Outcome::Completed);
    assert_eq!(r.mem.read(data, 8).unwrap(), 2);
}

#[test]
fn null_dereference_panics_with_console_bug_line() {
    let (mem, _cell) = mem_with_cell();
    let mut exec = Executor::new(1);
    let r = exec.run(
        mem,
        vec![Box::new(move |ctx: &Ctx| -> KResult<()> {
            let ptr = 0u64; // Simulated uninitialized pointer field.
            ctx.read_u64(site!("null:deref"), ptr + 8)?;
            Ok(())
        })],
        &mut FreeRun,
    );
    assert!(r.report.outcome.is_panic());
    assert!(r.report.console_contains("BUG: kernel NULL pointer dereference"));
    assert!(matches!(
        r.report.thread_faults[0],
        Some(Fault::NullDeref { .. })
    ));
}

#[test]
fn wild_pointer_panics_with_page_fault_line() {
    let (mem, _cell) = mem_with_cell();
    let mut exec = Executor::new(1);
    let r = exec.run(
        mem,
        vec![Box::new(move |ctx: &Ctx| -> KResult<()> {
            // Offset from null beyond the first page: "unable to handle
            // page fault", like paper bug #1.
            ctx.read_u64(site!("wild:deref"), 0x2000)?;
            Ok(())
        })],
        &mut FreeRun,
    );
    assert!(r.report.outcome.is_panic());
    assert!(r.report.console_contains("unable to handle page fault"));
}

#[test]
fn explicit_oops_aborts_all_threads() {
    let (mem, cell) = mem_with_cell();
    let mut exec = Executor::new(2);
    let r = exec.run(
        mem,
        vec![
            Box::new(move |ctx: &Ctx| -> KResult<()> {
                ctx.read_u64(site!("oops:pre"), cell)?;
                Err(ctx.oops("BUG: explicit panic for test"))
            }),
            Box::new(move |ctx: &Ctx| -> KResult<()> {
                for _ in 0..1000 {
                    ctx.read_u64(site!("oops:other"), cell)?;
                }
                Ok(())
            }),
        ],
        &mut FreeRun,
    );
    assert!(r.report.outcome.is_panic());
    assert!(r.report.console_contains("explicit panic"));
    // The second thread must have been aborted early, not run to completion.
    assert!(matches!(r.report.thread_faults[1], Some(Fault::Aborted)));
}

#[test]
fn livelock_budget_trips() {
    let (mem, cell) = mem_with_cell();
    let limits = ExecLimits {
        max_steps: 500,
        max_thread_steps: 400,
        spin_limit: 16,
    };
    let mut exec = Executor::with_limits(1, limits);
    let r = exec.run(
        mem,
        vec![Box::new(move |ctx: &Ctx| -> KResult<()> {
            loop {
                ctx.read_u64(site!("ll:spin"), cell)?;
            }
        })],
        &mut FreeRun,
    );
    assert_eq!(r.report.outcome, Outcome::Livelock);
}

#[test]
fn spin_detection_forces_preemption() {
    // A seqlock-style retry loop on one thread must not starve the other:
    // the spin heuristic preempts it so the writer can make progress.
    let mut m = GuestMem::new();
    let flag = m.kmalloc(8).unwrap();
    let mut exec = Executor::new(2);
    let r = exec.run(
        m,
        vec![
            Box::new(move |ctx: &Ctx| -> KResult<()> {
                // Wait until the flag flips; pure spin.
                while ctx.read_u64(site!("spin:poll"), flag)? == 0 {}
                Ok(())
            }),
            Box::new(move |ctx: &Ctx| -> KResult<()> {
                ctx.write_u64(site!("spin:set"), flag, 1)?;
                Ok(())
            }),
        ],
        &mut FreeRun,
    );
    assert_eq!(r.report.outcome, Outcome::Completed);
}

#[test]
fn executor_is_reusable_across_runs() {
    let mut exec = Executor::new(2);
    for round in 0..20u64 {
        let (mem, cell) = mem_with_cell();
        let r = exec.run(
            mem,
            vec![
                Box::new(move |ctx: &Ctx| -> KResult<()> {
                    ctx.write_u64(site!("reuse:w"), cell, round)?;
                    Ok(())
                }),
                Box::new(move |ctx: &Ctx| -> KResult<()> {
                    ctx.read_u64(site!("reuse:r"), cell)?;
                    Ok(())
                }),
            ],
            &mut RandomSched::new(round, 0.4),
        );
        assert_eq!(r.report.outcome, Outcome::Completed, "round {round}");
    }
}

#[test]
fn identical_seeds_give_identical_traces() {
    let run = |seed: u64| {
        let mut m = GuestMem::new();
        let a = m.kmalloc(8).unwrap();
        let b = m.kmalloc(8).unwrap();
        let mut exec = Executor::new(2);
        let r = exec.run(
            m,
            vec![
                Box::new(move |ctx: &Ctx| -> KResult<()> {
                    for i in 0..50 {
                        ctx.write_u64(site!("det:w"), a, i)?;
                        ctx.read_u64(site!("det:rb"), b)?;
                    }
                    Ok(())
                }),
                Box::new(move |ctx: &Ctx| -> KResult<()> {
                    for i in 0..50 {
                        ctx.write_u64(site!("det:wb"), b, i)?;
                        ctx.read_u64(site!("det:ra"), a)?;
                    }
                    Ok(())
                }),
            ],
            &mut RandomSched::new(seed, 0.35),
        );
        r.report
            .trace
            .iter()
            .map(|a| (a.thread, a.site, a.addr, a.value))
            .collect::<Vec<_>>()
    };
    assert_eq!(run(11), run(11));
    assert_ne!(run(11), run(12), "different seeds should interleave differently");
}

#[test]
fn locks_are_recorded_on_accesses() {
    let mut m = GuestMem::new();
    let lock = m.kmalloc(8).unwrap();
    let data = m.kmalloc(8).unwrap();
    let mut exec = Executor::new(1);
    let r = exec.run(
        m,
        vec![Box::new(move |ctx: &Ctx| -> KResult<()> {
            ctx.read_u64(site!("lkrec:out"), data)?;
            ctx.with_lock(lock, || {
                ctx.read_u64(site!("lkrec:in"), data)?;
                Ok(())
            })?;
            Ok(())
        })],
        &mut FreeRun,
    );
    assert_eq!(r.report.trace[0].locks, Vec::<u64>::new());
    assert_eq!(r.report.trace[1].locks, vec![lock]);
}

#[test]
fn double_unlock_is_a_lock_error() {
    let mut m = GuestMem::new();
    let lock = m.kmalloc(8).unwrap();
    let mut exec = Executor::new(1);
    let r = exec.run(
        m,
        vec![Box::new(move |ctx: &Ctx| -> KResult<()> {
            ctx.lock(lock)?;
            ctx.unlock(lock)?;
            ctx.unlock(lock)?;
            Ok(())
        })],
        &mut FreeRun,
    );
    assert!(matches!(
        r.report.thread_faults[0],
        Some(Fault::LockError { .. })
    ));
}
