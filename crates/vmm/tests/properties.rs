//! Property-based tests of the engine's core invariants.

use proptest::prelude::*;

use sb_vmm::access::{range_overlap, Access, AccessKind};
use sb_vmm::ctx::KResult;
use sb_vmm::exec::Executor;
use sb_vmm::mem::{GuestMem, GUEST_MEM_SIZE, HEAP_BASE, NULL_GUARD_END, STACKS_BASE};
use sb_vmm::sched::RandomSched;
use sb_vmm::{site, Ctx};

proptest! {
    /// Any in-bounds write is read back exactly, at every width.
    #[test]
    fn mem_write_read_round_trip(
        off in 0u64..1024,
        len in 1u8..=8,
        value: u64,
    ) {
        let mut m = GuestMem::new();
        let base = HEAP_BASE + off;
        let masked = if len == 8 { value } else { value & ((1u64 << (u64::from(len) * 8)) - 1) };
        m.write(base, len, value).unwrap();
        prop_assert_eq!(m.read(base, len).unwrap(), masked);
    }

    /// Reads never see bytes outside the written range.
    #[test]
    fn mem_writes_do_not_bleed(
        off in 8u64..512,
        len in 1u8..=8,
        value: u64,
    ) {
        let mut m = GuestMem::new();
        let base = HEAP_BASE + off;
        m.write(base, len, value).unwrap();
        prop_assert_eq!(m.read(base - 8, 8).unwrap() >> (8 * (8 - (base - (base - 8)))), 0);
        let after = base + u64::from(len);
        prop_assert_eq!(m.read(after, 8).unwrap(), 0);
    }

    /// The guard region and out-of-bounds space always fault; the heap
    /// never does.
    #[test]
    fn mem_fault_boundaries(addr: u64, len in 1u8..=8) {
        let m = GuestMem::new();
        let r = m.read(addr, len);
        let in_bounds = addr >= NULL_GUARD_END
            && addr.checked_add(u64::from(len)).map_or(false, |e| e <= GUEST_MEM_SIZE);
        prop_assert_eq!(r.is_ok(), in_bounds);
    }

    /// Allocation addresses are deterministic functions of the request
    /// sequence, stay in the heap, and never overlap while live.
    #[test]
    fn allocator_no_overlap_and_deterministic(sizes in proptest::collection::vec(1u64..512, 1..40)) {
        let run = |sizes: &[u64]| {
            let mut m = GuestMem::new();
            sizes.iter().map(|s| m.kmalloc(*s).unwrap()).collect::<Vec<u64>>()
        };
        let a = run(&sizes);
        let b = run(&sizes);
        prop_assert_eq!(&a, &b);
        // No two live allocations overlap.
        let mut spans: Vec<(u64, u64)> = a.iter().zip(&sizes).map(|(addr, s)| (*addr, addr + s)).collect();
        spans.sort_unstable();
        for w in spans.windows(2) {
            prop_assert!(w[0].1 <= w[1].0, "overlap: {:?}", w);
        }
        for (addr, end) in spans {
            prop_assert!(addr >= HEAP_BASE && end <= STACKS_BASE);
        }
    }

    /// `range_overlap` is symmetric and consistent with `Access::overlaps`.
    #[test]
    fn overlap_symmetry(a_addr in 0u64..256, a_len in 1u8..=8, b_addr in 0u64..256, b_len in 1u8..=8) {
        let ab = range_overlap(a_addr, a_len, b_addr, b_len);
        let ba = range_overlap(b_addr, b_len, a_addr, a_len);
        prop_assert_eq!(ab, ba);
        let acc = |addr, len| Access {
            seq: 0, thread: 0, site: site!("prop:o"), kind: AccessKind::Read,
            addr, len, value: 0, atomic: false, locks: vec![], rcu_depth: 0,
        };
        prop_assert_eq!(ab.is_some(), acc(a_addr, a_len).overlaps(&acc(b_addr, b_len)));
        if let Some((start, len)) = ab {
            prop_assert!(start >= a_addr.max(b_addr));
            prop_assert!(start + u64::from(len) <= (a_addr + u64::from(a_len)).min(b_addr + u64::from(b_len)));
        }
    }

    /// project_value over the full range is the identity (masked to width).
    #[test]
    fn project_value_identity(addr in 0u64..1024, len in 1u8..=8, value: u64) {
        let masked = if len == 8 { value } else { value & ((1u64 << (u64::from(len) * 8)) - 1) };
        let a = Access {
            seq: 0, thread: 0, site: site!("prop:pv"), kind: AccessKind::Write,
            addr, len, value: masked, atomic: false, locks: vec![], rcu_depth: 0,
        };
        prop_assert_eq!(a.project_value(addr, len), masked);
        // Single-byte projections reassemble the value.
        let mut rebuilt = 0u64;
        for i in 0..u64::from(len) {
            rebuilt |= a.project_value(addr + i, 1) << (8 * i);
        }
        prop_assert_eq!(rebuilt, masked);
    }

    /// Concurrent executions are deterministic in (seed, probability) and
    /// always terminate with a valid outcome.
    #[test]
    fn executions_deterministic_for_any_seed(seed: u64, p in 0.0f64..0.9) {
        let run = || {
            let mut m = GuestMem::new();
            let cell = m.kmalloc(8).unwrap();
            let mut exec = Executor::new(2);
            let job = move |name: &'static str| -> Box<dyn FnOnce(&Ctx) -> KResult<()> + Send> {
                Box::new(move |ctx: &Ctx| {
                    for i in 0..20 {
                        let v = ctx.read_u64(site!(name), cell)?;
                        ctx.write_u64(site!(name), cell, v + i)?;
                    }
                    Ok(())
                })
            };
            let mut sched = RandomSched::new(seed, p);
            let r = exec.run(m, vec![job("prop:a"), job("prop:b")], &mut sched);
            (
                format!("{:?}", r.report.outcome),
                r.report.trace.iter().map(|a| (a.thread, a.value)).collect::<Vec<_>>(),
            )
        };
        prop_assert_eq!(run(), run());
    }
}

/// Sequential trace invariants: seq numbers dense, single-thread traces
/// never interleave, lock sets consistent.
#[test]
fn trace_invariants_hold_for_a_busy_program() {
    let mut m = GuestMem::new();
    let lock = m.kmalloc(8).unwrap();
    let cells: Vec<u64> = (0..8).map(|_| m.kmalloc(8).unwrap()).collect();
    let mut exec = Executor::new(2);
    let job = move |cells: Vec<u64>, name: &'static str| -> Box<dyn FnOnce(&Ctx) -> KResult<()> + Send> {
        Box::new(move |ctx: &Ctx| {
            for (i, c) in cells.iter().enumerate() {
                ctx.with_lock(lock, || {
                    let v = ctx.read_u64(site!(name), *c)?;
                    ctx.write_u64(site!(name), *c, v + i as u64)?;
                    Ok(())
                })?;
            }
            Ok(())
        })
    };
    let mut sched = RandomSched::new(3, 0.4);
    let r = exec.run(
        m,
        vec![job(cells.clone(), "ti:a"), job(cells, "ti:b")],
        &mut sched,
    );
    assert!(r.report.outcome.is_completed());
    for (i, a) in r.report.trace.iter().enumerate() {
        assert_eq!(a.seq, i as u64, "dense sequence numbers");
        assert!(a.locks.contains(&lock), "all accesses under the lock");
    }
}
