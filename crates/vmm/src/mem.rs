//! Guest physical memory: flat, byte-addressable, deterministically allocated.
//!
//! The paper relies on the crucial property that, starting from the same VM
//! snapshot, the same sequence of kernel operations produces the same memory
//! layout — so PMCs predicted from sequential profiles remain meaningful when
//! the two tests later run concurrently (§4.1). This module provides that
//! property: a fixed-size guest address space with a deterministic
//! size-classed slab allocator, a faulting low-memory guard region (so null
//! and near-null dereferences oops like real page faults), and per-thread
//! 8 KiB kernel-stack regions laid out exactly as the paper's ESP-masking
//! formula assumes (§4.1.1).

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

use crate::ctx::Fault;

/// Total guest memory size in bytes (4 MiB).
pub const GUEST_MEM_SIZE: u64 = 1 << 22;

/// Addresses below this bound fault, emulating unmapped low pages.
///
/// The first page models a null-pointer dereference; the rest of the guard
/// models wild near-null pointers (e.g. a field offset added to a null base),
/// which the paper's bug #1 produces.
pub const NULL_GUARD_END: u64 = 0x1_0000;

/// Per-thread kernel stack size: 8 KiB, two physical pages, matching the
/// Linux x86 configuration described in §4.1.1.
pub const STACK_SIZE: u64 = 0x2000;

/// Maximum number of simulated vCPUs / kernel threads.
pub const MAX_THREADS: usize = 4;

/// Base of the kernel-stack area. Stacks are `STACK_SIZE`-aligned and sit at
/// the top of guest memory, one per thread.
pub const STACKS_BASE: u64 = GUEST_MEM_SIZE - (MAX_THREADS as u64) * STACK_SIZE;

/// Start of the dynamic allocation arena.
pub const HEAP_BASE: u64 = NULL_GUARD_END;

/// Returns the base address of thread `tid`'s kernel stack.
pub fn stack_base(tid: usize) -> u64 {
    assert!(tid < MAX_THREADS, "thread id {tid} out of range");
    STACKS_BASE + (tid as u64) * STACK_SIZE
}

/// Computes the kernel stack range containing stack pointer `sp`, using the
/// mask formula from §4.1.1:
/// `[sp & !(STACK_SIZE-1), (sp & !(STACK_SIZE-1)) + STACK_SIZE)`.
pub fn stack_range_of(sp: u64) -> (u64, u64) {
    let base = sp & !(STACK_SIZE - 1);
    (base, base + STACK_SIZE)
}

/// Returns true if `addr` falls inside any thread's kernel-stack region.
pub fn is_stack_addr(addr: u64) -> bool {
    (STACKS_BASE..GUEST_MEM_SIZE).contains(&addr)
}

/// The allocator size classes, in bytes. Allocations round up to the nearest
/// class; larger requests fail with [`Fault::Oom`].
const SIZE_CLASSES: [u64; 8] = [8, 16, 32, 64, 128, 256, 1024, 4096];

/// Flat guest memory with a deterministic slab allocator.
///
/// Cloning a `GuestMem` is how snapshots work: boot the kernel once, clone
/// the resulting memory before every trial, and every trial observes the
/// exact same initial state and future allocation addresses.
#[derive(Clone, Serialize, Deserialize)]
pub struct GuestMem {
    bytes: Vec<u8>,
    /// Bump pointer for fresh slab pages.
    brk: u64,
    /// Free lists per size class, keyed by class size. `Vec` used as a LIFO
    /// so reallocation is deterministic.
    free: BTreeMap<u64, Vec<u64>>,
    /// Count of live allocations, for leak diagnostics.
    live: u64,
}

impl Default for GuestMem {
    fn default() -> Self {
        Self::new()
    }
}

impl GuestMem {
    /// Creates a zeroed guest memory with an empty heap.
    pub fn new() -> Self {
        GuestMem {
            bytes: vec![0u8; GUEST_MEM_SIZE as usize],
            brk: HEAP_BASE,
            free: BTreeMap::new(),
            live: 0,
        }
    }

    /// Number of live (allocated, not yet freed) heap objects.
    pub fn live_allocations(&self) -> u64 {
        self.live
    }

    /// Current bump pointer; useful to verify allocation determinism.
    pub fn brk(&self) -> u64 {
        self.brk
    }

    fn check_range(addr: u64, len: u8) -> Result<(), Fault> {
        let len = u64::from(len);
        if len == 0 || len > 8 {
            return Err(Fault::BadAccess { addr, len: len as u8 });
        }
        if addr < NULL_GUARD_END {
            if addr < 0x1000 {
                return Err(Fault::NullDeref { addr });
            }
            return Err(Fault::PageFault { addr });
        }
        if addr.checked_add(len).is_none_or(|end| end > GUEST_MEM_SIZE) {
            return Err(Fault::PageFault { addr });
        }
        Ok(())
    }

    /// Reads `len` bytes (1..=8) at `addr` as a little-endian value.
    pub fn read(&self, addr: u64, len: u8) -> Result<u64, Fault> {
        Self::check_range(addr, len)?;
        let mut buf = [0u8; 8];
        let start = addr as usize;
        buf[..len as usize].copy_from_slice(&self.bytes[start..start + len as usize]);
        Ok(u64::from_le_bytes(buf))
    }

    /// Writes the low `len` bytes (1..=8) of `value` at `addr`, little-endian.
    pub fn write(&mut self, addr: u64, len: u8, value: u64) -> Result<(), Fault> {
        Self::check_range(addr, len)?;
        let start = addr as usize;
        let bytes = value.to_le_bytes();
        self.bytes[start..start + len as usize].copy_from_slice(&bytes[..len as usize]);
        Ok(())
    }

    fn size_class(len: u64) -> Option<u64> {
        SIZE_CLASSES.iter().copied().find(|c| *c >= len)
    }

    /// Allocates `len` bytes, zeroing the returned object.
    ///
    /// Allocation is fully deterministic: the same sequence of
    /// `kmalloc`/`kfree` calls from the same snapshot yields the same
    /// addresses — the property PMC prediction relies on (§4.1).
    pub fn kmalloc(&mut self, len: u64) -> Result<u64, Fault> {
        let class = Self::size_class(len).ok_or(Fault::Oom)?;
        let addr = if let Some(a) = self.free.get_mut(&class).and_then(Vec::pop) {
            a
        } else {
            let a = self.brk;
            let end = a.checked_add(class).ok_or(Fault::Oom)?;
            if end > STACKS_BASE {
                return Err(Fault::Oom);
            }
            self.brk = end;
            a
        };
        // Fresh objects are zeroed, like kzalloc; this keeps reads of
        // just-allocated objects deterministic.
        let start = addr as usize;
        self.bytes[start..start + class as usize].fill(0);
        self.live += 1;
        Ok(addr)
    }

    /// Returns an object of `len` bytes at `addr` to its size-class free list.
    pub fn kfree(&mut self, addr: u64, len: u64) -> Result<(), Fault> {
        let class = Self::size_class(len).ok_or(Fault::BadAccess { addr, len: 8 })?;
        if !(HEAP_BASE..STACKS_BASE).contains(&addr) {
            return Err(Fault::PageFault { addr });
        }
        self.free.entry(class).or_default().push(addr);
        self.live = self.live.saturating_sub(1);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_round_trip_all_widths() {
        let mut m = GuestMem::new();
        let a = m.kmalloc(8).unwrap();
        for len in 1u8..=8 {
            let val = 0x1122_3344_5566_7788u64 & (u64::MAX >> (64 - 8 * u32::from(len)));
            m.write(a, len, val).unwrap();
            assert_eq!(m.read(a, len).unwrap(), val, "width {len}");
        }
    }

    #[test]
    fn little_endian_overlap_semantics() {
        let mut m = GuestMem::new();
        let a = m.kmalloc(8).unwrap();
        m.write(a, 8, 0x0807_0605_0403_0201).unwrap();
        assert_eq!(m.read(a, 1).unwrap(), 0x01);
        assert_eq!(m.read(a + 2, 2).unwrap(), 0x0403);
        assert_eq!(m.read(a + 4, 4).unwrap(), 0x0807_0605);
    }

    #[test]
    fn null_guard_faults() {
        let m = GuestMem::new();
        assert!(matches!(m.read(0, 8), Err(Fault::NullDeref { .. })));
        assert!(matches!(m.read(8, 4), Err(Fault::NullDeref { .. })));
        assert!(matches!(m.read(0x2000, 4), Err(Fault::PageFault { .. })));
    }

    #[test]
    fn out_of_bounds_faults() {
        let m = GuestMem::new();
        assert!(matches!(
            m.read(GUEST_MEM_SIZE - 4, 8),
            Err(Fault::PageFault { .. })
        ));
        assert!(matches!(m.read(u64::MAX, 8), Err(Fault::PageFault { .. })));
    }

    #[test]
    fn zero_and_oversized_lengths_rejected() {
        let mut m = GuestMem::new();
        let a = m.kmalloc(16).unwrap();
        assert!(matches!(m.read(a, 0), Err(Fault::BadAccess { .. })));
        assert!(matches!(m.write(a, 9, 0), Err(Fault::BadAccess { .. })));
    }

    #[test]
    fn allocation_is_deterministic() {
        let run = || {
            let mut m = GuestMem::new();
            let a = m.kmalloc(24).unwrap();
            let b = m.kmalloc(24).unwrap();
            m.kfree(a, 24).unwrap();
            let c = m.kmalloc(17).unwrap();
            (a, b, c)
        };
        assert_eq!(run(), run());
        let (a, _b, c) = run();
        // Freed object is reused LIFO within its size class.
        assert_eq!(a, c);
    }

    #[test]
    fn allocations_are_zeroed_on_reuse() {
        let mut m = GuestMem::new();
        let a = m.kmalloc(8).unwrap();
        m.write(a, 8, u64::MAX).unwrap();
        m.kfree(a, 8).unwrap();
        let b = m.kmalloc(8).unwrap();
        assert_eq!(a, b);
        assert_eq!(m.read(b, 8).unwrap(), 0);
    }

    #[test]
    fn snapshot_clone_is_independent() {
        let mut m = GuestMem::new();
        let a = m.kmalloc(8).unwrap();
        m.write(a, 8, 7).unwrap();
        let snap = m.clone();
        m.write(a, 8, 9).unwrap();
        assert_eq!(snap.read(a, 8).unwrap(), 7);
        assert_eq!(m.read(a, 8).unwrap(), 9);
    }

    #[test]
    fn stack_mask_formula_matches_paper() {
        let tid = 1;
        let base = stack_base(tid);
        let sp = base + 0x123;
        assert_eq!(stack_range_of(sp), (base, base + STACK_SIZE));
        assert!(is_stack_addr(sp));
        assert!(!is_stack_addr(HEAP_BASE));
    }

    #[test]
    fn oom_on_giant_allocation() {
        let mut m = GuestMem::new();
        assert!(matches!(m.kmalloc(1 << 20), Err(Fault::Oom)));
    }

    #[test]
    fn heap_exhaustion_is_oom_not_panic() {
        let mut m = GuestMem::new();
        let mut n = 0u64;
        loop {
            match m.kmalloc(4096) {
                Ok(_) => n += 1,
                Err(Fault::Oom) => break,
                Err(other) => panic!("unexpected fault {other:?}"),
            }
        }
        assert!(n > 100, "expected many 4 KiB allocations, got {n}");
    }
}
