//! The execution coordinator: one vCPU runs at a time, every access is a
//! scheduling point.
//!
//! The coordinator owns the guest memory, the lock table, and the RCU state.
//! Kernel threads run on pooled worker OS threads, but *logically* exactly
//! one executes at a time: a worker performs pure computation freely, yet
//! every interaction with shared machine state is a request the coordinator
//! serializes. After each memory access the active [`Scheduler`] may preempt
//! the running thread — the fine-grained control §4.4 requires ("only
//! executes one vCPU at a time, enforcing the desired interleaving
//! schedule").
//!
//! Liveness handling mirrors SKI's `is_live` heuristics (§4.4.1): threads
//! that keep fetching the same memory area are forcibly preempted, and
//! executions that exceed an instruction budget end as livelocks.

use std::collections::{HashMap, VecDeque};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::thread::JoinHandle;

use serde::{Deserialize, Serialize};

use crate::access::{Access, AccessKind};
use crate::ctx::{Ctx, Fault, KResult, Reply, Request};
use crate::mem::GuestMem;
use crate::sched::Scheduler;

/// A kernel thread body: the closure one simulated vCPU executes.
pub type Job = Box<dyn FnOnce(&Ctx) -> KResult<()> + Send + 'static>;

/// Execution resource limits (the `is_live` thresholds of §4.4.1).
#[derive(Copy, Clone, Debug)]
pub struct ExecLimits {
    /// Maximum total coordinator steps before the run is declared a livelock.
    pub max_steps: u64,
    /// Maximum steps any single thread may execute.
    pub max_thread_steps: u64,
    /// Consecutive accesses to the same address before a forced preemption
    /// ("constantly fetching the same memory area").
    pub spin_limit: u32,
}

impl Default for ExecLimits {
    fn default() -> Self {
        ExecLimits {
            max_steps: 400_000,
            max_thread_steps: 200_000,
            spin_limit: 64,
        }
    }
}

/// A typed failure of the execution machinery itself — as opposed to an
/// [`Outcome`], which describes what the *simulated kernel* did. Machinery
/// failures used to panic; campaign drivers now route them into retry /
/// quarantine decisions instead of dying.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ExecError {
    /// More jobs were submitted than the executor has pooled vCPUs (or
    /// zero jobs).
    BadJobCount {
        /// Number of jobs submitted.
        jobs: usize,
        /// Number of pooled vCPUs.
        vcpus: usize,
    },
    /// A pooled vCPU worker thread is gone (its channel disconnected), so
    /// the executor can no longer run jobs on it.
    WorkerUnavailable {
        /// Index of the dead vCPU.
        vcpu: usize,
    },
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::BadJobCount { jobs, vcpus } => {
                write!(f, "bad job count: {jobs} jobs for {vcpus} pooled vCPUs")
            }
            ExecError::WorkerUnavailable { vcpu } => {
                write!(f, "vCPU worker {vcpu} is no longer available")
            }
        }
    }
}

impl std::error::Error for ExecError {}

/// Terminal state of one execution.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Outcome {
    /// All threads ran to completion.
    Completed,
    /// The kernel panicked (oops, null dereference, page fault).
    Panic {
        /// The console line describing the panic.
        msg: String,
    },
    /// Every live thread was blocked on a lock or RCU grace period.
    Deadlock,
    /// The execution exceeded its instruction budget.
    Livelock,
}

impl Outcome {
    /// True if the execution finished without a machine-level failure.
    pub fn is_completed(&self) -> bool {
        matches!(self, Outcome::Completed)
    }

    /// True if the kernel panicked.
    pub fn is_panic(&self) -> bool {
        matches!(self, Outcome::Panic { .. })
    }
}

/// Everything observed during one execution.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ExecReport {
    /// Terminal state.
    pub outcome: Outcome,
    /// Kernel console lines, in order.
    pub console: Vec<String>,
    /// Every memory access, in global order.
    pub trace: Vec<Access>,
    /// Total coordinator steps executed.
    pub steps: u64,
    /// Thread preemptions (scheduler-requested plus forced).
    pub switches: u64,
    /// Terminal fault of each thread, if any.
    pub thread_faults: Vec<Option<Fault>>,
}

impl ExecReport {
    /// True if any console line contains `needle`.
    pub fn console_contains(&self, needle: &str) -> bool {
        self.console.iter().any(|l| l.contains(needle))
    }
}

/// Result of [`Executor::run`]: the report plus the final guest memory
/// (useful for snapshotting after boot).
pub struct RunResult {
    /// The observation record.
    pub report: ExecReport,
    /// Guest memory at the end of the run.
    pub mem: GuestMem,
}

struct WorkerHandle {
    job_tx: Sender<Job>,
    req_rx: Receiver<Request>,
    rep_tx: Sender<Reply>,
    join: Option<JoinHandle<()>>,
}

/// A reusable pool of simulated vCPUs plus the coordination logic.
///
/// Creating an `Executor` spawns its worker threads once; every call to
/// [`Executor::run`] reuses them, so executing many short trials (Snowboard
/// runs up to 64 trials per PMC) stays cheap.
pub struct Executor {
    workers: Vec<WorkerHandle>,
    limits: ExecLimits,
    /// Set when a dispatch failed partway: some worker may still hold an
    /// undelivered job, so further runs could interleave stale requests.
    tainted: bool,
}

#[derive(Copy, Clone, PartialEq, Eq, Debug)]
enum TStat {
    Ready,
    Blocked,
    Done,
}

struct RunState<'a> {
    mem: GuestMem,
    sched: &'a mut dyn Scheduler,
    limits: ExecLimits,
    n: usize,
    status: Vec<TStat>,
    owed: Vec<Option<Reply>>,
    held: Vec<Vec<u64>>,
    lock_owner: HashMap<u64, usize>,
    lock_waiters: HashMap<u64, VecDeque<usize>>,
    rcu_depth: Vec<u8>,
    sync_waiters: Vec<usize>,
    trace: Vec<Access>,
    console: Vec<String>,
    steps: u64,
    thread_steps: Vec<u64>,
    switches: u64,
    spin: Vec<(u64, u32)>,
    aborting: bool,
    outcome: Option<Outcome>,
    thread_faults: Vec<Option<Fault>>,
}

impl Executor {
    /// Creates an executor with `n_workers` pooled vCPUs and default limits.
    pub fn new(n_workers: usize) -> Self {
        Self::with_limits(n_workers, ExecLimits::default())
    }

    /// Creates an executor with explicit [`ExecLimits`].
    pub fn with_limits(n_workers: usize, limits: ExecLimits) -> Self {
        assert!(
            (1..=crate::mem::MAX_THREADS).contains(&n_workers),
            "worker count must be in 1..={}",
            crate::mem::MAX_THREADS
        );
        let workers = (0..n_workers)
            .map(|tid| {
                let (job_tx, job_rx) = channel::<Job>();
                let (req_tx, req_rx) = channel::<Request>();
                let (rep_tx, rep_rx) = channel::<Reply>();
                let join = std::thread::Builder::new()
                    .name(format!("sb-vcpu-{tid}"))
                    .spawn(move || worker_main(tid, job_rx, req_tx, rep_rx))
                    .expect("failed to spawn vCPU worker");
                WorkerHandle {
                    job_tx,
                    req_rx,
                    rep_tx,
                    join: Some(join),
                }
            })
            .collect();
        Executor {
            workers,
            limits,
            tainted: false,
        }
    }

    /// Number of pooled vCPUs.
    pub fn vcpus(&self) -> usize {
        self.workers.len()
    }

    /// Runs `jobs` (one per vCPU, at most [`Executor::vcpus`]) over `mem`
    /// under `sched`, returning the observation report and final memory.
    ///
    /// # Panics
    ///
    /// Panics on machinery failures (bad job count, dead vCPU worker);
    /// callers that must survive those use [`Executor::try_run`].
    pub fn run(&mut self, mem: GuestMem, jobs: Vec<Job>, sched: &mut dyn Scheduler) -> RunResult {
        self.try_run(mem, jobs, sched).expect("execution machinery failed")
    }

    /// Fallible variant of [`Executor::run`]: machinery failures come back
    /// as typed [`ExecError`]s instead of panics, so a campaign worker can
    /// quarantine the job and keep draining the queue.
    pub fn try_run(
        &mut self,
        mem: GuestMem,
        jobs: Vec<Job>,
        sched: &mut dyn Scheduler,
    ) -> Result<RunResult, ExecError> {
        let n = jobs.len();
        if n < 1 || n > self.workers.len() {
            return Err(ExecError::BadJobCount {
                jobs: n,
                vcpus: self.workers.len(),
            });
        }
        if self.tainted {
            return Err(ExecError::WorkerUnavailable { vcpu: 0 });
        }
        for (i, job) in jobs.into_iter().enumerate() {
            if self.workers[i].job_tx.send(job).is_err() {
                // The worker thread is gone. Earlier workers already hold
                // their jobs and would answer a future run with stale
                // requests, so this executor is retired: campaign pools
                // respond by rebuilding worker state.
                self.tainted = true;
                return Err(ExecError::WorkerUnavailable { vcpu: i });
            }
        }
        let mut st = RunState {
            mem,
            sched,
            limits: self.limits,
            n,
            status: vec![TStat::Ready; n],
            owed: (0..n).map(|_| None).collect(),
            held: vec![Vec::new(); n],
            lock_owner: HashMap::new(),
            lock_waiters: HashMap::new(),
            rcu_depth: vec![0; n],
            sync_waiters: Vec::new(),
            trace: Vec::with_capacity(1024),
            console: Vec::new(),
            steps: 0,
            thread_steps: vec![0; n],
            switches: 0,
            spin: vec![(u64::MAX, 0); n],
            aborting: false,
            outcome: None,
            thread_faults: vec![None; n],
        };
        let mut current = 0usize;
        loop {
            if st.status.iter().all(|s| *s == TStat::Done) {
                break;
            }
            let ready: Vec<usize> = (0..n).filter(|t| st.status[*t] == TStat::Ready).collect();
            if ready.is_empty() {
                // Every live thread is blocked: deadlock. Release them with
                // abort faults so they can unwind and report Done.
                st.abort(Outcome::Deadlock);
                continue;
            }
            if st.status[current] != TStat::Ready {
                current = if st.aborting {
                    ready[0]
                } else {
                    st.switches += 1;
                    st.sched.pick(current, &ready)
                };
            }
            self.service_one(&mut st, &mut current);
        }
        let outcome = st.outcome.unwrap_or(Outcome::Completed);
        Ok(RunResult {
            report: ExecReport {
                outcome,
                console: st.console,
                trace: st.trace,
                steps: st.steps,
                switches: st.switches,
                thread_faults: st.thread_faults,
            },
            mem: st.mem,
        })
    }

    /// Delivers any owed reply to `current`, receives its next request, and
    /// handles it; may change `current` on a scheduling decision.
    fn service_one(&mut self, st: &mut RunState<'_>, current: &mut usize) {
        let t = *current;
        if let Some(rep) = st.owed[t].take() {
            let _ = self.workers[t].rep_tx.send(rep);
        }
        let req = match self.workers[t].req_rx.recv() {
            Ok(r) => r,
            Err(_) => {
                // Worker died (test-harness teardown); mark done.
                st.status[t] = TStat::Done;
                return;
            }
        };
        st.steps += 1;
        st.thread_steps[t] += 1;
        if !st.aborting
            && (st.steps > st.limits.max_steps
                || st.thread_steps[t] > st.limits.max_thread_steps)
        {
            st.abort(Outcome::Livelock);
        }
        match req {
            Request::Done { result } => {
                st.thread_faults[t] = result.err();
                st.status[t] = TStat::Done;
                // Auto-release anything the thread still holds so a buggy
                // simulated handler cannot wedge the other thread forever.
                let held = std::mem::take(&mut st.held[t]);
                for addr in held {
                    st.console
                        .push(format!("WARNING: thread {t} exited holding lock {addr:#x}"));
                    st.release_lock(t, addr);
                }
                if st.rcu_depth[t] > 0 {
                    st.rcu_depth[t] = 0;
                    st.wake_rcu_waiters_if_quiescent();
                }
            }
            _ if st.aborting => {
                let _ = self.workers[t].rep_tx.send(Reply::Fault(Fault::Aborted));
            }
            Request::Access {
                site,
                kind,
                addr,
                len,
                value,
                atomic,
            } => {
                let res = match kind {
                    AccessKind::Read => st.mem.read(addr, len),
                    AccessKind::Write => st.mem.write(addr, len, value).map(|()| value),
                };
                match res {
                    Ok(v) => {
                        let access = Access {
                            seq: st.trace.len() as u64,
                            thread: t,
                            site,
                            kind,
                            addr,
                            len,
                            value: v,
                            atomic,
                            locks: st.held[t].clone(),
                            rcu_depth: st.rcu_depth[t],
                        };
                        let reply = match kind {
                            AccessKind::Read => Reply::Value(v),
                            AccessKind::Write => Reply::Unit,
                        };
                        let _ = self.workers[t].rep_tx.send(reply);
                        let mut switch = st.sched.after_access(t, &access);
                        st.trace.push(access);
                        // Spin detection: repeated traffic on one address.
                        let (last, count) = &mut st.spin[t];
                        if *last == addr {
                            *count += 1;
                            if *count >= st.limits.spin_limit {
                                *count = 0;
                                st.sched.on_forced_switch(t);
                                switch = true;
                            }
                        } else {
                            *last = addr;
                            *count = 0;
                        }
                        if switch {
                            let others: Vec<usize> = (0..st.n)
                                .filter(|u| *u != t && st.status[*u] == TStat::Ready)
                                .collect();
                            if !others.is_empty() {
                                st.switches += 1;
                                *current = st.sched.pick(t, &others);
                            }
                        }
                    }
                    Err(f) => {
                        if matches!(f, Fault::NullDeref { .. } | Fault::PageFault { .. }) {
                            let msg = match f {
                                Fault::NullDeref { addr } => format!(
                                    "BUG: kernel NULL pointer dereference, address: {addr:#x} at {site}"
                                ),
                                Fault::PageFault { addr } => format!(
                                    "BUG: unable to handle page fault for address: {addr:#x} at {site}"
                                ),
                                _ => unreachable!(),
                            };
                            st.console.push(msg.clone());
                            st.abort(Outcome::Panic { msg });
                        }
                        let _ = self.workers[t].rep_tx.send(Reply::Fault(f));
                    }
                }
            }
            Request::Lock { addr } => match st.lock_owner.get(&addr) {
                None => {
                    st.lock_owner.insert(addr, t);
                    st.held[t].push(addr);
                    let _ = self.workers[t].rep_tx.send(Reply::Unit);
                }
                Some(owner) if *owner == t => {
                    let _ = self.workers[t]
                        .rep_tx
                        .send(Reply::Fault(Fault::LockError { addr }));
                }
                Some(_) => {
                    st.lock_waiters.entry(addr).or_default().push_back(t);
                    st.status[t] = TStat::Blocked;
                    // No reply: the thread stays parked until the lock is
                    // handed over or the run aborts.
                }
            },
            Request::Unlock { addr } => {
                if st.lock_owner.get(&addr) != Some(&t) {
                    let _ = self.workers[t]
                        .rep_tx
                        .send(Reply::Fault(Fault::LockError { addr }));
                } else {
                    st.held[t].retain(|a| *a != addr);
                    st.release_lock(t, addr);
                    let _ = self.workers[t].rep_tx.send(Reply::Unit);
                }
            }
            Request::RcuLock => {
                st.rcu_depth[t] = st.rcu_depth[t].saturating_add(1);
                let _ = self.workers[t].rep_tx.send(Reply::Unit);
            }
            Request::RcuUnlock => {
                if st.rcu_depth[t] == 0 {
                    let _ = self.workers[t]
                        .rep_tx
                        .send(Reply::Fault(Fault::LockError { addr: 0 }));
                } else {
                    st.rcu_depth[t] -= 1;
                    st.wake_rcu_waiters_if_quiescent();
                    let _ = self.workers[t].rep_tx.send(Reply::Unit);
                }
            }
            Request::SyncRcu => {
                let readers: u32 = st
                    .rcu_depth
                    .iter()
                    .enumerate()
                    .filter(|(u, _)| *u != t)
                    .map(|(_, d)| u32::from(*d))
                    .sum();
                if readers == 0 {
                    let _ = self.workers[t].rep_tx.send(Reply::Unit);
                } else {
                    st.sync_waiters.push(t);
                    st.status[t] = TStat::Blocked;
                }
            }
            Request::Alloc { len } => {
                let rep = match st.mem.kmalloc(len) {
                    Ok(a) => Reply::Value(a),
                    Err(f) => Reply::Fault(f),
                };
                let _ = self.workers[t].rep_tx.send(rep);
            }
            Request::Free { addr, len } => {
                let rep = match st.mem.kfree(addr, len) {
                    Ok(()) => Reply::Unit,
                    Err(f) => Reply::Fault(f),
                };
                let _ = self.workers[t].rep_tx.send(rep);
            }
            Request::Printk { msg } => {
                st.console.push(msg);
                let _ = self.workers[t].rep_tx.send(Reply::Unit);
            }
            Request::Oops { msg } => {
                st.console.push(msg.clone());
                st.abort(Outcome::Panic { msg });
                let _ = self.workers[t].rep_tx.send(Reply::Fault(Fault::Oops));
            }
        }
    }
}

impl RunState<'_> {
    /// Hands the lock at `addr` to its next waiter, or frees it.
    fn release_lock(&mut self, _t: usize, addr: u64) {
        self.lock_owner.remove(&addr);
        if let Some(waiters) = self.lock_waiters.get_mut(&addr) {
            if let Some(w) = waiters.pop_front() {
                self.lock_owner.insert(addr, w);
                self.held[w].push(addr);
                self.status[w] = TStat::Ready;
                self.owed[w] = Some(Reply::Unit);
            }
        }
    }

    fn wake_rcu_waiters_if_quiescent(&mut self) {
        let total: u32 = self.rcu_depth.iter().map(|d| u32::from(*d)).sum();
        if total == 0 {
            for w in std::mem::take(&mut self.sync_waiters) {
                self.status[w] = TStat::Ready;
                self.owed[w] = Some(Reply::Unit);
            }
        }
    }

    /// Moves the run into teardown: records the outcome (first one wins) and
    /// releases every blocked thread with an abort fault so it can unwind.
    fn abort(&mut self, reason: Outcome) {
        if self.outcome.is_none() {
            self.outcome = Some(reason);
        }
        self.aborting = true;
        for t in 0..self.n {
            if self.status[t] == TStat::Blocked {
                self.status[t] = TStat::Ready;
                self.owed[t] = Some(Reply::Fault(Fault::Aborted));
            }
        }
        self.lock_waiters.clear();
        self.sync_waiters.clear();
    }
}

impl Drop for Executor {
    fn drop(&mut self) {
        // Close job channels so workers exit, then join them.
        for w in &mut self.workers {
            let (tx, _rx) = channel::<Job>();
            // Replace the sender with a disconnected one, dropping the real
            // sender and closing the worker's job queue.
            w.job_tx = tx;
        }
        for w in &mut self.workers {
            if let Some(j) = w.join.take() {
                let _ = j.join();
            }
        }
    }
}

fn worker_main(
    tid: usize,
    job_rx: Receiver<Job>,
    req_tx: Sender<Request>,
    rep_rx: Receiver<Reply>,
) {
    let ctx = Ctx::new(tid, req_tx, rep_rx);
    while let Ok(job) = job_rx.recv() {
        let result = job(&ctx);
        // A closed channel means the executor is gone; just exit.
        if ctx.send_done(result).is_err() {
            break;
        }
    }
}
