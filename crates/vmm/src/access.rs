//! Memory-access event records.
//!
//! Every simulated kernel memory access produces one [`Access`], carrying the
//! features Algorithm 1 keys PMCs on — instruction (site), memory range
//! (address + length), value, and access type — plus the synchronization
//! context (locks held, RCU nesting) that the data-race detector consumes.

use serde::{Deserialize, Serialize};

use crate::site::Site;

/// Whether an access reads or writes guest memory.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum AccessKind {
    /// A load from guest memory.
    Read,
    /// A store to guest memory.
    Write,
}

impl AccessKind {
    /// Returns true for [`AccessKind::Write`].
    pub fn is_write(self) -> bool {
        matches!(self, AccessKind::Write)
    }
}

/// One observed memory access by a simulated kernel thread.
///
/// Every field is integral (no floats), so profiles containing accesses
/// round-trip u64-exactly through any of the store codecs.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Access {
    /// Global sequence number within one execution (trace index).
    pub seq: u64,
    /// Simulated vCPU / kernel-thread index that performed the access.
    pub thread: usize,
    /// Static instruction identity.
    pub site: Site,
    /// Read or write.
    pub kind: AccessKind,
    /// Start address of the accessed range.
    pub addr: u64,
    /// Length of the accessed range in bytes (1..=8).
    pub len: u8,
    /// Value read or written (low `len` bytes significant).
    pub value: u64,
    /// True for `READ_ONCE`/`WRITE_ONCE`-style marked accesses; pairs of
    /// marked accesses are not data races.
    pub atomic: bool,
    /// Addresses of the locks held by the thread at the time of the access.
    pub locks: Vec<u64>,
    /// RCU read-side critical-section nesting depth at the time of access.
    pub rcu_depth: u8,
}

impl Access {
    /// End of the accessed range (exclusive), saturating at the top of the
    /// address space so ranges ending at `u64::MAX` cannot wrap to 0.
    pub fn end(&self) -> u64 {
        self.addr.saturating_add(u64::from(self.len))
    }

    /// Returns true if this access's range overlaps `other`'s.
    pub fn overlaps(&self, other: &Access) -> bool {
        self.addr < other.end() && other.addr < self.end()
    }

    /// Returns true if the two accesses share at least one held lock.
    pub fn shares_lock_with(&self, other: &Access) -> bool {
        self.locks.iter().any(|l| other.locks.contains(l))
    }

    /// Projects this access's value onto the byte range
    /// `[start, start + len)`, which must be contained in the access range.
    ///
    /// This is the `project_value` helper of Algorithm 1: when a write and a
    /// read overlap only partially, their values are compared over the
    /// overlapping bytes.
    pub fn project_value(&self, start: u64, len: u8) -> u64 {
        debug_assert!(start >= self.addr && start + u64::from(len) <= self.end());
        let shift = (start - self.addr) * 8;
        let raw = self.value >> shift;
        if len >= 8 {
            raw
        } else {
            raw & ((1u64 << (u64::from(len) * 8)) - 1)
        }
    }
}

/// Computes the overlapping byte range of two (addr, len) ranges, if any.
pub fn range_overlap(a_addr: u64, a_len: u8, b_addr: u64, b_len: u8) -> Option<(u64, u8)> {
    let start = a_addr.max(b_addr);
    let end = a_addr
        .saturating_add(u64::from(a_len))
        .min(b_addr.saturating_add(u64::from(b_len)));
    if start < end {
        Some((start, (end - start) as u8))
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::site;

    fn acc(addr: u64, len: u8, value: u64, kind: AccessKind) -> Access {
        Access {
            seq: 0,
            thread: 0,
            site: site!("test:acc"),
            kind,
            addr,
            len,
            value,
            atomic: false,
            locks: vec![],
            rcu_depth: 0,
        }
    }

    #[test]
    fn overlap_detection() {
        let a = acc(100, 8, 0, AccessKind::Write);
        let b = acc(104, 8, 0, AccessKind::Read);
        let c = acc(108, 4, 0, AccessKind::Read);
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c));
        assert_eq!(range_overlap(100, 8, 104, 8), Some((104, 4)));
        assert_eq!(range_overlap(100, 8, 108, 4), None);
    }

    #[test]
    fn ranges_at_address_space_end_saturate_instead_of_wrapping() {
        let hi = acc(u64::MAX - 4, 8, 0, AccessKind::Write);
        assert_eq!(hi.end(), u64::MAX);
        let other = acc(u64::MAX - 2, 8, 0, AccessKind::Read);
        assert!(hi.overlaps(&other));
        assert_eq!(range_overlap(u64::MAX - 4, 8, u64::MAX - 2, 8), Some((u64::MAX - 2, 2)));
        assert_eq!(range_overlap(u64::MAX - 16, 8, u64::MAX - 4, 8), None);
    }

    #[test]
    fn value_projection_little_endian() {
        // Bytes at 100..108 are 01 02 03 04 05 06 07 08.
        let w = acc(100, 8, 0x0807_0605_0403_0201, AccessKind::Write);
        assert_eq!(w.project_value(100, 8), 0x0807_0605_0403_0201);
        assert_eq!(w.project_value(104, 4), 0x0807_0605);
        assert_eq!(w.project_value(107, 1), 0x08);
        assert_eq!(w.project_value(102, 2), 0x0403);
    }

    #[test]
    fn lock_sharing() {
        let mut a = acc(0x40, 4, 0, AccessKind::Write);
        let mut b = acc(0x40, 4, 0, AccessKind::Read);
        assert!(!a.shares_lock_with(&b));
        a.locks = vec![0x9000, 0x9008];
        b.locks = vec![0x9008];
        assert!(a.shares_lock_with(&b));
        b.locks = vec![0x9010];
        assert!(!a.shares_lock_with(&b));
    }
}
