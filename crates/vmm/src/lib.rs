//! Deterministic execution engine for the Snowboard reproduction.
//!
//! This crate plays the role that the customized QEMU/SKI hypervisor plays in
//! the paper: it runs "kernel threads" (arbitrary Rust closures written
//! against [`ctx::Ctx`]) one at a time, observes every simulated memory
//! access, and lets a pluggable [`sched::Scheduler`] decide, after each
//! access, whether to preempt the running thread — exactly the
//! instruction-granularity control that Snowboard's Algorithm 2 requires.
//!
//! The pieces:
//!
//! * [`mod@site`] — stable identities for static memory-access instructions
//!   ("instruction addresses" in the paper).
//! * [`mem`] — the guest physical memory: a flat, byte-addressable space with
//!   a deterministic slab allocator, a faulting null-guard page, and
//!   paper-faithful per-thread kernel stack regions.
//! * [`access`] — the memory-access event record that profiling and PMC
//!   identification consume.
//! * [`ctx`] — the handle kernel code uses to touch guest memory, locks, RCU,
//!   and the console.
//! * [`exec`] — the coordinator that serializes thread execution, manages the
//!   lock table and RCU grace periods, detects deadlocks and livelocks, and
//!   produces an [`exec::ExecReport`].
//! * [`sched`] — schedulers: free-run, random-walk, SKI-style, and the
//!   Snowboard scheduler implementing the paper's Algorithm 2.
//!
//! # Examples
//!
//! ```
//! use sb_vmm::{ctx::KResult, exec::Executor, mem::GuestMem, sched::FreeRun, site};
//!
//! let mut exec = Executor::new(1);
//! let mem = GuestMem::new();
//! let report = exec.run(
//!     mem,
//!     vec![Box::new(|ctx| -> KResult<()> {
//!         let a = ctx.kmalloc(8)?;
//!         ctx.write_u64(site!("demo:init"), a, 42)?;
//!         assert_eq!(ctx.read_u64(site!("demo:check"), a)?, 42);
//!         Ok(())
//!     })],
//!     &mut FreeRun::default(),
//! );
//! assert!(report.report.outcome.is_completed());
//! ```

pub mod access;
pub mod ctx;
pub mod exec;
pub mod mem;
pub mod replay;
pub mod sched;
pub mod site;

pub use access::{Access, AccessKind};
pub use ctx::{Ctx, Fault, KResult};
pub use exec::{ExecError, ExecLimits, ExecReport, Executor, Outcome};
pub use mem::GuestMem;
pub use site::Site;
