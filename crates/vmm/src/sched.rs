//! Interleaving schedulers.
//!
//! The coordinator consults a [`Scheduler`] after every memory access; the
//! scheduler answers "should the running thread be preempted here?" and, on
//! preemption, which thread runs next. Four schedulers are provided:
//!
//! * [`FreeRun`] — never preempts; used for sequential profiling (§4.1).
//! * [`RandomSched`] — preempts with fixed probability at every access; the
//!   unguided baseline.
//! * [`SkiSched`] — SKI's behavior as characterized in §5.4: yields whenever
//!   it observes *any* access by an instruction involved in a PMC,
//!   "regardless of memory targets".
//! * [`SnowboardSched`] — the paper's Algorithm 2: yields only on precise PMC
//!   accesses (site *and* memory range), learns `flags` (the access observed
//!   right before a PMC access) so later trials can preempt just *before* the
//!   PMC access (`pmc_access_coming`), and accepts incidental PMCs discovered
//!   mid-campaign.

//!
//! All schedulers except [`FreeRun`] accept a [`DecisionObserver`] via
//! [`Scheduler::set_observer`], reporting every scheduling decision
//! ([`SchedDecision`]) for observability and determinism testing. The hook
//! is `None` by default and costs one branch per decision when unset.

use std::collections::HashSet;
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::access::{Access, AccessKind};
use crate::mem::MAX_THREADS;
use crate::site::Site;

/// One side of a PMC rendered as a concrete access pattern the scheduler can
/// match executions against: instruction identity plus memory range and
/// access type.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct HintAccess {
    /// Instruction identity of the access.
    pub site: Site,
    /// Read or write side.
    pub kind: AccessKind,
    /// Start of the memory range.
    pub addr: u64,
    /// Length of the memory range in bytes.
    pub len: u8,
}

impl HintAccess {
    /// End of the hinted range (exclusive), saturating at the top of the
    /// address space exactly like [`Access::end`] — `addr + len` must not
    /// wrap for hints near `u64::MAX`.
    pub fn end(&self) -> u64 {
        self.addr.saturating_add(u64::from(self.len))
    }

    /// True if `a` is this pattern: same instruction, same access type, and
    /// overlapping memory range.
    pub fn matches(&self, a: &Access) -> bool {
        self.site == a.site && self.kind == a.kind && self.addr < a.end() && a.addr < self.end()
    }
}

/// One scheduling decision, reported to a [`DecisionObserver`].
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum SchedDecision {
    /// An access matched the scheduler's hint set (a watched site for
    /// [`SkiSched`], a learned flag or PMC pattern for [`SnowboardSched`]).
    /// Reported whether or not the coin flip then grants a preemption.
    HintHit {
        /// Thread that performed the matching access.
        thread: usize,
    },
    /// A voluntary preemption was granted after an access.
    Preempt {
        /// Thread being preempted.
        thread: usize,
        /// True if a hint (not a blind coin flip or change point) drove it.
        hinted: bool,
    },
    /// The coordinator force-switched a stuck thread (liveness).
    Forced {
        /// Thread that was force-switched.
        thread: usize,
    },
    /// The scheduler picked the next thread to run.
    Pick {
        /// Thread that was running (or blocked/finished).
        from: usize,
        /// Thread chosen to run next.
        to: usize,
    },
    /// Incidentally discovered PMC patterns were added to the watch set
    /// (Algorithm 2 line 27).
    PmcAdded {
        /// Number of hint patterns added.
        count: usize,
    },
}

/// Receives every [`SchedDecision`] a scheduler makes. Implementations must
/// be cheap: the hook fires on the per-access hot path.
pub trait DecisionObserver: Send + Sync {
    /// Called synchronously for each decision, in decision order.
    fn on_decision(&self, d: SchedDecision);
}

fn notify(observer: &Option<Arc<dyn DecisionObserver>>, d: SchedDecision) {
    if let Some(o) = observer {
        o.on_decision(d);
    }
}

/// Decides interleavings. Called by the execution coordinator.
pub trait Scheduler {
    /// Invoked after thread `t` completed `access`. Return true to preempt.
    fn after_access(&mut self, t: usize, access: &Access) -> bool {
        let _ = (t, access);
        false
    }

    /// Chooses the next thread among `candidates` (non-empty) when `prev` is
    /// preempted, blocked, or finished.
    fn pick(&mut self, prev: usize, candidates: &[usize]) -> usize;

    /// Notification of a liveness-forced preemption of thread `t`.
    fn on_forced_switch(&mut self, _t: usize) {}

    /// Installs (or clears) a [`DecisionObserver`]. The default is a no-op
    /// for schedulers with nothing to report — [`FreeRun`] never preempts,
    /// and the replay recorders capture switch points instead.
    fn set_observer(&mut self, observer: Option<Arc<dyn DecisionObserver>>) {
        let _ = observer;
    }
}

/// Runs each thread to completion without voluntary preemption.
#[derive(Default)]
pub struct FreeRun;

impl Scheduler for FreeRun {
    fn pick(&mut self, _prev: usize, candidates: &[usize]) -> usize {
        candidates[0]
    }
}

/// Preempts with probability `p` after every access — unguided exploration.
pub struct RandomSched {
    rng: StdRng,
    p: f64,
    observer: Option<Arc<dyn DecisionObserver>>,
}

impl RandomSched {
    /// Creates a random scheduler with switch probability `p`.
    pub fn new(seed: u64, p: f64) -> Self {
        RandomSched {
            rng: StdRng::seed_from_u64(seed),
            p,
            observer: None,
        }
    }
}

impl Scheduler for RandomSched {
    fn after_access(&mut self, t: usize, _access: &Access) -> bool {
        let switch = self.rng.gen_bool(self.p);
        if switch {
            notify(&self.observer, SchedDecision::Preempt { thread: t, hinted: false });
        }
        switch
    }

    fn pick(&mut self, prev: usize, candidates: &[usize]) -> usize {
        let to = candidates[self.rng.gen_range(0..candidates.len())];
        notify(&self.observer, SchedDecision::Pick { from: prev, to });
        to
    }

    fn on_forced_switch(&mut self, t: usize) {
        notify(&self.observer, SchedDecision::Forced { thread: t });
    }

    fn set_observer(&mut self, observer: Option<Arc<dyn DecisionObserver>>) {
        self.observer = observer;
    }
}

/// SKI-style scheduling: preempt (with probability 1/2) after any access
/// whose *instruction* is involved in the PMC under test, regardless of the
/// memory target (§5.4's characterization of SKI's extra vCPU switches).
pub struct SkiSched {
    sites: HashSet<Site>,
    rng: StdRng,
    observer: Option<Arc<dyn DecisionObserver>>,
}

impl SkiSched {
    /// Creates a SKI scheduler watching the given instruction sites.
    pub fn new(seed: u64, sites: impl IntoIterator<Item = Site>) -> Self {
        SkiSched {
            sites: sites.into_iter().collect(),
            rng: StdRng::seed_from_u64(seed),
            observer: None,
        }
    }

    /// Reseeds the randomness for a new trial.
    pub fn begin_trial(&mut self, seed: u64) {
        self.rng = StdRng::seed_from_u64(seed);
    }
}

impl Scheduler for SkiSched {
    fn after_access(&mut self, t: usize, access: &Access) -> bool {
        if !self.sites.contains(&access.site) {
            return false;
        }
        notify(&self.observer, SchedDecision::HintHit { thread: t });
        let switch = self.rng.gen_bool(0.5);
        if switch {
            notify(&self.observer, SchedDecision::Preempt { thread: t, hinted: true });
        }
        switch
    }

    fn pick(&mut self, prev: usize, candidates: &[usize]) -> usize {
        let to = candidates[self.rng.gen_range(0..candidates.len())];
        notify(&self.observer, SchedDecision::Pick { from: prev, to });
        to
    }

    fn on_forced_switch(&mut self, t: usize) {
        notify(&self.observer, SchedDecision::Forced { thread: t });
    }

    fn set_observer(&mut self, observer: Option<Arc<dyn DecisionObserver>>) {
        self.observer = observer;
    }
}

/// PCT (Probabilistic Concurrency Testing, Burckhardt et al. ASPLOS'10):
/// the randomized-priority scheduler SKI generalizes to kernels (§7).
///
/// Threads get random initial priorities; `d - 1` change points are drawn
/// uniformly from the expected instruction count `k`, and when execution
/// reaches a change point the running thread's priority drops below every
/// other. The highest-priority runnable thread always runs. PCT guarantees
/// a `1/(n·k^(d-1))` probability of hitting any bug of depth `d`.
pub struct PctSched {
    priorities: [u64; MAX_THREADS],
    change_points: Vec<u64>,
    executed: u64,
    next_low: u64,
    rng: StdRng,
    observer: Option<Arc<dyn DecisionObserver>>,
}

impl PctSched {
    /// Creates a PCT scheduler for executions of roughly `k` accesses and
    /// bug depth `d` (the number of ordering constraints to hit).
    pub fn new(seed: u64, k: u64, d: u32) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut priorities = [0u64; MAX_THREADS];
        for p in priorities.iter_mut() {
            // High random starting priorities, well above change-point lows.
            *p = rng.gen_range(1_000_000..2_000_000);
        }
        let mut change_points: Vec<u64> = (0..d.saturating_sub(1))
            .map(|_| rng.gen_range(0..k.max(1)))
            .collect();
        change_points.sort_unstable();
        PctSched {
            priorities,
            change_points,
            executed: 0,
            next_low: 1000,
            rng,
            observer: None,
        }
    }

    /// Reseeds for a new trial with fresh priorities and change points.
    /// Keeps the installed observer.
    pub fn begin_trial(&mut self, seed: u64, k: u64, d: u32) {
        let observer = self.observer.take();
        *self = PctSched::new(seed, k, d);
        self.observer = observer;
    }
}

impl Scheduler for PctSched {
    fn after_access(&mut self, t: usize, _access: &Access) -> bool {
        self.executed += 1;
        if self
            .change_points
            .first()
            .is_some_and(|cp| self.executed > *cp)
        {
            self.change_points.remove(0);
            // Drop the running thread below everyone else.
            self.next_low = self.next_low.saturating_sub(1);
            self.priorities[t] = self.next_low;
            notify(&self.observer, SchedDecision::Preempt { thread: t, hinted: false });
            return true;
        }
        false
    }

    fn pick(&mut self, prev: usize, candidates: &[usize]) -> usize {
        // The coordinator never calls `pick` with an empty candidate set;
        // stay on `prev` rather than panicking if a custom harness does.
        let to = candidates
            .iter()
            .copied()
            .max_by_key(|t| self.priorities[*t])
            .unwrap_or(prev);
        notify(&self.observer, SchedDecision::Pick { from: prev, to });
        to
    }

    fn on_forced_switch(&mut self, t: usize) {
        // A stuck thread loses its priority so progress can happen.
        self.next_low = self.next_low.saturating_sub(1);
        self.priorities[t] = self.next_low;
        let _ = &self.rng;
        notify(&self.observer, SchedDecision::Forced { thread: t });
    }

    fn set_observer(&mut self, observer: Option<Arc<dyn DecisionObserver>>) {
        self.observer = observer;
    }
}

/// The Snowboard scheduler: Algorithm 2 of the paper.
///
/// The scheduler holds the set of PMC access patterns under test
/// (`current_pmcs`), and `flags` — per-thread (site, addr) pairs observed
/// immediately *before* a PMC access in an earlier trial. Preemption is
/// considered non-deterministically when:
///
/// 1. the thread just performed an access matching `flags`
///    (`pmc_access_coming` — a PMC access is probably next), or
/// 2. the thread just performed a PMC access itself
///    (`performed_pmc_access`), in which case the preceding access is
///    recorded into `flags` for future trials.
///
/// `flags` persist across the trials of one concurrent test; the randomness
/// is reseeded per trial exactly as Algorithm 2's
/// `random.seed(SEED + trial)`. The scheduler is `Clone` so campaign code
/// can checkpoint its state before a trial and re-run that exact trial
/// under a recorder (see `replay`).
#[derive(Clone)]
pub struct SnowboardSched {
    pmcs: Vec<HintAccess>,
    flags: HashSet<(Site, u64)>,
    last: [Option<(Site, u64)>; MAX_THREADS],
    rng: StdRng,
    switch_p: f64,
    learn_flags: bool,
    observer: Option<Arc<dyn DecisionObserver>>,
}

impl SnowboardSched {
    /// Creates a scheduler for the given PMC access patterns.
    pub fn new(seed: u64, pmcs: impl IntoIterator<Item = HintAccess>) -> Self {
        SnowboardSched {
            pmcs: pmcs.into_iter().collect(),
            flags: HashSet::new(),
            last: [None; MAX_THREADS],
            rng: StdRng::seed_from_u64(seed),
            switch_p: 0.5,
            learn_flags: true,
            observer: None,
        }
    }

    /// Ablation variant: disables `flags` learning, so only
    /// `performed_pmc_access` (post-access) preemption remains and the
    /// `pmc_access_coming` pre-access preemption never fires.
    pub fn without_flag_learning(seed: u64, pmcs: impl IntoIterator<Item = HintAccess>) -> Self {
        let mut s = Self::new(seed, pmcs);
        s.learn_flags = false;
        s
    }

    /// Starts a new trial: reseeds randomness (`random.seed(SEED + trial)`)
    /// and clears per-execution state. `flags` and the PMC set persist.
    pub fn begin_trial(&mut self, seed: u64) {
        self.rng = StdRng::seed_from_u64(seed);
        self.last = [None; MAX_THREADS];
    }

    /// Adds an incidentally discovered PMC's access patterns to the watch
    /// set (Algorithm 2 line 27).
    pub fn add_pmc(&mut self, accesses: impl IntoIterator<Item = HintAccess>) {
        let before = self.pmcs.len();
        self.pmcs.extend(accesses);
        let added = self.pmcs.len() - before;
        if added > 0 {
            notify(&self.observer, SchedDecision::PmcAdded { count: added });
        }
    }

    /// Number of `flags` learned so far (diagnostics).
    pub fn flag_count(&self) -> usize {
        self.flags.len()
    }

    fn matches_pmc(&self, a: &Access) -> bool {
        self.pmcs.iter().any(|p| p.matches(a))
    }
}

impl Scheduler for SnowboardSched {
    fn after_access(&mut self, t: usize, access: &Access) -> bool {
        let mut switch = false;
        let mut hinted = false;
        // `pmc_access_coming`: the last trial saw a PMC access right after
        // this (site, addr); consider yielding before it happens.
        if self.flags.contains(&(access.site, access.addr)) {
            hinted = true;
            switch = self.rng.gen_bool(self.switch_p);
        }
        // `performed_pmc_access`: remember the preceding access as a flag
        // and consider yielding right after the PMC access.
        if self.matches_pmc(access) {
            hinted = true;
            if self.learn_flags {
                if let Some(prev) = self.last[t] {
                    self.flags.insert(prev);
                }
            }
            switch = switch || self.rng.gen_bool(self.switch_p);
        }
        self.last[t] = Some((access.site, access.addr));
        if hinted {
            notify(&self.observer, SchedDecision::HintHit { thread: t });
        }
        if switch {
            notify(&self.observer, SchedDecision::Preempt { thread: t, hinted: true });
        }
        switch
    }

    fn pick(&mut self, prev: usize, candidates: &[usize]) -> usize {
        let to = candidates[self.rng.gen_range(0..candidates.len())];
        notify(&self.observer, SchedDecision::Pick { from: prev, to });
        to
    }

    fn on_forced_switch(&mut self, t: usize) {
        notify(&self.observer, SchedDecision::Forced { thread: t });
    }

    fn set_observer(&mut self, observer: Option<Arc<dyn DecisionObserver>>) {
        self.observer = observer;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::site;

    fn acc(site: Site, addr: u64, kind: AccessKind) -> Access {
        Access {
            seq: 0,
            thread: 0,
            site,
            kind,
            addr,
            len: 8,
            value: 0,
            atomic: false,
            locks: vec![],
            rcu_depth: 0,
        }
    }

    #[test]
    fn hint_matching_requires_site_kind_and_overlap() {
        let s = site!("sched:w");
        let h = HintAccess {
            site: s,
            kind: AccessKind::Write,
            addr: 100,
            len: 8,
        };
        assert!(h.matches(&acc(s, 104, AccessKind::Write)));
        assert!(!h.matches(&acc(s, 104, AccessKind::Read)));
        assert!(!h.matches(&acc(s, 108, AccessKind::Write)));
        assert!(!h.matches(&acc(site!("sched:other"), 100, AccessKind::Write)));
    }

    #[test]
    fn hint_matching_at_address_space_end_does_not_wrap() {
        let s = site!("sched:hi");
        let h = HintAccess {
            site: s,
            kind: AccessKind::Write,
            addr: u64::MAX - 4,
            len: 8,
        };
        // `addr + len` overflows u64; the saturating end must still match an
        // overlapping access at the top of the address space...
        assert_eq!(h.end(), u64::MAX);
        assert!(h.matches(&acc(s, u64::MAX - 2, AccessKind::Write)));
        assert!(h.matches(&acc(s, u64::MAX - 8, AccessKind::Write)));
        // ...and still reject a disjoint one below the hinted range.
        assert!(!h.matches(&acc(s, u64::MAX - 20, AccessKind::Write)));
    }

    #[test]
    fn observers_see_preempts_picks_and_pmc_additions() {
        #[derive(Default)]
        struct Rec(std::sync::Mutex<Vec<SchedDecision>>);
        impl DecisionObserver for Rec {
            fn on_decision(&self, d: SchedDecision) {
                self.0.lock().unwrap().push(d);
            }
        }
        let w = site!("sb:obs_write");
        let h = HintAccess {
            site: w,
            kind: AccessKind::Write,
            addr: 0x2000,
            len: 8,
        };
        let rec = Arc::new(Rec::default());
        let mut s = SnowboardSched::new(11, [h]);
        s.set_observer(Some(rec.clone()));
        s.begin_trial(11);
        for _ in 0..16 {
            if s.after_access(0, &acc(w, 0x2000, AccessKind::Write)) {
                s.pick(0, &[0, 1]);
            }
        }
        s.add_pmc([HintAccess {
            site: site!("sb:obs_other"),
            kind: AccessKind::Read,
            addr: 0x3000,
            len: 4,
        }]);
        s.on_forced_switch(1);
        let seen = rec.0.lock().unwrap().clone();
        assert!(seen.iter().any(|d| matches!(d, SchedDecision::HintHit { thread: 0 })));
        assert!(seen
            .iter()
            .any(|d| matches!(d, SchedDecision::Preempt { thread: 0, hinted: true })));
        assert!(seen.iter().any(|d| matches!(d, SchedDecision::Pick { from: 0, .. })));
        assert!(seen.contains(&SchedDecision::PmcAdded { count: 1 }));
        assert!(seen.contains(&SchedDecision::Forced { thread: 1 }));
    }

    #[test]
    fn free_run_never_switches() {
        let mut s = FreeRun;
        let a = acc(site!("fr"), 0x2000, AccessKind::Read);
        for _ in 0..100 {
            assert!(!s.after_access(0, &a));
        }
        assert_eq!(s.pick(0, &[1, 2]), 1);
    }

    #[test]
    fn snowboard_learns_flags_from_pmc_accesses() {
        let w = site!("sb:pmc_write");
        let prev = site!("sb:prelude");
        let h = HintAccess {
            site: w,
            kind: AccessKind::Write,
            addr: 0x2000,
            len: 8,
        };
        let mut s = SnowboardSched::new(7, [h]);
        s.begin_trial(7);
        // A non-PMC access followed by the PMC access records the former as
        // a flag.
        s.after_access(0, &acc(prev, 0x3000, AccessKind::Read));
        s.after_access(0, &acc(w, 0x2000, AccessKind::Write));
        assert_eq!(s.flag_count(), 1);
        // Flags persist across trials.
        s.begin_trial(8);
        assert_eq!(s.flag_count(), 1);
    }

    #[test]
    fn snowboard_switch_decisions_are_seed_deterministic() {
        let w = site!("sb:det_write");
        let h = HintAccess {
            site: w,
            kind: AccessKind::Write,
            addr: 0x2000,
            len: 8,
        };
        let run = |seed: u64| {
            let mut s = SnowboardSched::new(seed, [h]);
            s.begin_trial(seed);
            (0..32)
                .map(|i| s.after_access(0, &acc(w, 0x2000 + (i % 2), AccessKind::Write)))
                .collect::<Vec<bool>>()
        };
        assert_eq!(run(3), run(3));
        // Sanity: some trial actually switches somewhere.
        assert!(run(3).iter().any(|b| *b));
    }

    #[test]
    fn pct_runs_highest_priority_and_demotes_at_change_points() {
        let mut s = PctSched::new(5, 10, 3);
        // Deterministic pick: the same candidates always yield the same
        // winner before any change point fires.
        let first = s.pick(0, &[0, 1]);
        assert_eq!(first, s.pick(0, &[0, 1]));
        // Drive past every change point; the running thread must
        // eventually be demoted (a switch request).
        let a = acc(site!("pct:x"), 0x2000, AccessKind::Read);
        let mut demoted = false;
        for _ in 0..20 {
            demoted |= s.after_access(first, &a);
        }
        assert!(demoted, "change points must fire within k accesses");
        // After demotion the other thread wins.
        assert_ne!(s.pick(first, &[0, 1]), first);
    }

    #[test]
    fn pct_is_seed_deterministic() {
        let run = |seed| {
            let mut s = PctSched::new(seed, 50, 4);
            let a = acc(site!("pct:d"), 0x2000, AccessKind::Read);
            (0..60).map(|_| s.after_access(0, &a)).collect::<Vec<_>>()
        };
        assert_eq!(run(9), run(9));
    }

    #[test]
    fn ski_switches_on_site_regardless_of_address() {
        let s0 = site!("ski:w");
        let mut s = SkiSched::new(1, [s0]);
        let mut any = false;
        for i in 0..64 {
            any |= s.after_access(0, &acc(s0, 0x9000 + i * 8, AccessKind::Write));
        }
        assert!(any, "SKI should sometimes switch at a watched site");
        let mut never = false;
        for _ in 0..64 {
            never |= s.after_access(0, &acc(site!("ski:other"), 0x9000, AccessKind::Write));
        }
        assert!(!never, "SKI must ignore unwatched sites");
    }
}
