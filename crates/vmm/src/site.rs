//! Stable identities for static memory-access instructions.
//!
//! The paper keys PMC features on x86 *instruction addresses*. In this
//! reproduction, each static access location in the simulated kernel is a
//! *site*: a named program point whose identity is an order-independent
//! FNV-1a hash of its name. Hashing (instead of sequential interning) keeps
//! identities stable across runs and processes no matter in which order sites
//! are first observed — the property that lets PMCs predicted during
//! sequential profiling be matched during concurrent execution.

use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

use serde::{Deserialize, Serialize};

/// The identity of one static memory-access instruction in the simulated
/// kernel ("instruction address" in the paper's terminology).
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Site(pub u64);

/// FNV-1a offset basis (64-bit).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime (64-bit).
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn registry() -> &'static Mutex<HashMap<u64, String>> {
    static REGISTRY: OnceLock<Mutex<HashMap<u64, String>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
}

impl Site {
    /// Computes the stable hash of `name` without registering it.
    ///
    /// Useful for tests and for building lookup keys for sites that are known
    /// to have been interned elsewhere.
    pub fn hash_of(name: &str) -> u64 {
        let mut h = FNV_OFFSET;
        for b in name.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(FNV_PRIME);
        }
        h
    }

    /// Interns `name`, returning its stable [`Site`] identity.
    ///
    /// Interning the same name always yields the same identity; the name is
    /// recorded so diagnostics can map identities back to kernel locations.
    pub fn intern(name: &str) -> Site {
        let id = Self::hash_of(name);
        let mut reg = registry().lock().expect("site registry poisoned");
        reg.entry(id).or_insert_with(|| name.to_owned());
        Site(id)
    }

    /// Returns the name this site was interned under, if known.
    pub fn name(self) -> Option<String> {
        registry()
            .lock()
            .expect("site registry poisoned")
            .get(&self.0)
            .cloned()
    }

    /// Returns the site name, or the raw hash rendered in hex when the site
    /// was never interned in this process.
    pub fn display_name(self) -> String {
        self.name().unwrap_or_else(|| format!("site#{:016x}", self.0))
    }
}

impl std::fmt::Debug for Site {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Site({})", self.display_name())
    }
}

impl std::fmt::Display for Site {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.display_name())
    }
}

/// Interns a static access-site name at the use site.
///
/// # Examples
///
/// ```
/// use sb_vmm::site;
///
/// let s = site!("l2tp_tunnel_register:list_add");
/// assert_eq!(s, site!("l2tp_tunnel_register:list_add"));
/// ```
#[macro_export]
macro_rules! site {
    ($name:expr) => {
        $crate::site::Site::intern($name)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_stable_and_order_independent() {
        let a = Site::intern("alpha");
        let b = Site::intern("beta");
        let a2 = Site::intern("alpha");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        // Identity depends only on the name, never on interning order.
        assert_eq!(a.0, Site::hash_of("alpha"));
    }

    #[test]
    fn names_round_trip() {
        let s = Site::intern("round_trip:site");
        assert_eq!(s.name().as_deref(), Some("round_trip:site"));
        assert_eq!(s.display_name(), "round_trip:site");
    }

    #[test]
    fn unknown_site_renders_hash() {
        let s = Site(0xdead_beef);
        assert!(s.display_name().starts_with("site#"));
    }

    #[test]
    fn macro_interns() {
        assert_eq!(site!("macro:site"), Site::intern("macro:site"));
    }
}
