//! The handle simulated kernel code uses to interact with the machine.
//!
//! Kernel subsystems are written as ordinary Rust against [`Ctx`]: every
//! memory access, lock operation, RCU primitive, allocation, and console
//! write is a *request* sent to the execution coordinator, which performs it
//! on the guest state, records it, and decides — via the active scheduler —
//! which thread runs next. Because the coordinator owns all shared state and
//! serializes every request, the whole engine is safe Rust with no shared
//! mutable memory between worker threads.

use std::sync::mpsc::{Receiver, Sender};

use serde::{Deserialize, Serialize};

use crate::mem::stack_base;
use crate::site::Site;
use crate::AccessKind;

/// A simulated machine fault or execution-control signal.
///
/// Kernel code propagates faults with `?`; the program runner at the base of
/// each thread decides whether a fault ends one syscall or the whole test.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum Fault {
    /// Dereference inside the null page (`addr < 0x1000`).
    NullDeref {
        /// Faulting address.
        addr: u64,
    },
    /// Access to an unmapped address (low guard beyond the null page, or out
    /// of bounds).
    PageFault {
        /// Faulting address.
        addr: u64,
    },
    /// Malformed access (zero or over-wide length).
    BadAccess {
        /// Requested address.
        addr: u64,
        /// Requested length.
        len: u8,
    },
    /// Allocation failure.
    Oom,
    /// The kernel invoked [`Ctx::oops`] (explicit `BUG()`/panic).
    Oops,
    /// The coordinator is tearing the execution down (panic elsewhere,
    /// deadlock, livelock, or executor shutdown); unwind immediately.
    Aborted,
    /// Lock protocol violation (e.g. unlocking a lock the thread holds not).
    LockError {
        /// Lock address involved.
        addr: u64,
    },
}

impl Fault {
    /// True for faults that terminate the entire execution (machine-level
    /// failures), as opposed to per-operation errors a syscall may handle.
    pub fn is_fatal(self) -> bool {
        matches!(
            self,
            Fault::NullDeref { .. }
                | Fault::PageFault { .. }
                | Fault::Oops
                | Fault::Aborted
                | Fault::LockError { .. }
        )
    }
}

/// Result type used throughout the simulated kernel.
pub type KResult<T> = Result<T, Fault>;

/// Requests a worker thread sends to the coordinator.
#[derive(Debug)]
pub(crate) enum Request {
    /// Perform a memory access.
    Access {
        site: Site,
        kind: AccessKind,
        addr: u64,
        len: u8,
        /// Value to store for writes; ignored for reads.
        value: u64,
        /// Marked (READ_ONCE/WRITE_ONCE-style) access.
        atomic: bool,
    },
    /// Acquire the lock cell at `addr` (blocking).
    Lock { addr: u64 },
    /// Release the lock cell at `addr`.
    Unlock { addr: u64 },
    /// Enter an RCU read-side critical section.
    RcuLock,
    /// Leave an RCU read-side critical section.
    RcuUnlock,
    /// Wait for an RCU grace period (all current readers done).
    SyncRcu,
    /// Allocate `len` bytes of guest heap.
    Alloc { len: u64 },
    /// Free a previous allocation.
    Free { addr: u64, len: u64 },
    /// Append a line to the kernel console.
    Printk { msg: String },
    /// Kernel panic with a console message; aborts the execution.
    Oops { msg: String },
    /// The thread's job finished with the given result.
    Done { result: Result<(), Fault> },
}

/// Coordinator replies to worker requests.
#[derive(Debug)]
pub(crate) enum Reply {
    /// Value result (reads, allocations).
    Value(u64),
    /// Success without a value.
    Unit,
    /// The request faulted.
    Fault(Fault),
}

/// Per-thread handle to the coordinator; the "CPU" kernel code runs on.
pub struct Ctx {
    tid: usize,
    req: Sender<Request>,
    rep: Receiver<Reply>,
}

impl Ctx {
    pub(crate) fn new(tid: usize, req: Sender<Request>, rep: Receiver<Reply>) -> Self {
        Ctx { tid, req, rep }
    }

    /// The simulated vCPU / kernel-thread index this context runs on.
    pub fn tid(&self) -> usize {
        self.tid
    }

    /// Address of 8-byte scratch slot `slot` in this thread's kernel stack.
    ///
    /// Accesses to these addresses are real, traced accesses — the profiler
    /// later prunes them with the paper's ESP-mask formula (§4.1.1).
    pub fn stack_slot(&self, slot: u64) -> u64 {
        stack_base(self.tid) + 16 + slot * 8
    }

    fn roundtrip(&self, req: Request) -> KResult<u64> {
        if self.req.send(req).is_err() {
            return Err(Fault::Aborted);
        }
        match self.rep.recv() {
            Ok(Reply::Value(v)) => Ok(v),
            Ok(Reply::Unit) => Ok(0),
            Ok(Reply::Fault(f)) => Err(f),
            Err(_) => Err(Fault::Aborted),
        }
    }

    /// Reads `len` bytes (1..=8) at `addr`, little-endian.
    pub fn read(&self, site: Site, addr: u64, len: u8) -> KResult<u64> {
        self.roundtrip(Request::Access {
            site,
            kind: AccessKind::Read,
            addr,
            len,
            value: 0,
            atomic: false,
        })
    }

    /// Writes the low `len` bytes of `value` at `addr`, little-endian.
    pub fn write(&self, site: Site, addr: u64, len: u8, value: u64) -> KResult<()> {
        self.roundtrip(Request::Access {
            site,
            kind: AccessKind::Write,
            addr,
            len,
            value,
            atomic: false,
        })
        .map(|_| ())
    }

    /// Marked load (`READ_ONCE`); exempt from data-race reports when paired
    /// with another marked access.
    pub fn read_atomic(&self, site: Site, addr: u64, len: u8) -> KResult<u64> {
        self.roundtrip(Request::Access {
            site,
            kind: AccessKind::Read,
            addr,
            len,
            value: 0,
            atomic: true,
        })
    }

    /// Marked store (`WRITE_ONCE`).
    pub fn write_atomic(&self, site: Site, addr: u64, len: u8, value: u64) -> KResult<()> {
        self.roundtrip(Request::Access {
            site,
            kind: AccessKind::Write,
            addr,
            len,
            value,
            atomic: true,
        })
        .map(|_| ())
    }

    /// Reads a u8 at `addr`.
    pub fn read_u8(&self, site: Site, addr: u64) -> KResult<u64> {
        self.read(site, addr, 1)
    }

    /// Reads a u32 at `addr`.
    pub fn read_u32(&self, site: Site, addr: u64) -> KResult<u64> {
        self.read(site, addr, 4)
    }

    /// Reads a u64 at `addr`.
    pub fn read_u64(&self, site: Site, addr: u64) -> KResult<u64> {
        self.read(site, addr, 8)
    }

    /// Writes a u8 at `addr`.
    pub fn write_u8(&self, site: Site, addr: u64, value: u64) -> KResult<()> {
        self.write(site, addr, 1, value)
    }

    /// Writes a u32 at `addr`.
    pub fn write_u32(&self, site: Site, addr: u64, value: u64) -> KResult<()> {
        self.write(site, addr, 4, value)
    }

    /// Writes a u64 at `addr`.
    pub fn write_u64(&self, site: Site, addr: u64, value: u64) -> KResult<()> {
        self.write(site, addr, 8, value)
    }

    /// Copies `len` bytes from `src` to `dst` one byte at a time, like the
    /// kernel's `memcpy` compiled to byte moves — every byte is a separate
    /// schedulable access, so a concurrent reader can observe a torn copy
    /// (the structure of paper bug #9).
    pub fn memcpy(&self, site: Site, dst: u64, src: u64, len: u64) -> KResult<()> {
        for i in 0..len {
            let b = self.read(site, src + i, 1)?;
            self.write(site, dst + i, 1, b)?;
        }
        Ok(())
    }

    /// Acquires the spinlock/mutex cell at `addr`, blocking until available.
    pub fn lock(&self, addr: u64) -> KResult<()> {
        self.roundtrip(Request::Lock { addr }).map(|_| ())
    }

    /// Releases the lock cell at `addr`.
    pub fn unlock(&self, addr: u64) -> KResult<()> {
        self.roundtrip(Request::Unlock { addr }).map(|_| ())
    }

    /// Runs `f` with the lock at `addr` held, releasing it afterwards even if
    /// `f` fails with a non-fatal fault.
    pub fn with_lock<T>(&self, addr: u64, f: impl FnOnce() -> KResult<T>) -> KResult<T> {
        self.lock(addr)?;
        let out = f();
        match &out {
            // After a fatal fault the machine is going down; skip unlocking.
            Err(e) if e.is_fatal() => out,
            _ => {
                self.unlock(addr)?;
                out
            }
        }
    }

    /// Enters an RCU read-side critical section.
    pub fn rcu_read_lock(&self) -> KResult<()> {
        self.roundtrip(Request::RcuLock).map(|_| ())
    }

    /// Leaves an RCU read-side critical section.
    pub fn rcu_read_unlock(&self) -> KResult<()> {
        self.roundtrip(Request::RcuUnlock).map(|_| ())
    }

    /// Waits for an RCU grace period: blocks until no other thread is inside
    /// an RCU read-side critical section.
    pub fn synchronize_rcu(&self) -> KResult<()> {
        self.roundtrip(Request::SyncRcu).map(|_| ())
    }

    /// Allocates `len` bytes of zeroed guest heap (kzalloc semantics).
    pub fn kmalloc(&self, len: u64) -> KResult<u64> {
        self.roundtrip(Request::Alloc { len })
    }

    /// Frees an allocation of `len` bytes at `addr`.
    pub fn kfree(&self, addr: u64, len: u64) -> KResult<()> {
        self.roundtrip(Request::Free { addr, len }).map(|_| ())
    }

    /// Appends a line to the kernel console (printk).
    pub fn printk(&self, msg: impl Into<String>) -> KResult<()> {
        self.roundtrip(Request::Printk { msg: msg.into() }).map(|_| ())
    }

    /// Reports the thread's job result to the coordinator (worker-loop use).
    pub(crate) fn send_done(&self, result: Result<(), Fault>) -> Result<(), ()> {
        self.req
            .send(Request::Done { result })
            .map_err(|_| ())
    }

    /// Kernel panic: records `msg` on the console, marks the execution as
    /// panicked, and returns the fault the caller should propagate.
    pub fn oops(&self, msg: impl Into<String>) -> Fault {
        match self.roundtrip(Request::Oops { msg: msg.into() }) {
            Err(f) => f,
            // The coordinator always replies with a fault to an oops; treat
            // an unexpected success as an abort to keep unwinding.
            Ok(_) => Fault::Aborted,
        }
    }
}
