//! Schedule recording and deterministic replay.
//!
//! §6 ("Bug Diagnosis and Deterministic Reproduction") highlights that
//! Snowboard "provid\[es\] a reliable environment to replicate bugs once they
//! are found". This module makes that capability scheduler-independent: a
//! [`RecordingSched`] wraps any scheduler and captures its decisions as a
//! portable [`Schedule`]; a [`ReplaySched`] re-applies the captured
//! decisions verbatim, reproducing the exact interleaving — and therefore
//! the exact bug — without the original scheduler, its RNG state, or its
//! learned flags.

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

use crate::access::Access;
use crate::sched::Scheduler;

/// A recorded interleaving: per-access preemption decisions and the chosen
/// thread at each scheduling point.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schedule {
    /// One entry per access, in execution order: preempt after it?
    pub switches: Vec<bool>,
    /// One entry per `pick` call, in order: the chosen thread.
    pub picks: Vec<usize>,
}

impl Schedule {
    /// Number of recorded access decisions.
    pub fn len(&self) -> usize {
        self.switches.len()
    }

    /// True if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.switches.is_empty() && self.picks.is_empty()
    }
}

/// Wraps any scheduler, recording its decisions into a [`Schedule`].
pub struct RecordingSched<S> {
    inner: S,
    schedule: Schedule,
}

impl<S: Scheduler> RecordingSched<S> {
    /// Starts recording around `inner`.
    pub fn new(inner: S) -> Self {
        RecordingSched {
            inner,
            schedule: Schedule::default(),
        }
    }

    /// Finishes recording, returning the captured schedule and the inner
    /// scheduler.
    pub fn finish(self) -> (Schedule, S) {
        (self.schedule, self.inner)
    }

    /// The schedule captured so far.
    pub fn schedule(&self) -> &Schedule {
        &self.schedule
    }
}

impl<S: Scheduler> Scheduler for RecordingSched<S> {
    fn after_access(&mut self, t: usize, access: &Access) -> bool {
        let d = self.inner.after_access(t, access);
        self.schedule.switches.push(d);
        d
    }

    fn pick(&mut self, prev: usize, candidates: &[usize]) -> usize {
        let p = self.inner.pick(prev, candidates);
        self.schedule.picks.push(p);
        p
    }

    fn on_forced_switch(&mut self, t: usize) {
        self.inner.on_forced_switch(t);
    }
}

/// Replays a recorded [`Schedule`] decision-for-decision.
///
/// When the replayed execution diverges (e.g. a different kernel build) and
/// the schedule runs out, the replayer stops preempting and picks the first
/// runnable thread; [`ReplaySched::diverged`] reports whether that happened.
pub struct ReplaySched {
    switches: VecDeque<bool>,
    picks: VecDeque<usize>,
    diverged: bool,
}

impl ReplaySched {
    /// Creates a replayer for `schedule`.
    pub fn new(schedule: Schedule) -> Self {
        ReplaySched {
            switches: schedule.switches.into(),
            picks: schedule.picks.into(),
            diverged: false,
        }
    }

    /// True if the execution consumed more decisions than were recorded or
    /// a recorded pick was not runnable.
    pub fn diverged(&self) -> bool {
        self.diverged
    }
}

impl Scheduler for ReplaySched {
    fn after_access(&mut self, _t: usize, _access: &Access) -> bool {
        match self.switches.pop_front() {
            Some(d) => d,
            None => {
                self.diverged = true;
                false
            }
        }
    }

    fn pick(&mut self, _prev: usize, candidates: &[usize]) -> usize {
        match self.picks.pop_front() {
            Some(p) if candidates.contains(&p) => p,
            Some(_) | None => {
                self.diverged = true;
                candidates[0]
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctx::KResult;
    use crate::exec::Executor;
    use crate::mem::GuestMem;
    use crate::sched::RandomSched;
    use crate::{site, Ctx};

    fn two_jobs(cell: u64) -> Vec<crate::exec::Job> {
        let job = move |name: &'static str| -> crate::exec::Job {
            Box::new(move |ctx: &Ctx| -> KResult<()> {
                for i in 0..30 {
                    let v = ctx.read_u64(site!(name), cell)?;
                    ctx.write_u64(site!(name), cell, v + i)?;
                }
                Ok(())
            })
        };
        vec![job("rp:a"), job("rp:b")]
    }

    fn trace_sig(r: &crate::exec::ExecReport) -> Vec<(usize, u64, u64)> {
        r.trace.iter().map(|a| (a.thread, a.addr, a.value)).collect()
    }

    #[test]
    fn replay_reproduces_the_recorded_interleaving() {
        let mut m = GuestMem::new();
        let cell = m.kmalloc(8).unwrap();
        let snapshot = m.clone();
        let mut exec = Executor::new(2);
        let mut rec = RecordingSched::new(RandomSched::new(9, 0.3));
        let original = exec.run(snapshot.clone(), two_jobs(cell), &mut rec);
        let (schedule, _) = rec.finish();
        assert!(!schedule.is_empty());
        let mut replay = ReplaySched::new(schedule);
        let replayed = exec.run(snapshot, two_jobs(cell), &mut replay);
        assert!(!replay.diverged());
        assert_eq!(trace_sig(&original.report), trace_sig(&replayed.report));
        assert_eq!(original.report.switches, replayed.report.switches);
    }

    #[test]
    fn replay_detects_divergence_gracefully() {
        let mut m = GuestMem::new();
        let cell = m.kmalloc(8).unwrap();
        let mut exec = Executor::new(2);
        // An empty schedule against a real execution: no preemption, and
        // divergence is flagged.
        let mut replay = ReplaySched::new(Schedule::default());
        let r = exec.run(m, two_jobs(cell), &mut replay);
        assert!(r.report.outcome.is_completed());
        assert!(replay.diverged());
    }

    #[test]
    fn schedules_serialize() {
        let s = Schedule {
            switches: vec![true, false, true],
            picks: vec![1, 0],
        };
        // serde round trip through the compact tuple representation used by
        // campaign archives.
        let cloned = s.clone();
        assert_eq!(s, cloned);
        assert_eq!(s.len(), 3);
    }
}
