//! Sequential test profiling (§4.1).
//!
//! Each corpus program runs alone, from the fixed boot snapshot, under the
//! free-run scheduler; its memory accesses are recorded and then pruned to
//! *potentially shared* accesses using the paper's two filters: only the
//! target thread's accesses (the CR3 filter — trivially satisfied here, one
//! thread runs), and only non-stack addresses, computed with the ESP mask
//! formula of §4.1.1.

use sb_kernel::{BootedKernel, Program};
use sb_obs::{keys, Tracer};
use sb_vmm::access::Access;
use sb_vmm::mem::{stack_base, stack_range_of, MAX_THREADS};
use sb_vmm::sched::FreeRun;
use sb_vmm::Executor;
use serde::{Deserialize, Serialize};

/// The memory-access profile of one sequential test.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SeqProfile {
    /// Corpus index of the profiled test.
    pub test: u32,
    /// Shared (non-stack) accesses, in execution order.
    pub accesses: Vec<Access>,
    /// Total engine steps the execution took (profiling cost accounting).
    pub steps: u64,
}

/// The §4.1.1 stack filter with every thread's stack range precomputed, so a
/// profile pass resolves `stack_base`/`stack_range_of` once instead of per
/// access.
#[derive(Clone, Copy, Debug)]
pub struct SharedAccessFilter {
    ranges: [(u64, u64); MAX_THREADS],
}

impl SharedAccessFilter {
    /// Builds the filter from the fixed thread-stack layout.
    pub fn new() -> Self {
        let mut ranges = [(0u64, 0u64); MAX_THREADS];
        for (tid, range) in ranges.iter_mut().enumerate() {
            *range = stack_range_of(stack_base(tid) + 16);
        }
        SharedAccessFilter { ranges }
    }

    /// True if `a` falls outside the accessing thread's kernel stack.
    pub fn is_shared(&self, a: &Access) -> bool {
        let (lo, hi) = self.ranges[a.thread];
        !(a.addr >= lo && a.addr < hi)
    }
}

impl Default for SharedAccessFilter {
    fn default() -> Self {
        SharedAccessFilter::new()
    }
}

/// True if `a` falls outside the accessing thread's kernel stack, using the
/// §4.1.1 mask: `[sp & !(STACK_SIZE-1), (sp & !(STACK_SIZE-1)) + STACK_SIZE)`.
pub fn is_shared_access(a: &Access) -> bool {
    SharedAccessFilter::new().is_shared(a)
}

/// Profiles one program from the snapshot. Panicking or non-completing
/// sequential tests yield `None` — they cannot serve as profile sources.
pub fn profile_one(exec: &mut Executor, booted: &BootedKernel, test: u32, prog: &Program) -> Option<SeqProfile> {
    profile_one_filtered(exec, booted, test, prog, &SharedAccessFilter::new())
}

/// [`profile_one`] with a caller-provided (hoisted) stack filter.
pub fn profile_one_filtered(
    exec: &mut Executor,
    booted: &BootedKernel,
    test: u32,
    prog: &Program,
    filter: &SharedAccessFilter,
) -> Option<SeqProfile> {
    profile_one_counted(exec, booted, test, prog, filter).0
}

/// [`profile_one_filtered`], also returning the pre-filter trace length of a
/// completed run so callers can account for stack-filter attrition
/// (`dropped = total - accesses.len()`). Failed runs report a total of 0.
pub fn profile_one_counted(
    exec: &mut Executor,
    booted: &BootedKernel,
    test: u32,
    prog: &Program,
    filter: &SharedAccessFilter,
) -> (Option<SeqProfile>, u64) {
    let r = exec.run(
        booted.snapshot.clone(),
        vec![booted.kernel.process_job(prog.clone())],
        &mut FreeRun,
    );
    if !r.report.outcome.is_completed() {
        return (None, 0);
    }
    let total = r.report.trace.len() as u64;
    let accesses: Vec<Access> = r
        .report
        .trace
        .into_iter()
        .filter(|a| filter.is_shared(a))
        .collect();
    (
        Some(SeqProfile {
            test,
            accesses,
            steps: r.report.steps,
        }),
        total,
    )
}

/// Profiles an explicit job list, fanning out across `workers` executors via
/// the work queue. Unlike [`profile_corpus`] the result keeps failed tests as
/// `(test, None)` — callers that cache profiles need the negative outcome —
/// and is in job order.
pub fn profile_jobs(
    booted: &BootedKernel,
    jobs: Vec<(u32, Program)>,
    workers: usize,
) -> Vec<(u32, Option<SeqProfile>)> {
    profile_jobs_traced(booted, jobs, workers, &Tracer::disabled())
}

/// [`profile_jobs`], emitting profile counters (`profile.ok`,
/// `profile.failed`, `profile.accesses_kept`, `profile.accesses_dropped`)
/// to `tracer` once the batch completes.
pub fn profile_jobs_traced(
    booted: &BootedKernel,
    jobs: Vec<(u32, Program)>,
    workers: usize,
    tracer: &Tracer,
) -> Vec<(u32, Option<SeqProfile>)> {
    let filter = SharedAccessFilter::new();
    let out: Vec<(u32, Option<SeqProfile>, u64)> = sb_queue::run_jobs(
        jobs,
        workers,
        || Executor::new(1),
        |exec, (i, prog)| {
            let (p, total) = profile_one_counted(exec, booted, i, &prog, &filter);
            (i, p, total)
        },
    );
    let (mut ok, mut failed, mut kept) = (0u64, 0u64, 0u64);
    let mut dropped = 0u64;
    for (_, p, total) in &out {
        match p {
            Some(p) => {
                ok += 1;
                kept += p.accesses.len() as u64;
                dropped += total - p.accesses.len() as u64;
            }
            None => failed += 1,
        }
    }
    tracer.count(keys::PROFILES_OK, ok);
    tracer.count(keys::PROFILES_FAILED, failed);
    tracer.count(keys::ACCESSES_KEPT, kept);
    tracer.count(keys::ACCESSES_DROPPED, dropped);
    out.into_iter().map(|(i, p, _)| (i, p)).collect()
}

/// Profiles a whole corpus, fanning out across `workers` executors via the
/// work queue (the paper profiles on one big machine; we parallelize the
/// same way its later stages do).
pub fn profile_corpus(booted: &BootedKernel, corpus: &[Program], workers: usize) -> Vec<SeqProfile> {
    profile_corpus_traced(booted, corpus, workers, &Tracer::disabled())
}

/// [`profile_corpus`] with profile-counter emission (see
/// [`profile_jobs_traced`]).
pub fn profile_corpus_traced(
    booted: &BootedKernel,
    corpus: &[Program],
    workers: usize,
    tracer: &Tracer,
) -> Vec<SeqProfile> {
    let jobs: Vec<(u32, Program)> = corpus
        .iter()
        .enumerate()
        .map(|(i, p)| (i as u32, p.clone()))
        .collect();
    profile_jobs_traced(booted, jobs, workers, tracer)
        .into_iter()
        .filter_map(|(_, p)| p)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sb_kernel::prog::{Domain, Res, Syscall};
    use sb_kernel::{boot, KernelConfig};
    use sb_vmm::access::AccessKind;
    use sb_vmm::site;

    #[test]
    fn stack_accesses_are_filtered() {
        let a = Access {
            seq: 0,
            thread: 0,
            site: site!("pf:stack"),
            kind: AccessKind::Write,
            addr: stack_base(0) + 24,
            len: 8,
            value: 0,
            atomic: false,
            locks: vec![],
            rcu_depth: 0,
        };
        assert!(!is_shared_access(&a));
        let mut b = a.clone();
        b.addr = 0x2_0000;
        assert!(is_shared_access(&b));
    }

    #[test]
    fn profiling_captures_subsystem_accesses() {
        let booted = boot(KernelConfig::v5_12_rc3());
        let mut exec = Executor::new(1);
        let prog = Program::new(vec![
            Syscall::Socket { domain: Domain::L2tp },
            Syscall::Connect { sock: Res(0), tunnel_id: 1 },
        ]);
        let p = profile_one(&mut exec, &booted, 0, &prog).expect("profile");
        assert!(!p.accesses.is_empty());
        // The tunnel-list publication write must be visible.
        let publish = sb_vmm::Site::intern("list_add_rcu:head");
        assert!(p.accesses.iter().any(|a| a.site == publish));
        // And the profile must be reproducible.
        let p2 = profile_one(&mut exec, &booted, 0, &prog).expect("profile");
        let sig = |p: &SeqProfile| {
            p.accesses
                .iter()
                .map(|a| (a.site, a.addr, a.value))
                .collect::<Vec<_>>()
        };
        assert_eq!(sig(&p), sig(&p2), "same snapshot, same accesses");
    }

    #[test]
    fn hoisted_filter_matches_per_access_formula() {
        let filter = SharedAccessFilter::new();
        let mut a = Access {
            seq: 0,
            thread: 0,
            site: site!("pf:probe"),
            kind: AccessKind::Read,
            addr: 0,
            len: 8,
            value: 0,
            atomic: false,
            locks: vec![],
            rcu_depth: 0,
        };
        for tid in 0..MAX_THREADS {
            a.thread = tid;
            for addr in [
                0x1_0000,
                stack_base(tid) - 1,
                stack_base(tid),
                stack_base(tid) + sb_vmm::mem::STACK_SIZE - 1,
                stack_base(tid) + sb_vmm::mem::STACK_SIZE,
            ] {
                a.addr = addr;
                let sp = stack_base(a.thread) + 16;
                let (lo, hi) = stack_range_of(sp);
                let reference = !(a.addr >= lo && a.addr < hi);
                assert_eq!(filter.is_shared(&a), reference, "tid {tid} addr {addr:#x}");
                assert_eq!(is_shared_access(&a), reference);
            }
        }
    }

    #[test]
    fn profile_jobs_keeps_failures_in_job_order() {
        let booted = boot(KernelConfig::v5_12_rc3());
        let jobs = vec![
            (7u32, Program::new(vec![Syscall::Msgget { key: 1 }])),
            (9u32, Program::new(vec![Syscall::Mount])),
        ];
        let out = profile_jobs(&booted, jobs, 2);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].0, 7);
        assert_eq!(out[1].0, 9);
        for (id, p) in &out {
            let p = p.as_ref().expect("both programs complete");
            assert_eq!(p.test, *id);
            assert!(!p.accesses.is_empty());
        }
    }

    #[test]
    fn profile_corpus_keeps_test_ids_aligned() {
        let booted = boot(KernelConfig::v5_12_rc3());
        let corpus = vec![
            Program::new(vec![Syscall::Msgget { key: 1 }]),
            Program::new(vec![Syscall::Mount]),
        ];
        let profiles = profile_corpus(&booted, &corpus, 2);
        assert_eq!(profiles.len(), 2);
        let mut ids: Vec<u32> = profiles.iter().map(|p| p.test).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1]);
        // mount is the heavy one.
        let mount = profiles.iter().find(|p| p.test == 1).expect("mount profile");
        let msg = profiles.iter().find(|p| p.test == 0).expect("msgget profile");
        assert!(mount.accesses.len() > msg.accesses.len());
    }
}
