//! Sequential test profiling (§4.1).
//!
//! Each corpus program runs alone, from the fixed boot snapshot, under the
//! free-run scheduler; its memory accesses are recorded and then pruned to
//! *potentially shared* accesses using the paper's two filters: only the
//! target thread's accesses (the CR3 filter — trivially satisfied here, one
//! thread runs), and only non-stack addresses, computed with the ESP mask
//! formula of §4.1.1.

use sb_kernel::{BootedKernel, Program};
use sb_vmm::access::Access;
use sb_vmm::mem::{stack_base, stack_range_of};
use sb_vmm::sched::FreeRun;
use sb_vmm::Executor;

/// The memory-access profile of one sequential test.
#[derive(Clone, Debug)]
pub struct SeqProfile {
    /// Corpus index of the profiled test.
    pub test: u32,
    /// Shared (non-stack) accesses, in execution order.
    pub accesses: Vec<Access>,
    /// Total engine steps the execution took (profiling cost accounting).
    pub steps: u64,
}

/// True if `a` falls outside the accessing thread's kernel stack, using the
/// §4.1.1 mask: `[sp & !(STACK_SIZE-1), (sp & !(STACK_SIZE-1)) + STACK_SIZE)`.
pub fn is_shared_access(a: &Access) -> bool {
    let sp = stack_base(a.thread) + 16;
    let (lo, hi) = stack_range_of(sp);
    !(a.addr >= lo && a.addr < hi)
}

/// Profiles one program from the snapshot. Panicking or non-completing
/// sequential tests yield `None` — they cannot serve as profile sources.
pub fn profile_one(exec: &mut Executor, booted: &BootedKernel, test: u32, prog: &Program) -> Option<SeqProfile> {
    let r = exec.run(
        booted.snapshot.clone(),
        vec![booted.kernel.process_job(prog.clone())],
        &mut FreeRun,
    );
    if !r.report.outcome.is_completed() {
        return None;
    }
    let accesses = r
        .report
        .trace
        .into_iter()
        .filter(is_shared_access)
        .collect();
    Some(SeqProfile {
        test,
        accesses,
        steps: r.report.steps,
    })
}

/// Profiles a whole corpus, fanning out across `workers` executors via the
/// work queue (the paper profiles on one big machine; we parallelize the
/// same way its later stages do).
pub fn profile_corpus(booted: &BootedKernel, corpus: &[Program], workers: usize) -> Vec<SeqProfile> {
    let jobs: Vec<(u32, Program)> = corpus
        .iter()
        .enumerate()
        .map(|(i, p)| (i as u32, p.clone()))
        .collect();
    sb_queue::run_jobs(
        jobs,
        workers,
        || Executor::new(1),
        |exec, (i, prog)| profile_one(exec, booted, i, &prog),
    )
    .into_iter()
    .flatten()
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sb_kernel::prog::{Domain, Res, Syscall};
    use sb_kernel::{boot, KernelConfig};
    use sb_vmm::access::AccessKind;
    use sb_vmm::site;

    #[test]
    fn stack_accesses_are_filtered() {
        let a = Access {
            seq: 0,
            thread: 0,
            site: site!("pf:stack"),
            kind: AccessKind::Write,
            addr: stack_base(0) + 24,
            len: 8,
            value: 0,
            atomic: false,
            locks: vec![],
            rcu_depth: 0,
        };
        assert!(!is_shared_access(&a));
        let mut b = a.clone();
        b.addr = 0x2_0000;
        assert!(is_shared_access(&b));
    }

    #[test]
    fn profiling_captures_subsystem_accesses() {
        let booted = boot(KernelConfig::v5_12_rc3());
        let mut exec = Executor::new(1);
        let prog = Program::new(vec![
            Syscall::Socket { domain: Domain::L2tp },
            Syscall::Connect { sock: Res(0), tunnel_id: 1 },
        ]);
        let p = profile_one(&mut exec, &booted, 0, &prog).expect("profile");
        assert!(!p.accesses.is_empty());
        // The tunnel-list publication write must be visible.
        let publish = sb_vmm::Site::intern("list_add_rcu:head");
        assert!(p.accesses.iter().any(|a| a.site == publish));
        // And the profile must be reproducible.
        let p2 = profile_one(&mut exec, &booted, 0, &prog).expect("profile");
        let sig = |p: &SeqProfile| {
            p.accesses
                .iter()
                .map(|a| (a.site, a.addr, a.value))
                .collect::<Vec<_>>()
        };
        assert_eq!(sig(&p), sig(&p2), "same snapshot, same accesses");
    }

    #[test]
    fn profile_corpus_keeps_test_ids_aligned() {
        let booted = boot(KernelConfig::v5_12_rc3());
        let corpus = vec![
            Program::new(vec![Syscall::Msgget { key: 1 }]),
            Program::new(vec![Syscall::Mount]),
        ];
        let profiles = profile_corpus(&booted, &corpus, 2);
        assert_eq!(profiles.len(), 2);
        let mut ids: Vec<u32> = profiles.iter().map(|p| p.test).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1]);
        // mount is the heavy one.
        let mount = profiles.iter().find(|p| p.test == 1).expect("mount profile");
        let msg = profiles.iter().find(|p| p.test == 0).expect("msgget profile");
        assert!(mount.accesses.len() > msg.accesses.len());
    }
}
