//! Deterministic fault injection for campaign robustness testing.
//!
//! The fault-tolerance machinery (watchdogs, retries, quarantine,
//! checkpointing) only earns trust if it can be driven through its failure
//! paths on demand. A [`FaultPlan`] names campaign job indices at which the
//! driver manufactures specific failures — worker panics, forced watchdog
//! expiry, transient errors that succeed on retry, and early queue closure.
//! Plans are plain data, always compiled in, and empty by default, so
//! production campaigns pay only a couple of set lookups per job.

use std::collections::{BTreeMap, BTreeSet};

/// Scripted failures for one campaign run, keyed by job index (the position
/// of the PMC in the campaign's test order, before any retries).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Jobs whose worker closure panics on every attempt. Exercises the
    /// catch-unwind boundary and retry exhaustion → quarantine.
    pub panic_jobs: BTreeSet<usize>,
    /// Jobs whose watchdog is forced to expire before the first trial.
    /// Exercises hang classification.
    pub hang_jobs: BTreeSet<usize>,
    /// Jobs that fail with a transient [`crate::error::Error::Injected`]
    /// for the first `n` attempts, then run normally. Exercises
    /// retry-then-success.
    pub transient_failures: BTreeMap<usize, u32>,
    /// Close the work queue before enqueueing this job index; it and all
    /// later jobs are rejected. Exercises queue-closure handling.
    pub close_queue_before: Option<usize>,
}

impl FaultPlan {
    /// True when no faults are scripted (the production fast path).
    pub fn is_empty(&self) -> bool {
        self.panic_jobs.is_empty()
            && self.hang_jobs.is_empty()
            && self.transient_failures.is_empty()
            && self.close_queue_before.is_none()
    }

    /// Should `job`'s worker closure panic on this attempt?
    pub fn should_panic(&self, job: usize) -> bool {
        self.panic_jobs.contains(&job)
    }

    /// Should `job`'s watchdog be forced to expire?
    pub fn should_hang(&self, job: usize) -> bool {
        self.hang_jobs.contains(&job)
    }

    /// Should `job` fail transiently on `attempt` (0-based)?
    pub fn should_fail_transiently(&self, job: usize, attempt: u32) -> bool {
        self.transient_failures
            .get(&job)
            .is_some_and(|&n| attempt < n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_empty_and_inert() {
        let plan = FaultPlan::default();
        assert!(plan.is_empty());
        assert!(!plan.should_panic(0));
        assert!(!plan.should_hang(0));
        assert!(!plan.should_fail_transiently(0, 0));
    }

    #[test]
    fn transient_failures_clear_after_n_attempts() {
        let plan = FaultPlan {
            transient_failures: BTreeMap::from([(3, 2)]),
            ..FaultPlan::default()
        };
        assert!(!plan.is_empty());
        assert!(plan.should_fail_transiently(3, 0));
        assert!(plan.should_fail_transiently(3, 1));
        assert!(!plan.should_fail_transiently(3, 2));
        assert!(!plan.should_fail_transiently(4, 0));
    }

    #[test]
    fn panic_and_hang_sets_are_index_keyed() {
        let plan = FaultPlan {
            panic_jobs: BTreeSet::from([1]),
            hang_jobs: BTreeSet::from([2]),
            ..FaultPlan::default()
        };
        assert!(plan.should_panic(1));
        assert!(!plan.should_panic(2));
        assert!(plan.should_hang(2));
        assert!(!plan.should_hang(1));
    }
}
