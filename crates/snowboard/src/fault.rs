//! Deterministic fault injection for campaign robustness testing.
//!
//! The fault-tolerance machinery (watchdogs, retries, quarantine,
//! checkpointing) only earns trust if it can be driven through its failure
//! paths on demand. A [`FaultPlan`] names campaign job indices at which the
//! driver manufactures specific failures — worker panics, forced watchdog
//! expiry, transient errors that succeed on retry, and early queue closure.
//! Plans are plain data, always compiled in, and empty by default, so
//! production campaigns pay only a couple of set lookups per job.
//!
//! The supervised (multi-process) campaign adds *process-level* faults that
//! fire in the worker entrypoint before the job is attempted: `abort`
//! (SIGABRT, no unwinding — the failure PR 1's catch-unwind cannot catch),
//! `exit` with a chosen code, and `stall` (the worker goes silent without
//! dying, exercising the supervisor's heartbeat timeout). Plans parse from
//! a compact spec string ([`FaultPlan::parse_spec`]) so the CLI
//! (`--fault-plan`) and the `SB_PROCESS_FAULTS` worker environment variable
//! can script supervisor behaviour without real OOM kills.

use std::collections::{BTreeMap, BTreeSet};

/// Scripted failures for one campaign run, keyed by job index (the position
/// of the PMC in the campaign's test order, before any retries).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Jobs whose worker closure panics on every attempt. Exercises the
    /// catch-unwind boundary and retry exhaustion → quarantine.
    pub panic_jobs: BTreeSet<usize>,
    /// Jobs whose watchdog is forced to expire before the first trial.
    /// Exercises hang classification.
    pub hang_jobs: BTreeSet<usize>,
    /// Jobs that fail with a transient [`crate::error::Error::Injected`]
    /// for the first `n` attempts, then run normally. Exercises
    /// retry-then-success.
    pub transient_failures: BTreeMap<usize, u32>,
    /// Close the work queue before enqueueing this job index; it and all
    /// later jobs are rejected. Exercises queue-closure handling.
    pub close_queue_before: Option<usize>,
    /// Jobs on which a worker *process* calls `abort()` before attempting
    /// the job. Only honoured in the supervised worker entrypoint.
    pub abort_jobs: BTreeSet<usize>,
    /// Jobs on which a worker process exits with the given code before
    /// attempting the job. Only honoured in the supervised worker
    /// entrypoint.
    pub exit_jobs: BTreeMap<usize, i32>,
    /// Jobs on which a worker process stops heartbeating and parks forever,
    /// so the supervisor must detect the silence and kill it. Only honoured
    /// in the supervised worker entrypoint.
    pub stall_jobs: BTreeSet<usize>,
}

impl FaultPlan {
    /// True when no faults are scripted (the production fast path).
    pub fn is_empty(&self) -> bool {
        self.panic_jobs.is_empty()
            && self.hang_jobs.is_empty()
            && self.transient_failures.is_empty()
            && self.close_queue_before.is_none()
            && self.abort_jobs.is_empty()
            && self.exit_jobs.is_empty()
            && self.stall_jobs.is_empty()
    }

    /// Should `job`'s worker closure panic on this attempt?
    pub fn should_panic(&self, job: usize) -> bool {
        self.panic_jobs.contains(&job)
    }

    /// Should `job`'s watchdog be forced to expire?
    pub fn should_hang(&self, job: usize) -> bool {
        self.hang_jobs.contains(&job)
    }

    /// Should `job` fail transiently on `attempt` (0-based)?
    pub fn should_fail_transiently(&self, job: usize, attempt: u32) -> bool {
        self.transient_failures
            .get(&job)
            .is_some_and(|&n| attempt < n)
    }

    /// Should the worker process abort before attempting `job`?
    pub fn should_abort(&self, job: usize) -> bool {
        self.abort_jobs.contains(&job)
    }

    /// Exit code the worker process should die with before attempting
    /// `job`, if any.
    pub fn exit_code(&self, job: usize) -> Option<i32> {
        self.exit_jobs.get(&job).copied()
    }

    /// Should the worker process go silent (stop heartbeating and park)
    /// before attempting `job`?
    pub fn should_stall(&self, job: usize) -> bool {
        self.stall_jobs.contains(&job)
    }

    /// Parses a compact fault spec.
    ///
    /// Grammar: semicolon-separated clauses, each `kind=args`:
    ///
    /// * `panic=J[,J...]` — in-process panic at each job index `J`
    /// * `hang=J[,J...]` — forced watchdog expiry
    /// * `transient=J:N[,J:N...]` — fail job `J`'s first `N` attempts
    /// * `close=J` — close the work queue before job `J`
    /// * `abort=J[,J...]` — worker process aborts before job `J`
    /// * `exit=J:C[,J:C...]` — worker process exits with code `C` before `J`
    /// * `stall=J[,J...]` — worker process goes silent before job `J`
    ///
    /// Example: `"abort=2;exit=5:9;transient=1:1"`. An empty string parses
    /// to the empty (inert) plan.
    pub fn parse_spec(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::default();
        for clause in spec.split(';').filter(|c| !c.trim().is_empty()) {
            let (kind, args) = clause
                .split_once('=')
                .ok_or_else(|| format!("fault clause '{clause}' is not kind=args"))?;
            let kind = kind.trim();
            let items = args.split(',').map(str::trim);
            match kind {
                "panic" | "hang" | "abort" | "stall" => {
                    for item in items {
                        let job = parse_job(item, clause)?;
                        match kind {
                            "panic" => plan.panic_jobs.insert(job),
                            "hang" => plan.hang_jobs.insert(job),
                            "abort" => plan.abort_jobs.insert(job),
                            _ => plan.stall_jobs.insert(job),
                        };
                    }
                }
                "transient" | "exit" => {
                    for item in items {
                        let (job, val) = item.split_once(':').ok_or_else(|| {
                            format!("'{item}' in '{clause}' is not job:value")
                        })?;
                        let job = parse_job(job, clause)?;
                        if kind == "transient" {
                            let n: u32 = val.trim().parse().map_err(|_| {
                                format!("bad attempt count '{val}' in '{clause}'")
                            })?;
                            plan.transient_failures.insert(job, n);
                        } else {
                            let code: i32 = val.trim().parse().map_err(|_| {
                                format!("bad exit code '{val}' in '{clause}'")
                            })?;
                            plan.exit_jobs.insert(job, code);
                        }
                    }
                }
                "close" => {
                    plan.close_queue_before = Some(parse_job(args.trim(), clause)?);
                }
                other => return Err(format!("unknown fault kind '{other}'")),
            }
        }
        Ok(plan)
    }

    /// Renders this plan back into [`FaultPlan::parse_spec`] grammar, so the
    /// supervisor can forward a plan to worker processes on their command
    /// line. Round-trips exactly: `parse_spec(&p.to_spec()) == p`.
    pub fn to_spec(&self) -> String {
        fn jobs(set: &BTreeSet<usize>) -> String {
            set.iter()
                .map(usize::to_string)
                .collect::<Vec<_>>()
                .join(",")
        }
        let mut clauses = Vec::new();
        if !self.panic_jobs.is_empty() {
            clauses.push(format!("panic={}", jobs(&self.panic_jobs)));
        }
        if !self.hang_jobs.is_empty() {
            clauses.push(format!("hang={}", jobs(&self.hang_jobs)));
        }
        if !self.transient_failures.is_empty() {
            let items: Vec<String> = self
                .transient_failures
                .iter()
                .map(|(j, n)| format!("{j}:{n}"))
                .collect();
            clauses.push(format!("transient={}", items.join(",")));
        }
        if let Some(j) = self.close_queue_before {
            clauses.push(format!("close={j}"));
        }
        if !self.abort_jobs.is_empty() {
            clauses.push(format!("abort={}", jobs(&self.abort_jobs)));
        }
        if !self.exit_jobs.is_empty() {
            let items: Vec<String> = self
                .exit_jobs
                .iter()
                .map(|(j, c)| format!("{j}:{c}"))
                .collect();
            clauses.push(format!("exit={}", items.join(",")));
        }
        if !self.stall_jobs.is_empty() {
            clauses.push(format!("stall={}", jobs(&self.stall_jobs)));
        }
        clauses.join(";")
    }

    /// Merges `other` into this plan (set union; on a per-job conflict in
    /// `transient`/`exit`/`close`, `other` wins). Lets the worker entrypoint
    /// combine its `--fault-plan` flag with the `SB_PROCESS_FAULTS`
    /// environment variable.
    pub fn merge(&mut self, other: FaultPlan) {
        self.panic_jobs.extend(other.panic_jobs);
        self.hang_jobs.extend(other.hang_jobs);
        self.transient_failures.extend(other.transient_failures);
        if other.close_queue_before.is_some() {
            self.close_queue_before = other.close_queue_before;
        }
        self.abort_jobs.extend(other.abort_jobs);
        self.exit_jobs.extend(other.exit_jobs);
        self.stall_jobs.extend(other.stall_jobs);
    }

    /// The subset of this plan a worker process honours itself (everything
    /// except process-level faults, which the entrypoint fires, and queue
    /// closure, which belongs to the in-process pool).
    pub fn in_process(&self) -> FaultPlan {
        FaultPlan {
            panic_jobs: self.panic_jobs.clone(),
            hang_jobs: self.hang_jobs.clone(),
            transient_failures: self.transient_failures.clone(),
            ..FaultPlan::default()
        }
    }
}

fn parse_job(s: &str, clause: &str) -> Result<usize, String> {
    s.parse()
        .map_err(|_| format!("bad job index '{s}' in fault clause '{clause}'"))
}

/// Scripted *network* failures for fleet workers, keyed by the worker's
/// connection ordinal (0 for the first connection, 1 for the first
/// reconnect, and so on) so a spec deterministically targets "the original
/// connection" or "the connection after the first drop".
///
/// All faults act on the worker's *outbound* side, where one knob can
/// exercise every coordinator failure path: a drop looks like a worker
/// crash, a garbled frame like a protocol violation, a half-close like a
/// silent partition, and a delay like a slow link.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct NetFaultPlan {
    /// Connection → frame count after which the worker hard-closes the
    /// socket (both directions) and reports an I/O error, as a network
    /// partition or peer crash would.
    pub drop_after: BTreeMap<u64, u64>,
    /// Connection → milliseconds to sleep before every outbound frame
    /// (a uniformly slow link).
    pub delay_ms: BTreeMap<u64, u64>,
    /// Connection → the 1-based outbound frame index whose payload is
    /// corrupted in flight, driving the coordinator's schema-validation
    /// eviction path.
    pub garble_frame: BTreeMap<u64, u64>,
    /// Connection → frame count after which the worker shuts down only its
    /// write side and silently swallows later sends: the coordinator sees a
    /// half-closed, silent peer and must evict it on heartbeat timeout.
    pub half_close_after: BTreeMap<u64, u64>,
}

impl NetFaultPlan {
    /// True when no network faults are scripted (the production fast path).
    pub fn is_empty(&self) -> bool {
        self.drop_after.is_empty()
            && self.delay_ms.is_empty()
            && self.garble_frame.is_empty()
            && self.half_close_after.is_empty()
    }

    /// Should connection `conn` be hard-closed instead of sending its
    /// `frame`-th outbound frame (1-based)?
    pub fn drop_now(&self, conn: u64, frame: u64) -> bool {
        self.drop_after.get(&conn).is_some_and(|&n| frame > n)
    }

    /// Per-frame write delay for connection `conn`, if any.
    pub fn delay_for(&self, conn: u64) -> Option<std::time::Duration> {
        self.delay_ms
            .get(&conn)
            .map(|&ms| std::time::Duration::from_millis(ms))
    }

    /// Should the `frame`-th outbound frame (1-based) on `conn` be
    /// corrupted?
    pub fn garble_now(&self, conn: u64, frame: u64) -> bool {
        self.garble_frame.get(&conn) == Some(&frame)
    }

    /// Should `conn`'s write side be shut down after sending its `frame`-th
    /// outbound frame (1-based)?
    pub fn half_close_now(&self, conn: u64, frame: u64) -> bool {
        self.half_close_after.get(&conn) == Some(&frame)
    }

    /// Parses a compact network-fault spec.
    ///
    /// Grammar mirrors [`FaultPlan::parse_spec`]: semicolon-separated
    /// clauses of comma-separated `conn:value` pairs:
    ///
    /// * `drop=C:N[,C:N...]` — hard-close connection `C` after `N` frames
    /// * `delay=C:MS[,...]` — sleep `MS` ms before each frame on `C`
    /// * `garble=C:N[,...]` — corrupt the `N`-th frame sent on `C`
    /// * `halfclose=C:N[,...]` — close `C`'s write side after `N` frames
    ///
    /// Example: `"drop=0:6;delay=1:50"`. An empty string parses to the
    /// empty (inert) plan.
    pub fn parse_spec(spec: &str) -> Result<NetFaultPlan, String> {
        let mut plan = NetFaultPlan::default();
        for clause in spec.split(';').filter(|c| !c.trim().is_empty()) {
            let (kind, args) = clause
                .split_once('=')
                .ok_or_else(|| format!("net fault clause '{clause}' is not kind=args"))?;
            let kind = kind.trim();
            let target = match kind {
                "drop" => &mut plan.drop_after,
                "delay" => &mut plan.delay_ms,
                "garble" => &mut plan.garble_frame,
                "halfclose" => &mut plan.half_close_after,
                other => return Err(format!("unknown net fault kind '{other}'")),
            };
            for item in args.split(',').map(str::trim) {
                let (conn, val) = item
                    .split_once(':')
                    .ok_or_else(|| format!("'{item}' in '{clause}' is not conn:value"))?;
                let conn: u64 = conn.trim().parse().map_err(|_| {
                    format!("bad connection ordinal '{conn}' in '{clause}'")
                })?;
                let val: u64 = val
                    .trim()
                    .parse()
                    .map_err(|_| format!("bad value '{val}' in '{clause}'"))?;
                target.insert(conn, val);
            }
        }
        Ok(plan)
    }

    /// Renders this plan back into [`NetFaultPlan::parse_spec`] grammar.
    /// Round-trips exactly: `parse_spec(&p.to_spec()) == p`.
    pub fn to_spec(&self) -> String {
        fn items(map: &BTreeMap<u64, u64>) -> String {
            map.iter()
                .map(|(c, v)| format!("{c}:{v}"))
                .collect::<Vec<_>>()
                .join(",")
        }
        let mut clauses = Vec::new();
        for (kind, map) in [
            ("drop", &self.drop_after),
            ("delay", &self.delay_ms),
            ("garble", &self.garble_frame),
            ("halfclose", &self.half_close_after),
        ] {
            if !map.is_empty() {
                clauses.push(format!("{kind}={}", items(map)));
            }
        }
        clauses.join(";")
    }

    /// Merges `other` into this plan (per-connection conflict: `other`
    /// wins), so the `--net-faults` flag and `SB_NET_FAULTS` environment
    /// variable compose like their process-fault counterparts.
    pub fn merge(&mut self, other: NetFaultPlan) {
        self.drop_after.extend(other.drop_after);
        self.delay_ms.extend(other.delay_ms);
        self.garble_frame.extend(other.garble_frame);
        self.half_close_after.extend(other.half_close_after);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_empty_and_inert() {
        let plan = FaultPlan::default();
        assert!(plan.is_empty());
        assert!(!plan.should_panic(0));
        assert!(!plan.should_hang(0));
        assert!(!plan.should_fail_transiently(0, 0));
    }

    #[test]
    fn transient_failures_clear_after_n_attempts() {
        let plan = FaultPlan {
            transient_failures: BTreeMap::from([(3, 2)]),
            ..FaultPlan::default()
        };
        assert!(!plan.is_empty());
        assert!(plan.should_fail_transiently(3, 0));
        assert!(plan.should_fail_transiently(3, 1));
        assert!(!plan.should_fail_transiently(3, 2));
        assert!(!plan.should_fail_transiently(4, 0));
    }

    #[test]
    fn spec_round_trips_every_kind() {
        let plan =
            FaultPlan::parse_spec("panic=1,2;hang=3;transient=4:2;close=5;abort=6;exit=7:9;stall=8")
                .unwrap();
        assert_eq!(plan.panic_jobs, BTreeSet::from([1, 2]));
        assert_eq!(plan.hang_jobs, BTreeSet::from([3]));
        assert_eq!(plan.transient_failures, BTreeMap::from([(4, 2)]));
        assert_eq!(plan.close_queue_before, Some(5));
        assert!(plan.should_abort(6));
        assert!(!plan.should_abort(5));
        assert_eq!(plan.exit_code(7), Some(9));
        assert_eq!(plan.exit_code(6), None);
        assert!(plan.should_stall(8));
        assert!(FaultPlan::parse_spec("").unwrap().is_empty());
        assert!(FaultPlan::parse_spec("  ; ;").unwrap().is_empty());
    }

    #[test]
    fn to_spec_round_trips_and_merge_unions() {
        let spec = "panic=1,2;hang=3;transient=4:2;close=5;abort=6;exit=7:9;stall=8";
        let plan = FaultPlan::parse_spec(spec).unwrap();
        assert_eq!(FaultPlan::parse_spec(&plan.to_spec()).unwrap(), plan);
        assert_eq!(FaultPlan::default().to_spec(), "");

        let mut merged = FaultPlan::parse_spec("abort=1;exit=2:9").unwrap();
        merged.merge(FaultPlan::parse_spec("abort=3;exit=2:7;stall=4").unwrap());
        assert!(merged.should_abort(1) && merged.should_abort(3));
        assert_eq!(merged.exit_code(2), Some(7), "the merged-in plan wins");
        assert!(merged.should_stall(4));
    }

    #[test]
    fn spec_rejects_malformed_clauses() {
        assert!(FaultPlan::parse_spec("abort").is_err(), "missing =");
        assert!(FaultPlan::parse_spec("frob=1").is_err(), "unknown kind");
        assert!(FaultPlan::parse_spec("abort=x").is_err(), "bad index");
        assert!(FaultPlan::parse_spec("exit=3").is_err(), "missing code");
        assert!(FaultPlan::parse_spec("exit=3:x").is_err(), "bad code");
        assert!(FaultPlan::parse_spec("transient=3").is_err(), "missing count");
    }

    #[test]
    fn in_process_strips_process_level_faults() {
        let plan = FaultPlan::parse_spec("panic=1;transient=2:1;abort=3;exit=4:9;stall=5;close=6")
            .unwrap();
        let inner = plan.in_process();
        assert!(inner.should_panic(1));
        assert!(inner.should_fail_transiently(2, 0));
        assert!(!inner.should_abort(3));
        assert_eq!(inner.exit_code(4), None);
        assert!(!inner.should_stall(5));
        assert_eq!(inner.close_queue_before, None);
    }

    #[test]
    fn net_fault_spec_round_trips_and_queries() {
        let plan = NetFaultPlan::parse_spec("drop=0:6;delay=1:50;garble=2:3;halfclose=3:4")
            .unwrap();
        assert!(!plan.is_empty());
        assert!(!plan.drop_now(0, 6), "the sixth frame still goes out");
        assert!(plan.drop_now(0, 7), "the seventh does not");
        assert!(!plan.drop_now(1, 7), "other connections are untouched");
        assert_eq!(plan.delay_for(1), Some(std::time::Duration::from_millis(50)));
        assert_eq!(plan.delay_for(0), None);
        assert!(plan.garble_now(2, 3) && !plan.garble_now(2, 4));
        assert!(plan.half_close_now(3, 4) && !plan.half_close_now(3, 5));
        assert_eq!(NetFaultPlan::parse_spec(&plan.to_spec()).unwrap(), plan);
        assert!(NetFaultPlan::parse_spec("").unwrap().is_empty());
        assert_eq!(NetFaultPlan::default().to_spec(), "");

        let mut merged = NetFaultPlan::parse_spec("drop=0:6").unwrap();
        merged.merge(NetFaultPlan::parse_spec("drop=0:2;delay=1:5").unwrap());
        assert!(merged.drop_now(0, 3), "the merged-in plan wins");
        assert!(merged.delay_for(1).is_some());
    }

    #[test]
    fn net_fault_spec_rejects_malformed_clauses() {
        assert!(NetFaultPlan::parse_spec("drop").is_err(), "missing =");
        assert!(NetFaultPlan::parse_spec("frob=1:2").is_err(), "unknown kind");
        assert!(NetFaultPlan::parse_spec("drop=1").is_err(), "missing value");
        assert!(NetFaultPlan::parse_spec("drop=x:1").is_err(), "bad conn");
        assert!(NetFaultPlan::parse_spec("drop=1:x").is_err(), "bad value");
    }

    #[test]
    fn panic_and_hang_sets_are_index_keyed() {
        let plan = FaultPlan {
            panic_jobs: BTreeSet::from([1]),
            hang_jobs: BTreeSet::from([2]),
            ..FaultPlan::default()
        };
        assert!(plan.should_panic(1));
        assert!(!plan.should_panic(2));
        assert!(plan.should_hang(2));
        assert!(!plan.should_hang(1));
    }
}
