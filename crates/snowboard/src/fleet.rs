//! Fault-tolerant distributed campaign fabric: `hunt serve` / `hunt join`.
//!
//! [`supervise`](crate::supervise) runs one campaign across child
//! *processes* on one machine; this module runs it across *TCP peers*. A
//! coordinator ([`run_coordinator`]) owns the job universe and merged
//! checkpoint; any number of workers ([`run_join`]) connect, lease batches
//! of jobs, and stream results back over the framed protocol in
//! [`crate::protocol`]. The design goal is the same bit-for-bit guarantee
//! the supervisor gives: because every job derives its seeds from
//! `(campaign seed, job index)` alone, a merged fleet report is identical
//! to a single-process run **no matter how jobs land on workers** — even
//! under worker kills, partitions, and injected network faults.
//!
//! The failure model (see DESIGN.md §13):
//!
//! * **Handshake** — a joiner announces its protocol version and a
//!   fingerprint of every campaign-shaping parameter
//!   ([`config_fingerprint`]); mismatches are rejected outright, because
//!   merging results computed under different parameters would silently
//!   corrupt the report.
//! * **Leases, not shards** — jobs are handed out in small leased batches
//!   with a deadline. A worker that vanishes (crash, partition, kill -9)
//!   simply stops renewing its claim: expired or evicted leases return
//!   their unfinished jobs to the pending pool for reassignment.
//! * **Exactly-once merge** — reassignment means a slow-but-alive worker
//!   can deliver a result for a job someone else also ran. The merge rule
//!   is *first verdict wins* ([`Checkpoint::merge_outcome`]); duplicates
//!   are dropped and counted in [`FleetStats::duplicate_results`]. Since
//!   both deliveries computed the same deterministic outcome, which one
//!   wins is unobservable in the report.
//! * **Eviction** — a connection that dies unexpectedly, speaks garbage,
//!   or goes silent past the heartbeat timeout is evicted; its leased jobs
//!   are charged one crash each (quarantined as [`FailureKind::Crash`]
//!   past [`FleetCfg::crash_budget`]) and otherwise reassigned.
//! * **Circuit breaker** — consecutive zero-completion deaths with no
//!   surviving worker abandon the remaining jobs as
//!   [`FailureKind::GaveUp`] (reported, never checkpointed) instead of
//!   waiting forever for a fleet that keeps dying on arrival.
//! * **Graceful drain** — the stop file (or campaign completion) flushes
//!   the checkpoint, answers every request with `drain`, and gives
//!   stragglers one heartbeat timeout to say goodbye.
//!
//! Workers reconnect through deterministic exponential backoff and resume
//! leasing; a worker that cannot reach the coordinator at all gives up
//! after a bounded number of attempts with a typed error. Network fault
//! injection ([`NetFaultPlan`]) lets tests (and CI) drop, delay, garble,
//! or half-close specific connections deterministically.

use std::collections::{BTreeMap, BTreeSet};
use std::io::BufReader;
use std::net::{Shutdown, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

use sb_kernel::{BootedKernel, Program};
use sb_vmm::Executor;

use crate::campaign::{
    aggregate, load_or_begin_checkpoint, run_one_job, trace_job_verdict, CampaignCfg,
    CampaignReport, IncidentalIndex, JobVerdict, QuarantineRecord,
};
use crate::checkpoint::Checkpoint;
use crate::error::{Error, FailureKind, SbResult};
use crate::fault::NetFaultPlan;
use crate::metrics::FleetStats;
use crate::pmc::{PmcId, PmcSet};
use crate::protocol::{
    read_frame, write_frame, JoinMsg, ProtocolError, ServeMsg, FLEET_PROTO_VERSION,
};
use crate::retry::reseed;

/// Fingerprint of the campaign-shaping parameters, exchanged in the fleet
/// handshake. FNV-1a over `key=value;` pairs: not cryptographic, just a
/// cheap stable way for both ends to notice they were launched with
/// different flags before any results are merged.
pub fn config_fingerprint(parts: &[(&str, String)]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for b in bytes {
            hash ^= u64::from(*b);
            hash = hash.wrapping_mul(0x100_0000_01b3);
        }
    };
    for (key, value) in parts {
        eat(key.as_bytes());
        eat(b"=");
        eat(value.as_bytes());
        eat(b";");
    }
    hash
}

/// Coordinator tuning. Defaults suit production; tests shrink every timing
/// knob to milliseconds.
#[derive(Clone, Debug)]
pub struct FleetCfg {
    /// Evict a connection heard from not at all for this long.
    pub heartbeat_timeout: Duration,
    /// Reclaim a lease's unfinished jobs this long after granting it.
    pub lease_deadline: Duration,
    /// Most jobs granted per lease.
    pub batch: usize,
    /// Coordinator tick: stop-file polls, lease/heartbeat sweeps.
    pub poll: Duration,
    /// Evictions charged to one job before it is quarantined as
    /// [`FailureKind::Crash`].
    pub crash_budget: u32,
    /// Consecutive zero-completion evictions (with no surviving worker)
    /// before the remaining jobs are abandoned as [`FailureKind::GaveUp`].
    pub max_instant_deaths: u32,
    /// Graceful-shutdown trigger: drain when this file exists.
    pub stop_file: Option<PathBuf>,
    /// The coordinator's merged checkpoint, saved as results arrive so a
    /// killed coordinator resumes mid-fleet.
    pub checkpoint: PathBuf,
    /// Expected [`config_fingerprint`] of joining workers.
    pub config_hash: u64,
}

impl Default for FleetCfg {
    fn default() -> Self {
        FleetCfg {
            heartbeat_timeout: Duration::from_secs(10),
            lease_deadline: Duration::from_secs(30),
            batch: 4,
            poll: Duration::from_millis(25),
            crash_budget: 2,
            max_instant_deaths: 3,
            stop_file: None,
            checkpoint: std::env::temp_dir().join("sb-fleet.json"),
            config_hash: 0,
        }
    }
}

/// What a connection's reader thread forwards to the coordinator loop.
enum Note {
    /// A new connection; carries the write half.
    Conn(TcpStream),
    Msg(JoinMsg),
    /// The peer broke the protocol (and the reader stopped).
    Bad(ProtocolError),
    /// The connection's read side closed.
    Eof,
}

/// One live connection as the coordinator sees it.
struct Conn {
    stream: TcpStream,
    /// Assigned worker id after a successful handshake.
    worker: Option<u64>,
    last_msg: Instant,
    /// Results (fresh or duplicate) delivered over this connection.
    completed: u64,
    /// The peer said [`JoinMsg::Leaving`]; its EOF is clean.
    leaving: bool,
    /// We told the peer to drain; its EOF is clean.
    drained: bool,
}

/// One outstanding lease.
struct Lease {
    conn: u64,
    jobs: Vec<usize>,
    deadline: Instant,
}

/// Mutable coordinator state threaded through the loop helpers.
struct Coordinator<'a> {
    cfg: &'a CampaignCfg,
    fcfg: &'a FleetCfg,
    budgeted: &'a [PmcId],
    cp: &'a mut Checkpoint,
    /// Reported-but-not-checkpointed quarantines ([`FailureKind::GaveUp`],
    /// [`FailureKind::Rejected`]).
    extra: BTreeMap<usize, QuarantineRecord>,
    stats: FleetStats,
    /// Jobs not covered and not currently leased.
    pending: BTreeSet<usize>,
    leases: BTreeMap<u64, Lease>,
    conns: BTreeMap<u64, Conn>,
    crash_counts: BTreeMap<usize, u32>,
    next_worker: u64,
    next_lease: u64,
    ever_joined: bool,
    instant_deaths: u32,
    results_seen: usize,
    stopping: bool,
    drain_deadline: Instant,
}

impl Coordinator<'_> {
    fn tracer(&self) -> &sb_obs::Tracer {
        &self.cfg.tracer
    }

    fn fleet_event(&self, worker: u64, action: &str, detail: String) {
        let tracer = self.tracer();
        tracer.emit(&sb_obs::Event::Fleet {
            t: tracer.now_us(),
            worker,
            action: action.into(),
            detail,
        });
    }

    fn send(&mut self, conn_id: u64, msg: &ServeMsg) -> bool {
        let Some(conn) = self.conns.get_mut(&conn_id) else {
            return false;
        };
        if write_frame(&mut conn.stream, &msg.render()).is_err() {
            // The peer is gone; its EOF note (or this eviction) cleans up.
            self.evict(conn_id, "send failed (peer gone)");
            return false;
        }
        true
    }

    /// Removes a connection and releases its leases. `detail` describes an
    /// *unclean* death; clean closes (after `leaving`/`drained`) release
    /// without charging or counting an eviction.
    fn drop_conn(&mut self, conn_id: u64, unclean: Option<&str>) {
        let Some(conn) = self.conns.remove(&conn_id) else {
            return;
        };
        let _ = conn.stream.shutdown(Shutdown::Both);
        let worker = conn.worker.unwrap_or(u64::MAX);
        if let Some(detail) = unclean {
            self.stats.evictions += 1;
            self.tracer().count(sb_obs::keys::FLEET_EVICTIONS, 1);
            self.fleet_event(worker, "evict", detail.to_owned());
            if conn.worker.is_some() {
                if conn.completed == 0 {
                    self.instant_deaths += 1;
                } else {
                    self.instant_deaths = 0;
                }
            }
        }
        // Release every lease the connection still held.
        let held: Vec<u64> = self
            .leases
            .iter()
            .filter(|(_, l)| l.conn == conn_id)
            .map(|(id, _)| *id)
            .collect();
        for lease_id in held {
            let lease = self.leases.remove(&lease_id).expect("held lease");
            for job in lease.jobs {
                if self.cp.covers(job) || self.extra.contains_key(&job) {
                    continue;
                }
                if unclean.is_some() && !self.stopping {
                    let count = self.crash_counts.entry(job).or_insert(0);
                    *count += 1;
                    if *count >= self.fcfg.crash_budget {
                        let record = QuarantineRecord {
                            job,
                            pmc: self.budgeted.get(job).copied(),
                            attempts: *count,
                            kind: FailureKind::Crash,
                            chain: vec![
                                format!(
                                    "worker connection died while job {job} was leased: {}",
                                    unclean.unwrap_or("gone")
                                ),
                                format!(
                                    "crash budget ({}) exhausted",
                                    self.fcfg.crash_budget
                                ),
                            ],
                        };
                        trace_job_verdict(
                            self.tracer(),
                            job,
                            &JobVerdict::Quarantined(record.clone()),
                        );
                        self.cp.quarantined.insert(job, record);
                        let _ = self.cp.save(&self.fcfg.checkpoint);
                        continue;
                    }
                }
                self.reassign(job, worker);
            }
        }
    }

    fn evict(&mut self, conn_id: u64, detail: &str) {
        self.drop_conn(conn_id, Some(detail));
    }

    /// Returns a job to the pending pool. During a drain the job is simply
    /// released (nobody will run it); otherwise it is a counted, traced
    /// reassignment.
    fn reassign(&mut self, job: usize, from_worker: u64) {
        self.pending.insert(job);
        if !self.stopping {
            self.stats.jobs_reassigned += 1;
            self.tracer().count(sb_obs::keys::FLEET_REASSIGNED, 1);
            self.fleet_event(
                from_worker,
                "reassign",
                format!("job {job} returned to the pending pool"),
            );
        }
    }

    /// Begins the drain: flush the checkpoint, tell every connection, and
    /// start the goodbye clock.
    fn start_drain(&mut self, reason: &str) -> SbResult<()> {
        if self.stopping {
            return Ok(());
        }
        self.stopping = true;
        self.drain_deadline = Instant::now() + self.fcfg.heartbeat_timeout;
        self.cp.save(&self.fcfg.checkpoint)?;
        self.fleet_event(u64::MAX, "drain", reason.to_owned());
        let ids: Vec<u64> = self.conns.keys().copied().collect();
        for id in ids {
            if let Some(c) = self.conns.get_mut(&id) {
                c.drained = true;
            }
            self.send(id, &ServeMsg::Drain { reason: reason.to_owned() });
        }
        Ok(())
    }

    fn handle_join(&mut self, conn_id: u64, proto: u64, config: u64) {
        let reject = |this: &mut Self, reason: String| {
            this.stats.workers_rejected += 1;
            this.tracer().count(sb_obs::keys::FLEET_REJECTS, 1);
            this.fleet_event(u64::MAX, "reject", reason.clone());
            this.send(conn_id, &ServeMsg::Reject { reason });
            this.drop_conn(conn_id, None);
        };
        let already_joined = self
            .conns
            .get(&conn_id)
            .is_some_and(|c| c.worker.is_some());
        if already_joined {
            self.evict(conn_id, "protocol violation: second join on one connection");
            return;
        }
        if proto != FLEET_PROTO_VERSION {
            reject(
                self,
                format!(
                    "protocol version {proto} not supported (coordinator speaks {FLEET_PROTO_VERSION})"
                ),
            );
            return;
        }
        if config != self.fcfg.config_hash {
            reject(
                self,
                format!(
                    "config fingerprint mismatch (worker {config:016x}, coordinator {:016x}) — \
                     launch the worker with the same campaign flags",
                    self.fcfg.config_hash
                ),
            );
            return;
        }
        if self.stopping {
            reject(self, "coordinator is draining".to_owned());
            return;
        }
        let worker = self.next_worker;
        self.next_worker += 1;
        if let Some(c) = self.conns.get_mut(&conn_id) {
            c.worker = Some(worker);
        }
        self.ever_joined = true;
        self.stats.workers_joined += 1;
        self.tracer().count(sb_obs::keys::FLEET_JOINS, 1);
        self.fleet_event(worker, "join", format!("connection {conn_id} registered"));
        self.send(
            conn_id,
            &ServeMsg::Welcome { worker, jobs: self.budgeted.len() },
        );
    }

    fn handle_request(&mut self, conn_id: u64, max: usize) {
        let Some(conn) = self.conns.get(&conn_id) else {
            return;
        };
        let Some(worker) = conn.worker else {
            self.evict(conn_id, "protocol violation: request before join");
            return;
        };
        if self.stopping {
            if let Some(c) = self.conns.get_mut(&conn_id) {
                c.drained = true;
            }
            self.send(
                conn_id,
                &ServeMsg::Drain { reason: "coordinator is draining".into() },
            );
            return;
        }
        let want = self.fcfg.batch.min(max.max(1));
        let jobs: Vec<usize> = self.pending.iter().copied().take(want).collect();
        if jobs.is_empty() {
            // Nothing to hand out right now (everything is leased or
            // covered); the worker naps for the advertised interval and
            // asks again.
            self.send(
                conn_id,
                &ServeMsg::Lease {
                    lease: 0,
                    jobs: vec![],
                    deadline_ms: self.fcfg.poll.as_millis() as u64,
                },
            );
            return;
        }
        for job in &jobs {
            self.pending.remove(job);
        }
        let lease = self.next_lease;
        self.next_lease += 1;
        self.leases.insert(
            lease,
            Lease {
                conn: conn_id,
                jobs: jobs.clone(),
                deadline: Instant::now() + self.fcfg.lease_deadline,
            },
        );
        self.stats.leases_granted += 1;
        self.tracer().count(sb_obs::keys::FLEET_LEASES, 1);
        self.fleet_event(worker, "lease", format!("lease {lease}: jobs {jobs:?}"));
        self.send(
            conn_id,
            &ServeMsg::Lease {
                lease,
                jobs,
                deadline_ms: self.fcfg.lease_deadline.as_millis() as u64,
            },
        );
    }

    /// Merges one delivered verdict with the first-wins rule; duplicates
    /// (late deliveries for jobs someone else already finished) are
    /// dropped and counted.
    fn merge_verdict(&mut self, worker: u64, job: usize, verdict: JobVerdict) {
        if self.cp.covers(job) {
            self.stats.duplicate_results += 1;
            self.tracer().count(sb_obs::keys::FLEET_DUPLICATES, 1);
            self.fleet_event(
                worker,
                "duplicate",
                format!("late result for already-covered job {job} dropped"),
            );
            return;
        }
        match verdict {
            JobVerdict::Completed(outcome) => {
                trace_job_verdict(
                    self.tracer(),
                    job,
                    &JobVerdict::Completed(outcome.clone()),
                );
                let merged = self.cp.merge_outcome(job, outcome);
                debug_assert!(merged, "covers() said the job was fresh");
                self.extra.remove(&job);
            }
            JobVerdict::Quarantined(record) => {
                trace_job_verdict(
                    self.tracer(),
                    job,
                    &JobVerdict::Quarantined(record.clone()),
                );
                if record.kind == FailureKind::Rejected {
                    // Mirror the supervisor: rejected jobs are reported but
                    // never checkpointed, so a resumed campaign retries them.
                    self.extra.entry(job).or_insert(record);
                } else {
                    self.cp.merge_quarantine(record);
                }
            }
        }
        self.pending.remove(&job);
        // The job may sit in the deliverer's lease or (after reassignment)
        // someone else's; clear it everywhere and drop emptied leases.
        self.leases.retain(|_, lease| {
            lease.jobs.retain(|j| *j != job);
            !lease.jobs.is_empty()
        });
        self.results_seen += 1;
        let every = self.cfg.checkpoint.as_ref().map_or(1, |c| c.every.max(1));
        if self.results_seen.is_multiple_of(every) {
            let _ = self.cp.save(&self.fcfg.checkpoint);
        }
    }

    /// Reclaims unfinished jobs from expired leases. The holder is *not*
    /// evicted — it may be partitioned-but-alive and deliver late (the
    /// duplicate path absorbs that); it just no longer owns the jobs.
    fn sweep_leases(&mut self, now: Instant) {
        let expired: Vec<u64> = self
            .leases
            .iter()
            .filter(|(_, l)| now >= l.deadline)
            .map(|(id, _)| *id)
            .collect();
        for lease_id in expired {
            let lease = self.leases.remove(&lease_id).expect("expired lease");
            let worker = self
                .conns
                .get(&lease.conn)
                .and_then(|c| c.worker)
                .unwrap_or(u64::MAX);
            for job in lease.jobs {
                if !self.cp.covers(job) && !self.extra.contains_key(&job) {
                    self.reassign(job, worker);
                }
            }
        }
    }

    /// Evicts connections that have been silent past the heartbeat
    /// timeout.
    fn sweep_heartbeats(&mut self, now: Instant) {
        let silent: Vec<(u64, Duration)> = self
            .conns
            .iter()
            .map(|(id, c)| (*id, now.duration_since(c.last_msg)))
            .filter(|(_, silence)| *silence > self.fcfg.heartbeat_timeout)
            .collect();
        for (conn_id, silence) in silent {
            self.stats.heartbeat_misses += 1;
            self.evict(
                conn_id,
                &format!("silent for {:.1}s (heartbeat timeout)", silence.as_secs_f64()),
            );
        }
    }

    /// The crash-loop circuit breaker: if every joiner keeps dying without
    /// completing anything and nobody is left, stop waiting and abandon
    /// the remaining jobs as [`FailureKind::GaveUp`].
    fn maybe_give_up(&mut self) {
        if self.stopping
            || !self.ever_joined
            || self.instant_deaths < self.fcfg.max_instant_deaths
            || self.pending.is_empty()
            || self.conns.values().any(|c| c.worker.is_some())
        {
            return;
        }
        let jobs: Vec<usize> = self.pending.iter().copied().collect();
        self.fleet_event(
            u64::MAX,
            "give-up",
            format!(
                "{} consecutive instant deaths with no surviving worker; abandoning {} job(s)",
                self.instant_deaths,
                jobs.len()
            ),
        );
        self.stats.gave_up_jobs += jobs.len() as u64;
        for job in jobs {
            self.pending.remove(&job);
            let record = QuarantineRecord {
                job,
                pmc: self.budgeted.get(job).copied(),
                attempts: self.crash_counts.get(&job).copied().unwrap_or(0),
                kind: FailureKind::GaveUp,
                chain: vec![format!(
                    "fleet abandoned after {} consecutive instant worker deaths",
                    self.instant_deaths
                )],
            };
            trace_job_verdict(self.tracer(), job, &JobVerdict::Quarantined(record.clone()));
            self.extra.insert(job, record);
        }
    }
}

/// Runs a fleet campaign: binds no sockets itself — the caller passes the
/// bound listener (so it can print the actual address first) — then
/// accepts joiners, leases jobs, merges results, and returns the merged
/// report once every job is covered (or abandoned) and the fleet has
/// drained.
///
/// Like [`crate::supervise::run_supervised`], per-job failures land in
/// [`CampaignReport::quarantined`]; `Err` means a campaign-level problem
/// (unusable resume checkpoint, checkpoint write failure).
pub fn run_coordinator(
    listener: TcpListener,
    exemplars: &[PmcId],
    cfg: &CampaignCfg,
    fcfg: &FleetCfg,
) -> SbResult<CampaignReport> {
    let budgeted: Vec<PmcId> = exemplars
        .iter()
        .copied()
        .take(cfg.max_tested_pmcs)
        .collect();
    let mut cp = load_or_begin_checkpoint(cfg, &budgeted)?;
    let _span = cfg.tracer.span("campaign");

    let shutdown = Arc::new(AtomicBool::new(false));
    let (tx, rx) = mpsc::channel::<(u64, Note)>();
    spawn_acceptor(listener, tx, shutdown.clone(), fcfg.poll);

    let pending: BTreeSet<usize> =
        (0..budgeted.len()).filter(|job| !cp.covers(*job)).collect();
    let mut state = Coordinator {
        cfg,
        fcfg,
        budgeted: &budgeted,
        cp: &mut cp,
        extra: BTreeMap::new(),
        stats: FleetStats::default(),
        pending,
        leases: BTreeMap::new(),
        conns: BTreeMap::new(),
        crash_counts: BTreeMap::new(),
        next_worker: 0,
        next_lease: 1,
        ever_joined: false,
        instant_deaths: 0,
        results_seen: 0,
        stopping: false,
        drain_deadline: Instant::now(),
    };

    // Flush guard: a coordinator bug must not cost the fleet's completed
    // work — persist the checkpoint before the panic propagates.
    let looped = catch_unwind(AssertUnwindSafe(|| coordinator_loop(&mut state, &rx)));
    shutdown.store(true, Ordering::Relaxed);
    let (stats, extra) = match looped {
        Ok(r) => {
            r?;
            (state.stats, state.extra)
        }
        Err(payload) => {
            let _ = cp.save(&fcfg.checkpoint);
            std::panic::resume_unwind(payload);
        }
    };
    cp.save(&fcfg.checkpoint)?;

    let mut quarantined = cp.quarantined.clone();
    for (job, q) in extra {
        quarantined.entry(job).or_insert(q);
    }
    let outcomes = cp.outcomes.values().cloned().collect();
    let mut report = aggregate(outcomes);
    report.quarantined = quarantined.into_values().collect();
    report.fleet = Some(stats);
    Ok(report)
}

/// Accepts connections until `shutdown`, assigning connection ids and
/// spawning one reader thread per connection.
fn spawn_acceptor(
    listener: TcpListener,
    tx: mpsc::Sender<(u64, Note)>,
    shutdown: Arc<AtomicBool>,
    poll: Duration,
) {
    std::thread::spawn(move || {
        let _ = listener.set_nonblocking(true);
        let mut next_conn: u64 = 0;
        while !shutdown.load(Ordering::Relaxed) {
            match listener.accept() {
                Ok((stream, _addr)) => {
                    let conn_id = next_conn;
                    next_conn += 1;
                    let _ = stream.set_nodelay(true);
                    let Ok(read_half) = stream.try_clone() else {
                        continue;
                    };
                    if tx.send((conn_id, Note::Conn(stream))).is_err() {
                        return;
                    }
                    let tx = tx.clone();
                    std::thread::spawn(move || {
                        let mut reader = BufReader::new(read_half);
                        loop {
                            match read_frame(&mut reader) {
                                Ok(Some(payload)) => match JoinMsg::parse_line(&payload) {
                                    Ok(msg) => {
                                        if tx.send((conn_id, Note::Msg(msg))).is_err() {
                                            return;
                                        }
                                    }
                                    Err(e) => {
                                        let _ = tx.send((conn_id, Note::Bad(e)));
                                        return;
                                    }
                                },
                                Ok(None) => break,
                                Err(e) => {
                                    let _ = tx.send((conn_id, Note::Bad(e)));
                                    return;
                                }
                            }
                        }
                        let _ = tx.send((conn_id, Note::Eof));
                    });
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(poll);
                }
                Err(_) => std::thread::sleep(poll),
            }
        }
    });
}

fn coordinator_loop(
    state: &mut Coordinator<'_>,
    rx: &mpsc::Receiver<(u64, Note)>,
) -> SbResult<()> {
    loop {
        let now = Instant::now();

        if !state.stopping && state.fcfg.stop_file.as_deref().is_some_and(Path::exists) {
            state.stats.stopped = true;
            state.start_drain("stop file")?;
        }
        state.sweep_leases(now);
        state.sweep_heartbeats(now);
        state.maybe_give_up();

        if !state.stopping && state.pending.is_empty() && state.leases.is_empty() {
            state.start_drain("campaign complete")?;
        }
        if state.stopping && (state.conns.is_empty() || now >= state.drain_deadline) {
            // Stragglers past the deadline are cut off; no charges — the
            // campaign is over either way.
            let ids: Vec<u64> = state.conns.keys().copied().collect();
            for id in ids {
                if let Some(c) = state.conns.get_mut(&id) {
                    c.drained = true;
                }
                state.drop_conn(id, None);
            }
            return Ok(());
        }

        let (conn_id, note) = match rx.recv_timeout(state.fcfg.poll) {
            Ok(item) => item,
            Err(mpsc::RecvTimeoutError::Timeout) => continue,
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                return Err(Error::Fleet { detail: "acceptor thread died".into() });
            }
        };
        match note {
            Note::Conn(stream) => {
                state.conns.insert(
                    conn_id,
                    Conn {
                        stream,
                        worker: None,
                        last_msg: Instant::now(),
                        completed: 0,
                        leaving: false,
                        drained: false,
                    },
                );
            }
            Note::Msg(msg) => {
                if let Some(c) = state.conns.get_mut(&conn_id) {
                    c.last_msg = Instant::now();
                } else {
                    continue; // already evicted; late frames are moot
                }
                match msg {
                    JoinMsg::Join { proto, config } => {
                        state.handle_join(conn_id, proto, config);
                    }
                    JoinMsg::Heartbeat => {}
                    JoinMsg::Request { max } => state.handle_request(conn_id, max),
                    JoinMsg::Done { job, outcome } => {
                        let Some(worker) =
                            state.conns.get(&conn_id).and_then(|c| c.worker)
                        else {
                            state.evict(conn_id, "protocol violation: result before join");
                            continue;
                        };
                        if let Some(c) = state.conns.get_mut(&conn_id) {
                            c.completed += 1;
                        }
                        state.merge_verdict(worker, job, JobVerdict::Completed(outcome));
                    }
                    JoinMsg::Quarantine { record } => {
                        let Some(worker) =
                            state.conns.get(&conn_id).and_then(|c| c.worker)
                        else {
                            state.evict(conn_id, "protocol violation: result before join");
                            continue;
                        };
                        if let Some(c) = state.conns.get_mut(&conn_id) {
                            c.completed += 1;
                        }
                        let job = record.job;
                        state.merge_verdict(worker, job, JobVerdict::Quarantined(record));
                    }
                    JoinMsg::Leaving { .. } => {
                        if let Some(c) = state.conns.get_mut(&conn_id) {
                            c.leaving = true;
                        }
                    }
                }
            }
            Note::Bad(e) => {
                state.evict(conn_id, &format!("protocol violation: {e}"));
            }
            Note::Eof => {
                let clean = state
                    .conns
                    .get(&conn_id)
                    .is_some_and(|c| c.leaving || c.drained);
                if clean {
                    state.drop_conn(conn_id, None);
                } else {
                    state.evict(conn_id, "connection closed unexpectedly");
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Worker side
// ---------------------------------------------------------------------------

/// Worker tuning for [`run_join`].
#[derive(Clone, Debug)]
pub struct JoinCfg {
    /// Coordinator address (`host:port`).
    pub addr: String,
    /// This worker's [`config_fingerprint`]; must match the coordinator's.
    pub config_hash: u64,
    /// Heartbeat emission interval.
    pub heartbeat: Duration,
    /// Most jobs requested per lease.
    pub batch: usize,
    /// Consecutive failed connect/handshake attempts before giving up.
    pub connect_attempts: u32,
    /// First reconnect delay; doubles per consecutive failure.
    pub backoff_base: Duration,
    /// Ceiling on the exponential reconnect delay (before jitter).
    pub backoff_max: Duration,
    /// Socket read timeout: a coordinator silent this long counts as a
    /// lost session (and a mid-handshake death cannot hang the worker).
    pub io_timeout: Duration,
    /// Nap between requests when the coordinator has nothing to lease.
    pub idle_poll: Duration,
    /// Exit cleanly between jobs when this file exists.
    pub stop_file: Option<PathBuf>,
    /// Deterministic network fault injection, keyed by connection ordinal.
    pub net_faults: NetFaultPlan,
}

impl Default for JoinCfg {
    fn default() -> Self {
        JoinCfg {
            addr: "127.0.0.1:0".into(),
            config_hash: 0,
            heartbeat: Duration::from_millis(2_500),
            batch: 4,
            connect_attempts: 5,
            backoff_base: Duration::from_millis(50),
            backoff_max: Duration::from_secs(2),
            io_timeout: Duration::from_secs(30),
            idle_poll: Duration::from_millis(100),
            stop_file: None,
            net_faults: NetFaultPlan::default(),
        }
    }
}

/// The prepared work a joining worker runs jobs against. Built lazily (the
/// closure passed to [`run_join`]) so a worker that can never reach the
/// coordinator fails fast without booting a kernel.
pub struct FleetWork {
    /// The booted kernel and snapshot.
    pub booted: BootedKernel,
    /// The sequential test corpus.
    pub corpus: Vec<Program>,
    /// The identified PMC universe.
    pub set: PmcSet,
    /// The ordered exemplar list (the coordinator's job universe).
    pub exemplars: Vec<PmcId>,
}

/// What one worker did for the fleet.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct JoinSummary {
    /// Jobs this worker delivered verdicts for.
    pub jobs_completed: u64,
    /// Non-empty leases it received.
    pub leases: u64,
    /// Times it lost the coordinator and re-registered.
    pub reconnects: u64,
    /// True when the coordinator drained the fleet.
    pub drained: bool,
    /// True when the worker's own stop file ended the session.
    pub stopped: bool,
}

/// Reconnect delay before attempt `n` (1-based): same shape as
/// [`crate::supervise::respawn_backoff`], seeded from the campaign seed so
/// identical runs wait identically.
pub fn connect_backoff(jcfg: &JoinCfg, seed: u64, attempt: u64) -> Duration {
    let shift = attempt.saturating_sub(1).min(20) as u32;
    let grown = jcfg
        .backoff_base
        .saturating_mul(1u32.checked_shl(shift).unwrap_or(u32::MAX));
    let capped = grown.min(jcfg.backoff_max);
    let quarter_ms = capped.as_millis() as u64 / 4;
    let jitter_ms = if quarter_ms == 0 {
        0
    } else {
        reseed(seed ^ 0xF1EE_7000, attempt as u32) % (quarter_ms + 1)
    };
    capped + Duration::from_millis(jitter_ms)
}

/// The write half of a fleet connection, shared between the session loop
/// and the heartbeat thread, with fault injection applied per frame.
///
/// Fault triggers count only *substantive* frames (join/request/results);
/// heartbeats ride along uncounted, because their timing is wall-clock and
/// counting them would make `drop=0:6`-style specs nondeterministic.
struct WriteHalf {
    stream: TcpStream,
    ordinal: u64,
    sent: u64,
    faults: NetFaultPlan,
    write_closed: bool,
}

impl WriteHalf {
    fn send(&mut self, msg: &JoinMsg) -> std::io::Result<()> {
        let substantive = !matches!(msg, JoinMsg::Heartbeat);
        if substantive {
            self.sent += 1;
        }
        let frame = self.sent;
        if let Some(delay) = self.faults.delay_for(self.ordinal) {
            std::thread::sleep(delay);
        }
        if substantive && self.faults.drop_now(self.ordinal, frame) {
            let _ = self.stream.shutdown(Shutdown::Both);
            return Err(std::io::Error::new(
                std::io::ErrorKind::BrokenPipe,
                "injected connection drop",
            ));
        }
        if self.write_closed {
            // Half-closed: sends are silently swallowed, mimicking a peer
            // whose ACKs still flow while its data never arrives.
            return Ok(());
        }
        let mut payload = msg.render();
        if substantive && self.faults.garble_now(self.ordinal, frame) {
            payload = garble(&payload);
        }
        write_frame(&mut self.stream, &payload)?;
        if substantive && self.faults.half_close_now(self.ordinal, frame) {
            let _ = self.stream.shutdown(Shutdown::Write);
            self.write_closed = true;
        }
        Ok(())
    }
}

/// Corrupts every third byte (XOR 0x15 keeps the payload valid UTF-8 but
/// breaks the JSON), so the frame arrives intact and the coordinator's
/// *message* validation — not its framing — must catch it.
fn garble(payload: &str) -> String {
    let mut bytes = payload.as_bytes().to_vec();
    for (i, b) in bytes.iter_mut().enumerate() {
        if i.is_multiple_of(3) && b.is_ascii() {
            *b ^= 0x15;
            *b &= 0x7f;
        }
    }
    String::from_utf8_lossy(&bytes).into_owned()
}

/// How one connected session ended.
enum SessionEnd {
    /// The coordinator drained the fleet; exit cleanly.
    Drained,
    /// The worker's stop file appeared; exit cleanly.
    Stopped,
    /// The connection died; reconnect with backoff.
    Lost,
    /// The coordinator is unusable (rejection, bad job index); give up.
    Fatal(Error),
}

/// Joins a fleet: connect and handshake with bounded retries, then lease
/// and run jobs until the coordinator drains (or the stop file appears),
/// transparently re-registering after lost connections.
///
/// `prepare` builds the (expensive) kernel/corpus/PMC state and is only
/// invoked after the first successful handshake, so a worker pointed at a
/// dead address fails fast with a one-line [`Error::Fleet`].
pub fn run_join(
    cfg: &CampaignCfg,
    jcfg: &JoinCfg,
    prepare: impl FnOnce() -> SbResult<FleetWork>,
) -> SbResult<JoinSummary> {
    let mut prepare = Some(prepare);
    let mut work: Option<(FleetWork, Vec<PmcId>, IncidentalIndex)> = None;
    let mut summary = JoinSummary::default();
    let mut sessions: u64 = 0;
    let mut failures: u64 = 0;
    let mut ordinal: u64 = 0;

    // The worker's job config: results stream to the coordinator, so no
    // local tracing or checkpointing; process faults stay with run_join's
    // own pre-job checks (mirroring the supervised worker).
    let mut job_cfg = cfg.clone();
    job_cfg.fault_plan = cfg.fault_plan.in_process();
    job_cfg.tracer = sb_obs::Tracer::disabled();
    job_cfg.checkpoint = None;
    job_cfg.resume_from = None;

    loop {
        if jcfg.stop_file.as_deref().is_some_and(Path::exists) {
            summary.stopped = true;
            return Ok(summary);
        }
        if failures > 0 {
            std::thread::sleep(connect_backoff(jcfg, cfg.seed, failures));
        }
        let connected = connect_and_join(jcfg, ordinal);
        let (mut write, mut reader) = match connected {
            Ok(halves) => halves,
            Err(HandshakeFail::Fatal(e)) => return Err(e),
            Err(HandshakeFail::Retry(detail)) => {
                failures += 1;
                if failures >= u64::from(jcfg.connect_attempts.max(1)) {
                    return Err(Error::Fleet {
                        detail: format!(
                            "cannot reach coordinator at {} after {failures} attempt(s): {detail}",
                            jcfg.addr
                        ),
                    });
                }
                continue;
            }
        };
        failures = 0;
        ordinal += 1;
        sessions += 1;
        summary.reconnects = sessions - 1;

        if work.is_none() {
            let built = prepare.take().expect("prepare used once")()?;
            let budgeted: Vec<PmcId> = built
                .exemplars
                .iter()
                .copied()
                .take(cfg.max_tested_pmcs)
                .collect();
            let index = IncidentalIndex::build(&built.set);
            work = Some((built, budgeted, index));
        }
        let (built, budgeted, index) = work.as_ref().expect("prepared work");

        let end = run_session(
            &mut write,
            &mut reader,
            built,
            budgeted,
            index,
            &job_cfg,
            jcfg,
            &mut summary,
        );
        match end {
            SessionEnd::Drained => {
                summary.drained = true;
                return Ok(summary);
            }
            SessionEnd::Stopped => {
                summary.stopped = true;
                return Ok(summary);
            }
            SessionEnd::Lost => continue,
            SessionEnd::Fatal(e) => return Err(e),
        }
    }
}

/// Why a connect+handshake attempt did not produce a session.
enum HandshakeFail {
    /// Transient (refused, timeout, died mid-handshake): retry with
    /// backoff.
    Retry(String),
    /// The coordinator answered and said no: do not retry.
    Fatal(Error),
}

type Halves = (Arc<Mutex<WriteHalf>>, BufReader<TcpStream>);

/// One connect + handshake attempt against the coordinator.
fn connect_and_join(jcfg: &JoinCfg, ordinal: u64) -> Result<Halves, HandshakeFail> {
    let stream = TcpStream::connect(&jcfg.addr)
        .map_err(|e| HandshakeFail::Retry(e.to_string()))?;
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(jcfg.io_timeout));
    let read_half = stream
        .try_clone()
        .map_err(|e| HandshakeFail::Retry(e.to_string()))?;
    let mut write = WriteHalf {
        stream,
        ordinal,
        sent: 0,
        faults: jcfg.net_faults.clone(),
        write_closed: false,
    };
    write
        .send(&JoinMsg::Join {
            proto: FLEET_PROTO_VERSION,
            config: jcfg.config_hash,
        })
        .map_err(|e| HandshakeFail::Retry(format!("handshake send failed: {e}")))?;
    let mut reader = BufReader::new(read_half);
    let frame = read_frame(&mut reader)
        .map_err(|e| HandshakeFail::Retry(format!("handshake read failed: {e}")))?
        .ok_or_else(|| {
            HandshakeFail::Retry("coordinator closed the connection mid-handshake".into())
        })?;
    match ServeMsg::parse_line(&frame) {
        Ok(ServeMsg::Welcome { .. }) => Ok((Arc::new(Mutex::new(write)), reader)),
        Ok(ServeMsg::Reject { reason }) => Err(HandshakeFail::Fatal(Error::Fleet {
            detail: format!("coordinator rejected this worker: {reason}"),
        })),
        Ok(other) => Err(HandshakeFail::Retry(format!(
            "unexpected handshake reply '{}'",
            other.kind()
        ))),
        Err(e) => Err(HandshakeFail::Retry(format!("bad handshake reply: {e}"))),
    }
}

/// One registered session: heartbeat in the background, lease and run jobs
/// until drain/stop/loss.
#[allow(clippy::too_many_arguments)]
fn run_session(
    write: &mut Arc<Mutex<WriteHalf>>,
    reader: &mut BufReader<TcpStream>,
    work: &FleetWork,
    budgeted: &[PmcId],
    index: &IncidentalIndex,
    job_cfg: &CampaignCfg,
    jcfg: &JoinCfg,
    summary: &mut JoinSummary,
) -> SessionEnd {
    let done = Arc::new(AtomicBool::new(false));
    {
        let write = write.clone();
        let done = done.clone();
        let interval = jcfg.heartbeat.max(Duration::from_millis(10));
        std::thread::spawn(move || loop {
            std::thread::sleep(interval);
            if done.load(Ordering::Relaxed) {
                break;
            }
            let Ok(mut w) = write.lock() else { break };
            if w.send(&JoinMsg::Heartbeat).is_err() {
                break;
            }
        });
    }
    let end = session_loop(write, reader, work, budgeted, index, job_cfg, jcfg, summary);
    done.store(true, Ordering::Relaxed);
    if matches!(end, SessionEnd::Drained | SessionEnd::Stopped) {
        // Best effort: the coordinator may already be gone.
        if let Ok(mut w) = write.lock() {
            let reason = if matches!(end, SessionEnd::Stopped) { "stop file" } else { "drained" };
            let _ = w.send(&JoinMsg::Leaving { reason: reason.into() });
        }
    }
    if let Ok(w) = write.lock() {
        let _ = w.stream.shutdown(Shutdown::Both);
    }
    end
}

#[allow(clippy::too_many_arguments)]
fn session_loop(
    write: &Arc<Mutex<WriteHalf>>,
    reader: &mut BufReader<TcpStream>,
    work: &FleetWork,
    budgeted: &[PmcId],
    index: &IncidentalIndex,
    job_cfg: &CampaignCfg,
    jcfg: &JoinCfg,
    summary: &mut JoinSummary,
) -> SessionEnd {
    let send = |write: &Arc<Mutex<WriteHalf>>, msg: &JoinMsg| -> bool {
        write.lock().is_ok_and(|mut w| w.send(msg).is_ok())
    };
    let mut slot: Option<Executor> = None;
    loop {
        if jcfg.stop_file.as_deref().is_some_and(Path::exists) {
            return SessionEnd::Stopped;
        }
        if !send(write, &JoinMsg::Request { max: jcfg.batch.max(1) }) {
            return SessionEnd::Lost;
        }
        let reply = match read_frame(reader) {
            Ok(Some(payload)) => match ServeMsg::parse_line(&payload) {
                Ok(msg) => msg,
                Err(_) => return SessionEnd::Lost,
            },
            Ok(None) | Err(_) => return SessionEnd::Lost,
        };
        match reply {
            ServeMsg::Drain { .. } => return SessionEnd::Drained,
            ServeMsg::Lease { jobs, .. } if jobs.is_empty() => {
                std::thread::sleep(jcfg.idle_poll);
            }
            ServeMsg::Lease { jobs, .. } => {
                summary.leases += 1;
                for job in jobs {
                    if jcfg.stop_file.as_deref().is_some_and(Path::exists) {
                        return SessionEnd::Stopped;
                    }
                    let Some(id) = budgeted.get(job).copied() else {
                        return SessionEnd::Fatal(Error::Fleet {
                            detail: format!(
                                "coordinator leased job {job} outside the {}-job universe",
                                budgeted.len()
                            ),
                        });
                    };
                    // Process faults fire before the job runs (mirroring
                    // the supervised worker) so CI can kill a fleet worker
                    // at a deterministic point.
                    if job_cfg.fault_plan.should_abort(job) {
                        std::process::abort();
                    }
                    if let Some(code) = job_cfg.fault_plan.exit_code(job) {
                        std::process::exit(code);
                    }
                    if job_cfg.fault_plan.should_stall(job) {
                        loop {
                            std::thread::sleep(Duration::from_secs(3600));
                        }
                    }
                    let verdict = run_one_job(
                        &mut slot,
                        job,
                        id,
                        &work.booted,
                        &work.corpus,
                        &work.set,
                        index,
                        job_cfg,
                    );
                    let msg = match verdict {
                        JobVerdict::Completed(outcome) => JoinMsg::Done { job, outcome },
                        JobVerdict::Quarantined(record) => JoinMsg::Quarantine { record },
                    };
                    if !send(write, &msg) {
                        return SessionEnd::Lost;
                    }
                    summary.jobs_completed += 1;
                }
            }
            ServeMsg::Welcome { .. } | ServeMsg::Reject { .. } => return SessionEnd::Lost,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::PmcTestOutcome;
    use crate::checkpoint::CheckpointCfg;
    use crate::cluster::Strategy;
    use crate::select::ClusterOrder;
    use crate::{Pipeline, PipelineCfg};

    fn test_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("sb-fleet-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn fast_fcfg(dir: &Path) -> FleetCfg {
        FleetCfg {
            heartbeat_timeout: Duration::from_millis(600),
            lease_deadline: Duration::from_millis(2_000),
            batch: 2,
            poll: Duration::from_millis(5),
            crash_budget: 2,
            max_instant_deaths: 3,
            stop_file: None,
            checkpoint: dir.join("fleet.json"),
            config_hash: 0,
        }
    }

    fn outcome(job: usize, steps: u64) -> PmcTestOutcome {
        PmcTestOutcome {
            pmc: Some(job as PmcId + 100),
            pair: (1, 2),
            trials_run: 8,
            exercised: true,
            findings: vec![],
            steps,
            first_finding_trial: None,
            repro_schedule: None,
            attempts: 1,
        }
    }

    /// A scripted fleet worker for driving the coordinator from tests.
    struct Client {
        write: TcpStream,
        reader: BufReader<TcpStream>,
    }

    impl Client {
        fn connect(addr: &std::net::SocketAddr) -> Client {
            let write = TcpStream::connect(addr).expect("connect");
            write.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
            let reader = BufReader::new(write.try_clone().unwrap());
            Client { write, reader }
        }

        fn send(&mut self, msg: &JoinMsg) {
            let _ = write_frame(&mut self.write, &msg.render());
        }

        fn read(&mut self) -> ServeMsg {
            let payload = read_frame(&mut self.reader)
                .expect("frame")
                .expect("open stream");
            ServeMsg::parse_line(&payload).expect("serve msg")
        }

        fn join(addr: &std::net::SocketAddr, config: u64) -> (Client, ServeMsg) {
            let mut c = Client::connect(addr);
            c.send(&JoinMsg::Join { proto: FLEET_PROTO_VERSION, config });
            let reply = c.read();
            (c, reply)
        }

        /// Requests until a non-empty lease or drain arrives.
        fn lease(&mut self, max: usize) -> Option<Vec<usize>> {
            loop {
                self.send(&JoinMsg::Request { max });
                match self.read() {
                    ServeMsg::Lease { jobs, .. } if jobs.is_empty() => {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    ServeMsg::Lease { jobs, .. } => return Some(jobs),
                    ServeMsg::Drain { .. } => return None,
                    other => panic!("unexpected reply {other:?}"),
                }
            }
        }

        /// Reads frames until drain, then leaves cleanly.
        fn drain(mut self) {
            loop {
                self.send(&JoinMsg::Request { max: 1 });
                match self.read() {
                    ServeMsg::Drain { .. } => break,
                    ServeMsg::Lease { jobs, .. } => {
                        assert!(jobs.is_empty(), "unexpected work while draining");
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    other => panic!("unexpected reply {other:?}"),
                }
            }
            self.send(&JoinMsg::Leaving { reason: "drained".into() });
        }
    }

    /// Binds a listener and runs the coordinator in a thread.
    fn start_coordinator(
        budgeted: Vec<PmcId>,
        cfg: CampaignCfg,
        fcfg: FleetCfg,
    ) -> (std::net::SocketAddr, std::thread::JoinHandle<SbResult<CampaignReport>>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle =
            std::thread::spawn(move || run_coordinator(listener, &budgeted, &cfg, &fcfg));
        (addr, handle)
    }

    #[test]
    fn fingerprint_is_stable_and_sensitive() {
        let a = config_fingerprint(&[("seed", "7".into()), ("trials", "4".into())]);
        let b = config_fingerprint(&[("seed", "7".into()), ("trials", "4".into())]);
        let c = config_fingerprint(&[("seed", "8".into()), ("trials", "4".into())]);
        let d = config_fingerprint(&[("seed", "7".into())]);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
    }

    #[test]
    fn connect_backoff_is_deterministic_and_clamped() {
        let jcfg = JoinCfg {
            backoff_base: Duration::from_millis(40),
            backoff_max: Duration::from_millis(200),
            ..JoinCfg::default()
        };
        let b1 = connect_backoff(&jcfg, 2021, 1);
        let b9 = connect_backoff(&jcfg, 2021, 9);
        assert_eq!(b1, connect_backoff(&jcfg, 2021, 1), "pure function");
        assert!(b1 >= Duration::from_millis(40) && b1 <= Duration::from_millis(50));
        assert!(b9 >= Duration::from_millis(200) && b9 <= Duration::from_millis(250));
    }

    #[test]
    fn scripted_workers_complete_a_fleet_campaign() {
        let dir = test_dir("clean");
        let budgeted: Vec<PmcId> = (0..4).map(|i| i + 100).collect();
        let (addr, coord) =
            start_coordinator(budgeted, CampaignCfg::default(), fast_fcfg(&dir));

        let (mut a, reply) = Client::join(&addr, 0);
        assert!(matches!(reply, ServeMsg::Welcome { worker: 0, jobs: 4 }), "{reply:?}");
        let jobs = a.lease(2).expect("first lease");
        assert_eq!(jobs, vec![0, 1], "ascending batch");
        for job in jobs {
            a.send(&JoinMsg::Done { job, outcome: outcome(job, 100 + job as u64) });
        }
        let jobs = a.lease(2).expect("second lease");
        assert_eq!(jobs, vec![2, 3]);
        for job in jobs {
            a.send(&JoinMsg::Done { job, outcome: outcome(job, 100 + job as u64) });
        }
        a.drain();

        let report = coord.join().unwrap().expect("fleet report");
        assert_eq!(report.tested(), 4);
        assert!(report.quarantined.is_empty());
        assert_eq!(
            report.outcomes.iter().map(|o| o.steps).collect::<Vec<_>>(),
            vec![100, 101, 102, 103],
            "merged in job order"
        );
        let stats = report.fleet.expect("fleet stats");
        assert_eq!(stats.workers_joined, 1);
        assert_eq!(stats.leases_granted, 2);
        assert_eq!(stats.evictions, 0);
        assert_eq!(stats.duplicate_results, 0);
        assert_eq!(stats.jobs_reassigned, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn dead_worker_is_evicted_and_its_jobs_reassigned() {
        let dir = test_dir("evict");
        let budgeted: Vec<PmcId> = (0..2).map(|i| i + 100).collect();
        let (addr, coord) =
            start_coordinator(budgeted, CampaignCfg::default(), fast_fcfg(&dir));

        // Worker A leases both jobs, finishes one, and dies mid-lease.
        let (mut a, _) = Client::join(&addr, 0);
        let jobs = a.lease(2).expect("lease");
        assert_eq!(jobs, vec![0, 1]);
        a.send(&JoinMsg::Done { job: 0, outcome: outcome(0, 100) });
        drop(a); // unclean close

        // Worker B picks up the reassigned job.
        std::thread::sleep(Duration::from_millis(50));
        let (mut b, _) = Client::join(&addr, 0);
        let jobs = b.lease(2).expect("reassigned lease");
        assert_eq!(jobs, vec![1]);
        b.send(&JoinMsg::Done { job: 1, outcome: outcome(1, 101) });
        b.drain();

        let report = coord.join().unwrap().expect("fleet report");
        assert_eq!(report.tested(), 2);
        assert!(report.quarantined.is_empty());
        let stats = report.fleet.unwrap();
        assert_eq!(stats.workers_joined, 2);
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.jobs_reassigned, 1);
        assert_eq!(stats.heartbeat_misses, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Satellite: a worker whose lease expired delivers late — the first
    /// verdict wins, the duplicate is dropped and counted, and the report
    /// stays identical to what a clean run would have produced.
    #[test]
    fn late_result_after_reassignment_is_a_counted_duplicate() {
        let dir = test_dir("dup");
        let budgeted: Vec<PmcId> = (0..2).map(|i| i + 100).collect();
        let fcfg = FleetCfg {
            lease_deadline: Duration::from_millis(150),
            batch: 1,
            // Generous: a loaded test machine must never turn the *slow*
            // worker into a heartbeat eviction — this test is about lease
            // expiry, not silence.
            heartbeat_timeout: Duration::from_secs(10),
            ..fast_fcfg(&dir)
        };
        let (addr, coord) = start_coordinator(budgeted, CampaignCfg::default(), fcfg);

        // A leases job 0 and sits on it (heartbeating, so it is not
        // evicted — it is slow, not dead).
        let (mut a, _) = Client::join(&addr, 0);
        let jobs = a.lease(1).expect("lease");
        assert_eq!(jobs, vec![0]);

        // B does job 1, then picks up job 0 once A's lease expires.
        let (mut b, _) = Client::join(&addr, 0);
        let jobs = b.lease(1).expect("lease");
        assert_eq!(jobs, vec![1]);
        b.send(&JoinMsg::Done { job: 1, outcome: outcome(1, 101) });
        let reassigned = loop {
            a.send(&JoinMsg::Heartbeat);
            b.send(&JoinMsg::Request { max: 1 });
            match b.read() {
                ServeMsg::Lease { jobs, .. } if jobs.is_empty() => {
                    std::thread::sleep(Duration::from_millis(20));
                }
                ServeMsg::Lease { jobs, .. } => break jobs,
                other => panic!("unexpected reply {other:?}"),
            }
        };
        assert_eq!(reassigned, vec![0], "expired lease reassigned");
        b.send(&JoinMsg::Done { job: 0, outcome: outcome(0, 100) });
        // Sequence B's verdict through the coordinator before A's late
        // delivery: notes from one connection are processed in order, so a
        // reply to a later request proves the Done above was merged first
        // (A's note rides a different reader thread and could otherwise
        // race ahead of B's).
        b.send(&JoinMsg::Request { max: 1 });
        match b.read() {
            ServeMsg::Lease { jobs, .. } => assert!(jobs.is_empty(), "campaign is complete"),
            ServeMsg::Drain { .. } => {}
            other => panic!("unexpected reply {other:?}"),
        }

        // A finally delivers its (identical in real life; distinct here to
        // prove first-wins) result for job 0.
        a.send(&JoinMsg::Done { job: 0, outcome: outcome(0, 999) });
        a.drain();
        b.drain();

        let report = coord.join().unwrap().expect("fleet report");
        assert_eq!(report.tested(), 2);
        assert_eq!(report.outcomes[0].steps, 100, "first verdict won");
        let stats = report.fleet.unwrap();
        assert_eq!(stats.duplicate_results, 1);
        assert_eq!(stats.jobs_reassigned, 1);
        assert_eq!(stats.evictions, 0, "slow worker was not evicted");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn crash_budget_quarantines_a_repeatedly_fatal_job() {
        let dir = test_dir("budget");
        let budgeted: Vec<PmcId> = vec![100];
        let fcfg = FleetCfg {
            crash_budget: 2,
            max_instant_deaths: 10,
            ..fast_fcfg(&dir)
        };
        let (addr, coord) = start_coordinator(budgeted, CampaignCfg::default(), fcfg.clone());

        for _ in 0..2 {
            let (mut w, _) = Client::join(&addr, 0);
            let jobs = w.lease(1).expect("lease");
            assert_eq!(jobs, vec![0]);
            drop(w); // die with the job leased
            std::thread::sleep(Duration::from_millis(50));
        }

        let report = coord.join().unwrap().expect("fleet report");
        assert_eq!(report.tested(), 0);
        assert_eq!(report.quarantined.len(), 1);
        assert_eq!(report.quarantined[0].kind, FailureKind::Crash);
        assert_eq!(report.quarantined[0].attempts, 2);
        let stats = report.fleet.unwrap();
        assert_eq!(stats.evictions, 2);
        assert_eq!(stats.jobs_reassigned, 1, "one reassign before the budget hit");
        // Crash quarantines are checkpointed (never retried on resume).
        let cp = Checkpoint::load(&fcfg.checkpoint).unwrap();
        assert!(cp.quarantined.contains_key(&0));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn instant_death_loop_trips_the_circuit_breaker() {
        let dir = test_dir("breaker");
        let budgeted: Vec<PmcId> = (0..2).map(|i| i + 100).collect();
        let fcfg = FleetCfg {
            crash_budget: 100,
            max_instant_deaths: 2,
            ..fast_fcfg(&dir)
        };
        let (addr, coord) = start_coordinator(budgeted, CampaignCfg::default(), fcfg.clone());

        for _ in 0..2 {
            let (mut w, _) = Client::join(&addr, 0);
            let _ = w.lease(2).expect("lease");
            drop(w); // instant death: joined, completed nothing
            std::thread::sleep(Duration::from_millis(50));
        }

        let report = coord.join().unwrap().expect("fleet report");
        assert_eq!(report.tested(), 0);
        assert_eq!(report.quarantined.len(), 2);
        assert!(report.quarantined.iter().all(|q| q.kind == FailureKind::GaveUp));
        let stats = report.fleet.unwrap();
        assert_eq!(stats.gave_up_jobs, 2);
        // GaveUp is reported but not checkpointed: a resumed campaign
        // retries those jobs.
        let cp = Checkpoint::load(&fcfg.checkpoint).unwrap();
        assert!(cp.quarantined.is_empty());
        assert!(cp.outcomes.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stop_file_drains_the_fleet_without_quarantines() {
        let dir = test_dir("stop");
        let budgeted: Vec<PmcId> = (0..2).map(|i| i + 100).collect();
        let stop = dir.join("stop");
        let fcfg = FleetCfg {
            stop_file: Some(stop.clone()),
            ..fast_fcfg(&dir)
        };
        let (addr, coord) = start_coordinator(budgeted, CampaignCfg::default(), fcfg.clone());

        let (mut a, _) = Client::join(&addr, 0);
        let jobs = a.lease(2).expect("lease");
        assert_eq!(jobs, vec![0, 1]);
        a.send(&JoinMsg::Done { job: 0, outcome: outcome(0, 100) });
        std::fs::write(&stop, b"").unwrap();
        // The coordinator pushes a drain; absorb it and leave.
        match a.read() {
            ServeMsg::Drain { .. } => {}
            other => panic!("unexpected reply {other:?}"),
        }
        a.send(&JoinMsg::Leaving { reason: "drained".into() });
        drop(a);

        let report = coord.join().unwrap().expect("fleet report");
        let stats = report.fleet.as_ref().unwrap();
        assert!(stats.stopped);
        assert_eq!(stats.evictions, 0, "drain closes are clean");
        assert_eq!(stats.jobs_reassigned, 0, "no reassignment during drain");
        assert_eq!(report.tested(), 1, "completed work is kept");
        assert!(report.quarantined.is_empty());
        // The checkpoint resumes past job 0 only.
        let cp = Checkpoint::load(&fcfg.checkpoint).unwrap();
        assert!(cp.covers(0));
        assert!(!cp.covers(1));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resumed_coordinator_skips_covered_jobs() {
        let dir = test_dir("resume");
        let budgeted: Vec<PmcId> = (0..2).map(|i| i + 100).collect();
        let fcfg = fast_fcfg(&dir);

        // First fleet: job 0 completes, then the fleet is stopped.
        let stop = dir.join("stop");
        let fcfg1 = FleetCfg { stop_file: Some(stop.clone()), ..fcfg.clone() };
        let (addr, coord) =
            start_coordinator(budgeted.clone(), CampaignCfg::default(), fcfg1);
        let (mut a, _) = Client::join(&addr, 0);
        let _ = a.lease(2).expect("lease");
        a.send(&JoinMsg::Done { job: 0, outcome: outcome(0, 100) });
        std::fs::write(&stop, b"").unwrap();
        loop {
            if matches!(a.read(), ServeMsg::Drain { .. }) {
                break;
            }
        }
        a.send(&JoinMsg::Leaving { reason: "drained".into() });
        drop(a);
        let first = coord.join().unwrap().expect("first report");
        assert_eq!(first.tested(), 1);

        // Second fleet resumes from the checkpoint: only job 1 is leased.
        let cfg2 = CampaignCfg {
            resume_from: Some(fcfg.checkpoint.clone()),
            ..CampaignCfg::default()
        };
        let (addr, coord) = start_coordinator(budgeted, cfg2, fcfg);
        let (mut b, _) = Client::join(&addr, 0);
        let jobs = b.lease(2).expect("lease");
        assert_eq!(jobs, vec![1], "covered job not re-leased");
        b.send(&JoinMsg::Done { job: 1, outcome: outcome(1, 101) });
        b.drain();
        let report = coord.join().unwrap().expect("resumed report");
        assert_eq!(report.tested(), 2, "resume merged both halves");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn handshake_rejects_version_and_config_mismatches() {
        let dir = test_dir("reject");
        let budgeted: Vec<PmcId> = vec![100];
        let fcfg = FleetCfg { config_hash: 0xBEEF, ..fast_fcfg(&dir) };
        let (addr, coord) = start_coordinator(budgeted, CampaignCfg::default(), fcfg);

        let mut bad_proto = Client::connect(&addr);
        bad_proto.send(&JoinMsg::Join { proto: 99, config: 0xBEEF });
        let reply = bad_proto.read();
        assert!(
            matches!(&reply, ServeMsg::Reject { reason } if reason.contains("version")),
            "{reply:?}"
        );

        let (_bad_config, reply) = Client::join(&addr, 0xF00D);
        assert!(
            matches!(&reply, ServeMsg::Reject { reason } if reason.contains("fingerprint")),
            "{reply:?}"
        );

        let (mut good, reply) = Client::join(&addr, 0xBEEF);
        assert!(matches!(reply, ServeMsg::Welcome { .. }), "{reply:?}");
        let jobs = good.lease(1).expect("lease");
        good.send(&JoinMsg::Done { job: jobs[0], outcome: outcome(0, 100) });
        good.drain();

        let report = coord.join().unwrap().expect("fleet report");
        let stats = report.fleet.unwrap();
        assert_eq!(stats.workers_rejected, 2);
        assert_eq!(stats.workers_joined, 1);
        assert_eq!(stats.evictions, 0, "rejections are not evictions");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn garbage_frames_evict_the_sender() {
        let dir = test_dir("garbage");
        let budgeted: Vec<PmcId> = vec![100];
        let (addr, coord) =
            start_coordinator(budgeted, CampaignCfg::default(), fast_fcfg(&dir));

        let (mut evil, _) = Client::join(&addr, 0);
        let _ = evil.lease(1).expect("lease");
        use std::io::Write as _;
        let _ = evil.write.write_all(b"not a frame at all\n");
        let _ = evil.write.flush();

        // The good worker finishes the campaign after the eviction.
        std::thread::sleep(Duration::from_millis(50));
        let (mut good, _) = Client::join(&addr, 0);
        let jobs = good.lease(1).expect("reassigned lease");
        good.send(&JoinMsg::Done { job: jobs[0], outcome: outcome(0, 100) });
        good.drain();

        let report = coord.join().unwrap().expect("fleet report");
        assert_eq!(report.tested(), 1);
        let stats = report.fleet.unwrap();
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.jobs_reassigned, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    // -- run_join (worker side) ------------------------------------------

    fn empty_work() -> SbResult<FleetWork> {
        let booted = sb_kernel::boot(sb_kernel::KernelConfig::v5_12_rc3());
        Ok(FleetWork {
            booted,
            corpus: vec![],
            set: crate::pmc::identify(&[]),
            exemplars: vec![],
        })
    }

    fn fast_jcfg(addr: String) -> JoinCfg {
        JoinCfg {
            addr,
            heartbeat: Duration::from_millis(50),
            batch: 2,
            connect_attempts: 3,
            backoff_base: Duration::from_millis(1),
            backoff_max: Duration::from_millis(4),
            io_timeout: Duration::from_secs(5),
            idle_poll: Duration::from_millis(5),
            ..JoinCfg::default()
        }
    }

    #[test]
    fn unreachable_coordinator_fails_after_bounded_retries() {
        // Bind-then-drop guarantees a refused port.
        let addr = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().to_string()
        };
        let jcfg = fast_jcfg(addr.clone());
        let err = run_join(&CampaignCfg::default(), &jcfg, empty_work).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("cannot reach coordinator"), "{msg}");
        assert!(msg.contains("3 attempt(s)"), "{msg}");
    }

    #[test]
    fn rejected_worker_fails_fast_without_retrying() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            let mut accepted = 0u32;
            listener
                .set_nonblocking(false)
                .expect("blocking listener");
            let deadline = Instant::now() + Duration::from_secs(2);
            listener.set_nonblocking(true).unwrap();
            while Instant::now() < deadline {
                match listener.accept() {
                    Ok((mut stream, _)) => {
                        accepted += 1;
                        let mut reader = BufReader::new(stream.try_clone().unwrap());
                        let _ = read_frame(&mut reader); // the join
                        let _ = write_frame(
                            &mut stream,
                            &ServeMsg::Reject { reason: "config fingerprint mismatch".into() }
                                .render(),
                        );
                    }
                    Err(_) => std::thread::sleep(Duration::from_millis(5)),
                }
                if accepted > 0 {
                    break;
                }
            }
            accepted
        });
        let jcfg = fast_jcfg(addr);
        let err = run_join(&CampaignCfg::default(), &jcfg, empty_work).unwrap_err();
        assert!(err.to_string().contains("rejected"), "{err}");
        assert_eq!(server.join().unwrap(), 1, "no retry after a rejection");
    }

    #[test]
    fn worker_reconnects_after_a_lost_session_and_drains() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            // Session 1: welcome, then hang up on the first request.
            let (mut s1, _) = listener.accept().unwrap();
            let mut r1 = BufReader::new(s1.try_clone().unwrap());
            let _ = read_frame(&mut r1); // join
            write_frame(&mut s1, &ServeMsg::Welcome { worker: 0, jobs: 0 }.render()).unwrap();
            let _ = read_frame(&mut r1); // request
            drop(s1);
            // Session 2: welcome, then drain.
            let (mut s2, _) = listener.accept().unwrap();
            let mut r2 = BufReader::new(s2.try_clone().unwrap());
            let _ = read_frame(&mut r2); // join
            write_frame(&mut s2, &ServeMsg::Welcome { worker: 1, jobs: 0 }.render()).unwrap();
            let _ = read_frame(&mut r2); // request
            write_frame(&mut s2, &ServeMsg::Drain { reason: "done".into() }.render()).unwrap();
            // Absorb the goodbye.
            let _ = read_frame(&mut r2);
        });
        let jcfg = fast_jcfg(addr);
        let summary = run_join(&CampaignCfg::default(), &jcfg, empty_work).expect("join");
        assert!(summary.drained);
        assert_eq!(summary.reconnects, 1);
        assert_eq!(summary.jobs_completed, 0);
        server.join().unwrap();
    }

    #[test]
    fn injected_drop_forces_a_reconnect() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            // Connection 0 dies by injected fault after its first frame
            // (the join); connection 1 is fault-free and drains.
            for round in 0..2 {
                let (mut s, _) = listener.accept().unwrap();
                let mut r = BufReader::new(s.try_clone().unwrap());
                match read_frame(&mut r) {
                    Ok(Some(_)) => {}
                    _ => continue, // the dropped connection
                }
                let _ = write_frame(
                    &mut s,
                    &ServeMsg::Welcome { worker: round, jobs: 0 }.render(),
                );
                match read_frame(&mut r) {
                    Ok(Some(_)) => {}
                    _ => continue,
                }
                let _ =
                    write_frame(&mut s, &ServeMsg::Drain { reason: "done".into() }.render());
                let _ = read_frame(&mut r);
            }
        });
        // drop=0:1 — connection 0 closes after 1 substantive frame, so its
        // request (frame 2) hits the injected drop.
        let faults = NetFaultPlan::parse_spec("drop=0:1").unwrap();
        let jcfg = JoinCfg { net_faults: faults, ..fast_jcfg(addr) };
        let summary = run_join(&CampaignCfg::default(), &jcfg, empty_work).expect("join");
        assert!(summary.drained);
        assert_eq!(summary.reconnects, 1, "the injected drop cost one session");
        server.join().unwrap();
    }

    /// The acceptance test in miniature: a real (tiny) pipeline run as a
    /// single process and as a coordinator + two in-process `run_join`
    /// workers must produce identical reports.
    #[test]
    fn fleet_report_matches_single_process_run() {
        let dir = test_dir("identical");
        let pcfg = PipelineCfg {
            seed: 7,
            corpus_target: 30,
            fuzz_budget: 300,
            workers: 2,
            ..PipelineCfg::default()
        };
        let pipeline = Pipeline::prepare(sb_kernel::KernelConfig::v5_12_rc3(), pcfg.clone());
        let exemplars = pipeline.exemplars(Strategy::SInsPair, ClusterOrder::UncommonFirst);
        let cfg = CampaignCfg {
            seed: 7,
            trials_per_pmc: 4,
            max_tested_pmcs: 6,
            workers: 2,
            checkpoint: Some(CheckpointCfg { path: dir.join("solo.json"), every: 4 }),
            ..CampaignCfg::default()
        };
        let solo = pipeline.campaign(&exemplars, &cfg).expect("solo campaign");

        let fcfg = FleetCfg { batch: 2, ..fast_fcfg(&dir) };
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let fleet_cfg = CampaignCfg { checkpoint: None, ..cfg.clone() };
        let coord = {
            let exemplars = exemplars.clone();
            let fleet_cfg = fleet_cfg.clone();
            std::thread::spawn(move || run_coordinator(listener, &exemplars, &fleet_cfg, &fcfg))
        };
        let workers: Vec<_> = (0..2)
            .map(|_| {
                let jcfg = fast_jcfg(addr.clone());
                let fleet_cfg = fleet_cfg.clone();
                let exemplars = exemplars.clone();
                let pcfg = pcfg.clone();
                std::thread::spawn(move || {
                    run_join(&fleet_cfg, &jcfg, move || {
                        let p = Pipeline::prepare(sb_kernel::KernelConfig::v5_12_rc3(), pcfg);
                        Ok(FleetWork {
                            booted: p.booted,
                            corpus: p.corpus,
                            set: p.pmcs,
                            exemplars,
                        })
                    })
                })
            })
            .collect();
        let fleet = coord.join().unwrap().expect("fleet campaign");
        let mut fleet_jobs = 0;
        for w in workers {
            let summary = w.join().unwrap().expect("worker summary");
            assert!(summary.drained);
            fleet_jobs += summary.jobs_completed;
        }
        assert_eq!(fleet_jobs as usize, solo.tested(), "all jobs ran exactly once");

        assert_eq!(fleet.outcomes, solo.outcomes, "bit-identical outcomes");
        assert_eq!(fleet.quarantined, solo.quarantined);
        assert_eq!(fleet.total_steps, solo.total_steps);
        assert_eq!(fleet.executions, solo.executions);
        assert_eq!(fleet.bug_ids(), solo.bug_ids());
        let stats = fleet.fleet.expect("fleet stats");
        assert_eq!(stats.workers_joined, 2);
        assert_eq!(stats.evictions, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
