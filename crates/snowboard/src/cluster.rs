//! PMC clustering strategies — Table 1 of the paper (§4.3).
//!
//! A clustering strategy is a clustering key plus a filter. PMCs with equal
//! keys share a cluster; filtered-out PMCs are discarded entirely. One
//! exemplar per cluster is later tested, least-populous cluster first.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::pmc::{Pmc, PmcId, PmcSet};

/// The clustering strategies of Table 1 (S-INS contributes two clusters per
/// PMC: one keyed on the write instruction, one on the read instruction).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum Strategy {
    /// All features; only identical PMCs cluster together (baseline).
    SFull,
    /// All features except the values.
    SCh,
    /// S-CH keyed, filtered to PMCs whose written value is all-zero.
    SChNull,
    /// S-CH keyed, filtered to PMCs whose read/write ranges differ.
    SChUnaligned,
    /// S-CH keyed, filtered to df_leader PMCs (double fetches).
    SChDouble,
    /// Clusters solely on one instruction address (write or read).
    SIns,
    /// Clusters on the (write instruction, read instruction) pair.
    SInsPair,
    /// Clusters on the memory ranges of both sides.
    SMem,
}

/// All strategies, in Table 1/Table 3 order.
pub const ALL_STRATEGIES: [Strategy; 8] = [
    Strategy::SFull,
    Strategy::SCh,
    Strategy::SChNull,
    Strategy::SChUnaligned,
    Strategy::SChDouble,
    Strategy::SIns,
    Strategy::SInsPair,
    Strategy::SMem,
];

impl std::fmt::Display for Strategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Strategy::SFull => "S-FULL",
            Strategy::SCh => "S-CH",
            Strategy::SChNull => "S-CH-NULL",
            Strategy::SChUnaligned => "S-CH-UNALIGNED",
            Strategy::SChDouble => "S-CH-DOUBLE",
            Strategy::SIns => "S-INS",
            Strategy::SInsPair => "S-INS-PAIR",
            Strategy::SMem => "S-MEM",
        };
        write!(f, "{s}")
    }
}

/// One cluster: a key (rendered opaque) and its member PMCs.
#[derive(Clone, Debug)]
pub struct Cluster {
    /// Hash of the clustering key (stable across runs).
    pub key: u64,
    /// Member PMC ids.
    pub members: Vec<PmcId>,
}

impl Cluster {
    /// Cluster cardinality.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True when the cluster has no members (never produced by
    /// [`cluster`]).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }
}

fn mix(h: &mut u64, v: u64) {
    *h ^= v.wrapping_add(0x9E37_79B9_7F4A_7C15).wrapping_add(*h << 6).wrapping_add(*h >> 2);
}

fn channel_key(p: &Pmc) -> u64 {
    let mut h = 0u64;
    for v in [
        p.key.w.ins.0,
        p.key.w.addr,
        u64::from(p.key.w.len),
        p.key.r.ins.0,
        p.key.r.addr,
        u64::from(p.key.r.len),
    ] {
        mix(&mut h, v);
    }
    h
}

/// The clustering key(s) of `p` under `strategy`, or empty when the filter
/// rejects it. (Only S-INS yields two keys.)
pub fn keys_of(p: &Pmc, strategy: Strategy) -> Vec<u64> {
    match strategy {
        Strategy::SFull => {
            let mut h = channel_key(p);
            mix(&mut h, p.key.w.value);
            mix(&mut h, p.key.r.value);
            vec![h]
        }
        Strategy::SCh => vec![channel_key(p)],
        Strategy::SChNull => {
            if p.key.w.value == 0 {
                vec![channel_key(p)]
            } else {
                vec![]
            }
        }
        Strategy::SChUnaligned => {
            if p.key.w.addr != p.key.r.addr || p.key.w.len != p.key.r.len {
                vec![channel_key(p)]
            } else {
                vec![]
            }
        }
        Strategy::SChDouble => {
            if p.df_leader {
                vec![channel_key(p)]
            } else {
                vec![]
            }
        }
        Strategy::SIns => {
            // Tag the two sub-spaces so a site used for both reading and
            // writing forms two clusters, per "this strategy pair (one for
            // reads and one for writes)".
            let mut hw = 0u64;
            mix(&mut hw, 1);
            mix(&mut hw, p.key.w.ins.0);
            let mut hr = 0u64;
            mix(&mut hr, 2);
            mix(&mut hr, p.key.r.ins.0);
            vec![hw, hr]
        }
        Strategy::SInsPair => {
            let mut h = 0u64;
            mix(&mut h, p.key.w.ins.0);
            mix(&mut h, p.key.r.ins.0);
            vec![h]
        }
        Strategy::SMem => {
            let mut h = 0u64;
            for v in [
                p.key.w.addr,
                u64::from(p.key.w.len),
                p.key.r.addr,
                u64::from(p.key.r.len),
            ] {
                mix(&mut h, v);
            }
            vec![h]
        }
    }
}

/// Clusters the whole PMC set under `strategy`.
pub fn cluster(set: &PmcSet, strategy: Strategy) -> Vec<Cluster> {
    let mut map: HashMap<u64, Vec<PmcId>> = HashMap::new();
    for (id, p) in set.pmcs.iter().enumerate() {
        for k in keys_of(p, strategy) {
            map.entry(k).or_default().push(id as PmcId);
        }
    }
    let mut clusters: Vec<Cluster> = map
        .into_iter()
        .map(|(key, members)| Cluster { key, members })
        .collect();
    // Deterministic order regardless of hash-map iteration.
    clusters.sort_by_key(|c| c.key);
    clusters
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pmc::{PmcKey, SideKey};
    use sb_vmm::site;

    #[allow(clippy::too_many_arguments)]
    fn pmc(wins: &str, waddr: u64, wlen: u8, wval: u64, rins: &str, raddr: u64, rlen: u8, rval: u64, df: bool) -> Pmc {
        Pmc {
            key: PmcKey {
                w: SideKey { ins: site!(wins), addr: waddr, len: wlen, value: wval },
                r: SideKey { ins: site!(rins), addr: raddr, len: rlen, value: rval },
            },
            df_leader: df,
            pairs: vec![(0, 1)],
        }
    }

    fn set_of(pmcs: Vec<Pmc>) -> PmcSet {
        PmcSet { pmcs }
    }

    #[test]
    fn sfull_separates_by_value_sch_does_not() {
        let set = set_of(vec![
            pmc("w", 0x10, 8, 1, "r", 0x10, 8, 0, false),
            pmc("w", 0x10, 8, 2, "r", 0x10, 8, 0, false),
        ]);
        assert_eq!(cluster(&set, Strategy::SFull).len(), 2);
        let ch = cluster(&set, Strategy::SCh);
        assert_eq!(ch.len(), 1);
        assert_eq!(ch[0].len(), 2);
    }

    #[test]
    fn schnull_filters_nonzero_writes() {
        let set = set_of(vec![
            pmc("w", 0x10, 8, 0, "r", 0x10, 8, 5, false),
            pmc("w", 0x10, 8, 7, "r", 0x10, 8, 5, false),
        ]);
        let c = cluster(&set, Strategy::SChNull);
        assert_eq!(c.len(), 1);
        assert_eq!(c[0].members, vec![0]);
    }

    #[test]
    fn schunaligned_filters_identical_ranges() {
        let set = set_of(vec![
            pmc("w", 0x10, 8, 1, "r", 0x10, 8, 0, false), // aligned
            pmc("w", 0x10, 8, 1, "r", 0x14, 4, 0, false), // unaligned
            pmc("w", 0x10, 4, 1, "r", 0x10, 8, 0, false), // length differs
        ]);
        let c = cluster(&set, Strategy::SChUnaligned);
        let members: Vec<PmcId> = c.iter().flat_map(|c| c.members.clone()).collect();
        assert_eq!(members.len(), 2);
        assert!(!members.contains(&0));
    }

    #[test]
    fn schdouble_keeps_only_df_leaders() {
        let set = set_of(vec![
            pmc("w", 0x10, 8, 1, "r", 0x10, 8, 0, true),
            pmc("w", 0x10, 8, 1, "r2", 0x10, 8, 0, false),
        ]);
        let c = cluster(&set, Strategy::SChDouble);
        assert_eq!(c.len(), 1);
        assert_eq!(c[0].members, vec![0]);
    }

    #[test]
    fn sins_buckets_by_single_instruction() {
        // Same write ins, different read ins: the write-side cluster holds
        // both PMCs; each read-side cluster holds one.
        let set = set_of(vec![
            pmc("w", 0x10, 8, 1, "ra", 0x10, 8, 0, false),
            pmc("w", 0x20, 8, 2, "rb", 0x20, 8, 0, false),
        ]);
        let c = cluster(&set, Strategy::SIns);
        assert_eq!(c.len(), 3);
        let sizes: Vec<usize> = {
            let mut s: Vec<usize> = c.iter().map(Cluster::len).collect();
            s.sort_unstable();
            s
        };
        assert_eq!(sizes, vec![1, 1, 2]);
    }

    #[test]
    fn sinspair_ignores_memory_and_values() {
        let set = set_of(vec![
            pmc("w", 0x10, 8, 1, "r", 0x10, 8, 0, false),
            pmc("w", 0x99, 4, 2, "r", 0x77, 4, 3, false),
        ]);
        let c = cluster(&set, Strategy::SInsPair);
        assert_eq!(c.len(), 1);
        assert_eq!(c[0].len(), 2);
    }

    #[test]
    fn smem_buckets_by_ranges_only() {
        let set = set_of(vec![
            pmc("w1", 0x10, 8, 1, "r1", 0x10, 8, 0, false),
            pmc("w2", 0x10, 8, 9, "r2", 0x10, 8, 4, false),
            pmc("w3", 0x20, 8, 9, "r3", 0x20, 8, 4, false),
        ]);
        let c = cluster(&set, Strategy::SMem);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn cluster_order_is_deterministic() {
        let set = set_of(
            (0..50)
                .map(|i| pmc("w", 0x10 + i, 8, 1, "r", 0x10 + i, 8, 0, false))
                .collect(),
        );
        let a: Vec<u64> = cluster(&set, Strategy::SCh).iter().map(|c| c.key).collect();
        let b: Vec<u64> = cluster(&set, Strategy::SCh).iter().map(|c| c.key).collect();
        assert_eq!(a, b);
    }
}
