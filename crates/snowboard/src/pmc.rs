//! PMC identification — Algorithm 1 of the paper (§4.2).
//!
//! All profiled shared accesses are indexed by memory range in an ordered
//! nested index (outer order: start address; nested: range length; then
//! instruction — §4.2.1). Every (write, read) pair with overlapping ranges
//! whose values *differ over the overlap* is a potential memory
//! communication. A PMC is keyed by the features of both accesses
//! (instruction, memory range, value); multiple test pairs may map to the
//! same PMC key (Algorithm 1 line 15).
//!
//! Identification is organized around [`JoinState`], the persistent form of
//! Algorithm 1's index: deduplicated write and read records plus the folded
//! PMC set. Three execution modes share one scan implementation:
//!
//! * **Batch** ([`identify`]) — the reference path: every profile ingested,
//!   then every read joined against the full write index in read-major,
//!   address-minor order. This order *is* the specification; the other two
//!   modes reproduce or approximate it.
//! * **Sharded parallel** ([`identify_sharded`]) — the write index is
//!   partitioned into contiguous address ranges balanced by record count,
//!   each shard's write×read join runs on its own worker, and per-read match
//!   lists are merged back in shard (= address) order before the sequential
//!   fold assigns ids. The result is bit-identical to the batch path because
//!   concatenating the per-shard scans of one read in shard order is exactly
//!   the batch path's single ordered range scan of that read.
//! * **Incremental** ([`JoinState::resume`] + [`JoinState::add_profiles`]) —
//!   when a corpus grows, only the new profiles are joined: existing reads ×
//!   new writes first, then new reads × the full index. This yields the same
//!   PMC universe (same keys, same df flags, same pair sets up to the
//!   per-PMC pair cap) as a from-scratch rebuild, though PMC ids may be
//!   permuted because id assignment order follows join order.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::ops::Range;

use serde::{Deserialize, Serialize};

use sb_vmm::access::{range_overlap, AccessKind};
use sb_vmm::sched::HintAccess;
use sb_vmm::site::Site;

use crate::profile::SeqProfile;

/// One side (read or write) of a PMC: the features Algorithm 1 collects.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct SideKey {
    /// Instruction identity (`ins` in Table 1).
    pub ins: Site,
    /// Memory-range start (`addr`).
    pub addr: u64,
    /// Memory-range length in bytes (`byte`).
    pub len: u8,
    /// Value read/written (`value`), projected to the access's own range.
    pub value: u64,
}

/// A PMC key: the write side and the read side.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct PmcKey {
    /// The writer's access features.
    pub w: SideKey,
    /// The reader's access features.
    pub r: SideKey,
}

/// Identifier of a PMC within a [`PmcSet`].
pub type PmcId = u32;

/// A PMC plus the sequential-test pairs that exhibit it.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Pmc {
    /// Feature key.
    pub key: PmcKey,
    /// True when the read access is the first of a double fetch
    /// (`df_leader`, §4.3).
    pub df_leader: bool,
    /// (writer test, reader test) pairs exhibiting this PMC, deduplicated.
    pub pairs: Vec<(u32, u32)>,
}

impl Pmc {
    /// The scheduler hint patterns for this PMC (write side, read side).
    pub fn hints(&self) -> [HintAccess; 2] {
        [
            HintAccess {
                site: self.key.w.ins,
                kind: AccessKind::Write,
                addr: self.key.w.addr,
                len: self.key.w.len,
            },
            HintAccess {
                site: self.key.r.ins,
                kind: AccessKind::Read,
                addr: self.key.r.addr,
                len: self.key.r.len,
            },
        ]
    }
}

/// The identified PMC universe for one corpus.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PmcSet {
    /// All PMCs; a [`PmcId`] is an index into this vector.
    pub pmcs: Vec<Pmc>,
}

impl PmcSet {
    /// Number of identified PMCs.
    pub fn len(&self) -> usize {
        self.pmcs.len()
    }

    /// True if no PMCs were identified.
    pub fn is_empty(&self) -> bool {
        self.pmcs.is_empty()
    }

    /// The PMC with id `id`.
    pub fn get(&self, id: PmcId) -> &Pmc {
        &self.pmcs[id as usize]
    }
}

/// One deduplicated access record used during identification.
#[derive(Copy, Clone, Debug)]
struct Rec {
    test: u32,
    ins: Site,
    addr: u64,
    len: u8,
    value: u64,
    df_leader: bool,
}

/// The ordered nested write index: start address → range length → records
/// in ingest order (§4.2.1).
type WriteIndex = BTreeMap<u64, BTreeMap<u8, Vec<Rec>>>;

/// Limits stored pairs per PMC; the paper stores all, but popular PMCs
/// (e.g. allocator counters) would otherwise dominate memory without
/// adding information — any pair is an equally valid exemplar source.
const MAX_PAIRS_PER_PMC: usize = 32;

/// Computes, per profile, the trace indices (into `accesses`) of df_leader
/// reads: a read followed by a later read of the same range by a
/// *different* instruction, with no intervening write to that range and the
/// same value (§4.3, S-CH-DOUBLE).
pub fn df_leaders(profile: &SeqProfile) -> HashSet<usize> {
    let mut leaders = HashSet::new();
    // Per exact range: (index, site, value) of the last read, and whether a
    // write intervened since.
    let mut last_read: HashMap<(u64, u8), (usize, Site, u64)> = HashMap::new();
    for (i, a) in profile.accesses.iter().enumerate() {
        match a.kind {
            AccessKind::Write => {
                // A write invalidates pending first-reads on any
                // overlapping range.
                last_read.retain(|(addr, len), _| {
                    range_overlap(*addr, *len, a.addr, a.len).is_none()
                });
            }
            AccessKind::Read => {
                let key = (a.addr, a.len);
                if let Some((first_idx, first_site, first_val)) = last_read.get(&key).copied() {
                    if first_site != a.site && first_val == a.value {
                        leaders.insert(first_idx);
                    }
                }
                last_read.insert(key, (i, a.site, a.value));
            }
        }
    }
    leaders
}

/// How the write×read join of one [`JoinState::add_profiles`] call runs.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct IdentifyOpts {
    /// Address-range shards the write index is partitioned into; 1 runs the
    /// join inline on the calling thread.
    pub shards: usize,
    /// Worker threads the shard jobs fan out across (via `sb_queue`).
    pub workers: usize,
}

impl Default for IdentifyOpts {
    fn default() -> Self {
        IdentifyOpts {
            shards: 1,
            workers: 1,
        }
    }
}

impl IdentifyOpts {
    /// Sharded-parallel options: `shards` address shards on `workers`
    /// threads.
    pub fn sharded(shards: usize, workers: usize) -> Self {
        IdentifyOpts {
            shards: shards.max(1),
            workers: workers.max(1),
        }
    }
}

/// Work accounting from one `add_profiles` join, for shard-skew reporting.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct JoinReport {
    /// Candidate (write, read) matches folded per shard. Length equals the
    /// shard count actually used (1 for the inline path).
    pub shard_matches: Vec<u64>,
}

impl JoinReport {
    /// Total matches folded across all shards.
    pub fn matches(&self) -> u64 {
        self.shard_matches.iter().sum()
    }

    /// Load skew: max shard load over mean shard load (1.0 = perfectly
    /// balanced; 0.0 when no work was done).
    pub fn skew(&self) -> f64 {
        let total = self.matches();
        if total == 0 || self.shard_matches.is_empty() {
            return 0.0;
        }
        let max = *self.shard_matches.iter().max().expect("non-empty") as f64;
        let mean = total as f64 / self.shard_matches.len() as f64;
        max / mean
    }

    fn absorb(&mut self, other: JoinReport) {
        if self.shard_matches.len() < other.shard_matches.len() {
            self.shard_matches.resize(other.shard_matches.len(), 0);
        }
        for (slot, m) in other.shard_matches.into_iter().enumerate() {
            self.shard_matches[slot] += m;
        }
    }
}

/// Algorithm 1's state in persistent form: the deduplicated write/read
/// records, the ordered nested write index, and the folded PMC set.
///
/// Supports growing a PMC universe across batches: `add_profiles` ingests a
/// batch and joins only what is new (existing reads × new writes, then new
/// reads × the full write index), so re-indexing after corpus growth costs
/// the new joins, not a rebuild.
#[derive(Clone, Debug, Default)]
pub struct JoinState {
    writes: WriteIndex,
    reads: Vec<Rec>,
    seen_w: HashSet<(u32, u64, u64, u8, u64)>,
    seen_r: HashSet<(u32, u64, u64, u8, u64)>,
    set: PmcSet,
    index: HashMap<PmcKey, PmcId>,
    pair_seen: HashMap<PmcId, HashSet<(u32, u32)>>,
}

impl JoinState {
    /// An empty state; `add_profiles` over everything reproduces
    /// [`identify`] exactly.
    pub fn new() -> Self {
        JoinState::default()
    }

    /// The PMC set folded so far.
    pub fn set(&self) -> &PmcSet {
        &self.set
    }

    /// Consumes the state, returning the folded PMC set.
    pub fn into_set(self) -> PmcSet {
        self.set
    }

    /// Number of deduplicated read records indexed so far.
    pub fn reads_indexed(&self) -> usize {
        self.reads.len()
    }

    /// Rebuilds a state from profiles that were *already joined* into `set`
    /// (e.g. loaded from a persistent store), without re-running the join.
    /// Only ingest work (linear in total accesses) is paid; subsequent
    /// `add_profiles` calls join new batches against this index.
    pub fn resume(profiles: &[SeqProfile], set: PmcSet) -> Self {
        let mut st = JoinState::new();
        let mut batch = WriteIndex::new();
        st.ingest(profiles, &mut batch);
        merge_writes(&mut st.writes, batch);
        st.index = set
            .pmcs
            .iter()
            .enumerate()
            .map(|(id, p)| (p.key, id as PmcId))
            .collect();
        // `pair_seen` is only consulted while a PMC is under the pair cap,
        // and entries are only added while under it, so the stored pair
        // list reconstructs it exactly.
        st.pair_seen = set
            .pmcs
            .iter()
            .enumerate()
            .map(|(id, p)| (id as PmcId, p.pairs.iter().copied().collect()))
            .collect();
        st.set = set;
        st
    }

    /// Ingests a batch (Algorithm 1 lines 1–5): deduplicates records into
    /// the read list and `batch_writes`, leaving `self.writes` untouched so
    /// the caller can join old reads against only the new writes.
    /// Returns the index of the first read added by this batch.
    fn ingest(&mut self, profiles: &[SeqProfile], batch_writes: &mut WriteIndex) -> usize {
        let first_new_read = self.reads.len();
        for p in profiles {
            let leaders = df_leaders(p);
            for (i, a) in p.accesses.iter().enumerate() {
                let sig = (p.test, a.site.0, a.addr, a.len, a.value);
                match a.kind {
                    AccessKind::Write => {
                        if self.seen_w.insert(sig) {
                            batch_writes
                                .entry(a.addr)
                                .or_default()
                                .entry(a.len)
                                .or_default()
                                .push(Rec {
                                    test: p.test,
                                    ins: a.site,
                                    addr: a.addr,
                                    len: a.len,
                                    value: a.value,
                                    df_leader: false,
                                });
                        }
                    }
                    AccessKind::Read => {
                        let df = leaders.contains(&i);
                        // A df_leader read and a plain read with the same
                        // signature must both survive; fold df into the
                        // dedup signature via a separate set entry.
                        if self.seen_r.insert(sig) || df {
                            self.reads.push(Rec {
                                test: p.test,
                                ins: a.site,
                                addr: a.addr,
                                len: a.len,
                                value: a.value,
                                df_leader: df,
                            });
                        }
                    }
                }
            }
        }
        first_new_read
    }

    /// Ingests `profiles` and joins what is new. On an empty state this is
    /// Algorithm 1 verbatim; on a resumed/grown state it is the incremental
    /// re-index (old reads × new writes, then new reads × all writes).
    pub fn add_profiles(&mut self, profiles: &[SeqProfile], opts: &IdentifyOpts) -> JoinReport {
        let mut batch_writes = WriteIndex::new();
        let first_new_read = self.ingest(profiles, &mut batch_writes);
        let mut report = JoinReport::default();
        // Phase 1: reads indexed by earlier batches × this batch's writes.
        if first_new_read > 0 && !batch_writes.is_empty() {
            report.absorb(self.join(0..first_new_read, &batch_writes, opts));
        }
        merge_writes(&mut self.writes, batch_writes);
        // Phase 2: this batch's reads × the full write index.
        if first_new_read < self.reads.len() && !self.writes.is_empty() {
            let writes = std::mem::take(&mut self.writes);
            report.absorb(self.join(first_new_read..self.reads.len(), &writes, opts));
            self.writes = writes;
        }
        report
    }

    /// Joins `reads[read_range]` against `writes`, folding matches into the
    /// PMC set in read-major, write-address-minor order.
    fn join(&mut self, read_range: Range<usize>, writes: &WriteIndex, opts: &IdentifyOpts) -> JoinReport {
        if opts.shards <= 1 {
            // Inline reference path: fold as the scan produces matches.
            let mut matches = 0u64;
            for idx in read_range {
                let r = self.reads[idx];
                scan_read(writes, r, 0, u64::MAX, |w| {
                    self.fold_match(w, r);
                    matches += 1;
                });
            }
            return JoinReport {
                shard_matches: vec![matches],
            };
        }

        let bounds = shard_bounds(writes, opts.shards);
        let nshards = bounds.len();
        let reads = &self.reads;
        let range = read_range.clone();
        // Each shard scans every read's window clipped to its own address
        // interval; within a shard, matches come out read-major and
        // address-minor, exactly like the reference scan restricted to that
        // interval.
        let shard_matches: Vec<Vec<(u32, Rec)>> = sb_queue::run_jobs(
            bounds,
            opts.workers,
            || (),
            |(), (shard_lo, shard_hi)| {
                let mut out: Vec<(u32, Rec)> = Vec::new();
                for idx in range.clone() {
                    let r = reads[idx];
                    scan_read(writes, r, shard_lo, shard_hi, |w| {
                        out.push((idx as u32, w));
                    });
                }
                out
            },
        );
        // Merge: for each read in order, drain each shard's matches for that
        // read in shard (= address) order. Concatenating the clipped scans
        // in address order reconstructs the reference scan order, so the
        // fold below assigns identical PMC ids and pair lists.
        let mut report = JoinReport {
            shard_matches: vec![0; nshards],
        };
        let mut cursors = vec![0usize; nshards];
        for idx in read_range {
            let r = self.reads[idx];
            for (s, ms) in shard_matches.iter().enumerate() {
                while cursors[s] < ms.len() && ms[cursors[s]].0 == idx as u32 {
                    let (_, w) = ms[cursors[s]];
                    self.fold_match(w, r);
                    report.shard_matches[s] += 1;
                    cursors[s] += 1;
                }
            }
        }
        report
    }

    /// Folds one candidate (write, read) match into the PMC set: key build,
    /// id assignment, df propagation, capped pair dedup (lines 11–15).
    fn fold_match(&mut self, w: Rec, r: Rec) {
        let JoinState {
            set,
            index,
            pair_seen,
            ..
        } = self;
        let key = PmcKey {
            w: SideKey {
                ins: w.ins,
                addr: w.addr,
                len: w.len,
                value: w.value,
            },
            r: SideKey {
                ins: r.ins,
                addr: r.addr,
                len: r.len,
                value: r.value,
            },
        };
        let id = *index.entry(key).or_insert_with(|| {
            set.pmcs.push(Pmc {
                key,
                df_leader: r.df_leader,
                pairs: Vec::new(),
            });
            (set.pmcs.len() - 1) as PmcId
        });
        let pmc = &mut set.pmcs[id as usize];
        pmc.df_leader |= r.df_leader;
        if pmc.pairs.len() < MAX_PAIRS_PER_PMC {
            let pair = (w.test, r.test);
            if pair_seen.entry(id).or_default().insert(pair) {
                pmc.pairs.push(pair);
            }
        }
    }
}

/// Scans the ordered nested write index for matches with read `r`, clipped
/// to write start addresses in `[shard_lo, shard_hi)` — the single scan
/// implementation shared by the inline and sharded paths (lines 6–10).
fn scan_read(
    writes: &WriteIndex,
    r: Rec,
    shard_lo: u64,
    shard_hi: u64,
    mut emit: impl FnMut(Rec),
) {
    let lo = r.addr.saturating_sub(7).max(shard_lo);
    // Exclusive upper bound on write starts.
    let hi = (r.addr + u64::from(r.len)).min(shard_hi);
    if lo >= hi {
        return;
    }
    for (_wa, by_len) in writes.range(lo..hi) {
        for recs in by_len.values() {
            for w in recs {
                let Some((ostart, olen)) = range_overlap(w.addr, w.len, r.addr, r.len) else {
                    continue;
                };
                // project_value (lines 9–10): compare over the overlap.
                if project(w.value, w.addr, ostart, olen) == project(r.value, r.addr, ostart, olen)
                {
                    continue;
                }
                emit(*w);
            }
        }
    }
}

/// Appends a batch's write records into the accumulated index, preserving
/// ingest order within each (addr, len) bucket.
fn merge_writes(into: &mut WriteIndex, batch: WriteIndex) {
    for (addr, by_len) in batch {
        let slot = into.entry(addr).or_default();
        for (len, mut recs) in by_len {
            slot.entry(len).or_default().append(&mut recs);
        }
    }
}

/// Partitions the write index's start addresses into up to `shards`
/// contiguous half-open intervals `[lo, hi)`, balanced by record count.
/// The final interval's `hi` is `u64::MAX`, which is unreachable as a write
/// start in practice (an access's range would overflow the address space).
fn shard_bounds(writes: &WriteIndex, shards: usize) -> Vec<(u64, u64)> {
    let total: usize = writes
        .values()
        .map(|by_len| by_len.values().map(Vec::len).sum::<usize>())
        .sum();
    if total == 0 {
        return vec![(0, u64::MAX)];
    }
    let per_shard = total.div_ceil(shards.max(1));
    let mut bounds: Vec<(u64, u64)> = Vec::new();
    let mut lo = 0u64;
    let mut load = 0usize;
    for (addr, by_len) in writes {
        load += by_len.values().map(Vec::len).sum::<usize>();
        if load >= per_shard && bounds.len() + 1 < shards {
            // Split *after* this address: its records stay in this shard.
            bounds.push((lo, addr.saturating_add(1)));
            lo = addr.saturating_add(1);
            load = 0;
        }
    }
    bounds.push((lo, u64::MAX));
    bounds
}

/// Runs Algorithm 1 over the profiles, producing the PMC set — the
/// single-threaded reference path.
pub fn identify(profiles: &[SeqProfile]) -> PmcSet {
    let mut st = JoinState::new();
    st.add_profiles(profiles, &IdentifyOpts::default());
    st.into_set()
}

/// [`identify`], emitting the deduplicated read-index size
/// (`pmc.reads_indexed`) to `tracer` when the join completes.
pub fn identify_traced(profiles: &[SeqProfile], tracer: &sb_obs::Tracer) -> PmcSet {
    let mut st = JoinState::new();
    st.add_profiles(profiles, &IdentifyOpts::default());
    tracer.count(sb_obs::keys::PMC_READS_INDEXED, st.reads_indexed() as u64);
    st.into_set()
}

/// Runs Algorithm 1 with the write×read join sharded by address range
/// across `workers` threads. The result is bit-identical to [`identify`]
/// (same PMC ids, keys, df flags, and pair lists) — property-tested in
/// `tests/shard_equivalence.rs`.
pub fn identify_sharded(profiles: &[SeqProfile], shards: usize, workers: usize) -> PmcSet {
    let mut st = JoinState::new();
    st.add_profiles(profiles, &IdentifyOpts::sharded(shards, workers));
    st.into_set()
}

/// Projects `value` (stored at `base`) onto the `len`-byte window starting
/// at `start` (little-endian), mirroring `Access::project_value`.
fn project(value: u64, base: u64, start: u64, len: u8) -> u64 {
    let shift = (start - base) * 8;
    let raw = value >> shift;
    if len >= 8 {
        raw
    } else {
        raw & ((1u64 << (u64::from(len) * 8)) - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sb_vmm::access::Access;
    use sb_vmm::site;

    fn prof(test: u32, accesses: Vec<(&str, AccessKind, u64, u8, u64)>) -> SeqProfile {
        SeqProfile {
            test,
            accesses: accesses
                .into_iter()
                .enumerate()
                .map(|(i, (name, kind, addr, len, value))| Access {
                    seq: i as u64,
                    thread: 0,
                    site: site!(name),
                    kind,
                    addr,
                    len,
                    value,
                    atomic: false,
                    locks: vec![],
                    rcu_depth: 0,
                })
                .collect(),
            steps: 0,
        }
    }

    use AccessKind::{Read, Write};

    #[test]
    fn write_read_with_different_values_is_a_pmc() {
        let p0 = prof(0, vec![("w:ins", Write, 0x2000, 8, 42)]);
        let p1 = prof(1, vec![("r:ins", Read, 0x2000, 8, 0)]);
        let set = identify(&[p0, p1]);
        assert_eq!(set.len(), 1);
        assert_eq!(set.pmcs[0].pairs, vec![(0, 1)]);
    }

    #[test]
    fn equal_values_are_not_a_pmc() {
        // Condition (4) of §2.2: the write must change what the reader
        // would have seen.
        let p0 = prof(0, vec![("w:ins", Write, 0x2000, 8, 7)]);
        let p1 = prof(1, vec![("r:ins", Read, 0x2000, 8, 7)]);
        assert!(identify(&[p0, p1]).is_empty());
    }

    #[test]
    fn partial_overlap_projects_values() {
        // Write 4 bytes at 0x2000 = DD CC BB AA; read 2 bytes at 0x2002.
        // Overlap bytes are BB AA = 0xAABB vs read value 0xAABB → equal →
        // no PMC despite full-value difference.
        let p0 = prof(0, vec![("w:ins", Write, 0x2000, 4, 0xAABB_CCDD)]);
        let p1 = prof(1, vec![("r:ins", Read, 0x2002, 2, 0xAABB)]);
        assert!(identify(&[p0, p1]).is_empty());
        // Differing overlap → PMC.
        let p2 = prof(2, vec![("r:ins2", Read, 0x2002, 2, 0x0000)]);
        let p0b = prof(0, vec![("w:ins", Write, 0x2000, 4, 0xAABB_CCDD)]);
        assert_eq!(identify(&[p0b, p2]).len(), 1);
    }

    #[test]
    fn same_test_can_pair_with_itself() {
        // Duplicate-input concurrent tests (Table 2, #2/#3/#13).
        let p = prof(
            0,
            vec![
                ("r:ins", Read, 0x2000, 8, 0),
                ("w:ins", Write, 0x2000, 8, 5),
            ],
        );
        let set = identify(&[p]);
        assert_eq!(set.len(), 1);
        assert_eq!(set.pmcs[0].pairs, vec![(0, 0)]);
    }

    #[test]
    fn multiple_pairs_collapse_into_one_pmc() {
        // Two writer tests and two reader tests with identical features map
        // to the same PMC key with several pairs.
        let w0 = prof(0, vec![("w:ins", Write, 0x2000, 8, 5)]);
        let w1 = prof(1, vec![("w:ins", Write, 0x2000, 8, 5)]);
        let r0 = prof(2, vec![("r:ins", Read, 0x2000, 8, 0)]);
        let set = identify(&[w0, w1, r0]);
        assert_eq!(set.len(), 1);
        assert_eq!(set.pmcs[0].pairs.len(), 2);
    }

    #[test]
    fn distinct_values_make_distinct_pmcs() {
        let w0 = prof(0, vec![("w:ins", Write, 0x2000, 8, 5)]);
        let w1 = prof(1, vec![("w:ins", Write, 0x2000, 8, 6)]);
        let r0 = prof(2, vec![("r:ins", Read, 0x2000, 8, 0)]);
        let set = identify(&[w0, w1, r0]);
        assert_eq!(set.len(), 2, "S-FULL distinguishes by value");
    }

    #[test]
    fn df_leader_detection_marks_first_read() {
        let p = prof(
            0,
            vec![
                ("df:first", Read, 0x2000, 8, 9),
                ("df:second", Read, 0x2000, 8, 9),
            ],
        );
        let leaders = df_leaders(&p);
        assert!(leaders.contains(&0));
        assert!(!leaders.contains(&1));
    }

    #[test]
    fn df_leader_requires_no_intervening_write() {
        let p = prof(
            0,
            vec![
                ("df:first", Read, 0x2000, 8, 9),
                ("df:w", Write, 0x2000, 8, 1),
                ("df:second", Read, 0x2000, 8, 9),
            ],
        );
        assert!(df_leaders(&p).is_empty());
    }

    #[test]
    fn df_leader_requires_distinct_instructions_and_equal_values() {
        let same_site = prof(
            0,
            vec![
                ("df:same", Read, 0x2000, 8, 9),
                ("df:same", Read, 0x2000, 8, 9),
            ],
        );
        assert!(df_leaders(&same_site).is_empty());
        let diff_val = prof(
            0,
            vec![
                ("df:a", Read, 0x2000, 8, 9),
                ("df:b", Read, 0x2000, 8, 8),
            ],
        );
        assert!(df_leaders(&diff_val).is_empty());
    }

    /// Canonical view of a PMC set: keys + df flags + sorted pair lists,
    /// order-independent. Incremental joins are compared this way because
    /// their id assignment order differs from a from-scratch rebuild.
    type CanonicalPmc = (PmcKey, bool, Vec<(u32, u32)>);

    fn canonical(set: &PmcSet) -> Vec<CanonicalPmc> {
        let mut v: Vec<_> = set
            .pmcs
            .iter()
            .map(|p| {
                let mut pairs = p.pairs.clone();
                pairs.sort_unstable();
                (p.key, p.df_leader, pairs)
            })
            .collect();
        v.sort_unstable_by_key(|(k, _, _)| (k.w.ins.0, k.w.addr, k.r.ins.0, k.r.addr, k.w.value, k.r.value));
        v
    }

    /// A small synthetic corpus with overlapping ranges, partial overlaps,
    /// df chains, and repeated signatures across several address clusters.
    fn synthetic_profiles(tests: u32) -> Vec<SeqProfile> {
        (0..tests)
            .map(|t| {
                let base = 0x1000 + u64::from(t % 5) * 0x40;
                prof(
                    t,
                    vec![
                        ("w:a", Write, base, 8, u64::from(t) + 1),
                        ("w:b", Write, base + 4, 4, 0xAA00 + u64::from(t)),
                        ("r:a", Read, base, 8, 0),
                        ("r:b", Read, base + 2, 2, u64::from(t % 3)),
                        ("df:1", Read, base + 16, 4, 7),
                        ("df:2", Read, base + 16, 4, 7),
                        ("w:c", Write, base + 16, 4, u64::from(t) * 3),
                        ("r:c", Read, base + 17, 2, 1),
                    ],
                )
            })
            .collect()
    }

    #[test]
    fn sharded_join_is_bit_identical_to_sequential() {
        let profiles = synthetic_profiles(12);
        let seq = identify(&profiles);
        assert!(!seq.is_empty());
        for shards in [2, 3, 4, 7] {
            let par = identify_sharded(&profiles, shards, 4);
            assert_eq!(par, seq, "{shards} shards must match the reference");
        }
    }

    #[test]
    fn single_shard_options_reproduce_identify() {
        let profiles = synthetic_profiles(6);
        assert_eq!(identify_sharded(&profiles, 1, 1), identify(&profiles));
    }

    #[test]
    fn incremental_batches_cover_the_same_universe() {
        let profiles = synthetic_profiles(10);
        let scratch = identify(&profiles);
        let mut st = JoinState::new();
        let opts = IdentifyOpts::sharded(3, 2);
        st.add_profiles(&profiles[..4], &opts);
        st.add_profiles(&profiles[4..7], &opts);
        st.add_profiles(&profiles[7..], &opts);
        assert_eq!(canonical(st.set()), canonical(&scratch));
    }

    #[test]
    fn resume_then_grow_matches_rebuild() {
        let profiles = synthetic_profiles(9);
        let old = identify(&profiles[..5]);
        // Resume from the persisted set + its source profiles, then join
        // only the new profiles.
        let mut st = JoinState::resume(&profiles[..5], old);
        let report = st.add_profiles(&profiles[5..], &IdentifyOpts::sharded(4, 2));
        assert!(report.matches() > 0, "growth must produce new joins");
        assert_eq!(canonical(st.set()), canonical(&identify(&profiles)));
    }

    #[test]
    fn resume_with_no_growth_changes_nothing() {
        // df-free corpus: re-adding already-ingested profiles dedups to zero
        // new records and zero joins.
        let profiles: Vec<SeqProfile> = (0..5)
            .map(|t| {
                prof(
                    t,
                    vec![
                        ("w", Write, 0x2000, 8, u64::from(t) + 1),
                        ("r", Read, 0x2002, 4, 0),
                    ],
                )
            })
            .collect();
        let set = identify(&profiles);
        let mut st = JoinState::resume(&profiles, set.clone());
        let report = st.add_profiles(&profiles, &IdentifyOpts::default());
        assert_eq!(report.matches(), 0);
        assert_eq!(*st.set(), set);

        // With double-fetch chains the leader read intentionally escapes the
        // dedup (`seen_r.insert(sig) || df`), so re-ingest re-joins it — but
        // the folded set must still be unchanged (pairs dedup per PMC).
        let dfp = synthetic_profiles(5);
        let dfset = identify(&dfp);
        let mut st = JoinState::resume(&dfp, dfset.clone());
        st.add_profiles(&dfp, &IdentifyOpts::default());
        assert_eq!(*st.set(), dfset);
    }

    #[test]
    fn join_report_skew_is_max_over_mean() {
        let r = JoinReport {
            shard_matches: vec![30, 10, 20],
        };
        assert_eq!(r.matches(), 60);
        assert!((r.skew() - 1.5).abs() < 1e-12);
        assert_eq!(JoinReport::default().skew(), 0.0);
    }

    #[test]
    fn shard_bounds_partition_all_write_addresses() {
        let profiles = synthetic_profiles(8);
        let mut st = JoinState::new();
        let mut batch = WriteIndex::new();
        st.ingest(&profiles, &mut batch);
        let bounds = shard_bounds(&batch, 4);
        assert!(!bounds.is_empty() && bounds.len() <= 4);
        // Contiguous, non-overlapping, covering [0, u64::MAX).
        assert_eq!(bounds[0].0, 0);
        assert_eq!(bounds.last().expect("bounds").1, u64::MAX);
        for w in bounds.windows(2) {
            assert_eq!(w[0].1, w[1].0);
            assert!(w[0].0 < w[0].1);
        }
    }

    #[test]
    fn pmc_hints_match_sides() {
        let p0 = prof(0, vec![("w:ins", Write, 0x2000, 8, 42)]);
        let p1 = prof(1, vec![("r:ins", Read, 0x2000, 8, 0)]);
        let set = identify(&[p0, p1]);
        let [hw, hr] = set.pmcs[0].hints();
        assert_eq!(hw.kind, Write);
        assert_eq!(hr.kind, Read);
        assert_eq!(hw.site, site!("w:ins"));
        assert_eq!(hr.site, site!("r:ins"));
    }
}
