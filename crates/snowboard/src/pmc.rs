//! PMC identification — Algorithm 1 of the paper (§4.2).
//!
//! All profiled shared accesses are indexed by memory range in an ordered
//! nested index (outer order: start address; nested: range length; then
//! instruction — §4.2.1). Every (write, read) pair with overlapping ranges
//! whose values *differ over the overlap* is a potential memory
//! communication. A PMC is keyed by the features of both accesses
//! (instruction, memory range, value); multiple test pairs may map to the
//! same PMC key (Algorithm 1 line 15).

use std::collections::{BTreeMap, HashMap, HashSet};

use serde::{Deserialize, Serialize};

use sb_vmm::access::{range_overlap, AccessKind};
use sb_vmm::sched::HintAccess;
use sb_vmm::site::Site;

use crate::profile::SeqProfile;

/// One side (read or write) of a PMC: the features Algorithm 1 collects.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct SideKey {
    /// Instruction identity (`ins` in Table 1).
    pub ins: Site,
    /// Memory-range start (`addr`).
    pub addr: u64,
    /// Memory-range length in bytes (`byte`).
    pub len: u8,
    /// Value read/written (`value`), projected to the access's own range.
    pub value: u64,
}

/// A PMC key: the write side and the read side.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct PmcKey {
    /// The writer's access features.
    pub w: SideKey,
    /// The reader's access features.
    pub r: SideKey,
}

/// Identifier of a PMC within a [`PmcSet`].
pub type PmcId = u32;

/// A PMC plus the sequential-test pairs that exhibit it.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Pmc {
    /// Feature key.
    pub key: PmcKey,
    /// True when the read access is the first of a double fetch
    /// (`df_leader`, §4.3).
    pub df_leader: bool,
    /// (writer test, reader test) pairs exhibiting this PMC, deduplicated.
    pub pairs: Vec<(u32, u32)>,
}

impl Pmc {
    /// The scheduler hint patterns for this PMC (write side, read side).
    pub fn hints(&self) -> [HintAccess; 2] {
        [
            HintAccess {
                site: self.key.w.ins,
                kind: AccessKind::Write,
                addr: self.key.w.addr,
                len: self.key.w.len,
            },
            HintAccess {
                site: self.key.r.ins,
                kind: AccessKind::Read,
                addr: self.key.r.addr,
                len: self.key.r.len,
            },
        ]
    }
}

/// The identified PMC universe for one corpus.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct PmcSet {
    /// All PMCs; a [`PmcId`] is an index into this vector.
    pub pmcs: Vec<Pmc>,
}

impl PmcSet {
    /// Number of identified PMCs.
    pub fn len(&self) -> usize {
        self.pmcs.len()
    }

    /// True if no PMCs were identified.
    pub fn is_empty(&self) -> bool {
        self.pmcs.is_empty()
    }

    /// The PMC with id `id`.
    pub fn get(&self, id: PmcId) -> &Pmc {
        &self.pmcs[id as usize]
    }
}

/// One deduplicated access record used during identification.
#[derive(Copy, Clone, Debug)]
struct Rec {
    test: u32,
    ins: Site,
    addr: u64,
    len: u8,
    value: u64,
    df_leader: bool,
}

/// Limits stored pairs per PMC; the paper stores all, but popular PMCs
/// (e.g. allocator counters) would otherwise dominate memory without
/// adding information — any pair is an equally valid exemplar source.
const MAX_PAIRS_PER_PMC: usize = 32;

/// Computes, per profile, the trace indices (into `accesses`) of df_leader
/// reads: a read followed by a later read of the same range by a
/// *different* instruction, with no intervening write to that range and the
/// same value (§4.3, S-CH-DOUBLE).
pub fn df_leaders(profile: &SeqProfile) -> HashSet<usize> {
    let mut leaders = HashSet::new();
    // Per exact range: (index, site, value) of the last read, and whether a
    // write intervened since.
    let mut last_read: HashMap<(u64, u8), (usize, Site, u64)> = HashMap::new();
    for (i, a) in profile.accesses.iter().enumerate() {
        match a.kind {
            AccessKind::Write => {
                // A write invalidates pending first-reads on any
                // overlapping range.
                last_read.retain(|(addr, len), _| {
                    range_overlap(*addr, *len, a.addr, a.len).is_none()
                });
            }
            AccessKind::Read => {
                let key = (a.addr, a.len);
                if let Some((first_idx, first_site, first_val)) = last_read.get(&key).copied() {
                    if first_site != a.site && first_val == a.value {
                        leaders.insert(first_idx);
                    }
                }
                last_read.insert(key, (i, a.site, a.value));
            }
        }
    }
    leaders
}

/// Runs Algorithm 1 over the profiles, producing the PMC set.
pub fn identify(profiles: &[SeqProfile]) -> PmcSet {
    // Index all accesses (Algorithm 1 lines 1–5), deduplicating identical
    // (test, ins, addr, len, value) records: repeated identical accesses by
    // one test add no new PMCs.
    let mut writes: BTreeMap<u64, BTreeMap<u8, Vec<Rec>>> = BTreeMap::new();
    let mut reads: Vec<Rec> = Vec::new();
    let mut seen_w: HashSet<(u32, u64, u64, u8, u64)> = HashSet::new();
    let mut seen_r: HashSet<(u32, u64, u64, u8, u64)> = HashSet::new();
    for p in profiles {
        let leaders = df_leaders(p);
        for (i, a) in p.accesses.iter().enumerate() {
            let sig = (p.test, a.site.0, a.addr, a.len, a.value);
            match a.kind {
                AccessKind::Write => {
                    if seen_w.insert(sig) {
                        writes.entry(a.addr).or_default().entry(a.len).or_default().push(Rec {
                            test: p.test,
                            ins: a.site,
                            addr: a.addr,
                            len: a.len,
                            value: a.value,
                            df_leader: false,
                        });
                    }
                }
                AccessKind::Read => {
                    let df = leaders.contains(&i);
                    // A df_leader read and a plain read with the same
                    // signature must both survive; fold df into the dedup
                    // signature's value slot via a separate set entry.
                    if seen_r.insert(sig) || df {
                        reads.push(Rec {
                            test: p.test,
                            ins: a.site,
                            addr: a.addr,
                            len: a.len,
                            value: a.value,
                            df_leader: df,
                        });
                    }
                }
            }
        }
    }

    // Scan overlaps (lines 6–15): for each read, range-query the ordered
    // nested write index for starts in [addr-7, end).
    let mut set = PmcSet::default();
    let mut index: HashMap<PmcKey, PmcId> = HashMap::new();
    let mut pair_seen: HashMap<PmcId, HashSet<(u32, u32)>> = HashMap::new();
    for r in &reads {
        let lo = r.addr.saturating_sub(7);
        let hi = r.addr + u64::from(r.len); // Exclusive upper bound on write starts.
        for (_wa, by_len) in writes.range(lo..hi) {
            for (_wl, recs) in by_len.iter() {
                for w in recs {
                    let Some((ostart, olen)) = range_overlap(w.addr, w.len, r.addr, r.len) else {
                        continue;
                    };
                    // project_value (lines 9–10): compare over the overlap.
                    let wv = project(w.value, w.addr, ostart, olen);
                    let rv = project(r.value, r.addr, ostart, olen);
                    if wv == rv {
                        continue;
                    }
                    let key = PmcKey {
                        w: SideKey {
                            ins: w.ins,
                            addr: w.addr,
                            len: w.len,
                            value: w.value,
                        },
                        r: SideKey {
                            ins: r.ins,
                            addr: r.addr,
                            len: r.len,
                            value: r.value,
                        },
                    };
                    let id = *index.entry(key).or_insert_with(|| {
                        set.pmcs.push(Pmc {
                            key,
                            df_leader: r.df_leader,
                            pairs: Vec::new(),
                        });
                        (set.pmcs.len() - 1) as PmcId
                    });
                    let pmc = &mut set.pmcs[id as usize];
                    pmc.df_leader |= r.df_leader;
                    if pmc.pairs.len() < MAX_PAIRS_PER_PMC {
                        let pair = (w.test, r.test);
                        if pair_seen.entry(id).or_default().insert(pair) {
                            pmc.pairs.push(pair);
                        }
                    }
                }
            }
        }
    }
    set
}

/// Projects `value` (stored at `base`) onto the `len`-byte window starting
/// at `start` (little-endian), mirroring `Access::project_value`.
fn project(value: u64, base: u64, start: u64, len: u8) -> u64 {
    let shift = (start - base) * 8;
    let raw = value >> shift;
    if len >= 8 {
        raw
    } else {
        raw & ((1u64 << (u64::from(len) * 8)) - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sb_vmm::access::Access;
    use sb_vmm::site;

    fn prof(test: u32, accesses: Vec<(&str, AccessKind, u64, u8, u64)>) -> SeqProfile {
        SeqProfile {
            test,
            accesses: accesses
                .into_iter()
                .enumerate()
                .map(|(i, (name, kind, addr, len, value))| Access {
                    seq: i as u64,
                    thread: 0,
                    site: site!(name),
                    kind,
                    addr,
                    len,
                    value,
                    atomic: false,
                    locks: vec![],
                    rcu_depth: 0,
                })
                .collect(),
            steps: 0,
        }
    }

    use AccessKind::{Read, Write};

    #[test]
    fn write_read_with_different_values_is_a_pmc() {
        let p0 = prof(0, vec![("w:ins", Write, 0x2000, 8, 42)]);
        let p1 = prof(1, vec![("r:ins", Read, 0x2000, 8, 0)]);
        let set = identify(&[p0, p1]);
        assert_eq!(set.len(), 1);
        assert_eq!(set.pmcs[0].pairs, vec![(0, 1)]);
    }

    #[test]
    fn equal_values_are_not_a_pmc() {
        // Condition (4) of §2.2: the write must change what the reader
        // would have seen.
        let p0 = prof(0, vec![("w:ins", Write, 0x2000, 8, 7)]);
        let p1 = prof(1, vec![("r:ins", Read, 0x2000, 8, 7)]);
        assert!(identify(&[p0, p1]).is_empty());
    }

    #[test]
    fn partial_overlap_projects_values() {
        // Write 4 bytes at 0x2000 = DD CC BB AA; read 2 bytes at 0x2002.
        // Overlap bytes are BB AA = 0xAABB vs read value 0xAABB → equal →
        // no PMC despite full-value difference.
        let p0 = prof(0, vec![("w:ins", Write, 0x2000, 4, 0xAABB_CCDD)]);
        let p1 = prof(1, vec![("r:ins", Read, 0x2002, 2, 0xAABB)]);
        assert!(identify(&[p0, p1]).is_empty());
        // Differing overlap → PMC.
        let p2 = prof(2, vec![("r:ins2", Read, 0x2002, 2, 0x0000)]);
        let p0b = prof(0, vec![("w:ins", Write, 0x2000, 4, 0xAABB_CCDD)]);
        assert_eq!(identify(&[p0b, p2]).len(), 1);
    }

    #[test]
    fn same_test_can_pair_with_itself() {
        // Duplicate-input concurrent tests (Table 2, #2/#3/#13).
        let p = prof(
            0,
            vec![
                ("r:ins", Read, 0x2000, 8, 0),
                ("w:ins", Write, 0x2000, 8, 5),
            ],
        );
        let set = identify(&[p]);
        assert_eq!(set.len(), 1);
        assert_eq!(set.pmcs[0].pairs, vec![(0, 0)]);
    }

    #[test]
    fn multiple_pairs_collapse_into_one_pmc() {
        // Two writer tests and two reader tests with identical features map
        // to the same PMC key with several pairs.
        let w0 = prof(0, vec![("w:ins", Write, 0x2000, 8, 5)]);
        let w1 = prof(1, vec![("w:ins", Write, 0x2000, 8, 5)]);
        let r0 = prof(2, vec![("r:ins", Read, 0x2000, 8, 0)]);
        let set = identify(&[w0, w1, r0]);
        assert_eq!(set.len(), 1);
        assert_eq!(set.pmcs[0].pairs.len(), 2);
    }

    #[test]
    fn distinct_values_make_distinct_pmcs() {
        let w0 = prof(0, vec![("w:ins", Write, 0x2000, 8, 5)]);
        let w1 = prof(1, vec![("w:ins", Write, 0x2000, 8, 6)]);
        let r0 = prof(2, vec![("r:ins", Read, 0x2000, 8, 0)]);
        let set = identify(&[w0, w1, r0]);
        assert_eq!(set.len(), 2, "S-FULL distinguishes by value");
    }

    #[test]
    fn df_leader_detection_marks_first_read() {
        let p = prof(
            0,
            vec![
                ("df:first", Read, 0x2000, 8, 9),
                ("df:second", Read, 0x2000, 8, 9),
            ],
        );
        let leaders = df_leaders(&p);
        assert!(leaders.contains(&0));
        assert!(!leaders.contains(&1));
    }

    #[test]
    fn df_leader_requires_no_intervening_write() {
        let p = prof(
            0,
            vec![
                ("df:first", Read, 0x2000, 8, 9),
                ("df:w", Write, 0x2000, 8, 1),
                ("df:second", Read, 0x2000, 8, 9),
            ],
        );
        assert!(df_leaders(&p).is_empty());
    }

    #[test]
    fn df_leader_requires_distinct_instructions_and_equal_values() {
        let same_site = prof(
            0,
            vec![
                ("df:same", Read, 0x2000, 8, 9),
                ("df:same", Read, 0x2000, 8, 9),
            ],
        );
        assert!(df_leaders(&same_site).is_empty());
        let diff_val = prof(
            0,
            vec![
                ("df:a", Read, 0x2000, 8, 9),
                ("df:b", Read, 0x2000, 8, 8),
            ],
        );
        assert!(df_leaders(&diff_val).is_empty());
    }

    #[test]
    fn pmc_hints_match_sides() {
        let p0 = prof(0, vec![("w:ins", Write, 0x2000, 8, 42)]);
        let p1 = prof(1, vec![("r:ins", Read, 0x2000, 8, 0)]);
        let set = identify(&[p0, p1]);
        let [hw, hr] = set.pmcs[0].hints();
        assert_eq!(hw.kind, Write);
        assert_eq!(hr.kind, Read);
        assert_eq!(hw.site, site!("w:ins"));
        assert_eq!(hr.site, site!("r:ins"));
    }
}
