//! Finding triage against the planted-bug registry.
//!
//! The paper's authors spent ~80 person-hours manually inspecting detector
//! reports to separate real bugs from benign races (§5.2); our ground-truth
//! registry plays that role mechanically: detector findings are matched to
//! Table 2 issue ids by console signature or racing-function pair.

use serde::{Deserialize, Serialize};

use sb_detect::Finding;
use sb_kernel::bugs;

/// A distinct issue discovered by a campaign.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct IssueRecord {
    /// Ground-truth Table 2 id, when the finding matches a planted issue.
    pub bug_id: Option<u8>,
    /// Deduplication key of the underlying finding.
    pub key: String,
    /// An example finding.
    pub example: Finding,
    /// How many concurrent tests had been executed when it was found.
    pub found_after_tests: usize,
    /// Cumulative engine steps when it was found (simulated time).
    pub found_after_steps: u64,
}

impl IssueRecord {
    /// Simulated days-to-find, given a steps-per-day calibration.
    pub fn days(&self, steps_per_day: u64) -> f64 {
        self.found_after_steps as f64 / steps_per_day as f64
    }

    /// True when the matched registry entry is harmful.
    pub fn harmful(&self) -> bool {
        self.bug_id
            .and_then(bugs::by_id)
            .map(|b| b.harmful)
            .unwrap_or(false)
    }
}

/// Matches one finding against the registry.
pub fn triage(f: &Finding) -> Option<u8> {
    match f {
        Finding::KernelPanic { msg } => bugs::match_console(msg),
        Finding::ConsoleError { line } => bugs::match_console(line),
        Finding::DataRace {
            write_site,
            other_site,
            ..
        } => bugs::match_race(write_site, other_site),
        Finding::Deadlock | Finding::Livelock => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn panic_findings_triage_by_console() {
        let f = Finding::KernelPanic {
            msg: "BUG: kernel NULL pointer dereference, address: 0x10 at bh_lock_sock:acquire"
                .into(),
        };
        assert_eq!(triage(&f), Some(12));
    }

    #[test]
    fn race_findings_triage_by_function_pair() {
        let f = Finding::DataRace {
            write_site: "uart_do_autoconfig:set".into(),
            other_site: "tty_port_open:flags_read".into(),
            addr: 0x40,
        };
        assert_eq!(triage(&f), Some(14));
    }

    #[test]
    fn unknown_findings_triage_to_none() {
        let f = Finding::DataRace {
            write_site: "mystery:w".into(),
            other_site: "mystery:r".into(),
            addr: 0,
        };
        assert_eq!(triage(&f), None);
        assert_eq!(triage(&Finding::Deadlock), None);
    }

    #[test]
    fn issue_record_day_conversion() {
        let rec = IssueRecord {
            bug_id: Some(13),
            key: "k".into(),
            example: Finding::Deadlock,
            found_after_tests: 10,
            found_after_steps: 500_000,
        };
        assert!((rec.days(1_000_000) - 0.5).abs() < 1e-9);
        assert!(!rec.harmful(), "#13 is benign");
    }
}
