//! The shared error model for fault-tolerant campaign execution.
//!
//! §4.4 runs concurrent tests for days across a worker fleet; a campaign of
//! that shape must treat per-job failure as data, not as a reason to die.
//! Every failure mode along the campaign pipeline is an [`Error`] variant,
//! and the campaign driver classifies each as *retryable* (transient — worth
//! a reseeded retry) or *permanent* (quarantine the PMC and move on).
//!
//! `thiserror` would generate these impls; it is written by hand so the
//! crate keeps its zero-new-dependencies footprint.

use std::path::PathBuf;
use std::time::Duration;

use sb_vmm::exec::ExecError;

use crate::pmc::PmcId;

/// Result alias for campaign-pipeline operations.
pub type SbResult<T> = Result<T, Error>;

/// A typed campaign-pipeline failure.
#[derive(Debug)]
pub enum Error {
    /// A PMC has no recorded test pairs, so no concurrent test can be built
    /// from it (identification should never emit one, but a corrupt or
    /// hand-built set can).
    EmptyPmc {
        /// The offending PMC.
        pmc: PmcId,
    },
    /// A test pair references a corpus index that does not exist.
    BadTestId {
        /// The missing corpus test id.
        test: u32,
        /// Size of the corpus it was resolved against.
        corpus: usize,
    },
    /// The execution machinery failed (dead vCPU worker, bad job shape).
    Exec {
        /// The underlying executor error.
        source: ExecError,
    },
    /// A campaign worker panicked while running a job.
    WorkerPanic {
        /// Captured panic payload.
        message: String,
    },
    /// The work queue closed before the job could be enqueued.
    QueueClosed,
    /// The per-job watchdog expired: the job overran its step budget or
    /// wall-clock deadline and is classified as a hang.
    Hang {
        /// Engine steps consumed when the watchdog fired.
        steps: u64,
        /// Wall-clock time elapsed when the watchdog fired.
        elapsed: Duration,
        /// Trials completed before the watchdog fired.
        trials_run: u32,
        /// What tripped: `"steps"`, `"deadline"`, or `"forced"`.
        tripped: &'static str,
    },
    /// A fault-injection hook forced this failure (see
    /// [`crate::fault::FaultPlan`]); always transient so retry paths can be
    /// exercised deterministically.
    Injected {
        /// Attempt index the fault fired on.
        attempt: u32,
    },
    /// A checkpoint file could not be read or written.
    CheckpointIo {
        /// The checkpoint path.
        path: PathBuf,
        /// `"read"`, `"write"`, or `"rename"`.
        op: &'static str,
        /// The underlying I/O error.
        source: std::io::Error,
    },
    /// A checkpoint file exists but does not parse or has the wrong shape.
    CheckpointFormat {
        /// The checkpoint path.
        path: PathBuf,
        /// What was wrong.
        detail: String,
    },
    /// A checkpoint is valid but belongs to a different campaign (seed or
    /// exemplar list mismatch), so resuming from it would silently change
    /// results.
    ResumeMismatch {
        /// What differed.
        detail: String,
    },
    /// The process supervisor itself failed (a worker could not be spawned,
    /// a stdout pipe could not be set up). Campaign-level: per-worker
    /// crashes are quarantine data, not errors.
    Supervise {
        /// What went wrong.
        detail: String,
    },
    /// The fleet fabric itself failed (the coordinator could not listen, a
    /// worker exhausted its reconnect budget, a handshake was rejected).
    /// Campaign-level for the same reason as [`Error::Supervise`]:
    /// individual worker deaths are quarantine data, not errors.
    Fleet {
        /// What went wrong.
        detail: String,
    },
}

impl Error {
    /// True if a retry with a fresh seed could plausibly succeed.
    ///
    /// Panics, dead executors, and injected faults are transient: the job
    /// itself may be fine and the failure environmental. Structural
    /// problems (empty PMC, bad test id, hang, checkpoint trouble) are
    /// permanent — retrying would only burn budget.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            Error::WorkerPanic { .. } | Error::Exec { .. } | Error::Injected { .. }
        )
    }

    /// The quarantine classification of this error.
    pub fn failure_kind(&self) -> FailureKind {
        match self {
            Error::EmptyPmc { .. } => FailureKind::EmptyPmc,
            Error::BadTestId { .. } => FailureKind::BadTest,
            Error::Exec { .. } => FailureKind::Exec,
            Error::WorkerPanic { .. } => FailureKind::Panic,
            Error::QueueClosed => FailureKind::Rejected,
            Error::Hang { .. } => FailureKind::Hang,
            Error::Injected { .. } => FailureKind::Injected,
            Error::CheckpointIo { .. }
            | Error::CheckpointFormat { .. }
            | Error::ResumeMismatch { .. } => FailureKind::Checkpoint,
            Error::Supervise { .. } | Error::Fleet { .. } => FailureKind::Crash,
        }
    }

    /// Renders this error and its source chain, outermost first.
    pub fn chain(&self) -> Vec<String> {
        let mut out = vec![self.to_string()];
        let mut cur: Option<&(dyn std::error::Error + 'static)> =
            std::error::Error::source(self);
        while let Some(e) = cur {
            out.push(e.to_string());
            cur = e.source();
        }
        out
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::EmptyPmc { pmc } => write!(f, "PMC {pmc} has no test pairs"),
            Error::BadTestId { test, corpus } => {
                write!(f, "test id {test} out of range for corpus of {corpus}")
            }
            Error::Exec { .. } => write!(f, "execution machinery failed"),
            Error::WorkerPanic { message } => write!(f, "campaign worker panicked: {message}"),
            Error::QueueClosed => write!(f, "work queue closed before the job was enqueued"),
            Error::Hang {
                steps,
                elapsed,
                trials_run,
                tripped,
            } => write!(
                f,
                "job hang: watchdog tripped on {tripped} after {trials_run} trials, \
                 {steps} steps, {elapsed:?}"
            ),
            Error::Injected { attempt } => {
                write!(f, "injected transient fault (attempt {attempt})")
            }
            Error::CheckpointIo { path, op, .. } => {
                write!(f, "checkpoint {op} failed for {}", path.display())
            }
            Error::CheckpointFormat { path, detail } => {
                write!(f, "corrupt checkpoint {}: {detail}", path.display())
            }
            Error::ResumeMismatch { detail } => {
                write!(f, "checkpoint belongs to a different campaign: {detail}")
            }
            Error::Supervise { detail } => {
                write!(f, "process supervisor failed: {detail}")
            }
            Error::Fleet { detail } => {
                write!(f, "fleet fabric failed: {detail}")
            }
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Exec { source } => Some(source),
            Error::CheckpointIo { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<ExecError> for Error {
    fn from(source: ExecError) -> Self {
        Error::Exec { source }
    }
}

impl From<crate::protocol::ProtocolError> for Error {
    fn from(source: crate::protocol::ProtocolError) -> Self {
        Error::Fleet { detail: source.to_string() }
    }
}

/// Compact classification of a quarantined job's failure, stable across
/// checkpoint round trips.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum FailureKind {
    /// PMC with no test pairs.
    EmptyPmc,
    /// Test pair referenced a missing corpus entry.
    BadTest,
    /// Execution machinery failure.
    Exec,
    /// Worker panic.
    Panic,
    /// Queue closed before enqueue; the job never ran and is *not*
    /// persisted to checkpoints, so a resumed campaign retries it.
    Rejected,
    /// Watchdog-detected hang.
    Hang,
    /// Fault-injection hook.
    Injected,
    /// Checkpoint I/O or format trouble.
    Checkpoint,
    /// The worker *process* running the job died (nonzero exit, signal, or
    /// heartbeat-timeout kill) and the job's crash budget is exhausted.
    Crash,
    /// The worker process crash-looped and its shard was abandoned; this
    /// job never got a verdict. Like [`FailureKind::Rejected`], gave-up
    /// records are *not* persisted to checkpoints — a resumed campaign
    /// retries the shard.
    GaveUp,
}

impl FailureKind {
    /// Stable lowercase tag used in checkpoints and reports.
    pub fn tag(self) -> &'static str {
        match self {
            FailureKind::EmptyPmc => "empty-pmc",
            FailureKind::BadTest => "bad-test",
            FailureKind::Exec => "exec",
            FailureKind::Panic => "panic",
            FailureKind::Rejected => "rejected",
            FailureKind::Hang => "hang",
            FailureKind::Injected => "injected",
            FailureKind::Checkpoint => "checkpoint",
            FailureKind::Crash => "crash",
            FailureKind::GaveUp => "gave-up",
        }
    }

    /// Parses a checkpoint tag back into a kind.
    pub fn from_tag(tag: &str) -> Option<Self> {
        Some(match tag {
            "empty-pmc" => FailureKind::EmptyPmc,
            "bad-test" => FailureKind::BadTest,
            "exec" => FailureKind::Exec,
            "panic" => FailureKind::Panic,
            "rejected" => FailureKind::Rejected,
            "hang" => FailureKind::Hang,
            "injected" => FailureKind::Injected,
            "checkpoint" => FailureKind::Checkpoint,
            "crash" => FailureKind::Crash,
            "gave-up" => FailureKind::GaveUp,
            _ => return None,
        })
    }
}

impl std::fmt::Display for FailureKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.tag())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_chain_render_sources() {
        let e = Error::CheckpointIo {
            path: PathBuf::from("/tmp/cp.json"),
            op: "write",
            source: std::io::Error::new(std::io::ErrorKind::PermissionDenied, "denied"),
        };
        let chain = e.chain();
        assert_eq!(chain.len(), 2);
        assert!(chain[0].contains("checkpoint write failed"));
        assert!(chain[1].contains("denied"));
    }

    #[test]
    fn retryability_classification() {
        assert!(Error::WorkerPanic { message: "x".into() }.is_retryable());
        assert!(Error::Injected { attempt: 0 }.is_retryable());
        assert!(Error::Exec {
            source: ExecError::WorkerUnavailable { vcpu: 1 }
        }
        .is_retryable());
        assert!(!Error::EmptyPmc { pmc: 3 }.is_retryable());
        assert!(!Error::Hang {
            steps: 1,
            elapsed: Duration::ZERO,
            trials_run: 0,
            tripped: "steps"
        }
        .is_retryable());
        assert!(!Error::QueueClosed.is_retryable());
    }

    #[test]
    fn failure_kind_tags_round_trip() {
        for kind in [
            FailureKind::EmptyPmc,
            FailureKind::BadTest,
            FailureKind::Exec,
            FailureKind::Panic,
            FailureKind::Rejected,
            FailureKind::Hang,
            FailureKind::Injected,
            FailureKind::Checkpoint,
            FailureKind::Crash,
            FailureKind::GaveUp,
        ] {
            assert_eq!(FailureKind::from_tag(kind.tag()), Some(kind));
        }
        assert_eq!(FailureKind::from_tag("nope"), None);
    }
}
