//! Retry policy for transient campaign-job failures.
//!
//! Retries must not silently change what the campaign tests: attempt 0 of
//! every job uses exactly the seed the pre-fault-tolerance campaign used,
//! so a clean run remains bit-identical to older builds. Only attempts ≥ 1
//! derive a fresh seed — deterministically from `(seed, attempt)`, so a
//! retried campaign replays the same way every time.

use std::time::Duration;

/// How a campaign retries jobs that fail with a retryable error
/// (see [`crate::error::Error::is_retryable`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per job, including the first (so `1` = no retries).
    pub max_attempts: u32,
    /// Backoff before the first retry.
    pub base_backoff: Duration,
    /// Ceiling on the exponential backoff.
    pub max_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(500),
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries.
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            ..RetryPolicy::default()
        }
    }

    /// Backoff to sleep before `attempt` (attempt 1 is the first retry).
    /// Doubles per attempt, clamped at `max_backoff`; attempt 0 never
    /// sleeps.
    pub fn backoff(&self, attempt: u32) -> Duration {
        if attempt == 0 {
            return Duration::ZERO;
        }
        let shift = (attempt - 1).min(20);
        let grown = self
            .base_backoff
            .saturating_mul(1u32.checked_shl(shift).unwrap_or(u32::MAX));
        grown.min(self.max_backoff)
    }

    /// [`RetryPolicy::backoff`], counting each actual retry (attempt ≥ 1)
    /// as `campaign.retries` on `tracer`.
    pub fn backoff_traced(&self, attempt: u32, tracer: &sb_obs::Tracer) -> Duration {
        if attempt > 0 {
            tracer.count(sb_obs::keys::RETRIES, 1);
        }
        self.backoff(attempt)
    }
}

/// Derives the trial seed for a retry attempt.
///
/// Attempt 0 returns `seed` unchanged — the invariant that keeps clean
/// campaigns bit-identical to pre-retry builds. Later attempts mix the
/// attempt index in with splitmix64, the same finalizer the corpus
/// generator uses, so retries explore fresh schedules without correlating
/// across neighboring jobs.
pub fn reseed(seed: u64, attempt: u32) -> u64 {
    if attempt == 0 {
        return seed;
    }
    let mut z = seed
        .wrapping_add(u64::from(attempt).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attempt_zero_keeps_the_seed() {
        for seed in [0, 1, 42, u64::MAX] {
            assert_eq!(reseed(seed, 0), seed);
        }
    }

    #[test]
    fn retries_get_distinct_deterministic_seeds() {
        let s0 = reseed(1234, 0);
        let s1 = reseed(1234, 1);
        let s2 = reseed(1234, 2);
        assert_ne!(s0, s1);
        assert_ne!(s1, s2);
        assert_ne!(s0, s2);
        assert_eq!(s1, reseed(1234, 1), "reseed must be a pure function");
    }

    #[test]
    fn neighboring_jobs_do_not_collide_on_retry() {
        // Job seeds are seed + i * GOLDEN; a naive seed+attempt reseed would
        // make job i attempt 1 collide with job i+1 attempt 0.
        let golden = 0x9E37_79B9_7F4A_7C15u64;
        let job0 = 77u64;
        let job1 = job0.wrapping_add(golden);
        assert_ne!(reseed(job0, 1), reseed(job1, 0));
    }

    #[test]
    fn backoff_doubles_and_clamps() {
        let p = RetryPolicy {
            max_attempts: 5,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(35),
        };
        assert_eq!(p.backoff(0), Duration::ZERO);
        assert_eq!(p.backoff(1), Duration::from_millis(10));
        assert_eq!(p.backoff(2), Duration::from_millis(20));
        assert_eq!(p.backoff(3), Duration::from_millis(35));
        assert_eq!(p.backoff(30), Duration::from_millis(35));
    }

    #[test]
    fn none_policy_is_single_attempt() {
        assert_eq!(RetryPolicy::none().max_attempts, 1);
    }

    #[test]
    fn traced_backoff_counts_only_actual_retries() {
        let (tracer, sink) = sb_obs::Tracer::memory();
        let p = RetryPolicy::default();
        assert_eq!(p.backoff_traced(0, &tracer), Duration::ZERO);
        assert_eq!(p.backoff_traced(1, &tracer), p.backoff(1));
        let _ = p.backoff_traced(2, &tracer);
        assert_eq!(sink.lines().len(), 2, "attempt 0 is not a retry");
    }
}
