//! Baseline concurrent-test generation: Random pairing and Duplicate
//! pairing (§5.3.1, bottom of Table 3).
//!
//! Both baselines skip PMC analysis entirely: Random pairing draws two
//! sequential tests at random; Duplicate pairing runs one test against an
//! identical copy of itself. Without a scheduling hint, trials explore
//! interleavings with an unguided random scheduler.

use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

use sb_kernel::{BootedKernel, Program};
use sb_vmm::sched::RandomSched;
use sb_vmm::Executor;

use crate::campaign::{aggregate, CampaignReport, PmcTestOutcome};

/// The two baseline pairing policies.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Pairing {
    /// Two sequential tests drawn independently at random.
    Random,
    /// One test paired with an identical copy of itself.
    Duplicate,
}

impl std::fmt::Display for Pairing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Pairing::Random => write!(f, "Random pairing"),
            Pairing::Duplicate => write!(f, "Duplicate pairing"),
        }
    }
}

/// Runs `n_tests` baseline concurrent tests with `trials` interleavings
/// each.
#[allow(clippy::too_many_arguments)]
pub fn run_baseline(
    booted: &BootedKernel,
    corpus: &[Program],
    pairing: Pairing,
    n_tests: usize,
    trials: u32,
    seed: u64,
    workers: usize,
    stop_on_finding: bool,
) -> CampaignReport {
    assert!(!corpus.is_empty(), "baseline needs a corpus");
    let mut rng = StdRng::seed_from_u64(seed);
    let pairs: Vec<(u32, u32)> = (0..n_tests)
        .map(|_| {
            let a = rng.gen_range(0..corpus.len()) as u32;
            let b = match pairing {
                Pairing::Random => rng.gen_range(0..corpus.len()) as u32,
                Pairing::Duplicate => a,
            };
            (a, b)
        })
        .collect();
    let outcomes: Vec<PmcTestOutcome> = sb_queue::run_jobs(
        pairs.into_iter().enumerate().collect(),
        workers,
        || Executor::new(2),
        |exec, (i, pair)| {
            let test_seed = seed.wrapping_add((i as u64).wrapping_mul(0xA24B_AED4_963E_E407));
            run_baseline_test(exec, booted, corpus, pair, test_seed, trials, stop_on_finding)
        },
    );
    aggregate(outcomes)
}

fn run_baseline_test(
    exec: &mut Executor,
    booted: &BootedKernel,
    corpus: &[Program],
    pair: (u32, u32),
    seed: u64,
    trials: u32,
    stop_on_finding: bool,
) -> PmcTestOutcome {
    let wprog = corpus[pair.0 as usize].clone();
    let rprog = corpus[pair.1 as usize].clone();
    let mut out = PmcTestOutcome {
        pmc: None,
        pair,
        trials_run: 0,
        exercised: false,
        findings: Vec::new(),
        steps: 0,
        first_finding_trial: None,
        repro_schedule: None,
        attempts: 1,
    };
    let mut dedup = std::collections::HashSet::new();
    for trial in 0..trials {
        let mut sched = RandomSched::new(seed.wrapping_add(u64::from(trial)), 0.005);
        let r = exec.run(
            booted.snapshot.clone(),
            vec![
                booted.kernel.process_job(wprog.clone()),
                booted.kernel.process_job(rprog.clone()),
            ],
            &mut sched,
        );
        out.trials_run += 1;
        out.steps += r.report.steps;
        let mut found_new = false;
        for f in sb_detect::analyze(&r.report) {
            if dedup.insert(f.dedup_key()) {
                out.findings.push(f);
                found_new = true;
            }
        }
        if found_new && out.first_finding_trial.is_none() {
            out.first_finding_trial = Some(trial);
        }
        if found_new && stop_on_finding {
            break;
        }
    }
    out
}
