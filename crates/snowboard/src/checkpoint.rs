//! Campaign checkpointing: periodic progress snapshots and resume.
//!
//! Long campaigns (§4.4 runs for days) must survive a killed process.
//! The campaign driver periodically serializes completed work — which PMC
//! jobs finished, their outcomes, and the quarantine set — to a JSON file
//! written atomically (temp file + rename), so the file on disk is always a
//! complete snapshot. `run_campaign` can then resume: already-completed
//! jobs are replayed from the checkpoint instead of re-executed, and the
//! final report aggregates identically to an uninterrupted run.
//!
//! Jobs quarantined as `rejected` (queue closed before enqueue — they never
//! ran) are deliberately *not* persisted: a resumed campaign should retry
//! them rather than inherit the dead queue's verdict.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use sb_detect::Finding;
use sb_vmm::replay::Schedule;

use crate::campaign::{PmcTestOutcome, QuarantineRecord};
use crate::error::{Error, FailureKind, SbResult};
use crate::json::{self, Json};
use crate::pmc::PmcId;

/// Current checkpoint format version.
const VERSION: u64 = 1;

/// When and where to checkpoint a campaign.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CheckpointCfg {
    /// Checkpoint file path.
    pub path: PathBuf,
    /// Write a snapshot after every `every` completed jobs (and always once
    /// more at campaign end).
    pub every: usize,
}

impl CheckpointCfg {
    /// Checkpoint to `path` after every completed job.
    pub fn new(path: impl Into<PathBuf>) -> Self {
        CheckpointCfg {
            path: path.into(),
            every: 1,
        }
    }
}

/// A campaign progress snapshot.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Checkpoint {
    /// The campaign base seed (resume refuses a mismatch).
    pub seed: u64,
    /// The budgeted exemplar list in test order (resume refuses a mismatch).
    pub exemplars: Vec<PmcId>,
    /// Completed job outcomes, keyed by job index.
    pub outcomes: BTreeMap<usize, PmcTestOutcome>,
    /// Quarantined jobs (minus `rejected` entries, which are retried on
    /// resume), keyed by job index.
    pub quarantined: BTreeMap<usize, QuarantineRecord>,
}

impl Checkpoint {
    /// A fresh checkpoint for a campaign about to start.
    pub fn begin(seed: u64, exemplars: &[PmcId]) -> Self {
        Checkpoint {
            seed,
            exemplars: exemplars.to_vec(),
            outcomes: BTreeMap::new(),
            quarantined: BTreeMap::new(),
        }
    }

    /// True if `job` already has a persisted verdict (outcome or quarantine).
    pub fn covers(&self, job: usize) -> bool {
        self.outcomes.contains_key(&job) || self.quarantined.contains_key(&job)
    }

    /// Records `outcome` for `job` unless the job already has a verdict.
    ///
    /// This is the fleet's exactly-once merge rule: the first verdict for a
    /// job wins, and anything later (a late `done` from a worker whose
    /// lease expired and was reassigned) returns `false` so the caller can
    /// count it as a dropped duplicate.
    pub fn merge_outcome(&mut self, job: usize, outcome: PmcTestOutcome) -> bool {
        if self.covers(job) {
            return false;
        }
        self.outcomes.insert(job, outcome);
        true
    }

    /// Records a quarantine verdict unless its job already has one; same
    /// first-wins rule as [`Checkpoint::merge_outcome`].
    pub fn merge_quarantine(&mut self, record: QuarantineRecord) -> bool {
        if self.covers(record.job) {
            return false;
        }
        self.quarantined.insert(record.job, record);
        true
    }

    /// Verifies this checkpoint belongs to the campaign described by
    /// `(seed, exemplars)`.
    pub fn validate(&self, seed: u64, exemplars: &[PmcId]) -> SbResult<()> {
        if self.seed != seed {
            return Err(Error::ResumeMismatch {
                detail: format!("checkpoint seed {} != campaign seed {}", self.seed, seed),
            });
        }
        if self.exemplars != exemplars {
            return Err(Error::ResumeMismatch {
                detail: format!(
                    "checkpoint exemplar list ({} PMCs) differs from campaign ({} PMCs)",
                    self.exemplars.len(),
                    exemplars.len()
                ),
            });
        }
        Ok(())
    }

    /// Atomically writes this snapshot: serialize to `<path>.tmp`, then
    /// rename over `path`, so readers never observe a torn file.
    pub fn save(&self, path: &Path) -> SbResult<()> {
        let text = self.to_json().render();
        json::atomic_write(path, &text)
            .map_err(|(op, path, source)| Error::CheckpointIo { path, op, source })
    }

    /// Loads and validates the shape of a snapshot from disk.
    pub fn load(path: &Path) -> SbResult<Self> {
        let text = std::fs::read_to_string(path).map_err(|source| Error::CheckpointIo {
            path: path.to_path_buf(),
            op: "read",
            source,
        })?;
        let doc = json::parse(&text).map_err(|detail| Error::CheckpointFormat {
            path: path.to_path_buf(),
            detail,
        })?;
        Self::from_json(&doc).map_err(|detail| Error::CheckpointFormat {
            path: path.to_path_buf(),
            detail,
        })
    }

    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("version".into(), Json::U64(VERSION)),
            ("seed".into(), Json::U64(self.seed)),
            (
                "exemplars".into(),
                Json::Arr(
                    self.exemplars
                        .iter()
                        .map(|id| Json::U64(u64::from(*id)))
                        .collect(),
                ),
            ),
            (
                "outcomes".into(),
                Json::Arr(
                    self.outcomes
                        .iter()
                        .map(|(job, o)| outcome_to_json(*job, o))
                        .collect(),
                ),
            ),
            (
                "quarantined".into(),
                Json::Arr(
                    self.quarantined
                        .values()
                        .map(quarantine_to_json)
                        .collect(),
                ),
            ),
        ])
    }

    fn from_json(doc: &Json) -> Result<Self, String> {
        let version = req_u64(doc, "version")?;
        if version != VERSION {
            return Err(format!("unsupported checkpoint version {version}"));
        }
        let seed = req_u64(doc, "seed")?;
        let exemplars = doc
            .get("exemplars")
            .and_then(Json::as_arr)
            .ok_or("missing exemplars array")?
            .iter()
            .map(|v| {
                v.as_u64()
                    .and_then(|n| u32::try_from(n).ok())
                    .ok_or_else(|| "bad exemplar id".to_string())
            })
            .collect::<Result<Vec<PmcId>, String>>()?;
        let mut outcomes = BTreeMap::new();
        for item in doc
            .get("outcomes")
            .and_then(Json::as_arr)
            .ok_or("missing outcomes array")?
        {
            let (job, outcome) = outcome_from_json(item)?;
            outcomes.insert(job, outcome);
        }
        let mut quarantined = BTreeMap::new();
        for item in doc
            .get("quarantined")
            .and_then(Json::as_arr)
            .ok_or("missing quarantined array")?
        {
            let rec = quarantine_from_json(item)?;
            quarantined.insert(rec.job, rec);
        }
        Ok(Checkpoint {
            seed,
            exemplars,
            outcomes,
            quarantined,
        })
    }
}

pub(crate) fn req_u64(doc: &Json, key: &str) -> Result<u64, String> {
    doc.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("missing or non-integer field \"{key}\""))
}

fn opt_u64(value: &Json) -> Result<Option<u64>, String> {
    match value {
        Json::Null => Ok(None),
        Json::U64(n) => Ok(Some(*n)),
        _ => Err("expected integer or null".to_string()),
    }
}

pub(crate) fn outcome_to_json(job: usize, o: &PmcTestOutcome) -> Json {
    Json::Obj(vec![
        ("job".into(), Json::U64(job as u64)),
        (
            "pmc".into(),
            o.pmc.map_or(Json::Null, |id| Json::U64(u64::from(id))),
        ),
        (
            "pair".into(),
            Json::Arr(vec![
                Json::U64(u64::from(o.pair.0)),
                Json::U64(u64::from(o.pair.1)),
            ]),
        ),
        ("trials_run".into(), Json::U64(u64::from(o.trials_run))),
        ("exercised".into(), Json::Bool(o.exercised)),
        (
            "findings".into(),
            Json::Arr(o.findings.iter().map(finding_to_json).collect()),
        ),
        ("steps".into(), Json::U64(o.steps)),
        (
            "first_finding_trial".into(),
            o.first_finding_trial
                .map_or(Json::Null, |t| Json::U64(u64::from(t))),
        ),
        (
            "repro_schedule".into(),
            o.repro_schedule
                .as_ref()
                .map_or(Json::Null, schedule_to_json),
        ),
        ("attempts".into(), Json::U64(u64::from(o.attempts))),
    ])
}

pub(crate) fn outcome_from_json(doc: &Json) -> Result<(usize, PmcTestOutcome), String> {
    let job = usize::try_from(req_u64(doc, "job")?).map_err(|_| "job overflows usize")?;
    let pmc = opt_u64(doc.get("pmc").ok_or("missing pmc")?)?
        .map(|n| u32::try_from(n).map_err(|_| "pmc id overflows u32".to_string()))
        .transpose()?;
    let pair_arr = doc
        .get("pair")
        .and_then(Json::as_arr)
        .filter(|a| a.len() == 2)
        .ok_or("pair must be a 2-element array")?;
    let pair_of = |v: &Json| -> Result<u32, String> {
        v.as_u64()
            .and_then(|n| u32::try_from(n).ok())
            .ok_or_else(|| "bad pair element".to_string())
    };
    let findings = doc
        .get("findings")
        .and_then(Json::as_arr)
        .ok_or("missing findings array")?
        .iter()
        .map(finding_from_json)
        .collect::<Result<Vec<Finding>, String>>()?;
    let first_finding_trial = opt_u64(doc.get("first_finding_trial").ok_or("missing first_finding_trial")?)?
        .map(|n| u32::try_from(n).map_err(|_| "trial overflows u32".to_string()))
        .transpose()?;
    let repro_schedule = match doc.get("repro_schedule").ok_or("missing repro_schedule")? {
        Json::Null => None,
        other => Some(schedule_from_json(other)?),
    };
    Ok((
        job,
        PmcTestOutcome {
            pmc,
            pair: (pair_of(&pair_arr[0])?, pair_of(&pair_arr[1])?),
            trials_run: u32::try_from(req_u64(doc, "trials_run")?)
                .map_err(|_| "trials_run overflows u32")?,
            exercised: doc
                .get("exercised")
                .and_then(Json::as_bool)
                .ok_or("missing exercised")?,
            findings,
            steps: req_u64(doc, "steps")?,
            first_finding_trial,
            repro_schedule,
            attempts: u32::try_from(req_u64(doc, "attempts")?)
                .map_err(|_| "attempts overflows u32")?,
        },
    ))
}

fn finding_to_json(f: &Finding) -> Json {
    let tag = |t: &str| ("type".to_string(), Json::Str(t.to_string()));
    match f {
        Finding::KernelPanic { msg } => Json::Obj(vec![
            tag("kernel-panic"),
            ("msg".into(), Json::Str(msg.clone())),
        ]),
        Finding::ConsoleError { line } => Json::Obj(vec![
            tag("console-error"),
            ("line".into(), Json::Str(line.clone())),
        ]),
        Finding::DataRace {
            write_site,
            other_site,
            addr,
        } => Json::Obj(vec![
            tag("data-race"),
            ("write_site".into(), Json::Str(write_site.clone())),
            ("other_site".into(), Json::Str(other_site.clone())),
            ("addr".into(), Json::U64(*addr)),
        ]),
        Finding::Deadlock => Json::Obj(vec![tag("deadlock")]),
        Finding::Livelock => Json::Obj(vec![tag("livelock")]),
    }
}

fn finding_from_json(doc: &Json) -> Result<Finding, String> {
    let req_str = |key: &str| -> Result<String, String> {
        doc.get(key)
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or_else(|| format!("missing finding field \"{key}\""))
    };
    match doc.get("type").and_then(Json::as_str) {
        Some("kernel-panic") => Ok(Finding::KernelPanic { msg: req_str("msg")? }),
        Some("console-error") => Ok(Finding::ConsoleError { line: req_str("line")? }),
        Some("data-race") => Ok(Finding::DataRace {
            write_site: req_str("write_site")?,
            other_site: req_str("other_site")?,
            addr: req_u64(doc, "addr")?,
        }),
        Some("deadlock") => Ok(Finding::Deadlock),
        Some("livelock") => Ok(Finding::Livelock),
        Some(other) => Err(format!("unknown finding type \"{other}\"")),
        None => Err("finding without a type".to_string()),
    }
}

fn schedule_to_json(s: &Schedule) -> Json {
    Json::Obj(vec![
        (
            "switches".into(),
            Json::Arr(s.switches.iter().map(|b| Json::Bool(*b)).collect()),
        ),
        (
            "picks".into(),
            Json::Arr(s.picks.iter().map(|p| Json::U64(*p as u64)).collect()),
        ),
    ])
}

fn schedule_from_json(doc: &Json) -> Result<Schedule, String> {
    let switches = doc
        .get("switches")
        .and_then(Json::as_arr)
        .ok_or("schedule missing switches")?
        .iter()
        .map(|v| v.as_bool().ok_or_else(|| "bad switch entry".to_string()))
        .collect::<Result<Vec<bool>, String>>()?;
    let picks = doc
        .get("picks")
        .and_then(Json::as_arr)
        .ok_or("schedule missing picks")?
        .iter()
        .map(|v| {
            v.as_u64()
                .and_then(|n| usize::try_from(n).ok())
                .ok_or_else(|| "bad pick entry".to_string())
        })
        .collect::<Result<Vec<usize>, String>>()?;
    Ok(Schedule { switches, picks })
}

pub(crate) fn quarantine_to_json(q: &QuarantineRecord) -> Json {
    Json::Obj(vec![
        ("job".into(), Json::U64(q.job as u64)),
        (
            "pmc".into(),
            q.pmc.map_or(Json::Null, |id| Json::U64(u64::from(id))),
        ),
        ("attempts".into(), Json::U64(u64::from(q.attempts))),
        ("kind".into(), Json::Str(q.kind.tag().to_string())),
        (
            "chain".into(),
            Json::Arr(q.chain.iter().map(|s| Json::Str(s.clone())).collect()),
        ),
    ])
}

pub(crate) fn quarantine_from_json(doc: &Json) -> Result<QuarantineRecord, String> {
    let kind_tag = doc
        .get("kind")
        .and_then(Json::as_str)
        .ok_or("quarantine entry missing kind")?;
    Ok(QuarantineRecord {
        job: usize::try_from(req_u64(doc, "job")?).map_err(|_| "job overflows usize")?,
        pmc: opt_u64(doc.get("pmc").ok_or("missing pmc")?)?
            .map(|n| u32::try_from(n).map_err(|_| "pmc id overflows u32".to_string()))
            .transpose()?,
        attempts: u32::try_from(req_u64(doc, "attempts")?)
            .map_err(|_| "attempts overflows u32")?,
        kind: FailureKind::from_tag(kind_tag)
            .ok_or_else(|| format!("unknown failure kind \"{kind_tag}\""))?,
        chain: doc
            .get("chain")
            .and_then(Json::as_arr)
            .ok_or("quarantine entry missing chain")?
            .iter()
            .map(|v| {
                v.as_str()
                    .map(str::to_string)
                    .ok_or_else(|| "bad chain entry".to_string())
            })
            .collect::<Result<Vec<String>, String>>()?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_is_first_wins() {
        let mut cp = sample();
        let dup = PmcTestOutcome {
            trials_run: 999,
            ..cp.outcomes[&0].clone()
        };
        assert!(!cp.merge_outcome(0, dup), "covered job: duplicate dropped");
        assert_eq!(cp.outcomes[&0].trials_run, 64, "first verdict kept");
        assert!(!cp.merge_quarantine(QuarantineRecord {
            job: 0,
            pmc: None,
            attempts: 1,
            kind: FailureKind::Crash,
            chain: vec![],
        }));
        assert!(cp.merge_outcome(5, cp.outcomes[&0].clone()));
        assert!(cp.covers(5));
        assert!(cp.merge_quarantine(QuarantineRecord {
            job: 6,
            pmc: None,
            attempts: 1,
            kind: FailureKind::Crash,
            chain: vec![],
        }));
        assert!(cp.covers(6));
    }

    fn sample() -> Checkpoint {
        let mut cp = Checkpoint::begin(0xDEAD_BEEF_CAFE_F00D, &[7, 3, 9]);
        cp.outcomes.insert(
            0,
            PmcTestOutcome {
                pmc: Some(7),
                pair: (1, 2),
                trials_run: 64,
                exercised: true,
                findings: vec![
                    Finding::DataRace {
                        write_site: "a:w".into(),
                        other_site: "b:r".into(),
                        addr: 0x40,
                    },
                    Finding::KernelPanic { msg: "BUG: \"quoted\"".into() },
                    Finding::Deadlock,
                ],
                steps: 12345,
                first_finding_trial: Some(3),
                repro_schedule: Some(Schedule {
                    switches: vec![true, false, true],
                    picks: vec![1, 0],
                }),
                attempts: 2,
            },
        );
        cp.outcomes.insert(
            2,
            PmcTestOutcome {
                pmc: None,
                pair: (0, 0),
                trials_run: 1,
                exercised: false,
                findings: vec![],
                steps: 10,
                first_finding_trial: None,
                repro_schedule: None,
                attempts: 1,
            },
        );
        cp.quarantined.insert(
            1,
            QuarantineRecord {
                job: 1,
                pmc: Some(3),
                attempts: 3,
                kind: FailureKind::Panic,
                chain: vec!["campaign worker panicked: boom".into()],
            },
        );
        cp
    }

    #[test]
    fn json_round_trip_preserves_everything() {
        let cp = sample();
        let parsed = Checkpoint::from_json(&json::parse(&cp.to_json().render()).unwrap())
            .expect("round trip");
        assert_eq!(parsed, cp);
    }

    #[test]
    fn save_load_round_trip_via_disk() {
        let dir = std::env::temp_dir().join("sb-checkpoint-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cp-roundtrip.json");
        let cp = sample();
        cp.save(&path).expect("save");
        assert!(
            !path.with_extension("tmp").exists(),
            "temp file renamed away"
        );
        assert_eq!(Checkpoint::load(&path).expect("load"), cp);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn covers_checks_both_maps() {
        let cp = sample();
        assert!(cp.covers(0));
        assert!(cp.covers(1));
        assert!(cp.covers(2));
        assert!(!cp.covers(3));
    }

    #[test]
    fn validate_rejects_foreign_campaigns() {
        let cp = sample();
        assert!(cp.validate(0xDEAD_BEEF_CAFE_F00D, &[7, 3, 9]).is_ok());
        assert!(matches!(
            cp.validate(1, &[7, 3, 9]),
            Err(Error::ResumeMismatch { .. })
        ));
        assert!(matches!(
            cp.validate(0xDEAD_BEEF_CAFE_F00D, &[7, 3]),
            Err(Error::ResumeMismatch { .. })
        ));
    }

    #[test]
    fn load_classifies_missing_and_corrupt_files() {
        let missing = Path::new("/nonexistent/sb-checkpoint.json");
        assert!(matches!(
            Checkpoint::load(missing),
            Err(Error::CheckpointIo { op: "read", .. })
        ));

        let dir = std::env::temp_dir().join("sb-checkpoint-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cp-corrupt.json");
        std::fs::write(&path, b"{\"version\":1,").unwrap();
        assert!(matches!(
            Checkpoint::load(&path),
            Err(Error::CheckpointFormat { .. })
        ));
        std::fs::write(&path, b"{\"version\":99}").unwrap();
        assert!(matches!(
            Checkpoint::load(&path),
            Err(Error::CheckpointFormat { .. })
        ));
        let _ = std::fs::remove_file(&path);
    }
}
