//! Process-isolated campaign execution: a crash-proof worker pool.
//!
//! The in-process pool (PR 1) survives worker *panics*, but a kernel-fuzzing
//! campaign also sees failures Rust cannot unwind from: `abort()`, OOM
//! kills, stack overflow, a wedged loop that never reaches a watchdog
//! check. This module runs the campaign across real OS processes: the CLI
//! re-execs itself as N worker children, each running the deterministic
//! shard `job % N == shard` of the budgeted job list and streaming
//! [`WorkerMsg`] JSONL over stdout. The supervisor ([`run_supervised`])
//! merges results into the same job-indexed [`Checkpoint`] maps the
//! single-process campaign uses, so a clean supervised run aggregates
//! **bit-identically** to `run_campaign` over the same exemplars.
//!
//! Robustness machinery, all deterministic given the same worker behaviour:
//!
//! * **Heartbeats** — a worker that sends nothing (not even a heartbeat)
//!   for longer than [`SuperviseCfg::heartbeat_timeout`] is presumed wedged,
//!   killed, and handled as a crash.
//! * **Crash attribution** — the `start` message names the in-flight job;
//!   a death before its `done`/`quarantine` charges exactly that job. After
//!   [`SuperviseCfg::crash_budget`] charges the job is quarantined with
//!   [`FailureKind::Crash`] and never retried.
//! * **Restart backoff** — respawns wait `base * 2^(n-1)` clamped to
//!   `backoff_max`, plus a deterministic splitmix64 jitter derived from
//!   `(campaign seed, shard, respawn count)` — no wall-clock entropy.
//! * **Circuit breaker** — [`SuperviseCfg::max_instant_deaths`] consecutive
//!   deaths with zero completed jobs abandon the shard: its remaining jobs
//!   are reported with [`FailureKind::GaveUp`] (reported but *not*
//!   checkpointed, so a resumed campaign retries them).
//! * **Graceful shutdown** — when [`SuperviseCfg::stop_file`] appears, the
//!   checkpoint is flushed immediately, workers get one heartbeat interval
//!   to exit on their own stop-file poll, stragglers are killed, and
//!   nothing is quarantined.
//! * **No orphans** — every child is held by a kill-on-drop guard; even a
//!   supervisor panic reaps the pool and flushes the checkpoint first.

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, ExitStatus, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

use sb_kernel::{BootedKernel, Program};
use sb_vmm::Executor;

use crate::campaign::{
    aggregate, load_or_begin_checkpoint, run_one_job, trace_job_verdict, CampaignCfg,
    CampaignReport, IncidentalIndex, JobVerdict, QuarantineRecord,
};
use crate::checkpoint::Checkpoint;
use crate::error::{Error, FailureKind, SbResult};
use crate::fault::FaultPlan;
use crate::metrics::SuperviseStats;
use crate::pmc::{PmcId, PmcSet};
use crate::protocol::WorkerMsg;
use crate::retry::reseed;

/// Supervisor tuning. Defaults suit production; tests shrink every timing
/// knob to milliseconds.
#[derive(Clone, Debug)]
pub struct SuperviseCfg {
    /// Worker processes (= shards). Job `i` belongs to shard `i % workers`.
    pub workers: usize,
    /// Kill a worker heard from not at all for this long.
    pub heartbeat_timeout: Duration,
    /// Supervisor tick: stop-file polls, respawn deadlines, timeout checks.
    pub poll: Duration,
    /// First respawn delay; doubles per consecutive respawn.
    pub backoff_base: Duration,
    /// Ceiling on the exponential respawn delay (before jitter).
    pub backoff_max: Duration,
    /// Worker deaths charged to one job before it is quarantined as
    /// [`FailureKind::Crash`].
    pub crash_budget: u32,
    /// Consecutive zero-completion deaths before a shard is abandoned.
    pub max_instant_deaths: u32,
    /// Graceful-shutdown trigger: stop when this file exists.
    pub stop_file: Option<PathBuf>,
    /// The supervisor's merged checkpoint — saved before every (re)spawn so
    /// children resume past covered jobs, and after every result.
    pub checkpoint: PathBuf,
}

impl Default for SuperviseCfg {
    fn default() -> Self {
        SuperviseCfg {
            workers: 4,
            heartbeat_timeout: Duration::from_secs(10),
            poll: Duration::from_millis(25),
            backoff_base: Duration::from_millis(50),
            backoff_max: Duration::from_secs(2),
            crash_budget: 2,
            max_instant_deaths: 3,
            stop_file: None,
            checkpoint: std::env::temp_dir().join("sb-supervise.json"),
        }
    }
}

/// The jobs of one shard, as `(job index, PMC id)` in campaign order.
pub fn shard_jobs(budgeted: &[PmcId], shard: usize, of: usize) -> Vec<(usize, PmcId)> {
    budgeted
        .iter()
        .copied()
        .enumerate()
        .filter(|(job, _)| job % of == shard)
        .collect()
}

/// Respawn delay before respawn `n` (1-based) of `shard`: exponential
/// backoff clamped at `backoff_max`, plus up to 25% deterministic jitter
/// derived from the campaign seed — identical inputs always wait the same.
pub fn respawn_backoff(cfg: &SuperviseCfg, seed: u64, shard: usize, respawn: u64) -> Duration {
    let shift = respawn.saturating_sub(1).min(20) as u32;
    let grown = cfg
        .backoff_base
        .saturating_mul(1u32.checked_shl(shift).unwrap_or(u32::MAX));
    let capped = grown.min(cfg.backoff_max);
    let quarter_ms = capped.as_millis() as u64 / 4;
    let jitter_ms = if quarter_ms == 0 {
        0
    } else {
        reseed(seed ^ ((shard as u64) << 32), respawn as u32) % (quarter_ms + 1)
    };
    capped + Duration::from_millis(jitter_ms)
}

/// A child process reaped (kill + wait) on drop, so no exit path — panic
/// included — leaks a worker.
struct ChildGuard {
    child: Option<Child>,
}

impl ChildGuard {
    fn new(child: Child) -> Self {
        ChildGuard { child: Some(child) }
    }

    fn kill(&mut self) {
        if let Some(c) = &mut self.child {
            let _ = c.kill();
        }
    }

    /// Reaps the child, returning its exit status (None if already reaped
    /// or wait failed).
    fn reap(&mut self) -> Option<ExitStatus> {
        self.child.take().and_then(|mut c| c.wait().ok())
    }
}

impl Drop for ChildGuard {
    fn drop(&mut self) {
        self.kill();
        let _ = self.reap();
    }
}

/// What a reader thread forwards for its worker.
enum Note {
    Msg(WorkerMsg),
    /// A line that failed strict protocol validation.
    Bad(String),
    /// The worker's stdout closed (it died or is about to).
    Eof,
}

#[derive(Debug, PartialEq)]
enum Phase {
    Running,
    /// Waiting out the respawn backoff until the deadline.
    Backoff(Instant),
    Done,
}

struct ShardState {
    /// All jobs of this shard (including already-covered ones).
    jobs: Vec<(usize, PmcId)>,
    phase: Phase,
    guard: Option<ChildGuard>,
    /// Spawn generation; messages from dead readers are discarded by it.
    gen: u64,
    last_msg: Instant,
    in_flight: Option<usize>,
    completed_since_spawn: u64,
    instant_deaths: u32,
    respawns: u64,
    said_bye: Option<bool>,
    hb_killed: bool,
    proto_error: Option<String>,
}

impl ShardState {
    fn remaining(&self, cp: &Checkpoint, extra: &BTreeMap<usize, QuarantineRecord>) -> usize {
        self.jobs
            .iter()
            .filter(|(job, _)| !cp.covers(*job) && !extra.contains_key(job))
            .count()
    }
}

/// Runs a campaign over `exemplars` across `scfg.workers` child processes,
/// spawning each shard with `spawn(shard)` (the CLI passes a closure that
/// re-execs the current binary with a hidden `--worker-shard` flag; tests
/// pass `/bin/sh` scripts).
///
/// Like [`crate::campaign::run_campaign`], per-job failures never surface
/// as `Err` — they land in [`CampaignReport::quarantined`]. `Err` means a
/// campaign-level problem: an unusable resume checkpoint, a checkpoint
/// write failure, or a worker that could not be spawned at all.
pub fn run_supervised(
    exemplars: &[PmcId],
    cfg: &CampaignCfg,
    scfg: &SuperviseCfg,
    spawn: impl FnMut(usize) -> Command,
) -> SbResult<CampaignReport> {
    if scfg.workers == 0 {
        return Err(Error::Supervise {
            detail: "supervised campaign needs at least one worker".into(),
        });
    }
    let budgeted: Vec<PmcId> = exemplars
        .iter()
        .copied()
        .take(cfg.max_tested_pmcs)
        .collect();
    let mut cp = load_or_begin_checkpoint(cfg, &budgeted)?;
    let mut extra: BTreeMap<usize, QuarantineRecord> = BTreeMap::new();
    let mut stats = SuperviseStats {
        workers: scfg.workers as u64,
        ..SuperviseStats::default()
    };
    let mut spawn = spawn;
    let _span = cfg.tracer.span("campaign");
    // The flush guard for satellite 2's supervisor side: a supervisor bug
    // must not cost completed work, so the checkpoint is persisted before
    // the panic propagates. Children are reaped by their ChildGuards as the
    // loop's state unwinds.
    let looped = catch_unwind(AssertUnwindSafe(|| {
        supervise_loop(&budgeted, cfg, scfg, &mut cp, &mut extra, &mut stats, &mut spawn)
    }));
    match looped {
        Ok(r) => r?,
        Err(payload) => {
            let _ = cp.save(&scfg.checkpoint);
            std::panic::resume_unwind(payload);
        }
    }
    cp.save(&scfg.checkpoint)?;

    let mut quarantined = cp.quarantined.clone();
    for (job, q) in extra {
        quarantined.entry(job).or_insert(q);
    }
    let outcomes = cp.outcomes.values().cloned().collect();
    let mut report = aggregate(outcomes);
    report.quarantined = quarantined.into_values().collect();
    report.supervise = Some(stats);
    Ok(report)
}

#[allow(clippy::too_many_lines)]
fn supervise_loop(
    budgeted: &[PmcId],
    cfg: &CampaignCfg,
    scfg: &SuperviseCfg,
    cp: &mut Checkpoint,
    extra: &mut BTreeMap<usize, QuarantineRecord>,
    stats: &mut SuperviseStats,
    spawn: &mut dyn FnMut(usize) -> Command,
) -> SbResult<()> {
    let tracer = &cfg.tracer;
    let every = cfg.checkpoint.as_ref().map_or(1, |c| c.every.max(1));
    let (tx, rx) = mpsc::channel::<(usize, u64, Note)>();
    let mut shards: Vec<ShardState> = (0..scfg.workers)
        .map(|s| ShardState {
            jobs: shard_jobs(budgeted, s, scfg.workers),
            phase: Phase::Done,
            guard: None,
            gen: 0,
            last_msg: Instant::now(),
            in_flight: None,
            completed_since_spawn: 0,
            instant_deaths: 0,
            respawns: 0,
            said_bye: None,
            hb_killed: false,
            proto_error: None,
        })
        .collect();
    let mut crash_counts: BTreeMap<usize, u32> = BTreeMap::new();
    let mut results_seen = 0usize;
    let mut stopping = false;
    let mut stop_deadline = Instant::now();
    let mut stragglers_killed = false;

    // Initial spawns: only shards with uncovered work.
    for (shard, state) in shards.iter_mut().enumerate() {
        if state.remaining(cp, extra) > 0 {
            spawn_shard(shard, state, cfg, scfg, cp, stats, spawn, &tx)?;
        }
    }

    loop {
        let now = Instant::now();

        // Graceful shutdown: flush the checkpoint the moment the stop file
        // appears, then give workers one heartbeat interval to notice it
        // themselves before killing stragglers.
        if !stopping && scfg.stop_file.as_deref().is_some_and(Path::exists) {
            stopping = true;
            stats.stopped = true;
            stop_deadline = now + scfg.heartbeat_timeout;
            cp.save(&scfg.checkpoint)?;
        }
        if stopping && now >= stop_deadline && !stragglers_killed {
            stragglers_killed = true;
            for state in &mut shards {
                if let Some(guard) = &mut state.guard {
                    guard.kill();
                }
            }
        }

        for (shard, state) in shards.iter_mut().enumerate() {
            match state.phase {
                Phase::Backoff(_) if stopping => state.phase = Phase::Done,
                Phase::Backoff(at) if now >= at => {
                    spawn_shard(shard, state, cfg, scfg, cp, stats, spawn, &tx)?;
                }
                Phase::Running
                    if !state.hb_killed
                        && now.duration_since(state.last_msg) > scfg.heartbeat_timeout =>
                {
                    state.hb_killed = true;
                    stats.heartbeat_misses += 1;
                    tracer.count(sb_obs::keys::SUPERVISE_HEARTBEAT_MISSES, 1);
                    tracer.emit(&sb_obs::Event::Worker {
                        t: tracer.now_us(),
                        worker: shard as u64,
                        action: "heartbeat-miss".into(),
                        detail: format!(
                            "silent for {:.1}s",
                            now.duration_since(state.last_msg).as_secs_f64()
                        ),
                    });
                    if let Some(guard) = &mut state.guard {
                        guard.kill();
                    }
                }
                _ => {}
            }
        }

        if shards.iter().all(|s| s.phase == Phase::Done) {
            return Ok(());
        }

        let (shard, gen, note) = match rx.recv_timeout(scfg.poll) {
            Ok(item) => item,
            Err(_) => continue,
        };
        let state = &mut shards[shard];
        if gen != state.gen {
            continue; // stale message from a reaped incarnation
        }
        state.last_msg = Instant::now();
        match note {
            Note::Msg(WorkerMsg::Hello { .. } | WorkerMsg::Heartbeat) => {}
            Note::Msg(WorkerMsg::Start { job }) => {
                state.in_flight = Some(job);
            }
            Note::Msg(WorkerMsg::Done { job, outcome }) => {
                trace_job_verdict(tracer, job, &JobVerdict::Completed(outcome.clone()));
                cp.outcomes.insert(job, outcome);
                if state.in_flight == Some(job) {
                    state.in_flight = None;
                }
                state.completed_since_spawn += 1;
                results_seen += 1;
                if results_seen.is_multiple_of(every) {
                    let _ = cp.save(&scfg.checkpoint);
                }
            }
            Note::Msg(WorkerMsg::Quarantine { record }) => {
                let job = record.job;
                trace_job_verdict(tracer, job, &JobVerdict::Quarantined(record.clone()));
                if record.kind != FailureKind::Rejected {
                    cp.quarantined.insert(job, record);
                }
                if state.in_flight == Some(job) {
                    state.in_flight = None;
                }
                state.completed_since_spawn += 1;
                results_seen += 1;
                if results_seen.is_multiple_of(every) {
                    let _ = cp.save(&scfg.checkpoint);
                }
            }
            Note::Msg(WorkerMsg::Bye { stopped, .. }) => {
                state.said_bye = Some(stopped);
            }
            Note::Bad(e) => {
                // A worker speaking garbage is as untrustworthy as a dead
                // one: kill it and let the Eof path handle the crash.
                state.proto_error = Some(e);
                if let Some(guard) = &mut state.guard {
                    guard.kill();
                }
            }
            Note::Eof => {
                let status = state.guard.take().and_then(|mut g| g.reap());
                handle_exit(
                    shard, state, status, cfg, scfg, cp, extra, stats, &mut crash_counts, stopping,
                );
            }
        }
    }
}

/// Saves the merged checkpoint, spawns one worker process for `shard`, and
/// starts its stdout reader thread.
#[allow(clippy::too_many_arguments)]
fn spawn_shard(
    shard: usize,
    state: &mut ShardState,
    cfg: &CampaignCfg,
    scfg: &SuperviseCfg,
    cp: &mut Checkpoint,
    stats: &mut SuperviseStats,
    spawn: &mut dyn FnMut(usize) -> Command,
    tx: &mpsc::Sender<(usize, u64, Note)>,
) -> SbResult<()> {
    let tracer = &cfg.tracer;
    // Persist merged progress first: the child resumes from this file and
    // skips everything already covered.
    cp.save(&scfg.checkpoint)?;
    let mut command = spawn(shard);
    command.stdout(Stdio::piped()).stdin(Stdio::null());
    let mut child = command.spawn().map_err(|e| Error::Supervise {
        detail: format!("failed to spawn worker {shard}: {e}"),
    })?;
    let stdout = child.stdout.take().expect("stdout was piped");
    state.gen += 1;
    let gen = state.gen;
    let tx = tx.clone();
    std::thread::spawn(move || {
        for line in BufReader::new(stdout).lines() {
            let note = match line {
                Ok(l) => match WorkerMsg::parse_line(&l) {
                    Ok(msg) => Note::Msg(msg),
                    Err(e) => Note::Bad(format!("{e} (line: {l:?})")),
                },
                Err(e) => Note::Bad(format!("stdout read error: {e}")),
            };
            let fatal = matches!(note, Note::Bad(_));
            if tx.send((shard, gen, note)).is_err() || fatal {
                break;
            }
        }
        let _ = tx.send((shard, gen, Note::Eof));
    });
    state.guard = Some(ChildGuard::new(child));
    state.phase = Phase::Running;
    state.last_msg = Instant::now();
    state.in_flight = None;
    state.completed_since_spawn = 0;
    state.said_bye = None;
    state.hb_killed = false;
    state.proto_error = None;
    let (action, detail) = if state.respawns == 0 {
        stats.spawns += 1;
        tracer.count(sb_obs::keys::SUPERVISE_SPAWNS, 1);
        ("spawn", format!("shard {shard}/{}", scfg.workers))
    } else {
        stats.respawns += 1;
        tracer.count(sb_obs::keys::SUPERVISE_RESPAWNS, 1);
        ("restart", format!("respawn #{}", state.respawns))
    };
    tracer.emit(&sb_obs::Event::Worker {
        t: tracer.now_us(),
        worker: shard as u64,
        action: action.into(),
        detail,
    });
    Ok(())
}

/// Classifies one worker death and decides the shard's next phase.
#[allow(clippy::too_many_arguments)]
fn handle_exit(
    shard: usize,
    state: &mut ShardState,
    status: Option<ExitStatus>,
    cfg: &CampaignCfg,
    scfg: &SuperviseCfg,
    cp: &mut Checkpoint,
    extra: &mut BTreeMap<usize, QuarantineRecord>,
    stats: &mut SuperviseStats,
    crash_counts: &mut BTreeMap<usize, u32>,
    stopping: bool,
) {
    let tracer = &cfg.tracer;
    let status_str = status.map_or_else(|| "unknown".to_owned(), |s| s.to_string());
    let clean = state.said_bye.is_some()
        && status.is_some_and(|s| s.success())
        && state.proto_error.is_none()
        && !state.hb_killed;
    let detail = if clean {
        match state.said_bye {
            Some(true) => "clean (stop file)".to_owned(),
            _ => "clean".to_owned(),
        }
    } else if let Some(e) = &state.proto_error {
        format!("protocol violation: {e}")
    } else if state.hb_killed {
        format!("killed after heartbeat timeout ({status_str})")
    } else {
        format!("crashed ({status_str})")
    };
    tracer.emit(&sb_obs::Event::Worker {
        t: tracer.now_us(),
        worker: shard as u64,
        action: "exit".into(),
        detail: detail.clone(),
    });

    if clean {
        // A worker that said bye without stopping but left work uncovered
        // disagrees with the supervisor about its shard; respawning is the
        // safe reconciliation (the child recomputes pending from the
        // freshly saved checkpoint).
        if !stopping && state.said_bye == Some(false) && state.remaining(cp, extra) > 0 {
            state.respawns += 1;
            state.phase = Phase::Backoff(
                Instant::now() + respawn_backoff(scfg, cfg.seed, shard, state.respawns),
            );
        } else {
            state.phase = Phase::Done;
        }
        return;
    }

    stats.crashes += 1;
    tracer.count(sb_obs::keys::SUPERVISE_CRASHES, 1);
    if let Some(job) = state.in_flight.take() {
        let count = crash_counts.entry(job).or_insert(0);
        *count += 1;
        if *count >= scfg.crash_budget && !cp.covers(job) {
            let record = QuarantineRecord {
                job,
                pmc: state.jobs.iter().find(|(j, _)| *j == job).map(|(_, id)| *id),
                attempts: *count,
                kind: FailureKind::Crash,
                chain: vec![
                    format!("worker process died while job {job} was in flight: {detail}"),
                    format!("crash budget ({}) exhausted", scfg.crash_budget),
                ],
            };
            trace_job_verdict(tracer, job, &JobVerdict::Quarantined(record.clone()));
            cp.quarantined.insert(job, record);
            let _ = cp.save(&scfg.checkpoint);
        }
    }
    if state.completed_since_spawn == 0 {
        state.instant_deaths += 1;
    } else {
        state.instant_deaths = 0;
    }

    let remaining: Vec<(usize, PmcId)> = state
        .jobs
        .iter()
        .copied()
        .filter(|(job, _)| !cp.covers(*job) && !extra.contains_key(job))
        .collect();
    if stopping || remaining.is_empty() {
        state.phase = Phase::Done;
    } else if state.instant_deaths >= scfg.max_instant_deaths {
        // Crash-loop circuit breaker: whatever is left of this shard is not
        // going to run. Report (but do not checkpoint) every remaining job,
        // so a resumed campaign retries them.
        tracer.emit(&sb_obs::Event::Worker {
            t: tracer.now_us(),
            worker: shard as u64,
            action: "give-up".into(),
            detail: format!(
                "{} consecutive instant deaths; abandoning {} job(s)",
                state.instant_deaths,
                remaining.len()
            ),
        });
        tracer.count(sb_obs::keys::SUPERVISE_GAVE_UP, 1);
        stats.shards_abandoned += 1;
        for (job, id) in remaining {
            let record = QuarantineRecord {
                job,
                pmc: Some(id),
                attempts: crash_counts.get(&job).copied().unwrap_or(0),
                kind: FailureKind::GaveUp,
                chain: vec![format!(
                    "shard {shard} abandoned after {} consecutive instant worker deaths (last: {detail})",
                    state.instant_deaths
                )],
            };
            trace_job_verdict(tracer, job, &JobVerdict::Quarantined(record.clone()));
            extra.insert(job, record);
        }
        state.phase = Phase::Done;
    } else {
        state.respawns += 1;
        state.phase = Phase::Backoff(
            Instant::now() + respawn_backoff(scfg, cfg.seed, shard, state.respawns),
        );
    }
}

/// Worker-side configuration (the hidden `--worker-shard` entrypoint).
#[derive(Clone, Debug)]
pub struct WorkerCfg {
    /// This worker's shard (0-based).
    pub shard: usize,
    /// Total shard count.
    pub of: usize,
    /// Heartbeat emission interval (the supervisor's timeout / 4 or so).
    pub heartbeat: Duration,
    /// Exit cleanly between jobs when this file exists.
    pub stop_file: Option<PathBuf>,
    /// Process-level fault injection (abort/exit/stall), fired *after* the
    /// `start` message so the supervisor can attribute the death.
    pub process_faults: FaultPlan,
}

/// Writes one protocol line to stdout, flushed immediately so the
/// supervisor sees it even if this process dies on the next instruction.
fn emit(msg: &WorkerMsg) {
    let mut line = msg.render();
    line.push('\n');
    let mut out = std::io::stdout().lock();
    let _ = out.write_all(line.as_bytes());
    let _ = out.flush();
}

/// Runs one shard of the campaign in this process, speaking the worker
/// protocol on stdout. Returns `Ok(true)` when it exited early because the
/// stop file appeared.
///
/// The job list is the deterministic shard `job % of == shard` of the
/// budgeted exemplars, minus whatever the resume checkpoint
/// (`cfg.resume_from`, saved by the supervisor immediately before this
/// spawn) already covers. Jobs run with the exact same seeds and retry
/// machinery as the in-process pool — [`run_one_job`] — so a merged
/// supervised report is bit-identical to a single-process run.
pub fn run_worker_shard(
    booted: &BootedKernel,
    corpus: &[Program],
    set: &PmcSet,
    exemplars: &[PmcId],
    cfg: &CampaignCfg,
    wcfg: &WorkerCfg,
) -> SbResult<bool> {
    if wcfg.of == 0 || wcfg.shard >= wcfg.of {
        return Err(Error::Supervise {
            detail: format!("bad worker shard {}/{}", wcfg.shard, wcfg.of),
        });
    }
    let budgeted: Vec<PmcId> = exemplars
        .iter()
        .copied()
        .take(cfg.max_tested_pmcs)
        .collect();
    let cp = load_or_begin_checkpoint(cfg, &budgeted)?;
    let jobs: Vec<(usize, PmcId)> = shard_jobs(&budgeted, wcfg.shard, wcfg.of)
        .into_iter()
        .filter(|(job, _)| !cp.covers(*job))
        .collect();
    emit(&WorkerMsg::Hello {
        shard: wcfg.shard,
        of: wcfg.of,
        pending: jobs.len(),
    });

    // The heartbeat thread keeps the supervisor satisfied through long
    // jobs. `silenced` models the stall fault; `finished` stops the thread
    // at shard end (best effort — a late heartbeat is ignored anyway).
    let silenced = Arc::new(AtomicBool::new(false));
    let finished = Arc::new(AtomicBool::new(false));
    {
        let silenced = silenced.clone();
        let finished = finished.clone();
        let interval = wcfg.heartbeat.max(Duration::from_millis(10));
        std::thread::spawn(move || loop {
            std::thread::sleep(interval);
            if finished.load(Ordering::Relaxed) || silenced.load(Ordering::Relaxed) {
                break;
            }
            emit(&WorkerMsg::Heartbeat);
        });
    }

    // The worker's job config: process faults are the entrypoint's to fire
    // (below), and a worker must never write trace files of its own — the
    // supervisor emits all trace events from the merged stream.
    let mut job_cfg = cfg.clone();
    job_cfg.fault_plan = cfg.fault_plan.in_process();
    job_cfg.tracer = sb_obs::Tracer::disabled();

    let index = IncidentalIndex::build(set);
    let mut slot: Option<Executor> = None;
    let mut completed = 0usize;
    let mut stopped = false;
    // Satellite 2's worker-side flush guard: every result line is already
    // flushed as it is emitted, so a panic below loses only the in-flight
    // job; this guard makes the ordering explicit and re-raises.
    let ran = catch_unwind(AssertUnwindSafe(|| {
        for (job, id) in &jobs {
            if wcfg.stop_file.as_deref().is_some_and(Path::exists) {
                stopped = true;
                break;
            }
            emit(&WorkerMsg::Start { job: *job });
            // Process faults fire after `start` so the supervisor charges
            // the death to this job (and its crash budget makes progress).
            if wcfg.process_faults.should_abort(*job) {
                std::process::abort();
            }
            if let Some(code) = wcfg.process_faults.exit_code(*job) {
                std::process::exit(code);
            }
            if wcfg.process_faults.should_stall(*job) {
                silenced.store(true, Ordering::Relaxed);
                loop {
                    std::thread::sleep(Duration::from_secs(3600));
                }
            }
            match run_one_job(&mut slot, *job, *id, booted, corpus, set, &index, &job_cfg) {
                JobVerdict::Completed(outcome) => emit(&WorkerMsg::Done { job: *job, outcome }),
                JobVerdict::Quarantined(record) => emit(&WorkerMsg::Quarantine { record }),
            }
            completed += 1;
        }
    }));
    finished.store(true, Ordering::Relaxed);
    if let Err(payload) = ran {
        let _ = std::io::stdout().lock().flush();
        std::panic::resume_unwind(payload);
    }
    emit(&WorkerMsg::Bye { completed, stopped });
    Ok(stopped)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::PmcTestOutcome;
    use crate::checkpoint::outcome_to_json;

    fn outcome(job: usize) -> PmcTestOutcome {
        PmcTestOutcome {
            pmc: Some(job as PmcId + 100),
            pair: (1, 2),
            trials_run: 8,
            exercised: job.is_multiple_of(2),
            findings: vec![],
            steps: 100 + job as u64,
            first_finding_trial: None,
            repro_schedule: None,
            attempts: 1,
        }
    }

    fn done_line(job: usize) -> String {
        WorkerMsg::Done {
            job,
            outcome: outcome(job),
        }
        .render()
    }

    /// A /bin/sh "worker" that prints prepared protocol lines from a file
    /// and then runs `epilogue` (e.g. `exit 7`, `sleep 60`).
    fn fake_worker(dir: &Path, name: &str, lines: &[String], epilogue: &str) -> Command {
        let path = dir.join(name);
        std::fs::write(&path, lines.join("\n") + "\n").unwrap();
        let mut c = Command::new("/bin/sh");
        c.arg("-c")
            .arg(format!("cat '{}'; {epilogue}", path.display()));
        c
    }

    fn test_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("sb-supervise-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn fast_cfg(dir: &Path, workers: usize) -> SuperviseCfg {
        SuperviseCfg {
            workers,
            heartbeat_timeout: Duration::from_millis(400),
            poll: Duration::from_millis(5),
            backoff_base: Duration::from_millis(1),
            backoff_max: Duration::from_millis(4),
            crash_budget: 2,
            max_instant_deaths: 3,
            stop_file: None,
            checkpoint: dir.join("supervise.json"),
        }
    }

    #[test]
    fn shard_partition_is_round_robin_and_total() {
        let budgeted: Vec<PmcId> = (0..7).collect();
        let s0 = shard_jobs(&budgeted, 0, 3);
        let s1 = shard_jobs(&budgeted, 1, 3);
        let s2 = shard_jobs(&budgeted, 2, 3);
        assert_eq!(s0.iter().map(|(j, _)| *j).collect::<Vec<_>>(), vec![0, 3, 6]);
        assert_eq!(s1.iter().map(|(j, _)| *j).collect::<Vec<_>>(), vec![1, 4]);
        assert_eq!(s2.iter().map(|(j, _)| *j).collect::<Vec<_>>(), vec![2, 5]);
        assert_eq!(s0.len() + s1.len() + s2.len(), budgeted.len());
    }

    #[test]
    fn backoff_is_deterministic_grows_and_clamps() {
        let cfg = SuperviseCfg {
            backoff_base: Duration::from_millis(40),
            backoff_max: Duration::from_millis(200),
            ..SuperviseCfg::default()
        };
        let b1 = respawn_backoff(&cfg, 2021, 0, 1);
        let b2 = respawn_backoff(&cfg, 2021, 0, 2);
        let b9 = respawn_backoff(&cfg, 2021, 0, 9);
        assert_eq!(b1, respawn_backoff(&cfg, 2021, 0, 1), "pure function");
        assert!(b1 >= Duration::from_millis(40) && b1 <= Duration::from_millis(50));
        assert!(b2 >= Duration::from_millis(80) && b2 <= Duration::from_millis(100));
        assert!(b9 >= Duration::from_millis(200) && b9 <= Duration::from_millis(250), "{b9:?}");
        assert_ne!(
            respawn_backoff(&cfg, 2021, 0, 2),
            respawn_backoff(&cfg, 2021, 1, 2),
            "shards jitter independently"
        );
    }

    #[test]
    fn clean_workers_merge_into_a_complete_report() {
        let dir = test_dir("clean");
        let budgeted: Vec<PmcId> = (0..4).map(|i| i + 100).collect();
        let cfg = CampaignCfg::default();
        let scfg = fast_cfg(&dir, 2);
        let report = run_supervised(&budgeted, &cfg, &scfg, |shard| {
            let lines: Vec<String> = std::iter::once(
                WorkerMsg::Hello { shard, of: 2, pending: 2 }.render(),
            )
            .chain((0..4).filter(|j| j % 2 == shard).flat_map(|j| {
                [WorkerMsg::Start { job: j }.render(), done_line(j)]
            }))
            .chain(std::iter::once(
                WorkerMsg::Bye { completed: 2, stopped: false }.render(),
            ))
            .collect();
            fake_worker(&dir, &format!("w{shard}.txt"), &lines, "exit 0")
        })
        .expect("supervised run");
        assert_eq!(report.tested(), 4);
        assert!(report.quarantined.is_empty());
        assert_eq!(report.outcomes[0].steps, 100, "job order preserved");
        let stats = report.supervise.expect("supervise stats");
        assert_eq!(stats.spawns, 2);
        assert_eq!(stats.crashes, 0);
        assert_eq!(stats.respawns, 0);
        // The checkpoint on disk covers everything.
        let cp = Checkpoint::load(&scfg.checkpoint).unwrap();
        assert_eq!(cp.outcomes.len(), 4);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn crash_charges_in_flight_job_then_breaker_abandons_shard() {
        let dir = test_dir("crash");
        let budgeted: Vec<PmcId> = (0..4).map(|i| i + 100).collect();
        let cfg = CampaignCfg::default();
        let scfg = fast_cfg(&dir, 2);
        // Shard 1 always announces job 1 and dies; shard 0 is clean.
        let report = run_supervised(&budgeted, &cfg, &scfg, |shard| {
            if shard == 0 {
                let lines = vec![
                    WorkerMsg::Hello { shard: 0, of: 2, pending: 2 }.render(),
                    WorkerMsg::Start { job: 0 }.render(),
                    done_line(0),
                    WorkerMsg::Start { job: 2 }.render(),
                    done_line(2),
                    WorkerMsg::Bye { completed: 2, stopped: false }.render(),
                ];
                fake_worker(&dir, "w0.txt", &lines, "exit 0")
            } else {
                let lines = vec![
                    WorkerMsg::Hello { shard: 1, of: 2, pending: 2 }.render(),
                    WorkerMsg::Start { job: 1 }.render(),
                ];
                fake_worker(&dir, "w1.txt", &lines, "exit 7")
            }
        })
        .expect("supervised run");
        assert_eq!(report.tested(), 2, "shard 0's jobs completed");
        // Job 1 crashed past its budget → Crash; job 3 was abandoned by the
        // circuit breaker → GaveUp.
        let kinds: BTreeMap<usize, FailureKind> = report
            .quarantined
            .iter()
            .map(|q| (q.job, q.kind))
            .collect();
        assert_eq!(kinds.get(&1), Some(&FailureKind::Crash));
        assert_eq!(kinds.get(&3), Some(&FailureKind::GaveUp));
        let stats = report.supervise.unwrap();
        assert_eq!(stats.crashes, 3, "budget 2 + breaker's third");
        assert_eq!(stats.respawns, 2);
        assert_eq!(stats.shards_abandoned, 1);
        // Crash is checkpointed (never retried); GaveUp is not (retried on
        // resume).
        let cp = Checkpoint::load(&scfg.checkpoint).unwrap();
        assert!(cp.quarantined.contains_key(&1));
        assert!(!cp.quarantined.contains_key(&3));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn respawned_worker_resumes_from_checkpoint() {
        let dir = test_dir("respawn");
        let budgeted: Vec<PmcId> = (0..2).map(|i| i + 100).collect();
        let cfg = CampaignCfg::default();
        let scfg = fast_cfg(&dir, 1);
        let mut calls = 0usize;
        let report = run_supervised(&budgeted, &cfg, &scfg, |_| {
            calls += 1;
            if calls == 1 {
                // First life: finish job 0, then die with job 1 in flight.
                let lines = vec![
                    WorkerMsg::Hello { shard: 0, of: 1, pending: 2 }.render(),
                    WorkerMsg::Start { job: 0 }.render(),
                    done_line(0),
                    WorkerMsg::Start { job: 1 }.render(),
                ];
                fake_worker(&dir, "life1.txt", &lines, "exit 9")
            } else {
                // Second life: only job 1 is pending (job 0 is covered by
                // the checkpoint the supervisor saved before respawning).
                let lines = vec![
                    WorkerMsg::Hello { shard: 0, of: 1, pending: 1 }.render(),
                    WorkerMsg::Start { job: 1 }.render(),
                    done_line(1),
                    WorkerMsg::Bye { completed: 1, stopped: false }.render(),
                ];
                fake_worker(&dir, "life2.txt", &lines, "exit 0")
            }
        })
        .expect("supervised run");
        assert_eq!(calls, 2);
        assert_eq!(report.tested(), 2, "both jobs completed across lives");
        assert!(report.quarantined.is_empty(), "{:?}", report.quarantined);
        let stats = report.supervise.unwrap();
        assert_eq!(stats.crashes, 1);
        assert_eq!(stats.respawns, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn silent_worker_is_killed_and_charged() {
        let dir = test_dir("hb");
        let budgeted: Vec<PmcId> = vec![100];
        let cfg = CampaignCfg::default();
        let scfg = SuperviseCfg {
            heartbeat_timeout: Duration::from_millis(150),
            crash_budget: 1,
            max_instant_deaths: 1,
            ..fast_cfg(&dir, 1)
        };
        let lines = vec![
            WorkerMsg::Hello { shard: 0, of: 1, pending: 1 }.render(),
            WorkerMsg::Start { job: 0 }.render(),
        ];
        let report = run_supervised(&budgeted, &cfg, &scfg, |_| {
            // `exec` so the kill lands on the process holding the pipe.
            fake_worker(&dir, "stall.txt", &lines, "exec sleep 60")
        })
        .expect("supervised run");
        let stats = report.supervise.as_ref().unwrap();
        assert_eq!(stats.heartbeat_misses, 1);
        assert_eq!(stats.crashes, 1);
        assert_eq!(report.quarantined.len(), 1);
        assert_eq!(report.quarantined[0].kind, FailureKind::Crash);
        assert!(
            report.quarantined[0].chain[0].contains("heartbeat"),
            "{:?}",
            report.quarantined[0].chain
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn garbage_on_stdout_is_treated_as_a_crash() {
        let dir = test_dir("proto");
        let budgeted: Vec<PmcId> = vec![100];
        let cfg = CampaignCfg::default();
        let scfg = SuperviseCfg {
            crash_budget: 1,
            max_instant_deaths: 1,
            ..fast_cfg(&dir, 1)
        };
        let lines = vec!["this is not a protocol message".to_owned()];
        let report = run_supervised(&budgeted, &cfg, &scfg, |_| {
            fake_worker(&dir, "garbage.txt", &lines, "exec sleep 60")
        })
        .expect("supervised run");
        let stats = report.supervise.as_ref().unwrap();
        assert_eq!(stats.crashes, 1);
        assert_eq!(stats.shards_abandoned, 1, "instant death trips the breaker");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stop_file_ends_the_run_with_checkpoint_and_no_quarantines() {
        let dir = test_dir("stop");
        let budgeted: Vec<PmcId> = (0..2).map(|i| i + 100).collect();
        let cfg = CampaignCfg::default();
        let stop = dir.join("stop");
        let scfg = SuperviseCfg {
            stop_file: Some(stop.clone()),
            heartbeat_timeout: Duration::from_millis(100),
            ..fast_cfg(&dir, 1)
        };
        // The worker completes job 0 and then lingers; the stop file
        // appears (written up front) and the supervisor shuts down.
        std::fs::write(&stop, b"").unwrap();
        let lines = vec![
            WorkerMsg::Hello { shard: 0, of: 1, pending: 2 }.render(),
            WorkerMsg::Start { job: 0 }.render(),
            done_line(0),
        ];
        let report = run_supervised(&budgeted, &cfg, &scfg, |_| {
            fake_worker(&dir, "stop.txt", &lines, "exec sleep 60")
        })
        .expect("supervised run");
        let stats = report.supervise.as_ref().unwrap();
        assert!(stats.stopped);
        assert_eq!(stats.respawns, 0, "no respawns while stopping");
        assert!(
            report.quarantined.is_empty(),
            "stop-kills are not failures: {:?}",
            report.quarantined
        );
        assert_eq!(report.tested(), 1, "completed work is kept");
        // The resumable checkpoint covers job 0 and leaves job 1 pending.
        let cp = Checkpoint::load(&scfg.checkpoint).unwrap();
        assert!(cp.covers(0));
        assert!(!cp.covers(1));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn zero_workers_is_a_campaign_level_error() {
        let scfg = SuperviseCfg {
            workers: 0,
            ..SuperviseCfg::default()
        };
        let err = run_supervised(&[1], &CampaignCfg::default(), &scfg, |_| {
            Command::new("/bin/true")
        })
        .unwrap_err();
        assert!(matches!(err, Error::Supervise { .. }));
    }

    #[test]
    fn unspawnable_worker_surfaces_a_supervise_error() {
        let dir = test_dir("nospawn");
        let scfg = fast_cfg(&dir, 1);
        let err = run_supervised(&[1], &CampaignCfg::default(), &scfg, |_| {
            Command::new("/nonexistent/sb-worker-binary")
        })
        .unwrap_err();
        assert!(matches!(err, Error::Supervise { .. }), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn done_outcome_wire_shape_matches_checkpoint_shape() {
        // The supervisor trusts this equivalence when merging.
        let o = outcome(3);
        let msg = WorkerMsg::Done { job: 3, outcome: o.clone() };
        let rendered = msg.render();
        assert!(rendered.contains(&outcome_to_json(3, &o).render()));
    }
}
