//! Evaluation metrics: §5.3.2's accuracy/precision and §5.4's
//! interleavings-to-expose comparison between Snowboard and SKI.

use sb_kernel::{BootedKernel, Program};
use sb_vmm::sched::{RandomSched, Scheduler, SkiSched, SnowboardSched};
use sb_vmm::Executor;

use sb_detect::Finding;

use crate::pmc::{Pmc, PmcSet};

/// Which scheduler drives the interleaving search.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum SchedKind {
    /// Algorithm 2 with precise PMC hints and learned flags.
    Snowboard,
    /// SKI: yields at PMC *instructions* regardless of memory target.
    Ski,
    /// Unguided random preemption.
    Random,
}

impl std::fmt::Display for SchedKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SchedKind::Snowboard => write!(f, "Snowboard"),
            SchedKind::Ski => write!(f, "SKI"),
            SchedKind::Random => write!(f, "Random"),
        }
    }
}

/// Profile/PMC store effectiveness counters for one pipeline run.
///
/// Produced by `sb-store` (which depends on this crate, not vice versa) and
/// surfaced through `CampaignReport` and the CLI.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct StoreStats {
    /// Sequential tests whose profile was served from the store.
    pub profile_hits: u64,
    /// Sequential tests that had to be re-profiled.
    pub profile_misses: u64,
    /// Of the hits, how many were cached *failures* (tests known not to
    /// complete sequentially — skipped without re-execution).
    pub failed_cached: u64,
    /// True when the PMC set was loaded whole from the store (exact corpus
    /// match) instead of being identified.
    pub pmc_cache_hit: bool,
    /// True when the PMC set was grown incrementally from a stored prefix
    /// index instead of rebuilt from scratch.
    pub pmc_incremental: bool,
    /// Segment files currently in the store.
    pub segments: u64,
    /// Total bytes across segment files.
    pub stored_bytes: u64,
    /// Address-range shards used for identification (1 = sequential path).
    pub shards: u64,
    /// Max-over-mean shard load during identification; 1.0 is perfectly
    /// balanced, 0.0 when no sharded join ran.
    pub shard_skew: f64,
    /// Records found corrupt, truncated, or missing this run and
    /// quarantined (served as misses instead of failing the campaign).
    pub records_damaged: u64,
    /// Of the damaged records, how many were recomputed and rewritten.
    pub records_healed: u64,
}

impl StoreStats {
    /// Fraction of profile lookups served from the store, in `[0, 1]`.
    /// Returns 0.0 when there were no lookups — a run that never consulted
    /// the store must not report a (vacuously) perfect hit rate.
    pub fn hit_rate(&self) -> f64 {
        let total = self.profile_hits + self.profile_misses;
        if total == 0 {
            0.0
        } else {
            self.profile_hits as f64 / total as f64
        }
    }
}

/// Process-supervision counters for one supervised campaign run.
///
/// Produced by [`crate::supervise::run_supervised`] and surfaced through
/// `CampaignReport::supervise` and the CLI's `[supervise]` summary line
/// (stderr, so supervised stdout stays byte-identical to a single-process
/// run).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SuperviseStats {
    /// Worker processes in the pool (shards).
    pub workers: u64,
    /// Initial worker spawns (== `workers` unless a shard had no work).
    pub spawns: u64,
    /// Respawns after a worker death.
    pub respawns: u64,
    /// Worker deaths treated as crashes (nonzero exit, signal, or
    /// heartbeat-timeout kill).
    pub crashes: u64,
    /// Workers killed for going silent past the heartbeat timeout.
    pub heartbeat_misses: u64,
    /// Shards abandoned by the crash-loop circuit breaker.
    pub shards_abandoned: u64,
    /// True when the run ended early because the stop file appeared.
    pub stopped: bool,
}

/// Fleet-fabric counters for one coordinated (`hunt serve`) campaign run.
///
/// Produced by [`crate::fleet::run_coordinator`] and surfaced through
/// `CampaignReport::fleet` and the CLI's `[fleet]` summary line (stderr,
/// so a fleet run's stdout stays byte-identical to a single-process run).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FleetStats {
    /// Workers admitted after a successful handshake (re-joins count).
    pub workers_joined: u64,
    /// Handshakes refused (protocol/config mismatch, or joining a
    /// draining coordinator).
    pub workers_rejected: u64,
    /// Non-empty job leases granted.
    pub leases_granted: u64,
    /// Connections forcibly closed by the coordinator (heartbeat timeout,
    /// unclean disconnect, or protocol violation).
    pub evictions: u64,
    /// Of the evictions, how many were for heartbeat silence.
    pub heartbeat_misses: u64,
    /// Jobs returned to the pending pool after a lease expired or its
    /// holder was evicted.
    pub jobs_reassigned: u64,
    /// Results for already-covered jobs, dropped by the first-`done`-wins
    /// merge rule (late delivery after reassignment).
    pub duplicate_results: u64,
    /// Jobs abandoned by the fleet-wide crash-loop circuit breaker.
    pub gave_up_jobs: u64,
    /// True when the run ended early because the stop file appeared.
    pub stopped: bool,
}

/// Result of an interleavings-to-expose measurement.
#[derive(Clone, Debug)]
pub struct ExposeResult {
    /// Interleavings (trials) executed until the predicate first held.
    pub interleavings: u32,
    /// Total engine steps consumed.
    pub steps: u64,
}

/// Runs trials under `kind` until `hit` returns true for some trial's
/// findings, or `max_trials` is exhausted.
///
/// This is the §5.4 experiment: for the bug-triggering concurrent tests,
/// SKI "requires 84 times more interleavings than Snowboard on average";
/// the gap comes solely from scheduling, which is exactly what varies here.
#[allow(clippy::too_many_arguments)]
pub fn interleavings_to_expose(
    exec: &mut Executor,
    booted: &BootedKernel,
    writer: &Program,
    reader: &Program,
    pmc: &Pmc,
    kind: SchedKind,
    seed: u64,
    max_trials: u32,
    hit: impl Fn(&[Finding]) -> bool,
) -> Option<ExposeResult> {
    let hints = pmc.hints();
    let mut snowboard = SnowboardSched::new(seed, hints);
    let mut ski = SkiSched::new(seed, hints.iter().map(|h| h.site));
    let mut steps = 0u64;
    for trial in 0..max_trials {
        let trial_seed = seed.wrapping_add(u64::from(trial));
        let mut random;
        let sched: &mut dyn Scheduler = match kind {
            SchedKind::Snowboard => {
                snowboard.begin_trial(trial_seed);
                &mut snowboard
            }
            SchedKind::Ski => {
                ski.begin_trial(trial_seed);
                &mut ski
            }
            SchedKind::Random => {
                random = RandomSched::new(trial_seed, 0.005);
                &mut random
            }
        };
        let r = exec.run(
            booted.snapshot.clone(),
            vec![
                booted.kernel.process_job(writer.clone()),
                booted.kernel.process_job(reader.clone()),
            ],
            sched,
        );
        steps += r.report.steps;
        let findings = sb_detect::analyze(&r.report);
        if hit(&findings) {
            return Some(ExposeResult {
                interleavings: trial + 1,
                steps,
            });
        }
    }
    None
}

/// Convenience predicate: any finding triaging to `bug_id`.
pub fn hits_bug(bug_id: u8) -> impl Fn(&[Finding]) -> bool {
    move |fs: &[Finding]| fs.iter().any(|f| crate::triage::triage(f) == Some(bug_id))
}

/// Aggregate statistics from a throughput measurement.
#[derive(Clone, Debug)]
pub struct ThroughputStats {
    /// Executions performed.
    pub executions: u32,
    /// Total engine steps.
    pub steps: u64,
    /// Total vCPU switches — the quantity §5.4 attributes SKI's slowdown
    /// to ("SKI's execution of more vCPU switches than Snowboard").
    pub switches: u64,
    /// Wall-clock time.
    pub elapsed: std::time::Duration,
}

/// Measures raw execution throughput for `n` concurrent executions of a
/// test pair under a given scheduler kind. Used by the §5.4 throughput
/// comparison.
#[allow(clippy::too_many_arguments)]
pub fn measure_throughput(
    exec: &mut Executor,
    booted: &BootedKernel,
    writer: &Program,
    reader: &Program,
    set_hints: &Pmc,
    kind: SchedKind,
    seed: u64,
    n: u32,
) -> ThroughputStats {
    let start = std::time::Instant::now();
    let mut steps = 0u64;
    let mut switches = 0u64;
    let hints = set_hints.hints();
    let mut snowboard = SnowboardSched::new(seed, hints);
    let mut ski = SkiSched::new(seed, hints.iter().map(|h| h.site));
    for trial in 0..n {
        let trial_seed = seed.wrapping_add(u64::from(trial));
        let mut random;
        let sched: &mut dyn Scheduler = match kind {
            SchedKind::Snowboard => {
                snowboard.begin_trial(trial_seed);
                &mut snowboard
            }
            SchedKind::Ski => {
                ski.begin_trial(trial_seed);
                &mut ski
            }
            SchedKind::Random => {
                random = RandomSched::new(trial_seed, 0.005);
                &mut random
            }
        };
        let r = exec.run(
            booted.snapshot.clone(),
            vec![
                booted.kernel.process_job(writer.clone()),
                booted.kernel.process_job(reader.clone()),
            ],
            sched,
        );
        steps += r.report.steps;
        switches += r.report.switches;
    }
    ThroughputStats {
        executions: n,
        steps,
        switches,
        elapsed: start.elapsed(),
    }
}

/// Picks the PMC whose hint *instructions* dynamically touch the most
/// distinct addresses across the profiles — the worst case for SKI, which
/// yields at those instructions "regardless of memory targets" (§5.4),
/// and the representative case for the throughput comparison.
pub fn hottest_pmc<'a>(
    set: &'a PmcSet,
    profiles: &[crate::profile::SeqProfile],
) -> Option<(crate::pmc::PmcId, &'a Pmc)> {
    use std::collections::{HashMap, HashSet};
    let mut addrs_of_site: HashMap<sb_vmm::Site, HashSet<u64>> = HashMap::new();
    for p in profiles {
        for a in &p.accesses {
            addrs_of_site.entry(a.site).or_default().insert(a.addr);
        }
    }
    let score = |p: &Pmc| {
        let w = addrs_of_site.get(&p.key.w.ins).map(HashSet::len).unwrap_or(0);
        let r = addrs_of_site.get(&p.key.r.ins).map(HashSet::len).unwrap_or(0);
        w + r
    };
    set.pmcs
        .iter()
        .enumerate()
        .max_by_key(|(_, p)| score(p))
        .map(|(id, p)| (id as crate::pmc::PmcId, p))
}

/// Finds the PMC in `set` that best matches a (write-site, read-site)
/// function-name pair — a convenience for wiring known bugs to their PMC in
/// examples and benches.
pub fn find_pmc_by_sites<'a>(
    set: &'a PmcSet,
    write_fn: &str,
    read_fn: &str,
) -> Option<(crate::pmc::PmcId, &'a Pmc)> {
    set.pmcs.iter().enumerate().find_map(|(id, p)| {
        let w = p.key.w.ins.display_name();
        let r = p.key.r.ins.display_name();
        if w.starts_with(write_fn) && r.starts_with(read_fn) {
            Some((id as crate::pmc::PmcId, p))
        } else {
            None
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rate_with_zero_lookups_is_zero_not_perfect() {
        let stats = StoreStats::default();
        assert_eq!(stats.hit_rate(), 0.0);
    }

    #[test]
    fn hit_rate_divides_hits_by_lookups() {
        let stats = StoreStats {
            profile_hits: 3,
            profile_misses: 1,
            ..StoreStats::default()
        };
        assert!((stats.hit_rate() - 0.75).abs() < f64::EPSILON);
    }
}
