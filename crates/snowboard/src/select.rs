//! PMC selection: exemplar choice and uncommon-first ordering (§4.3).
//!
//! Given a clustering, Snowboard "counts the cardinality of each cluster,
//! and then selects the exemplar to test from each cluster, from the least
//! populous — less common — to the most populous cluster". Random cluster
//! order (the Random S-INS-PAIR row of Table 3) and iterative multi-strategy
//! selection ("choose predicate A, test one exemplar from each A-cluster,
//! then choose predicate B ... excluding those tested before") are also
//! provided.

use std::collections::HashSet;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::cluster::{cluster, Cluster, Strategy};
use crate::pmc::{PmcId, PmcSet};

/// How clusters are ordered before exemplar selection.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum ClusterOrder {
    /// Least-populous first (the paper's default).
    UncommonFirst,
    /// Random order (the "Random S-INS-PAIR" ablation).
    Random,
}

/// Orders clusters per `order` (stable and deterministic for a given seed).
pub fn order_clusters(mut clusters: Vec<Cluster>, order: ClusterOrder, seed: u64) -> Vec<Cluster> {
    match order {
        ClusterOrder::UncommonFirst => {
            clusters.sort_by_key(|c| (c.len(), c.key));
        }
        ClusterOrder::Random => {
            let mut rng = StdRng::seed_from_u64(seed);
            clusters.shuffle(&mut rng);
        }
    }
    clusters
}

/// Selects one exemplar PMC per cluster, in cluster order, skipping PMCs in
/// `exclude` (already tested under an earlier strategy). The exemplar is
/// drawn at random from the cluster (§4.4: "one PMC is chosen from each
/// cluster ... A PMC may correspond to multiple test pairs; one pair is
/// chosen among them at random").
pub fn exemplars(
    set: &PmcSet,
    strategy: Strategy,
    order: ClusterOrder,
    seed: u64,
    exclude: &HashSet<PmcId>,
) -> Vec<PmcId> {
    exemplars_traced(set, strategy, order, seed, exclude, &sb_obs::Tracer::disabled())
}

/// [`exemplars`], emitting selection metrics to `tracer`: the number of
/// clusters (`select.clusters`), one `select.cluster_size` histogram sample
/// per cluster, and the exemplar count (`select.exemplars`).
pub fn exemplars_traced(
    set: &PmcSet,
    strategy: Strategy,
    order: ClusterOrder,
    seed: u64,
    exclude: &HashSet<PmcId>,
    tracer: &sb_obs::Tracer,
) -> Vec<PmcId> {
    let clusters = order_clusters(cluster(set, strategy), order, seed);
    tracer.count(sb_obs::keys::CLUSTERS, clusters.len() as u64);
    for c in &clusters {
        tracer.hist(sb_obs::keys::CLUSTER_SIZE, c.len() as u64);
    }
    let mut rng = StdRng::seed_from_u64(seed ^ 0xE7E7_5EED);
    let mut picked = HashSet::new();
    let mut out = Vec::with_capacity(clusters.len());
    for c in &clusters {
        let candidates: Vec<PmcId> = c
            .members
            .iter()
            .copied()
            .filter(|id| !exclude.contains(id) && !picked.contains(id))
            .collect();
        if let Some(&id) = candidates.choose(&mut rng) {
            picked.insert(id);
            out.push(id);
        }
    }
    tracer.count(sb_obs::keys::EXEMPLARS, out.len() as u64);
    out
}

/// Iterative multi-strategy selection: runs each strategy in turn, excluding
/// exemplars chosen by earlier strategies, and returns the concatenated
/// test order. This is the "All clustering strategies combined" mode used
/// for the 5.3.10 campaign (§5.1).
pub fn combined_exemplars(
    set: &PmcSet,
    strategies: &[Strategy],
    seed: u64,
) -> Vec<(Strategy, PmcId)> {
    let mut tested: HashSet<PmcId> = HashSet::new();
    let mut out = Vec::new();
    for (i, s) in strategies.iter().enumerate() {
        let picks = exemplars(set, *s, ClusterOrder::UncommonFirst, seed.wrapping_add(i as u64), &tested);
        for id in picks {
            tested.insert(id);
            out.push((*s, id));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pmc::{Pmc, PmcKey, SideKey};
    use sb_vmm::site;

    fn pmc(wins: &str, val: u64) -> Pmc {
        Pmc {
            key: PmcKey {
                w: SideKey { ins: site!(wins), addr: 0x10, len: 8, value: val },
                r: SideKey { ins: site!("r"), addr: 0x10, len: 8, value: 0 },
            },
            df_leader: false,
            pairs: vec![(0, 1)],
        }
    }

    fn uneven_set() -> PmcSet {
        // Write site "hot" appears with 5 values (one big S-FULL family),
        // "cold" with 1.
        let mut pmcs: Vec<Pmc> = (1..=5).map(|v| pmc("hot", v)).collect();
        pmcs.push(pmc("cold", 9));
        PmcSet { pmcs }
    }

    #[test]
    fn uncommon_first_puts_small_clusters_first() {
        let set = uneven_set();
        let picks = exemplars(
            &set,
            Strategy::SInsPair,
            ClusterOrder::UncommonFirst,
            1,
            &HashSet::new(),
        );
        // Two clusters: (cold,r) size 1 and (hot,r) size 5; cold first.
        assert_eq!(picks.len(), 2);
        assert_eq!(picks[0], 5, "the singleton cluster's exemplar leads");
    }

    #[test]
    fn exclusion_suppresses_already_tested_pmcs() {
        let set = uneven_set();
        let mut exclude = HashSet::new();
        exclude.insert(5 as PmcId);
        let picks = exemplars(
            &set,
            Strategy::SInsPair,
            ClusterOrder::UncommonFirst,
            1,
            &exclude,
        );
        assert_eq!(picks.len(), 1, "cold cluster fully excluded");
        assert!(picks[0] < 5);
    }

    #[test]
    fn selection_is_seed_deterministic() {
        let set = uneven_set();
        let a = exemplars(&set, Strategy::SFull, ClusterOrder::UncommonFirst, 3, &HashSet::new());
        let b = exemplars(&set, Strategy::SFull, ClusterOrder::UncommonFirst, 3, &HashSet::new());
        assert_eq!(a, b);
    }

    #[test]
    fn random_order_differs_from_uncommon_first_eventually() {
        let set = PmcSet {
            pmcs: (0..32).map(|i| pmc(&format!("w{i}"), 1)).collect(),
        };
        let u = exemplars(&set, Strategy::SInsPair, ClusterOrder::UncommonFirst, 5, &HashSet::new());
        let r = exemplars(&set, Strategy::SInsPair, ClusterOrder::Random, 5, &HashSet::new());
        assert_eq!(u.len(), r.len());
        assert_ne!(u, r, "random order should differ for 32 singleton clusters");
    }

    #[test]
    fn combined_selection_never_repeats_a_pmc() {
        let set = uneven_set();
        let picks = combined_exemplars(
            &set,
            &[Strategy::SInsPair, Strategy::SFull, Strategy::SMem],
            7,
        );
        let ids: Vec<PmcId> = picks.iter().map(|(_, id)| *id).collect();
        let mut dedup = ids.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(ids.len(), dedup.len(), "no PMC tested twice: {ids:?}");
        // S-FULL covers everything eventually: all 6 PMCs appear.
        assert_eq!(ids.len(), 6);
    }
}
