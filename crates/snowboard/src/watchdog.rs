//! Per-job watchdog: step budgets and wall-clock deadlines.
//!
//! A single bad PMC can wedge a campaign worker — a pathological schedule
//! that never converges, or a kernel body that spins. The watchdog bounds
//! each job by *engine steps* (deterministic, replayable) and *wall-clock
//! time* (catches everything else), and the campaign driver converts an
//! overrun into [`crate::error::Error::Hang`] so the worker moves on
//! instead of stalling the fleet.

use std::time::{Duration, Instant};

/// Resource limits for one campaign job (all trials of one PMC).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct JobBudget {
    /// Maximum engine steps across all trials of the job; `None` = unbounded.
    pub max_steps: Option<u64>,
    /// Maximum wall-clock time for the job; `None` = unbounded.
    pub deadline: Option<Duration>,
}

impl Default for JobBudget {
    /// Steps are unbounded by default (trial counts already bound them
    /// loosely); the wall-clock deadline defaults to 60 s, generous for the
    /// simulated kernels but tight enough to unwedge a stuck worker.
    fn default() -> Self {
        JobBudget {
            max_steps: None,
            deadline: Some(Duration::from_secs(60)),
        }
    }
}

impl JobBudget {
    /// A budget with no limits at all (used by tests and baselines that
    /// must never classify a job as hung).
    pub fn unbounded() -> Self {
        JobBudget {
            max_steps: None,
            deadline: None,
        }
    }
}

/// Why a watchdog fired.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OverrunReason {
    /// The cumulative step count crossed `max_steps`.
    Steps,
    /// Wall-clock time crossed `deadline`.
    Deadline,
    /// A fault-injection hook forced expiry (see [`crate::fault::FaultPlan`]).
    Forced,
}

impl OverrunReason {
    /// Stable tag used in error messages and checkpoints.
    pub fn tag(self) -> &'static str {
        match self {
            OverrunReason::Steps => "steps",
            OverrunReason::Deadline => "deadline",
            OverrunReason::Forced => "forced",
        }
    }
}

/// A watchdog overrun observation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Overrun {
    /// What tripped.
    pub reason: OverrunReason,
    /// Steps consumed at the moment of expiry.
    pub steps: u64,
    /// Wall-clock time elapsed at the moment of expiry.
    pub elapsed: Duration,
}

/// A running watchdog for one job. Checked cooperatively between trials —
/// the engine itself is deterministic and single-threaded, so between-trial
/// granularity is the finest preemption point that keeps replays exact.
#[derive(Debug)]
pub struct Watchdog {
    budget: JobBudget,
    started: Instant,
    forced: bool,
    tracer: sb_obs::Tracer,
}

impl Watchdog {
    /// Starts the clock for one job.
    pub fn start(budget: JobBudget) -> Self {
        Watchdog::start_traced(budget, &sb_obs::Tracer::disabled())
    }

    /// [`Watchdog::start`], emitting a `watchdog.fires` count to `tracer`
    /// each time [`check`](Self::check) observes an overrun.
    pub fn start_traced(budget: JobBudget, tracer: &sb_obs::Tracer) -> Self {
        Watchdog {
            budget,
            started: Instant::now(),
            forced: false,
            tracer: tracer.clone(),
        }
    }

    /// Marks the watchdog as already expired regardless of budget; the next
    /// [`check`](Self::check) reports a forced overrun. Used by fault
    /// injection to exercise hang handling deterministically.
    pub fn force_expired(&mut self) {
        self.forced = true;
    }

    /// Checks the budget against the steps consumed so far. Returns the
    /// overrun if any limit has been crossed.
    pub fn check(&self, steps: u64) -> Option<Overrun> {
        let elapsed = self.started.elapsed();
        let reason = if self.forced {
            OverrunReason::Forced
        } else if self.budget.max_steps.is_some_and(|cap| steps >= cap) {
            OverrunReason::Steps
        } else if self.budget.deadline.is_some_and(|cap| elapsed >= cap) {
            OverrunReason::Deadline
        } else {
            return None;
        };
        self.tracer.count(sb_obs::keys::WATCHDOG_FIRES, 1);
        Some(Overrun {
            reason,
            steps,
            elapsed,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_budget_never_expires() {
        let dog = Watchdog::start(JobBudget::unbounded());
        assert_eq!(dog.check(u64::MAX), None);
    }

    #[test]
    fn step_budget_expiry() {
        let dog = Watchdog::start(JobBudget {
            max_steps: Some(100),
            deadline: None,
        });
        assert_eq!(dog.check(99), None);
        let overrun = dog.check(100).expect("at the cap counts as overrun");
        assert_eq!(overrun.reason, OverrunReason::Steps);
        assert_eq!(overrun.steps, 100);
    }

    #[test]
    fn deadline_expiry() {
        let dog = Watchdog::start(JobBudget {
            max_steps: None,
            deadline: Some(Duration::ZERO),
        });
        let overrun = dog.check(0).expect("zero deadline expires immediately");
        assert_eq!(overrun.reason, OverrunReason::Deadline);
    }

    #[test]
    fn forced_expiry_wins_over_budgets() {
        let mut dog = Watchdog::start(JobBudget::unbounded());
        assert_eq!(dog.check(10), None);
        dog.force_expired();
        let overrun = dog.check(10).expect("forced expiry");
        assert_eq!(overrun.reason, OverrunReason::Forced);
    }

    #[test]
    fn default_budget_has_deadline_only() {
        let b = JobBudget::default();
        assert_eq!(b.max_steps, None);
        assert_eq!(b.deadline, Some(Duration::from_secs(60)));
    }
}
