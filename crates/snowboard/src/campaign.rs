//! Concurrent test execution — Algorithm 2's driver loop (§4.4).
//!
//! For each selected PMC (in uncommon-first cluster order): pick one of its
//! test pairs at random, build a concurrent test with the PMC as the
//! scheduling hint, and run up to `NUMBER_OF_TRIALS` trials from the boot
//! snapshot under [`SnowboardSched`]. Each trial reseeds the scheduler
//! (`random.seed(SEED + trial)`), keeps the learned `flags`, feeds every
//! execution to the bug detectors, and opportunistically adds incidental
//! PMCs observed in the trial to the watch set (Algorithm 2 lines 26–27).
//!
//! The driver is fault tolerant, because a campaign sized like the paper's
//! (days of wall clock across a worker fleet) will see individual jobs
//! fail. Per job: a [`Watchdog`] bounds steps and wall-clock time (overrun
//! → [`Error::Hang`]), worker panics are caught and classified, retryable
//! failures get up to [`RetryPolicy::max_attempts`] attempts with
//! exponential backoff and a deterministic per-attempt reseed
//! ([`crate::retry::reseed`] — attempt 0 keeps the historical seed, so
//! clean runs are bit-identical to pre-fault-tolerance builds), and jobs
//! that exhaust their budget land in [`CampaignReport::quarantined`] with a
//! full error chain instead of killing the campaign. Progress checkpoints
//! ([`CheckpointCfg`]) let a killed campaign resume without repeating
//! finished jobs, and a [`FaultPlan`] can inject panics, hangs, transient
//! errors, and queue closure at chosen job indices to exercise all of the
//! above deterministically.

use std::collections::{BTreeMap, HashMap};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use sb_detect::Finding;
use sb_kernel::{BootedKernel, Program};
use sb_queue::{panic_message, run_jobs_fallible, JobError, PoolOpts};
use sb_vmm::access::AccessKind;
use sb_vmm::replay::{RecordingSched, Schedule};
use sb_vmm::sched::{Scheduler as _, SnowboardSched};
use sb_vmm::site::Site;
use sb_vmm::Executor;

use crate::checkpoint::{Checkpoint, CheckpointCfg};
use crate::error::{Error, FailureKind, SbResult};
use crate::fault::FaultPlan;
use crate::pmc::{Pmc, PmcId, PmcSet};
use crate::retry::{reseed, RetryPolicy};
use crate::triage::{triage, IssueRecord};
use crate::watchdog::{JobBudget, Watchdog};

/// Per-job seed stride: job `i` starts from `seed + i * STRIDE` (golden
/// ratio, so neighboring jobs land in unrelated parts of the seed space).
const JOB_SEED_STRIDE: u64 = 0x9E37_79B9_7F4A_7C15;

/// Campaign configuration.
#[derive(Clone, Debug)]
pub struct CampaignCfg {
    /// Base random seed.
    pub seed: u64,
    /// Maximum trials per PMC (the paper uses 64).
    pub trials_per_pmc: u32,
    /// Test budget: how many exemplar PMCs to execute.
    pub max_tested_pmcs: usize,
    /// Worker threads (each owns an executor — a "machine B").
    pub workers: usize,
    /// Stop a PMC's trials at the first detector finding.
    pub stop_on_finding: bool,
    /// Enable incidental-PMC pickup (Algorithm 2 lines 26–27).
    pub incidental: bool,
    /// Retry policy for transient job failures.
    pub retry: RetryPolicy,
    /// Per-job step/wall-clock budget enforced by the watchdog.
    pub budget: JobBudget,
    /// Periodic progress checkpointing; `None` disables it.
    pub checkpoint: Option<CheckpointCfg>,
    /// Resume from this checkpoint file: jobs it covers are not re-run.
    pub resume_from: Option<PathBuf>,
    /// Lenient resume (`--resume-or-fresh`): a missing, corrupt, or
    /// mismatched checkpoint logs a warning and starts fresh instead of
    /// aborting the campaign.
    pub resume_lenient: bool,
    /// Scripted fault injection (empty in production).
    pub fault_plan: FaultPlan,
    /// Structured tracer; disabled by default. When enabled, the campaign
    /// emits one `job` event per resolved job, scheduler-decision counters
    /// at job boundaries, and watchdog/retry counters.
    pub tracer: sb_obs::Tracer,
}

impl Default for CampaignCfg {
    fn default() -> Self {
        CampaignCfg {
            seed: 2021,
            trials_per_pmc: 64,
            max_tested_pmcs: usize::MAX,
            workers: 4,
            stop_on_finding: true,
            incidental: true,
            retry: RetryPolicy::default(),
            budget: JobBudget::default(),
            checkpoint: None,
            resume_from: None,
            resume_lenient: false,
            fault_plan: FaultPlan::default(),
            tracer: sb_obs::Tracer::disabled(),
        }
    }
}

/// The outcome of testing one concurrent test (one PMC or one baseline
/// pairing).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PmcTestOutcome {
    /// The PMC under test (`None` for baseline pairings without hints).
    pub pmc: Option<PmcId>,
    /// The (writer test, reader test) pair executed.
    pub pair: (u32, u32),
    /// Trials actually run.
    pub trials_run: u32,
    /// Whether some trial actually exercised the predicted channel
    /// (write-before-read with value flow) — the §5.3.2 accuracy signal.
    pub exercised: bool,
    /// Detector findings, deduplicated within this test.
    pub findings: Vec<Finding>,
    /// Engine steps consumed across all trials (cost accounting).
    pub steps: u64,
    /// Trial index of the first finding, if any.
    pub first_finding_trial: Option<u32>,
    /// A recorded schedule that reproduces the first finding
    /// deterministically (replay with [`sb_vmm::replay::ReplaySched`]).
    pub repro_schedule: Option<Schedule>,
    /// Attempts it took to complete this job (1 = first try).
    pub attempts: u32,
}

/// A job that failed permanently and was set aside instead of aborting the
/// campaign.
#[derive(Clone, Debug, PartialEq)]
pub struct QuarantineRecord {
    /// Campaign job index (position in the budgeted exemplar order).
    pub job: usize,
    /// The PMC the job was testing, if known.
    pub pmc: Option<PmcId>,
    /// Attempts consumed before quarantine (0 = never dispatched).
    pub attempts: u32,
    /// Failure classification.
    pub kind: FailureKind,
    /// Rendered error chain, outermost first.
    pub chain: Vec<String>,
}

/// Aggregated campaign results.
#[derive(Clone, Debug, Default)]
pub struct CampaignReport {
    /// Per-test outcomes, in test order.
    pub outcomes: Vec<PmcTestOutcome>,
    /// Distinct issues discovered, in discovery order, triaged against the
    /// ground-truth registry.
    pub issues: Vec<IssueRecord>,
    /// Total engine steps across the campaign.
    pub total_steps: u64,
    /// Total executions (trials) across the campaign.
    pub executions: u64,
    /// Jobs that failed permanently, in job order. A non-empty list means
    /// the campaign completed *despite* failures, not that it failed.
    pub quarantined: Vec<QuarantineRecord>,
    /// Profile/PMC store counters, when the pipeline ran against a persistent
    /// store (`None` for in-memory runs).
    pub store: Option<crate::metrics::StoreStats>,
    /// Process-supervision counters, when the campaign ran under the
    /// multi-process supervisor (`None` for in-process runs).
    pub supervise: Option<crate::metrics::SuperviseStats>,
    /// Fleet-fabric counters, when the campaign ran under a TCP
    /// coordinator (`None` otherwise).
    pub fleet: Option<crate::metrics::FleetStats>,
}

impl CampaignReport {
    /// Number of concurrent tests executed.
    pub fn tested(&self) -> usize {
        self.outcomes.len()
    }

    /// Number of tests that exercised their predicted channel.
    pub fn exercised(&self) -> usize {
        self.outcomes.iter().filter(|o| o.exercised).count()
    }

    /// PMC accuracy (§5.3.2): exercised / tested.
    pub fn accuracy(&self) -> f64 {
        if self.outcomes.is_empty() {
            0.0
        } else {
            self.exercised() as f64 / self.tested() as f64
        }
    }

    /// The distinct ground-truth bug ids found.
    pub fn bug_ids(&self) -> Vec<u8> {
        let mut ids: Vec<u8> = self.issues.iter().filter_map(|i| i.bug_id).collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// Quarantined-job counts per failure kind, for summary lines.
    pub fn quarantine_histogram(&self) -> Vec<(FailureKind, usize)> {
        let mut counts: BTreeMap<&'static str, (FailureKind, usize)> = BTreeMap::new();
        for q in &self.quarantined {
            counts.entry(q.kind.tag()).or_insert((q.kind, 0)).1 += 1;
        }
        counts.into_values().collect()
    }
}

/// Index from write-side instruction to PMC ids, used for fast incidental
/// PMC lookup during trials.
pub struct IncidentalIndex {
    by_write_site: HashMap<Site, Vec<PmcId>>,
}

impl IncidentalIndex {
    /// Builds the index over a PMC set.
    pub fn build(set: &PmcSet) -> Self {
        let mut by_write_site: HashMap<Site, Vec<PmcId>> = HashMap::new();
        for (id, p) in set.pmcs.iter().enumerate() {
            by_write_site
                .entry(p.key.w.ins)
                .or_default()
                .push(id as PmcId);
        }
        IncidentalIndex { by_write_site }
    }
}

/// Checks whether a trial trace exercised the PMC: a writer-thread write
/// matching the write side, followed by a reader-thread read matching the
/// read side that observed the written value over the overlap.
pub fn channel_exercised(trace: &[sb_vmm::Access], pmc: &Pmc) -> bool {
    let [hw, hr] = pmc.hints();
    let writes: Vec<&sb_vmm::Access> = trace
        .iter()
        .filter(|a| a.thread == 0 && hw.matches(a))
        .collect();
    if writes.is_empty() {
        return false;
    }
    trace
        .iter()
        .filter(|r| r.thread == 1 && hr.matches(r))
        .any(|r| {
            writes.iter().any(|w| {
                if w.seq >= r.seq {
                    return false;
                }
                match sb_vmm::access::range_overlap(w.addr, w.len, r.addr, r.len) {
                    Some((start, len)) => {
                        w.project_value(start, len) == r.project_value(start, len)
                    }
                    None => false,
                }
            })
        })
}

/// Scans a trial trace for PMCs (other than those already watched) whose
/// write *and* read sides both appeared, returning one at random.
fn find_incidental_pmc(
    trace: &[sb_vmm::Access],
    set: &PmcSet,
    index: &IncidentalIndex,
    watched: &mut std::collections::HashSet<PmcId>,
    rng: &mut StdRng,
) -> Option<PmcId> {
    const MAX_CANDIDATES: usize = 256;
    let mut candidates: Vec<PmcId> = Vec::new();
    let mut seen_sites = std::collections::HashSet::new();
    for a in trace.iter().filter(|a| a.kind == AccessKind::Write) {
        if !seen_sites.insert(a.site) {
            continue;
        }
        if let Some(ids) = index.by_write_site.get(&a.site) {
            for id in ids {
                if candidates.len() >= MAX_CANDIDATES {
                    break;
                }
                if !watched.contains(id) {
                    candidates.push(*id);
                }
            }
        }
    }
    candidates.retain(|id| {
        let p = set.get(*id);
        let [hw, hr] = p.hints();
        trace.iter().any(|a| hw.matches(a)) && trace.iter().any(|a| hr.matches(a))
    });
    let pick = candidates.choose(rng).copied();
    if let Some(id) = pick {
        watched.insert(id);
    }
    pick
}

/// Tests one PMC: the inner loop of Algorithm 2.
///
/// The watchdog is checked between trials (the finest boundary that keeps
/// replays deterministic); an overrun aborts the job with [`Error::Hang`].
#[allow(clippy::too_many_arguments)]
pub fn test_one_pmc(
    exec: &mut Executor,
    booted: &BootedKernel,
    corpus: &[Program],
    set: &PmcSet,
    index: &IncidentalIndex,
    id: PmcId,
    seed: u64,
    cfg: &CampaignCfg,
    dog: &Watchdog,
) -> SbResult<PmcTestOutcome> {
    let pmc = set.get(id);
    let mut rng = StdRng::seed_from_u64(seed);
    let pair = *pmc
        .pairs
        .choose(&mut rng)
        .ok_or(Error::EmptyPmc { pmc: id })?;
    let fetch = |test: u32| -> SbResult<Program> {
        corpus
            .get(test as usize)
            .cloned()
            .ok_or(Error::BadTestId {
                test,
                corpus: corpus.len(),
            })
    };
    let wprog = fetch(pair.0)?;
    let rprog = fetch(pair.1)?;
    let mut sched = SnowboardSched::new(seed, pmc.hints());
    // Aggregate scheduler decisions in atomics; published as a handful of
    // counter events when the job ends — never one trace line per access.
    let decisions = Arc::new(sb_obs::CountingObserver::new());
    if cfg.tracer.enabled() {
        sched.set_observer(Some(decisions.clone() as Arc<dyn sb_vmm::sched::DecisionObserver>));
    }
    let mut watched: std::collections::HashSet<PmcId> = [id].into_iter().collect();
    let mut out = PmcTestOutcome {
        pmc: Some(id),
        pair,
        trials_run: 0,
        exercised: false,
        findings: Vec::new(),
        steps: 0,
        first_finding_trial: None,
        repro_schedule: None,
        attempts: 1,
    };
    let mut dedup = std::collections::HashSet::new();
    for trial in 0..cfg.trials_per_pmc {
        if let Some(overrun) = dog.check(out.steps) {
            decisions.publish(&cfg.tracer);
            return Err(Error::Hang {
                steps: overrun.steps,
                elapsed: overrun.elapsed,
                trials_run: out.trials_run,
                tripped: overrun.reason.tag(),
            });
        }
        // Checkpoint the scheduler (flags included) so a finding trial can
        // be re-run under a recorder for deterministic reproduction.
        let sched_checkpoint = sched.clone();
        sched.begin_trial(seed.wrapping_add(u64::from(trial)));
        let r = exec.try_run(
            booted.snapshot.clone(),
            vec![
                booted.kernel.process_job(wprog.clone()),
                booted.kernel.process_job(rprog.clone()),
            ],
            &mut sched,
        )?;
        out.trials_run += 1;
        out.steps += r.report.steps;
        out.exercised |= channel_exercised(&r.report.trace, pmc);
        let findings = sb_detect::analyze_traced(&r.report, &cfg.tracer);
        let mut found_new = false;
        for f in findings {
            if dedup.insert(f.dedup_key()) {
                out.findings.push(f);
                found_new = true;
            }
        }
        if found_new && out.first_finding_trial.is_none() {
            out.first_finding_trial = Some(trial);
            // Re-run this exact trial from the checkpoint under a recorder
            // to capture a portable reproduction schedule (§6). The replica
            // must not report decisions — the trial already counted them.
            let mut replica = sched_checkpoint;
            replica.set_observer(None);
            replica.begin_trial(seed.wrapping_add(u64::from(trial)));
            let mut recorder = RecordingSched::new(replica);
            let _ = exec.try_run(
                booted.snapshot.clone(),
                vec![
                    booted.kernel.process_job(wprog.clone()),
                    booted.kernel.process_job(rprog.clone()),
                ],
                &mut recorder,
            )?;
            let (schedule, _) = recorder.finish();
            out.repro_schedule = Some(schedule);
        }
        if found_new && cfg.stop_on_finding {
            break;
        }
        if cfg.incidental {
            if let Some(new_id) =
                find_incidental_pmc(&r.report.trace, set, index, &mut watched, &mut rng)
            {
                sched.add_pmc(set.get(new_id).hints());
            }
        }
    }
    decisions.publish(&cfg.tracer);
    Ok(out)
}

/// What one campaign job resolved to after all retry attempts.
#[derive(Clone, Debug)]
pub(crate) enum JobVerdict {
    /// The job completed and produced an outcome.
    Completed(PmcTestOutcome),
    /// The job failed permanently and was set aside.
    Quarantined(QuarantineRecord),
}

/// Runs one job to a verdict: attempt, classify, retry or quarantine.
///
/// `slot` holds the worker's executor; it is dropped and rebuilt whenever a
/// panic or executor error may have left it corrupt.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_one_job(
    slot: &mut Option<Executor>,
    job: usize,
    id: PmcId,
    booted: &BootedKernel,
    corpus: &[Program],
    set: &PmcSet,
    index: &IncidentalIndex,
    cfg: &CampaignCfg,
) -> JobVerdict {
    let base_seed = cfg
        .seed
        .wrapping_add((job as u64).wrapping_mul(JOB_SEED_STRIDE));
    let mut attempts = 0u32;
    loop {
        let attempt = attempts;
        attempts += 1;
        if attempt > 0 {
            std::thread::sleep(cfg.retry.backoff_traced(attempt, &cfg.tracer));
        }
        let seed = reseed(base_seed, attempt);
        let result = catch_unwind(AssertUnwindSafe(|| -> SbResult<PmcTestOutcome> {
            if cfg.fault_plan.should_panic(job) {
                panic!("fault injection: forced worker panic on job {job}");
            }
            if cfg.fault_plan.should_fail_transiently(job, attempt) {
                return Err(Error::Injected { attempt });
            }
            let exec = slot.get_or_insert_with(|| Executor::new(2));
            let mut dog = Watchdog::start_traced(cfg.budget, &cfg.tracer);
            if cfg.fault_plan.should_hang(job) {
                dog.force_expired();
            }
            test_one_pmc(exec, booted, corpus, set, index, id, seed, cfg, &dog)
        }));
        let err = match result {
            Ok(Ok(mut out)) => {
                out.attempts = attempts;
                return JobVerdict::Completed(out);
            }
            Ok(Err(e)) => {
                if matches!(e, Error::Exec { .. }) {
                    // The executor refused or half-dispatched a run; retire
                    // it so the next attempt starts from a clean machine.
                    *slot = None;
                }
                e
            }
            Err(payload) => {
                *slot = None;
                Error::WorkerPanic {
                    message: panic_message(payload),
                }
            }
        };
        if !err.is_retryable() || attempts >= cfg.retry.max_attempts {
            return JobVerdict::Quarantined(QuarantineRecord {
                job,
                pmc: Some(id),
                attempts,
                kind: err.failure_kind(),
                chain: err.chain(),
            });
        }
    }
}

/// Loads and validates the resume checkpoint from `cfg`, or begins a fresh
/// one. Shared by the in-process campaign and both sides of the
/// multi-process supervisor (which resumes workers from the supervisor's
/// own merged checkpoint).
pub(crate) fn load_or_begin_checkpoint(
    cfg: &CampaignCfg,
    budgeted: &[PmcId],
) -> SbResult<Checkpoint> {
    match &cfg.resume_from {
        Some(path) => {
            let loaded = Checkpoint::load(path)
                .and_then(|cp| cp.validate(cfg.seed, budgeted).map(|()| cp));
            match loaded {
                Ok(cp) => Ok(cp),
                Err(e) if cfg.resume_lenient => {
                    eprintln!(
                        "[campaign] warning: ignoring unusable checkpoint {}: {e} — starting fresh",
                        path.display()
                    );
                    Ok(Checkpoint::begin(cfg.seed, budgeted))
                }
                Err(e) => Err(e),
            }
        }
        None => Ok(Checkpoint::begin(cfg.seed, budgeted)),
    }
}

/// Emits the per-job trace record and counters for a resolved job —
/// identical whether the verdict arrived from an in-process pool worker or
/// over the supervisor's wire protocol, so supervised traces verify with
/// the same rules.
pub(crate) fn trace_job_verdict(tracer: &sb_obs::Tracer, job: usize, v: &JobVerdict) {
    match v {
        JobVerdict::Completed(out) => {
            tracer.emit(&sb_obs::Event::Job {
                t: tracer.now_us(),
                job: job as u64,
                trials: u64::from(out.trials_run),
                steps: out.steps,
                findings: out.findings.len() as u64,
                attempts: u64::from(out.attempts),
                quarantined: false,
            });
            tracer.count(sb_obs::keys::TRIALS, u64::from(out.trials_run));
            tracer.count(sb_obs::keys::TRIAL_STEPS, out.steps);
            tracer.count(sb_obs::keys::JOBS_COMPLETED, 1);
        }
        JobVerdict::Quarantined(q) => {
            tracer.emit(&sb_obs::Event::Job {
                t: tracer.now_us(),
                job: job as u64,
                trials: 0,
                steps: 0,
                findings: 0,
                attempts: u64::from(q.attempts),
                quarantined: true,
            });
            tracer.count(sb_obs::keys::JOBS_QUARANTINED, 1);
        }
    }
}

/// Folds a pool-level result into a verdict. Pool-level failures are the
/// safety net: `run_one_job` already catches panics, so `JobError::Panic`
/// here means the machinery around it died; `Rejected` means the queue
/// closed before dispatch.
fn fold_pool_result(job: usize, id: PmcId, r: &Result<JobVerdict, JobError>) -> JobVerdict {
    match r {
        Ok(v) => v.clone(),
        Err(JobError::Rejected) => JobVerdict::Quarantined(QuarantineRecord {
            job,
            pmc: Some(id),
            attempts: 0,
            kind: FailureKind::Rejected,
            chain: Error::QueueClosed.chain(),
        }),
        Err(JobError::Panic { message }) => JobVerdict::Quarantined(QuarantineRecord {
            job,
            pmc: Some(id),
            attempts: 1,
            kind: FailureKind::Panic,
            chain: Error::WorkerPanic {
                message: message.clone(),
            }
            .chain(),
        }),
    }
}

/// Runs a full campaign over an ordered exemplar list.
///
/// Never aborts on per-job failure: jobs that exhaust their retry budget
/// appear in [`CampaignReport::quarantined`]. Returns `Err` only for
/// campaign-level problems — an unreadable/foreign resume checkpoint, or a
/// final checkpoint write failure.
pub fn run_campaign(
    booted: &BootedKernel,
    corpus: &[Program],
    set: &PmcSet,
    exemplars: &[PmcId],
    cfg: &CampaignCfg,
) -> SbResult<CampaignReport> {
    let budgeted: Vec<PmcId> = exemplars
        .iter()
        .copied()
        .take(cfg.max_tested_pmcs)
        .collect();
    let index = Arc::new(IncidentalIndex::build(set));
    let _campaign_span = cfg.tracer.span("campaign");

    let mut cp = load_or_begin_checkpoint(cfg, &budgeted)?;

    // Jobs the checkpoint does not already cover, as (job index, PMC id).
    let pending: Vec<(usize, PmcId)> = budgeted
        .iter()
        .copied()
        .enumerate()
        .filter(|(job, _)| !cp.covers(*job))
        .collect();
    let pending_meta: Vec<(usize, PmcId)> = pending.clone();

    // Map the fault plan's campaign-level queue-closure index onto the
    // pending job list the pool actually sees.
    let close_before = cfg.fault_plan.close_queue_before.and_then(|cut| {
        pending_meta.iter().position(|(job, _)| *job >= cut)
    });

    let every = cfg.checkpoint.as_ref().map_or(usize::MAX, |c| c.every.max(1));
    let ckpt_path = cfg.checkpoint.as_ref().map(|c| c.path.clone());
    let mut results_seen = 0usize;
    let on_result = {
        let cp = &mut cp;
        let pending_meta = &pending_meta;
        let ckpt_path = ckpt_path.clone();
        let results_seen = &mut results_seen;
        let tracer = cfg.tracer.clone();
        move |slot: usize, r: &Result<JobVerdict, JobError>| {
            let (job, id) = pending_meta[slot];
            let verdict = fold_pool_result(job, id, r);
            trace_job_verdict(&tracer, job, &verdict);
            match verdict {
                JobVerdict::Completed(out) => {
                    cp.outcomes.insert(job, out);
                }
                JobVerdict::Quarantined(q) => {
                    // Rejected jobs never ran; leave them out of the
                    // checkpoint so a resumed campaign retries them.
                    if q.kind != FailureKind::Rejected {
                        cp.quarantined.insert(job, q);
                    }
                }
            }
            *results_seen += 1;
            if results_seen.is_multiple_of(every) {
                if let Some(path) = &ckpt_path {
                    // Periodic saves are best effort; the final save below
                    // is the authoritative one and surfaces errors.
                    let _ = cp.save(path);
                }
            }
        }
    };

    let pool_results = run_jobs_fallible(
        pending,
        cfg.workers,
        || None::<Executor>,
        |slot, (job, id)| run_one_job(slot, job, id, booted, corpus, set, &index, cfg),
        PoolOpts {
            on_result: Some(Box::new(on_result)),
            close_before,
        },
    );

    if let Some(path) = &ckpt_path {
        cp.save(path)?;
    }

    // Rejected jobs are reported (they did not complete) even though they
    // are not checkpointed.
    let mut quarantined = cp.quarantined.clone();
    for (slot, r) in pool_results.iter().enumerate() {
        let (job, id) = pending_meta[slot];
        if let JobVerdict::Quarantined(q) = fold_pool_result(job, id, r) {
            quarantined.entry(q.job).or_insert(q);
        }
    }

    let outcomes: Vec<PmcTestOutcome> = cp.outcomes.values().cloned().collect();
    let mut report = aggregate(outcomes);
    report.quarantined = quarantined.into_values().collect();
    Ok(report)
}

/// Aggregates per-test outcomes into a campaign report (shared with the
/// baselines).
pub fn aggregate(outcomes: Vec<PmcTestOutcome>) -> CampaignReport {
    let mut report = CampaignReport::default();
    let mut seen = std::collections::HashSet::new();
    let mut cumulative_steps = 0u64;
    for (i, o) in outcomes.iter().enumerate() {
        cumulative_steps += o.steps;
        report.executions += u64::from(o.trials_run);
        for f in &o.findings {
            if seen.insert(f.dedup_key()) {
                report.issues.push(IssueRecord {
                    bug_id: triage(f),
                    key: f.dedup_key(),
                    example: f.clone(),
                    found_after_tests: i + 1,
                    found_after_steps: cumulative_steps,
                });
            }
        }
    }
    report.total_steps = cumulative_steps;
    report.outcomes = outcomes;
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(
        pair: (u32, u32),
        trials: u32,
        steps: u64,
        exercised: bool,
        findings: Vec<Finding>,
    ) -> PmcTestOutcome {
        PmcTestOutcome {
            pmc: None,
            pair,
            trials_run: trials,
            exercised,
            findings,
            steps,
            first_finding_trial: None,
            repro_schedule: None,
            attempts: 1,
        }
    }

    #[test]
    fn aggregate_dedups_across_tests_and_keeps_discovery_order() {
        let race = Finding::DataRace {
            write_site: "cache_alloc_refill:stat_write".into(),
            other_site: "cache_alloc_refill:stat_read".into(),
            addr: 0x40,
        };
        let panic = Finding::KernelPanic {
            msg: "BUG: kernel NULL pointer dereference at bh_lock_sock:acquire".into(),
        };
        let report = aggregate(vec![
            outcome((0, 1), 4, 100, true, vec![race.clone()]),
            outcome((2, 3), 4, 100, false, vec![race.clone(), panic.clone()]),
            outcome((4, 5), 4, 100, false, vec![panic]),
        ]);
        assert_eq!(report.issues.len(), 2, "duplicates collapse");
        assert_eq!(report.issues[0].bug_id, Some(13));
        assert_eq!(report.issues[0].found_after_tests, 1);
        assert_eq!(report.issues[1].bug_id, Some(12));
        assert_eq!(report.issues[1].found_after_tests, 2);
        assert_eq!(report.issues[1].found_after_steps, 200);
        assert_eq!(report.executions, 12);
        assert_eq!(report.total_steps, 300);
        assert_eq!(report.bug_ids(), vec![12, 13]);
        assert!((report.accuracy() - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn empty_campaign_reports_cleanly() {
        let report = aggregate(vec![]);
        assert_eq!(report.tested(), 0);
        assert_eq!(report.accuracy(), 0.0);
        assert!(report.bug_ids().is_empty());
        assert!(report.quarantined.is_empty());
    }

    #[test]
    fn pool_failures_fold_into_quarantine_records() {
        match fold_pool_result(4, 9, &Err(JobError::Rejected)) {
            JobVerdict::Quarantined(q) => {
                assert_eq!(q.job, 4);
                assert_eq!(q.pmc, Some(9));
                assert_eq!(q.attempts, 0, "rejected jobs never ran");
                assert_eq!(q.kind, FailureKind::Rejected);
            }
            other => panic!("expected quarantine, got {other:?}"),
        }
        match fold_pool_result(
            2,
            5,
            &Err(JobError::Panic {
                message: "boom".into(),
            }),
        ) {
            JobVerdict::Quarantined(q) => {
                assert_eq!(q.kind, FailureKind::Panic);
                assert!(q.chain[0].contains("boom"));
            }
            other => panic!("expected quarantine, got {other:?}"),
        }
    }

    #[test]
    fn quarantine_histogram_groups_by_kind() {
        let mk = |job, kind| QuarantineRecord {
            job,
            pmc: None,
            attempts: 1,
            kind,
            chain: vec![],
        };
        let report = CampaignReport {
            quarantined: vec![
                mk(0, FailureKind::Panic),
                mk(1, FailureKind::Hang),
                mk(2, FailureKind::Panic),
            ],
            ..CampaignReport::default()
        };
        let hist = report.quarantine_histogram();
        assert!(hist.contains(&(FailureKind::Panic, 2)));
        assert!(hist.contains(&(FailureKind::Hang, 1)));
    }
}
