//! Concurrent test execution — Algorithm 2's driver loop (§4.4).
//!
//! For each selected PMC (in uncommon-first cluster order): pick one of its
//! test pairs at random, build a concurrent test with the PMC as the
//! scheduling hint, and run up to `NUMBER_OF_TRIALS` trials from the boot
//! snapshot under [`SnowboardSched`]. Each trial reseeds the scheduler
//! (`random.seed(SEED + trial)`), keeps the learned `flags`, feeds every
//! execution to the bug detectors, and opportunistically adds incidental
//! PMCs observed in the trial to the watch set (Algorithm 2 lines 26–27).

use std::collections::HashMap;
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use sb_detect::Finding;
use sb_kernel::{BootedKernel, Program};
use sb_vmm::access::AccessKind;
use sb_vmm::replay::{RecordingSched, Schedule};
use sb_vmm::sched::SnowboardSched;
use sb_vmm::site::Site;
use sb_vmm::Executor;

use crate::pmc::{Pmc, PmcId, PmcSet};
use crate::triage::{triage, IssueRecord};

/// Campaign configuration.
#[derive(Clone, Debug)]
pub struct CampaignCfg {
    /// Base random seed.
    pub seed: u64,
    /// Maximum trials per PMC (the paper uses 64).
    pub trials_per_pmc: u32,
    /// Test budget: how many exemplar PMCs to execute.
    pub max_tested_pmcs: usize,
    /// Worker threads (each owns an executor — a "machine B").
    pub workers: usize,
    /// Stop a PMC's trials at the first detector finding.
    pub stop_on_finding: bool,
    /// Enable incidental-PMC pickup (Algorithm 2 lines 26–27).
    pub incidental: bool,
}

impl Default for CampaignCfg {
    fn default() -> Self {
        CampaignCfg {
            seed: 2021,
            trials_per_pmc: 64,
            max_tested_pmcs: usize::MAX,
            workers: 4,
            stop_on_finding: true,
            incidental: true,
        }
    }
}

/// The outcome of testing one concurrent test (one PMC or one baseline
/// pairing).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PmcTestOutcome {
    /// The PMC under test (`None` for baseline pairings without hints).
    pub pmc: Option<PmcId>,
    /// The (writer test, reader test) pair executed.
    pub pair: (u32, u32),
    /// Trials actually run.
    pub trials_run: u32,
    /// Whether some trial actually exercised the predicted channel
    /// (write-before-read with value flow) — the §5.3.2 accuracy signal.
    pub exercised: bool,
    /// Detector findings, deduplicated within this test.
    pub findings: Vec<Finding>,
    /// Engine steps consumed across all trials (cost accounting).
    pub steps: u64,
    /// Trial index of the first finding, if any.
    pub first_finding_trial: Option<u32>,
    /// A recorded schedule that reproduces the first finding
    /// deterministically (replay with [`sb_vmm::replay::ReplaySched`]).
    pub repro_schedule: Option<Schedule>,
}

/// Aggregated campaign results.
#[derive(Clone, Debug, Default)]
pub struct CampaignReport {
    /// Per-test outcomes, in test order.
    pub outcomes: Vec<PmcTestOutcome>,
    /// Distinct issues discovered, in discovery order, triaged against the
    /// ground-truth registry.
    pub issues: Vec<IssueRecord>,
    /// Total engine steps across the campaign.
    pub total_steps: u64,
    /// Total executions (trials) across the campaign.
    pub executions: u64,
}

impl CampaignReport {
    /// Number of concurrent tests executed.
    pub fn tested(&self) -> usize {
        self.outcomes.len()
    }

    /// Number of tests that exercised their predicted channel.
    pub fn exercised(&self) -> usize {
        self.outcomes.iter().filter(|o| o.exercised).count()
    }

    /// PMC accuracy (§5.3.2): exercised / tested.
    pub fn accuracy(&self) -> f64 {
        if self.outcomes.is_empty() {
            0.0
        } else {
            self.exercised() as f64 / self.tested() as f64
        }
    }

    /// The distinct ground-truth bug ids found.
    pub fn bug_ids(&self) -> Vec<u8> {
        let mut ids: Vec<u8> = self.issues.iter().filter_map(|i| i.bug_id).collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }
}

/// Index from write-side instruction to PMC ids, used for fast incidental
/// PMC lookup during trials.
pub struct IncidentalIndex {
    by_write_site: HashMap<Site, Vec<PmcId>>,
}

impl IncidentalIndex {
    /// Builds the index over a PMC set.
    pub fn build(set: &PmcSet) -> Self {
        let mut by_write_site: HashMap<Site, Vec<PmcId>> = HashMap::new();
        for (id, p) in set.pmcs.iter().enumerate() {
            by_write_site
                .entry(p.key.w.ins)
                .or_default()
                .push(id as PmcId);
        }
        IncidentalIndex { by_write_site }
    }
}

/// Checks whether a trial trace exercised the PMC: a writer-thread write
/// matching the write side, followed by a reader-thread read matching the
/// read side that observed the written value over the overlap.
pub fn channel_exercised(trace: &[sb_vmm::Access], pmc: &Pmc) -> bool {
    let [hw, hr] = pmc.hints();
    let writes: Vec<&sb_vmm::Access> = trace
        .iter()
        .filter(|a| a.thread == 0 && hw.matches(a))
        .collect();
    if writes.is_empty() {
        return false;
    }
    trace
        .iter()
        .filter(|r| r.thread == 1 && hr.matches(r))
        .any(|r| {
            writes.iter().any(|w| {
                if w.seq >= r.seq {
                    return false;
                }
                match sb_vmm::access::range_overlap(w.addr, w.len, r.addr, r.len) {
                    Some((start, len)) => {
                        w.project_value(start, len) == r.project_value(start, len)
                    }
                    None => false,
                }
            })
        })
}

/// Scans a trial trace for PMCs (other than those already watched) whose
/// write *and* read sides both appeared, returning one at random.
fn find_incidental_pmc(
    trace: &[sb_vmm::Access],
    set: &PmcSet,
    index: &IncidentalIndex,
    watched: &mut std::collections::HashSet<PmcId>,
    rng: &mut StdRng,
) -> Option<PmcId> {
    const MAX_CANDIDATES: usize = 256;
    let mut candidates: Vec<PmcId> = Vec::new();
    let mut seen_sites = std::collections::HashSet::new();
    for a in trace.iter().filter(|a| a.kind == AccessKind::Write) {
        if !seen_sites.insert(a.site) {
            continue;
        }
        if let Some(ids) = index.by_write_site.get(&a.site) {
            for id in ids {
                if candidates.len() >= MAX_CANDIDATES {
                    break;
                }
                if !watched.contains(id) {
                    candidates.push(*id);
                }
            }
        }
    }
    candidates.retain(|id| {
        let p = set.get(*id);
        let [hw, hr] = p.hints();
        trace.iter().any(|a| hw.matches(a)) && trace.iter().any(|a| hr.matches(a))
    });
    let pick = candidates.choose(rng).copied();
    if let Some(id) = pick {
        watched.insert(id);
    }
    pick
}

/// Tests one PMC: the inner loop of Algorithm 2.
#[allow(clippy::too_many_arguments)]
pub fn test_one_pmc(
    exec: &mut Executor,
    booted: &BootedKernel,
    corpus: &[Program],
    set: &PmcSet,
    index: &IncidentalIndex,
    id: PmcId,
    seed: u64,
    cfg: &CampaignCfg,
) -> PmcTestOutcome {
    let pmc = set.get(id);
    let mut rng = StdRng::seed_from_u64(seed);
    let pair = *pmc.pairs.choose(&mut rng).expect("PMC without test pairs");
    let wprog = corpus[pair.0 as usize].clone();
    let rprog = corpus[pair.1 as usize].clone();
    let mut sched = SnowboardSched::new(seed, pmc.hints());
    let mut watched: std::collections::HashSet<PmcId> = [id].into_iter().collect();
    let mut out = PmcTestOutcome {
        pmc: Some(id),
        pair,
        trials_run: 0,
        exercised: false,
        findings: Vec::new(),
        steps: 0,
        first_finding_trial: None,
        repro_schedule: None,
    };
    let mut dedup = std::collections::HashSet::new();
    for trial in 0..cfg.trials_per_pmc {
        // Checkpoint the scheduler (flags included) so a finding trial can
        // be re-run under a recorder for deterministic reproduction.
        let sched_checkpoint = sched.clone();
        sched.begin_trial(seed.wrapping_add(u64::from(trial)));
        let r = exec.run(
            booted.snapshot.clone(),
            vec![
                booted.kernel.process_job(wprog.clone()),
                booted.kernel.process_job(rprog.clone()),
            ],
            &mut sched,
        );
        out.trials_run += 1;
        out.steps += r.report.steps;
        out.exercised |= channel_exercised(&r.report.trace, pmc);
        let findings = sb_detect::analyze(&r.report);
        let mut found_new = false;
        for f in findings {
            if dedup.insert(f.dedup_key()) {
                out.findings.push(f);
                found_new = true;
            }
        }
        if found_new && out.first_finding_trial.is_none() {
            out.first_finding_trial = Some(trial);
            // Re-run this exact trial from the checkpoint under a recorder
            // to capture a portable reproduction schedule (§6).
            let mut replica = sched_checkpoint;
            replica.begin_trial(seed.wrapping_add(u64::from(trial)));
            let mut recorder = RecordingSched::new(replica);
            let _ = exec.run(
                booted.snapshot.clone(),
                vec![
                    booted.kernel.process_job(wprog.clone()),
                    booted.kernel.process_job(rprog.clone()),
                ],
                &mut recorder,
            );
            let (schedule, _) = recorder.finish();
            out.repro_schedule = Some(schedule);
        }
        if found_new && cfg.stop_on_finding {
            break;
        }
        if cfg.incidental {
            if let Some(new_id) =
                find_incidental_pmc(&r.report.trace, set, index, &mut watched, &mut rng)
            {
                sched.add_pmc(set.get(new_id).hints());
            }
        }
    }
    out
}

/// Runs a full campaign over an ordered exemplar list.
pub fn run_campaign(
    booted: &BootedKernel,
    corpus: &[Program],
    set: &PmcSet,
    exemplars: &[PmcId],
    cfg: &CampaignCfg,
) -> CampaignReport {
    let budgeted: Vec<PmcId> = exemplars
        .iter()
        .copied()
        .take(cfg.max_tested_pmcs)
        .collect();
    let index = Arc::new(IncidentalIndex::build(set));
    let cfg_arc = cfg.clone();
    let outcomes: Vec<PmcTestOutcome> = sb_queue::run_jobs(
        budgeted.iter().copied().enumerate().collect(),
        cfg.workers,
        || Executor::new(2),
        |exec, (i, id)| {
            let seed = cfg_arc
                .seed
                .wrapping_add((i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            test_one_pmc(exec, booted, corpus, set, &index, id, seed, &cfg_arc)
        },
    );
    aggregate(outcomes)
}

/// Aggregates per-test outcomes into a campaign report (shared with the
/// baselines).
pub fn aggregate(outcomes: Vec<PmcTestOutcome>) -> CampaignReport {
    let mut report = CampaignReport::default();
    let mut seen = std::collections::HashSet::new();
    let mut cumulative_steps = 0u64;
    for (i, o) in outcomes.iter().enumerate() {
        cumulative_steps += o.steps;
        report.executions += u64::from(o.trials_run);
        for f in &o.findings {
            if seen.insert(f.dedup_key()) {
                report.issues.push(IssueRecord {
                    bug_id: triage(f),
                    key: f.dedup_key(),
                    example: f.clone(),
                    found_after_tests: i + 1,
                    found_after_steps: cumulative_steps,
                });
            }
        }
    }
    report.total_steps = cumulative_steps;
    report.outcomes = outcomes;
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(
        pair: (u32, u32),
        trials: u32,
        steps: u64,
        exercised: bool,
        findings: Vec<Finding>,
    ) -> PmcTestOutcome {
        PmcTestOutcome {
            pmc: None,
            pair,
            trials_run: trials,
            exercised,
            findings,
            steps,
            first_finding_trial: None,
            repro_schedule: None,
        }
    }

    #[test]
    fn aggregate_dedups_across_tests_and_keeps_discovery_order() {
        let race = Finding::DataRace {
            write_site: "cache_alloc_refill:stat_write".into(),
            other_site: "cache_alloc_refill:stat_read".into(),
            addr: 0x40,
        };
        let panic = Finding::KernelPanic {
            msg: "BUG: kernel NULL pointer dereference at bh_lock_sock:acquire".into(),
        };
        let report = aggregate(vec![
            outcome((0, 1), 4, 100, true, vec![race.clone()]),
            outcome((2, 3), 4, 100, false, vec![race.clone(), panic.clone()]),
            outcome((4, 5), 4, 100, false, vec![panic]),
        ]);
        assert_eq!(report.issues.len(), 2, "duplicates collapse");
        assert_eq!(report.issues[0].bug_id, Some(13));
        assert_eq!(report.issues[0].found_after_tests, 1);
        assert_eq!(report.issues[1].bug_id, Some(12));
        assert_eq!(report.issues[1].found_after_tests, 2);
        assert_eq!(report.issues[1].found_after_steps, 200);
        assert_eq!(report.executions, 12);
        assert_eq!(report.total_steps, 300);
        assert_eq!(report.bug_ids(), vec![12, 13]);
        assert!((report.accuracy() - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn empty_campaign_reports_cleanly() {
        let report = aggregate(vec![]);
        assert_eq!(report.tested(), 0);
        assert_eq!(report.accuracy(), 0.0);
        assert!(report.bug_ids().is_empty());
    }
}
