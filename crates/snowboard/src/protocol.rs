//! The supervisor↔worker and coordinator↔worker wire protocols.
//!
//! A supervised campaign re-execs the CLI as worker processes; each worker
//! streams its progress to the supervisor as JSONL over its stdout pipe —
//! one [`WorkerMsg`] per line, rendered with the workspace's u64-exact
//! [`crate::json`] codec and parsed strictly (unknown discriminators,
//! missing fields, and mistyped fields are all protocol errors; a worker
//! that emits garbage is killed and treated as crashed).
//!
//! The message flow for one worker process:
//!
//! ```text
//! hello ─▶ (heartbeat)* ─▶ [ start ─▶ (done | quarantine) ]* ─▶ bye
//! ```
//!
//! * `hello` announces the shard and how many jobs it still has pending.
//! * `heartbeat` is emitted from a dedicated thread on a fixed interval; a
//!   supervisor that hears *nothing* (no message of any kind) for longer
//!   than its heartbeat timeout kills the worker.
//! * `start` names the job now in flight — this is the crash-attribution
//!   record: if the process dies before the matching `done`/`quarantine`,
//!   the supervisor charges the death to exactly this job.
//! * `done` / `quarantine` carry the job's verdict, serialized with the
//!   same JSON shape the checkpoint file uses, so the supervisor merges
//!   results with the code paths PR 1 already trusts.
//! * `bye` ends a shard cleanly (all pending jobs resolved, or a stop-file
//!   shutdown). A worker that exits without `bye` crashed.
//!
//! # Fleet framing
//!
//! The TCP fabric ([`crate::fleet`]) promotes the same JSONL payloads onto
//! a socket. Pipes give the supervisor free message boundaries; a TCP
//! stream does not, and a partition can cut a message anywhere, so fleet
//! traffic is *length-prefixed framed*:
//!
//! ```text
//! <decimal payload length>\n<payload>\n
//! ```
//!
//! [`read_frame`] distinguishes a clean end-of-stream at a frame boundary
//! (`Ok(None)`) from every way a hostile or partitioned peer can mangle
//! the stream — truncation mid-frame, an oversized or non-numeric length,
//! a missing terminator, non-UTF-8 payload — each of which is a typed
//! [`ProtocolError`], never a panic. Fleet messages are [`JoinMsg`]
//! (worker→coordinator) and [`ServeMsg`] (coordinator→worker), validated
//! with the same strictness as [`WorkerMsg`].

use std::io::{BufRead, Read, Write};

use crate::campaign::{PmcTestOutcome, QuarantineRecord};
use crate::checkpoint::{
    outcome_from_json, outcome_to_json, quarantine_from_json, quarantine_to_json, req_u64,
};
use crate::json::{self, Json};

/// Version of the fleet wire protocol; a coordinator rejects joiners that
/// speak any other version instead of guessing at compatibility.
pub const FLEET_PROTO_VERSION: u64 = 1;

/// Hard ceiling on one frame's payload (1 MiB). Real messages are a few
/// KiB; anything larger is a corrupt length prefix or an attack, and
/// honoring it would let one bad peer balloon coordinator memory.
pub const MAX_FRAME_LEN: usize = 1 << 20;

/// Longest accepted length header (digits before the `\n`); 8 digits
/// already overshoots [`MAX_FRAME_LEN`], so more is garbage.
const MAX_HEADER_DIGITS: usize = 8;

/// A typed failure decoding fleet frames or messages. Decoding garbage
/// must yield one of these — never a panic — because the bytes come from
/// the network.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProtocolError {
    /// The length prefix was not a plain decimal number.
    BadHeader {
        /// What the decoder saw instead.
        detail: String,
    },
    /// The declared payload length exceeds [`MAX_FRAME_LEN`].
    Oversized {
        /// The declared length.
        len: u64,
    },
    /// The stream ended in the middle of a frame.
    Truncated {
        /// Which part of the frame was cut short.
        context: &'static str,
    },
    /// The payload was not followed by the `\n` terminator — the peer's
    /// framing is out of sync.
    BadFrame {
        /// What was wrong.
        detail: String,
    },
    /// The frame arrived intact but its payload violates the message
    /// schema (bad JSON, unknown discriminator, missing field).
    BadMessage {
        /// What was wrong.
        detail: String,
    },
    /// The underlying socket failed (including read timeouts).
    Io {
        /// Rendered I/O error.
        detail: String,
    },
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::BadHeader { detail } => write!(f, "bad frame header: {detail}"),
            ProtocolError::Oversized { len } => {
                write!(f, "frame of {len} bytes exceeds the {MAX_FRAME_LEN}-byte limit")
            }
            ProtocolError::Truncated { context } => {
                write!(f, "stream truncated mid-frame ({context})")
            }
            ProtocolError::BadFrame { detail } => write!(f, "bad frame: {detail}"),
            ProtocolError::BadMessage { detail } => write!(f, "bad message: {detail}"),
            ProtocolError::Io { detail } => write!(f, "socket error: {detail}"),
        }
    }
}

impl std::error::Error for ProtocolError {}

/// Writes one length-prefixed frame and flushes it, so a frame is either
/// fully queued to the kernel or reported as an error.
pub fn write_frame(w: &mut impl Write, payload: &str) -> std::io::Result<()> {
    let mut buf = Vec::with_capacity(payload.len() + 12);
    buf.extend_from_slice(payload.len().to_string().as_bytes());
    buf.push(b'\n');
    buf.extend_from_slice(payload.as_bytes());
    buf.push(b'\n');
    w.write_all(&buf)?;
    w.flush()
}

/// Reads one length-prefixed frame.
///
/// Returns `Ok(None)` on a clean end-of-stream *at a frame boundary*; an
/// EOF anywhere inside a frame is [`ProtocolError::Truncated`]. Every
/// malformed input maps to a typed error — this function must not panic
/// on any byte sequence.
pub fn read_frame(r: &mut impl BufRead) -> Result<Option<String>, ProtocolError> {
    // Header: decimal digits terminated by '\n', read byte-wise so a
    // mid-header cut is distinguishable from a boundary EOF.
    let mut header: Vec<u8> = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        match r.read(&mut byte) {
            Ok(0) => {
                return if header.is_empty() {
                    Ok(None)
                } else {
                    Err(ProtocolError::Truncated { context: "length header" })
                };
            }
            Ok(_) => {
                if byte[0] == b'\n' {
                    break;
                }
                if !byte[0].is_ascii_digit() {
                    return Err(ProtocolError::BadHeader {
                        detail: format!("unexpected byte 0x{:02x}", byte[0]),
                    });
                }
                if header.len() >= MAX_HEADER_DIGITS {
                    return Err(ProtocolError::BadHeader {
                        detail: format!("length header longer than {MAX_HEADER_DIGITS} digits"),
                    });
                }
                header.push(byte[0]);
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(ProtocolError::Io { detail: e.to_string() }),
        }
    }
    if header.is_empty() {
        return Err(ProtocolError::BadHeader { detail: "empty length header".into() });
    }
    // The digits are ASCII and capped at MAX_HEADER_DIGITS, so this parse
    // cannot overflow u64.
    let len: u64 = String::from_utf8_lossy(&header).parse().map_err(|_| {
        ProtocolError::BadHeader { detail: "unparsable length".into() }
    })?;
    if len as usize > MAX_FRAME_LEN {
        return Err(ProtocolError::Oversized { len });
    }
    let mut payload = vec![0u8; len as usize];
    read_exact_or(r, &mut payload, "payload")?;
    let mut terminator = [0u8; 1];
    read_exact_or(r, &mut terminator, "terminator")?;
    if terminator[0] != b'\n' {
        return Err(ProtocolError::BadFrame {
            detail: format!("payload not terminated by newline (got 0x{:02x})", terminator[0]),
        });
    }
    match String::from_utf8(payload) {
        Ok(s) => Ok(Some(s)),
        Err(_) => Err(ProtocolError::BadMessage { detail: "payload is not UTF-8".into() }),
    }
}

/// `read_exact` with EOF mapped to [`ProtocolError::Truncated`].
fn read_exact_or(
    r: &mut impl Read,
    buf: &mut [u8],
    context: &'static str,
) -> Result<(), ProtocolError> {
    r.read_exact(buf).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            ProtocolError::Truncated { context }
        } else {
            ProtocolError::Io { detail: e.to_string() }
        }
    })
}

/// One worker→supervisor message (one JSONL line on the worker's stdout).
#[derive(Clone, Debug, PartialEq)]
pub enum WorkerMsg {
    /// First message after startup: shard identity and pending job count.
    Hello {
        /// This worker's shard index (0-based).
        shard: usize,
        /// Total shard count.
        of: usize,
        /// Jobs this worker still has to run (shard minus checkpoint).
        pending: usize,
    },
    /// Liveness signal, emitted on a fixed interval.
    Heartbeat,
    /// Job `job` is now in flight.
    Start {
        /// Campaign job index.
        job: usize,
    },
    /// Job `job` completed with an outcome.
    Done {
        /// Campaign job index.
        job: usize,
        /// The completed outcome.
        outcome: PmcTestOutcome,
    },
    /// A job failed permanently *in process* (hang, retry exhaustion) and
    /// was quarantined by the worker itself.
    Quarantine {
        /// The quarantine record (carries its own job index).
        record: QuarantineRecord,
    },
    /// Clean end of shard.
    Bye {
        /// Jobs resolved (done + quarantined) this process lifetime.
        completed: usize,
        /// True when the worker exited early because the stop file
        /// appeared; remaining jobs are intentionally unrun.
        stopped: bool,
    },
}

impl WorkerMsg {
    /// The `msg` discriminator.
    pub fn kind(&self) -> &'static str {
        match self {
            WorkerMsg::Hello { .. } => "hello",
            WorkerMsg::Heartbeat => "heartbeat",
            WorkerMsg::Start { .. } => "start",
            WorkerMsg::Done { .. } => "done",
            WorkerMsg::Quarantine { .. } => "quarantine",
            WorkerMsg::Bye { .. } => "bye",
        }
    }

    /// Renders the message as one JSON object (one line, sans newline).
    pub fn to_json(&self) -> Json {
        let msg = ("msg".to_string(), Json::Str(self.kind().to_owned()));
        match self {
            WorkerMsg::Hello { shard, of, pending } => Json::Obj(vec![
                msg,
                ("shard".into(), Json::U64(*shard as u64)),
                ("of".into(), Json::U64(*of as u64)),
                ("pending".into(), Json::U64(*pending as u64)),
            ]),
            WorkerMsg::Heartbeat => Json::Obj(vec![msg]),
            WorkerMsg::Start { job } => {
                Json::Obj(vec![msg, ("job".into(), Json::U64(*job as u64))])
            }
            WorkerMsg::Done { job, outcome } => Json::Obj(vec![
                msg,
                // The outcome object embeds the job index, matching the
                // checkpoint's on-disk shape.
                ("outcome".into(), outcome_to_json(*job, outcome)),
            ]),
            WorkerMsg::Quarantine { record } => {
                Json::Obj(vec![msg, ("record".into(), quarantine_to_json(record))])
            }
            WorkerMsg::Bye { completed, stopped } => Json::Obj(vec![
                msg,
                ("completed".into(), Json::U64(*completed as u64)),
                ("stopped".into(), Json::Bool(*stopped)),
            ]),
        }
    }

    /// Renders the message as one protocol line.
    pub fn render(&self) -> String {
        self.to_json().render()
    }

    /// Parses and schema-validates one protocol line.
    pub fn parse_line(line: &str) -> Result<WorkerMsg, String> {
        let doc = json::parse(line)?;
        Self::from_json(&doc)
    }

    /// Parses and schema-validates one protocol JSON object.
    pub fn from_json(doc: &Json) -> Result<WorkerMsg, String> {
        let kind = doc
            .get("msg")
            .and_then(Json::as_str)
            .ok_or("missing 'msg' discriminator")?;
        let usize_field = |key: &str| -> Result<usize, String> {
            usize::try_from(req_u64(doc, key)?).map_err(|_| format!("'{key}' overflows usize"))
        };
        match kind {
            "hello" => Ok(WorkerMsg::Hello {
                shard: usize_field("shard")?,
                of: usize_field("of")?,
                pending: usize_field("pending")?,
            }),
            "heartbeat" => Ok(WorkerMsg::Heartbeat),
            "start" => Ok(WorkerMsg::Start { job: usize_field("job")? }),
            "done" => {
                let (job, outcome) =
                    outcome_from_json(doc.get("outcome").ok_or("done without outcome")?)?;
                Ok(WorkerMsg::Done { job, outcome })
            }
            "quarantine" => Ok(WorkerMsg::Quarantine {
                record: quarantine_from_json(doc.get("record").ok_or("quarantine without record")?)?,
            }),
            "bye" => Ok(WorkerMsg::Bye {
                completed: usize_field("completed")?,
                stopped: doc
                    .get("stopped")
                    .and_then(Json::as_bool)
                    .ok_or("bye without stopped flag")?,
            }),
            other => Err(format!("unknown worker message '{other}'")),
        }
    }
}

/// One worker→coordinator fleet message (one frame on the socket).
#[derive(Clone, Debug, PartialEq)]
pub enum JoinMsg {
    /// First frame on a connection: the handshake. The coordinator rejects
    /// a protocol or config-hash mismatch instead of merging results that
    /// were computed under different campaign parameters.
    Join {
        /// The worker's [`FLEET_PROTO_VERSION`].
        proto: u64,
        /// Fingerprint of every campaign-shaping parameter
        /// (see [`crate::fleet::config_fingerprint`]).
        config: u64,
    },
    /// Liveness signal, emitted on a fixed interval.
    Heartbeat,
    /// Ask for a lease of up to `max` jobs.
    Request {
        /// Most jobs the worker wants in one lease.
        max: usize,
    },
    /// Job `job` completed with an outcome.
    Done {
        /// Campaign job index.
        job: usize,
        /// The completed outcome.
        outcome: PmcTestOutcome,
    },
    /// A job failed permanently in-process and was quarantined by the
    /// worker itself.
    Quarantine {
        /// The quarantine record (carries its own job index).
        record: QuarantineRecord,
    },
    /// Clean goodbye (drain acknowledged, or stop-file shutdown). A
    /// connection that ends without this is an eviction.
    Leaving {
        /// Why the worker is going.
        reason: String,
    },
}

impl JoinMsg {
    /// The `msg` discriminator.
    pub fn kind(&self) -> &'static str {
        match self {
            JoinMsg::Join { .. } => "join",
            JoinMsg::Heartbeat => "heartbeat",
            JoinMsg::Request { .. } => "request",
            JoinMsg::Done { .. } => "done",
            JoinMsg::Quarantine { .. } => "quarantine",
            JoinMsg::Leaving { .. } => "leaving",
        }
    }

    /// Renders the message as one JSON object.
    pub fn to_json(&self) -> Json {
        let msg = ("msg".to_string(), Json::Str(self.kind().to_owned()));
        match self {
            JoinMsg::Join { proto, config } => Json::Obj(vec![
                msg,
                ("proto".into(), Json::U64(*proto)),
                ("config".into(), Json::U64(*config)),
            ]),
            JoinMsg::Heartbeat => Json::Obj(vec![msg]),
            JoinMsg::Request { max } => {
                Json::Obj(vec![msg, ("max".into(), Json::U64(*max as u64))])
            }
            JoinMsg::Done { job, outcome } => Json::Obj(vec![
                msg,
                // Same checkpoint-shaped outcome object the pipe protocol
                // uses; the job index is embedded in it.
                ("outcome".into(), outcome_to_json(*job, outcome)),
            ]),
            JoinMsg::Quarantine { record } => {
                Json::Obj(vec![msg, ("record".into(), quarantine_to_json(record))])
            }
            JoinMsg::Leaving { reason } => {
                Json::Obj(vec![msg, ("reason".into(), Json::Str(reason.clone()))])
            }
        }
    }

    /// Renders the message as one frame payload.
    pub fn render(&self) -> String {
        self.to_json().render()
    }

    /// Parses and schema-validates one frame payload.
    pub fn parse_line(line: &str) -> Result<JoinMsg, ProtocolError> {
        let detail = |d: String| ProtocolError::BadMessage { detail: d };
        let doc = json::parse(line).map_err(detail)?;
        let kind = doc
            .get("msg")
            .and_then(Json::as_str)
            .ok_or_else(|| detail("missing 'msg' discriminator".into()))?;
        let usize_field = |key: &str| -> Result<usize, ProtocolError> {
            req_u64(&doc, key)
                .and_then(|v| {
                    usize::try_from(v).map_err(|_| format!("'{key}' overflows usize"))
                })
                .map_err(detail)
        };
        match kind {
            "join" => Ok(JoinMsg::Join {
                proto: req_u64(&doc, "proto").map_err(detail)?,
                config: req_u64(&doc, "config").map_err(detail)?,
            }),
            "heartbeat" => Ok(JoinMsg::Heartbeat),
            "request" => Ok(JoinMsg::Request { max: usize_field("max")? }),
            "done" => {
                let outcome = doc
                    .get("outcome")
                    .ok_or_else(|| detail("done without outcome".into()))?;
                let (job, outcome) = outcome_from_json(outcome).map_err(detail)?;
                Ok(JoinMsg::Done { job, outcome })
            }
            "quarantine" => {
                let record = doc
                    .get("record")
                    .ok_or_else(|| detail("quarantine without record".into()))?;
                Ok(JoinMsg::Quarantine { record: quarantine_from_json(record).map_err(detail)? })
            }
            "leaving" => Ok(JoinMsg::Leaving {
                reason: doc
                    .get("reason")
                    .and_then(Json::as_str)
                    .ok_or_else(|| detail("leaving without reason".into()))?
                    .to_owned(),
            }),
            other => Err(detail(format!("unknown fleet message '{other}'"))),
        }
    }
}

/// One coordinator→worker fleet message (one frame on the socket).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServeMsg {
    /// Handshake accepted; the worker is registered.
    Welcome {
        /// Coordinator-assigned worker id (unique per join, stable for
        /// log correlation).
        worker: u64,
        /// Total jobs in the campaign universe.
        jobs: usize,
    },
    /// Handshake refused (version or config mismatch, or the coordinator
    /// is draining). The worker must not retry this coordinator.
    Reject {
        /// Why the worker was turned away.
        reason: String,
    },
    /// A batch of jobs leased to this worker. An empty `jobs` list means
    /// "nothing available right now — ask again shortly".
    Lease {
        /// Lease id (coordinator-unique).
        lease: u64,
        /// The leased campaign job indices.
        jobs: Vec<usize>,
        /// Milliseconds until the coordinator reclaims unfinished jobs.
        deadline_ms: u64,
    },
    /// The coordinator is shutting down (campaign complete or stop file);
    /// the worker should say [`JoinMsg::Leaving`] and exit cleanly.
    Drain {
        /// Why the fleet is draining.
        reason: String,
    },
}

impl ServeMsg {
    /// The `msg` discriminator.
    pub fn kind(&self) -> &'static str {
        match self {
            ServeMsg::Welcome { .. } => "welcome",
            ServeMsg::Reject { .. } => "reject",
            ServeMsg::Lease { .. } => "lease",
            ServeMsg::Drain { .. } => "drain",
        }
    }

    /// Renders the message as one JSON object.
    pub fn to_json(&self) -> Json {
        let msg = ("msg".to_string(), Json::Str(self.kind().to_owned()));
        match self {
            ServeMsg::Welcome { worker, jobs } => Json::Obj(vec![
                msg,
                ("worker".into(), Json::U64(*worker)),
                ("jobs".into(), Json::U64(*jobs as u64)),
            ]),
            ServeMsg::Reject { reason } => {
                Json::Obj(vec![msg, ("reason".into(), Json::Str(reason.clone()))])
            }
            ServeMsg::Lease { lease, jobs, deadline_ms } => Json::Obj(vec![
                msg,
                ("lease".into(), Json::U64(*lease)),
                (
                    "jobs".into(),
                    Json::Arr(jobs.iter().map(|j| Json::U64(*j as u64)).collect()),
                ),
                ("deadline_ms".into(), Json::U64(*deadline_ms)),
            ]),
            ServeMsg::Drain { reason } => {
                Json::Obj(vec![msg, ("reason".into(), Json::Str(reason.clone()))])
            }
        }
    }

    /// Renders the message as one frame payload.
    pub fn render(&self) -> String {
        self.to_json().render()
    }

    /// Parses and schema-validates one frame payload.
    pub fn parse_line(line: &str) -> Result<ServeMsg, ProtocolError> {
        let detail = |d: String| ProtocolError::BadMessage { detail: d };
        let doc = json::parse(line).map_err(detail)?;
        let kind = doc
            .get("msg")
            .and_then(Json::as_str)
            .ok_or_else(|| detail("missing 'msg' discriminator".into()))?;
        let reason_field = |doc: &Json| -> Result<String, ProtocolError> {
            doc.get("reason")
                .and_then(Json::as_str)
                .map(str::to_owned)
                .ok_or_else(|| detail(format!("{kind} without reason")))
        };
        match kind {
            "welcome" => Ok(ServeMsg::Welcome {
                worker: req_u64(&doc, "worker").map_err(detail)?,
                jobs: usize::try_from(req_u64(&doc, "jobs").map_err(detail)?)
                    .map_err(|_| detail("'jobs' overflows usize".into()))?,
            }),
            "reject" => Ok(ServeMsg::Reject { reason: reason_field(&doc)? }),
            "lease" => {
                let jobs = doc
                    .get("jobs")
                    .and_then(Json::as_arr)
                    .ok_or_else(|| detail("lease without jobs array".into()))?
                    .iter()
                    .map(|j| {
                        j.as_u64()
                            .and_then(|v| usize::try_from(v).ok())
                            .ok_or_else(|| detail("non-numeric job in lease".into()))
                    })
                    .collect::<Result<Vec<usize>, ProtocolError>>()?;
                Ok(ServeMsg::Lease {
                    lease: req_u64(&doc, "lease").map_err(detail)?,
                    jobs,
                    deadline_ms: req_u64(&doc, "deadline_ms").map_err(detail)?,
                })
            }
            "drain" => Ok(ServeMsg::Drain { reason: reason_field(&doc)? }),
            other => Err(detail(format!("unknown fleet message '{other}'"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::FailureKind;

    fn roundtrip(msg: WorkerMsg) {
        let line = msg.render();
        assert_eq!(WorkerMsg::parse_line(&line).unwrap(), msg, "line: {line}");
    }

    fn outcome() -> PmcTestOutcome {
        PmcTestOutcome {
            pmc: Some(7),
            pair: (1, 2),
            trials_run: 24,
            exercised: true,
            findings: vec![sb_detect::Finding::Deadlock],
            steps: 9000,
            first_finding_trial: Some(3),
            repro_schedule: None,
            attempts: 2,
        }
    }

    #[test]
    fn all_kinds_round_trip() {
        roundtrip(WorkerMsg::Hello { shard: 1, of: 3, pending: 14 });
        roundtrip(WorkerMsg::Heartbeat);
        roundtrip(WorkerMsg::Start { job: 42 });
        roundtrip(WorkerMsg::Done { job: 42, outcome: outcome() });
        roundtrip(WorkerMsg::Quarantine {
            record: QuarantineRecord {
                job: 9,
                pmc: Some(3),
                attempts: 3,
                kind: FailureKind::Hang,
                chain: vec!["job hang: watchdog tripped".into()],
            },
        });
        roundtrip(WorkerMsg::Bye { completed: 14, stopped: false });
        roundtrip(WorkerMsg::Bye { completed: 2, stopped: true });
    }

    #[test]
    fn rejects_schema_violations() {
        assert!(WorkerMsg::parse_line("not json").is_err());
        assert!(WorkerMsg::parse_line("{\"msg\":\"nope\"}").is_err());
        assert!(WorkerMsg::parse_line("{\"job\":1}").is_err(), "no discriminator");
        assert!(WorkerMsg::parse_line("{\"msg\":\"start\"}").is_err(), "missing job");
        assert!(
            WorkerMsg::parse_line("{\"msg\":\"start\",\"job\":\"x\"}").is_err(),
            "mistyped job"
        );
        assert!(WorkerMsg::parse_line("{\"msg\":\"done\"}").is_err(), "missing outcome");
        assert!(
            WorkerMsg::parse_line("{\"msg\":\"bye\",\"completed\":1}").is_err(),
            "missing stopped"
        );
    }

    fn frame_roundtrip(payloads: &[&str]) {
        let mut buf = Vec::new();
        for p in payloads {
            write_frame(&mut buf, p).unwrap();
        }
        let mut r = std::io::Cursor::new(buf);
        for p in payloads {
            assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some(*p));
        }
        assert_eq!(read_frame(&mut r).unwrap(), None, "clean EOF at boundary");
    }

    #[test]
    fn frames_round_trip() {
        frame_roundtrip(&[""]);
        frame_roundtrip(&["{\"msg\":\"heartbeat\"}"]);
        frame_roundtrip(&["a", "payload\nwith\nnewlines", "", "ünïcode"]);
    }

    #[test]
    fn frame_decoder_rejects_mangled_streams() {
        let read = |bytes: &[u8]| read_frame(&mut std::io::Cursor::new(bytes.to_vec()));
        assert!(matches!(
            read(b"12\n"),
            Err(ProtocolError::Truncated { context: "payload" })
        ));
        assert!(matches!(
            read(b"12"),
            Err(ProtocolError::Truncated { context: "length header" })
        ));
        assert!(matches!(
            read(b"3\nabc"),
            Err(ProtocolError::Truncated { context: "terminator" })
        ));
        assert!(matches!(read(b"3\nabcX"), Err(ProtocolError::BadFrame { .. })));
        assert!(matches!(read(b"x\n"), Err(ProtocolError::BadHeader { .. })));
        assert!(matches!(read(b"-3\nab\n"), Err(ProtocolError::BadHeader { .. })));
        assert!(matches!(read(b"\n"), Err(ProtocolError::BadHeader { .. })));
        assert!(matches!(read(b"999999999\nx"), Err(ProtocolError::BadHeader { .. })));
        assert!(matches!(read(b"99999999\nx"), Err(ProtocolError::Oversized { .. })));
        assert!(matches!(read(b"2\n\xff\xfe\n"), Err(ProtocolError::BadMessage { .. })));
    }

    fn join_roundtrip(msg: JoinMsg) {
        let line = msg.render();
        assert_eq!(JoinMsg::parse_line(&line).unwrap(), msg, "line: {line}");
    }

    fn serve_roundtrip(msg: ServeMsg) {
        let line = msg.render();
        assert_eq!(ServeMsg::parse_line(&line).unwrap(), msg, "line: {line}");
    }

    #[test]
    fn fleet_messages_round_trip() {
        join_roundtrip(JoinMsg::Join { proto: FLEET_PROTO_VERSION, config: u64::MAX });
        join_roundtrip(JoinMsg::Heartbeat);
        join_roundtrip(JoinMsg::Request { max: 4 });
        join_roundtrip(JoinMsg::Done { job: 42, outcome: outcome() });
        join_roundtrip(JoinMsg::Quarantine {
            record: QuarantineRecord {
                job: 9,
                pmc: Some(3),
                attempts: 3,
                kind: FailureKind::Hang,
                chain: vec!["job hang: watchdog tripped".into()],
            },
        });
        join_roundtrip(JoinMsg::Leaving { reason: "drained".into() });
        serve_roundtrip(ServeMsg::Welcome { worker: 7, jobs: 120 });
        serve_roundtrip(ServeMsg::Reject { reason: "config mismatch".into() });
        serve_roundtrip(ServeMsg::Lease { lease: 3, jobs: vec![], deadline_ms: 1 });
        serve_roundtrip(ServeMsg::Lease { lease: 4, jobs: vec![0, 5, 17], deadline_ms: 30_000 });
        serve_roundtrip(ServeMsg::Drain { reason: "campaign complete".into() });
    }

    #[test]
    fn fleet_messages_reject_schema_violations() {
        for line in [
            "not json",
            "{\"msg\":\"nope\"}",
            "{\"job\":1}",
            "{\"msg\":\"join\",\"proto\":1}",
            "{\"msg\":\"join\",\"proto\":\"x\",\"config\":1}",
            "{\"msg\":\"request\"}",
            "{\"msg\":\"done\"}",
            "{\"msg\":\"quarantine\"}",
            "{\"msg\":\"leaving\"}",
        ] {
            assert!(
                matches!(JoinMsg::parse_line(line), Err(ProtocolError::BadMessage { .. })),
                "line: {line}"
            );
        }
        for line in [
            "not json",
            "{\"msg\":\"hello\"}",
            "{\"msg\":\"welcome\",\"worker\":1}",
            "{\"msg\":\"reject\"}",
            "{\"msg\":\"lease\",\"lease\":1,\"deadline_ms\":5}",
            "{\"msg\":\"lease\",\"lease\":1,\"jobs\":[\"x\"],\"deadline_ms\":5}",
            "{\"msg\":\"drain\"}",
        ] {
            assert!(
                matches!(ServeMsg::parse_line(line), Err(ProtocolError::BadMessage { .. })),
                "line: {line}"
            );
        }
    }
}
