//! The supervisor↔worker wire protocol.
//!
//! A supervised campaign re-execs the CLI as worker processes; each worker
//! streams its progress to the supervisor as JSONL over its stdout pipe —
//! one [`WorkerMsg`] per line, rendered with the workspace's u64-exact
//! [`crate::json`] codec and parsed strictly (unknown discriminators,
//! missing fields, and mistyped fields are all protocol errors; a worker
//! that emits garbage is killed and treated as crashed).
//!
//! The message flow for one worker process:
//!
//! ```text
//! hello ─▶ (heartbeat)* ─▶ [ start ─▶ (done | quarantine) ]* ─▶ bye
//! ```
//!
//! * `hello` announces the shard and how many jobs it still has pending.
//! * `heartbeat` is emitted from a dedicated thread on a fixed interval; a
//!   supervisor that hears *nothing* (no message of any kind) for longer
//!   than its heartbeat timeout kills the worker.
//! * `start` names the job now in flight — this is the crash-attribution
//!   record: if the process dies before the matching `done`/`quarantine`,
//!   the supervisor charges the death to exactly this job.
//! * `done` / `quarantine` carry the job's verdict, serialized with the
//!   same JSON shape the checkpoint file uses, so the supervisor merges
//!   results with the code paths PR 1 already trusts.
//! * `bye` ends a shard cleanly (all pending jobs resolved, or a stop-file
//!   shutdown). A worker that exits without `bye` crashed.

use crate::campaign::{PmcTestOutcome, QuarantineRecord};
use crate::checkpoint::{
    outcome_from_json, outcome_to_json, quarantine_from_json, quarantine_to_json, req_u64,
};
use crate::json::{self, Json};

/// One worker→supervisor message (one JSONL line on the worker's stdout).
#[derive(Clone, Debug, PartialEq)]
pub enum WorkerMsg {
    /// First message after startup: shard identity and pending job count.
    Hello {
        /// This worker's shard index (0-based).
        shard: usize,
        /// Total shard count.
        of: usize,
        /// Jobs this worker still has to run (shard minus checkpoint).
        pending: usize,
    },
    /// Liveness signal, emitted on a fixed interval.
    Heartbeat,
    /// Job `job` is now in flight.
    Start {
        /// Campaign job index.
        job: usize,
    },
    /// Job `job` completed with an outcome.
    Done {
        /// Campaign job index.
        job: usize,
        /// The completed outcome.
        outcome: PmcTestOutcome,
    },
    /// A job failed permanently *in process* (hang, retry exhaustion) and
    /// was quarantined by the worker itself.
    Quarantine {
        /// The quarantine record (carries its own job index).
        record: QuarantineRecord,
    },
    /// Clean end of shard.
    Bye {
        /// Jobs resolved (done + quarantined) this process lifetime.
        completed: usize,
        /// True when the worker exited early because the stop file
        /// appeared; remaining jobs are intentionally unrun.
        stopped: bool,
    },
}

impl WorkerMsg {
    /// The `msg` discriminator.
    pub fn kind(&self) -> &'static str {
        match self {
            WorkerMsg::Hello { .. } => "hello",
            WorkerMsg::Heartbeat => "heartbeat",
            WorkerMsg::Start { .. } => "start",
            WorkerMsg::Done { .. } => "done",
            WorkerMsg::Quarantine { .. } => "quarantine",
            WorkerMsg::Bye { .. } => "bye",
        }
    }

    /// Renders the message as one JSON object (one line, sans newline).
    pub fn to_json(&self) -> Json {
        let msg = ("msg".to_string(), Json::Str(self.kind().to_owned()));
        match self {
            WorkerMsg::Hello { shard, of, pending } => Json::Obj(vec![
                msg,
                ("shard".into(), Json::U64(*shard as u64)),
                ("of".into(), Json::U64(*of as u64)),
                ("pending".into(), Json::U64(*pending as u64)),
            ]),
            WorkerMsg::Heartbeat => Json::Obj(vec![msg]),
            WorkerMsg::Start { job } => {
                Json::Obj(vec![msg, ("job".into(), Json::U64(*job as u64))])
            }
            WorkerMsg::Done { job, outcome } => Json::Obj(vec![
                msg,
                // The outcome object embeds the job index, matching the
                // checkpoint's on-disk shape.
                ("outcome".into(), outcome_to_json(*job, outcome)),
            ]),
            WorkerMsg::Quarantine { record } => {
                Json::Obj(vec![msg, ("record".into(), quarantine_to_json(record))])
            }
            WorkerMsg::Bye { completed, stopped } => Json::Obj(vec![
                msg,
                ("completed".into(), Json::U64(*completed as u64)),
                ("stopped".into(), Json::Bool(*stopped)),
            ]),
        }
    }

    /// Renders the message as one protocol line.
    pub fn render(&self) -> String {
        self.to_json().render()
    }

    /// Parses and schema-validates one protocol line.
    pub fn parse_line(line: &str) -> Result<WorkerMsg, String> {
        let doc = json::parse(line)?;
        Self::from_json(&doc)
    }

    /// Parses and schema-validates one protocol JSON object.
    pub fn from_json(doc: &Json) -> Result<WorkerMsg, String> {
        let kind = doc
            .get("msg")
            .and_then(Json::as_str)
            .ok_or("missing 'msg' discriminator")?;
        let usize_field = |key: &str| -> Result<usize, String> {
            usize::try_from(req_u64(doc, key)?).map_err(|_| format!("'{key}' overflows usize"))
        };
        match kind {
            "hello" => Ok(WorkerMsg::Hello {
                shard: usize_field("shard")?,
                of: usize_field("of")?,
                pending: usize_field("pending")?,
            }),
            "heartbeat" => Ok(WorkerMsg::Heartbeat),
            "start" => Ok(WorkerMsg::Start { job: usize_field("job")? }),
            "done" => {
                let (job, outcome) =
                    outcome_from_json(doc.get("outcome").ok_or("done without outcome")?)?;
                Ok(WorkerMsg::Done { job, outcome })
            }
            "quarantine" => Ok(WorkerMsg::Quarantine {
                record: quarantine_from_json(doc.get("record").ok_or("quarantine without record")?)?,
            }),
            "bye" => Ok(WorkerMsg::Bye {
                completed: usize_field("completed")?,
                stopped: doc
                    .get("stopped")
                    .and_then(Json::as_bool)
                    .ok_or("bye without stopped flag")?,
            }),
            other => Err(format!("unknown worker message '{other}'")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::FailureKind;

    fn roundtrip(msg: WorkerMsg) {
        let line = msg.render();
        assert_eq!(WorkerMsg::parse_line(&line).unwrap(), msg, "line: {line}");
    }

    fn outcome() -> PmcTestOutcome {
        PmcTestOutcome {
            pmc: Some(7),
            pair: (1, 2),
            trials_run: 24,
            exercised: true,
            findings: vec![sb_detect::Finding::Deadlock],
            steps: 9000,
            first_finding_trial: Some(3),
            repro_schedule: None,
            attempts: 2,
        }
    }

    #[test]
    fn all_kinds_round_trip() {
        roundtrip(WorkerMsg::Hello { shard: 1, of: 3, pending: 14 });
        roundtrip(WorkerMsg::Heartbeat);
        roundtrip(WorkerMsg::Start { job: 42 });
        roundtrip(WorkerMsg::Done { job: 42, outcome: outcome() });
        roundtrip(WorkerMsg::Quarantine {
            record: QuarantineRecord {
                job: 9,
                pmc: Some(3),
                attempts: 3,
                kind: FailureKind::Hang,
                chain: vec!["job hang: watchdog tripped".into()],
            },
        });
        roundtrip(WorkerMsg::Bye { completed: 14, stopped: false });
        roundtrip(WorkerMsg::Bye { completed: 2, stopped: true });
    }

    #[test]
    fn rejects_schema_violations() {
        assert!(WorkerMsg::parse_line("not json").is_err());
        assert!(WorkerMsg::parse_line("{\"msg\":\"nope\"}").is_err());
        assert!(WorkerMsg::parse_line("{\"job\":1}").is_err(), "no discriminator");
        assert!(WorkerMsg::parse_line("{\"msg\":\"start\"}").is_err(), "missing job");
        assert!(
            WorkerMsg::parse_line("{\"msg\":\"start\",\"job\":\"x\"}").is_err(),
            "mistyped job"
        );
        assert!(WorkerMsg::parse_line("{\"msg\":\"done\"}").is_err(), "missing outcome");
        assert!(
            WorkerMsg::parse_line("{\"msg\":\"bye\",\"completed\":1}").is_err(),
            "missing stopped"
        );
    }
}
